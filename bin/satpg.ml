(* satpg — command-line front end for the sequential-ATPG complexity study.

   Subcommands:
     synth       synthesize a benchmark FSM and print circuit statistics
     retime      retime a synthesized circuit and compare the pair
     atpg        run one of the three ATPG engines on a circuit
     classify    static untestability prover: per-pair summaries and the
                 Theorem-1 invariance check (--check)
     profile     instrumented engine run on a pair + hot-spot tables
     lint        static analysis: FSM + netlist rules, testability metrics
     analyze     structural attributes + density of encoding
     reach       reachable-state analysis: explicit BFS, symbolic (BDD)
                 fixpoint, or a cross-check of the two
     kiss        dump a benchmark FSM in KISS2 format
     cache       persistent result store: stats / clear / verify
     tables      regenerate the paper's tables (1-8) and Figure 3
     diff        compare two instrumented runs (manifests, event streams,
                 bench files, traces) or walk a bench history

   Expensive results (ATPG runs, reachability, structural analysis) are
   memoized by content — circuit structural hash + configuration
   fingerprint — and persisted across runs when SATPG_STORE=dir is set.

   Observability (off by default, zero overhead when off):
     --trace FILE    Chrome trace-event JSON (Perfetto / chrome://tracing)
     --metrics FILE  JSON snapshot of the global metrics registry
     --events FILE   per-fault JSONL event records
     --manifest FILE content-addressed provenance manifest of the run
*)

open Cmdliner

let setup_logs style_renderer level =
  Fmt_tty.setup_std_outputs ?style_renderer ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ())

let logging =
  Term.(const setup_logs $ Fmt_cli.style_renderer () $ Logs_cli.level ())

(* --- observability plumbing ------------------------------------------------- *)

let obs_args =
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:
               "Write a Chrome trace-event JSON file of the run; load it in \
                Perfetto (ui.perfetto.dev) or chrome://tracing.  Timestamps \
                are deterministic work units; wall-clock microseconds ride \
                along as a per-event argument.")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:
               "Write a JSON snapshot of the metrics registry (counters, \
                gauges, histograms) at exit.")
  in
  let events =
    Arg.(value & opt (some string) None
         & info [ "events" ] ~docv:"FILE"
             ~doc:
               "Write per-fault JSONL event records (one JSON object per \
                line): outcome, work, backtracks, decisions, frames, \
                drop credit.")
  in
  let manifest =
    Arg.(value & opt (some string) None
         & info [ "manifest" ] ~docv:"FILE"
             ~doc:
               "Write the run's provenance manifest: circuit structural \
                hash, configuration fingerprint, job count, budget, work \
                units, metrics snapshot, span totals and a digest of the \
                event stream.  Content-addressed and free of wall-clock \
                data: the same run reproduces the same bytes.  Feed two of \
                them to $(b,satpg diff).  Implies instrumentation.")
  in
  Term.(const (fun t m e mf -> (t, m, e, mf))
        $ trace $ metrics $ events $ manifest)

(* The sinks of the run in flight, for [finish_manifest]; satpg runs one
   command per process, so module-level slots (not domain-local) are
   right — subagent domains never call [with_obs]. *)
let current_tsink : Obs.Trace.sink option ref = ref None
let current_esink : Obs.Events.sink option ref = ref None
let manifest_slot : Obs.Ledger.t option ref = ref None

let budget_string () = Option.value ~default:"" (Sys.getenv_opt "SATPG_BUDGET")

(* [Exec.Pool.jobs] validates SATPG_JOBS and raises on garbage; commands
   that take -J validate it up front, but manifests are also built on
   commands that never read the pool — degrade, don't crash. *)
let safe_jobs () =
  match Exec.Pool.jobs () with
  | n -> n
  | exception Invalid_argument _ -> 1

(* Snapshot the live sinks into a manifest and persist it (slot for the
   pending [--manifest] write, store under its own id when SATPG_STORE is
   set).  Commands call this *before* printing [--json] payloads so the
   manifest id can ride along as provenance; [with_obs] falls back to a
   data-less manifest for commands that never call it. *)
let finish_manifest ~command ?circuit ?circuit_hash ?config_fp ?engine
    ?(work_units = 0) () =
  let spans =
    match !current_tsink with
    | Some s -> Obs.Trace.durations s
    | None -> []
  in
  let event_lines =
    match !current_esink with
    | Some s -> Obs.Events.to_lines s
    | None -> []
  in
  let m =
    Obs.Ledger.make ~tool:"satpg" ~command ?circuit ?circuit_hash ?config_fp
      ?engine ~jobs:(safe_jobs ()) ~budget:(budget_string ()) ~work_units
      ~metrics:(Obs.Metrics.snapshot ()) ~spans ~event_lines ()
  in
  manifest_slot := Some m;
  if Store.Disk.enabled () then
    ignore
      (Store.Disk.save Store.Disk.Manifest ~key:(Obs.Ledger.id m)
         ~name:(String.concat " " ("satpg" :: command :: Option.to_list circuit))
         (Store.Codec.manifest_to_json m)
        : bool);
  m

(* Install sinks for the given artifact files (or unconditionally with
   [force], as `satpg profile` does), run [f], then write the files.  With
   all flags absent and no force, nothing is installed and the run is
   bit-identical to an uninstrumented one.  [--manifest] implies both
   sinks: a manifest must carry span totals and the event-stream digest. *)
let with_obs ?(force = false) ~command (trace, metrics, events, manifest) f =
  let tsink =
    if force || trace <> None || manifest <> None then
      Some (Obs.Trace.create ~wallclock:Unix.gettimeofday ())
    else None
  in
  let esink =
    if force || events <> None || manifest <> None then
      Some (Obs.Events.create ())
    else None
  in
  (match tsink with Some s -> Obs.Trace.install s | None -> ());
  (match esink with Some s -> Obs.Events.install s | None -> ());
  current_tsink := tsink;
  current_esink := esink;
  manifest_slot := None;
  Fun.protect
    ~finally:(fun () ->
      (* the manifest snapshots the sinks, so write it before tearing
         them down; commands that already called [finish_manifest] pin
         richer provenance (circuit hash, config fingerprint, totals) *)
      (match manifest with
       | Some file ->
         let m =
           match !manifest_slot with
           | Some m -> m
           | None -> finish_manifest ~command ()
         in
         Obs.Ledger.write m file
       | None -> ());
      Obs.Trace.uninstall ();
      Obs.Events.uninstall ();
      current_tsink := None;
      current_esink := None;
      manifest_slot := None;
      (match trace, tsink with
       | Some file, Some s -> Obs.Trace.write s file
       | _ -> ());
      (match events, esink with
       | Some file, Some s -> Obs.Events.write s file
       | _ -> ());
      match metrics with Some file -> Obs.Metrics.write file | None -> ())
    f

(* --- parallelism ------------------------------------------------------------ *)

(* -j is the jedi state-assignment flag on the synthesis-facing commands,
   so the job count is -J/--jobs everywhere. *)
let jobs_arg =
  let doc =
    "Number of domains for parallel fault simulation, ATPG and table \
     cells (default: $(b,SATPG_JOBS) if set, else the machine's core \
     count).  Results are bit-identical at any value."
  in
  Arg.(value & opt (some int) None & info [ "J"; "jobs" ] ~docv:"N" ~doc)

(* Applies --jobs and validates SATPG_JOBS up front, so a bad value is a
   one-line usage error instead of a mid-run exception. *)
let setup_jobs jobs =
  (match jobs with
   | None -> ()
   | Some n when n >= 1 -> Exec.Pool.set_jobs n
   | Some n ->
     Fmt.epr "satpg: --jobs must be a positive domain count, got %d@." n;
     exit 124);
  match Exec.Pool.jobs () with
  | (_ : int) -> ()
  | exception Invalid_argument msg ->
    Fmt.epr "satpg: %s@." msg;
    exit 124

let fsm_arg =
  let doc = "Benchmark FSM name (dk16, pma, s510, s820, s832, scf)." in
  Arg.(value & pos 0 string "dk16" & info [] ~docv:"FSM" ~doc)

let algorithm_arg =
  let of_tag =
    Arg.enum
      [ ("ji", Synth.Assign.Input_dominant);
        ("jo", Synth.Assign.Output_dominant);
        ("jc", Synth.Assign.Combined) ]
  in
  let doc = "jedi state-assignment algorithm: ji, jo or jc." in
  Arg.(value & opt of_tag Synth.Assign.Input_dominant & info [ "j"; "jedi" ] ~doc)

let script_arg =
  let of_tag =
    Arg.enum [ ("sr", Synth.Flow.Rugged); ("sd", Synth.Flow.Delay) ]
  in
  let doc = "SIS-style synthesis script: sr (rugged/area) or sd (delay)." in
  Arg.(value & opt of_tag Synth.Flow.Rugged & info [ "s"; "script" ] ~doc)

let engine_arg =
  let of_tag =
    Arg.enum
      [ ("hitec", Core.Cache.Hitec); ("attest", Core.Cache.Attest);
        ("sest", Core.Cache.Sest) ]
  in
  let doc = "ATPG engine: hitec, attest or sest." in
  Arg.(value & opt of_tag Core.Cache.Hitec & info [ "e"; "engine" ] ~doc)

let retimed_flag =
  let doc = "Operate on the retimed version of the circuit." in
  Arg.(value & flag & info [ "r"; "retimed" ] ~doc)

(* --- synth ----------------------------------------------------------------- *)

let synth_cmd =
  let run () obs fsm alg script =
    with_obs ~command:"synth" obs @@ fun () ->
    let p = Core.Flow.pair fsm alg script in
    Fmt.pr "%s: %a@." p.Core.Flow.name Netlist.Node.pp_summary p.Core.Flow.original;
    Fmt.pr "  %a@." Netlist.Stats.pp (Netlist.Stats.of_circuit p.Core.Flow.original);
    Fmt.pr "  state bits: %d, machine states: %d@." p.Core.Flow.synth.Synth.Flow.bits
      (Fsm.Machine.num_states p.Core.Flow.synth.Synth.Flow.machine)
  in
  Cmd.v (Cmd.info "synth" ~doc:"Synthesize a benchmark FSM")
    Term.(const run $ logging $ obs_args $ fsm_arg $ algorithm_arg $ script_arg)

(* --- retime ---------------------------------------------------------------- *)

let retime_cmd =
  let run () obs fsm alg script =
    with_obs ~command:"retime" obs @@ fun () ->
    let p = Core.Flow.pair fsm alg script in
    Fmt.pr "original: %a@." Netlist.Node.pp_summary p.Core.Flow.original;
    Fmt.pr "retimed : %a@." Netlist.Node.pp_summary p.Core.Flow.retimed;
    Fmt.pr "periods : %.2f -> %.2f ; equivalence prefix %d cycles@."
      p.Core.Flow.original_period p.Core.Flow.retimed_period
      p.Core.Flow.prefix_length
  in
  Cmd.v (Cmd.info "retime" ~doc:"Retime a synthesized circuit")
    Term.(const run $ logging $ obs_args $ fsm_arg $ algorithm_arg $ script_arg)

(* --- atpg ------------------------------------------------------------------ *)

let atpg_cmd =
  let scoap_flag =
    Arg.(value & flag
         & info [ "scoap" ]
             ~doc:
               "Steer PODEM's backtrace by SCOAP controllability costs \
                (hitec/sest only; bypasses the result cache).")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:
               "Print the result summary as one JSON object (coverage, work \
                accounting, per-status fault counts) instead of text.")
  in
  let learn_flag =
    Arg.(value & flag
         & info [ "learn" ]
             ~doc:
               "Enable conflict-driven structural learning (hitec/sest \
                only): blocking clauses derived from propagation conflicts \
                and generalized failed justification cubes prune the search \
                across faults and time frames.  Equivalent to \
                $(b,SATPG_LEARN=1); off, the engines are bit-identical to \
                the unlearned seed.")
  in
  let prove_flag =
    Arg.(value & flag
         & info [ "prove-untestable" ]
             ~doc:
               "Classify faults with the static untestability prover first \
                (see $(b,satpg classify)) and prune proved-untestable faults \
                from the engine's list; they count toward fault efficiency \
                as $(b,proved_untestable).")
  in
  let run () obs jobs fsm alg script engine retimed scoap learn prove json =
    setup_jobs jobs;
    with_obs ~command:"atpg" obs @@ fun () ->
    let p = Core.Flow.pair fsm alg script in
    let name = p.Core.Flow.name ^ if retimed then ".re" else "" in
    let circuit = if retimed then p.Core.Flow.retimed else p.Core.Flow.original in
    let struct_learn = learn || Atpg.Types.env_struct_learn () in
    let r =
      if scoap then begin
        if prove then
          Fmt.epr "note: --scoap bypasses the cache; --prove-untestable has \
                   no effect@.";
        Core.Cache.note_bypass ();
        let guide = Lint.Scoap.controllability (Lint.Scoap.compute circuit) in
        match engine with
        | Core.Cache.Hitec ->
          let config =
            { (Atpg.Hitec.config ()) with Atpg.Types.struct_learn }
          in
          Atpg.Hitec.generate ~config ~guide circuit
        | Core.Cache.Sest ->
          let config =
            { (Atpg.Sest.config ()) with Atpg.Types.struct_learn }
          in
          Atpg.Sest.generate ~config ~guide circuit
        | Core.Cache.Attest ->
          Fmt.epr "note: attest is simulation-based; --scoap has no effect@.";
          Atpg.Attest.generate circuit
      end
      else
        Core.Cache.atpg ~prove_untestable:prove ~struct_learn engine ~name
          circuit
    in
    let cache = Core.Cache.outcome_string (Core.Cache.last_outcome ()) in
    (* same config recipe as Core.Cache.atpg, so the fingerprint in the
       provenance equals the one inside the result's cache key *)
    let config =
      match engine with
      | Core.Cache.Hitec -> Atpg.Hitec.config ()
      | Core.Cache.Sest -> Atpg.Sest.config ()
      | Core.Cache.Attest -> Atpg.Types.scaled_config ()
    in
    let config = { config with Atpg.Types.struct_learn } in
    let m =
      finish_manifest ~command:"atpg" ~circuit:name
        ~circuit_hash:(Netlist.Structhash.circuit circuit)
        ~config_fp:(Store.Key.config_fingerprint config)
        ~engine:(Core.Cache.atpg_kind_name engine)
        ~work_units:(Atpg.Types.work_units r.Atpg.Types.stats) ()
    in
    if json then
      print_endline
        (Obs.Json.to_string
           (Atpg.Types.result_to_json
              ~extra:
                [
                  ("circuit", Obs.Json.String name);
                  ( "engine",
                    Obs.Json.String (Core.Cache.atpg_kind_name engine) );
                  ("cache", Obs.Json.String cache);
                  ("manifest", Obs.Json.String (Obs.Ledger.id m));
                  ("config_fp", Obs.Json.String (Obs.Ledger.config_fp m));
                ]
              r))
    else begin
      Fmt.pr "%s on %s:@." (Core.Cache.atpg_kind_name engine) name;
      Fmt.pr "  cache         %s@." cache;
      Fmt.pr "  faults        %d@." (Array.length r.Atpg.Types.faults);
      Fmt.pr "  coverage      %.1f%%@." r.Atpg.Types.fault_coverage;
      Fmt.pr "  efficiency    %.1f%%@." r.Atpg.Types.fault_efficiency;
      if prove then
        Fmt.pr "  proved untestable %d@."
          (Array.fold_left
             (fun a s ->
               if s = Fsim.Fault.Proved_untestable then a + 1 else a)
             0 r.Atpg.Types.status);
      Fmt.pr "  work units    %d@." (Atpg.Types.work_units r.Atpg.Types.stats);
      Fmt.pr "  states seen   %d@."
        (Hashtbl.length r.Atpg.Types.stats.Atpg.Types.states);
      Fmt.pr "  test sequences %d (total %d vectors)@."
        (List.length r.Atpg.Types.test_sets)
        (List.fold_left (fun a s -> a + List.length s) 0 r.Atpg.Types.test_sets)
    end;
    Fmt.epr "%a@." Core.Cache.pp_summary ()
  in
  Cmd.v (Cmd.info "atpg" ~doc:"Run an ATPG engine on a circuit")
    Term.(const run $ logging $ obs_args $ jobs_arg $ fsm_arg $ algorithm_arg
          $ script_arg $ engine_arg $ retimed_flag $ scoap_flag $ learn_flag
          $ prove_flag $ json_flag)

(* --- classify --------------------------------------------------------------- *)

let classify_cmd =
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the classification summaries as one JSON object.")
  in
  let check_flag =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:
               "Theorem-1 gate: classify the retiming-invariant fault \
                universe (every gate/PI stem and gate input pin — sites \
                that survive retiming verbatim) on both circuits of the \
                pair and fail (exit 1) unless the proved-untestable sets \
                are identical.")
  in
  let no_symbolic_flag =
    Arg.(value & flag
         & info [ "no-symbolic" ]
             ~doc:"Skip the BDD reachable-set stages of the cascade.")
  in
  let product_flag =
    Arg.(value & flag
         & info [ "product" ]
             ~doc:
               "Also run the exact product-machine stage (complete for \
                sequential redundancy, most expensive; implies the \
                symbolic stage).")
  in
  let run () obs fsm alg script json check no_symbolic product =
    with_obs ~command:"classify" obs @@ fun () ->
    let p = Core.Flow.pair fsm alg script in
    let symbolic = not no_symbolic in
    let circuits =
      [ (p.Core.Flow.name, p.Core.Flow.original);
        (p.Core.Flow.name ^ ".re", p.Core.Flow.retimed) ]
    in
    let classified =
      List.map
        (fun (name, c) ->
          (name, c, Core.Cache.classify ~symbolic ~product ~name c))
        circuits
    in
    let summary_json (s : Analysis.Untest.summary) =
      Obs.Json.Obj
        [ ("faults", Obs.Json.Int s.Analysis.Untest.total);
          ("proved_untestable", Obs.Json.Int s.Analysis.Untest.proved);
          ("structural", Obs.Json.Int s.Analysis.Untest.structural);
          ("ternary", Obs.Json.Int s.Analysis.Untest.ternary);
          ("symbolic", Obs.Json.Int s.Analysis.Untest.symbolic);
          ("symbolic_ran", Obs.Json.Bool s.Analysis.Untest.symbolic_ran);
          ("bdd_nodes", Obs.Json.Int s.Analysis.Untest.bdd_nodes);
          ("work_units", Obs.Json.Int s.Analysis.Untest.work) ]
    in
    let check_result =
      if not check then None
      else begin
        let proved (name, c) =
          let t =
            Core.Cache.classify ~symbolic ~product
              ~universe:Core.Cache.Invariant ~name c
          in
          Analysis.Untest.proved_names c t
        in
        match circuits with
        | [ o; r ] -> Some (proved o, proved r)
        | _ -> assert false
      end
    in
    let m =
      finish_manifest ~command:"classify" ~circuit:p.Core.Flow.name
        ~circuit_hash:
          (Netlist.Structhash.circuit p.Core.Flow.original
          ^ "+"
          ^ Netlist.Structhash.circuit p.Core.Flow.retimed)
        ~config_fp:
          (Store.Key.classify_fingerprint ~symbolic
             ~max_nodes:Analysis.Symreach.default_max_nodes ~product
             ~universe:"collapsed")
        ~work_units:
          (List.fold_left
             (fun a (_, _, t) ->
               a + t.Analysis.Untest.summary.Analysis.Untest.work)
             0 classified)
        ()
    in
    if json then begin
      let fields =
        [ ("benchmark", Obs.Json.String p.Core.Flow.name);
          ("symbolic", Obs.Json.Bool symbolic);
          ("product", Obs.Json.Bool product);
          ("manifest", Obs.Json.String (Obs.Ledger.id m));
          ("config_fp", Obs.Json.String (Obs.Ledger.config_fp m));
          ( "circuits",
            Obs.Json.List
              (List.map
                 (fun (name, _, t) ->
                   Obs.Json.Obj
                     (("circuit", Obs.Json.String name)
                      ::
                      (match summary_json t.Analysis.Untest.summary with
                      | Obs.Json.Obj fs -> fs
                      | _ -> [])))
                 classified) ) ]
        @
        match check_result with
        | None -> []
        | Some (po, pr) ->
          [ ( "check",
              Obs.Json.Obj
                [ ("universe", Obs.Json.String "invariant");
                  ("proved_original", Obs.Json.Int (List.length po));
                  ("proved_retimed", Obs.Json.Int (List.length pr));
                  ("identical", Obs.Json.Bool (po = pr)) ] ) ]
      in
      print_endline (Obs.Json.to_string (Obs.Json.Obj fields))
    end
    else begin
      List.iter
        (fun (name, _, t) ->
          let s = t.Analysis.Untest.summary in
          Fmt.pr "%s:@." name;
          Fmt.pr "  faults            %d collapsed@." s.Analysis.Untest.total;
          Fmt.pr "  proved untestable %d (structural %d, ternary %d, \
                  symbolic %d)@."
            s.Analysis.Untest.proved s.Analysis.Untest.structural
            s.Analysis.Untest.ternary s.Analysis.Untest.symbolic;
          (if s.Analysis.Untest.symbolic_ran then
             Fmt.pr "  symbolic stage    ran (%d BDD nodes)@."
               s.Analysis.Untest.bdd_nodes
           else Fmt.pr "  symbolic stage    skipped@.");
          Fmt.pr "  work units        %d@." s.Analysis.Untest.work)
        classified;
      match check_result with
      | None -> ()
      | Some (po, pr) ->
        Fmt.pr "theorem-1 check (invariant universe): original %d proved, \
                retimed %d proved — %s@."
          (List.length po) (List.length pr)
          (if po = pr then "identical" else "MISMATCH")
    end;
    Fmt.epr "%a@." Core.Cache.pp_summary ();
    match check_result with
    | Some (po, pr) when po <> pr ->
      let module S = Set.Make (String) in
      let so = S.of_list po and sr = S.of_list pr in
      S.iter (fun f -> Fmt.epr "  only original: %s@." f) (S.diff so sr);
      S.iter (fun f -> Fmt.epr "  only retimed : %s@." f) (S.diff sr so);
      exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Statically classify faults as proved-untestable / unknown")
    Term.(const run $ logging $ obs_args $ fsm_arg $ algorithm_arg
          $ script_arg $ json_flag $ check_flag $ no_symbolic_flag
          $ product_flag)

(* --- profile --------------------------------------------------------------- *)

let profile_cmd =
  let topk_arg =
    Arg.(value & opt int 10
         & info [ "k"; "top" ] ~docv:"K"
             ~doc:"Number of rows in each hot-spot table.")
  in
  let run () jobs fsm alg script engine k =
    setup_jobs jobs;
    let p = Core.Flow.pair fsm alg script in
    let generate circuit =
      match engine with
      | Core.Cache.Hitec -> Atpg.Hitec.generate circuit
      | Core.Cache.Sest -> Atpg.Sest.generate circuit
      | Core.Cache.Attest -> Atpg.Attest.generate circuit
    in
    let profile_one tag circuit =
      (* fresh sinks per run: the work-unit clock restarts with each engine's
         stats, so sharing one sink would flatten the second run's spans *)
      let tsink = Obs.Trace.create () in
      let esink = Obs.Events.create () in
      Obs.Trace.install tsink;
      Obs.Events.install esink;
      let r =
        Fun.protect
          ~finally:(fun () ->
            Obs.Trace.uninstall ();
            Obs.Events.uninstall ())
          (fun () -> generate circuit)
      in
      let name = p.Core.Flow.name ^ tag in
      Fmt.pr "%s on %s: coverage %.1f%%, %d work units@."
        (Core.Cache.atpg_kind_name engine) name r.Atpg.Types.fault_coverage
        (Atpg.Types.work_units r.Atpg.Types.stats);
      Fmt.pr "  work by span:@.";
      Fmt.pr "    %-32s %8s %12s@." "span" "count" "work-units";
      List.iteri
        (fun i (nm, count, total) ->
          if i < k then Fmt.pr "    %-32s %8d %12d@." nm count total)
        (Obs.Trace.durations tsink);
      let field_int f rec_ =
        Option.value ~default:0
          (Option.bind (Obs.Json.member f rec_) Obs.Json.to_int_opt)
      in
      let field_str f rec_ =
        Option.value ~default:"?"
          (Option.bind (Obs.Json.member f rec_) Obs.Json.to_string_opt)
      in
      let faults =
        List.filter_map
          (fun rec_ ->
            match Obs.Json.member "ev" rec_ with
            | Some (Obs.Json.String "fault") ->
              let w = field_int "work" rec_ in
              let b = field_int "backtracks" rec_ in
              Some
                ( field_str "fault" rec_, field_str "outcome" rec_,
                  w, b, w + (50 * b) )
            | _ -> None)
          (Obs.Events.records esink)
      in
      let faults =
        List.sort (fun (_, _, _, _, a) (_, _, _, _, b) -> compare b a) faults
      in
      Fmt.pr "  worst faults:@.";
      Fmt.pr "    %-24s %-10s %10s %10s %12s@." "fault" "outcome" "work"
        "backtracks" "work-units";
      List.iteri
        (fun i (f, o, w, b, wu) ->
          if i < k then Fmt.pr "    %-24s %-10s %10d %10d %12d@." f o w b wu)
        faults
    in
    profile_one "" p.Core.Flow.original;
    profile_one ".re" p.Core.Flow.retimed
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run an ATPG engine on the original/retimed pair with \
          instrumentation forced on and print top-K hot-spot tables: work \
          by span, plus the per-fault worst offenders")
    Term.(const run $ logging $ jobs_arg $ fsm_arg $ algorithm_arg $ script_arg
          $ engine_arg $ topk_arg)

(* --- lint ------------------------------------------------------------------ *)

let lint_cmd =
  let json_flag =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit one JSON document instead of text.")
  in
  let fail_flag =
    Arg.(value & flag
         & info [ "fail-on-error" ]
             ~doc:
               "Exit with status 1 when any Error-level diagnostic fires or \
                the original/retimed invariant untestable counts differ.")
  in
  let scoap_flag =
    Arg.(value & flag
         & info [ "scoap" ]
             ~doc:"Include per-node SCOAP scores in the JSON output.")
  in
  let no_symbolic_flag =
    Arg.(value & flag
         & info [ "no-symbolic" ]
             ~doc:
               "Skip the NET008 sequential-redundancy rule (no symbolic \
                reachability oracle is built).")
  in
  (* The NET008 oracle: proved-unreachable states from symbolic
     reachability.  A BDD blow-up or malformed circuit quietly disables
     the rule — lint must degrade, not fail, on circuits the oracle
     cannot handle. *)
  let reach_oracle c =
    match Analysis.Symreach.explore c with
    | r ->
      Some
        {
          Lint.Netlist_rules.can_take =
            (fun node value -> Analysis.Symreach.can_take r node value);
          max_nodes = Analysis.Symreach.default_max_nodes;
          bdd_nodes =
            r.Analysis.Symreach.summary.Analysis.Symreach.bdd_nodes;
        }
    | exception (Bdd.Node_limit | Invalid_argument _) -> None
  in
  let run () fsm alg script json fail_on_error scoap no_symbolic =
    let p = Core.Flow.pair fsm alg script in
    let machine = Fsm.Benchmarks.machine p.Core.Flow.fsm in
    let fsm_diags = Lint.Report.lint_fsm machine in
    let lint c =
      let oracle = if no_symbolic then None else reach_oracle c in
      Lint.Report.lint_netlist ?oracle c
    in
    let so = lint p.Core.Flow.original in
    let sr = lint p.Core.Flow.retimed in
    let invariant_match =
      so.Lint.Report.invariant_untestable = sr.Lint.Report.invariant_untestable
    in
    if json then
      print_endline
        (Lint.Json.to_string
           (Lint.Json.Obj
              [
                ("fsm", Lint.Report.fsm_to_json ~name:fsm fsm_diags);
                ( "original",
                  Lint.Report.netlist_to_json ~include_scoap:scoap
                    ~name:p.Core.Flow.name p.Core.Flow.original so );
                ( "retimed",
                  Lint.Report.netlist_to_json ~include_scoap:scoap
                    ~name:(p.Core.Flow.name ^ ".re")
                    p.Core.Flow.retimed sr );
                ("invariant_match", Lint.Json.Bool invariant_match);
              ]))
    else begin
      Fmt.pr "%a" Lint.Report.pp_fsm (fsm, fsm_diags);
      Fmt.pr "%a" Lint.Report.pp_netlist (p.Core.Flow.name, so);
      Fmt.pr "%a" Lint.Report.pp_netlist (p.Core.Flow.name ^ ".re", sr);
      Fmt.pr "Theorem-1 invariant untestable counts: %d vs %d (%s)@."
        so.Lint.Report.invariant_untestable sr.Lint.Report.invariant_untestable
        (if invariant_match then "match" else "MISMATCH")
    end;
    let any_error =
      Lint.Diag.has_errors fsm_diags
      || Lint.Diag.has_errors so.Lint.Report.diags
      || Lint.Diag.has_errors sr.Lint.Report.diags
    in
    if fail_on_error && (any_error || not invariant_match) then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a benchmark: FSM rules plus netlist rules on \
          the original and retimed circuits")
    Term.(const run $ logging $ fsm_arg $ algorithm_arg $ script_arg
          $ json_flag $ fail_flag $ scoap_flag $ no_symbolic_flag)

(* --- analyze --------------------------------------------------------------- *)

let analyze_cmd =
  let run () fsm alg script retimed =
    let p = Core.Flow.pair fsm alg script in
    let name = p.Core.Flow.name ^ if retimed then ".re" else "" in
    let circuit = if retimed then p.Core.Flow.retimed else p.Core.Flow.original in
    let s = Core.Cache.structural ~name circuit in
    let d = Core.Cache.density ~name circuit in
    Fmt.pr "%s:@." name;
    Fmt.pr "  DFFs               %d@." (Netlist.Node.num_dffs circuit);
    Fmt.pr "  sequential depth   %d@." s.Analysis.Structural.seq_depth;
    Fmt.pr "  max cycle length   %d@." s.Analysis.Structural.max_cycle_length;
    Fmt.pr "  counted cycles     %d@." s.Analysis.Structural.num_cycles;
    Fmt.pr "  valid states       %.0f@." d.Core.Cache.valid;
    Fmt.pr "  total states       %.3g@." d.Core.Cache.total;
    Fmt.pr "  density of encoding %.3e@." d.Core.Cache.density;
    Fmt.pr "  density source     %s@."
      (Core.Cache.density_source_name d.Core.Cache.source)
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Structural attributes and density")
    Term.(const run $ logging $ fsm_arg $ algorithm_arg $ script_arg
          $ retimed_flag)

(* --- reach ----------------------------------------------------------------- *)

let reach_cmd =
  let symbolic_flag =
    Arg.(value & flag
         & info [ "symbolic" ]
             ~doc:
               "Force the symbolic (BDD least-fixpoint) engine; works beyond \
                the explicit caps (>8 PIs, >60 DFFs).")
  in
  let explicit_flag =
    Arg.(value & flag
         & info [ "explicit" ]
             ~doc:
               "Force the explicit (bit-parallel BFS) engine; fails with an \
                actionable message beyond its caps.")
  in
  let check_flag =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:
               "Run both engines and cross-check: exit 1 unless the valid-\
                state counts and densities agree bit-for-bit.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit one JSON object instead of text.")
  in
  let explicit_fields (r : Analysis.Reach.result) cache =
    [
      ("mode", Obs.Json.String "explicit");
      ("dffs", Obs.Json.Int r.Analysis.Reach.total_bits);
      ("valid_states", Obs.Json.Float (float_of_int r.Analysis.Reach.valid_states));
      ("valid_states_int", Obs.Json.Int r.Analysis.Reach.valid_states);
      ("total_states", Obs.Json.Float (Analysis.Reach.total_states r));
      ("density", Obs.Json.Float (Analysis.Reach.density r));
      ("depth", Obs.Json.Null);
      ("bdd_nodes", Obs.Json.Null);
      ("cache", Obs.Json.String cache);
    ]
  in
  let symbolic_fields (s : Analysis.Symreach.summary) cache =
    [
      ("mode", Obs.Json.String "symbolic");
      ("dffs", Obs.Json.Int s.Analysis.Symreach.total_bits);
      ("valid_states", Obs.Json.Float s.Analysis.Symreach.valid_states);
      ( "valid_states_int",
        match s.Analysis.Symreach.valid_states_int with
        | Some i -> Obs.Json.Int i
        | None -> Obs.Json.Null );
      ("total_states", Obs.Json.Float (Analysis.Symreach.total_states s));
      ("density", Obs.Json.Float (Analysis.Symreach.density s));
      ("depth", Obs.Json.Int s.Analysis.Symreach.depth);
      ("bdd_nodes", Obs.Json.Int s.Analysis.Symreach.bdd_nodes);
      ("cache", Obs.Json.String cache);
    ]
  in
  let pp_fields name fields =
    Fmt.pr "%s:@." name;
    List.iter
      (fun (k, v) ->
        Fmt.pr "  %-18s %s@." k
          (match v with
          | Obs.Json.String s -> s
          | Obs.Json.Int i -> string_of_int i
          | Obs.Json.Float f -> Printf.sprintf "%.6g" f
          | Obs.Json.Null -> "-"
          | j -> Obs.Json.to_string j))
      fields
  in
  let run () obs fsm alg script retimed symbolic explicit check json =
    with_obs ~command:"reach" obs @@ fun () ->
    if symbolic && explicit then begin
      Fmt.epr "satpg reach: --symbolic and --explicit are exclusive \
               (use --check to run both)@.";
      exit 124
    end;
    let p = Core.Flow.pair fsm alg script in
    let name = p.Core.Flow.name ^ if retimed then ".re" else "" in
    let circuit = if retimed then p.Core.Flow.retimed else p.Core.Flow.original in
    let cache () = Core.Cache.outcome_string (Core.Cache.last_outcome ()) in
    let run_explicit () =
      match Core.Cache.reach ~name circuit with
      | r -> explicit_fields r (cache ())
      | exception Invalid_argument msg ->
        Fmt.epr "satpg reach: %s@." msg;
        exit 1
    in
    let run_symbolic () =
      match Core.Cache.symreach ~name circuit with
      | s -> symbolic_fields s (cache ())
      | exception Bdd.Node_limit ->
        Fmt.epr
          "satpg reach: %s: BDD node budget (%d) exhausted during symbolic \
           reachability@."
          name Analysis.Symreach.default_max_nodes;
        exit 1
    in
    if check then begin
      (* bit-identical or bust: the symbolic engine must reproduce the
         explicit count exactly wherever the explicit engine can run *)
      let r =
        match Core.Cache.reach ~name circuit with
        | r -> r
        | exception Invalid_argument msg ->
          Fmt.epr "satpg reach --check: %s@." msg;
          exit 1
      in
      let ec = cache () in
      let s = Core.Cache.symreach ~name circuit in
      let sc = cache () in
      let count_match =
        s.Analysis.Symreach.valid_states_int
        = Some r.Analysis.Reach.valid_states
        && s.Analysis.Symreach.valid_states
           = float_of_int r.Analysis.Reach.valid_states
      in
      let density_match =
        Analysis.Symreach.density s = Analysis.Reach.density r
      in
      let ok = count_match && density_match in
      let m =
        finish_manifest ~command:"reach" ~circuit:name
          ~circuit_hash:(Netlist.Structhash.circuit circuit)
          ~config_fp:
            (Store.Key.reach_fingerprint
               ~max_states:Analysis.Reach.default_max_states
            ^ "+"
            ^ Store.Key.symreach_fingerprint
                ~max_nodes:Analysis.Symreach.default_max_nodes)
          ()
      in
      if json then
        print_endline
          (Obs.Json.to_string
             (Obs.Json.Obj
                [
                  ("circuit", Obs.Json.String name);
                  ("mode", Obs.Json.String "check");
                  ("explicit", Obs.Json.Obj (explicit_fields r ec));
                  ("symbolic", Obs.Json.Obj (symbolic_fields s sc));
                  ("match", Obs.Json.Bool ok);
                  ("manifest", Obs.Json.String (Obs.Ledger.id m));
                  ("config_fp", Obs.Json.String (Obs.Ledger.config_fp m));
                ]))
      else begin
        pp_fields (name ^ " (explicit)") (explicit_fields r ec);
        pp_fields (name ^ " (symbolic)") (symbolic_fields s sc);
        Fmt.pr "cross-check: %s@."
          (if ok then "match"
           else if count_match then "DENSITY MISMATCH"
           else "VALID-STATE COUNT MISMATCH")
      end;
      if not ok then exit 1
    end
    else begin
      let use_symbolic =
        if symbolic then true
        else if explicit then false
        else not (Analysis.Reach.feasible circuit)
      in
      let fields = if use_symbolic then run_symbolic () else run_explicit () in
      let m =
        finish_manifest ~command:"reach" ~circuit:name
          ~circuit_hash:(Netlist.Structhash.circuit circuit)
          ~config_fp:
            (if use_symbolic then
               Store.Key.symreach_fingerprint
                 ~max_nodes:Analysis.Symreach.default_max_nodes
             else
               Store.Key.reach_fingerprint
                 ~max_states:Analysis.Reach.default_max_states)
          ()
      in
      if json then
        print_endline
          (Obs.Json.to_string
             (Obs.Json.Obj
                (("circuit", Obs.Json.String name) :: fields
                @ [
                    ("manifest", Obs.Json.String (Obs.Ledger.id m));
                    ("config_fp", Obs.Json.String (Obs.Ledger.config_fp m));
                  ])))
      else pp_fields name fields
    end
  in
  Cmd.v
    (Cmd.info "reach"
       ~doc:
         "Reachable-state analysis and density of encoding: explicit BFS, \
          symbolic BDD fixpoint (works beyond the explicit caps), or a \
          bit-exact cross-check of the two")
    Term.(const run $ logging $ obs_args $ fsm_arg $ algorithm_arg
          $ script_arg $ retimed_flag $ symbolic_flag $ explicit_flag
          $ check_flag $ json_flag)

(* --- cache ----------------------------------------------------------------- *)

let cache_cmd =
  let action_arg =
    let of_tag =
      Arg.enum [ ("stats", `Stats); ("clear", `Clear); ("verify", `Verify) ]
    in
    let doc =
      "stats (record counts and sizes per kind), clear (delete every \
       record) or verify (deep-check that every record decodes)."
    in
    Arg.(value & pos 0 of_tag `Stats & info [] ~docv:"ACTION" ~doc)
  in
  let run () action =
    match Store.Disk.dir () with
    | None ->
      Fmt.epr "result store disabled; set %s=DIR to enable it@."
        Store.Disk.env_var;
      exit 1
    | Some d ->
      (match action with
       | `Stats ->
         Fmt.pr "store: %s@." d;
         List.iter
           (fun (kind, count, bytes) ->
             Fmt.pr "  %-11s %6d records %10d bytes@."
               (Store.Disk.kind_name kind) count bytes)
           (Store.Disk.stats ())
       | `Clear ->
         let n = Store.Disk.clear () in
         Fmt.pr "store: %s — removed %d records@." d n
       | `Verify ->
         let results = Store.Disk.verify () in
         let bad =
           List.filter
             (fun ((_ : Store.Disk.entry), r) -> Result.is_error r)
             results
         in
         List.iter
           (fun ((e : Store.Disk.entry), r) ->
             match r with
             | Ok () -> ()
             | Error why -> Fmt.pr "CORRUPT %s: %s@." e.Store.Disk.path why)
           results;
         Fmt.pr "store: %s — %d records, %d ok, %d corrupt@." d
           (List.length results)
           (List.length results - List.length bad)
           (List.length bad);
         if bad <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect or maintain the persistent result store (SATPG_STORE); \
          records are content-addressed, so clearing is always safe")
    Term.(const run $ logging $ action_arg)

(* --- kiss ------------------------------------------------------------------ *)

let kiss_cmd =
  let run () fsm =
    print_string (Fsm.Kiss.to_string (Fsm.Benchmarks.machine_of_name fsm))
  in
  Cmd.v (Cmd.info "kiss" ~doc:"Dump a benchmark FSM in KISS2 format")
    Term.(const run $ logging $ fsm_arg)

(* --- export ---------------------------------------------------------------- *)

let export_cmd =
  let fmt_arg =
    let of_tag = Arg.enum [ ("blif", `Blif); ("verilog", `Verilog) ] in
    Arg.(value & opt of_tag `Blif & info [ "f"; "format" ]
           ~doc:"Output format: blif or verilog.")
  in
  let run () fsm alg script retimed fmt =
    let p = Core.Flow.pair fsm alg script in
    let name = p.Core.Flow.name ^ if retimed then ".re" else "" in
    let circuit = if retimed then p.Core.Flow.retimed else p.Core.Flow.original in
    match fmt with
    | `Blif -> print_string (Netlist.Blif.to_string ~model:name circuit)
    | `Verilog -> print_string (Netlist.Verilog.to_string ~module_name:name circuit)
  in
  Cmd.v (Cmd.info "export" ~doc:"Export a circuit as BLIF or structural Verilog")
    Term.(const run $ logging $ fsm_arg $ algorithm_arg $ script_arg
          $ retimed_flag $ fmt_arg)

(* --- scan ------------------------------------------------------------------ *)

let scan_cmd =
  let partial_flag =
    Arg.(value & flag
         & info [ "p"; "partial" ]
             ~doc:"Cycle-breaking partial scan instead of full scan.")
  in
  let run () obs jobs fsm alg script retimed partial =
    setup_jobs jobs;
    with_obs ~command:"scan" obs @@ fun () ->
    let p = Core.Flow.pair fsm alg script in
    let name = p.Core.Flow.name ^ if retimed then ".re" else "" in
    let circuit = if retimed then p.Core.Flow.retimed else p.Core.Flow.original in
    let chain =
      if partial then
        Dft.Scan.insert ~positions:(Dft.Scan.select_cycle_breaking circuit)
          circuit
      else Dft.Scan.insert circuit
    in
    Fmt.pr "%s: scanned %d of %d registers@." name chain.Dft.Scan.length
      (Netlist.Node.num_dffs circuit);
    let seq = Core.Cache.atpg Core.Cache.Hitec ~name circuit in
    let scan = Dft.Scan_atpg.generate chain in
    Fmt.pr "  sequential ATPG : FC %5.1f%%  work %d@."
      seq.Atpg.Types.fault_coverage
      (Atpg.Types.work_units seq.Atpg.Types.stats);
    Fmt.pr "  scan-mode ATPG  : FC %5.1f%%  work %d@."
      scan.Atpg.Types.fault_coverage
      (Atpg.Types.work_units scan.Atpg.Types.stats)
  in
  Cmd.v
    (Cmd.info "scan" ~doc:"Insert a scan chain and compare ATPG before/after")
    Term.(const run $ logging $ obs_args $ jobs_arg $ fsm_arg $ algorithm_arg
          $ script_arg $ retimed_flag $ partial_flag)

(* --- compare --------------------------------------------------------------- *)

let compare_cmd =
  let run () jobs =
    setup_jobs jobs;
    (* paper-vs-measured side-by-side for the headline table *)
    let rows = Core.Tables.T2.compute () in
    Fmt.pr "Table 2, paper vs measured (FCo/FCr = original/retimed coverage)@.";
    Fmt.pr "%-12s | %6s %6s %9s | %6s %6s %9s@." "circuit" "FCo" "FCr"
      "ratio" "FCo*" "FCr*" "ratio*";
    Fmt.pr "%-12s | %25s | %25s@." "" "paper" "measured";
    List.iter
      (fun (p : Core.Paper.hitec_row) ->
        match
          List.find_opt
            (fun (r : Core.Tables.Atpg_pair.row) ->
              String.equal r.Core.Tables.Atpg_pair.circuit p.Core.Paper.circuit)
            rows
        with
        | Some r ->
          Fmt.pr "%-12s | %6.1f %6.1f %9.1f | %6.1f %6.1f %9.1f@."
            p.Core.Paper.circuit p.Core.Paper.fc_orig p.Core.Paper.fc_re
            p.Core.Paper.cpu_ratio r.Core.Tables.Atpg_pair.fc_orig
            r.Core.Tables.Atpg_pair.fc_re r.Core.Tables.Atpg_pair.cpu_ratio
        | None -> ())
      Core.Paper.table2
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Print the paper's Table 2 next to the measured reproduction")
    Term.(const run $ logging $ jobs_arg)

(* --- tables ---------------------------------------------------------------- *)

let tables_cmd =
  let table_arg =
    let doc = "Which table to regenerate (1-8, fig3, shape, or all)." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"TABLE" ~doc)
  in
  let run () obs jobs which =
    setup_jobs jobs;
    with_obs ~command:"tables" obs @@ fun () ->
    let ppf = Fmt.stdout in
    (match which with
     | "1" -> Core.Tables.T1.pp ppf (Core.Tables.T1.compute ())
     | "2" -> Core.Tables.T2.pp ppf (Core.Tables.T2.compute ())
     | "3" -> Core.Tables.T3.pp ppf (Core.Tables.T3.compute ())
     | "4" -> Core.Tables.T4.pp ppf (Core.Tables.T4.compute ())
     | "5" -> Core.Tables.T5.pp ppf (Core.Tables.T5.compute ())
     | "6" -> Core.Tables.T6.pp ppf (Core.Tables.T6.compute ())
     | "7" -> Core.Tables.T7.pp ppf (Core.Tables.T7.compute ())
     | "8" -> Core.Tables.T8.pp ppf (Core.Tables.T8.compute ())
     | "fig3" -> Core.Figure3.pp ppf (Core.Figure3.compute ())
     | "shape" -> Core.Report.pp_shape_checks ppf ()
     | "all" ->
       Core.Report.run_all ppf ();
       Core.Report.pp_shape_checks ppf ()
     | other -> Fmt.epr "unknown table %s@." other);
    Fmt.flush ppf ();
    (* counters to stderr so table output stays byte-identical across
       cold and warm (store-served) runs *)
    Fmt.epr "%a@." Core.Cache.pp_summary ()
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:"Regenerate the paper's tables (SATPG_BUDGET scales ATPG effort)")
    Term.(const run $ logging $ obs_args $ jobs_arg $ table_arg)

(* --- diff ------------------------------------------------------------------- *)

let diff_cmd =
  let pos_a =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"A"
             ~doc:
               "First run: a provenance manifest, an --events JSONL file, a \
                bench JSON file, or a --trace Chrome trace (classified by \
                content).  With $(b,--history), the history file instead \
                (default results/BENCH_history.jsonl).")
  in
  let pos_b =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"B" ~doc:"Second run, compared against the first.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the report as one JSON object.")
  in
  let top_arg =
    Arg.(value & opt int 20
         & info [ "k"; "top" ] ~docv:"K"
             ~doc:"Rows in the span and attribution tables (text report).")
  in
  let max_regress_arg =
    Arg.(value & opt (some float) None
         & info [ "max-regress" ] ~docv:"PCT"
             ~doc:
               "Exit 1 when B's total work units exceed A's by strictly \
                more than $(docv) percent (0 fails on any regression; \
                improvements always pass).")
  in
  let folded_arg =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"PREFIX"
             ~doc:
               "For each input that is a Chrome trace, also write a folded-\
                stack (flamegraph.pl / speedscope) file \
                $(docv).a.folded / $(docv).b.folded.")
  in
  let history_flag =
    Arg.(value & flag
         & info [ "history" ]
             ~doc:
               "Walk an append-only bench history (see bench --help and \
                results/README.md) instead of diffing two runs: per-series \
                work-unit trajectories and last deltas.")
  in
  let read_file file =
    match In_channel.with_open_bin file In_channel.input_all with
    | text -> Ok text
    | exception Sys_error e -> Error e
  in
  let fail_usage msg =
    Fmt.epr "satpg diff: %s@." msg;
    exit 2
  in
  let run () json top max_regress folded history a b =
    if history then begin
      let file = Option.value ~default:"results/BENCH_history.jsonl" a in
      (match b with
       | Some _ -> fail_usage "--history takes at most one file"
       | None -> ());
      match read_file file with
      | Error e -> fail_usage e
      | Ok text ->
        let series, bad =
          Obs.Diff.history_of_lines (String.split_on_char '\n' text)
        in
        if json then
          print_endline (Obs.Json.to_string (Obs.Diff.history_json series))
        else Fmt.pr "%a" Obs.Diff.pp_history (series, bad)
    end
    else begin
      let fa, fb =
        match a, b with
        | Some fa, Some fb -> (fa, fb)
        | _ -> fail_usage "two runs required (or --history)"
      in
      let load label file =
        match read_file file with
        | Error e -> fail_usage e
        | Ok text ->
          (match Obs.Diff.classify_input text with
           | Error e -> fail_usage (file ^ ": " ^ e)
           | Ok input -> (input, Obs.Diff.side_of_input ~label input))
      in
      let ia, sa = load fa fa in
      let ib, sb = load fb fb in
      let d = Obs.Diff.compute sa sb in
      (match folded with
       | None -> ()
       | Some prefix ->
         let dump tag = function
           | Obs.Diff.Chrome doc ->
             let file = prefix ^ "." ^ tag ^ ".folded" in
             Obs.Fold.write (Obs.Fold.of_chrome doc) file;
             Fmt.epr "wrote %s@." file
           | input ->
             Fmt.epr "note: %s input is a %s, not a Chrome trace; no \
                      folded file@."
               tag
               (Obs.Diff.input_kind_name input)
         in
         dump "a" ia;
         dump "b" ib);
      if json then print_endline (Obs.Json.to_string (Obs.Diff.to_json d))
      else Fmt.pr "%a" (Obs.Diff.pp_text ~top) d;
      (match d.Obs.Diff.reconciled with
       | Some false ->
         Fmt.epr
           "satpg diff: per-row deltas do not reconcile against the total \
            (truncated or edited event stream?)@.";
         exit 2
       | _ -> ());
      match max_regress with
      | Some pct when Obs.Diff.breach ~max_regress_pct:pct d ->
        Fmt.epr "satpg diff: total work units regressed by more than %g%%@."
          pct;
        exit 1
      | _ -> ()
    end
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two instrumented runs — manifests, event JSONL streams, \
          bench JSON files or Chrome traces — at three granularities: run \
          totals, per-span work, and exact per-fault attribution of the \
          delta (new/vanished/status-changed faults called out); or walk a \
          bench history with --history")
    Term.(const run $ logging $ json_flag $ top_arg $ max_regress_arg
          $ folded_arg $ history_flag $ pos_a $ pos_b)

(* --- serve ----------------------------------------------------------------- *)

let serve_cmd =
  let port_arg =
    let doc = "Listen for line-delimited JSON requests on 127.0.0.1:$(docv)." in
    Arg.(value & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT" ~doc)
  in
  let unix_arg =
    let doc = "Listen on a Unix-domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "unix" ] ~docv:"PATH" ~doc)
  in
  let depth_arg =
    let doc =
      "Admission queue depth; a full queue answers a structured \
       $(b,overloaded) error instead of queueing without bound."
    in
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N" ~doc)
  in
  let batch_arg =
    let doc = "Maximum requests drained into one coalescing batch." in
    Arg.(value & opt int 32 & info [ "batch-max" ] ~docv:"N" ~doc)
  in
  let run () jobs port unix_path queue_depth batch_max =
    setup_jobs jobs;
    if port = None && unix_path = None then begin
      Fmt.epr "satpg serve: pass --port and/or --unix@.";
      exit 124
    end;
    if queue_depth < 1 || batch_max < 1 then begin
      Fmt.epr "satpg serve: --queue-depth and --batch-max must be >= 1@.";
      exit 124
    end;
    match
      Serve.Server.run { Serve.Server.port; unix_path; queue_depth; batch_max }
    with
    | () -> ()
    | exception Invalid_argument msg ->
      Fmt.epr "satpg serve: %s@." msg;
      exit 124
    | exception Unix.Unix_error (e, fn, arg) ->
      Fmt.epr "satpg serve: %s(%s): %s@." fn arg (Unix.error_message e);
      exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived ATPG service: line-delimited JSON requests \
          over TCP and/or a Unix socket, batched and coalesced onto the \
          domain pool behind a bounded admission queue, with Prometheus \
          metrics on GET /metrics and liveness on GET /healthz.  Results \
          share the store records a CLI run with equal budgets would \
          produce, so the cache stays hot across both entry points")
    Term.(const run $ logging $ jobs_arg $ port_arg $ unix_arg $ depth_arg
          $ batch_arg)

let main =
  let doc = "Complexity of sequential ATPG — DATE 1995 reproduction" in
  Cmd.group (Cmd.info "satpg" ~doc)
    [ synth_cmd; retime_cmd; atpg_cmd; classify_cmd; profile_cmd; lint_cmd;
      analyze_cmd; reach_cmd; cache_cmd; kiss_cmd; export_cmd; scan_cmd;
      compare_cmd; tables_cmd; diff_cmd; serve_cmd ]

let () = exit (Cmd.eval main)
