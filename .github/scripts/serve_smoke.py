#!/usr/bin/env python3
"""CI smoke client for `satpg serve` on a Unix socket.

Sends the same request batch twice: the first pass may compute, the
second must be answered entirely from cache (hit or disk-hit) with the
same provenance manifest ids.  Also checks the stats verb, /healthz and
/metrics over HTTP, and finishes by sending the shutdown verb — the
caller then asserts the daemon process exits on its own.
"""

import json
import socket
import sys
import time

SOCK = sys.argv[1]

# bench-source requests only: pure ASCII, and the circuits are the
# study pairs the store already knows how to cache
BATCH = [
    {"id": "a1", "verb": "atpg", "circuit": {"bench": "dk16"}},
    {"id": "a2", "verb": "atpg", "circuit": {"bench": "dk16", "retimed": True}},
    {"id": "r1", "verb": "reach", "circuit": {"bench": "dk16"}},
    {"id": "c1", "verb": "classify", "circuit": {"bench": "dk16"}},
    {"id": "l1", "verb": "lint", "circuit": {"bench": "dk16"}},
    {"id": "f1", "verb": "fsim", "circuit": {"bench": "dk16"},
     "config": {"vectors": 512}},
]
# lint and fsim deliberately bypass the result cache
CACHEABLE = {"a1", "a2", "r1", "c1"}


def fail(msg):
    print("serve smoke: FAIL:", msg)
    sys.exit(1)


def wait_for_socket(deadline=30.0):
    end = time.time() + deadline
    while time.time() < end:
        try:
            s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            s.connect(SOCK)
            return s
        except OSError:
            time.sleep(0.2)
    fail("socket %s did not come up within %gs" % (SOCK, deadline))


def connect():
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(SOCK)
    return s


def rpc(f, req):
    f.write((json.dumps(req, ensure_ascii=False) + "\n").encode())
    f.flush()
    line = f.readline()
    if not line:
        fail("connection closed while waiting for a response to %r" % req)
    return json.loads(line)


def run_batch(f, label):
    out = {}
    for req in BATCH:
        r = rpc(f, req)
        if r.get("id") != req["id"]:
            fail("%s: response id %r for request %r" % (label, r.get("id"), req["id"]))
        if r.get("ok") is not True:
            fail("%s: request %s failed: %r" % (label, req["id"], r.get("error")))
        out[req["id"]] = r
    return out


def http_get(path):
    s = connect()
    s.sendall(("GET %s HTTP/1.1\r\nHost: satpg\r\n\r\n" % path).encode())
    data = b""
    while True:
        chunk = s.recv(65536)
        if not chunk:
            break
        data += chunk
    s.close()
    return data.decode()


sock = wait_for_socket()
f = sock.makefile("rwb")

stats = rpc(f, {"id": "s0", "verb": "stats"})
if stats.get("ok") is not True or "serve" not in stats:
    fail("stats verb did not answer: %r" % stats)

first = run_batch(f, "pass 1")
second = run_batch(f, "pass 2")

for rid in CACHEABLE:
    cache = second[rid].get("cache")
    if cache not in ("hit", "disk-hit"):
        fail("pass 2: request %s not served from cache (cache=%r)" % (rid, cache))
    if second[rid].get("manifest") != first[rid].get("manifest"):
        fail("request %s: manifest id changed between passes" % rid)

health = http_get("/healthz")
if "200" not in health.splitlines()[0] or "ok" not in health:
    fail("/healthz did not answer ok: %r" % health[:200])

metrics = http_get("/metrics")
body = metrics.split("\r\n\r\n", 1)[-1]
if "200" not in metrics.splitlines()[0]:
    fail("/metrics did not answer 200: %r" % metrics[:200])
if "# TYPE satpg_" not in body or "satpg_serve_requests_total" not in body:
    fail("/metrics body is not the expected Prometheus text: %r" % body[:200])
for line in body.splitlines():
    if line and not (line.startswith("#") or line.startswith("satpg_")):
        fail("/metrics line outside the satpg_ namespace: %r" % line)

bye = rpc(f, {"id": "bye", "verb": "shutdown"})
if bye.get("ok") is not True:
    fail("shutdown verb rejected: %r" % bye)

print("serve smoke: all checks passed "
      "(batch of %d twice, second pass all cache hits)" % len(BATCH))
