(* FSM semantics, KISS2 round-trips, generator guarantees, benchmarks. *)

let test_kiss_roundtrip () =
  let m = Helpers.small_fsm () in
  let text = Fsm.Kiss.to_string m in
  let m2 = Fsm.Kiss.parse_string ~name:m.Fsm.Machine.name text in
  Alcotest.(check int) "inputs" m.Fsm.Machine.num_inputs m2.Fsm.Machine.num_inputs;
  Alcotest.(check int) "outputs" m.Fsm.Machine.num_outputs m2.Fsm.Machine.num_outputs;
  Alcotest.(check int) "states" (Fsm.Machine.num_states m) (Fsm.Machine.num_states m2);
  Alcotest.(check int) "transitions"
    (Array.length m.Fsm.Machine.transitions)
    (Array.length m2.Fsm.Machine.transitions);
  (* behaviour identical *)
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 20 do
    let seq =
      List.init 30 (fun _ -> Sim.Vectors.random_vector rng m.Fsm.Machine.num_inputs)
    in
    Alcotest.(check bool) "same run" true (Fsm.Machine.run m seq = Fsm.Machine.run m2 seq)
  done

let test_kiss_parse_example () =
  let text = ".i 2\n.o 1\n.s 2\n.r A\n00 A A 0\n01 A B 1\n-- B A 1\n.e\n" in
  let m = Fsm.Kiss.parse_string text in
  Alcotest.(check int) "states" 2 (Fsm.Machine.num_states m);
  Alcotest.(check int) "reset" 0 m.Fsm.Machine.reset;
  let dst, outs = Fsm.Machine.step_total m ~state:0 ~input_code:0b10 in
  Alcotest.(check int) "01 goes to B" 1 dst;
  Alcotest.(check bool) "output" true outs.(0)

let test_kiss_rejects_garbage () =
  Alcotest.check_raises "bad cube" (Fsm.Kiss.Parse_error (2, "bad cube character z"))
    (fun () -> ignore (Fsm.Kiss.parse_string ".i 2\nzz A B 1\n"))

(* Malformed header counts must surface as line-numbered parse errors,
   not a bare [Failure "int_of_string"]. *)
let test_kiss_rejects_bad_counts () =
  Alcotest.check_raises "non-numeric .i"
    (Fsm.Kiss.Parse_error (1, ".i: bad integer \"x\""))
    (fun () -> ignore (Fsm.Kiss.parse_string ".i x\n.o 1\n.e\n"));
  Alcotest.check_raises "negative .p"
    (Fsm.Kiss.Parse_error (3, ".p: negative count -3"))
    (fun () -> ignore (Fsm.Kiss.parse_string ".i 1\n.o 1\n.p -3\n.e\n"))

let test_generator_deterministic () =
  let a = Helpers.small_fsm ~seed:3 () in
  let b = Helpers.small_fsm ~seed:3 () in
  Alcotest.(check bool) "same machine" true (a = b);
  let c = Helpers.small_fsm ~seed:4 () in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_generator_reachable_deterministic () =
  for seed = 1 to 20 do
    let m = Helpers.small_fsm ~seed ~states:9 () in
    Alcotest.(check int)
      (Printf.sprintf "all states reachable (seed %d)" seed)
      9
      (List.length (Fsm.Machine.reachable_states m));
    Alcotest.(check bool)
      (Printf.sprintf "deterministic (seed %d)" seed)
      true
      (Fsm.Machine.is_deterministic m)
  done

let test_benchmarks_match_table1 () =
  List.iter
    (fun (e : Fsm.Benchmarks.entry) ->
      let m = Fsm.Benchmarks.machine e in
      Alcotest.(check int)
        (e.Fsm.Benchmarks.name ^ " states")
        e.Fsm.Benchmarks.paper_states
        (Fsm.Machine.num_states m);
      Alcotest.(check int)
        (e.Fsm.Benchmarks.name ^ " inputs capped")
        (min e.Fsm.Benchmarks.paper_pi 8)
        m.Fsm.Machine.num_inputs;
      Alcotest.(check int)
        (e.Fsm.Benchmarks.name ^ " reachable")
        e.Fsm.Benchmarks.paper_states
        (List.length (Fsm.Machine.reachable_states m)))
    Fsm.Benchmarks.all

let test_step_total_completion () =
  let m = Helpers.small_fsm () in
  (* the completed machine must answer every (state, input) pair *)
  for s = 0 to Fsm.Machine.num_states m - 1 do
    for code = 0 to (1 lsl m.Fsm.Machine.num_inputs) - 1 do
      let dst, outs = Fsm.Machine.step_total m ~state:s ~input_code:code in
      Alcotest.(check bool) "dst in range" true
        (dst >= 0 && dst < Fsm.Machine.num_states m);
      Alcotest.(check int) "output width" m.Fsm.Machine.num_outputs
        (Array.length outs)
    done
  done

let qcheck_observed_refines_total =
  Helpers.qcheck_case "step_observed refines step_total"
    QCheck2.Gen.(pair (int_range 0 5) (int_range 0 7))
    (fun (s, code) ->
      let m = Helpers.small_fsm () in
      let s = s mod Fsm.Machine.num_states m in
      let dst_t, outs_t = Fsm.Machine.step_total m ~state:s ~input_code:code in
      let dst_o, outs_o = Fsm.Machine.step_observed m ~state:s ~input_code:code in
      dst_t = dst_o
      && Array.for_all2
           (fun t o ->
             match o with
             | Sim.Value3.X -> true
             | v -> Sim.Value3.to_bool_opt v = Some t)
           outs_t outs_o)

let suite =
  [
    Alcotest.test_case "kiss2 roundtrip" `Quick test_kiss_roundtrip;
    Alcotest.test_case "kiss2 parse example" `Quick test_kiss_parse_example;
    Alcotest.test_case "kiss2 rejects garbage" `Quick test_kiss_rejects_garbage;
    Alcotest.test_case "kiss2 rejects bad counts" `Quick
      test_kiss_rejects_bad_counts;
    Alcotest.test_case "generator is deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "generator reachability/determinism" `Quick
      test_generator_reachable_deterministic;
    Alcotest.test_case "benchmarks match Table 1" `Quick
      test_benchmarks_match_table1;
    Alcotest.test_case "completed semantics total" `Quick
      test_step_total_completion;
    qcheck_observed_refines_total;
  ]
