let () =
  Alcotest.run "satpg"
    [
      ("netlist", Test_netlist.suite);
      ("sim", Test_sim.suite);
      ("twolevel", Test_twolevel.suite);
      ("fsm", Test_fsm.suite);
      ("synth", Test_synth.suite);
      ("retime", Test_retime.suite);
      ("analysis", Test_analysis.suite);
      ("untest", Test_untest.suite);
      ("bdd", Test_bdd.suite);
      ("fsim", Test_fsim.suite);
      ("tape", Test_tape.suite);
      ("atpg", Test_atpg.suite);
      ("learn", Test_learn.suite);
      ("core", Test_core.suite);
      ("store", Test_store.suite);
      ("lint", Test_lint.suite);
      ("obs", Test_obs.suite);
      ("diff", Test_diff.suite);
      ("exec", Test_exec.suite);
      ("dft", Test_dft.suite);
      ("serve", Test_serve.suite);
    ]
