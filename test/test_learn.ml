(* Conflict-driven structural learning (Atpg.Learn): clause derivation
   from implication states, cross-fault and cross-frame reuse, failed-cube
   generalization, and the two global guarantees — learn-off stays
   bit-identical to the seed engine, and learn-on never contradicts a
   resolved learn-off verdict. *)

(* stem = Buf(a) feeding And(stem, b) -> PO: with b = 0 the AND is a
   determinate-equal wall one hop from the fault site, so the minimal
   blocking clause is exactly [(And, frame 0, 0)]. *)
let wall_circuit () =
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  let bi = Netlist.Build.add_pi b "b" in
  let stem = Netlist.Build.add_gate b Netlist.Node.Buf "stem" [| a |] in
  let g = Netlist.Build.add_gate b Netlist.Node.And "g" [| stem; bi |] in
  Netlist.Build.add_po b "out" g;
  (Netlist.Build.finalize b, stem, g)

(* stem = Buf(a) -> DFF -> And(dff, b) -> PO: the only wall sits one
   frame later than the fault site, so the derived clause carries a
   relative-frame-1 literal. *)
let cross_frame_circuit () =
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  let bi = Netlist.Build.add_pi b "b" in
  let q = Netlist.Build.add_dff b "q" in
  let stem = Netlist.Build.add_gate b Netlist.Node.Buf "stem" [| a |] in
  let g = Netlist.Build.add_gate b Netlist.Node.And "g" [| q; bi |] in
  Netlist.Build.connect_dff b q stem;
  Netlist.Build.add_po b "out" g;
  (Netlist.Build.finalize b, stem, g)

let sa0 id = { Fsim.Fault.site = Fsim.Fault.Stem id; stuck = false }
let sa1 id = { Fsim.Fault.site = Fsim.Fault.Stem id; stuck = true }

let pi_index c name =
  let id = Netlist.Node.find_by_name c name in
  let r = ref (-1) in
  Array.iteri (fun i pid -> if pid = id then r := i) c.Netlist.Node.pis;
  !r

let test_minimal_clause () =
  let c, stem, g = wall_circuit () in
  let fault = sa0 stem in
  let stats = Atpg.Types.new_stats () in
  let fr = Atpg.Frames.create ~fault c ~frames:1 ~stats in
  fr.Atpg.Frames.pi.(0).(pi_index c "b") <- Sim.Value3.Zero;
  Atpg.Frames.imply fr;
  let t = Atpg.Learn.create c in
  let site = Atpg.Learn.anchor fault in
  match Atpg.Learn.analyze t ~site ~stats fr with
  | None -> Alcotest.fail "expected a clause"
  | Some clause ->
    Alcotest.(check int) "one literal" 1 (Array.length clause);
    let l = clause.(0) in
    Alcotest.(check int) "wall is the AND" (Atpg.Learn.key_of_node t g)
      l.Atpg.Learn.key;
    Alcotest.(check int) "frame 0" 0 l.Atpg.Learn.frame;
    Alcotest.(check bool) "value 0" false l.Atpg.Learn.value;
    Alcotest.(check int) "conflict counted" 1 stats.Atpg.Types.learn_conflicts

let test_analyze_refuses_open_cone () =
  (* with b unassigned the potential-D cone runs straight into the PO:
     no sound clause exists and analyze must say so *)
  let c, stem, _ = wall_circuit () in
  let fault = sa0 stem in
  let stats = Atpg.Types.new_stats () in
  let fr = Atpg.Frames.create ~fault c ~frames:1 ~stats in
  Atpg.Frames.imply fr;
  let t = Atpg.Learn.create c in
  Alcotest.(check bool) "no clause" true
    (Atpg.Learn.analyze t ~site:(Atpg.Learn.anchor fault) ~stats fr = None);
  Alcotest.(check bool) "store empty, nothing blocked" false
    (Atpg.Learn.blocked t ~site:(Atpg.Learn.anchor fault) ~stats fr)

let test_cross_frame_clause_and_reuse () =
  let c, stem, g = cross_frame_circuit () in
  let fault = sa0 stem in
  let stats = Atpg.Types.new_stats () in
  let fr = Atpg.Frames.create ~fault c ~frames:2 ~stats in
  fr.Atpg.Frames.pi.(1).(pi_index c "b") <- Sim.Value3.Zero;
  Atpg.Frames.imply fr;
  let t = Atpg.Learn.create c in
  let site = Atpg.Learn.anchor fault in
  (match Atpg.Learn.analyze t ~site ~stats fr with
   | None -> Alcotest.fail "expected a clause"
   | Some clause ->
     Alcotest.(check int) "one literal" 1 (Array.length clause);
     Alcotest.(check int) "literal in frame 1" 1 clause.(0).Atpg.Learn.frame;
     Alcotest.(check int) "wall is the AND" (Atpg.Learn.key_of_node t g)
       clause.(0).Atpg.Learn.key);
  (* the store is consulted by anchor node: the opposite-polarity fault
     of the same equivalence class reuses the clause verbatim *)
  Alcotest.(check bool) "same-site reuse (sa0)" true
    (Atpg.Learn.blocked t ~site ~stats fr);
  Alcotest.(check bool) "cross-fault reuse (sa1)" true
    (Atpg.Learn.blocked t ~site:(Atpg.Learn.anchor (sa1 stem)) ~stats fr);
  Alcotest.(check bool) "hits counted" true (stats.Atpg.Types.learn_hits >= 2);
  (* a state where the wall is gone must not match *)
  fr.Atpg.Frames.pi.(1).(pi_index c "b") <- Sim.Value3.X;
  Atpg.Frames.imply fr;
  Alcotest.(check bool) "open state not blocked" false
    (Atpg.Learn.blocked t ~site ~stats fr)

let test_failed_cube_generalization () =
  let c, _, _ = wall_circuit () in
  let t = Atpg.Learn.create c in
  let stats = Atpg.Types.new_stats () in
  let x = Sim.Value3.X and z = Sim.Value3.Zero and o = Sim.Value3.One in
  (* complete refutation that only ever read bit 0: generalizes to (0,-) *)
  Atpg.Learn.note_failed_cube t ~complete:true ~read:[| true; false |] ~stats
    [| z; o |];
  Alcotest.(check bool) "refined cube pruned" true
    (Atpg.Learn.cube_blocked t ~stats [| z; z |]);
  Alcotest.(check bool) "unread bit ignored" true
    (Atpg.Learn.cube_blocked t ~stats [| z; o |]);
  Alcotest.(check bool) "conflicting bit not pruned" false
    (Atpg.Learn.cube_blocked t ~stats [| o; o |]);
  (* incomplete refutations record the exact signature only *)
  Atpg.Learn.note_failed_cube t ~complete:false ~read:[| true; true |] ~stats
    [| o; x |];
  Alcotest.(check bool) "exact signature recorded incomplete" true
    (Atpg.Learn.failed_exact t "1x" = Some false);
  Alcotest.(check bool) "incomplete cube does not generalize" false
    (Atpg.Learn.cube_blocked t ~stats [| o; z |]);
  let clauses, _, cubes = Atpg.Learn.sizes t in
  Alcotest.(check int) "no phase-A clauses" 0 clauses;
  Alcotest.(check int) "one generalized cube" 1 cubes

(* Budget of the CI table runs (SATPG_BUDGET=0.05), spelled explicitly so
   the test pins machine-independent numbers whatever the environment. *)
let ci_config =
  {
    Atpg.Types.default_config with
    Atpg.Types.backtrack_limit = 40;
    work_limit = 60_000;
    total_work_limit = 12_500_000;
  }

let study_pairs =
  [ ("dk16", Synth.Assign.Input_dominant, Synth.Flow.Delay);
    ("pma", Synth.Assign.Output_dominant, Synth.Flow.Delay);
    ("s510", Synth.Assign.Combined, Synth.Flow.Delay);
    ("s820", Synth.Assign.Combined, Synth.Flow.Rugged);
    ("s832", Synth.Assign.Output_dominant, Synth.Flow.Rugged);
    ("scf", Synth.Assign.Input_dominant, Synth.Flow.Delay) ]

let test_learn_off_bit_identity () =
  (* learn-off must be bit-identical to the seed engine on every study
     pair, under both the sequential and the parallel driver.  The
     anchor: dk16.ji.sd retimed at this budget has produced exactly
     these numbers since the engine was seeded. *)
  let with_jobs n f =
    Exec.Pool.set_jobs n;
    Fun.protect ~finally:Exec.Pool.reset_jobs f
  in
  List.iter
    (fun (name, alg, script) ->
      let p = Core.Flow.pair name alg script in
      List.iter
        (fun (label, circuit) ->
          let cfg = { ci_config with Atpg.Types.struct_learn = false } in
          let r1 = with_jobs 1 (fun () -> Atpg.Run.generate ~config:cfg circuit) in
          let r4 = with_jobs 4 (fun () -> Atpg.Run.generate ~config:cfg circuit) in
          Alcotest.(check bool)
            (label ^ " status j1=j4") true
            (r1.Atpg.Types.status = r4.Atpg.Types.status);
          Alcotest.(check int)
            (label ^ " work j1=j4")
            (Atpg.Types.work_units r1.Atpg.Types.stats)
            (Atpg.Types.work_units r4.Atpg.Types.stats);
          Alcotest.(check (float 0.0))
            (label ^ " coverage j1=j4")
            r1.Atpg.Types.fault_coverage r4.Atpg.Types.fault_coverage;
          if label = "dk16.ji.sd.re" then begin
            Alcotest.(check int) "seed-engine work units" 6_661_226
              (Atpg.Types.work_units r1.Atpg.Types.stats);
            Alcotest.(check (float 1e-9)) "seed-engine coverage"
              94.77088948787062 r1.Atpg.Types.fault_coverage
          end)
        [ (p.Core.Flow.name, p.Core.Flow.original);
          (p.Core.Flow.name ^ ".re", p.Core.Flow.retimed) ])
    study_pairs

let test_learn_race_detection_equality () =
  (* 30-circuit seeded sweep: learn-on may flip aborted <-> resolved
     (that budget effect is the point of learning) but two resolved
     verdicts must never contradict, and a redundancy claim must never
     cover a fault the random fault simulation detects. *)
  let fuzz_cfg struct_learn =
    { Atpg.Types.default_config with Atpg.Types.learn = false; struct_learn }
  in
  for seed = 7000 to 7014 do
    let r =
      Synth.Flow.synthesize ~reset_line:false ~algorithm:Synth.Assign.Combined
        ~script:Synth.Flow.Rugged
        (Fsm.Generate.generate
           {
             Fsm.Generate.default_spec with
             Fsm.Generate.name = Printf.sprintf "learnfuzz%d" seed;
             num_inputs = 2 + (seed mod 2);
             num_outputs = 1 + (seed mod 2);
             num_states = 4 + (seed mod 4);
             cubes_per_state = 3;
             seed;
           })
    in
    let c = r.Synth.Flow.circuit in
    let re, _ = Retime.Apply.retime_min_period c in
    List.iter
      (fun (label, circuit) ->
        let off =
          Atpg.Run.generate ~config:(fuzz_cfg false) ~seed circuit
        in
        let on = Atpg.Run.generate ~config:(fuzz_cfg true) ~seed circuit in
        Array.iteri
          (fun i s ->
            let s' = on.Atpg.Types.status.(i) in
            if s <> s' && s <> Fsim.Fault.Aborted && s' <> Fsim.Fault.Aborted
            then
              Alcotest.failf "seed %d %s fault %d: off=%s on=%s" seed label i
                (Fsim.Fault.status_to_string s)
                (Fsim.Fault.status_to_string s'))
          off.Atpg.Types.status;
        let faults = Fsim.Collapse.list circuit in
        let rng = Random.State.make [| seed; 0xf5 |] in
        let vectors =
          Sim.Vectors.random_sequence rng
            ~width:(Netlist.Node.num_pis circuit)
            ~length:32
        in
        let sim = Fsim.Engine.simulate circuit faults vectors in
        Array.iteri
          (fun i d ->
            if
              d
              && (off.Atpg.Types.status.(i) = Fsim.Fault.Redundant
                  || on.Atpg.Types.status.(i) = Fsim.Fault.Redundant)
            then
              Alcotest.failf
                "seed %d %s fault %d: redundant but simulation-detected" seed
                label i)
          sim.Fsim.Engine.detected)
      [ ("original", c); ("retimed", re) ]
  done

let suite =
  [
    Alcotest.test_case "minimal blocking clause" `Quick test_minimal_clause;
    Alcotest.test_case "analyze refuses open cone" `Quick
      test_analyze_refuses_open_cone;
    Alcotest.test_case "cross-frame clause, cross-fault reuse" `Quick
      test_cross_frame_clause_and_reuse;
    Alcotest.test_case "failed-cube generalization" `Quick
      test_failed_cube_generalization;
    Alcotest.test_case "learn-off bit-identity (6 pairs, j1/j4)" `Slow
      test_learn_off_bit_identity;
    Alcotest.test_case "learn-on/off detection equality (30 circuits)" `Slow
      test_learn_race_detection_equality;
  ]
