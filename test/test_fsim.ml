(* Fault model, collapsing and the parallel fault simulator. *)

let test_collapse_list_sane () =
  let c = Helpers.toy_circuit () in
  let faults = Fsim.Collapse.list c in
  Alcotest.(check bool) "non-empty" true (Array.length faults > 0);
  (* no duplicates *)
  let keyed = Array.map (fun f -> Fsim.Fault.to_string c f) faults in
  let distinct = List.sort_uniq compare (Array.to_list keyed) in
  Alcotest.(check int) "distinct" (Array.length faults) (List.length distinct)

let test_collapse_drops_equivalents () =
  (* AND-gate input sa0 on a fanout branch is equivalent to output sa0 and
     must not appear *)
  let c = Helpers.toy_circuit () in
  let faults = Fsim.Collapse.list c in
  let n0 = Netlist.Node.find_by_name c "n0" in
  Array.iter
    (fun (f : Fsim.Fault.t) ->
      match f.Fsim.Fault.site with
      | Fsim.Fault.Pin { gate; _ } when gate = n0 ->
        Alcotest.(check bool) "AND pin fault must be sa1" true f.Fsim.Fault.stuck
      | Fsim.Fault.Pin _ | Fsim.Fault.Stem _ -> ())
    faults

let test_detects_known_fault () =
  (* out = q0 xor q1, both init 0.  PO stem sa1 is detected by any vector. *)
  let c = Helpers.toy_circuit () in
  let n3 = Netlist.Node.find_by_name c "n3" in
  let f = { Fsim.Fault.site = Fsim.Fault.Stem n3; stuck = true } in
  Alcotest.(check bool) "detected" true
    (Fsim.Engine.detects c f [ [| false; false |] ])

let test_undetectable_without_excitation () =
  (* q0 stuck-at-0 with q0 init 0 and inputs held 0: q0' = a&q1 stays 0, so
     the fault never shows.  With a=1 pumping, q1 becomes 1 then q0'=1 and
     the fault is visible at out = q0 xor q1. *)
  let c = Helpers.toy_circuit () in
  let q0 = Netlist.Node.find_by_name c "q0" in
  let f = { Fsim.Fault.site = Fsim.Fault.Stem q0; stuck = false } in
  let zeros = List.init 6 (fun _ -> [| false; false |]) in
  Alcotest.(check bool) "quiet vectors do not detect" false
    (Fsim.Engine.detects c f zeros);
  let pump = List.init 6 (fun _ -> [| true; false |]) in
  Alcotest.(check bool) "pumping detects" true (Fsim.Engine.detects c f pump)

let qcheck_parallel_matches_serial =
  Helpers.qcheck_case ~count:25 "parallel fault sim = one-at-a-time"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let r = Helpers.synthesize_small ~seed:((seed mod 7) + 50) ~states:5 () in
      let c = r.Synth.Flow.circuit in
      let faults = Fsim.Collapse.list c in
      let rng = Random.State.make [| seed |] in
      let vectors =
        List.init 25 (fun _ ->
            Sim.Vectors.random_vector rng (Netlist.Node.num_pis c))
      in
      let run = Fsim.Engine.simulate c faults vectors in
      (* check a deterministic sample of 15 faults serially *)
      let step = max 1 (Array.length faults / 15) in
      let ok = ref true in
      Array.iteri
        (fun i f ->
          if i mod step = 0 then
            if Fsim.Engine.detects c f vectors <> run.Fsim.Engine.detected.(i)
            then ok := false)
        faults;
      !ok)

let test_good_states_tracked () =
  let c = Helpers.toy_circuit () in
  let faults = Fsim.Collapse.list c in
  let vectors =
    [ [| true; false |]; [| true; true |]; [| false; true |]; [| true; false |] ]
  in
  let run = Fsim.Engine.simulate c faults vectors in
  Alcotest.(check bool) "visited >= 2 states" true
    (List.length run.Fsim.Engine.good_states >= 2);
  (* states are distinct *)
  let d = List.sort_uniq compare run.Fsim.Engine.good_states in
  Alcotest.(check int) "distinct" (List.length run.Fsim.Engine.good_states)
    (List.length d)

let test_detect_time_recorded () =
  let c = Helpers.toy_circuit () in
  let n3 = Netlist.Node.find_by_name c "n3" in
  let faults = [| { Fsim.Fault.site = Fsim.Fault.Stem n3; stuck = true } |] in
  let run = Fsim.Engine.simulate c faults [ [| false; false |] ] in
  Alcotest.(check int) "first cycle" 0 run.Fsim.Engine.detect_time.(0)

let test_skip_respected () =
  let c = Helpers.toy_circuit () in
  let faults = Fsim.Collapse.list c in
  let skip = Array.make (Array.length faults) true in
  let run =
    Fsim.Engine.simulate ~skip c faults [ [| true; true |]; [| false; true |] ]
  in
  Alcotest.(check bool) "nothing simulated" true
    (Array.for_all not run.Fsim.Engine.detected)

(* The vector walk stops early once every lane in a batch has detected;
   detection results and times must be bit-identical to a run where the
   whole sequence is scanned (here: one fault per batch, so the early
   exit triggers as soon as that fault is seen). *)
let test_early_exit_identical () =
  let c = Helpers.toy_circuit () in
  let faults = Fsim.Collapse.list c in
  let rng = Random.State.make [| 42 |] in
  let vectors =
    List.init 400 (fun _ ->
        Sim.Vectors.random_vector rng (Netlist.Node.num_pis c))
  in
  let batched = Fsim.Engine.simulate c faults vectors in
  Array.iteri
    (fun i _ ->
      let solo = Fsim.Engine.simulate ~indices:[ i ] c faults vectors in
      Alcotest.(check bool)
        (Printf.sprintf "fault %d detected agrees" i)
        solo.Fsim.Engine.detected.(i)
        batched.Fsim.Engine.detected.(i);
      Alcotest.(check int)
        (Printf.sprintf "fault %d detect time agrees" i)
        solo.Fsim.Engine.detect_time.(i)
        batched.Fsim.Engine.detect_time.(i))
    faults

let suite =
  [
    Alcotest.test_case "collapsed list sane" `Quick test_collapse_list_sane;
    Alcotest.test_case "equivalents dropped" `Quick
      test_collapse_drops_equivalents;
    Alcotest.test_case "detects known fault" `Quick test_detects_known_fault;
    Alcotest.test_case "excitation needed" `Quick
      test_undetectable_without_excitation;
    qcheck_parallel_matches_serial;
    Alcotest.test_case "good states tracked" `Quick test_good_states_tracked;
    Alcotest.test_case "detect time recorded" `Quick test_detect_time_recorded;
    Alcotest.test_case "skip respected" `Quick test_skip_respected;
    Alcotest.test_case "early exit preserves results" `Quick
      test_early_exit_identical;
  ]
