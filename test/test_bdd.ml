(* ROBDD engine and symbolic reachability: every operator is checked
   against exhaustive truth tables (canonicity makes expected-vs-actual a
   plain edge comparison), and Symreach is cross-checked bit-for-bit
   against explicit enumeration wherever the latter is feasible. *)

let nvars = 4
let nminterms = 1 lsl nvars
let table_mask = (1 lsl nminterms) - 1

(* Build the BDD of a truth table (bit m of [table] = value on minterm m,
   variable v of minterm m = bit v of m) as an OR of minterm cubes. *)
let of_table man table =
  let f = ref Bdd.zero in
  for m = 0 to nminterms - 1 do
    if (table lsr m) land 1 = 1 then begin
      let cube = ref Bdd.one in
      for v = 0 to nvars - 1 do
        let lit = Bdd.var man v in
        let lit = if (m lsr v) land 1 = 1 then lit else Bdd.not_ lit in
        cube := Bdd.and_ man !cube lit
      done;
      f := Bdd.or_ man !f !cube
    end
  done;
  !f

let popcount table =
  let rec go acc t = if t = 0 then acc else go (acc + (t land 1)) (t lsr 1) in
  go 0 table

(* Truth-table images of the operators under test. *)
let tbl_restrict table ~var ~value =
  let out = ref 0 in
  for m = 0 to nminterms - 1 do
    let m' =
      if value then m lor (1 lsl var) else m land lnot (1 lsl var)
    in
    if (table lsr m') land 1 = 1 then out := !out lor (1 lsl m)
  done;
  !out

let tbl_compose table ~var gtable =
  let out = ref 0 in
  for m = 0 to nminterms - 1 do
    let gv = (gtable lsr m) land 1 = 1 in
    let m' = if gv then m lor (1 lsl var) else m land lnot (1 lsl var) in
    if (table lsr m') land 1 = 1 then out := !out lor (1 lsl m)
  done;
  !out

let random_tables n =
  let rng = Random.State.make [| 20260806 |] in
  List.init n (fun _ -> Random.State.int rng (table_mask + 1))

let test_table_roundtrip () =
  let man = Bdd.create () in
  List.iter
    (fun table ->
      let f = of_table man table in
      (* eval reproduces every minterm *)
      for m = 0 to nminterms - 1 do
        let got = Bdd.eval man f (fun v -> (m lsr v) land 1 = 1) in
        Alcotest.(check bool)
          (Printf.sprintf "table %x minterm %d" table m)
          ((table lsr m) land 1 = 1)
          got
      done;
      (* model count = popcount, in both the float and int counters *)
      Alcotest.(check (float 0.0))
        "sat_count"
        (float_of_int (popcount table))
        (Bdd.sat_count man ~nvars f);
      Alcotest.(check (option int))
        "sat_count_int" (Some (popcount table))
        (Bdd.sat_count_int man ~nvars f))
    (random_tables 50)

let test_operators_canonical () =
  let man = Bdd.create () in
  let tables = random_tables 40 in
  let check name expected actual =
    Alcotest.(check bool) name true (Bdd.equal (of_table man expected) actual)
  in
  List.iteri
    (fun i t1 ->
      let t2 = List.nth tables (List.length tables - 1 - i) in
      let f = of_table man t1 and g = of_table man t2 in
      check "and" (t1 land t2) (Bdd.and_ man f g);
      check "or" (t1 lor t2) (Bdd.or_ man f g);
      check "xor" (t1 lxor t2 land table_mask) (Bdd.xor_ man f g);
      check "xnor" (lnot (t1 lxor t2) land table_mask) (Bdd.xnor_ man f g);
      check "not" (lnot t1 land table_mask) (Bdd.not_ f);
      check "ite" (t1 land t2 lor (lnot t1 land table_mask))
        (Bdd.ite man f g Bdd.one);
      (* complement-edge invariants *)
      Alcotest.(check bool) "double negation" true
        (Bdd.equal f (Bdd.not_ (Bdd.not_ f)));
      Alcotest.(check bool) "f xor f" true (Bdd.is_false (Bdd.xor_ man f f));
      Alcotest.(check bool) "ite f 1 0" true
        (Bdd.equal f (Bdd.ite man f Bdd.one Bdd.zero)))
    tables

let test_quantify_restrict_compose () =
  let man = Bdd.create () in
  let tables = random_tables 30 in
  let check name expected actual =
    Alcotest.(check bool) name true (Bdd.equal (of_table man expected) actual)
  in
  List.iteri
    (fun i t1 ->
      let t2 = List.nth tables (List.length tables - 1 - i) in
      let f = of_table man t1 and g = of_table man t2 in
      for v = 0 to nvars - 1 do
        check "restrict v=0" (tbl_restrict t1 ~var:v ~value:false)
          (Bdd.restrict man f ~var:v ~value:false);
        check "restrict v=1" (tbl_restrict t1 ~var:v ~value:true)
          (Bdd.restrict man f ~var:v ~value:true);
        check "compose"
          (tbl_compose t1 ~var:v t2)
          (Bdd.compose man f ~var:v g)
      done;
      (* exists over the even variables, pointwise and fused *)
      let pred v = v land 1 = 0 in
      let tbl_ex =
        let t = ref t1 in
        for v = 0 to nvars - 1 do
          if pred v then
            t := tbl_restrict !t ~var:v ~value:false
                 lor tbl_restrict !t ~var:v ~value:true
        done;
        !t
      in
      check "exists" tbl_ex (Bdd.exists man pred f);
      Alcotest.(check bool) "and_exists = exists(and)" true
        (Bdd.equal
           (Bdd.exists man pred (Bdd.and_ man f g))
           (Bdd.and_exists man pred f g)))
    tables

let test_rename () =
  let man = Bdd.create () in
  List.iter
    (fun table ->
      let f = of_table man table in
      (* shift every variable up by 3: order-preserving, so the renamed
         function evaluates identically under the shifted assignment *)
      let r = Bdd.rename man (fun v -> v + 3) f in
      for m = 0 to nminterms - 1 do
        Alcotest.(check bool) "shifted eval"
          (Bdd.eval man f (fun v -> (m lsr v) land 1 = 1))
          (Bdd.eval man r (fun v -> (m lsr (v - 3)) land 1 = 1))
      done;
      Alcotest.(check (list int)) "shifted support"
        (List.map (fun v -> v + 3) (Bdd.support man f))
        (Bdd.support man r))
    (random_tables 20);
  (* an order-breaking map must be rejected *)
  let x0 = Bdd.var man 0 and x1 = Bdd.var man 1 in
  let f = Bdd.and_ man x0 x1 in
  Alcotest.check_raises "non-monotone rename"
    (Invalid_argument "Bdd.rename: map must preserve the variable order")
    (fun () -> ignore (Bdd.rename man (fun v -> 1 - v) f))

let test_node_limit () =
  let man = Bdd.create ~max_nodes:8 () in
  Alcotest.check_raises "budget exhausted" Bdd.Node_limit (fun () ->
      (* parity of 16 variables needs far more than 8 nodes *)
      let f = ref Bdd.zero in
      for v = 0 to 15 do
        f := Bdd.xor_ man !f (Bdd.var man v)
      done;
      ignore !f)

let test_sat_count_wide () =
  let man = Bdd.create () in
  let f = Bdd.var man 0 in
  (* one fixed variable out of 65 free ones: 2^64 models *)
  Alcotest.(check (float 0.0))
    "2^64" (ldexp 1.0 64)
    (Bdd.sat_count man ~nvars:65 f);
  Alcotest.(check (option int)) "past int range" None
    (Bdd.sat_count_int man ~nvars:65 f);
  Alcotest.(check (option int))
    "within int range" (Some 1)
    (Bdd.sat_count_int man ~nvars:4 (of_table man 0x8000))

(* Small counts over a wide variable space: negated literals create
   complement edges, and a subtraction-based counter (2^k -. x) would
   cancel catastrophically once both operands pass 2^53.  These must stay
   exact for any nvars. *)
let test_sat_count_small_wide () =
  let man = Bdd.create () in
  let nvars = 60 in
  (* a single minterm over 60 variables, half the literals negated *)
  let minterm = ref Bdd.one in
  for v = 0 to nvars - 1 do
    let lit = Bdd.var man v in
    let lit = if v land 1 = 0 then lit else Bdd.not_ lit in
    minterm := Bdd.and_ man !minterm lit
  done;
  Alcotest.(check (float 0.0))
    "one minterm in 2^60" 1.0
    (Bdd.sat_count man ~nvars !minterm);
  (* three disjoint minterms, differing in the low two variables *)
  let shifted bits =
    let f = ref Bdd.one in
    for v = 0 to nvars - 1 do
      let lit = Bdd.var man v in
      let on = if v < 2 then (bits lsr v) land 1 = 1 else v land 1 = 0 in
      f := Bdd.and_ man !f (if on then lit else Bdd.not_ lit)
    done;
    !f
  in
  let three =
    Bdd.or_ man (shifted 0) (Bdd.or_ man (shifted 1) (shifted 2))
  in
  Alcotest.(check (float 0.0))
    "three states over 60 bits" 3.0
    (Bdd.sat_count man ~nvars three);
  Alcotest.(check (option int))
    "int counter agrees" (Some 3)
    (Bdd.sat_count_int man ~nvars three);
  (* the complement: 2^60 - 3, exactly representable in a float *)
  Alcotest.(check (float 0.0))
    "complement count" (ldexp 1.0 nvars -. 3.0)
    (Bdd.sat_count man ~nvars (Bdd.not_ three))

(* ------------------------------------------------- symbolic reachability *)

let check_against_explicit name c =
  let r = Analysis.Reach.explore ~name c in
  let s = (Analysis.Symreach.explore c).Analysis.Symreach.summary in
  Alcotest.(check (float 0.0))
    (name ^ " valid states")
    (float_of_int r.Analysis.Reach.valid_states)
    s.Analysis.Symreach.valid_states;
  Alcotest.(check (option int))
    (name ^ " integer count")
    (Some r.Analysis.Reach.valid_states)
    s.Analysis.Symreach.valid_states_int;
  Alcotest.(check (float 0.0))
    (name ^ " density (bit-identical)")
    (Analysis.Reach.density r)
    (Analysis.Symreach.density s)

let test_symreach_toy () =
  let c = Helpers.toy_circuit () in
  check_against_explicit "toy" c;
  let r = Analysis.Reach.explore c in
  let s = Analysis.Symreach.explore c in
  (* membership agrees state by state *)
  for code = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "state %d membership" code)
      (Analysis.Reach.is_valid r code)
      (Analysis.Symreach.is_valid s
         (Array.init 2 (fun j -> (code lsr j) land 1 = 1)))
  done;
  (* can_take on a DFF output asks whether some reachable state sets that
     bit; cross-check against the explicit state set *)
  Array.iteri
    (fun i id ->
      List.iter
        (fun value ->
          let explicit =
            Hashtbl.fold
              (fun code () acc ->
                acc || (code lsr i) land 1 = (if value then 1 else 0))
              r.Analysis.Reach.states false
          in
          Alcotest.(check bool)
            (Printf.sprintf "can_take dff %d = %b" i value)
            explicit
            (Analysis.Symreach.can_take s id value))
        [ false; true ])
    c.Netlist.Node.dffs

let test_symreach_synthesized () =
  let r = Helpers.synthesize_small ~seed:45 ~states:7 () in
  check_against_explicit "toyfsm" r.Synth.Flow.circuit

(* A 65-stage shift register: beyond the explicit packed-int cap, and all
   2^65 states are reachable (beyond exact integer range). *)
let shift_register n =
  let b = Netlist.Build.create () in
  let si = Netlist.Build.add_pi b "si" in
  let qs =
    Array.init n (fun i ->
        Netlist.Build.add_dff b ~init:false (Printf.sprintf "q%d" i))
  in
  Array.iteri
    (fun i q ->
      Netlist.Build.connect_dff b q (if i = 0 then si else qs.(i - 1)))
    qs;
  Netlist.Build.add_po b "so" qs.(n - 1);
  Netlist.Build.finalize b

let test_symreach_shift65 () =
  let c = shift_register 65 in
  Alcotest.(check bool) "explicit infeasible" false (Analysis.Reach.feasible c);
  (try
     ignore (Analysis.Reach.explore ~name:"shift65" c);
     Alcotest.fail "explicit explore should have raised"
   with Invalid_argument msg ->
     Alcotest.(check bool)
       "error points at the symbolic engine" true
       (Helpers.contains_substring msg "--symbolic"));
  let s = (Analysis.Symreach.explore c).Analysis.Symreach.summary in
  Alcotest.(check (float 0.0)) "2^65 states" (ldexp 1.0 65)
    s.Analysis.Symreach.valid_states;
  Alcotest.(check (option int)) "count past integer range" None
    s.Analysis.Symreach.valid_states_int;
  Alcotest.(check int) "depth = pipeline length" 65
    s.Analysis.Symreach.depth;
  Alcotest.(check (float 0.0)) "density 1" 1.0 (Analysis.Symreach.density s)

(* 10 PIs exceed the explicit per-state enumeration cap; 2 DFFs keep a
   scalar brute force over 2^10 inputs x 4 states cheap. *)
let test_symreach_wide_inputs () =
  let b = Netlist.Build.create () in
  let pis = Array.init 10 (fun i -> Netlist.Build.add_pi b (Printf.sprintf "p%d" i)) in
  let q0 = Netlist.Build.add_dff b "q0" in
  let q1 = Netlist.Build.add_dff b "q1" in
  let conj = Netlist.Build.add_gate b Netlist.Node.And "conj" pis in
  Netlist.Build.connect_dff b q0 conj;
  Netlist.Build.connect_dff b q1 q0;
  Netlist.Build.add_po b "z" q1;
  let c = Netlist.Build.finalize b in
  Alcotest.(check bool) "explicit infeasible" false (Analysis.Reach.feasible c);
  (try
     ignore (Analysis.Reach.explore ~name:"wide" c);
     Alcotest.fail "explicit explore should have raised"
   with Invalid_argument msg ->
     Alcotest.(check bool)
       "error names the circuit" true
       (Helpers.contains_substring msg "wide"));
  (* brute force with the scalar simulator *)
  let sim = Sim.Scalar.create c in
  let reach = Hashtbl.create 7 in
  let rec go code =
    if not (Hashtbl.mem reach code) then begin
      Hashtbl.add reach code ();
      for input = 0 to (1 lsl 10) - 1 do
        let state =
          Array.init 2 (fun j -> Sim.Value3.of_bool ((code lsr j) land 1 = 1))
        in
        let inputs =
          Array.init 10 (fun i -> Sim.Value3.of_bool ((input lsr i) land 1 = 1))
        in
        let _, next = Sim.Scalar.transition sim ~state ~inputs in
        let nc = ref 0 in
        Array.iteri
          (fun j v -> if v = Sim.Value3.One then nc := !nc lor (1 lsl j))
          next;
        go !nc
      done
    end
  in
  go 0;
  let s = (Analysis.Symreach.explore c).Analysis.Symreach.summary in
  Alcotest.(check (option int))
    "matches scalar brute force"
    (Some (Hashtbl.length reach))
    s.Analysis.Symreach.valid_states_int

let test_symreach_node_limit () =
  let c = shift_register 8 in
  Alcotest.check_raises "budget too small" Bdd.Node_limit (fun () ->
      ignore (Analysis.Symreach.explore ~max_nodes:4 c))

(* Every seed benchmark pair within the explicit caps, bit-for-bit. *)
let test_symreach_benchmarks () =
  List.iter
    (fun (fsm, alg, script) ->
      let p = Core.Flow.pair fsm alg script in
      List.iter
        (fun (suffix, c) ->
          if Analysis.Reach.feasible c then
            check_against_explicit (p.Core.Flow.name ^ suffix) c)
        [ ("", p.Core.Flow.original); (".re", p.Core.Flow.retimed) ])
    [
      ("dk16", Synth.Assign.Input_dominant, Synth.Flow.Delay);
      ("pma", Synth.Assign.Output_dominant, Synth.Flow.Delay);
      ("s510", Synth.Assign.Combined, Synth.Flow.Delay);
      ("s820", Synth.Assign.Combined, Synth.Flow.Rugged);
      ("s832", Synth.Assign.Output_dominant, Synth.Flow.Rugged);
      ("scf", Synth.Assign.Input_dominant, Synth.Flow.Delay);
    ]

let suite =
  [
    Alcotest.test_case "truth-table roundtrip" `Quick test_table_roundtrip;
    Alcotest.test_case "operators vs truth tables" `Quick
      test_operators_canonical;
    Alcotest.test_case "quantify/restrict/compose" `Quick
      test_quantify_restrict_compose;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "node limit" `Quick test_node_limit;
    Alcotest.test_case "sat counts past integer range" `Quick
      test_sat_count_wide;
    Alcotest.test_case "small sat counts over wide spaces" `Quick
      test_sat_count_small_wide;
    Alcotest.test_case "symreach matches explicit (toy)" `Quick
      test_symreach_toy;
    Alcotest.test_case "symreach matches explicit (synthesized)" `Quick
      test_symreach_synthesized;
    Alcotest.test_case "symreach beyond the DFF cap" `Quick
      test_symreach_shift65;
    Alcotest.test_case "symreach beyond the PI cap" `Quick
      test_symreach_wide_inputs;
    Alcotest.test_case "symreach node limit" `Quick test_symreach_node_limit;
    Alcotest.test_case "symreach matches explicit (benchmarks)" `Slow
      test_symreach_benchmarks;
  ]
