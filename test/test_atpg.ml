(* ATPG engines: frames model, PODEM phases, justification, drivers.
   Everything runs on small synthesized circuits with tight budgets. *)

let small_circuit ?(seed = 55) ?(reset_line = false) () =
  (Helpers.synthesize_small ~alg:Synth.Assign.Combined
     ~script:Synth.Flow.Rugged ~reset_line ~seed ~states:6 ())
    .Synth.Flow.circuit

let tiny_config =
  {
    Atpg.Types.default_config with
    Atpg.Types.backtrack_limit = 200;
    work_limit = 300_000;
    total_work_limit = 60_000_000;
  }

let test_frames_good_matches_scalar () =
  (* with fully assigned inputs and state, the frames' good machine must
     equal the scalar simulator cycle by cycle *)
  let c = Helpers.toy_circuit () in
  let stats = Atpg.Types.new_stats () in
  let fr = Atpg.Frames.create c ~frames:3 ~stats in
  let rng = Random.State.make [| 9 |] in
  let vectors = List.init 3 (fun _ -> Sim.Vectors.random_vector rng 2) in
  List.iteri
    (fun t v ->
      Array.iteri (fun i b -> fr.Atpg.Frames.pi.(t).(i) <- Sim.Value3.of_bool b) v)
    vectors;
  Array.iteri (fun j _ -> fr.Atpg.Frames.ps0.(j) <- Sim.Value3.Zero)
    fr.Atpg.Frames.ps0;
  Atpg.Frames.imply fr;
  let sim = Sim.Scalar.create c in
  Sim.Scalar.reset sim;
  List.iteri
    (fun t v ->
      let out = Sim.Scalar.step sim (Sim.Vectors.to_v3 v) in
      Array.iteri
        (fun k (_, id) ->
          Alcotest.check Helpers.v3
            (Printf.sprintf "frame %d po %d" t k)
            out.(k)
            fr.Atpg.Frames.good.(t).(id))
        (Array.mapi (fun k po -> (k, snd po)) c.Netlist.Node.pos
         |> Array.map (fun (k, id) -> (k, id))))
    vectors

let test_frames_fault_injection () =
  let c = Helpers.toy_circuit () in
  let n3 = Netlist.Node.find_by_name c "n3" in
  let f = { Fsim.Fault.site = Fsim.Fault.Stem n3; stuck = true } in
  let stats = Atpg.Types.new_stats () in
  let fr = Atpg.Frames.create ~fault:f c ~frames:1 ~stats in
  Array.iteri (fun i _ -> fr.Atpg.Frames.pi.(0).(i) <- Sim.Value3.Zero)
    fr.Atpg.Frames.pi.(0);
  Array.iteri (fun j _ -> fr.Atpg.Frames.ps0.(j) <- Sim.Value3.Zero)
    fr.Atpg.Frames.ps0;
  Atpg.Frames.imply fr;
  (* out = q0 xor q1 = 0 in good, forced 1 in faulty: a D' *)
  Alcotest.check Helpers.v3 "good 0" Sim.Value3.Zero fr.Atpg.Frames.good.(0).(n3);
  Alcotest.check Helpers.v3 "faulty 1" Sim.Value3.One fr.Atpg.Frames.faulty.(0).(n3);
  Alcotest.(check bool) "detected" true (Atpg.Frames.detected fr)

let test_phase_a_finds_easy_fault () =
  let c = small_circuit () in
  let faults = Fsim.Collapse.list c in
  (* pick a PO-adjacent stem fault: should be found without backtracking
     storms *)
  let stats = Atpg.Types.new_stats () in
  let f = faults.(0) in
  let fr = Atpg.Frames.create ~fault:f c ~frames:4 ~stats in
  match Atpg.Podem.phase_a fr f tiny_config stats with
  | Atpg.Podem.Detected -> ()
  | Atpg.Podem.Exhausted _ ->
    (* acceptable only if the fault is genuinely undetectable within the
       window; verify with brute-force random simulation *)
    let rng = Random.State.make [| 1 |] in
    let vectors =
      List.init 500 (fun _ ->
          Sim.Vectors.random_vector rng (Netlist.Node.num_pis c))
    in
    Alcotest.(check bool) "exhaustion only for undetectable" false
      (Fsim.Engine.detects c f vectors)

let test_justify_reset_compatible () =
  let c = small_circuit () in
  let stats = Atpg.Types.new_stats () in
  let nbits = Netlist.Node.num_dffs c in
  (* the power-up state itself must justify with an empty prefix *)
  let required = Array.make nbits Sim.Value3.X in
  Array.iteri
    (fun j id ->
      if j = 0 then
        required.(j) <- Sim.Value3.of_bool (Netlist.Node.dff_init c id))
    c.Netlist.Node.dffs;
  match Atpg.Podem.justify c ~required ~cfg:tiny_config ~stats ~learn:None with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "expected empty prefix"
  | None -> Alcotest.fail "power-up state must justify"

let test_justify_unreachable_fails () =
  (* a 1-DFF circuit whose state can never become 1: q' = q AND a, init 0 *)
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  let q = Netlist.Build.add_dff b "q" in
  let g = Netlist.Build.add_gate b Netlist.Node.And "g" [| q; a |] in
  Netlist.Build.connect_dff b q g;
  Netlist.Build.add_po b "z" g;
  let c = Netlist.Build.finalize b in
  let stats = Atpg.Types.new_stats () in
  let required = [| Sim.Value3.One |] in
  Alcotest.(check bool) "unreachable state not justified" true
    (Atpg.Podem.justify c ~required ~cfg:tiny_config ~stats ~learn:None = None)

let test_generated_tests_validated () =
  let c = small_circuit ~seed:58 () in
  let r = Atpg.Run.generate ~config:tiny_config ~seed:2 c in
  (* every Detected fault must actually be detected by some test sequence,
     each applied from power-up (ground truth re-check) *)
  let detected = Array.make (Array.length r.Atpg.Types.faults) false in
  List.iter
    (fun seq ->
      let run = Fsim.Engine.simulate ~skip:detected c r.Atpg.Types.faults seq in
      Array.iteri
        (fun i d -> if d then detected.(i) <- true)
        run.Fsim.Engine.detected)
    r.Atpg.Types.test_sets;
  Array.iteri
    (fun i st ->
      if st = Fsim.Fault.Detected then
        Alcotest.(check bool)
          (Printf.sprintf "fault %d truly detected" i)
          true detected.(i))
    r.Atpg.Types.status

let test_redundant_faults_sound () =
  let c = small_circuit ~seed:59 () in
  let r = Atpg.Run.generate ~config:tiny_config ~seed:3 c in
  (* redundancy claims are checked against heavy random simulation *)
  let rng = Random.State.make [| 77 |] in
  let vectors =
    List.init 2000 (fun _ ->
        Sim.Vectors.random_vector rng (Netlist.Node.num_pis c))
  in
  Array.iteri
    (fun i st ->
      if st = Fsim.Fault.Redundant then
        Alcotest.(check bool) "redundant fault not detectable" false
          (Fsim.Engine.detects c r.Atpg.Types.faults.(i) vectors))
    r.Atpg.Types.status

let test_high_coverage_on_small () =
  let c = small_circuit ~seed:60 ~reset_line:true () in
  let r = Atpg.Run.generate ~config:tiny_config ~seed:4 c in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.1f >= 95" r.Atpg.Types.fault_coverage)
    true
    (r.Atpg.Types.fault_coverage >= 95.0)

let test_attest_engine () =
  let c = small_circuit ~seed:61 () in
  let r = Atpg.Attest.generate ~config:tiny_config c in
  Alcotest.(check bool)
    (Printf.sprintf "attest coverage %.1f >= 80" r.Atpg.Types.fault_coverage)
    true
    (r.Atpg.Types.fault_coverage >= 80.0);
  (* the Attest engine never claims redundancy: FE = FC *)
  Alcotest.(check (float 0.001)) "FE = FC" r.Atpg.Types.fault_coverage
    r.Atpg.Types.fault_efficiency

let test_sest_learning_helps_or_equal () =
  let c = small_circuit ~seed:62 () in
  let base = { tiny_config with Atpg.Types.learn = false } in
  let learn = { tiny_config with Atpg.Types.learn = true } in
  let r0 = Atpg.Run.generate ~config:base ~seed:5 c in
  let r1 = Atpg.Run.generate ~config:learn ~seed:5 c in
  Alcotest.(check bool) "learning does not reduce coverage" true
    (r1.Atpg.Types.fault_coverage >= r0.Atpg.Types.fault_coverage -. 2.0)

let test_trajectory_monotone () =
  let c = small_circuit ~seed:63 () in
  let r = Atpg.Run.generate ~config:tiny_config ~seed:6 c in
  let rec mono = function
    | (w1, e1) :: ((w2, e2) :: _ as rest) ->
      w1 <= w2 && e1 <= e2 +. 1e-9 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "work and FE nondecreasing" true
    (mono r.Atpg.Types.trajectory)

let test_budget_scaling_env () =
  let base = Atpg.Types.default_config in
  Unix.putenv "SATPG_BUDGET" "2.0";
  let scaled = Atpg.Types.scaled_config ~base () in
  Unix.putenv "SATPG_BUDGET" "";
  Alcotest.(check int) "backtracks doubled" (2 * base.Atpg.Types.backtrack_limit)
    scaled.Atpg.Types.backtrack_limit;
  Alcotest.(check int) "work doubled" (2 * base.Atpg.Types.work_limit)
    scaled.Atpg.Types.work_limit

let with_budget v f =
  Unix.putenv "SATPG_BUDGET" v;
  Fun.protect ~finally:(fun () -> Unix.putenv "SATPG_BUDGET" "") f

(* An unparsable scale warns and leaves the budgets alone; a scale that
   would zero or negate the budgets is rejected outright. *)
let test_budget_env_validation () =
  let base = Atpg.Types.default_config in
  with_budget "not-a-number" (fun () ->
      Alcotest.(check int) "typo leaves budgets unscaled"
        base.Atpg.Types.backtrack_limit
        (Atpg.Types.scaled_config ~base ()).Atpg.Types.backtrack_limit);
  List.iter
    (fun bad ->
      with_budget bad (fun () ->
          match Atpg.Types.scaled_config ~base () with
          | _ -> Alcotest.fail ("accepted SATPG_BUDGET=" ^ bad)
          | exception Invalid_argument _ -> ()))
    [ "0"; "-2"; "inf"; "nan" ]

let suite =
  [
    Alcotest.test_case "frames good machine = scalar sim" `Quick
      test_frames_good_matches_scalar;
    Alcotest.test_case "frames fault injection" `Quick
      test_frames_fault_injection;
    Alcotest.test_case "phase A finds easy fault" `Quick
      test_phase_a_finds_easy_fault;
    Alcotest.test_case "justify power-up state" `Quick
      test_justify_reset_compatible;
    Alcotest.test_case "justify unreachable fails" `Quick
      test_justify_unreachable_fails;
    Alcotest.test_case "generated tests validated" `Quick
      test_generated_tests_validated;
    Alcotest.test_case "redundancy claims sound" `Quick
      test_redundant_faults_sound;
    Alcotest.test_case "high coverage on small circuit" `Quick
      test_high_coverage_on_small;
    Alcotest.test_case "attest engine" `Quick test_attest_engine;
    Alcotest.test_case "sest learning" `Quick test_sest_learning_helps_or_equal;
    Alcotest.test_case "trajectory monotone" `Quick test_trajectory_monotone;
    Alcotest.test_case "budget env scaling" `Quick test_budget_scaling_env;
    Alcotest.test_case "budget env validation" `Quick
      test_budget_env_validation;
  ]
