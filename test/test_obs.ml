(* Observability tests: metrics registry semantics, span nesting/balance,
   Chrome-trace JSON round-trips, the JSONL <-> Atpg.Types.stats accounting
   invariant (events alone rebuild a run's aggregate work units and fault
   statuses, so Table-2-style ratios are recoverable offline), and the
   bit-identical-results property with tracing off vs on. *)

module J = Obs.Json

(* Every test must leave the global sinks uninstalled, or instrumentation
   leaks into unrelated suites. *)
let with_sinks f =
  let tsink = Obs.Trace.create () in
  let esink = Obs.Events.create () in
  Obs.Trace.install tsink;
  Obs.Events.install esink;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.uninstall ();
      Obs.Events.uninstall ())
    (fun () -> f tsink esink)

(* A cheap config so the ATPG-backed tests stay fast; the invariant under
   test is exact at any budget. *)
let small_config =
  {
    Atpg.Types.default_config with
    Atpg.Types.backtrack_limit = 50;
    work_limit = 50_000;
    total_work_limit = 2_000_000;
  }

let dk16_pair =
  lazy (Core.Flow.pair "dk16" Synth.Assign.Input_dominant Synth.Flow.Rugged)

(* --- json -------------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("i", J.Int (-42));
        ("big", J.Int max_int);
        ("f", J.Float 3.25);
        ("tiny", J.Float 1.0e-17);
        ("s", J.String "quote \" slash \\ newline \n tab \t");
        ("l", J.List [ J.Null; J.Bool true; J.Bool false; J.Int 0 ]);
        ("o", J.Obj [ ("nested", J.List [ J.Float 0.1 ]) ]);
      ]
  in
  Alcotest.(check bool)
    "parse inverts to_string" true
    (J.equal doc (J.parse (J.to_string doc)))

let test_json_float_property () =
  let open QCheck in
  Test.make ~count:500 ~name:"finite floats round-trip bit-exactly" float
    (fun f ->
      assume (Float.is_finite f);
      J.equal (J.Float f) (J.parse (J.to_string (J.Float f))))

let test_json_nonfinite () =
  Alcotest.(check string) "nan renders null" "null" (J.to_string (J.Float Float.nan));
  Alcotest.(check string)
    "inf renders null" "null"
    (J.to_string (J.Float Float.infinity))

(* --- metrics ----------------------------------------------------------------- *)

let test_registry () =
  let r = Obs.Metrics.create () in
  let c1 = Obs.Metrics.counter ~registry:r "a.count" in
  let c2 = Obs.Metrics.counter ~registry:r "a.count" in
  Obs.Metrics.add c1 5;
  Obs.Metrics.incr c2;
  Alcotest.(check int) "same name, same handle" 6 (Obs.Metrics.count c1);
  let g = Obs.Metrics.gauge ~registry:r "a.gauge" in
  Obs.Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge last-write-wins" 2.5 (Obs.Metrics.value g);
  let h = Obs.Metrics.histogram ~registry:r "a.hist" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 2; 3; 100 ];
  Alcotest.(check int) "observations" 5 (Obs.Metrics.observations h);
  Alcotest.(check int) "sum" 106 (Obs.Metrics.sum h);
  Alcotest.(check int) "bucket of 0" 0 (Obs.Metrics.bucket_of 0);
  Alcotest.(check int) "bucket of 1" 1 (Obs.Metrics.bucket_of 1);
  Alcotest.(check int) "bucket of 2" 1 (Obs.Metrics.bucket_of 2);
  Alcotest.(check int) "bucket of 3" 2 (Obs.Metrics.bucket_of 3);
  (* snapshot parses and holds the expected counter value *)
  let snap = J.parse (J.to_string (Obs.Metrics.snapshot ~registry:r ())) in
  let count =
    Option.bind (J.member "counters" snap) (J.member "a.count")
  in
  Alcotest.(check (option int))
    "snapshot counter" (Some 6)
    (Option.bind count J.to_int_opt);
  (* reset zeroes but keeps the registration (handles stay valid) *)
  Obs.Metrics.reset ~registry:r ();
  Obs.Metrics.incr c1;
  Alcotest.(check int) "reset keeps handles" 1 (Obs.Metrics.count c2)

(* --- spans ------------------------------------------------------------------- *)

let test_span_balance () =
  with_sinks @@ fun tsink _ ->
  Obs.Trace.set_time 10;
  Obs.Trace.span "outer" (fun () ->
      Obs.Trace.set_time 20;
      Obs.Trace.span "inner" (fun () -> Obs.Trace.set_time 30);
      Obs.Trace.instant "mark");
  (try
     Obs.Trace.span "raising" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "all spans closed" 0 (Obs.Trace.depth tsink);
  (* 2 events per span (x3) + 1 instant *)
  Alcotest.(check int) "event count" 7 (Obs.Trace.num_events tsink);
  let durs = Obs.Trace.durations tsink in
  let find n = List.find (fun (nm, _, _) -> nm = n) durs in
  let _, outer_n, outer_t = find "outer" in
  let _, _, inner_t = find "inner" in
  Alcotest.(check int) "outer count" 1 outer_n;
  Alcotest.(check int) "outer duration" 20 outer_t;
  Alcotest.(check int) "inner duration" 10 inner_t

let test_chrome_roundtrip () =
  let doc =
    with_sinks @@ fun tsink _ ->
    Obs.Trace.span "a" (fun () ->
        Obs.Trace.tick ();
        Obs.Trace.span "b" (fun () -> Obs.Trace.tick ()));
    Obs.Trace.to_chrome tsink
  in
  let parsed = J.parse (J.to_string doc) in
  Alcotest.(check bool) "chrome doc round-trips" true (J.equal doc parsed);
  match J.member "traceEvents" parsed with
  | Some (J.List evs) ->
    let phase e =
      Option.bind (J.member "ph" e) J.to_string_opt |> Option.value ~default:""
    in
    let count p = List.length (List.filter (fun e -> phase e = p) evs) in
    Alcotest.(check int) "begin/end balanced" (count "B") (count "E");
    Alcotest.(check int) "two spans" 2 (count "B");
    (* timestamps are monotone in file order for a single-threaded trace *)
    let ts =
      List.filter_map
        (fun e -> Option.bind (J.member "ts" e) J.to_int_opt)
        evs
    in
    Alcotest.(check bool)
      "timestamps monotone" true
      (fst
         (List.fold_left
            (fun (ok, prev) t -> (ok && t >= prev, t))
            (true, min_int) ts))
  | _ -> Alcotest.fail "traceEvents missing"

(* --- JSONL <-> stats invariant ----------------------------------------------- *)

let field_int name rec_ =
  match Option.bind (J.member name rec_) J.to_int_opt with
  | Some v -> v
  | None -> Alcotest.failf "record lacks int field %s" name

let field_str name rec_ =
  match Option.bind (J.member name rec_) J.to_string_opt with
  | Some v -> v
  | None -> Alcotest.failf "record lacks string field %s" name

(* Run [generate] with sinks installed; return (result, parsed JSONL). *)
let run_with_events generate =
  with_sinks @@ fun _ esink ->
  let r = generate () in
  (r, List.map J.parse (Obs.Events.to_lines esink))

(* Rebuild the aggregate accounting and per-fault statuses from the event
   records alone and compare them to the in-memory result.  When
   [fsim_vectors] (the run's delta of the "fsim.vectors" counter) is
   given, the per-event [sim_cycles] fields must sum to it: the events
   account for every faulty-machine cycle the engine actually ran. *)
let check_events_vs_stats ?fsim_vectors (r : Atpg.Types.result) events =
  let work = ref 0 and backtracks = ref 0 and sim_cycles = ref 0 in
  let n = Array.length r.Atpg.Types.faults in
  let status = Array.make n Fsim.Fault.Untested in
  List.iter
    (fun e ->
      work := !work + field_int "work" e;
      backtracks := !backtracks + field_int "backtracks" e;
      match field_str "ev" e with
      | "fault_sim" ->
        sim_cycles := !sim_cycles + field_int "sim_cycles" e;
        (match J.member "dropped" e with
         | Some (J.List l) ->
           List.iter
             (fun i ->
               match J.to_int_opt i with
               | Some i -> status.(i) <- Fsim.Fault.Detected
               | None -> Alcotest.fail "non-int dropped index")
             l
         | _ -> Alcotest.fail "fault_sim lacks dropped list")
      | "fault" ->
        let i = field_int "index" e in
        status.(i) <-
          (match field_str "status" e with
           | "detected" -> Fsim.Fault.Detected
           | "redundant" -> Fsim.Fault.Redundant
           | "aborted" -> Fsim.Fault.Aborted
           | "untested" -> Fsim.Fault.Untested
           | "proved_untestable" -> Fsim.Fault.Proved_untestable
           | s -> Alcotest.failf "unknown status %s" s)
      | "state_directory" -> ()
      | ev -> Alcotest.failf "unknown event kind %s" ev)
    events;
  (* faults never reached (global budget) are reported aborted *)
  Array.iteri
    (fun i s -> if s = Fsim.Fault.Untested then status.(i) <- Fsim.Fault.Aborted)
    status;
  Alcotest.(check int) "sum of event work" r.Atpg.Types.stats.Atpg.Types.work !work;
  Alcotest.(check int)
    "sum of event backtracks" r.Atpg.Types.stats.Atpg.Types.backtracks
    !backtracks;
  Alcotest.(check int)
    "work + 50*backtracks = work units"
    (Atpg.Types.work_units r.Atpg.Types.stats)
    (!work + (50 * !backtracks));
  Alcotest.(check bool)
    "statuses rebuilt from events" true
    (r.Atpg.Types.status = status);
  (match fsim_vectors with
   | Some delta ->
     Alcotest.(check int) "sum of event sim_cycles" delta !sim_cycles
   | None -> ());
  (* the running total in the last record agrees with the final stats *)
  match List.rev events with
  | last :: _ ->
    Alcotest.(check int)
      "final work_units_after"
      (Atpg.Types.work_units r.Atpg.Types.stats)
      (field_int "work_units_after" last)
  | [] -> Alcotest.fail "no events emitted"

(* Read outside parallel sections only (see Obs.Metrics). *)
let fsim_vectors_count () =
  Obs.Metrics.count (Obs.Metrics.counter "fsim.vectors")

let test_events_invariant_run () =
  let p = Lazy.force dk16_pair in
  let before = fsim_vectors_count () in
  let r, events =
    run_with_events (fun () ->
        Atpg.Run.generate ~config:small_config p.Core.Flow.original)
  in
  check_events_vs_stats ~fsim_vectors:(fsim_vectors_count () - before) r
    events

let test_events_invariant_attest () =
  let p = Lazy.force dk16_pair in
  let before = fsim_vectors_count () in
  let r, events =
    run_with_events (fun () ->
        Atpg.Attest.generate
          ~config:
            {
              small_config with
              Atpg.Types.work_limit = 20_000;
              total_work_limit = 500_000;
            }
          p.Core.Flow.original)
  in
  check_events_vs_stats ~fsim_vectors:(fsim_vectors_count () - before) r
    events

(* Table-2-style check: the retimed/original work-unit ratio of a benchmark
   pair, computed from the JSONL records alone, matches the ratio of the
   engines' own aggregate counters. *)
let test_table2_ratio_from_events () =
  let p = Lazy.force dk16_pair in
  let run circuit =
    run_with_events (fun () ->
        Atpg.Run.generate ~config:small_config circuit)
  in
  let ro, eo = run p.Core.Flow.original in
  let rr, er = run p.Core.Flow.retimed in
  let units events =
    List.fold_left
      (fun a e -> a + field_int "work" e + (50 * field_int "backtracks" e))
      0 events
  in
  let from_events = float_of_int (units er) /. float_of_int (units eo) in
  let from_stats =
    float_of_int (Atpg.Types.work_units rr.Atpg.Types.stats)
    /. float_of_int (Atpg.Types.work_units ro.Atpg.Types.stats)
  in
  Alcotest.(check (float 1e-9)) "ratio rebuilt offline" from_stats from_events

(* --- tracing on/off determinism ---------------------------------------------- *)

let test_instrumentation_is_inert () =
  let p = Lazy.force dk16_pair in
  let bare = Atpg.Run.generate ~config:small_config p.Core.Flow.original in
  let traced, _ =
    run_with_events (fun () ->
        Atpg.Run.generate ~config:small_config p.Core.Flow.original)
  in
  Alcotest.(check int)
    "work units identical"
    (Atpg.Types.work_units bare.Atpg.Types.stats)
    (Atpg.Types.work_units traced.Atpg.Types.stats);
  Alcotest.(check int)
    "decisions identical" bare.Atpg.Types.stats.Atpg.Types.decisions
    traced.Atpg.Types.stats.Atpg.Types.decisions;
  Alcotest.(check bool)
    "statuses identical" true
    (bare.Atpg.Types.status = traced.Atpg.Types.status);
  Alcotest.(check (float 0.0))
    "coverage identical" bare.Atpg.Types.fault_coverage
    traced.Atpg.Types.fault_coverage

(* --- ledger ------------------------------------------------------------------ *)

let sample_manifest ?(work_units = 12345) () =
  Obs.Ledger.make ~tool:"satpg" ~command:"atpg" ~circuit:"dk16.ji.sd"
    ~circuit_hash:"28aa055c2c44e829" ~config_fp:"ff99b63c788b4c2e"
    ~engine:"hitec" ~jobs:2 ~budget:"0.05" ~work_units
    ~metrics:(J.Obj [ ("counters", J.Obj [ ("x", J.Int 1) ]) ])
    ~spans:[ ("atpg.fault", 44, 9000); ("atpg.random_phase", 1, 345) ]
    ~event_lines:[ {|{"ev":"fault"}|}; {|{"ev":"fault_sim"}|} ]
    ()

let test_ledger_roundtrip () =
  let m = sample_manifest () in
  (* content-addressed: an identical run reproduces identical bytes *)
  Alcotest.(check string)
    "byte-identical re-make"
    (Obs.Ledger.to_string m)
    (Obs.Ledger.to_string (sample_manifest ()));
  (* any measured difference changes the id *)
  Alcotest.(check bool)
    "different run, different id" false
    (String.equal (Obs.Ledger.id m)
       (Obs.Ledger.id (sample_manifest ~work_units:12346 ())));
  match Obs.Ledger.of_json (J.parse (J.to_string (Obs.Ledger.to_json m))) with
  | Some m' ->
    Alcotest.(check string)
      "round-trip preserves the encoding"
      (Obs.Ledger.to_string m) (Obs.Ledger.to_string m');
    Alcotest.(check int)
      "round-trip preserves totals" (Obs.Ledger.work_units m)
      (Obs.Ledger.work_units m')
  | None -> Alcotest.fail "manifest does not decode"

let test_ledger_rejects_corruption () =
  let m = sample_manifest () in
  let decode j = Obs.Ledger.of_json j in
  (* a tampered body no longer matches the stored id *)
  let tampered =
    match Obs.Ledger.to_json m with
    | J.Obj fields ->
      J.Obj
        (List.map
           (function
             | "work_units", J.Int _ -> ("work_units", J.Int 1)
             | f -> f)
           fields)
    | _ -> Alcotest.fail "manifest is not an object"
  in
  Alcotest.(check bool) "tampered body rejected" true (decode tampered = None);
  Alcotest.(check bool)
    "garbage rejected" true
    (decode (J.Obj [ ("satpg_manifest", J.Int 1) ]) = None);
  Alcotest.(check bool)
    "wrong version rejected" true
    (decode
       (match Obs.Ledger.to_json m with
        | J.Obj fields ->
          J.Obj
            (List.map
               (function
                 | "satpg_manifest", _ -> ("satpg_manifest", J.Int 999)
                 | f -> f)
               fields)
        | _ -> J.Null)
    = None)

let test_ledger_digest () =
  (* line boundaries must not alias *)
  Alcotest.(check bool)
    "concatenation cannot alias" false
    (String.equal
       (Obs.Ledger.digest_lines [ "ab"; "c" ])
       (Obs.Ledger.digest_lines [ "a"; "bc" ]));
  Alcotest.(check string)
    "digest of lines = digest of file content"
    (Obs.Ledger.digest_string "x\ny\n")
    (Obs.Ledger.digest_lines [ "x"; "y" ])

(* --- folded-stack export ------------------------------------------------------ *)

let chrome ph name ts =
  J.Obj [ ("ph", J.String ph); ("name", J.String name); ("ts", J.Int ts) ]

let test_fold_self_times () =
  (* a[0,50] contains b[10,30]: a's self time excludes b's 20 units *)
  let folded =
    Obs.Fold.of_events
      [
        chrome "B" "a" 0;
        chrome "B" "b" 10;
        chrome "E" "b" 30;
        chrome "i" "mark" 35;
        chrome "E" "a" 50;
        chrome "E" "unbalanced" 60;
      ]
  in
  Alcotest.(check (list (pair string int)))
    "self times with instants/unbalanced ignored"
    [ ("a", 30); ("a;b", 20) ]
    folded;
  Alcotest.(check (list string))
    "folded lines" [ "a 30"; "a;b 20" ]
    (Obs.Fold.to_lines folded)

let test_fold_recursion () =
  (* recursive spans accumulate per distinct stack path *)
  let folded =
    Obs.Fold.of_events
      [
        chrome "B" "f" 0;
        chrome "B" "f" 5;
        chrome "E" "f" 15;
        chrome "E" "f" 30;
        chrome "B" "f" 40;
        chrome "E" "f" 45;
      ]
  in
  Alcotest.(check (list (pair string int)))
    "recursion and repetition fold together"
    [ ("f", 25); ("f;f", 10) ]
    folded;
  (* weights sum to the root spans' total duration *)
  Alcotest.(check int)
    "self times sum to total" 35
    (List.fold_left (fun a (_, s) -> a + s) 0 folded)

(* --- atomic file IO ----------------------------------------------------------- *)

let test_fileio_atomic () =
  let dir = Filename.temp_file "satpg_obs" "" in
  Sys.remove dir;
  let file = Filename.concat (Filename.concat dir "sub") "out.txt" in
  Obs.Fileio.write_string_atomic file "first\n";
  Alcotest.(check bool) "creates parent dirs" true (Sys.file_exists file);
  Obs.Fileio.write_string_atomic file "second\n";
  let read f = In_channel.with_open_bin f In_channel.input_all in
  Alcotest.(check string) "overwrite replaces content" "second\n" (read file);
  (* a writer that raises must leave the target untouched and no temp *)
  (try
     Obs.Fileio.write_atomic file (fun oc ->
         output_string oc "torn";
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check string) "failed write leaves old content" "second\n"
    (read file);
  Alcotest.(check (list string))
    "no temp files left" [ "out.txt" ]
    (Array.to_list (Sys.readdir (Filename.dirname file)));
  Obs.Fileio.append_line file "third";
  Alcotest.(check string) "append appends" "second\nthird\n" (read file)

(* --- spans and events under capture scopes ------------------------------------ *)

(* Trace spans inside a capture scope are suppressed (parallel work
   disappears from the trace rather than corrupting it) but must still
   balance; event records captured in scopes and applied in submission
   order must land in the sink in exactly that order. *)
let test_capture_span_balance_and_ordering () =
  with_sinks @@ fun tsink esink ->
  Obs.Events.emit [ ("seq", J.Int 0) ];
  let before = Obs.Trace.num_events tsink in
  let (), d1 =
    Obs.Capture.scope (fun () ->
        Obs.Trace.span "captured.outer" (fun () ->
            Obs.Trace.span "captured.inner" (fun () -> ());
            (* nested scope: inner delta folds into the outer capture *)
            let (), inner = Obs.Capture.scope (fun () ->
                Obs.Events.emit [ ("seq", J.Int 2) ])
            in
            Obs.Commit.apply inner);
        Obs.Events.emit [ ("seq", J.Int 1) ])
  in
  let (), d2 =
    Obs.Capture.scope (fun () -> Obs.Events.emit [ ("seq", J.Int 3) ])
  in
  Alcotest.(check int)
    "captured spans are suppressed" before
    (Obs.Trace.num_events tsink);
  Alcotest.(check int) "spans balance under capture" 0 (Obs.Trace.depth tsink);
  (* apply in submission order; note seq 2 committed before seq 1 inside
     the first scope, so emission order within the scope is 2, 1 *)
  Obs.Commit.apply d1;
  Obs.Commit.apply d2;
  let seqs =
    List.map
      (fun r ->
        match Option.bind (J.member "seq" r) J.to_int_opt with
        | Some i -> i
        | None -> Alcotest.fail "record lacks seq")
      (Obs.Events.records esink)
  in
  Alcotest.(check (list int)) "deltas apply in order" [ 0; 2; 1; 3 ] seqs

(* 1-vs-N folded-stack bit-identity: the trace (and therefore its folded
   export) must not depend on the configured domain count. *)
let test_folded_export_job_invariant () =
  let p = Lazy.force dk16_pair in
  let folded jobs =
    let saved = Exec.Pool.jobs () in
    Exec.Pool.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Exec.Pool.set_jobs saved)
      (fun () ->
        with_sinks @@ fun tsink _ ->
        ignore
          (Atpg.Run.generate ~config:small_config p.Core.Flow.original
            : Atpg.Types.result);
        Alcotest.(check int) "trace balanced" 0 (Obs.Trace.depth tsink);
        String.concat "\n"
          (Obs.Fold.to_lines (Obs.Fold.of_chrome (Obs.Trace.to_chrome tsink))))
  in
  Alcotest.(check string) "folded export identical at 1 vs 4 jobs" (folded 1)
    (folded 4)

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    QCheck_alcotest.to_alcotest (test_json_float_property ());
    Alcotest.test_case "json non-finite floats" `Quick test_json_nonfinite;
    Alcotest.test_case "metrics registry" `Quick test_registry;
    Alcotest.test_case "span nesting and balance" `Quick test_span_balance;
    Alcotest.test_case "chrome trace round-trip" `Quick test_chrome_roundtrip;
    Alcotest.test_case "events rebuild stats (hitec)" `Quick
      test_events_invariant_run;
    Alcotest.test_case "events rebuild stats (attest)" `Quick
      test_events_invariant_attest;
    Alcotest.test_case "table-2 ratio from JSONL alone" `Quick
      test_table2_ratio_from_events;
    Alcotest.test_case "tracing on/off is bit-identical" `Quick
      test_instrumentation_is_inert;
    Alcotest.test_case "ledger round-trip and byte identity" `Quick
      test_ledger_roundtrip;
    Alcotest.test_case "ledger rejects corruption" `Quick
      test_ledger_rejects_corruption;
    Alcotest.test_case "ledger line digest" `Quick test_ledger_digest;
    Alcotest.test_case "folded-stack self times" `Quick test_fold_self_times;
    Alcotest.test_case "folded-stack recursion" `Quick test_fold_recursion;
    Alcotest.test_case "atomic file IO" `Quick test_fileio_atomic;
    Alcotest.test_case "capture span balance and apply order" `Quick
      test_capture_span_balance_and_ordering;
    Alcotest.test_case "folded export 1-vs-N bit-identical" `Quick
      test_folded_export_job_invariant;
  ]
