(* Static untestability prover: cascade verdicts on known circuits, the
   shared fixpoint engine's bit-identity with the legacy constants loop,
   engine pruning, and the differential soundness fuzz (every prover
   verdict cross-checked against exhaustive product-machine fault
   simulation). *)

let v3 = Alcotest.testable Sim.Value3.pp Sim.Value3.equal

(* ------------------------------------------------------------ fixtures - *)

(* q0 <- a, q1 <- not a, g = and(q0, q1) -> z: state (1,1) is
   unreachable, so g/sa0 needs an unreachable activation state and the
   register stems' sa0 are masked in every reachable state. *)
let seq_redundant_circuit () =
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  let q0 = Netlist.Build.add_dff b "q0" in
  let q1 = Netlist.Build.add_dff b "q1" in
  let na = Netlist.Build.add_gate b Netlist.Node.Not "na" [| a |] in
  let g = Netlist.Build.add_gate b Netlist.Node.And "g" [| q0; q1 |] in
  Netlist.Build.connect_dff b q0 a;
  Netlist.Build.connect_dff b q1 na;
  Netlist.Build.add_po b "z" g;
  (Netlist.Build.finalize b, g, q0, q1)

(* dead = and(a, b) drives nothing; z = or(a, b) is the only PO. *)
let unobservable_circuit () =
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  let bb = Netlist.Build.add_pi b "b" in
  let dead = Netlist.Build.add_gate b Netlist.Node.And "dead" [| a; bb |] in
  let z = Netlist.Build.add_gate b Netlist.Node.Or "z" [| a; bb |] in
  Netlist.Build.add_po b "z" z;
  (Netlist.Build.finalize b, dead)

(* k is a constant-0 generator, g = and(a, k): g is constant 0 (g/sa0
   unexcitable) and a's fault effect is blocked at g (effect confined). *)
let const_blocked_circuit () =
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  let k = Netlist.Build.add_const b "k" false in
  let g = Netlist.Build.add_gate b Netlist.Node.And "g" [| a; k |] in
  Netlist.Build.add_po b "z" g;
  (Netlist.Build.finalize b, a, k, g)

let verdict_of t (f : Fsim.Fault.t) = Analysis.Untest.lookup t f

let check_proved t fault cause evidence msg =
  match verdict_of t fault with
  | Analysis.Untest.Untestable p ->
    Alcotest.(check string)
      (msg ^ " cause")
      (Analysis.Untest.cause_to_string cause)
      (Analysis.Untest.cause_to_string p.Analysis.Untest.cause);
    Alcotest.(check string)
      (msg ^ " evidence")
      (Analysis.Untest.evidence_to_string evidence)
      (Analysis.Untest.evidence_to_string p.Analysis.Untest.evidence)
  | Analysis.Untest.Unknown -> Alcotest.failf "%s: expected a proof" msg

(* ------------------------------------------- fixpoint engine identity - *)

(* The legacy Lint.Constants sweep loop, verbatim (pre-Fixpoint), kept
   here as the regression reference for bit-identical output. *)
let legacy_constants (c : Netlist.Node.t) =
  let n = Netlist.Node.num_nodes c in
  let value = Array.make n Sim.Value3.X in
  let state =
    Array.map
      (fun id -> Sim.Value3.of_bool (Netlist.Node.dff_init c id))
      c.Netlist.Node.dffs
  in
  let eval () =
    Array.iter (fun id -> value.(id) <- Sim.Value3.X) c.Netlist.Node.pis;
    Array.iteri (fun i id -> value.(id) <- state.(i)) c.Netlist.Node.dffs;
    Array.iter
      (fun id ->
        let nd = Netlist.Node.node c id in
        match nd.Netlist.Node.kind with
        | Netlist.Node.Gate fn ->
          let ins = Array.map (fun f -> value.(f)) nd.Netlist.Node.fanins in
          value.(id) <- Sim.Value3.eval_gate fn ins
        | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ())
      c.Netlist.Node.order
  in
  let changed = ref true in
  let max_sweeps = Netlist.Node.num_dffs c + 2 in
  let sweeps = ref 0 in
  while !changed && !sweeps < max_sweeps do
    changed := false;
    incr sweeps;
    eval ();
    Array.iteri
      (fun i id ->
        let data = (Netlist.Node.node c id).Netlist.Node.fanins.(0) in
        let next =
          if Sim.Value3.equal state.(i) value.(data) then state.(i)
          else Sim.Value3.X
        in
        if not (Sim.Value3.equal next state.(i)) then begin
          state.(i) <- next;
          changed := true
        end)
      c.Netlist.Node.dffs
  done;
  eval ();
  value

let test_fixpoint_matches_legacy () =
  let circuits =
    [ ("seq-redundant", (fun () -> let c, _, _, _ = seq_redundant_circuit () in c) ());
      ("const-blocked", (fun () -> let c, _, _, _ = const_blocked_circuit () in c) ());
      ("synthesized", (Helpers.synthesize_small ()).Synth.Flow.circuit) ]
  in
  List.iter
    (fun (name, c) ->
      let legacy = legacy_constants c in
      let shared = Analysis.Fixpoint.constants c in
      let lint = Lint.Constants.values c in
      Array.iteri
        (fun id v ->
          Alcotest.check v3 (Printf.sprintf "%s node %d (engine)" name id) v
            shared.(id);
          Alcotest.check v3 (Printf.sprintf "%s node %d (lint)" name id) v
            lint.(id))
        legacy)
    circuits

(* ------------------------------------------------------ cascade stages - *)

let test_unobservable () =
  let c, dead = unobservable_circuit () in
  (* the collapsed list drops faults on dangling nodes, so hand the
     classifier the dead gate's faults explicitly *)
  let faults =
    [| { Fsim.Fault.site = Fsim.Fault.Stem dead; stuck = true };
       { Fsim.Fault.site = Fsim.Fault.Stem dead; stuck = false } |]
  in
  let t = Analysis.Untest.classify ~faults c in
  check_proved t
    { Fsim.Fault.site = Fsim.Fault.Stem dead; stuck = true }
    Analysis.Untest.Unobservable Analysis.Untest.Structural "dead/sa1";
  check_proved t
    { Fsim.Fault.site = Fsim.Fault.Stem dead; stuck = false }
    Analysis.Untest.Unobservable Analysis.Untest.Structural "dead/sa0"

let test_ternary_stages () =
  let c, a, k, g = const_blocked_circuit () in
  let t = Analysis.Untest.classify ~symbolic:false c in
  (* g is proved constant 0 from power-up: sa0 on it is unexcitable *)
  check_proved t
    { Fsim.Fault.site = Fsim.Fault.Stem g; stuck = false }
    Analysis.Untest.Unexcitable Analysis.Untest.Ternary "g/sa0";
  (* a toggles freely but its effect is blocked by the constant side
     input at g's controlling value *)
  check_proved t
    { Fsim.Fault.site = Fsim.Fault.Stem a; stuck = false }
    Analysis.Untest.Effect_confined Analysis.Untest.Ternary "a/sa0";
  check_proved t
    { Fsim.Fault.site = Fsim.Fault.Stem a; stuck = true }
    Analysis.Untest.Effect_confined Analysis.Untest.Ternary "a/sa1";
  (* the constant generator's own sa1 is excitable (k reads 0, fault
     drives 1) and propagates: the engines must still see it *)
  Alcotest.(check bool)
    "k/sa1 stays unknown" true
    (verdict_of t { Fsim.Fault.site = Fsim.Fault.Stem k; stuck = true }
     = Analysis.Untest.Unknown);
  Alcotest.(check bool) "no symbolic stage ran" false
    t.Analysis.Untest.summary.Analysis.Untest.symbolic_ran

let test_symbolic_stages () =
  let c, g, q0, q1 = seq_redundant_circuit () in
  let t = Analysis.Untest.classify c in
  (* activation state (1,1) proved unreachable *)
  check_proved t
    { Fsim.Fault.site = Fsim.Fault.Stem g; stuck = false }
    Analysis.Untest.Unreachable_activation Analysis.Untest.Symbolic "g/sa0";
  (* register stems stuck at 0: masked in every reachable state — only
     the single-frame product check sees this cross-line correlation *)
  check_proved t
    { Fsim.Fault.site = Fsim.Fault.Stem q0; stuck = false }
    Analysis.Untest.Effect_confined Analysis.Untest.Symbolic "q0/sa0";
  check_proved t
    { Fsim.Fault.site = Fsim.Fault.Stem q1; stuck = false }
    Analysis.Untest.Effect_confined Analysis.Untest.Symbolic "q1/sa0";
  (* sa1 faults on the registers force g observable high: detectable *)
  Alcotest.(check bool)
    "q0/sa1 stays unknown" true
    (verdict_of t { Fsim.Fault.site = Fsim.Fault.Stem q0; stuck = true }
     = Analysis.Untest.Unknown);
  (* without the symbolic stage none of these are provable *)
  let t0 = Analysis.Untest.classify ~symbolic:false c in
  Alcotest.(check int) "static-only proves nothing here" 0
    t0.Analysis.Untest.summary.Analysis.Untest.proved;
  Alcotest.(check bool) "summary says symbolic ran" true
    t.Analysis.Untest.summary.Analysis.Untest.symbolic_ran;
  Alcotest.(check int) "three symbolic proofs" 3
    t.Analysis.Untest.summary.Analysis.Untest.symbolic

let test_invariant_universe () =
  let c, _, _, _ = seq_redundant_circuit () in
  let faults = Analysis.Untest.invariant_faults c in
  Array.iter
    (fun (f : Fsim.Fault.t) ->
      let site = Fsim.Fault.site_node f.Fsim.Fault.site in
      match (Netlist.Node.node c site).Netlist.Node.kind with
      | Netlist.Node.Dff _ -> Alcotest.fail "DFF site in invariant universe"
      | Netlist.Node.Pi _ | Netlist.Node.Gate _ -> ())
    faults;
  (* 1 PI stem + not(1 stem + 1 pin) + and(1 stem + 2 pins), 2 polarities *)
  Alcotest.(check int) "universe size" 12 (Array.length faults);
  let t = Analysis.Untest.classify ~faults c in
  let names = Analysis.Untest.proved_names c t in
  Alcotest.(check bool) "g/sa0 proved in invariant universe" true
    (List.mem "g/sa0" names);
  Alcotest.(check bool) "sorted" true (List.sort compare names = names)

(* -------------------------------------------------------- engine prune - *)

(* C4: faults whose state divergence exists but never reaches a PO.
   a/sa0 pins q0=0, q1=1 — the state genuinely differs from the good
   machine's, yet g = q0 AND q1 stays 0 exactly as in every good
   reachable state, so no stage short of the exact product machine can
   prove it. *)
let test_product_stage () =
  let c, _, q0, _ = seq_redundant_circuit () in
  let a = (Netlist.Node.node c q0).Netlist.Node.fanins.(0) in
  let na =
    match
      Array.find_opt
        (fun (nd : Netlist.Node.node) ->
          nd.Netlist.Node.kind = Netlist.Node.Gate Netlist.Node.Not)
        c.Netlist.Node.nodes
    with
    | Some nd -> nd.Netlist.Node.id
    | None -> Alcotest.fail "fixture lost its inverter"
  in
  let t = Analysis.Untest.classify ~product:true c in
  List.iter
    (fun (site, stuck, msg) ->
      check_proved t
        { Fsim.Fault.site; stuck }
        Analysis.Untest.Machine_equivalent Analysis.Untest.Symbolic msg)
    [ (Fsim.Fault.Stem a, false, "a/sa0");
      (Fsim.Fault.Stem a, true, "a/sa1");
      (Fsim.Fault.Stem na, false, "na/sa0") ];
  (* na/sa1 forces q1=1 next to a reachable q0=1: truly detectable *)
  Alcotest.(check bool)
    "na/sa1 stays unknown" true
    (verdict_of t { Fsim.Fault.site = Fsim.Fault.Stem na; stuck = true }
     = Analysis.Untest.Unknown);
  (* the cheaper stages keep priority: g/sa0 still credited to C1 *)
  (match c.Netlist.Node.pos with
  | [| (_, g) |] ->
    check_proved t
      { Fsim.Fault.site = Fsim.Fault.Stem g; stuck = false }
      Analysis.Untest.Unreachable_activation Analysis.Untest.Symbolic
      "g/sa0 under product"
  | _ -> Alcotest.fail "fixture lost its PO");
  (* with the product stage every undetectable collapsed fault is proved *)
  Alcotest.(check int) "six proofs" 6 t.Analysis.Untest.summary.Analysis.Untest.proved

let test_engine_pruning () =
  let c, _, _, _ = seq_redundant_circuit () in
  let t = Analysis.Untest.classify ~product:true c in
  let prune = Analysis.Untest.prune t in
  let check_engine name (r : Atpg.Types.result) =
    let proved = ref 0 in
    Array.iteri
      (fun i (f : Fsim.Fault.t) ->
        if prune f then begin
          incr proved;
          Alcotest.(check string)
            (Printf.sprintf "%s fault %d pruned" name i)
            "proved_untestable"
            (Fsim.Fault.status_to_string r.Atpg.Types.status.(i))
        end)
      r.Atpg.Types.faults;
    Alcotest.(check bool) (name ^ " pruned something") true (!proved > 0);
    (* pruned faults count toward efficiency, not coverage *)
    Alcotest.(check bool)
      (name ^ " efficiency >= coverage") true
      (r.Atpg.Types.fault_efficiency >= r.Atpg.Types.fault_coverage);
    Alcotest.(check bool)
      (name ^ " full efficiency") true
      (r.Atpg.Types.fault_efficiency > 99.9)
  in
  check_engine "hitec" (Atpg.Hitec.generate ~prune c);
  check_engine "sest" (Atpg.Sest.generate ~prune c);
  check_engine "attest" (Atpg.Attest.generate ~prune c)

let test_prune_unpruned_identical () =
  (* a prune predicate that fires on nothing must leave the result
     bit-identical to an unpruned run *)
  let c = (Helpers.synthesize_small ()).Synth.Flow.circuit in
  let r0 = Atpg.Hitec.generate c in
  let r1 = Atpg.Hitec.generate ~prune:(fun _ -> false) c in
  Alcotest.(check (array string))
    "statuses identical"
    (Array.map Fsim.Fault.status_to_string r0.Atpg.Types.status)
    (Array.map Fsim.Fault.status_to_string r1.Atpg.Types.status);
  Alcotest.(check int) "work identical" r0.Atpg.Types.stats.Atpg.Types.work
    r1.Atpg.Types.stats.Atpg.Types.work

(* ------------------------------------------- differential soundness fuzz - *)

(* Exact single-stuck-at detectability by exhaustive product-machine
   BFS: run good and faulty machines in lockstep over every input from
   the shared power-up state; the fault is detectable iff some reachable
   (good, faulty) state pair shows a PO difference under some input.
   Small circuits only — the pair space is 4^#DFF. *)
let eval_gate_bool fn (ins : bool array) =
  let fold op =
    let acc = ref ins.(0) in
    for k = 1 to Array.length ins - 1 do
      acc := op !acc ins.(k)
    done;
    !acc
  in
  match fn with
  | Netlist.Node.And -> fold ( && )
  | Netlist.Node.Or -> fold ( || )
  | Netlist.Node.Nand -> not (fold ( && ))
  | Netlist.Node.Nor -> not (fold ( || ))
  | Netlist.Node.Not -> not ins.(0)
  | Netlist.Node.Buf -> ins.(0)
  | Netlist.Node.Xor -> ins.(0) <> ins.(1)
  | Netlist.Node.Xnor -> ins.(0) = ins.(1)

let eval_frame c ~fault state inputs =
  let n = Netlist.Node.num_nodes c in
  let value = Array.make n false in
  let apply_stem id v =
    match fault with
    | Some { Fsim.Fault.site = Fsim.Fault.Stem sid; stuck } when sid = id ->
      stuck
    | _ -> v
  in
  let faulty_pin id pin =
    match fault with
    | Some { Fsim.Fault.site = Fsim.Fault.Pin { gate; pin = p }; stuck }
      when gate = id && p = pin ->
      Some stuck
    | _ -> None
  in
  Array.iteri
    (fun i id -> value.(id) <- apply_stem id inputs.(i))
    c.Netlist.Node.pis;
  Array.iteri
    (fun i id -> value.(id) <- apply_stem id state.(i))
    c.Netlist.Node.dffs;
  Array.iter
    (fun id ->
      let nd = Netlist.Node.node c id in
      match nd.Netlist.Node.kind with
      | Netlist.Node.Gate fn ->
        let ins =
          Array.mapi
            (fun i fid ->
              match faulty_pin id i with
              | Some v -> v
              | None -> value.(fid))
            nd.Netlist.Node.fanins
        in
        value.(id) <- apply_stem id (eval_gate_bool fn ins)
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ())
    c.Netlist.Node.order;
  let pos = Array.map (fun (_, id) -> value.(id)) c.Netlist.Node.pos in
  let next =
    Array.mapi
      (fun i id ->
        let data = (Netlist.Node.node c id).Netlist.Node.fanins.(0) in
        match faulty_pin id 0 with
        | Some v -> v
        | None ->
          ignore i;
          value.(data))
      c.Netlist.Node.dffs
  in
  (pos, next)

let state_code bits =
  Array.fold_left (fun a b -> (a * 2) + if b then 1 else 0) 0 bits

let exhaustively_detectable c (fault : Fsim.Fault.t) =
  let npis = Netlist.Node.num_pis c in
  let init =
    Array.map (fun id -> Netlist.Node.dff_init c id) c.Netlist.Node.dffs
  in
  let inputs_of k = Array.init npis (fun i -> (k lsr i) land 1 = 1) in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push pair =
    let code = (state_code (fst pair) * 65536) + state_code (snd pair) in
    if not (Hashtbl.mem seen code) then begin
      Hashtbl.add seen code ();
      Queue.add pair queue
    end
  in
  push (init, init);
  let detected = ref false in
  while (not !detected) && not (Queue.is_empty queue) do
    let sg, sf = Queue.pop queue in
    for k = 0 to (1 lsl npis) - 1 do
      let inputs = inputs_of k in
      let pog, ng = eval_frame c ~fault:None sg inputs in
      let pof, nf = eval_frame c ~fault:(Some fault) sf inputs in
      if pog <> pof then detected := true else push (ng, nf)
    done
  done;
  !detected

let random_circuit rng =
  let b = Netlist.Build.create () in
  let npis = 1 + Random.State.int rng 3 in
  let ndffs = 1 + Random.State.int rng 4 in
  let ngates = 4 + Random.State.int rng 9 in
  let pool = ref [] in
  for i = 0 to npis - 1 do
    pool := Netlist.Build.add_pi b (Printf.sprintf "i%d" i) :: !pool
  done;
  let dffs =
    Array.init ndffs (fun i ->
        let init = Random.State.bool rng in
        let q = Netlist.Build.add_dff b ~init (Printf.sprintf "q%d" i) in
        pool := q :: !pool;
        q)
  in
  let pick () =
    let l = !pool in
    List.nth l (Random.State.int rng (List.length l))
  in
  let fns =
    [| Netlist.Node.And; Netlist.Node.Or; Netlist.Node.Nand;
       Netlist.Node.Nor; Netlist.Node.Not; Netlist.Node.Xor;
       Netlist.Node.Xnor; Netlist.Node.Buf |]
  in
  let last = ref None in
  for i = 0 to ngates - 1 do
    let fn = fns.(Random.State.int rng (Array.length fns)) in
    let arity =
      match fn with
      | Netlist.Node.Not | Netlist.Node.Buf -> 1
      | Netlist.Node.Xor | Netlist.Node.Xnor -> 2
      | _ -> 2 + Random.State.int rng 2
    in
    let ins = Array.init arity (fun _ -> pick ()) in
    let g = Netlist.Build.add_gate b fn (Printf.sprintf "g%d" i) ins in
    pool := g :: !pool;
    last := Some g
  done;
  Array.iter (fun q -> Netlist.Build.connect_dff b q (pick ())) dffs;
  (match !last with
  | Some g -> Netlist.Build.add_po b "z0" g
  | None -> ());
  Netlist.Build.add_po b "z1" (pick ());
  Netlist.Build.finalize b

let test_differential_soundness () =
  let rng = Random.State.make [| 0x5ea1; 42 |] in
  let circuits = 30 in
  let proved_total = ref 0 in
  for trial = 1 to circuits do
    let c = random_circuit rng in
    let t = Analysis.Untest.classify ~product:true c in
    (* every prover verdict must agree with exhaustive fault simulation *)
    Array.iteri
      (fun i (f : Fsim.Fault.t) ->
        match t.Analysis.Untest.verdicts.(i) with
        | Analysis.Untest.Unknown -> ()
        | Analysis.Untest.Untestable _ ->
          incr proved_total;
          if exhaustively_detectable c f then
            Alcotest.failf
              "trial %d: prover called %s untestable but it is detectable"
              trial
              (Fsim.Fault.to_string c f))
      t.Analysis.Untest.faults;
    (* engine agreement: redundancy proofs from the search must also be
       exhaustively undetectable, and detections must be real *)
    let r = Atpg.Hitec.generate c in
    Array.iteri
      (fun i (f : Fsim.Fault.t) ->
        match r.Atpg.Types.status.(i) with
        | Fsim.Fault.Redundant ->
          if exhaustively_detectable c f then
            Alcotest.failf
              "trial %d: engine called %s redundant but it is detectable"
              trial
              (Fsim.Fault.to_string c f)
        | Fsim.Fault.Detected ->
          if Analysis.Untest.lookup t f <> Analysis.Untest.Unknown then
            Alcotest.failf
              "trial %d: engine detected %s the prover proved untestable"
              trial
              (Fsim.Fault.to_string c f)
        | Fsim.Fault.Aborted | Fsim.Fault.Untested
        | Fsim.Fault.Proved_untestable ->
          ())
      r.Atpg.Types.faults
  done;
  (* the fuzz is vacuous if the generator never yields provable faults *)
  Alcotest.(check bool)
    (Printf.sprintf "prover fired on some fuzz fault (%d)" !proved_total)
    true (!proved_total > 0)

let suite =
  [
    Alcotest.test_case "fixpoint matches legacy constants" `Quick
      test_fixpoint_matches_legacy;
    Alcotest.test_case "structural: unobservable site" `Quick
      test_unobservable;
    Alcotest.test_case "ternary: unexcitable + confined" `Quick
      test_ternary_stages;
    Alcotest.test_case "symbolic: activation + product" `Quick
      test_symbolic_stages;
    Alcotest.test_case "exact product-machine stage" `Quick
      test_product_stage;
    Alcotest.test_case "invariant fault universe" `Quick
      test_invariant_universe;
    Alcotest.test_case "engines consume prune verdicts" `Quick
      test_engine_pruning;
    Alcotest.test_case "empty prune is identity" `Quick
      test_prune_unpruned_identical;
    Alcotest.test_case "differential soundness fuzz" `Slow
      test_differential_soundness;
  ]
