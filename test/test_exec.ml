(* The Exec.Pool scheduler: deterministic merge, exception ordering,
   observability exactness under parallelism, and 1-vs-N bit-identity of
   the fault-simulation and ATPG pipelines that run on it. *)

let with_jobs n f =
  Exec.Pool.set_jobs n;
  Fun.protect ~finally:Exec.Pool.reset_jobs f

(* Runs [f] with SATPG_JOBS set to [v] ("" = unset), restoring the prior
   value afterwards (putenv cannot delete, but the pool treats "" as
   unset). *)
let with_jobs_env v f =
  let prev = Option.value ~default:"" (Sys.getenv_opt "SATPG_JOBS") in
  Unix.putenv "SATPG_JOBS" v;
  Fun.protect ~finally:(fun () -> Unix.putenv "SATPG_JOBS" prev) f

(* ------------------------------------------------------------ scheduler - *)

let test_run_identity () =
  with_jobs 4 @@ fun () ->
  let n = 257 in
  let got = Exec.Pool.run n (fun i -> (i * i) + 3) in
  Alcotest.(check (array int))
    "results in index order"
    (Array.init n (fun i -> (i * i) + 3))
    got

let test_map_order_qcheck =
  Helpers.qcheck_case ~count:50 "map_list keeps order at 4 jobs"
    QCheck2.Gen.(list_size (int_bound 200) small_int)
    (fun l ->
      with_jobs 4 @@ fun () ->
      Exec.Pool.map_list (fun x -> (2 * x) - 7) l
      = List.map (fun x -> (2 * x) - 7) l)

let test_nested () =
  with_jobs 4 @@ fun () ->
  let got =
    Exec.Pool.run 6 (fun i ->
        Array.fold_left ( + ) 0 (Exec.Pool.run 6 (fun j -> i * j)))
  in
  Alcotest.(check (array int))
    "nested submission"
    (Array.init 6 (fun i -> i * 15))
    got

let test_exception_order () =
  with_jobs 4 @@ fun () ->
  let c = Obs.Metrics.counter "test.exec.exn" in
  let before = Obs.Metrics.count c in
  (match
     Exec.Pool.run 16 (fun i ->
         Obs.Metrics.incr c;
         if i >= 5 then failwith (string_of_int i))
   with
  | (_ : unit array) -> Alcotest.fail "expected a Failure"
  | exception Failure s ->
    Alcotest.(check string) "first failing index raises" "5" s);
  (* side effects of tasks after the first failure are dropped, exactly as
     if the loop had run sequentially and stopped at index 5 *)
  Alcotest.(check int) "prefix side effects only" 6 (Obs.Metrics.count c - before)

let test_jobs_one_inline () =
  with_jobs 1 @@ fun () ->
  let used0 = Exec.Pool.domains_used () in
  let got = Exec.Pool.run 64 (fun i -> i) in
  Alcotest.(check (array int)) "identity" (Array.init 64 (fun i -> i)) got;
  Alcotest.(check int)
    "no pool involvement at 1 job" used0 (Exec.Pool.domains_used ())

(* ------------------------------------------------------- jobs validation - *)

let test_env_validation () =
  let check_invalid v =
    with_jobs_env v @@ fun () ->
    match Exec.Pool.jobs () with
    | (_ : int) -> Alcotest.failf "SATPG_JOBS=%s should be rejected" v
    | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "message names the variable" true
        (Helpers.contains_substring msg "SATPG_JOBS")
  in
  check_invalid "zero";
  check_invalid "0";
  check_invalid "-3";
  check_invalid "2.5";
  (with_jobs_env "3" @@ fun () ->
   Alcotest.(check int) "SATPG_JOBS=3 parses" 3 (Exec.Pool.jobs ()));
  (with_jobs_env " 5 " @@ fun () ->
   Alcotest.(check int) "whitespace tolerated" 5 (Exec.Pool.jobs ()));
  (with_jobs_env "" @@ fun () ->
   Alcotest.(check bool)
     "empty means default" true
     (Exec.Pool.jobs () = Exec.Pool.default_jobs ()));
  (* the explicit override wins over the environment *)
  with_jobs_env "3" @@ fun () ->
  with_jobs 2 @@ fun () ->
  Alcotest.(check int) "set_jobs beats SATPG_JOBS" 2 (Exec.Pool.jobs ())

let test_set_jobs_validation () =
  (match Exec.Pool.set_jobs 0 with
   | () -> Alcotest.fail "set_jobs 0 should be rejected"
   | exception Invalid_argument _ -> ());
  match Exec.Pool.set_jobs (-1) with
  | () -> Alcotest.fail "set_jobs -1 should be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------- observability merging - *)

let test_metrics_exact () =
  with_jobs 4 @@ fun () ->
  let c = Obs.Metrics.counter "test.exec.counter" in
  let h = Obs.Metrics.histogram "test.exec.hist" in
  let g = Obs.Metrics.gauge "test.exec.gauge" in
  let c0 = Obs.Metrics.count c and h0 = Obs.Metrics.sum h in
  let n = 100 in
  let _ =
    Exec.Pool.run n (fun i ->
        Obs.Metrics.add c i;
        Obs.Metrics.observe h i;
        Obs.Metrics.set g (float_of_int i))
  in
  let expect = n * (n - 1) / 2 in
  Alcotest.(check int) "counter sums exactly" expect (Obs.Metrics.count c - c0);
  Alcotest.(check int) "histogram sums exactly" expect (Obs.Metrics.sum h - h0);
  Alcotest.(check (float 0.0))
    "gauge keeps the last submitted write"
    (float_of_int (n - 1))
    (Obs.Metrics.value g)

let test_events_order () =
  with_jobs 4 @@ fun () ->
  let sink = Obs.Events.create () in
  Obs.Events.install sink;
  Fun.protect ~finally:Obs.Events.uninstall @@ fun () ->
  let n = 50 in
  let _ =
    Exec.Pool.run n (fun i ->
        Obs.Events.emit [ ("i", Obs.Json.Int i) ];
        Obs.Events.emit [ ("i", Obs.Json.Int i); ("second", Obs.Json.Bool true) ])
  in
  let is =
    List.filter_map
      (fun r -> Option.bind (Obs.Json.member "i" r) Obs.Json.to_int_opt)
      (Obs.Events.records sink)
  in
  Alcotest.(check (list int))
    "records in submission order"
    (List.concat_map (fun i -> [ i; i ]) (List.init n (fun i -> i)))
    is

let test_deferred_discard () =
  with_jobs 4 @@ fun () ->
  let c = Obs.Metrics.counter "test.exec.deferred" in
  let c0 = Obs.Metrics.count c in
  let ds =
    Exec.Pool.run_deferred 10 (fun i ->
        Obs.Metrics.incr c;
        i)
  in
  Alcotest.(check int) "nothing applied before commit" c0 (Obs.Metrics.count c);
  let vs =
    Array.to_list ds
    |> List.filteri (fun i _ -> i mod 2 = 0)
    |> List.map Exec.Pool.commit
  in
  Alcotest.(check (list int)) "committed values" [ 0; 2; 4; 6; 8 ] vs;
  Alcotest.(check int)
    "discarded deltas never reach the registry" 5
    (Obs.Metrics.count c - c0);
  match Exec.Pool.peek ds.(1) with
  | Some v -> Alcotest.(check int) "peek reads without committing" 1 v
  | None -> Alcotest.fail "peek"

(* --------------------------------------------------- cache under domains - *)

let test_cache_concurrent () =
  with_jobs 4 @@ fun () ->
  Core.Cache.reset_memory ();
  let hits = Obs.Metrics.counter "core.cache.hits" in
  let misses = Obs.Metrics.counter "core.cache.misses" in
  let h0 = Obs.Metrics.count hits and m0 = Obs.Metrics.count misses in
  let c = Helpers.toy_circuit () in
  let n = 12 in
  let rs =
    Exec.Pool.run n (fun _ -> Core.Cache.structural ~name:"toy" c)
  in
  Array.iter
    (fun r ->
      Alcotest.(check bool)
        "every caller sees the same result" true
        (r = rs.(0)))
    rs;
  let dh = Obs.Metrics.count hits - h0
  and dm = Obs.Metrics.count misses - m0 in
  Alcotest.(check int) "every lookup is a hit or a miss" n (dh + dm);
  Alcotest.(check bool) "at least one computed" true (dm >= 1)

(* ------------------------------------------------- pipeline bit-identity - *)

(* A synthesized circuit big enough for several word-wide fault batches. *)
let bench_circuit =
  lazy (Helpers.synthesize_small ~states:8 ()).Synth.Flow.circuit

let test_fsim_identity () =
  let c = Lazy.force bench_circuit in
  let faults = Fsim.Collapse.list c in
  Alcotest.(check bool)
    "enough faults for several batches" true
    (Array.length faults > Sim.Parallel.word_bits);
  let rng = Random.State.make [| 42 |] in
  let vectors =
    List.init 60 (fun _ ->
        Sim.Vectors.random_vector rng (Netlist.Node.num_pis c))
  in
  let run j = with_jobs j (fun () -> Fsim.Engine.simulate c faults vectors) in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check (array bool))
    "detected identical" r1.Fsim.Engine.detected r4.Fsim.Engine.detected;
  Alcotest.(check (array int))
    "detect times identical" r1.Fsim.Engine.detect_time
    r4.Fsim.Engine.detect_time;
  Alcotest.(check (list string))
    "good states identical" r1.Fsim.Engine.good_states
    r4.Fsim.Engine.good_states;
  Alcotest.(check int)
    "sim cycles identical" r1.Fsim.Engine.sim_cycles r4.Fsim.Engine.sim_cycles

let atpg_config =
  {
    Atpg.Types.default_config with
    Atpg.Types.backtrack_limit = 60;
    work_limit = 60_000;
    total_work_limit = 2_000_000;
  }

let test_atpg_identity () =
  let c = Lazy.force bench_circuit in
  let run j =
    with_jobs j (fun () ->
        Atpg.Run.generate ~config:atpg_config ~seed:3 c)
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check (array string))
    "per-fault statuses identical"
    (Array.map Fsim.Fault.status_to_string r1.Atpg.Types.status)
    (Array.map Fsim.Fault.status_to_string r4.Atpg.Types.status)
  ;
  Alcotest.(check int)
    "work identical" r1.Atpg.Types.stats.Atpg.Types.work
    r4.Atpg.Types.stats.Atpg.Types.work;
  Alcotest.(check int)
    "backtracks identical" r1.Atpg.Types.stats.Atpg.Types.backtracks
    r4.Atpg.Types.stats.Atpg.Types.backtracks;
  Alcotest.(check bool)
    "test sequences identical" true
    (r1.Atpg.Types.test_sets = r4.Atpg.Types.test_sets);
  Alcotest.(check bool)
    "figure-3 trajectory identical" true
    (r1.Atpg.Types.trajectory = r4.Atpg.Types.trajectory);
  Alcotest.(check (float 0.0))
    "coverage identical" r1.Atpg.Types.fault_coverage
    r4.Atpg.Types.fault_coverage

(* The per-fault event stream drives figure/table rebuilds, so it must be
   identical too — not just the aggregate result. *)
let test_atpg_events_identity () =
  let c = Lazy.force bench_circuit in
  let run j =
    with_jobs j (fun () ->
        let sink = Obs.Events.create () in
        Obs.Events.install sink;
        Fun.protect ~finally:Obs.Events.uninstall (fun () ->
            ignore (Atpg.Run.generate ~config:atpg_config ~seed:3 c));
        Obs.Events.to_lines sink)
  in
  Alcotest.(check (list string)) "event JSONL identical" (run 1) (run 4)

let suite =
  [
    Alcotest.test_case "run: results in index order" `Quick test_run_identity;
    test_map_order_qcheck;
    Alcotest.test_case "run: nested submission" `Quick test_nested;
    Alcotest.test_case "run: sequential exception order" `Quick
      test_exception_order;
    Alcotest.test_case "run: jobs=1 stays inline" `Quick test_jobs_one_inline;
    Alcotest.test_case "SATPG_JOBS validation" `Quick test_env_validation;
    Alcotest.test_case "set_jobs validation" `Quick test_set_jobs_validation;
    Alcotest.test_case "metrics merge exactly" `Quick test_metrics_exact;
    Alcotest.test_case "events keep submission order" `Quick test_events_order;
    Alcotest.test_case "deferred commit/discard" `Quick test_deferred_discard;
    Alcotest.test_case "cache exact under concurrency" `Quick
      test_cache_concurrent;
    Alcotest.test_case "fsim bit-identical 1 vs 4 jobs" `Slow
      test_fsim_identity;
    Alcotest.test_case "atpg bit-identical 1 vs 4 jobs" `Slow
      test_atpg_identity;
    Alcotest.test_case "atpg events bit-identical 1 vs 4 jobs" `Slow
      test_atpg_events_identity;
  ]
