(* Shared fixtures for the test suites. *)

let v3 = Alcotest.testable Sim.Value3.pp Sim.Value3.equal

(* A small hand-built mealy circuit: 2 PIs, 1 PO, 2 DFFs.
   q0' = a AND q1 ; q1' = NOT q0 OR b ; out = q0 XOR q1 *)
let toy_circuit () =
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  let bi = Netlist.Build.add_pi b "b" in
  let q0 = Netlist.Build.add_dff b "q0" in
  let q1 = Netlist.Build.add_dff b "q1" in
  let n0 = Netlist.Build.add_gate b Netlist.Node.And "n0" [| a; q1 |] in
  let n1 = Netlist.Build.add_gate b Netlist.Node.Not "n1" [| q0 |] in
  let n2 = Netlist.Build.add_gate b Netlist.Node.Or "n2" [| n1; bi |] in
  let n3 = Netlist.Build.add_gate b Netlist.Node.Xor "n3" [| q0; q1 |] in
  Netlist.Build.connect_dff b q0 n0;
  Netlist.Build.connect_dff b q1 n2;
  Netlist.Build.add_po b "out" n3;
  Netlist.Build.finalize b

(* The paper's Figure-2 example: two parallel combinational paths between
   two registers, before and after retiming through the fanout stem. *)
let figure2_original () =
  let b = Netlist.Build.create () in
  let pi = Netlist.Build.add_pi b "x" in
  let q1 = Netlist.Build.add_dff b "Q1" in
  let q2 = Netlist.Build.add_dff b "Q2" in
  let gnot = Netlist.Build.add_gate b Netlist.Node.Not "Gnot" [| q2 |] in
  let g1 = Netlist.Build.add_gate b Netlist.Node.And "G1" [| q2; pi |] in
  let g2 = Netlist.Build.add_gate b Netlist.Node.And "G2" [| gnot; pi |] in
  let g3 = Netlist.Build.add_gate b Netlist.Node.Or "G3" [| g1; g2 |] in
  let gbuf = Netlist.Build.add_gate b Netlist.Node.Buf "Gbuf" [| g3 |] in
  Netlist.Build.connect_dff b q1 gbuf;
  Netlist.Build.connect_dff b q2 q1;
  Netlist.Build.add_po b "z" q2;
  Netlist.Build.finalize b

let small_fsm ?(seed = 11) ?(states = 6) () =
  Fsm.Generate.generate
    {
      Fsm.Generate.default_spec with
      Fsm.Generate.name = "toyfsm";
      num_inputs = 3;
      num_outputs = 2;
      num_states = states;
      cubes_per_state = 3;
      seed;
    }

let synthesize_small ?(alg = Synth.Assign.Input_dominant)
    ?(script = Synth.Flow.Rugged) ?(reset_line = false) ?seed ?states () =
  Synth.Flow.synthesize ~reset_line ~algorithm:alg ~script
    (small_fsm ?seed ?states ())

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Full state vector for a circuit whose first [bits] DFFs are the encoded
   state registers; any remaining DFFs (constant generators) take their
   declared init values. *)
let state_vector c ~bits code =
  Array.mapi
    (fun j id ->
      if j < bits then Sim.Value3.of_bool ((code lsr j) land 1 = 1)
      else Sim.Value3.of_bool (Netlist.Node.dff_init c id))
    c.Netlist.Node.dffs
