(* The flat levelized instruction tape (Sim.Tape) and the overflow-safe
   packed state keys (Sim.Statekey).

   The tape rewrite of the simulators promises bit-identical results; the
   differential tests here hold it to that promise against the scalar
   reference and the legacy [`Nodes] node-record walk, on the benchmark
   pairs and on fuzzed circuits, at 1 and 4 jobs.  The Statekey tests pin
   the >62-DFF aliasing fix: the historical int packing of DFF vectors
   silently collapsed states beyond bit 61. *)

let with_jobs n f =
  Exec.Pool.set_jobs n;
  Fun.protect ~finally:Exec.Pool.reset_jobs f

(* Same generator family as the untestability differential suite: a few
   PIs/DFFs/gates with random connectivity, always Check-clean. *)
let random_circuit rng =
  let b = Netlist.Build.create () in
  let npis = 1 + Random.State.int rng 3 in
  let ndffs = 1 + Random.State.int rng 4 in
  let ngates = 4 + Random.State.int rng 9 in
  let pool = ref [] in
  for i = 0 to npis - 1 do
    pool := Netlist.Build.add_pi b (Printf.sprintf "i%d" i) :: !pool
  done;
  let dffs =
    Array.init ndffs (fun i ->
        let init = Random.State.bool rng in
        let q = Netlist.Build.add_dff b ~init (Printf.sprintf "q%d" i) in
        pool := q :: !pool;
        q)
  in
  let pick () =
    let l = !pool in
    List.nth l (Random.State.int rng (List.length l))
  in
  let fns =
    [| Netlist.Node.And; Netlist.Node.Or; Netlist.Node.Nand;
       Netlist.Node.Nor; Netlist.Node.Not; Netlist.Node.Xor;
       Netlist.Node.Xnor; Netlist.Node.Buf |]
  in
  let last = ref None in
  for i = 0 to ngates - 1 do
    let fn = fns.(Random.State.int rng (Array.length fns)) in
    let arity =
      match fn with
      | Netlist.Node.Not | Netlist.Node.Buf -> 1
      | Netlist.Node.Xor | Netlist.Node.Xnor -> 2
      | _ -> 2 + Random.State.int rng 2
    in
    let ins = Array.init arity (fun _ -> pick ()) in
    let g = Netlist.Build.add_gate b fn (Printf.sprintf "g%d" i) ins in
    pool := g :: !pool;
    last := Some g
  done;
  Array.iter (fun q -> Netlist.Build.connect_dff b q (pick ())) dffs;
  (match !last with
  | Some g -> Netlist.Build.add_po b "z0" g
  | None -> ());
  Netlist.Build.add_po b "z1" (pick ());
  Netlist.Build.finalize b

(* A [length]-DFF shift register: PI -> q0 -> q1 -> ... -> PO.  65 stages
   put live state bits beyond the 62 lanes of an int, which is exactly
   where the old int state codes aliased. *)
let shift_register length =
  let b = Netlist.Build.create () in
  let pi = Netlist.Build.add_pi b "si" in
  let qs =
    Array.init length (fun i ->
        Netlist.Build.add_dff b ~init:false (Printf.sprintf "q%d" i))
  in
  Array.iteri
    (fun i q ->
      let d = if i = 0 then pi else qs.(i - 1) in
      (* a Buf keeps at least one gate on the path so the tape is
         non-empty in every level *)
      let g =
        Netlist.Build.add_gate b Netlist.Node.Buf
          (Printf.sprintf "b%d" i) [| d |]
      in
      Netlist.Build.connect_dff b q g)
    qs;
  Netlist.Build.add_po b "so" qs.(length - 1);
  Netlist.Build.finalize b

(* The six study pairs exercised by the differential engine tests. *)
let pairs =
  lazy
    (let ji = Synth.Assign.Input_dominant
     and jo = Synth.Assign.Output_dominant
     and jc = Synth.Assign.Combined in
     let sd = Synth.Flow.Delay and sr = Synth.Flow.Rugged in
     List.map
       (fun (n, a, s) -> Core.Flow.pair n a s)
       [
         ("dk16", ji, sd); ("pma", jo, sd); ("s510", jc, sd);
         ("s820", jc, sr); ("s832", jo, sr); ("scf", ji, sd);
       ])

(* --- statekey ---------------------------------------------------------------- *)

let test_statekey_roundtrip () =
  let rng = Random.State.make [| 0x7a9e; 1 |] in
  for n = 1 to 70 do
    let bits = Array.init n (fun _ -> Random.State.bool rng) in
    let k = Sim.Statekey.of_bools bits in
    Array.iteri
      (fun i b ->
        Alcotest.(check bool)
          (Printf.sprintf "n=%d bit %d" n i)
          b (Sim.Statekey.bit k i))
      bits;
    Alcotest.(check bool)
      (Printf.sprintf "n=%d capacity covers width" n)
      true
      (Sim.Statekey.capacity k >= n);
    (* bits past the packed width read as 0 *)
    Alcotest.(check bool)
      (Printf.sprintf "n=%d bit beyond end" n)
      false
      (Sim.Statekey.bit k (Sim.Statekey.capacity k + 5));
    (* hex codec round-trips exactly *)
    Alcotest.(check string)
      (Printf.sprintf "n=%d hex roundtrip" n)
      k
      (Sim.Statekey.of_hex (Sim.Statekey.to_hex k));
    (* lane extraction agrees with the bool packing *)
    let lane = Random.State.int rng Sim.Parallel.word_bits in
    let words =
      Array.map (fun b -> if b then 1 lsl lane else 0) bits
    in
    Alcotest.(check string)
      (Printf.sprintf "n=%d of_lane_words" n)
      k
      (Sim.Statekey.of_lane_words words ~lane)
  done;
  Alcotest.check_raises "odd hex length"
    (Invalid_argument "Statekey.of_hex: odd length") (fun () ->
      ignore (Sim.Statekey.of_hex "abc"));
  Alcotest.check_raises "bad hex digit"
    (Invalid_argument "Statekey.of_hex: non-hex digit") (fun () ->
      ignore (Sim.Statekey.of_hex "zz"))

let test_statekey_beyond_62 () =
  (* the regression the int packing failed: one-hot states at positions
     62..64 must be distinct from each other and from all-zero *)
  let one_hot n i = Array.init n (fun j -> j = i) in
  let n = 65 in
  let keys = List.map (fun i -> Sim.Statekey.of_bools (one_hot n i)) in
  let ks = keys [ 61; 62; 63; 64 ] in
  let zero = Sim.Statekey.of_bools (Array.make n false) in
  List.iteri
    (fun a ka ->
      Alcotest.(check bool)
        (Printf.sprintf "one-hot %d <> zero" a)
        true (ka <> zero);
      List.iteri
        (fun b kb ->
          if a <> b then
            Alcotest.(check bool)
              (Printf.sprintf "one-hot %d <> one-hot %d" a b)
              true (ka <> kb))
        ks)
    ks

(* --- tape vs scalar / nodes backend ------------------------------------------ *)

let run_scalar c vectors =
  let sim = Sim.Scalar.create c in
  Sim.Scalar.reset sim;
  List.map (fun v -> Sim.Scalar.step sim (Sim.Vectors.to_v3 v)) vectors

let run_parallel ~backend c vectors =
  let sim = Sim.Parallel.create ~backend c in
  Sim.Parallel.reset sim;
  List.map (fun v -> Sim.Parallel.step_broadcast sim v) vectors

let test_tape_matches_scalar_fuzz () =
  let rng = Random.State.make [| 0x7a9e; 2 |] in
  for trial = 1 to 30 do
    let c = random_circuit rng in
    let vectors =
      Sim.Vectors.random_sequence rng ~width:(Netlist.Node.num_pis c)
        ~length:50
    in
    let so = run_scalar c vectors in
    let po = run_parallel ~backend:`Tape c vectors in
    List.iteri
      (fun t (sv, pw) ->
        Array.iteri
          (fun k v ->
            Alcotest.check Helpers.v3
              (Printf.sprintf "trial %d cycle %d po %d" trial t k)
              v
              (Sim.Value3.of_bool (pw.(k) land 1 = 1)))
          sv)
      (List.combine so po)
  done

let test_tape_matches_nodes_fuzz () =
  let rng = Random.State.make [| 0x7a9e; 3 |] in
  for trial = 1 to 30 do
    let c = random_circuit rng in
    let st = Sim.Parallel.create ~backend:`Tape c in
    let sn = Sim.Parallel.create ~backend:`Nodes c in
    Sim.Parallel.reset st;
    Sim.Parallel.reset sn;
    for cycle = 1 to 40 do
      let words =
        Array.init (Netlist.Node.num_pis c) (fun _ ->
            Random.State.bits rng
            lor (Random.State.bits rng lsl 30)
            lor ((Random.State.bits rng land 3) lsl 60))
      in
      Sim.Parallel.set_input_words st words;
      Sim.Parallel.set_input_words sn words;
      Sim.Parallel.eval_comb st;
      Sim.Parallel.eval_comb sn;
      Array.iteri
        (fun i id ->
          Alcotest.(check int)
            (Printf.sprintf "trial %d cycle %d node %d" trial cycle id)
            (Sim.Parallel.node_word sn id)
            (Sim.Parallel.node_word st id);
          ignore i)
        c.Netlist.Node.order;
      Sim.Parallel.tick st;
      Sim.Parallel.tick sn;
      Alcotest.(check (list int))
        (Printf.sprintf "trial %d cycle %d state" trial cycle)
        (Array.to_list (Sim.Parallel.get_state_words sn))
        (Array.to_list (Sim.Parallel.get_state_words st))
    done
  done

(* --- engine backends, benchmark pairs ---------------------------------------- *)

let check_runs_identical label (a : Fsim.Engine.run) (b : Fsim.Engine.run) =
  Alcotest.(check (list bool))
    (label ^ " detected")
    (Array.to_list a.Fsim.Engine.detected)
    (Array.to_list b.Fsim.Engine.detected);
  Alcotest.(check (list int))
    (label ^ " detect_time")
    (Array.to_list a.Fsim.Engine.detect_time)
    (Array.to_list b.Fsim.Engine.detect_time);
  Alcotest.(check (list string))
    (label ^ " good_states") a.Fsim.Engine.good_states
    b.Fsim.Engine.good_states;
  Alcotest.(check int) (label ^ " cycles") a.Fsim.Engine.cycles
    b.Fsim.Engine.cycles;
  Alcotest.(check int)
    (label ^ " sim_cycles") a.Fsim.Engine.sim_cycles
    b.Fsim.Engine.sim_cycles

let engine_backend_check c name =
  let faults = Fsim.Collapse.list c in
  let rng = Random.State.make [| 0x7a9e; 4 |] in
  let vectors =
    Sim.Vectors.random_sequence rng ~width:(Netlist.Node.num_pis c)
      ~length:60
  in
  let tape1 =
    with_jobs 1 (fun () ->
        Fsim.Engine.simulate ~backend:`Tape c faults vectors)
  in
  List.iter
    (fun (jobs, backend, label) ->
      let r =
        with_jobs jobs (fun () ->
            Fsim.Engine.simulate ~backend c faults vectors)
      in
      check_runs_identical (Printf.sprintf "%s %s" name label) tape1 r)
    [
      (1, `Nodes, "nodes j1"); (4, `Tape, "tape j4"); (4, `Nodes, "nodes j4");
    ]

let test_engine_backends_pairs () =
  List.iter
    (fun (p : Core.Flow.pair) ->
      engine_backend_check p.Core.Flow.original (p.Core.Flow.name ^ " orig");
      engine_backend_check p.Core.Flow.retimed (p.Core.Flow.name ^ " ret"))
    (Lazy.force pairs)

let test_engine_backends_fuzz () =
  let rng = Random.State.make [| 0x7a9e; 5 |] in
  for trial = 1 to 30 do
    let c = random_circuit rng in
    engine_backend_check c (Printf.sprintf "fuzz %d" trial)
  done

(* --- >62-DFF aliasing regression --------------------------------------------- *)

let test_65dff_states_distinct () =
  let n = 65 in
  let c = shift_register n in
  (* march a single 1 through all 65 stages: every visited state is
     distinct until the pulse falls off the end *)
  let vectors = List.init (n + 1) (fun t -> [| t = 0 |]) in
  let sim = Sim.Parallel.create c in
  Sim.Parallel.reset sim;
  let seen = Hashtbl.create 128 in
  List.iter
    (fun v ->
      ignore (Sim.Parallel.step_broadcast sim v);
      let k =
        Sim.Statekey.of_lane_words (Sim.Parallel.get_state_words sim) ~lane:0
      in
      Hashtbl.replace seen k ())
    vectors;
  (* 65 one-hot states plus the all-zero state after the pulse exits *)
  Alcotest.(check int) "distinct states" (n + 1) (Hashtbl.length seen);
  (* the engine's good-state collection agrees (this is where the old int
     packing collapsed the deep states) *)
  let fault = { Fsim.Fault.site = Fsim.Fault.Stem 0; stuck = false } in
  let run = Fsim.Engine.simulate c [| fault |] vectors in
  let distinct = List.sort_uniq compare run.Fsim.Engine.good_states in
  Alcotest.(check int) "engine good_states distinct" (n + 1)
    (List.length distinct);
  (* ... and the 65-deep fault is detected when the pulse reaches the PO *)
  Alcotest.(check bool) "sa0 at si detected" true
    run.Fsim.Engine.detected.(0);
  Alcotest.(check int) "detected on the last cycle" n
    run.Fsim.Engine.detect_time.(0)

let test_scan_beyond_62 () =
  let n = 65 in
  let c = shift_register n in
  let chain = Dft.Scan.insert c in
  Alcotest.(check int) "full chain" n chain.Dft.Scan.length;
  (* load a state with live bits on both sides of the 62-bit frontier *)
  let bits = Array.make n false in
  bits.(3) <- true;
  bits.(62) <- true;
  bits.(64) <- true;
  let code = Sim.Statekey.of_bools bits in
  let sim = Sim.Scalar.create chain.Dft.Scan.circuit in
  Sim.Scalar.reset sim;
  List.iter
    (fun v -> ignore (Sim.Scalar.step sim (Sim.Vectors.to_v3 v)))
    (Dft.Scan.load_sequence chain code);
  let state = Sim.Scalar.get_state sim in
  Array.iteri
    (fun pos v ->
      Alcotest.check Helpers.v3
        (Printf.sprintf "dff %d" pos)
        (Sim.Value3.of_bool bits.(pos))
        v)
    state

(* --- guards on the remaining int packings ------------------------------------ *)

let test_lane_guards () =
  let c = Helpers.toy_circuit () in
  let sim = Sim.Parallel.create c in
  let gate = c.Netlist.Node.order.(Array.length c.Netlist.Node.order - 1) in
  List.iter
    (fun lane ->
      Alcotest.(check bool)
        (Printf.sprintf "inject_stem lane %d rejected" lane)
        true
        (match
           Sim.Parallel.inject_stem sim ~node:gate ~lane ~value:true
         with
        | () -> false
        | exception Invalid_argument _ -> true);
      Alcotest.(check bool)
        (Printf.sprintf "inject_pin lane %d rejected" lane)
        true
        (match
           Sim.Parallel.inject_pin sim ~gate ~pin:0 ~lane ~value:true
         with
        | () -> false
        | exception Invalid_argument _ -> true))
    [ -1; Sim.Parallel.word_bits; 100 ]

let test_reach_pack_guard () =
  Alcotest.(check bool)
    "pack_bools beyond cap rejected" true
    (match Analysis.Reach.pack_bools (Array.make 61 true) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_machine_input_code_guard () =
  Alcotest.(check bool)
    "input_code beyond 62 bits rejected" true
    (match Fsm.Machine.input_code (Array.make 63 true) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_cycles_beyond_62 () =
  (* two distinct 2-cycles {q0,q63} and {q0,q64}: an int bitmask key
     cannot tell their vertex sets apart (1 lsl 63/64 alias), the packed
     key can *)
  let n = 65 in
  let b = Netlist.Build.create () in
  let pi = Netlist.Build.add_pi b "x" in
  let qs =
    Array.init n (fun i ->
        Netlist.Build.add_dff b ~init:false (Printf.sprintf "q%d" i))
  in
  let fb =
    Netlist.Build.add_gate b Netlist.Node.Or "fb" [| qs.(63); qs.(64) |]
  in
  Netlist.Build.connect_dff b qs.(0) fb;
  Netlist.Build.connect_dff b qs.(63) qs.(0);
  Netlist.Build.connect_dff b qs.(64) qs.(0);
  for i = 1 to n - 1 do
    if i <> 63 && i <> 64 then Netlist.Build.connect_dff b qs.(i) pi
  done;
  Netlist.Build.add_po b "z" qs.(64);
  let c = Netlist.Build.finalize b in
  let g = Analysis.Dffgraph.build c in
  let r = Analysis.Cycles.count g in
  Alcotest.(check bool) "exact" true r.Analysis.Cycles.exact;
  Alcotest.(check int) "two distinct cycles" 2 r.Analysis.Cycles.num_cycles;
  Alcotest.(check int) "both length 2" 2 r.Analysis.Cycles.max_length

let suite =
  [
    Alcotest.test_case "statekey roundtrip + codec" `Quick
      test_statekey_roundtrip;
    Alcotest.test_case "statekey distinct beyond 62 bits" `Quick
      test_statekey_beyond_62;
    Alcotest.test_case "tape matches scalar (fuzz)" `Quick
      test_tape_matches_scalar_fuzz;
    Alcotest.test_case "tape matches nodes backend (fuzz, all words)" `Quick
      test_tape_matches_nodes_fuzz;
    Alcotest.test_case "engine backends identical on benchmark pairs" `Slow
      test_engine_backends_pairs;
    Alcotest.test_case "engine backends identical (fuzz, jobs 1/4)" `Quick
      test_engine_backends_fuzz;
    Alcotest.test_case "65-DFF shift register: no state aliasing" `Quick
      test_65dff_states_distinct;
    Alcotest.test_case "scan load beyond 62 DFFs" `Quick test_scan_beyond_62;
    Alcotest.test_case "lane range guards" `Quick test_lane_guards;
    Alcotest.test_case "reach pack_bools width guard" `Quick
      test_reach_pack_guard;
    Alcotest.test_case "machine input_code width guard" `Quick
      test_machine_input_code_guard;
    Alcotest.test_case "cycle sets distinct beyond 62 DFFs" `Quick
      test_cycles_beyond_62;
  ]
