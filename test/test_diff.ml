(* Differential-comparison tests: input sniffing, the self-diff identity,
   exact per-fault reconciliation of a real dk16 original-vs-retimed run
   pair, bench-array attribution, the regression-breach threshold, and
   bench-history grouping.  Reuses Test_obs's sinks/config/pair so the
   dk16 synthesis is built once per test binary. *)

module J = Obs.Json
module D = Obs.Diff

let run_events circuit =
  Test_obs.with_sinks @@ fun _ esink ->
  let r =
    Atpg.Run.generate ~config:Test_obs.small_config circuit
  in
  (r, List.map J.parse (Obs.Events.to_lines esink))

(* --- input classification ----------------------------------------------------- *)

let test_classify () =
  let kind s =
    match D.classify_input s with
    | Ok i -> D.input_kind_name i
    | Error e -> "error: " ^ e
  in
  let manifest =
    Obs.Ledger.make ~tool:"satpg" ~command:"atpg" ~jobs:1 ~budget:""
      ~work_units:7 ~metrics:J.Null ~spans:[] ~event_lines:[] ()
  in
  Alcotest.(check string)
    "manifest" "manifest"
    (kind (Obs.Ledger.to_string manifest));
  Alcotest.(check string)
    "chrome trace" "chrome-trace"
    (kind {|{"traceEvents":[],"displayTimeUnit":"ms"}|});
  Alcotest.(check string) "bench array" "bench" (kind {|[{"engine":"hitec"}]|});
  Alcotest.(check string)
    "event jsonl" "events"
    (kind "{\"ev\":\"fault\"}\n{\"ev\":\"fault_sim\"}\n");
  (* a manifest whose id does not recompute must not classify *)
  Alcotest.(check bool)
    "corrupt manifest rejected" true
    (match D.classify_input {|{"satpg_manifest":1,"id":"beef"}|} with
     | Error _ -> true
     | Ok _ -> false);
  Alcotest.(check bool)
    "garbage rejected" true
    (match D.classify_input "not json at all" with
     | Error _ -> true
     | Ok _ -> false)

(* --- self-diff ---------------------------------------------------------------- *)

let test_self_diff_empty () =
  let p = Lazy.force Test_obs.dk16_pair in
  let _, events = run_events p.Core.Flow.original in
  let side = D.side_of_events ~label:"run" events in
  let d = D.compute side side in
  Alcotest.(check bool) "self-diff is empty" true (D.is_empty d);
  Alcotest.(check (option int)) "zero delta" (Some 0) d.D.total_delta;
  Alcotest.(check (option bool)) "reconciled" (Some true) d.D.reconciled;
  Alcotest.(check bool)
    "zero tolerance does not breach" false
    (D.breach ~max_regress_pct:0.0 d)

(* --- exact reconciliation on the dk16 pair ------------------------------------ *)

let test_pair_reconciles () =
  let p = Lazy.force Test_obs.dk16_pair in
  let ro, eo = run_events p.Core.Flow.original in
  let rr, er = run_events p.Core.Flow.retimed in
  let d =
    D.compute
      (D.side_of_events ~label:"original" eo)
      (D.side_of_events ~label:"retimed" er)
  in
  let expected =
    Atpg.Types.work_units rr.Atpg.Types.stats
    - Atpg.Types.work_units ro.Atpg.Types.stats
  in
  Alcotest.(check (option int)) "total delta" (Some expected) d.D.total_delta;
  Alcotest.(check (option int))
    "per-fault rows attribute the delta exactly" (Some expected)
    d.D.attributed_delta;
  Alcotest.(check (option bool)) "reconciled" (Some true) d.D.reconciled;
  (* retiming changes the fault universe, so the pair diff must surface
     structural churn, not just magnitudes *)
  Alcotest.(check bool)
    "has rows" true
    (d.D.rows <> []);
  Alcotest.(check bool)
    "detects new faults" true
    (d.D.new_keys <> []);
  (* rows are sorted by |delta| descending *)
  let rec sorted = function
    | a :: (b :: _ as tl) ->
      abs a.D.delta >= abs b.D.delta && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "rows sorted by |delta|" true (sorted d.D.rows);
  (* the JSON report carries the same reconciliation verdict *)
  let j = D.to_json d in
  Alcotest.(check (option bool))
    "json reconciled" (Some true)
    (Option.bind (J.member "reconciled" j) (function
      | J.Bool b -> Some b
      | _ -> None))

(* --- bench arrays ------------------------------------------------------------- *)

let bench_record engine benchmark units =
  J.Obj
    [
      ("engine", J.String engine);
      ("benchmark", J.String benchmark);
      ("work_units", J.Int units);
    ]

let test_bench_diff () =
  let a =
    [ bench_record "hitec" "dk16.o" 100; bench_record "hitec" "dk16.r" 200 ]
  in
  let b =
    [ bench_record "hitec" "dk16.o" 150; bench_record "sest" "dk16.o" 40 ]
  in
  let d =
    D.compute (D.side_of_bench ~label:"a" a) (D.side_of_bench ~label:"b" b)
  in
  Alcotest.(check (option int)) "total delta" (Some (-110)) d.D.total_delta;
  Alcotest.(check (option bool)) "bench rows are exact" (Some true) d.D.reconciled;
  Alcotest.(check (list string))
    "new cell" [ "sest/dk16.o" ] d.D.new_keys;
  Alcotest.(check (list string))
    "vanished cell" [ "hitec/dk16.r" ] d.D.vanished_keys;
  let cell key =
    match List.find_opt (fun r -> r.D.key = key) d.D.rows with
    | Some r -> r.D.delta
    | None -> Alcotest.fail ("missing row " ^ key)
  in
  Alcotest.(check int) "changed cell delta" 50 (cell "hitec/dk16.o")

let test_breach_threshold () =
  let diff a b =
    D.compute
      (D.side_of_bench ~label:"a" [ bench_record "hitec" "x" a ])
      (D.side_of_bench ~label:"b" [ bench_record "hitec" "x" b ])
  in
  (* exactly at the threshold: not a breach (strictly greater) *)
  Alcotest.(check bool)
    "at threshold passes" false
    (D.breach ~max_regress_pct:10.0 (diff 100 110));
  Alcotest.(check bool)
    "past threshold breaches" true
    (D.breach ~max_regress_pct:10.0 (diff 100 111));
  Alcotest.(check bool)
    "improvement never breaches" false
    (D.breach ~max_regress_pct:0.0 (diff 100 50))

(* --- bench history ------------------------------------------------------------ *)

let history_line suite engine benchmark units ts =
  J.to_string
    (J.Obj
       [
         ("suite", J.String suite);
         ("engine", J.String engine);
         ("benchmark", J.String benchmark);
         ("work_units", J.Int units);
         ("manifest", J.String "deadbeef");
         ("ts", J.Int ts);
       ])

let test_history_grouping () =
  let lines =
    [
      history_line "atpg" "hitec" "dk16.o" 100 1;
      history_line "atpg" "sest" "dk16.o" 70 1;
      "not json";
      history_line "atpg" "hitec" "dk16.o" 90 2;
    ]
  in
  let series, malformed = D.history_of_lines lines in
  Alcotest.(check int) "malformed lines counted" 1 malformed;
  Alcotest.(check (list string))
    "series in first-appearance order"
    [ "atpg/hitec/dk16.o"; "atpg/sest/dk16.o" ]
    (List.map fst series);
  let points =
    List.map (fun (p : D.history_point) -> (p.D.units, p.D.ts))
    @@ List.assoc "atpg/hitec/dk16.o" series
  in
  Alcotest.(check (list (pair int int)))
    "points in append order" [ (100, 1); (90, 2) ] points

let suite =
  [
    Alcotest.test_case "input classification" `Quick test_classify;
    Alcotest.test_case "self-diff is empty" `Quick test_self_diff_empty;
    Alcotest.test_case "dk16 pair reconciles exactly" `Quick
      test_pair_reconciles;
    Alcotest.test_case "bench-array attribution" `Quick test_bench_diff;
    Alcotest.test_case "breach threshold semantics" `Quick
      test_breach_threshold;
    Alcotest.test_case "history grouping" `Quick test_history_grouping;
  ]
