(* Content-addressed result store: structural hashing, cache keys, JSON
   codecs, the on-disk layer and the Core.Cache integration (including the
   name-aliasing regression the content keys exist to prevent). *)

(* ------------------------------------------------------------- fixtures *)

(* Helpers.toy_circuit rebuilt with every node renamed and the independent
   gates created in a different order — structurally the same machine. *)
let toy_renamed () =
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "in_a" in
  let bi = Netlist.Build.add_pi b "in_b" in
  let q0 = Netlist.Build.add_dff b "r0" in
  let q1 = Netlist.Build.add_dff b "r1" in
  (* n3 before n0/n1/n2: creation order must not matter *)
  let n3 = Netlist.Build.add_gate b Netlist.Node.Xor "g_out" [| q0; q1 |] in
  let n0 = Netlist.Build.add_gate b Netlist.Node.And "g_and" [| a; q1 |] in
  let n1 = Netlist.Build.add_gate b Netlist.Node.Not "g_not" [| q0 |] in
  let n2 = Netlist.Build.add_gate b Netlist.Node.Or "g_or" [| n1; bi |] in
  Netlist.Build.connect_dff b q0 n0;
  Netlist.Build.connect_dff b q1 n2;
  Netlist.Build.add_po b "zz" n3;
  Netlist.Build.finalize b

(* toy_circuit with one structural edit, selected by [tweak]. *)
let toy_tweaked tweak =
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  let bi = Netlist.Build.add_pi b "b" in
  let q0 =
    Netlist.Build.add_dff b ~init:(tweak = `Dff_init) "q0"
  in
  let q1 = Netlist.Build.add_dff b "q1" in
  let or_fn = if tweak = `Gate_fn then Netlist.Node.Nor else Netlist.Node.Or in
  let n0 = Netlist.Build.add_gate b Netlist.Node.And "n0" [| a; q1 |] in
  let n1 = Netlist.Build.add_gate b Netlist.Node.Not "n1" [| q0 |] in
  let n2 = Netlist.Build.add_gate b or_fn "n2" [| n1; bi |] in
  let n3 = Netlist.Build.add_gate b Netlist.Node.Xor "n3" [| q0; q1 |] in
  Netlist.Build.connect_dff b q0 n0;
  Netlist.Build.connect_dff b q1 n2;
  (if tweak = `Extra_dff then begin
     let q2 = Netlist.Build.add_dff b "q2" in
     Netlist.Build.connect_dff b q2 n3
   end);
  Netlist.Build.add_po b "out" n3;
  Netlist.Build.finalize b

(* Run [f] against a fresh temporary store directory, with the memory
   layer emptied; restores SATPG_STORE and cleans the directory after. *)
let with_store f =
  let dir = Filename.temp_file "satpg-test-store" "" in
  Sys.remove dir;
  let saved = Sys.getenv_opt Store.Disk.env_var in
  Unix.putenv Store.Disk.env_var dir;
  Core.Cache.reset_memory ();
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv Store.Disk.env_var
        (match saved with Some v -> v | None -> "");
      Core.Cache.reset_memory ();
      rm_rf dir)
    (fun () -> f dir)

let check_sorted_tbl msg expected actual =
  let keys t = List.sort compare (Hashtbl.fold (fun k () l -> k :: l) t []) in
  Alcotest.(check bool) msg true (keys expected = keys actual)

(* ------------------------------------------------------ structural hash *)

let test_hash_ignores_names () =
  Alcotest.(check string) "renaming and reordering preserve the hash"
    (Netlist.Structhash.circuit (Helpers.toy_circuit ()))
    (Netlist.Structhash.circuit (toy_renamed ()))

let test_hash_sees_structure () =
  let base = Netlist.Structhash.circuit (Helpers.toy_circuit ()) in
  Alcotest.(check string) "no tweak = same hash" base
    (Netlist.Structhash.circuit (toy_tweaked `None));
  List.iter
    (fun (what, tweak) ->
      Alcotest.(check bool) (what ^ " changes the hash") true
        (Netlist.Structhash.circuit (toy_tweaked tweak) <> base))
    [ ("gate function", `Gate_fn); ("DFF init", `Dff_init);
      ("extra DFF", `Extra_dff) ]

let test_config_fingerprint () =
  let base = Atpg.Types.default_config in
  let fp = Store.Key.config_fingerprint in
  Alcotest.(check string) "deterministic" (fp base) (fp base);
  Alcotest.(check bool) "budget change refreshes" true
    (fp { base with Atpg.Types.backtrack_limit = 7 } <> fp base);
  Alcotest.(check bool) "flag change refreshes" true
    (fp { base with Atpg.Types.learn = true } <> fp base)

let test_learn_flag_never_aliases () =
  (* regression: before PR 9 the fingerprint ignored [struct_learn], so a
     learn-on run could serve a learn-off request from the store (and
     vice versa) — silently, because everything else matches *)
  let base = Atpg.Types.default_config in
  let on = { base with Atpg.Types.struct_learn = true } in
  let fp = Store.Key.config_fingerprint in
  Alcotest.(check bool) "fingerprint split" true (fp on <> fp base);
  let h = Netlist.Structhash.circuit (Helpers.toy_circuit ()) in
  Alcotest.(check bool) "store keys split" true
    (Store.Key.atpg ~engine:"hitec" ~config:on ~circuit_hash:h ()
     <> Store.Key.atpg ~engine:"hitec" ~config:base ~circuit_hash:h ());
  (* the two learning flags must not collapse into one hash bit *)
  Alcotest.(check bool) "learn vs struct_learn split" true
    (fp on <> fp { base with Atpg.Types.learn = true })

let test_codec_learn_counters () =
  let r = Atpg.Run.generate (Helpers.toy_circuit ()) in
  r.Atpg.Types.stats.Atpg.Types.learn_conflicts <- 3;
  r.Atpg.Types.stats.Atpg.Types.learn_clauses <- 2;
  r.Atpg.Types.stats.Atpg.Types.learn_literals <- 7;
  r.Atpg.Types.stats.Atpg.Types.learn_hits <- 11;
  r.Atpg.Types.stats.Atpg.Types.learn_cube_hits <- 5;
  let j = Store.Codec.atpg_result_to_json r in
  (match Store.Codec.atpg_result_of_json j with
   | None -> Alcotest.fail "decode failed"
   | Some d ->
     let s = d.Atpg.Types.stats in
     Alcotest.(check int) "conflicts" 3 s.Atpg.Types.learn_conflicts;
     Alcotest.(check int) "clauses" 2 s.Atpg.Types.learn_clauses;
     Alcotest.(check int) "literals" 7 s.Atpg.Types.learn_literals;
     Alcotest.(check int) "hits" 11 s.Atpg.Types.learn_hits;
     Alcotest.(check int) "cube hits" 5 s.Atpg.Types.learn_cube_hits);
  (* a record written before the fields existed — simulated by stripping
     them from the JSON — must decode to zeroed counters, not fail *)
  let rec strip = function
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if String.length k >= 6 && String.sub k 0 6 = "learn_" then None
             else Some (k, strip v))
           fields)
    | Obs.Json.List l -> Obs.Json.List (List.map strip l)
    | v -> v
  in
  match Store.Codec.atpg_result_of_json (strip j) with
  | None -> Alcotest.fail "pre-PR-9 record must still decode"
  | Some d ->
    Alcotest.(check int) "absent fields read as zero" 0
      d.Atpg.Types.stats.Atpg.Types.learn_hits

let test_keys_exclude_names () =
  let h = Netlist.Structhash.circuit (Helpers.toy_circuit ()) in
  let k = Store.Key.atpg ~engine:"hitec" ~config:Atpg.Types.default_config
      ~circuit_hash:h ()
  in
  (* same circuit, any display name: the key cannot differ by name
     because no name is even accepted *)
  Alcotest.(check bool) "engine enters the key" true
    (k <> Store.Key.atpg ~engine:"sest" ~config:Atpg.Types.default_config
            ~circuit_hash:h ());
  Alcotest.(check bool) "prune fingerprint enters the key" true
    (k <> Store.Key.atpg ~engine:"hitec" ~config:Atpg.Types.default_config
            ~classify:"abc" ~circuit_hash:h ());
  Alcotest.(check bool) "reach and structural keys differ" true
    (Store.Key.reach ~max_states:10 ~circuit_hash:h
     <> Store.Key.structural ~depth_budget:10 ~cycle_budget:10
          ~circuit_hash:h)

(* ---------------------------------------------------------- JSON codecs *)

let test_codec_atpg_roundtrip () =
  let r = Atpg.Run.generate (Helpers.toy_circuit ()) in
  match Store.Codec.atpg_result_of_json (Store.Codec.atpg_result_to_json r) with
  | None -> Alcotest.fail "decode failed"
  | Some d ->
    Alcotest.(check bool) "faults" true (d.Atpg.Types.faults = r.Atpg.Types.faults);
    Alcotest.(check bool) "statuses" true
      (d.Atpg.Types.status = r.Atpg.Types.status);
    Alcotest.(check bool) "test sets" true
      (d.Atpg.Types.test_sets = r.Atpg.Types.test_sets);
    Alcotest.(check (float 1e-9)) "coverage" r.Atpg.Types.fault_coverage
      d.Atpg.Types.fault_coverage;
    Alcotest.(check bool) "trajectory" true
      (d.Atpg.Types.trajectory = r.Atpg.Types.trajectory);
    Alcotest.(check int) "work" r.Atpg.Types.stats.Atpg.Types.work
      d.Atpg.Types.stats.Atpg.Types.work;
    check_sorted_tbl "states" r.Atpg.Types.stats.Atpg.Types.states
      d.Atpg.Types.stats.Atpg.Types.states;
    check_sorted_tbl "state cubes" r.Atpg.Types.stats.Atpg.Types.state_cubes
      d.Atpg.Types.stats.Atpg.Types.state_cubes

let test_codec_reach_roundtrip () =
  let r = Analysis.Reach.explore (Helpers.toy_circuit ()) in
  match
    Store.Codec.reach_result_of_json (Store.Codec.reach_result_to_json r)
  with
  | None -> Alcotest.fail "decode failed"
  | Some d ->
    Alcotest.(check int) "valid" r.Analysis.Reach.valid_states
      d.Analysis.Reach.valid_states;
    Alcotest.(check int) "bits" r.Analysis.Reach.total_bits
      d.Analysis.Reach.total_bits;
    Alcotest.(check int) "initial" r.Analysis.Reach.initial
      d.Analysis.Reach.initial;
    check_sorted_tbl "state set" r.Analysis.Reach.states
      d.Analysis.Reach.states

let test_codec_untest_roundtrip () =
  (* cover the whole verdict enum space, not just what one circuit's
     classification happens to produce *)
  let causes =
    [ Analysis.Untest.Unobservable; Analysis.Untest.Unexcitable;
      Analysis.Untest.Effect_confined; Analysis.Untest.Unreachable_activation;
      Analysis.Untest.Machine_equivalent ]
  in
  let evidences =
    [ Analysis.Untest.Structural; Analysis.Untest.Ternary;
      Analysis.Untest.Symbolic ]
  in
  let verdicts =
    Analysis.Untest.Unknown
    :: List.concat_map
         (fun cause ->
           List.map
             (fun evidence ->
               Analysis.Untest.Untestable { cause; evidence })
             evidences)
         causes
  in
  let faults =
    Array.of_list
      (List.mapi
         (fun i _ -> { Fsim.Fault.site = Fsim.Fault.Stem i; stuck = i mod 2 = 0 })
         verdicts)
  in
  let t =
    Analysis.Untest.v ~faults
      ~verdicts:(Array.of_list verdicts)
      ~summary:
        {
          Analysis.Untest.total = Array.length faults;
          proved = Array.length faults - 1;
          structural = 5;
          ternary = 5;
          symbolic = 5;
          symbolic_ran = true;
          bdd_nodes = 123;
          work = 456;
        }
  in
  match Store.Codec.untest_of_json (Store.Codec.untest_to_json t) with
  | None -> Alcotest.fail "decode failed"
  | Some d ->
    Alcotest.(check bool) "faults" true
      (d.Analysis.Untest.faults = t.Analysis.Untest.faults);
    Alcotest.(check bool) "verdicts" true
      (d.Analysis.Untest.verdicts = t.Analysis.Untest.verdicts);
    Alcotest.(check bool) "summary" true
      (d.Analysis.Untest.summary = t.Analysis.Untest.summary)

let test_codec_symreach_roundtrip () =
  let s =
    (Analysis.Symreach.explore (Helpers.toy_circuit ()))
      .Analysis.Symreach.summary
  in
  Alcotest.(check bool) "identical record" true
    (Store.Codec.symreach_summary_of_json
       (Store.Codec.symreach_summary_to_json s)
     = Some s);
  (* a count past integer range round-trips through the float field *)
  let wide =
    {
      s with
      Analysis.Symreach.total_bits = 65;
      valid_states = ldexp 1.0 65;
      valid_states_int = None;
    }
  in
  Alcotest.(check bool) "past-integer-range record" true
    (Store.Codec.symreach_summary_of_json
       (Store.Codec.symreach_summary_to_json wide)
     = Some wide);
  (* an older encoder's per-addition-rounded float can sit an ulp away
     from [float_of_int] of the exact count; the decoder must accept the
     record and normalize to the int-derived value, not report corruption *)
  let i = (1 lsl 60) + 1 in
  let drifted =
    {
      s with
      Analysis.Symreach.total_bits = 60;
      valid_states = ldexp 1.0 60 +. 256.0 (* one ulp above float_of_int i *);
      valid_states_int = Some i;
    }
  in
  (match
     Store.Codec.symreach_summary_of_json
       (Store.Codec.symreach_summary_to_json drifted)
   with
  | None -> Alcotest.fail "ulp-drifted record rejected as corrupt"
  | Some d ->
    Alcotest.(check (float 0.0))
      "normalized to the exact count" (float_of_int i)
      d.Analysis.Symreach.valid_states)

let test_codec_symreach_rejects_garbage () =
  let open Obs.Json in
  Alcotest.(check bool) "empty object" true
    (Store.Codec.symreach_summary_of_json (Obj []) = None);
  Alcotest.(check bool) "not an object" true
    (Store.Codec.symreach_summary_of_json (String "nope") = None);
  (* well-shaped but internally inconsistent: the integer count must
     agree with the float count *)
  let s =
    (Analysis.Symreach.explore (Helpers.toy_circuit ()))
      .Analysis.Symreach.summary
  in
  let mangled =
    match Store.Codec.symreach_summary_to_json s with
    | Obj fields ->
      Obj
        (Stdlib.List.map
           (function
             | "valid_states_int", Int i -> ("valid_states_int", Int (i + 1))
             | f -> f)
           fields)
    | _ -> Alcotest.fail "unexpected encoding"
  in
  Alcotest.(check bool) "count mismatch" true
    (Store.Codec.symreach_summary_of_json mangled = None)

let test_codec_structural_roundtrip () =
  let r = Analysis.Structural.analyze (Helpers.toy_circuit ()) in
  Alcotest.(check bool) "identical record" true
    (Store.Codec.structural_result_of_json
       (Store.Codec.structural_result_to_json r)
     = Some r)

let test_codec_rejects_garbage () =
  let open Obs.Json in
  Alcotest.(check bool) "empty object" true
    (Store.Codec.atpg_result_of_json (Obj []) = None);
  Alcotest.(check bool) "not an object" true
    (Store.Codec.reach_result_of_json (String "nope") = None);
  (* well-shaped but internally inconsistent: unknown status enum *)
  let r = Atpg.Run.generate (Helpers.toy_circuit ()) in
  let mangled =
    match Store.Codec.atpg_result_to_json r with
    | Obj fields ->
      Obj
        (Stdlib.List.map
           (function
             | "status", List (_ :: rest) ->
               ("status", List (String "bogus" :: rest))
             | f -> f)
           fields)
    | _ -> Alcotest.fail "unexpected encoding"
  in
  Alcotest.(check bool) "unknown enum" true
    (Store.Codec.atpg_result_of_json mangled = None)

let test_codec_manifest_roundtrip () =
  let m =
    Obs.Ledger.make ~tool:"satpg" ~command:"atpg" ~circuit:"toy"
      ~circuit_hash:"cafe" ~config_fp:"beef" ~engine:"hitec" ~jobs:1
      ~budget:"" ~work_units:42 ~metrics:Obs.Json.Null
      ~spans:[ ("atpg.fault", 3, 40) ]
      ~event_lines:[ {|{"ev":"fault"}|} ]
      ()
  in
  match Store.Codec.manifest_of_json (Store.Codec.manifest_to_json m) with
  | None -> Alcotest.fail "decode failed"
  | Some d ->
    Alcotest.(check string) "id survives" (Obs.Ledger.id m) (Obs.Ledger.id d);
    Alcotest.(check string) "identical bytes" (Obs.Ledger.to_string m)
      (Obs.Ledger.to_string d)

(* ------------------------------------------------------------ disk layer *)

let test_disk_disabled () =
  let saved = Sys.getenv_opt Store.Disk.env_var in
  Unix.putenv Store.Disk.env_var "";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv Store.Disk.env_var
        (match saved with Some v -> v | None -> ""))
    (fun () ->
      Alcotest.(check bool) "disabled" false (Store.Disk.enabled ());
      Alcotest.(check bool) "save is a no-op" false
        (Store.Disk.save Store.Disk.Reach ~key:"k" ~name:"n"
           (Obs.Json.Int 1));
      Alcotest.(check bool) "load is absent" true
        (Store.Disk.load Store.Disk.Reach ~key:"k" = Store.Disk.Absent))

let test_disk_roundtrip () =
  with_store (fun _dir ->
      (* a decodable payload, so the deep verify below passes *)
      let payload =
        Store.Codec.reach_result_to_json
          (Analysis.Reach.explore (Helpers.toy_circuit ()))
      in
      Alcotest.(check bool) "written" true
        (Store.Disk.save Store.Disk.Reach ~key:"cafe" ~name:"toy" payload);
      (match Store.Disk.load Store.Disk.Reach ~key:"cafe" with
       | Store.Disk.Found p ->
         Alcotest.(check string) "payload survives"
           (Obs.Json.to_string payload) (Obs.Json.to_string p)
       | _ -> Alcotest.fail "expected Found");
      Alcotest.(check bool) "other key absent" true
        (Store.Disk.load Store.Disk.Reach ~key:"beef" = Store.Disk.Absent);
      Alcotest.(check bool) "other kind absent" true
        (Store.Disk.load Store.Disk.Atpg ~key:"cafe" = Store.Disk.Absent);
      let entries = Store.Disk.entries () in
      Alcotest.(check int) "one record" 1 (List.length entries);
      List.iter
        (fun (_, check) ->
          Alcotest.(check bool) "verifies" true (check = Ok ()))
        (Store.Disk.verify ());
      Alcotest.(check int) "clear removes it" 1 (Store.Disk.clear ());
      Alcotest.(check int) "empty after clear" 0
        (List.length (Store.Disk.entries ())))

let test_disk_corrupt_record () =
  with_store (fun _dir ->
      ignore
        (Store.Disk.save Store.Disk.Reach ~key:"cafe" ~name:"toy"
           (Obs.Json.Int 1));
      let entry = List.hd (Store.Disk.entries ()) in
      let oc = open_out entry.Store.Disk.path in
      output_string oc "{\"satpg_store\": tru";
      close_out oc;
      (match Store.Disk.load Store.Disk.Reach ~key:"cafe" with
       | Store.Disk.Corrupt _ -> ()
       | _ -> Alcotest.fail "expected Corrupt");
      match Store.Disk.verify () with
      | [ (_, Error _) ] -> ()
      | _ -> Alcotest.fail "verify must flag the record")

let test_disk_rejects_key_mismatch () =
  with_store (fun dir ->
      ignore
        (Store.Disk.save Store.Disk.Reach ~key:"cafe" ~name:"toy"
           (Obs.Json.Int 1));
      (* a record copied under the wrong key must not be served *)
      let reach_dir = Filename.concat dir "reach" in
      let src = Filename.concat reach_dir "cafe.json" in
      let dst = Filename.concat reach_dir "beef.json" in
      let ic = open_in src and oc = open_out dst in
      output_string oc (In_channel.input_all ic);
      close_in ic;
      close_out oc;
      match Store.Disk.load Store.Disk.Reach ~key:"beef" with
      | Store.Disk.Corrupt _ -> ()
      | _ -> Alcotest.fail "expected Corrupt on key mismatch")

(* ------------------------------------------------------ cache integration *)

let test_cache_persists_across_memory_reset () =
  with_store (fun _ ->
      let c = Helpers.toy_circuit () in
      let r1 = Core.Cache.atpg Core.Cache.Hitec ~name:"toy" c in
      Alcotest.(check string) "cold run computes" "miss"
        (Core.Cache.outcome_string (Core.Cache.last_outcome ()));
      Core.Cache.reset_memory ();
      let r2 = Core.Cache.atpg Core.Cache.Hitec ~name:"toy" c in
      Alcotest.(check string) "warm run served from disk" "disk-hit"
        (Core.Cache.outcome_string (Core.Cache.last_outcome ()));
      Alcotest.(check bool) "statuses identical" true
        (r1.Atpg.Types.status = r2.Atpg.Types.status);
      Alcotest.(check bool) "tests identical" true
        (r1.Atpg.Types.test_sets = r2.Atpg.Types.test_sets);
      Alcotest.(check (float 1e-9)) "coverage identical"
        r1.Atpg.Types.fault_coverage r2.Atpg.Types.fault_coverage)

let test_cache_recovers_from_corruption () =
  with_store (fun _ ->
      let c = Helpers.toy_circuit () in
      let r1 = Core.Cache.reach ~name:"toy" c in
      let entry = List.hd (Store.Disk.entries ()) in
      let oc = open_out entry.Store.Disk.path in
      output_string oc "not json at all";
      close_out oc;
      Core.Cache.reset_memory ();
      let r2 = Core.Cache.reach ~name:"toy" c in
      Alcotest.(check string) "corrupt record degrades to recompute" "miss"
        (Core.Cache.outcome_string (Core.Cache.last_outcome ()));
      Alcotest.(check int) "same answer" r1.Analysis.Reach.valid_states
        r2.Analysis.Reach.valid_states;
      (* the rewrite self-heals the store *)
      Core.Cache.reset_memory ();
      ignore (Core.Cache.reach ~name:"toy" c);
      Alcotest.(check string) "healed record serves again" "disk-hit"
        (Core.Cache.outcome_string (Core.Cache.last_outcome ())))

let test_cache_budget_enters_key () =
  with_store (fun _ ->
      let c = Helpers.toy_circuit () in
      ignore (Core.Cache.atpg Core.Cache.Hitec ~name:"toy" c);
      Core.Cache.reset_memory ();
      Unix.putenv "SATPG_BUDGET" "0.5";
      Fun.protect
        ~finally:(fun () -> Unix.putenv "SATPG_BUDGET" "")
        (fun () ->
          ignore (Core.Cache.atpg Core.Cache.Hitec ~name:"toy" c);
          Alcotest.(check string) "scaled budget derives a fresh key" "miss"
            (Core.Cache.outcome_string (Core.Cache.last_outcome ()))))

let suite =
  [
    Alcotest.test_case "hash invariant under renaming" `Quick
      test_hash_ignores_names;
    Alcotest.test_case "hash tracks structure" `Quick test_hash_sees_structure;
    Alcotest.test_case "config fingerprint" `Quick test_config_fingerprint;
    Alcotest.test_case "learn flag never aliases" `Quick
      test_learn_flag_never_aliases;
    Alcotest.test_case "codec learn counters" `Quick test_codec_learn_counters;
    Alcotest.test_case "keys exclude names" `Quick test_keys_exclude_names;
    Alcotest.test_case "codec atpg round-trip" `Quick
      test_codec_atpg_roundtrip;
    Alcotest.test_case "codec reach round-trip" `Quick
      test_codec_reach_roundtrip;
    Alcotest.test_case "codec untest round-trip" `Quick
      test_codec_untest_roundtrip;
    Alcotest.test_case "codec symreach round-trip" `Quick
      test_codec_symreach_roundtrip;
    Alcotest.test_case "codec symreach rejects garbage" `Quick
      test_codec_symreach_rejects_garbage;
    Alcotest.test_case "codec structural round-trip" `Quick
      test_codec_structural_roundtrip;
    Alcotest.test_case "codec rejects garbage" `Quick
      test_codec_rejects_garbage;
    Alcotest.test_case "codec manifest round-trip" `Quick
      test_codec_manifest_roundtrip;
    Alcotest.test_case "disk disabled = no-op" `Quick test_disk_disabled;
    Alcotest.test_case "disk round-trip" `Quick test_disk_roundtrip;
    Alcotest.test_case "disk corrupt record" `Quick test_disk_corrupt_record;
    Alcotest.test_case "disk rejects key mismatch" `Quick
      test_disk_rejects_key_mismatch;
    Alcotest.test_case "cache persists across processes" `Quick
      test_cache_persists_across_memory_reset;
    Alcotest.test_case "cache recovers from corruption" `Quick
      test_cache_recovers_from_corruption;
    Alcotest.test_case "cache key tracks SATPG_BUDGET" `Quick
      test_cache_budget_enters_key;
  ]
