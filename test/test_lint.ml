(* Lint subsystem tests: every rule fired by a crafted defect, JSON
   round-trips, SCOAP/FFR sanity, and the Theorem-1 property over the
   benchmark pairs (the lint-proved-untestable invariant metric must be
   identical on the original and retimed circuit). *)

let rules ds = List.map (fun d -> d.Lint.Diag.rule) ds
let has_rule r ds = List.mem r (rules ds)

(* --- crafted netlists -------------------------------------------------------- *)

(* a -> g1 = AND(a, g2); g2 = BUF(g1): a combinational cycle.
   Build.finalize rejects these, so the fixture goes through Node.make. *)
let cyclic_circuit () =
  let nodes =
    [|
      { Netlist.Node.id = 0; name = "a"; kind = Netlist.Node.Pi 0; fanins = [||] };
      {
        Netlist.Node.id = 1;
        name = "g1";
        kind = Netlist.Node.Gate Netlist.Node.And;
        fanins = [| 0; 2 |];
      };
      {
        Netlist.Node.id = 2;
        name = "g2";
        kind = Netlist.Node.Gate Netlist.Node.Buf;
        fanins = [| 1 |];
      };
    |]
  in
  Netlist.Node.make ~nodes ~pis:[| 0 |] ~pos:[| ("out", 2) |] ~dffs:[||]
    ~fanouts:[| [| 1 |]; [| 2 |]; [| 1 |] |]
    ~order:[| 1; 2 |] ~level:[| 0; 1; 2 |]

(* A well-formed circuit with one dead gate (no fanout, not a PO). *)
let dead_gate_circuit () =
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  let c = Netlist.Build.add_pi b "c" in
  let live = Netlist.Build.add_gate b Netlist.Node.And "live" [| a; c |] in
  let _dead = Netlist.Build.add_gate b Netlist.Node.Or "deadg" [| a; c |] in
  Netlist.Build.add_po b "out" live;
  Netlist.Build.finalize b

(* g_const = OR(a, one) is provably constant 1: NET005 fires, its sa1 is
   unexcitable and everything behind the blocked AND is unpropagatable. *)
let constant_circuit () =
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  let one = Netlist.Build.add_const b "one" true in
  let g_const = Netlist.Build.add_gate b Netlist.Node.Or "gconst" [| a; one |] in
  Netlist.Build.add_po b "out" g_const;
  Netlist.Build.finalize b

(* q0' = a, q1' = NOT a: the two registers always disagree after the
   first clock, so state (1,1) is unreachable and AND(q0,q1) is constant 0
   over the valid states — its sa0 needs an activation the machine can
   never provide, invisible to the static value rules. *)
let seq_redundant_circuit () =
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  let q0 = Netlist.Build.add_dff b "q0" in
  let q1 = Netlist.Build.add_dff b "q1" in
  let na = Netlist.Build.add_gate b Netlist.Node.Not "na" [| a |] in
  let g = Netlist.Build.add_gate b Netlist.Node.And "g" [| q0; q1 |] in
  Netlist.Build.connect_dff b q0 a;
  Netlist.Build.connect_dff b q1 na;
  Netlist.Build.add_po b "z" g;
  (Netlist.Build.finalize b, g)

let test_seq_redundant_rule () =
  let c, g = seq_redundant_circuit () in
  let r = Analysis.Symreach.explore c in
  Alcotest.(check (option int))
    "3 of 4 states reachable" (Some 3)
    r.Analysis.Symreach.summary.Analysis.Symreach.valid_states_int;
  let can_take n v = Analysis.Symreach.can_take r n v in
  (* rule level: g/sa0 is a candidate, and the oracle never contradicts a
     static Unexcitable proof (the Theorem-1 cross-check) *)
  let values = Lint.Constants.values c in
  let obs = Lint.Netlist_rules.fault_observable c values in
  let _, proved = Lint.Netlist_rules.untestable_faults c values obs in
  let cands, incons =
    Lint.Netlist_rules.seq_redundant_faults c ~can_take proved
  in
  Alcotest.(check int) "no static/symbolic inconsistency" 0
    (List.length incons);
  Alcotest.(check bool) "g/sa0 flagged" true
    (List.exists
       (fun f ->
         Lint.Netlist_rules.fault_source c f = g && not f.Fsim.Fault.stuck)
       cands);
  (* none of the candidates is already statically proved *)
  List.iter
    (fun f ->
      Alcotest.(check bool) "not statically proved" false
        (List.exists (fun (p, _) -> p = f) proved))
    cands;
  let oracle =
    {
      Lint.Netlist_rules.can_take;
      max_nodes = Analysis.Symreach.default_max_nodes;
      bdd_nodes = r.Analysis.Symreach.summary.Analysis.Symreach.bdd_nodes;
    }
  in
  let ds = Lint.Netlist_rules.seq_redundant_diags c ~oracle (cands, incons) in
  Alcotest.(check bool) "NET008 fires" true (has_rule "NET008" ds);
  Alcotest.(check bool) "proved, not an error" false (Lint.Diag.has_errors ds);
  (* promoted: proved sequential redundancy is Warning severity with a
     machine-readable symbolic proof payload *)
  List.iter
    (fun d ->
      Alcotest.(check string)
        "warning severity" "warning"
        (Lint.Diag.severity_to_string d.Lint.Diag.severity);
      match d.Lint.Diag.proof with
      | None -> Alcotest.fail "NET008 diagnostic carries no proof"
      | Some p ->
        Alcotest.(check (option string))
          "proof cause" (Some "unreachable_activation")
          (match Lint.Json.member "cause" p with
          | Some (Lint.Json.String s) -> Some s
          | _ -> None);
        Alcotest.(check (option string))
          "proof source" (Some "symbolic")
          (match Lint.Json.member "source" p with
          | Some (Lint.Json.String s) -> Some s
          | _ -> None))
    ds;
  (* driver level: the summary carries the count, and omitting the oracle
     skips the rule *)
  let s = Lint.Report.lint_netlist ~oracle c in
  Alcotest.(check (option int))
    "summary count"
    (Some (List.length cands))
    s.Lint.Report.seq_redundant;
  Alcotest.(check (option int)) "no oracle, no NET008" None
    (Lint.Report.lint_netlist c).Lint.Report.seq_redundant

let test_cycle_rule () =
  let c = cyclic_circuit () in
  let ds = Lint.Netlist_rules.combinational_cycles c in
  Alcotest.(check bool) "NET001 fires" true (has_rule "NET001" ds);
  Alcotest.(check bool) "is an error" true (Lint.Diag.has_errors ds);
  (* the staged driver must stop before the order-trusting analyses *)
  let s = Lint.Report.lint_netlist c in
  Alcotest.(check bool) "scoap skipped" true (s.Lint.Report.scoap = None);
  Alcotest.(check bool)
    "gate raises" true
    (try
       Lint.Report.assert_clean ~what:"test" c;
       false
     with Failure _ -> true)

let test_structure_rule () =
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  Netlist.Build.add_po b "z" a;
  Netlist.Build.add_po b "z" a;
  let c = Netlist.Build.finalize b in
  let problems = Netlist.Check.problems c in
  Alcotest.(check bool)
    "duplicate PO detected" true
    (List.mem (Netlist.Check.Duplicate_po "z") problems);
  let ds = Lint.Netlist_rules.structure c in
  Alcotest.(check bool) "NET002 fires" true (has_rule "NET002" ds)

(* Satellite regression: a DFF with an out-of-range data input must be
   reported exactly once (as Dff_unconnected), not double-counted by the
   generic fanin sweep. *)
let test_check_dff_single_report () =
  let nodes =
    [|
      { Netlist.Node.id = 0; name = "a"; kind = Netlist.Node.Pi 0; fanins = [||] };
      {
        Netlist.Node.id = 1;
        name = "q";
        kind = Netlist.Node.Dff { init = false };
        fanins = [| 9 |];
      };
    |]
  in
  let c =
    Netlist.Node.make ~nodes ~pis:[| 0 |] ~pos:[| ("out", 0) |] ~dffs:[| 1 |]
      ~fanouts:[| [||]; [||] |] ~order:[||] ~level:[| 0; 0 |]
  in
  Alcotest.(check (list string))
    "one problem only"
    [ "DFF q has no data input" ]
    (List.map Netlist.Check.problem_to_string (Netlist.Check.problems c))

let test_dead_rule () =
  let c = dead_gate_circuit () in
  let s = Lint.Report.lint_netlist c in
  let dead =
    List.filter (fun d -> d.Lint.Diag.rule = "NET003") s.Lint.Report.diags
  in
  Alcotest.(check int) "one dead diagnostic" 1 (List.length dead);
  match (List.hd dead).Lint.Diag.loc with
  | Lint.Diag.Node { name; _ } -> Alcotest.(check string) "names it" "deadg" name
  | _ -> Alcotest.fail "expected a node location"

let test_constant_and_untestable_rules () =
  let c = constant_circuit () in
  let s = Lint.Report.lint_netlist c in
  let by r = List.filter (fun d -> d.Lint.Diag.rule = r) s.Lint.Report.diags in
  Alcotest.(check bool) "NET005 fires" true (by "NET005" <> []);
  Alcotest.(check bool) "NET006 fires" true (by "NET006" <> []);
  Alcotest.(check bool) "proved untestable > 0" true (s.Lint.Report.untestable > 0);
  Alcotest.(check bool)
    "invariant metric sees them" true
    (s.Lint.Report.invariant_untestable > 0);
  (* the constant-generator DFF itself is exempt from NET005 *)
  List.iter
    (fun d ->
      match d.Lint.Diag.loc with
      | Lint.Diag.Node { name; _ } ->
        Alcotest.(check bool) "not the generator" false (name = "one")
      | _ -> ())
    (by "NET005")

let test_clean_circuit () =
  let c = Helpers.toy_circuit () in
  let s = Lint.Report.lint_netlist c in
  Alcotest.(check int) "no errors"
    0
    (Lint.Diag.count_severity Lint.Diag.Error s.Lint.Report.diags);
  Alcotest.(check int) "no warnings"
    0
    (Lint.Diag.count_severity Lint.Diag.Warning s.Lint.Report.diags);
  Alcotest.(check int) "nothing untestable" 0 s.Lint.Report.untestable;
  Lint.Report.assert_clean ~what:"toy" c

(* --- SCOAP / FFR ------------------------------------------------------------- *)

let test_scoap_sanity () =
  let c = Helpers.toy_circuit () in
  let s = Lint.Scoap.compute c in
  Array.iter
    (fun id ->
      Alcotest.(check int) "PI cc0" 1 s.Lint.Scoap.cc0.(id);
      Alcotest.(check int) "PI cc1" 1 s.Lint.Scoap.cc1.(id))
    c.Netlist.Node.pis;
  Array.iter
    (fun (_, id) -> Alcotest.(check int) "PO driver co" 0 s.Lint.Scoap.co.(id))
    c.Netlist.Node.pos;
  (* every node of the toy circuit is exercisable: all scores finite *)
  Array.iter
    (fun (nd : Netlist.Node.node) ->
      let id = nd.Netlist.Node.id in
      Alcotest.(check bool) "finite" true
        (Lint.Scoap.testability s id < Lint.Scoap.unreachable))
    c.Netlist.Node.nodes

let test_ffr_partition () =
  let c = Helpers.figure2_original () in
  let regions = Lint.Ffr.extract c in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (r : Lint.Ffr.region) ->
      List.iter
        (fun id ->
          Alcotest.(check bool) "member is a gate" true
            (match (Netlist.Node.node c id).Netlist.Node.kind with
             | Netlist.Node.Gate _ -> true
             | _ -> false);
          Alcotest.(check bool) "no overlap" false (Hashtbl.mem seen id);
          Hashtbl.add seen id ())
        r.Lint.Ffr.members)
    regions;
  Alcotest.(check int) "every gate covered exactly once"
    (Netlist.Node.num_gates c) (Hashtbl.length seen)

(* --- FSM rules ---------------------------------------------------------------- *)

let machine ?(num_inputs = 1) ~states ~reset transitions =
  {
    Fsm.Machine.name = "crafted";
    num_inputs;
    num_outputs = 1;
    state_names = Array.of_list states;
    reset;
    transitions = Array.of_list transitions;
  }

let t ~src ~dst ?(in_care = 0) ?(in_value = 0) () =
  { Fsm.Machine.in_care; in_value; src; dst; out_care = 1; out_value = 0 }

let test_fsm_unreachable () =
  (* A -> B on anything; C never entered *)
  let m =
    machine ~states:[ "A"; "B"; "C" ] ~reset:0
      [ t ~src:0 ~dst:1 (); t ~src:1 ~dst:0 () ]
  in
  let ds = Lint.Fsm_rules.lint m in
  Alcotest.(check bool) "FSM001 fires" true (has_rule "FSM001" ds);
  Alcotest.(check bool)
    "on state C" true
    (List.exists
       (fun d ->
         d.Lint.Diag.rule = "FSM001"
         && d.Lint.Diag.loc = Lint.Diag.State { index = 2; name = "C" })
       ds)

let test_fsm_dead_state () =
  (* B is reachable but nothing leaves it *)
  let m = machine ~states:[ "A"; "B" ] ~reset:0 [ t ~src:0 ~dst:1 () ] in
  let ds = Lint.Fsm_rules.dead_states m in
  Alcotest.(check bool)
    "FSM002 on B" true
    (List.exists
       (fun d -> d.Lint.Diag.loc = Lint.Diag.State { index = 1; name = "B" })
       ds)

let test_fsm_nondet () =
  (* two transitions of A match input 0 with different destinations *)
  let m =
    machine ~states:[ "A"; "B"; "C" ] ~reset:0
      [ t ~src:0 ~dst:1 ~in_care:0 (); t ~src:0 ~dst:2 ~in_care:0 () ]
  in
  let ds = Lint.Fsm_rules.nondeterministic m in
  Alcotest.(check bool) "FSM003 fires" true (has_rule "FSM003" ds);
  Alcotest.(check bool) "is an error" true (Lint.Diag.has_errors ds)

let test_fsm_incomplete () =
  (* input bit specified: only the 0 half of A's inputs is covered *)
  let m =
    machine ~states:[ "A" ] ~reset:0 [ t ~src:0 ~dst:0 ~in_care:1 ~in_value:0 () ]
  in
  match Lint.Fsm_rules.incompletely_specified m with
  | [ d ] ->
    Alcotest.(check string) "FSM004" "FSM004" d.Lint.Diag.rule;
    Alcotest.(check bool) "counts the hole" true
      (Helpers.contains_substring d.Lint.Diag.message "1 (state, input)")
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_fsm_benchmarks_deterministic () =
  List.iter
    (fun name ->
      let m = Fsm.Benchmarks.machine_of_name name in
      let ds = Lint.Report.lint_fsm m in
      Alcotest.(check bool)
        (name ^ " has no FSM errors")
        false (Lint.Diag.has_errors ds))
    [ "dk16"; "pma"; "s510"; "s820"; "s832"; "scf" ]

(* --- JSON --------------------------------------------------------------------- *)

let test_json_roundtrip () =
  let samples =
    [
      Lint.Json.Null;
      Lint.Json.Bool true;
      Lint.Json.Int (-42);
      Lint.Json.String "quote \" backslash \\ newline \n tab \t";
      Lint.Json.List [ Lint.Json.Int 1; Lint.Json.String "x"; Lint.Json.Null ];
      Lint.Json.Obj
        [
          ("a", Lint.Json.List []);
          ("b", Lint.Json.Obj [ ("nested", Lint.Json.Bool false) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      let j' = Lint.Json.parse (Lint.Json.to_string j) in
      Alcotest.(check bool) "parse inverts print" true (Lint.Json.equal j j'))
    samples

let test_diag_roundtrip () =
  let locs =
    [
      Lint.Diag.Circuit;
      Lint.Diag.Node { id = 3; name = "g3" };
      Lint.Diag.Po "out";
      Lint.Diag.State { index = 1; name = "B" };
      Lint.Diag.Transition 7;
    ]
  in
  List.iter
    (fun loc ->
      let d =
        Lint.Diag.make ~rule:"NET001" ~severity:Lint.Diag.Warning ~loc
          "message with \"specials\"\n"
      in
      (* through the printer/parser as well, as the CLI emits text *)
      let j = Lint.Json.parse (Lint.Json.to_string (Lint.Diag.to_json d)) in
      match Lint.Diag.of_json j with
      | Some d' -> Alcotest.(check bool) "diag round-trips" true (d = d')
      | None -> Alcotest.fail "of_json failed")
    locs

let test_report_json () =
  let c = constant_circuit () in
  let s = Lint.Report.lint_netlist c in
  let j = Lint.Report.netlist_to_json ~include_scoap:true ~name:"const" c s in
  let j' = Lint.Json.parse (Lint.Json.to_string j) in
  Alcotest.(check bool) "document round-trips" true (Lint.Json.equal j j');
  match Lint.Json.member "summary" j' with
  | Some summary ->
    Alcotest.(check bool) "untestable exported" true
      (Lint.Json.member "untestable" summary
      = Some (Lint.Json.Int s.Lint.Report.untestable))
  | None -> Alcotest.fail "summary missing"

(* --- name index --------------------------------------------------------------- *)

let test_find_by_name () =
  let c = Helpers.toy_circuit () in
  Array.iter
    (fun (nd : Netlist.Node.node) ->
      Alcotest.(check int) nd.Netlist.Node.name nd.Netlist.Node.id
        (Netlist.Node.find_by_name c nd.Netlist.Node.name))
    c.Netlist.Node.nodes;
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Netlist.Node.find_by_name c "nonexistent");
       false
     with Not_found -> true)

(* --- Theorem 1 ---------------------------------------------------------------- *)

(* Retiming preserves single-stuck-at testability (the paper's Theorem 1),
   so the lint-proved-untestable invariant metric — counted over gate/PI
   fault sites, which retiming preserves verbatim — must agree on every
   original/retimed benchmark pair, and none may have error diagnostics. *)
let test_theorem1_invariant () =
  List.iter
    (fun (fsm, alg, script) ->
      let p = Core.Flow.pair fsm alg script in
      let so = Lint.Report.lint_netlist p.Core.Flow.original in
      let sr = Lint.Report.lint_netlist p.Core.Flow.retimed in
      Alcotest.(check bool)
        (p.Core.Flow.name ^ " original clean")
        false
        (Lint.Diag.has_errors so.Lint.Report.diags);
      Alcotest.(check bool)
        (p.Core.Flow.name ^ " retimed clean")
        false
        (Lint.Diag.has_errors sr.Lint.Report.diags);
      Alcotest.(check int)
        (p.Core.Flow.name ^ " invariant untestable count")
        so.Lint.Report.invariant_untestable sr.Lint.Report.invariant_untestable)
    [
      ("dk16", Synth.Assign.Input_dominant, Synth.Flow.Delay);
      ("pma", Synth.Assign.Output_dominant, Synth.Flow.Delay);
      ("s510", Synth.Assign.Combined, Synth.Flow.Delay);
      ("s820", Synth.Assign.Combined, Synth.Flow.Rugged);
      ("s832", Synth.Assign.Output_dominant, Synth.Flow.Rugged);
      ("scf", Synth.Assign.Input_dominant, Synth.Flow.Delay);
    ]

(* A crafted "pair" exercising the invariant metric where it is nonzero:
   the same gates and PIs built in two different creation orders (so every
   node id differs, as it does after retiming) must produce the same
   count — the metric depends only on the preserved gate/PI sites. *)
let test_invariant_nonzero_under_retiming () =
  let build order_flipped =
    let b = Netlist.Build.create () in
    let x, q =
      if order_flipped then
        let q = Netlist.Build.add_dff b "q" in
        (Netlist.Build.add_pi b "x", q)
      else
        let x = Netlist.Build.add_pi b "x" in
        (x, Netlist.Build.add_dff b "q")
    in
    let one = Netlist.Build.add_const b "one" true in
    let g1 = Netlist.Build.add_gate b Netlist.Node.Or "g1" [| x; one |] in
    let g2 = Netlist.Build.add_gate b Netlist.Node.And "g2" [| g1; q |] in
    Netlist.Build.connect_dff b q x;
    Netlist.Build.add_po b "z" g2;
    Netlist.Build.finalize b
  in
  let so = Lint.Report.lint_netlist (build false) in
  let sr = Lint.Report.lint_netlist (build true) in
  Alcotest.(check bool) "nonzero" true (so.Lint.Report.invariant_untestable > 0);
  Alcotest.(check int) "id-independent" so.Lint.Report.invariant_untestable
    sr.Lint.Report.invariant_untestable

(* --- ATPG guidance ------------------------------------------------------------ *)

(* The SCOAP guide is behind an option: omitted, engines must behave
   exactly as before; supplied, the engine still produces a validated
   result (every test is checked by fault simulation, so coverage is
   trustworthy either way). *)
let test_guided_atpg () =
  let r = Helpers.synthesize_small () in
  let c = r.Synth.Flow.circuit in
  let guide = Lint.Scoap.controllability (Lint.Scoap.compute c) in
  let plain = Atpg.Hitec.generate ~seed:3 c in
  let guided = Atpg.Hitec.generate ~seed:3 ~guide c in
  Alcotest.(check int) "same fault universe"
    (Array.length plain.Atpg.Types.faults)
    (Array.length guided.Atpg.Types.faults);
  Alcotest.(check bool) "guided coverage sane" true
    (guided.Atpg.Types.fault_coverage >= 50.0)

let suite =
  [
    Alcotest.test_case "NET001 combinational cycle" `Quick test_cycle_rule;
    Alcotest.test_case "NET002 structure + duplicate PO" `Quick
      test_structure_rule;
    Alcotest.test_case "check: DFF bad fanin reported once" `Quick
      test_check_dff_single_report;
    Alcotest.test_case "NET003 dead gate" `Quick test_dead_rule;
    Alcotest.test_case "NET005/NET006 constants + untestable" `Quick
      test_constant_and_untestable_rules;
    Alcotest.test_case "clean circuit stays clean" `Quick test_clean_circuit;
    Alcotest.test_case "SCOAP sanity" `Quick test_scoap_sanity;
    Alcotest.test_case "FFR partition" `Quick test_ffr_partition;
    Alcotest.test_case "NET008 sequential redundancy" `Quick
      test_seq_redundant_rule;
    Alcotest.test_case "FSM001 unreachable" `Quick test_fsm_unreachable;
    Alcotest.test_case "FSM002 dead state" `Quick test_fsm_dead_state;
    Alcotest.test_case "FSM003 nondeterminism" `Quick test_fsm_nondet;
    Alcotest.test_case "FSM004 incomplete" `Quick test_fsm_incomplete;
    Alcotest.test_case "benchmark FSMs have no errors" `Quick
      test_fsm_benchmarks_deterministic;
    Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "diagnostic JSON round-trip" `Quick test_diag_roundtrip;
    Alcotest.test_case "report JSON round-trip" `Quick test_report_json;
    Alcotest.test_case "find_by_name index" `Quick test_find_by_name;
    Alcotest.test_case "invariant metric id-independent" `Quick
      test_invariant_nonzero_under_retiming;
    Alcotest.test_case "Theorem 1: invariant untestable count" `Slow
      test_theorem1_invariant;
    Alcotest.test_case "SCOAP-guided ATPG" `Slow test_guided_atpg;
  ]
