(* The serve subsystem: protocol codec totality, the bounded admission
   queue, coalescing groups, verb planning, and an end-to-end daemon on
   a Unix socket including the deterministic depth-1 overload path. *)

module P = Serve.Protocol
module J = Obs.Json

(* ------------------------------------------------------------- fixtures *)

(* dune runtest runs in _build/default/test; dune exec from the root *)
let s27_path =
  if Sys.file_exists "../examples/s27.blif" then "../examples/s27.blif"
  else "examples/s27.blif"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let s27_blif () = read_file s27_path

let s27 () = Netlist.Blif.parse_string (s27_blif ())

(* Run [f] against a fresh temporary store directory with the memory
   cache emptied, so cache-outcome assertions (miss then hit) cannot be
   perturbed by the ambient SATPG_STORE or by earlier tests. *)
let with_store f =
  let dir = Filename.temp_file "satpg-serve-test-store" "" in
  Sys.remove dir;
  let saved = Sys.getenv_opt Store.Disk.env_var in
  Unix.putenv Store.Disk.env_var dir;
  Core.Cache.reset_memory ();
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv Store.Disk.env_var
        (match saved with Some v -> v | None -> "");
      Core.Cache.reset_memory ();
      rm_rf dir)
    (fun () -> f ())

(* A chain of [cones] copies of OR(acc, AND(a, NOT a)): every AND output
   is constant 0, so its stuck-at-0 fault is undetectable.  The fault
   simulator's early exit fires only when every fault of a word batch is
   detected, and the undetectable faults are spread across all batches —
   so an fsim request over this circuit deterministically simulates its
   full vector budget.  That is the test jam: a request whose duration is
   set by [vectors], not by races against fault dropping. *)
let jam_blif cones =
  let b = Buffer.create 4096 in
  Buffer.add_string b ".model jam\n.inputs a b\n.outputs z\n";
  for i = 0 to cones - 1 do
    Buffer.add_string b (Printf.sprintf ".names a na%d\n0 1\n" i);
    Buffer.add_string b (Printf.sprintf ".names a na%d c%d\n11 1\n" i i);
    let prev = if i = 0 then "b" else Printf.sprintf "o%d" (i - 1) in
    Buffer.add_string b
      (Printf.sprintf ".names %s c%d o%d\n1- 1\n-1 1\n" prev i i)
  done;
  Buffer.add_string b (Printf.sprintf ".names o%d z\n1 1\n.end\n" (cones - 1));
  Buffer.contents b

(* ------------------------------------------------------------ the codec *)

let decode_err line =
  match P.decode_request line with
  | Error e -> P.error_code_name e.P.code
  | Ok _ -> "ok"

let test_decode_errors () =
  Alcotest.(check string) "empty line" "empty" (decode_err "");
  Alcotest.(check string) "blank line" "empty" (decode_err " \t\r");
  Alcotest.(check string) "garbage" "parse_error" (decode_err "not json {");
  Alcotest.(check string) "array" "bad_request" (decode_err "[1,2]");
  Alcotest.(check string) "no verb" "bad_request" (decode_err "{}");
  Alcotest.(check string) "unknown verb" "bad_request"
    (decode_err {|{"verb":"frobnicate"}|});
  Alcotest.(check string) "unknown field" "bad_request"
    (decode_err {|{"verb":"stats","surprise":1}|});
  Alcotest.(check string) "bad id type" "bad_request"
    (decode_err {|{"verb":"stats","id":[1]}|});
  Alcotest.(check string) "two sources" "bad_request"
    (decode_err {|{"verb":"atpg","circuit":{"blif":"x","hash":"y"}}|});
  Alcotest.(check string) "no source" "bad_request"
    (decode_err {|{"verb":"atpg","circuit":{}}|});
  Alcotest.(check string) "unknown circuit field" "bad_request"
    (decode_err {|{"verb":"atpg","circuit":{"blif":"x","extra":1}}|});
  Alcotest.(check string) "config not an object" "bad_request"
    (decode_err {|{"verb":"atpg","config":7}|});
  Alcotest.(check string) "oversized" "oversized"
    (decode_err (String.make (P.max_line_bytes + 1) 'a'))

let test_decode_ok () =
  (match P.decode_request {|{"id":7,"verb":"atpg","circuit":{"bench":"dk16"}}|} with
   | Ok r ->
     Alcotest.(check (option string)) "integer id accepted" (Some "7") r.P.id;
     (match r.P.source with
      | Some (P.Bench b) ->
        Alcotest.(check string) "fsm" "dk16" b.fsm;
        Alcotest.(check string) "algorithm default" "ji" b.algorithm;
        Alcotest.(check string) "script default" "sr" b.script;
        Alcotest.(check bool) "retimed default" false b.retimed
      | _ -> Alcotest.fail "expected a bench source")
   | Error e -> Alcotest.fail e.P.message);
  match P.decode_request {|{"verb":"stats"}|} with
  | Ok r ->
    Alcotest.(check (option string)) "no id" None r.P.id;
    Alcotest.(check bool) "no source" true (r.P.source = None)
  | Error e -> Alcotest.fail e.P.message

let test_response_roundtrip () =
  let line =
    P.encode_response ~id:(Some "x") [ ("n", J.Int 3); ("s", J.String "v") ]
  in
  let j = J.parse line in
  Alcotest.(check bool) "ok true" true (J.member "ok" j = Some (J.Bool true));
  Alcotest.(check bool) "id kept" true
    (J.member "id" j = Some (J.String "x"));
  Alcotest.(check bool) "field kept" true (J.member "n" j = Some (J.Int 3));
  let e = J.parse (P.encode_error ~id:None (P.error P.Overloaded "full")) in
  Alcotest.(check bool) "ok false" true
    (J.member "ok" e = Some (J.Bool false));
  Alcotest.(check bool) "code" true
    (Option.bind (J.member "error" e) (J.member "code")
    = Some (J.String "overloaded"))

(* decode never raises, whatever bytes arrive *)
let test_decode_total =
  QCheck.Test.make ~count:2000 ~name:"decode_request is total on random bytes"
    QCheck.(string_gen Gen.char)
    (fun s ->
      (match P.decode_request s with Ok _ | Error _ -> true)
      && (match P.decode_request ("{" ^ s) with Ok _ | Error _ -> true))

(* -------------------------------------------------------- bounded queue *)

let test_bqueue_bounds () =
  Alcotest.check_raises "depth must be positive"
    (Invalid_argument "Bqueue.create: depth must be >= 1, got 0") (fun () ->
      ignore (Exec.Bqueue.create ~depth:0));
  let q = Exec.Bqueue.create ~depth:2 in
  Alcotest.(check int) "depth" 2 (Exec.Bqueue.depth q);
  Alcotest.(check bool) "push 1" true (Exec.Bqueue.try_push q 1 = `Ok);
  Alcotest.(check bool) "push 2" true (Exec.Bqueue.try_push q 2 = `Ok);
  Alcotest.(check bool) "push 3 overflows" true
    (Exec.Bqueue.try_push q 3 = `Full);
  Alcotest.(check int) "length" 2 (Exec.Bqueue.length q);
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Exec.Bqueue.try_pop q);
  Alcotest.(check bool) "slot freed" true (Exec.Bqueue.try_push q 3 = `Ok);
  Exec.Bqueue.close q;
  Alcotest.(check bool) "closed flag" true (Exec.Bqueue.closed q);
  Alcotest.(check bool) "push after close" true
    (Exec.Bqueue.try_push q 4 = `Closed);
  Alcotest.(check (option int)) "drains after close" (Some 2)
    (Exec.Bqueue.pop q);
  Alcotest.(check (option int)) "drains after close 2" (Some 3)
    (Exec.Bqueue.pop q);
  Alcotest.(check (option int)) "then none" None (Exec.Bqueue.pop q);
  Exec.Bqueue.close q (* idempotent *)

(* ----------------------------------------------------------- coalescing *)

let test_coalesce_groups () =
  let items =
    [ ("a", 1); ("b", 2); ("a", 3); (":", 4); ("b", 5); ("a", 6) ]
  in
  let key (k, _) = if k = ":" then None else Some k in
  let groups = Serve.Coalesce.group_by key items in
  Alcotest.(check int) "group count" 3 (List.length groups);
  (match groups with
   | [ ga; gb; gn ] ->
     Alcotest.(check (option string)) "first-arrival order" (Some "a")
       ga.Serve.Coalesce.key;
     Alcotest.(check (list int)) "members in arrival order" [ 1; 3; 6 ]
       (List.map snd ga.Serve.Coalesce.items);
     Alcotest.(check (list int)) "b members" [ 2; 5 ]
       (List.map snd gb.Serve.Coalesce.items);
     Alcotest.(check (option string)) "unkeyed is a singleton" None
       gn.Serve.Coalesce.key;
     Alcotest.(check (list int)) "singleton member" [ 4 ]
       (List.map snd gn.Serve.Coalesce.items)
   | _ -> Alcotest.fail "unexpected grouping");
  Alcotest.(check int) "saved = duplicates removed" 3
    (Serve.Coalesce.saved groups);
  Alcotest.(check int) "no items, no groups" 0
    (List.length (Serve.Coalesce.group_by key []))

(* ------------------------------------------------------------- dispatch *)

let request line =
  match P.decode_request line with
  | Ok r -> r
  | Error e -> Alcotest.failf "fixture request rejected: %s" e.P.message

let atpg_s27_line ?id () =
  let id_field =
    match id with None -> [] | Some i -> [ ("id", J.String i) ]
  in
  J.to_string
    (J.Obj
       (id_field
       @ [
           ("verb", J.String "atpg");
           ("circuit", J.Obj [ ("blif", J.String (s27_blif ())) ]);
         ]))

let test_plan_keys_and_run () =
  with_store (fun () ->
      let plan line =
        match Serve.Dispatch.plan (request line) with
        | Ok p -> p
        | Error e -> Alcotest.failf "plan failed: %s" e.P.message
      in
      let p1 = plan (atpg_s27_line ()) in
      let p2 = plan (atpg_s27_line ()) in
      Alcotest.(check bool) "identical requests share the coalescing key" true
        (p1.Serve.Dispatch.key = p2.Serve.Dispatch.key
        && p1.Serve.Dispatch.key <> None);
      match p1.Serve.Dispatch.run () with
      | Error e -> Alcotest.failf "run failed: %s" e.P.message
      | Ok fields ->
        let j = J.Obj fields in
        Alcotest.(check bool) "has a manifest id" true
          (match J.member "manifest" j with
           | Some (J.String m) -> String.length m > 0
           | _ -> false);
        Alcotest.(check bool) "first run is a miss" true
          (J.member "cache" j = Some (J.String "miss"));
        (* the result went through Core.Cache, so a rerun is a hit *)
        (match p2.Serve.Dispatch.run () with
         | Ok fields2 ->
           Alcotest.(check bool) "second run is a hit" true
             (J.member "cache" (J.Obj fields2) = Some (J.String "hit"));
           Alcotest.(check bool) "manifest ids agree" true
             (J.member "manifest" (J.Obj fields2) = J.member "manifest" j)
         | Error e -> Alcotest.failf "rerun failed: %s" e.P.message))

let test_plan_hash_reference () =
  let c = s27 () in
  let hash = Serve.Circuits.register ~name:"s27" c in
  let line =
    J.to_string
      (J.Obj
         [
           ("verb", J.String "lint");
           ("circuit", J.Obj [ ("hash", J.String hash) ]);
         ])
  in
  (match Serve.Dispatch.plan (request line) with
   | Ok p ->
     (match p.Serve.Dispatch.run () with
      | Ok fields ->
        Alcotest.(check bool) "hash reference resolves" true
          (J.member "circuit_hash" (J.Obj fields) = Some (J.String hash))
      | Error e -> Alcotest.failf "lint run failed: %s" e.P.message)
   | Error e -> Alcotest.failf "lint plan failed: %s" e.P.message);
  let missing =
    J.to_string
      (J.Obj
         [
           ("verb", J.String "lint");
           ("circuit", J.Obj [ ("hash", J.String "feedfacefeedface") ]);
         ])
  in
  match Serve.Dispatch.plan (request missing) with
  | Error e ->
    Alcotest.(check string) "unknown hash is not_found" "not_found"
      (P.error_code_name e.P.code)
  | Ok _ -> Alcotest.fail "unknown hash must not plan"

let test_plan_validation () =
  let expect_bad line =
    match Serve.Dispatch.plan (request line) with
    | Error e -> P.error_code_name e.P.code
    | Ok _ -> "ok"
  in
  Alcotest.(check string) "unknown config field" "bad_request"
    (expect_bad
       {|{"verb":"atpg","circuit":{"bench":"dk16"},"config":{"frob":1}}|});
  Alcotest.(check string) "bad engine" "bad_request"
    (expect_bad
       {|{"verb":"atpg","circuit":{"bench":"dk16"},"config":{"engine":"x"}}|});
  Alcotest.(check string) "bad budget" "bad_request"
    (expect_bad
       {|{"verb":"atpg","circuit":{"bench":"dk16"},"config":{"budget":-1}}|});
  Alcotest.(check string) "tables rejects a circuit" "bad_request"
    (expect_bad {|{"verb":"tables","circuit":{"bench":"dk16"}}|});
  Alcotest.(check string) "atpg needs a circuit" "bad_request"
    (expect_bad {|{"verb":"atpg"}|});
  Alcotest.(check string) "bad blif is rejected at plan time" "bad_request"
    (expect_bad {|{"verb":"atpg","circuit":{"blif":".model x\nnope\n"}}|})

let test_stats_fields () =
  let j = J.Obj (Serve.Dispatch.stats_fields ()) in
  Alcotest.(check bool) "has serve counters" true
    (match J.member "serve" j with Some (J.Obj _) -> true | _ -> false);
  Alcotest.(check bool) "has cache counters" true
    (match J.member "cache" j with Some (J.Obj _) -> true | _ -> false);
  Alcotest.(check bool) "reports pool width" true
    (match J.member "jobs" j with Some (J.Int n) -> n >= 1 | _ -> false)

(* -------------------------------------------------------- s27 ingestion *)

let test_s27_ingest () =
  let c = s27 () in
  Alcotest.(check int) "PIs" 4 (Netlist.Node.num_pis c);
  Alcotest.(check int) "POs" 1 (Netlist.Node.num_pos c);
  Alcotest.(check int) "DFFs" 3 (Netlist.Node.num_dffs c);
  (* the exact structural codec used for hash-keyed persistence must
     reproduce the circuit hash-for-hash *)
  let hash = Netlist.Structhash.circuit c in
  (match Store.Codec.circuit_of_json (Store.Codec.circuit_to_json c) with
   | Some c' ->
     Alcotest.(check string) "codec round-trip keeps the hash" hash
       (Netlist.Structhash.circuit c')
   | None -> Alcotest.fail "circuit codec round-trip failed");
  let faults = Fsim.Collapse.list c in
  Alcotest.(check bool) "collapsed fault list is non-trivial" true
    (Array.length faults > 10);
  let rng = Random.State.make [| 27; 89 |] in
  let vectors =
    Sim.Vectors.random_sequence rng ~width:(Netlist.Node.num_pis c)
      ~length:256
  in
  let r = Fsim.Engine.simulate c faults vectors in
  let detected =
    Array.fold_left (fun a d -> if d then a + 1 else a) 0 r.Fsim.Engine.detected
  in
  Alcotest.(check bool) "random vectors detect most s27 faults" true
    (Fsim.Engine.coverage ~detected ~total:(Array.length faults) > 50.0)

(* ---------------------------------------------------------- live server *)

let temp_sock () =
  let f = Filename.temp_file "satpg-serve-test" ".sock" in
  Sys.remove f;
  f

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send (_, oc) line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let recv (ic, _) = J.parse (input_line ic)

let rpc conn line =
  send conn line;
  recv conn

let close_conn (ic, _) = close_in_noerr ic

let ok j = J.member "ok" j = Some (J.Bool true)

let str name j = Option.bind (J.member name j) J.to_string_opt

let err_code j =
  Option.bind
    (Option.bind (J.member "error" j) (J.member "code"))
    J.to_string_opt

let has_sub body sub =
  let n = String.length body and m = String.length sub in
  let rec go i = i + m <= n && (String.sub body i m = sub || go (i + 1)) in
  go 0

let with_server ?(queue_depth = 64) ?(batch_max = 32) f =
  let path = temp_sock () in
  let t =
    Serve.Server.start
      { Serve.Server.port = None; unix_path = Some path; queue_depth; batch_max }
  in
  Fun.protect
    ~finally:(fun () ->
      (* stop and wait are idempotent, so tests that already shut the
         server down cleanly are not disturbed *)
      Serve.Server.stop t;
      Serve.Server.wait t;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path t)

let test_server_end_to_end () =
  with_store (fun () ->
      with_server (fun path _t ->
          let conn = connect path in
          (* structured errors, connection stays usable afterwards *)
          Alcotest.(check (option string)) "malformed line answered"
            (Some "parse_error")
            (err_code (rpc conn "{{{"));
          Alcotest.(check (option string)) "unknown verb answered"
            (Some "bad_request")
            (err_code (rpc conn {|{"verb":"nope"}|}));
          (* stats bypasses the queue *)
          let st = rpc conn {|{"id":"s","verb":"stats"}|} in
          Alcotest.(check bool) "stats ok" true (ok st);
          Alcotest.(check (option string)) "stats echoes the id" (Some "s")
            (str "id" st);
          (* compute: miss then hit, one manifest *)
          let r1 = rpc conn (atpg_s27_line ()) in
          Alcotest.(check bool) "atpg ok" true (ok r1);
          Alcotest.(check (option string)) "first is a miss" (Some "miss")
            (str "cache" r1);
          let r2 = rpc conn (atpg_s27_line ()) in
          Alcotest.(check (option string)) "repeat is a hit" (Some "hit")
            (str "cache" r2);
          Alcotest.(check bool) "manifests agree" true
            (str "manifest" r1 = str "manifest" r2
            && str "manifest" r1 <> None);
          (* HTTP endpoints on fresh connections *)
          let http = connect path in
          send http "GET /healthz HTTP/1.1\r";
          send http "\r";
          let first = input_line (fst http) in
          Alcotest.(check bool) "healthz 200" true
            (String.length first >= 12 && String.sub first 9 3 = "200");
          close_conn http;
          let http = connect path in
          send http "GET /metrics HTTP/1.1\r";
          send http "\r";
          let body = In_channel.input_all (fst http) in
          Alcotest.(check bool) "metrics render prometheus text" true
            (has_sub body "# TYPE satpg_"
            && has_sub body "satpg_serve_requests_total");
          close_conn http;
          close_conn conn))

let test_server_shutdown_verb () =
  with_server (fun path t ->
      let conn = connect path in
      let r = rpc conn {|{"id":"bye","verb":"shutdown"}|} in
      Alcotest.(check bool) "shutdown acknowledged" true (ok r);
      (* the whole server must join without further prompting *)
      Serve.Server.wait t;
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path);
      close_conn conn)

(* Deterministic overload: one slow fsim occupies the dispatcher, the
   next request fills the depth-1 queue, and the one after that must be
   rejected with a structured overloaded error.  No timing windows: the
   stats poll proves the jam is being executed (in_flight >= 1) before A
   and B are pushed in order on one connection. *)
let test_overload_depth1 () =
  with_store (fun () ->
      with_server ~queue_depth:1 ~batch_max:1 (fun path _t ->
          let conn = connect path in
          let jam =
            J.to_string
              (J.Obj
                 [
                   ("id", J.String "jam");
                   ("verb", J.String "fsim");
                   ("circuit", J.Obj [ ("blif", J.String (jam_blif 60)) ]);
                   ( "config",
                     J.Obj [ ("vectors", J.Int 150_000); ("seed", J.Int 9) ] );
                 ])
          in
          send conn jam;
          (* wait until the dispatcher is provably inside the jam batch;
             stats answers from the I/O domain even while the dispatcher
             domain is compute-bound (the starvation regression) *)
          let deadline = Unix.gettimeofday () +. 30.0 in
          let rec wait_busy () =
            let st = rpc conn {|{"verb":"stats"}|} in
            match J.member "in_flight" st with
            | Some (J.Int n) when n >= 1 -> true
            | _ ->
              if Unix.gettimeofday () > deadline then false
              else begin
                Unix.sleepf 0.01;
                wait_busy ()
              end
          in
          Alcotest.(check bool) "dispatcher picked up the jam" true
            (wait_busy ());
          send conn (atpg_s27_line ~id:"A" ());
          (* A now occupies the whole depth-1 queue; B must bounce *)
          send conn (atpg_s27_line ~id:"B" ());
          let b_reply = recv conn in
          Alcotest.(check (option string)) "B rejected immediately" (Some "B")
            (str "id" b_reply);
          Alcotest.(check (option string))
            "with a structured overloaded error" (Some "overloaded")
            (err_code b_reply);
          (* the jam and the admitted request still complete, in order *)
          let jam_reply = recv conn in
          Alcotest.(check (option string)) "jam finishes" (Some "jam")
            (str "id" jam_reply);
          Alcotest.(check bool) "jam ok" true (ok jam_reply);
          let a_reply = recv conn in
          Alcotest.(check (option string)) "admitted request answered"
            (Some "A") (str "id" a_reply);
          Alcotest.(check bool) "admitted request ok" true (ok a_reply);
          close_conn conn))

let suite =
  [
    Alcotest.test_case "decode errors" `Quick test_decode_errors;
    Alcotest.test_case "decode ok" `Quick test_decode_ok;
    Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
    QCheck_alcotest.to_alcotest test_decode_total;
    Alcotest.test_case "bounded queue" `Quick test_bqueue_bounds;
    Alcotest.test_case "coalesce groups" `Quick test_coalesce_groups;
    Alcotest.test_case "plan keys and run" `Quick test_plan_keys_and_run;
    Alcotest.test_case "hash reference" `Quick test_plan_hash_reference;
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "stats fields" `Quick test_stats_fields;
    Alcotest.test_case "s27 ingest" `Quick test_s27_ingest;
    Alcotest.test_case "server end to end" `Quick test_server_end_to_end;
    Alcotest.test_case "shutdown verb" `Quick test_server_shutdown_verb;
    Alcotest.test_case "overload depth-1" `Quick test_overload_depth1;
  ]
