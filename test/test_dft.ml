(* Scan insertion and BLIF interchange. *)

let test_scan_functional_mode () =
  (* with scan_enable = 0 the scanned circuit behaves exactly like the
     original *)
  let r = Helpers.synthesize_small ~seed:71 ~states:7 () in
  let c = r.Synth.Flow.circuit in
  let chain = Dft.Scan.insert c in
  let sc = chain.Dft.Scan.circuit in
  Alcotest.(check int) "dffs preserved" (Netlist.Node.num_dffs c)
    (Netlist.Node.num_dffs sc);
  let rng = Random.State.make [| 3 |] in
  let s1 = Sim.Scalar.create c and s2 = Sim.Scalar.create sc in
  Sim.Scalar.reset s1;
  Sim.Scalar.reset s2;
  for _ = 1 to 120 do
    let v = Sim.Vectors.random_vector rng (Netlist.Node.num_pis c) in
    let o1 = Sim.Scalar.step s1 (Sim.Vectors.to_v3 v) in
    let o2 =
      Sim.Scalar.step s2 (Sim.Vectors.to_v3 (Dft.Scan.functional_vector chain v))
    in
    (* scanned circuit has one extra PO (scan_out) at the end *)
    Array.iteri
      (fun k v1 -> Alcotest.check Helpers.v3 "functional PO" v1 o2.(k))
      o1
  done

let test_scan_load_state () =
  let r = Helpers.synthesize_small ~seed:72 ~states:7 () in
  let c = r.Synth.Flow.circuit in
  let chain = Dft.Scan.insert c in
  let sc = chain.Dft.Scan.circuit in
  let sim = Sim.Scalar.create sc in
  (* shift in an arbitrary state pattern and check the DFFs *)
  let target = 0b101 land ((1 lsl chain.Dft.Scan.length) - 1) in
  (* target as a state code over scanned positions *)
  let bits = Array.make (Netlist.Node.num_dffs sc) false in
  Array.iteri
    (fun k pos -> bits.(pos) <- (target lsr k) land 1 = 1)
    chain.Dft.Scan.scanned;
  let code = Sim.Statekey.of_bools bits in
  Sim.Scalar.reset sim;
  List.iter
    (fun v -> ignore (Sim.Scalar.step sim (Sim.Vectors.to_v3 v)))
    (Dft.Scan.load_sequence chain code);
  let state = Sim.Scalar.get_state sim in
  Array.iteri
    (fun k pos ->
      Alcotest.check Helpers.v3
        (Printf.sprintf "chain elt %d" k)
        (Sim.Value3.of_bool (Sim.Statekey.bit code pos))
        state.(pos))
    chain.Dft.Scan.scanned

let test_scan_restores_coverage () =
  (* the punchline: a retimed (sparsely encoded) circuit regains coverage
     once scanned, because states no longer need sequential justification *)
  let r = Helpers.synthesize_small ~seed:73 ~states:8 () in
  let c = r.Synth.Flow.circuit in
  let re, _, _ = Retime.Apply.retime_aggressive ~period_slack:0.2 c in
  let chain = Dft.Scan.insert re in
  let cfg =
    {
      Atpg.Types.default_config with
      Atpg.Types.backtrack_limit = 150;
      work_limit = 250_000;
      total_work_limit = 40_000_000;
    }
  in
  let before = Atpg.Run.generate ~config:cfg ~random_sequences_count:1 re in
  let after =
    Atpg.Run.generate ~config:cfg ~random_sequences_count:1
      chain.Dft.Scan.circuit
  in
  Alcotest.(check bool)
    (Printf.sprintf "scan FC %.1f >= unscanned FC %.1f - 2"
       after.Atpg.Types.fault_coverage before.Atpg.Types.fault_coverage)
    true
    (after.Atpg.Types.fault_coverage
     >= before.Atpg.Types.fault_coverage -. 2.0)

let test_scan_mode_atpg_beats_sequential () =
  (* on a retimed (sparse) circuit, scan-mode ATPG must reach at least the
     sequential engine's coverage *)
  let r = Helpers.synthesize_small ~seed:77 ~states:8 () in
  let re, _, _ = Retime.Apply.retime_aggressive ~period_slack:0.2 r.Synth.Flow.circuit in
  let cfg =
    {
      Atpg.Types.default_config with
      Atpg.Types.backtrack_limit = 150;
      work_limit = 250_000;
      total_work_limit = 30_000_000;
    }
  in
  let seq = Atpg.Run.generate ~config:cfg re in
  let chain = Dft.Scan.insert re in
  let scan = Dft.Scan_atpg.generate ~config:cfg chain in
  Alcotest.(check bool)
    (Printf.sprintf "scan FC %.1f >= seq FC %.1f - 1"
       scan.Atpg.Types.fault_coverage seq.Atpg.Types.fault_coverage)
    true
    (scan.Atpg.Types.fault_coverage >= seq.Atpg.Types.fault_coverage -. 1.0);
  (* scan-mode tests are real: re-validate them against the scanned netlist *)
  let detected = Array.make (Array.length scan.Atpg.Types.faults) false in
  List.iter
    (fun s ->
      let run =
        Fsim.Engine.simulate ~skip:detected chain.Dft.Scan.circuit
          scan.Atpg.Types.faults s
      in
      Array.iteri (fun i d -> if d then detected.(i) <- true)
        run.Fsim.Engine.detected)
    scan.Atpg.Types.test_sets;
  Array.iteri
    (fun i st ->
      if st = Fsim.Fault.Detected then
        Alcotest.(check bool) "scan test validated" true detected.(i))
    scan.Atpg.Types.status

let test_partial_scan_selection () =
  let r = Helpers.synthesize_small ~seed:74 ~states:8 () in
  let c = r.Synth.Flow.circuit in
  let selected = Dft.Scan.select_cycle_breaking c in
  Alcotest.(check bool) "selects at least one DFF" true
    (Array.length selected >= 1);
  Alcotest.(check bool) "selects at most all DFFs" true
    (Array.length selected <= Netlist.Node.num_dffs c);
  (* inserting a partial chain over the selection must stay functional *)
  let chain = Dft.Scan.insert ~positions:selected c in
  Netlist.Check.assert_ok chain.Dft.Scan.circuit

let test_blif_roundtrip () =
  let r = Helpers.synthesize_small ~seed:75 ~states:6 () in
  let c = r.Synth.Flow.circuit in
  let text = Netlist.Blif.to_string c in
  let c2 = Netlist.Blif.parse_string text in
  Alcotest.(check int) "pis" (Netlist.Node.num_pis c) (Netlist.Node.num_pis c2);
  Alcotest.(check int) "pos" (Netlist.Node.num_pos c) (Netlist.Node.num_pos c2);
  Alcotest.(check int) "dffs" (Netlist.Node.num_dffs c)
    (Netlist.Node.num_dffs c2);
  (* behavioural equality from power-up *)
  let rng = Random.State.make [| 6 |] in
  let s1 = Sim.Scalar.create c and s2 = Sim.Scalar.create c2 in
  Sim.Scalar.reset s1;
  Sim.Scalar.reset s2;
  for _ = 1 to 150 do
    let v = Sim.Vectors.to_v3 (Sim.Vectors.random_vector rng (Netlist.Node.num_pis c)) in
    Alcotest.(check bool) "same outputs" true
      (Sim.Scalar.step s1 v = Sim.Scalar.step s2 v)
  done

let test_blif_toy_format () =
  let c = Helpers.toy_circuit () in
  let text = Netlist.Blif.to_string c in
  Alcotest.(check bool) "has model" true
    (String.length text > 0 && String.sub text 0 6 = ".model");
  let contains needle =
    let ln = String.length needle and lt = String.length text in
    let rec loop i =
      if i + ln > lt then false
      else if String.sub text i ln = needle then true
      else loop (i + 1)
    in
    loop 0
  in
  Alcotest.(check bool) ".latch present" true (contains ".latch");
  Alcotest.(check bool) ".names present" true (contains ".names");
  Alcotest.(check bool) "ends with .end" true (contains ".end")

let test_blif_parse_handwritten () =
  let text =
    ".model tiny\n.inputs a b\n.outputs z\n.latch nq q 3 clk 0\n"
    ^ ".names a q nq\n11 1\n.names q b z\n1- 1\n-1 1\n.end\n"
  in
  let c = Netlist.Blif.parse_string text in
  Alcotest.(check int) "1 dff" 1 (Netlist.Node.num_dffs c);
  let sim = Sim.Scalar.create c in
  Sim.Scalar.reset sim;
  (* q=0: z = q OR b *)
  let out = Sim.Scalar.step sim (Sim.Vectors.to_v3 [| true; true |]) in
  Alcotest.check Helpers.v3 "z=1 (b)" Sim.Value3.One out.(0);
  (* q now 1 (a=1 & q=0 -> nq=0? No: nq = a AND q = 0) *)
  let out = Sim.Scalar.step sim (Sim.Vectors.to_v3 [| true; false |]) in
  Alcotest.check Helpers.v3 "z=0" Sim.Value3.Zero out.(0)

let test_verilog_writer () =
  let c = Helpers.toy_circuit () in
  let text = Netlist.Verilog.to_string ~module_name:"toy" c in
  let contains needle =
    let ln = String.length needle and lt = String.length text in
    let rec loop i =
      if i + ln > lt then false
      else if String.sub text i ln = needle then true
      else loop (i + 1)
    in
    loop 0
  in
  Alcotest.(check bool) "module header" true (contains "module toy(clk");
  Alcotest.(check bool) "dff register" true (contains "reg q0 = 1'b0;");
  Alcotest.(check bool) "clocked block" true (contains "always @(posedge clk)");
  Alcotest.(check bool) "xor gate" true (contains "^");
  Alcotest.(check bool) "endmodule" true (contains "endmodule")

let test_verilog_unique_wires () =
  (* every synthesized circuit must emit without duplicate identifiers *)
  let r = Helpers.synthesize_small ~seed:76 () in
  let text = Netlist.Verilog.to_string r.Synth.Flow.circuit in
  let decls = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         List.iter
           (fun prefix ->
             let lp = String.length prefix in
             if String.length line > lp && String.sub line 0 lp = prefix then
               decls := line :: !decls)
           [ "wire "; "reg "; "input "; "output " ]);
  let unique = List.sort_uniq compare !decls in
  Alcotest.(check int) "no duplicate declarations" (List.length !decls)
    (List.length unique)

let qcheck_blif_roundtrip =
  Helpers.qcheck_case ~count:8 "blif roundtrip preserves behaviour"
    QCheck2.Gen.(int_range 80 95)
    (fun seed ->
      let r = Helpers.synthesize_small ~seed ~states:5 () in
      let c = r.Synth.Flow.circuit in
      let c2 = Netlist.Blif.parse_string (Netlist.Blif.to_string c) in
      let rng = Random.State.make [| seed |] in
      let s1 = Sim.Scalar.create c and s2 = Sim.Scalar.create c2 in
      Sim.Scalar.reset s1;
      Sim.Scalar.reset s2;
      let ok = ref (Netlist.Check.is_well_formed c2) in
      for _ = 1 to 60 do
        let v =
          Sim.Vectors.to_v3
            (Sim.Vectors.random_vector rng (Netlist.Node.num_pis c))
        in
        if Sim.Scalar.step s1 v <> Sim.Scalar.step s2 v then ok := false
      done;
      !ok)

let qcheck_scan_functional =
  Helpers.qcheck_case ~count:6 "scan insertion preserves functional mode"
    QCheck2.Gen.(int_range 100 110)
    (fun seed ->
      let r = Helpers.synthesize_small ~seed ~states:6 () in
      let c = r.Synth.Flow.circuit in
      let chain = Dft.Scan.insert c in
      let rng = Random.State.make [| seed; 2 |] in
      let s1 = Sim.Scalar.create c in
      let s2 = Sim.Scalar.create chain.Dft.Scan.circuit in
      Sim.Scalar.reset s1;
      Sim.Scalar.reset s2;
      let ok = ref true in
      for _ = 1 to 60 do
        let v = Sim.Vectors.random_vector rng (Netlist.Node.num_pis c) in
        let o1 = Sim.Scalar.step s1 (Sim.Vectors.to_v3 v) in
        let o2 =
          Sim.Scalar.step s2
            (Sim.Vectors.to_v3 (Dft.Scan.functional_vector chain v))
        in
        Array.iteri (fun k x -> if o2.(k) <> x then ok := false) o1
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "scan functional mode" `Quick test_scan_functional_mode;
    Alcotest.test_case "scan state loading" `Quick test_scan_load_state;
    Alcotest.test_case "scan restores coverage" `Slow
      test_scan_restores_coverage;
    Alcotest.test_case "partial scan selection" `Quick
      test_partial_scan_selection;
    Alcotest.test_case "scan-mode ATPG beats sequential" `Slow
      test_scan_mode_atpg_beats_sequential;
    Alcotest.test_case "blif roundtrip" `Quick test_blif_roundtrip;
    Alcotest.test_case "blif format fields" `Quick test_blif_toy_format;
    Alcotest.test_case "blif handwritten parse" `Quick
      test_blif_parse_handwritten;
    Alcotest.test_case "verilog writer" `Quick test_verilog_writer;
    Alcotest.test_case "verilog unique declarations" `Quick
      test_verilog_unique_wires;
    qcheck_blif_roundtrip;
    qcheck_scan_functional;
  ]
