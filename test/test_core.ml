(* Experiment layer: pair construction, caching, table plumbing and the
   lightweight shape properties that do not need full ATPG runs. *)

let test_pair_memoized () =
  let a = Core.Flow.pair "dk16" Synth.Assign.Input_dominant Synth.Flow.Delay in
  let b = Core.Flow.pair "dk16" Synth.Assign.Input_dominant Synth.Flow.Delay in
  Alcotest.(check bool) "same physical pair" true (a == b)

let test_pair_properties () =
  let p = Core.Flow.pair "dk16" Synth.Assign.Input_dominant Synth.Flow.Delay in
  Alcotest.(check string) "name" "dk16.ji.sd" p.Core.Flow.name;
  Alcotest.(check bool) "well formed orig" true
    (Netlist.Check.is_well_formed p.Core.Flow.original);
  Alcotest.(check bool) "well formed retimed" true
    (Netlist.Check.is_well_formed p.Core.Flow.retimed);
  Alcotest.(check bool) "retimed has more DFFs" true
    (Netlist.Node.num_dffs p.Core.Flow.retimed
     > Netlist.Node.num_dffs p.Core.Flow.original);
  Alcotest.(check bool) "prefix positive" true (p.Core.Flow.prefix_length >= 1)

let test_table2_selection_complete () =
  Alcotest.(check int) "16 pairs" 16 (List.length Core.Flow.table2_selection);
  (* the paper's 16 circuit names, via the naming convention *)
  let names =
    List.map
      (fun (f, a, s) ->
        Printf.sprintf "%s.%s.%s" f
          (Synth.Assign.algorithm_tag a)
          (Synth.Flow.script_tag s))
      Core.Flow.table2_selection
  in
  List.iter
    (fun (row : Core.Paper.hitec_row) ->
      Alcotest.(check bool)
        (row.Core.Paper.circuit ^ " present")
        true
        (List.mem row.Core.Paper.circuit names))
    Core.Paper.table2

let test_table1_rows () =
  let rows = Core.Tables.T1.compute () in
  Alcotest.(check int) "6 FSMs" 6 (List.length rows);
  List.iter2
    (fun (r : Core.Tables.T1.row) (p : Core.Paper.fsm_row) ->
      Alcotest.(check string) "order" p.Core.Paper.fsm r.Core.Tables.T1.fsm;
      Alcotest.(check int) "states match paper" p.Core.Paper.states
        r.Core.Tables.T1.states)
    rows Core.Paper.table1

let test_table7_rows () =
  let rows = Core.Tables.T7.compute () in
  Alcotest.(check int) "5 versions" 5 (List.length rows);
  (* density decreases monotonically down the table *)
  let rec mono = function
    | (a : Core.Tables.T7.row) :: b :: rest ->
      Alcotest.(check bool)
        (Printf.sprintf "%s denser than %s" a.Core.Tables.T7.circuit
           b.Core.Tables.T7.circuit)
        true
        (a.Core.Tables.T7.density >= b.Core.Tables.T7.density);
      mono (b :: rest)
    | _ -> ()
  in
  mono rows;
  (* DFF counts never decrease *)
  let rec dffs = function
    | (a : Core.Tables.T7.row) :: b :: rest ->
      Alcotest.(check bool) "dff monotone" true
        (b.Core.Tables.T7.dff >= a.Core.Tables.T7.dff);
      dffs (b :: rest)
    | _ -> ()
  in
  dffs rows

let test_table5_invariance () =
  (* just one pair to keep the suite quick; the full table runs in bench *)
  let p = Core.Flow.pair "s832" Synth.Assign.Combined Synth.Flow.Rugged in
  let o = Core.Cache.structural ~name:p.Core.Flow.name p.Core.Flow.original in
  let r = Core.Cache.structural ~name:(p.Core.Flow.name ^ ".re") p.Core.Flow.retimed in
  Alcotest.(check int) "depth invariant" o.Analysis.Structural.seq_depth
    r.Analysis.Structural.seq_depth;
  Alcotest.(check int) "max cycle invariant"
    o.Analysis.Structural.max_cycle_length
    r.Analysis.Structural.max_cycle_length;
  Alcotest.(check bool) "cycles non-decreasing" true
    (r.Analysis.Structural.num_cycles >= o.Analysis.Structural.num_cycles)

let test_density_pair () =
  let p = Core.Flow.pair "pma" Synth.Assign.Output_dominant Synth.Flow.Delay in
  let o = Core.Cache.reach ~name:p.Core.Flow.name p.Core.Flow.original in
  let r = Core.Cache.reach ~name:(p.Core.Flow.name ^ ".re") p.Core.Flow.retimed in
  Alcotest.(check bool) "density drops" true
    (Analysis.Reach.density r < Analysis.Reach.density o);
  (* original circuit's valid states = machine's reachable states *)
  Alcotest.(check int) "orig valid = machine states"
    (List.length
       (Fsm.Machine.reachable_states p.Core.Flow.synth.Synth.Flow.machine))
    o.Analysis.Reach.valid_states

let test_cache_distinct_keys () =
  let p = Core.Flow.pair "dk16" Synth.Assign.Input_dominant Synth.Flow.Delay in
  let a = Core.Cache.reach ~name:p.Core.Flow.name p.Core.Flow.original in
  let b = Core.Cache.reach ~name:(p.Core.Flow.name ^ ".re") p.Core.Flow.retimed in
  Alcotest.(check bool) "different results" true
    (a.Analysis.Reach.total_bits <> b.Analysis.Reach.total_bits)

(* Regression for the name-keyed cache aliasing bug: two structurally
   different circuits submitted under the same display name must get
   distinct results.  Under the old [name]-derived keys the second lookup
   returned the first circuit's cached result. *)
let test_cache_name_aliasing () =
  let three_dff =
    let b = Netlist.Build.create () in
    let a = Netlist.Build.add_pi b "a" in
    let q0 = Netlist.Build.add_dff b "q0" in
    let q1 = Netlist.Build.add_dff b "q1" in
    let q2 = Netlist.Build.add_dff b "q2" in
    let n = Netlist.Build.add_gate b Netlist.Node.And "n" [| a; q2 |] in
    Netlist.Build.connect_dff b q0 n;
    Netlist.Build.connect_dff b q1 q0;
    Netlist.Build.connect_dff b q2 q1;
    Netlist.Build.add_po b "z" q2;
    Netlist.Build.finalize b
  in
  let a = Core.Cache.reach ~name:"alias" (Helpers.toy_circuit ()) in
  let b = Core.Cache.reach ~name:"alias" three_dff in
  Alcotest.(check bool) "same name, different circuits, distinct results"
    true
    (a.Analysis.Reach.total_bits <> b.Analysis.Reach.total_bits)

(* The flip side of content addressing: the same structure under two
   names shares one cache entry. *)
let test_cache_shares_by_content () =
  let a = Core.Cache.reach ~name:"first" (Helpers.toy_circuit ()) in
  let b = Core.Cache.reach ~name:"second" (Helpers.toy_circuit ()) in
  Alcotest.(check bool) "same physical result" true (a == b)

let test_paper_reference_sane () =
  Alcotest.(check int) "table2 rows" 16 (List.length Core.Paper.table2);
  Alcotest.(check int) "table5 rows" 16 (List.length Core.Paper.table5);
  Alcotest.(check int) "table6 rows" 16 (List.length Core.Paper.table6);
  List.iter
    (fun (r : Core.Paper.hitec_row) ->
      Alcotest.(check bool) "ratio > 1" true (r.Core.Paper.cpu_ratio > 1.0);
      Alcotest.(check bool) "dff grows" true
        (r.Core.Paper.dff_re > r.Core.Paper.dff_orig))
    Core.Paper.table2

let suite =
  [
    Alcotest.test_case "pair memoized" `Quick test_pair_memoized;
    Alcotest.test_case "pair properties" `Quick test_pair_properties;
    Alcotest.test_case "table2 selection matches paper" `Quick
      test_table2_selection_complete;
    Alcotest.test_case "table 1 rows" `Quick test_table1_rows;
    Alcotest.test_case "table 7 monotonicity" `Slow test_table7_rows;
    Alcotest.test_case "table 5 invariance (one pair)" `Slow
      test_table5_invariance;
    Alcotest.test_case "density drops (one pair)" `Slow test_density_pair;
    Alcotest.test_case "cache keys distinct" `Quick test_cache_distinct_keys;
    Alcotest.test_case "cache immune to name aliasing" `Quick
      test_cache_name_aliasing;
    Alcotest.test_case "cache shares by content" `Quick
      test_cache_shares_by_content;
    Alcotest.test_case "paper reference data sane" `Quick
      test_paper_reference_sane;
  ]
