(* Reachability, density of encoding, DFF graph, structural measurements,
   including the paper's Figure-2 cycle-counting example. *)

let test_reach_toy () =
  let c = Helpers.toy_circuit () in
  let r = Analysis.Reach.explore c in
  (* brute force over the 4 states x 4 inputs *)
  let sim = Sim.Scalar.create c in
  let reach = Hashtbl.create 7 in
  let rec go code =
    if not (Hashtbl.mem reach code) then begin
      Hashtbl.add reach code ();
      for input = 0 to 3 do
        let state =
          Array.init 2 (fun j -> Sim.Value3.of_bool ((code lsr j) land 1 = 1))
        in
        let inputs =
          Array.init 2 (fun i -> Sim.Value3.of_bool ((input lsr i) land 1 = 1))
        in
        let _, next = Sim.Scalar.transition sim ~state ~inputs in
        let nc = ref 0 in
        Array.iteri
          (fun j v -> if v = Sim.Value3.One then nc := !nc lor (1 lsl j))
          next;
        go !nc
      done
    end
  in
  go 0;
  Alcotest.(check int) "valid states" (Hashtbl.length reach)
    r.Analysis.Reach.valid_states;
  Alcotest.(check bool) "density" true
    (abs_float
       (Analysis.Reach.density r
        -. (float_of_int r.Analysis.Reach.valid_states /. 4.0))
     < 1e-9)

let test_reach_on_synthesized () =
  (* valid states of a synthesized circuit = reachable states of the machine *)
  let r = Helpers.synthesize_small ~seed:45 ~states:7 () in
  let m = r.Synth.Flow.machine in
  let reach = Analysis.Reach.explore r.Synth.Flow.circuit in
  Alcotest.(check int) "matches machine reachability"
    (List.length (Fsm.Machine.reachable_states m))
    reach.Analysis.Reach.valid_states

let test_density_drops_under_retiming () =
  let r = Helpers.synthesize_small ~seed:46 ~states:8 () in
  let c = r.Synth.Flow.circuit in
  let re, _, _ = Retime.Apply.retime_aggressive ~period_slack:0.15 c in
  let d1 = Analysis.Reach.density (Analysis.Reach.explore c) in
  let d2 = Analysis.Reach.density (Analysis.Reach.explore re) in
  if Netlist.Node.num_dffs re > Netlist.Node.num_dffs c then
    Alcotest.(check bool)
      (Printf.sprintf "density %.3g -> %.3g" d1 d2)
      true (d2 < d1)

let test_dffgraph_toy () =
  let c = Helpers.toy_circuit () in
  let g = Analysis.Dffgraph.build c in
  Alcotest.(check int) "two dffs" 2 (Analysis.Dffgraph.num_dffs g);
  (* q0 -> q1 via n1/n2 and q1 -> q0 via n0; both feed out (n3) *)
  Alcotest.(check bool) "q0 -> q1" true g.Analysis.Dffgraph.adj.(0).(1);
  Alcotest.(check bool) "q1 -> q0" true g.Analysis.Dffgraph.adj.(1).(0);
  Alcotest.(check bool) "q0 to sink" true g.Analysis.Dffgraph.to_sink.(0);
  Alcotest.(check bool) "source to q0" true g.Analysis.Dffgraph.from_source.(0)

let test_depth_toy () =
  let c = Helpers.toy_circuit () in
  let g = Analysis.Dffgraph.build c in
  let d = Analysis.Depth.max_sequential_depth g in
  Alcotest.(check int) "depth 2" 2 d.Analysis.Depth.depth;
  Alcotest.(check bool) "exact" true d.Analysis.Depth.exact

let test_cycles_toy () =
  let c = Helpers.toy_circuit () in
  let g = Analysis.Dffgraph.build c in
  let r = Analysis.Cycles.count g in
  (* cycles: q0<->q1 (length 2); q1 self-loop?  q1' = !q0 | b: no self edge;
     q0' = a & q1: no self edge.  So exactly one cycle of length 2. *)
  Alcotest.(check int) "one cycle" 1 r.Analysis.Cycles.num_cycles;
  Alcotest.(check int) "length 2" 2 r.Analysis.Cycles.max_length

(* The paper's Figure 2: the original circuit counts 1 cycle of length 2
   under DFF-set counting; retiming through the fanout stem splits Q1 into
   Q1a/Q1b and the count becomes 2. *)
let test_figure2_artifact () =
  let c = Helpers.figure2_original () in
  let s = Analysis.Structural.analyze c in
  Alcotest.(check int) "original counts 1 cycle" 1
    s.Analysis.Structural.num_cycles;
  Alcotest.(check int) "cycle length 2" 2
    s.Analysis.Structural.max_cycle_length;
  (* retime: move Q1 backward across G3 (the stem side duplicates) *)
  let g = Retime.Graph.of_netlist c in
  (* find the lag vector that moves exactly Gbuf's register source: deepen *)
  let re, _, _ = Retime.Apply.retime_aggressive ~max_lag:1 ~period_slack:1.0 c in
  let sr = Analysis.Structural.analyze re in
  Alcotest.(check int) "length invariant" 2 sr.Analysis.Structural.max_cycle_length;
  Alcotest.(check bool) "counted cycles grow or stay" true
    (sr.Analysis.Structural.num_cycles >= s.Analysis.Structural.num_cycles);
  ignore g

let test_structural_depth_matches_toy () =
  let c = Helpers.toy_circuit () in
  let s = Analysis.Structural.analyze c in
  Alcotest.(check int) "gate-level depth" 2 s.Analysis.Structural.seq_depth;
  Alcotest.(check int) "gate-level max cycle" 2
    s.Analysis.Structural.max_cycle_length;
  Alcotest.(check bool) "exact" true s.Analysis.Structural.exact

let test_reach_initial_state_respected () =
  (* a circuit whose single DFF initializes to 1 must count its own initial
     state as valid *)
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  let q = Netlist.Build.add_dff b ~init:true "q" in
  let g = Netlist.Build.add_gate b Netlist.Node.And "g" [| a; q |] in
  Netlist.Build.connect_dff b q g;
  Netlist.Build.add_po b "z" q;
  let c = Netlist.Build.finalize b in
  let r = Analysis.Reach.explore c in
  Alcotest.(check int) "initial" 1 r.Analysis.Reach.initial;
  Alcotest.(check bool) "1 valid" true (Analysis.Reach.is_valid r 1);
  Alcotest.(check int) "both states reachable (q can fall to 0)" 2
    r.Analysis.Reach.valid_states

let suite =
  [
    Alcotest.test_case "reachability on toy" `Quick test_reach_toy;
    Alcotest.test_case "reachability matches machine" `Quick
      test_reach_on_synthesized;
    Alcotest.test_case "density drops under retiming" `Quick
      test_density_drops_under_retiming;
    Alcotest.test_case "dff graph structure" `Quick test_dffgraph_toy;
    Alcotest.test_case "sequential depth (toy)" `Quick test_depth_toy;
    Alcotest.test_case "cycle counting (toy)" `Quick test_cycles_toy;
    Alcotest.test_case "Figure 2 counting artifact" `Quick
      test_figure2_artifact;
    Alcotest.test_case "structural metrics (toy)" `Quick
      test_structural_depth_matches_toy;
    Alcotest.test_case "initial state respected" `Quick
      test_reach_initial_state_respected;
  ]
