(* Retiming: legality, behaviour preservation (Theorem 1's constructive
   form), register growth, and the structural invariants of Theorems 2-4. *)

let synth ?(seed = 61) ?(reset_line = false) () =
  Helpers.synthesize_small ~alg:Synth.Assign.Output_dominant
    ~script:Synth.Flow.Rugged ~reset_line ~seed ~states:8 ()

(* retimed-from-power-up must equal original-after-prefix on all outputs *)
let equivalent_modulo_prefix c re ~prefix_input ~prefix_len ~seed ~runs ~len =
  let rng = Random.State.make [| seed |] in
  let npi = Netlist.Node.num_pis c in
  let s1 = Sim.Scalar.create c and s2 = Sim.Scalar.create re in
  let ok = ref true in
  for _ = 1 to runs do
    Sim.Scalar.reset s1;
    Sim.Scalar.reset s2;
    let pv =
      match prefix_input with
      | Some v -> Sim.Vectors.to_v3 v
      | None -> Array.make npi Sim.Value3.Zero
    in
    for _ = 1 to prefix_len do
      ignore (Sim.Scalar.step s1 pv)
    done;
    for _ = 1 to len do
      let v = Sim.Vectors.to_v3 (Sim.Vectors.random_vector rng npi) in
      if Sim.Scalar.step s1 v <> Sim.Scalar.step s2 v then ok := false
    done
  done;
  !ok

let test_min_period_not_slower () =
  let r = synth () in
  let c = r.Synth.Flow.circuit in
  let re, period = Retime.Apply.retime_min_period c in
  Netlist.Check.assert_ok re;
  Alcotest.(check bool) "period <= original" true
    (period <= Netlist.Node.critical_path c +. 1e-9)

let qcheck_equivalence =
  Helpers.qcheck_case ~count:10 "retimed == original modulo prefix"
    QCheck2.Gen.(pair (int_range 100 120) bool)
    (fun (seed, reset_line) ->
      let r = synth ~seed ~reset_line () in
      let c = r.Synth.Flow.circuit in
      let prefix_input =
        if reset_line then begin
          let npi = Netlist.Node.num_pis c in
          let v = Array.make npi false in
          v.(npi - 1) <- true;
          Some v
        end
        else None
      in
      let re, _, plen =
        Retime.Apply.retime_aggressive ?prefix_input ~period_slack:0.15 c
      in
      Netlist.Check.is_well_formed re
      && equivalent_modulo_prefix c re ~prefix_input ~prefix_len:plen
           ~seed:(seed * 3) ~runs:4 ~len:50)

let test_aggressive_adds_registers () =
  (* across several seeds, deepening must add registers somewhere *)
  let grew = ref false in
  for seed = 70 to 78 do
    let r = synth ~seed () in
    let c = r.Synth.Flow.circuit in
    let re, _, _ = Retime.Apply.retime_aggressive ~period_slack:0.15 c in
    if Netlist.Node.num_dffs re > Netlist.Node.num_dffs c then grew := true
  done;
  Alcotest.(check bool) "register growth observed" true !grew

let test_theorems_2_3_4 () =
  (* the gate-canonical structural measurement must agree exactly between
     original and retimed circuits on depth and max cycle length, and never
     count fewer cycles on the retimed circuit *)
  for seed = 80 to 84 do
    let r = synth ~seed () in
    let c = r.Synth.Flow.circuit in
    let re, _, _ = Retime.Apply.retime_aggressive ~period_slack:0.15 c in
    let so = Analysis.Structural.analyze c in
    let sr = Analysis.Structural.analyze re in
    Alcotest.(check int)
      (Printf.sprintf "seq depth invariant (seed %d)" seed)
      so.Analysis.Structural.seq_depth sr.Analysis.Structural.seq_depth;
    Alcotest.(check int)
      (Printf.sprintf "max cycle length invariant (seed %d)" seed)
      so.Analysis.Structural.max_cycle_length
      sr.Analysis.Structural.max_cycle_length;
    Alcotest.(check bool)
      (Printf.sprintf "counted cycles grow (seed %d)" seed)
      true
      (sr.Analysis.Structural.num_cycles >= so.Analysis.Structural.num_cycles)
  done

let test_theorem1_testability_preserved () =
  (* Theorem 1, constructive form: a test set for the original, prefixed by
     P, detects the corresponding faults in the retimed circuit.  We check
     the aggregate consequence: fault coverage of (P-prefixed) original
     random vectors on the retimed circuit is at least as high as random
     vectors of the same length would suggest, and every original-circuit
     stem fault on a surviving gate has a counterpart detected. *)
  let r = synth ~seed:91 () in
  let c = r.Synth.Flow.circuit in
  let re, _, plen = Retime.Apply.retime_aggressive ~period_slack:0.15 c in
  let rng = Random.State.make [| 7 |] in
  let npi = Netlist.Node.num_pis c in
  let vectors =
    List.init 400 (fun _ -> Sim.Vectors.random_vector rng npi)
  in
  let prefix = List.init plen (fun _ -> Array.make npi false) in
  let faults_orig = Fsim.Collapse.list c in
  let faults_re = Fsim.Collapse.list re in
  let run_orig = Fsim.Engine.simulate c faults_orig vectors in
  let run_re = Fsim.Engine.simulate re faults_re (prefix @ vectors) in
  let cov faults (run : Fsim.Engine.run) =
    let d =
      Array.fold_left (fun a b -> if b then a + 1 else a) 0 run.Fsim.Engine.detected
    in
    100.0 *. float_of_int d /. float_of_int (Array.length faults)
  in
  let co = cov faults_orig run_orig and cr = cov faults_re run_re in
  Alcotest.(check bool)
    (Printf.sprintf "retimed coverage %.1f within 12%% of original %.1f" cr co)
    true
    (cr >= co -. 12.0)

let test_retime_idempotent_when_zero () =
  (* retiming with the identity lags must preserve the circuit's behaviour
     and never increase registers (chains are shared) *)
  let r = synth ~seed:95 () in
  let c = r.Synth.Flow.circuit in
  let g = Retime.Graph.of_netlist c in
  let zero = Array.make (Retime.Graph.num_gates g) 0 in
  let re = Retime.Apply.materialize g zero in
  Alcotest.(check int) "same registers" (Netlist.Node.num_dffs c)
    (Netlist.Node.num_dffs re);
  Alcotest.(check bool) "equivalent" true
    (equivalent_modulo_prefix c re ~prefix_input:None
       ~prefix_len:(Retime.Apply.prefix_length g zero)
       ~seed:5 ~runs:4 ~len:60)

let test_illegal_lags_rejected () =
  let r = synth ~seed:96 () in
  let g = Retime.Graph.of_netlist r.Synth.Flow.circuit in
  let bad = Array.make (Retime.Graph.num_gates g) 0 in
  (* find a gate with a zero-weight outgoing edge and force its lag down *)
  bad.(0) <- -1;
  if not (Retime.Graph.legal g bad) then
    Alcotest.check_raises "rejected"
      (Invalid_argument "Apply.materialize: illegal lags")
      (fun () -> ignore (Retime.Apply.materialize g bad))

let test_feas_infeasible_period () =
  let r = synth ~seed:97 () in
  let g = Retime.Graph.of_netlist r.Synth.Flow.circuit in
  Alcotest.(check bool) "absurd period infeasible" true
    (Retime.Solve.feas g ~period:0.1 = None)

let suite =
  [
    Alcotest.test_case "min-period not slower" `Quick test_min_period_not_slower;
    qcheck_equivalence;
    Alcotest.test_case "aggressive retime adds registers" `Quick
      test_aggressive_adds_registers;
    Alcotest.test_case "Theorems 2/3/4 invariants" `Slow test_theorems_2_3_4;
    Alcotest.test_case "Theorem 1 testability preserved" `Quick
      test_theorem1_testability_preserved;
    Alcotest.test_case "identity retiming" `Quick
      test_retime_idempotent_when_zero;
    Alcotest.test_case "illegal lags rejected" `Quick test_illegal_lags_rejected;
    Alcotest.test_case "infeasible period" `Quick test_feas_infeasible_period;
  ]
