(* Cube algebra and the espresso-lite minimizer. *)

let n = 6

let gen_cube =
  QCheck2.Gen.(
    let* lits = list_size (return n) (int_range 0 2) in
    return
      (List.fold_left
         (fun (c, i) l ->
           let lit =
             match l with
             | 0 -> Twolevel.Cube.lit_neg
             | 1 -> Twolevel.Cube.lit_pos
             | _ -> Twolevel.Cube.lit_dc
           in
           (Twolevel.Cube.set_lit c i lit, i + 1))
         (Twolevel.Cube.full n, 0)
         lits
       |> fst))

let gen_cover k = QCheck2.Gen.(map (Twolevel.Cover.make n) (list_size (int_range 0 k) gen_cube))

let points = List.init (1 lsl n) Fun.id

let test_cube_roundtrip () =
  let c = Twolevel.Cube.of_string "01-1-0" in
  Alcotest.(check string) "roundtrip" "01-1-0" (Twolevel.Cube.to_string 6 c)

let test_cube_member () =
  let c = Twolevel.Cube.of_string "1-0" in
  Alcotest.(check bool) "101 in" true (Twolevel.Cube.member 3 c 0b001);
  Alcotest.(check bool) "011 out" false (Twolevel.Cube.member 3 c 0b110)

let test_cube_contains () =
  let big = Twolevel.Cube.of_string "1--" in
  let small = Twolevel.Cube.of_string "1-0" in
  Alcotest.(check bool) "contains" true (Twolevel.Cube.contains big small);
  Alcotest.(check bool) "not contains" false (Twolevel.Cube.contains small big)

let qcheck_intersection =
  Helpers.qcheck_case "cube intersection = pointwise and"
    QCheck2.Gen.(pair gen_cube gen_cube)
    (fun (a, b) ->
      let i = Twolevel.Cube.intersect a b in
      List.for_all
        (fun p ->
          Twolevel.Cube.member n i p
          = (Twolevel.Cube.member n a p && Twolevel.Cube.member n b p))
        points)

let qcheck_complement =
  Helpers.qcheck_case "cover complement is pointwise negation"
    (gen_cover 8)
    (fun f ->
      let fc = Twolevel.Cover.complement f in
      List.for_all
        (fun p -> Twolevel.Cover.eval fc p = not (Twolevel.Cover.eval f p))
        points)

let qcheck_tautology =
  Helpers.qcheck_case "tautology agrees with truth table"
    (gen_cover 10)
    (fun f ->
      Twolevel.Cover.tautology f
      = List.for_all (fun p -> Twolevel.Cover.eval f p) points)

let qcheck_espresso_equivalent =
  Helpers.qcheck_case ~count:200 "espresso preserves the function on the care set"
    QCheck2.Gen.(pair (gen_cover 10) (gen_cover 2))
    (fun (on, dc) ->
      let r = Twolevel.Minimize.espresso ~on ~dc () in
      Twolevel.Minimize.equivalent_on_care ~on ~dc r)

let qcheck_espresso_no_growth =
  Helpers.qcheck_case ~count:100 "espresso never grows the cover"
    (gen_cover 10)
    (fun on ->
      let dc = Twolevel.Cover.empty n in
      let r = Twolevel.Minimize.espresso ~on ~dc () in
      Twolevel.Cover.size r
      <= Twolevel.Cover.size (Twolevel.Cover.drop_contained on))

let test_espresso_classic () =
  (* f = a'b + ab + ab' should reduce to a + b *)
  let on =
    Twolevel.Cover.make 2
      [
        Twolevel.Cube.of_string "01";
        Twolevel.Cube.of_string "11";
        Twolevel.Cube.of_string "10";
      ]
  in
  let r = Twolevel.Minimize.espresso ~on ~dc:(Twolevel.Cover.empty 2) () in
  Alcotest.(check int) "two cubes" 2 (Twolevel.Cover.size r);
  Alcotest.(check int) "two literals" 2 (Twolevel.Cover.literals r)

let test_dc_exploited () =
  (* ON = {00}, DC = {01, 10, 11} -> constant 1 (a single full cube) *)
  let on = Twolevel.Cover.make 2 [ Twolevel.Cube.of_string "00" ] in
  let dc =
    Twolevel.Cover.make 2
      [
        Twolevel.Cube.of_string "01";
        Twolevel.Cube.of_string "1-";
      ]
  in
  let r = Twolevel.Minimize.espresso ~on ~dc () in
  Alcotest.(check int) "one cube" 1 (Twolevel.Cover.size r);
  Alcotest.(check int) "no literals" 0 (Twolevel.Cover.literals r)

let suite =
  [
    Alcotest.test_case "cube string roundtrip" `Quick test_cube_roundtrip;
    Alcotest.test_case "cube membership" `Quick test_cube_member;
    Alcotest.test_case "cube containment" `Quick test_cube_contains;
    qcheck_intersection;
    qcheck_complement;
    qcheck_tautology;
    qcheck_espresso_equivalent;
    qcheck_espresso_no_growth;
    Alcotest.test_case "espresso textbook example" `Quick test_espresso_classic;
    Alcotest.test_case "espresso exploits don't cares" `Quick test_dc_exploited;
  ]
