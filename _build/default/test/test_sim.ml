(* Three-valued logic, scalar simulation, bit-parallel simulation. *)

let test_v3_tables () =
  let open Sim.Value3 in
  Alcotest.check Helpers.v3 "and" Zero (v_and Zero X);
  Alcotest.check Helpers.v3 "and x" X (v_and One X);
  Alcotest.check Helpers.v3 "or" One (v_or One X);
  Alcotest.check Helpers.v3 "or x" X (v_or Zero X);
  Alcotest.check Helpers.v3 "not x" X (v_not X);
  Alcotest.check Helpers.v3 "xor" One (v_xor One Zero);
  Alcotest.check Helpers.v3 "xor x" X (v_xor One X)

(* X-monotonicity: refining an X input can only refine the gate output. *)
let qcheck_x_monotone =
  let open QCheck2 in
  let gen_fn =
    Gen.oneofl
      [ Netlist.Node.And; Netlist.Node.Or; Netlist.Node.Nand;
        Netlist.Node.Nor; Netlist.Node.Xor; Netlist.Node.Xnor ]
  in
  let gen_v3 = Gen.oneofl [ Sim.Value3.Zero; Sim.Value3.One; Sim.Value3.X ] in
  Helpers.qcheck_case "gate eval is X-monotone"
    Gen.(triple gen_fn (pair gen_v3 gen_v3) (pair Gen.bool Gen.bool))
    (fun (fn, (a, b), (ca, cb)) ->
      let refine v c =
        match v with Sim.Value3.X -> Sim.Value3.of_bool c | v -> v
      in
      let abstract = Sim.Value3.eval_gate fn [| a; b |] in
      let concrete =
        Sim.Value3.eval_gate fn [| refine a ca; refine b cb |]
      in
      Sim.Value3.compatible abstract concrete)

let test_scalar_step () =
  let c = Helpers.toy_circuit () in
  let sim = Sim.Scalar.create c in
  Sim.Scalar.reset sim;
  (* power-up: q0=0 q1=0, out = 0 xor 0 = 0 *)
  let out = Sim.Scalar.step sim [| Sim.Value3.One; Sim.Value3.Zero |] in
  Alcotest.check Helpers.v3 "cycle0 out" Sim.Value3.Zero out.(0);
  (* after tick: q0' = a&q1 = 0, q1' = !q0|b = 1 -> out = 0 xor 1 = 1 *)
  let out = Sim.Scalar.step sim [| Sim.Value3.One; Sim.Value3.Zero |] in
  Alcotest.check Helpers.v3 "cycle1 out" Sim.Value3.One out.(0)

let test_scalar_x_propagation () =
  let c = Helpers.toy_circuit () in
  let sim = Sim.Scalar.create c in
  Sim.Scalar.reset sim;
  let out = Sim.Scalar.step sim [| Sim.Value3.X; Sim.Value3.X |] in
  (* out = q0 xor q1 with q0=q1=0: inputs don't matter in cycle 0 *)
  Alcotest.check Helpers.v3 "out definite despite X inputs" Sim.Value3.Zero
    out.(0)

(* Parallel simulator agrees with the scalar one on random runs. *)
let qcheck_parallel_vs_scalar =
  let open QCheck2 in
  Helpers.qcheck_case ~count:60 "parallel lane 0 = scalar"
    Gen.(pair (int_range 0 1000) (int_range 1 40))
    (fun (seed, len) ->
      let c = Helpers.toy_circuit () in
      let rng = Random.State.make [| seed |] in
      let vectors =
        List.init len (fun _ -> Sim.Vectors.random_vector rng 2)
      in
      let scalar = Sim.Scalar.create c in
      Sim.Scalar.reset scalar;
      let par = Sim.Parallel.create c in
      Sim.Parallel.reset par;
      List.for_all
        (fun v ->
          let so = Sim.Scalar.step scalar (Sim.Vectors.to_v3 v) in
          let po = Sim.Parallel.step_broadcast par v in
          Array.for_all Fun.id
            (Array.map2
               (fun s p ->
                 match Sim.Value3.to_bool_opt s with
                 | Some b -> (p land 1 = 1) = b
                 | None -> false)
               so po))
        vectors)

let test_parallel_stem_injection () =
  let c = Helpers.toy_circuit () in
  let par = Sim.Parallel.create c in
  (* force q0 stuck-at-1 in lane 1 only *)
  let q0 = Netlist.Node.find_by_name c "q0" in
  Sim.Parallel.inject_stem par ~node:q0 ~lane:1 ~value:true;
  Sim.Parallel.reset par;
  let out = Sim.Parallel.step_broadcast par [| false; false |] in
  (* out = q0 xor q1: lane0 good = 0, lane1 faulty = 1 *)
  Alcotest.(check int) "lane0 good" 0 (out.(0) land 1);
  Alcotest.(check int) "lane1 faulty" 1 ((out.(0) lsr 1) land 1)

let test_vectors_enumerate () =
  let vs = Sim.Vectors.enumerate 3 in
  Alcotest.(check int) "count" 8 (List.length vs);
  let distinct = List.sort_uniq compare (List.map Array.to_list vs) in
  Alcotest.(check int) "distinct" 8 (List.length distinct)

let test_enumerate_words_cover () =
  let chunks = Sim.Vectors.enumerate_words 7 in
  let total = List.fold_left (fun a (n, _) -> a + n) 0 chunks in
  Alcotest.(check int) "128 vectors" 128 total;
  (* lane l of chunk k must encode vector code k*word_bits + l *)
  List.iteri
    (fun k (lanes, words) ->
      for l = 0 to lanes - 1 do
        let code = (k * Sim.Parallel.word_bits) + l in
        Array.iteri
          (fun i w ->
            let expect = (code lsr i) land 1 in
            Alcotest.(check int) "bit" expect ((w lsr l) land 1))
          words
      done)
    chunks

let suite =
  [
    Alcotest.test_case "value3 truth tables" `Quick test_v3_tables;
    qcheck_x_monotone;
    Alcotest.test_case "scalar stepping" `Quick test_scalar_step;
    Alcotest.test_case "scalar X propagation" `Quick test_scalar_x_propagation;
    qcheck_parallel_vs_scalar;
    Alcotest.test_case "parallel stem injection" `Quick
      test_parallel_stem_injection;
    Alcotest.test_case "vector enumeration" `Quick test_vectors_enumerate;
    Alcotest.test_case "word enumeration covers space" `Quick
      test_enumerate_words_cover;
  ]
