(* Netlist construction, checking, levelization and statistics. *)

let test_build_toy () =
  let c = Helpers.toy_circuit () in
  Alcotest.(check int) "pis" 2 (Netlist.Node.num_pis c);
  Alcotest.(check int) "pos" 1 (Netlist.Node.num_pos c);
  Alcotest.(check int) "dffs" 2 (Netlist.Node.num_dffs c);
  Alcotest.(check int) "gates" 4 (Netlist.Node.num_gates c);
  Alcotest.(check bool) "well formed" true (Netlist.Check.is_well_formed c)

let test_levels () =
  let c = Helpers.toy_circuit () in
  (* n2 = OR(n1, b) must be after n1 *)
  let n1 = Netlist.Node.find_by_name c "n1" in
  let n2 = Netlist.Node.find_by_name c "n2" in
  Alcotest.(check bool) "n2 deeper than n1" true
    (c.Netlist.Node.level.(n2) > c.Netlist.Node.level.(n1))

let test_comb_cycle_detected () =
  (* construct a combinational cycle by connecting gate fanins forward *)
  let b = Netlist.Build.create () in
  let _a = Netlist.Build.add_pi b "a" in
  (* gate 1 will read gate 2's id (created after), forming a cycle *)
  let g1 = Netlist.Build.add_gate b Netlist.Node.Buf "g1" [| 2 |] in
  let _g2 = Netlist.Build.add_gate b Netlist.Node.Buf "g2" [| g1 |] in
  Netlist.Build.add_po b "z" g1;
  Alcotest.check_raises "cycle"
    (Netlist.Build.Combinational_cycle "g1")
    (fun () -> ignore (Netlist.Build.finalize b))

let test_const_node () =
  let b = Netlist.Build.create () in
  let k1 = Netlist.Build.add_const b "one" true in
  Netlist.Build.add_po b "z" k1;
  let c = Netlist.Build.finalize b in
  Alcotest.(check bool) "well formed" true (Netlist.Check.is_well_formed c);
  let sim = Sim.Scalar.create c in
  Sim.Scalar.reset sim;
  Sim.Scalar.eval_comb sim;
  Alcotest.check Helpers.v3 "constant one" Sim.Value3.One
    (Sim.Scalar.outputs sim).(0);
  Sim.Scalar.tick sim;
  Sim.Scalar.eval_comb sim;
  Alcotest.check Helpers.v3 "still one" Sim.Value3.One
    (Sim.Scalar.outputs sim).(0)

let test_check_catches_bad_arity () =
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  Alcotest.check_raises "not arity"
    (Invalid_argument "Build.add_gate: bad arity 2 for NOT")
    (fun () -> ignore (Netlist.Build.add_gate b Netlist.Node.Not "n" [| a; a |]))

let test_stats () =
  let c = Helpers.toy_circuit () in
  let s = Netlist.Stats.of_circuit c in
  Alcotest.(check int) "gates" 4 s.Netlist.Stats.gates;
  Alcotest.(check bool) "area positive" true (s.Netlist.Stats.area > 0.0);
  Alcotest.(check bool) "delay positive" true (s.Netlist.Stats.delay > 0.0)

let test_fanout_cone () =
  let c = Helpers.toy_circuit () in
  let q0 = Netlist.Node.find_by_name c "q0" in
  let cone = Netlist.Stats.comb_fanout_cone c q0 in
  (* q0 reaches n1 -> n2 -> q1(data) and n3 *)
  let names =
    List.map (fun id -> (Netlist.Node.node c id).Netlist.Node.name) cone
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("cone has " ^ expected) true
        (List.mem expected names))
    [ "n1"; "n2"; "n3"; "q1" ]

let test_critical_path_monotone () =
  (* adding a gate on the critical path cannot reduce delay *)
  let c = Helpers.toy_circuit () in
  let d1 = Netlist.Node.critical_path c in
  let b = Netlist.Build.create () in
  let a = Netlist.Build.add_pi b "a" in
  let bi = Netlist.Build.add_pi b "b" in
  let q0 = Netlist.Build.add_dff b "q0" in
  let q1 = Netlist.Build.add_dff b "q1" in
  let n0 = Netlist.Build.add_gate b Netlist.Node.And "n0" [| a; q1 |] in
  let n1 = Netlist.Build.add_gate b Netlist.Node.Not "n1" [| q0 |] in
  let n2 = Netlist.Build.add_gate b Netlist.Node.Or "n2" [| n1; bi |] in
  let n3 = Netlist.Build.add_gate b Netlist.Node.Xor "n3" [| q0; q1 |] in
  let n4 = Netlist.Build.add_gate b Netlist.Node.Not "extra" [| n3 |] in
  Netlist.Build.connect_dff b q0 n0;
  Netlist.Build.connect_dff b q1 n2;
  Netlist.Build.add_po b "out" n4;
  let c2 = Netlist.Build.finalize b in
  Alcotest.(check bool) "longer" true (Netlist.Node.critical_path c2 > d1)

let suite =
  [
    Alcotest.test_case "build toy circuit" `Quick test_build_toy;
    Alcotest.test_case "levelization order" `Quick test_levels;
    Alcotest.test_case "combinational cycle detected" `Quick
      test_comb_cycle_detected;
    Alcotest.test_case "constant nodes" `Quick test_const_node;
    Alcotest.test_case "arity checking" `Quick test_check_catches_bad_arity;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "fanout cone" `Quick test_fanout_cone;
    Alcotest.test_case "critical path monotone" `Quick
      test_critical_path_monotone;
  ]
