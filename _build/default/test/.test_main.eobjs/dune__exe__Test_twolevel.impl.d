test/test_twolevel.ml: Alcotest Fun Helpers List QCheck2 Twolevel
