test/test_netlist.ml: Alcotest Array Helpers List Netlist Sim
