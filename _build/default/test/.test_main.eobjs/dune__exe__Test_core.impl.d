test/test_core.ml: Alcotest Analysis Core Fsm List Netlist Printf Synth
