test/test_dft.ml: Alcotest Array Atpg Dft Fsim Helpers List Netlist Printf QCheck2 Random Retime Sim String Synth
