test/test_fsm.ml: Alcotest Array Fsm Helpers List Printf QCheck2 Random Sim
