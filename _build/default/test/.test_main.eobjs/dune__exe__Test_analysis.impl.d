test/test_analysis.ml: Alcotest Analysis Array Fsm Hashtbl Helpers List Netlist Printf Retime Sim Synth
