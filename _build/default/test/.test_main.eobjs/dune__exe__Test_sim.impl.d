test/test_sim.ml: Alcotest Array Fun Gen Helpers List Netlist QCheck2 Random Sim
