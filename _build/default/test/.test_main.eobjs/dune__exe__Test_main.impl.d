test/test_main.ml: Alcotest Test_analysis Test_atpg Test_core Test_dft Test_fsim Test_fsm Test_netlist Test_retime Test_sim Test_synth Test_twolevel
