test/helpers.ml: Alcotest Array Fsm Netlist QCheck2 QCheck_alcotest Sim Synth
