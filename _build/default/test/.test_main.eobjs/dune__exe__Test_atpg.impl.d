test/test_atpg.ml: Alcotest Array Atpg Fsim Helpers List Netlist Printf Random Sim Synth Unix
