test/test_fsim.ml: Alcotest Array Fsim Helpers List Netlist QCheck2 Random Sim Synth
