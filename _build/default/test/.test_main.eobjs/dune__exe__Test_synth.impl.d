test/test_synth.ml: Alcotest Array Fsm Helpers List Netlist Printf QCheck2 Random Sim Synth
