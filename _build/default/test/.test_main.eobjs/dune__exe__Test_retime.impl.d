test/test_retime.ml: Alcotest Analysis Array Fsim Helpers List Netlist Printf QCheck2 Random Retime Sim Synth
