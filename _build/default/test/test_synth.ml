(* Synthesis flow: state minimization, assignment, encoding, scripts,
   technology mapping — each stage checked for functional correctness
   against the (completed) machine semantics. *)

(* Compare a synthesized circuit against its machine on the whole
   (state, input) space; don't-care output bits are skipped. *)
let circuit_matches_machine (r : Synth.Flow.result) =
  let m = r.Synth.Flow.machine in
  let codes = r.Synth.Flow.codes and bits = r.Synth.Flow.bits in
  let ni = m.Fsm.Machine.num_inputs in
  let c = r.Synth.Flow.circuit in
  let sim = Sim.Scalar.create c in
  let npi = Netlist.Node.num_pis c in
  let bad = ref 0 in
  for s = 0 to Fsm.Machine.num_states m - 1 do
    for code = 0 to (1 lsl ni) - 1 do
      let state = Helpers.state_vector c ~bits codes.(s) in
      let inputs =
        Array.init npi (fun i ->
            if i < ni then Sim.Value3.of_bool ((code lsr i) land 1 = 1)
            else Sim.Value3.Zero)
      in
      let outs_c, next_c = Sim.Scalar.transition sim ~state ~inputs in
      let dst, outs = Fsm.Machine.step_observed m ~state:s ~input_code:code in
      Array.iteri
        (fun k ov ->
          match ov with
          | Sim.Value3.X -> ()
          | v -> if outs_c.(k) <> v then incr bad)
        outs;
      Array.iteri
        (fun j v ->
          if
            j < bits
            && v <> Sim.Value3.of_bool ((codes.(dst) lsr j) land 1 = 1)
          then incr bad)
        next_c
    done
  done;
  !bad

let test_minimize_states_behaviour () =
  (* build an FSM with duplicated states by construction: two copies of the
     same machine glued at the reset state can't be distinguished *)
  let m = Helpers.small_fsm ~states:8 () in
  let mm = Synth.Minimize_states.minimize m in
  Alcotest.(check bool) "not larger" true
    (Fsm.Machine.num_states mm <= Fsm.Machine.num_states m);
  (* behaviourally equivalent under completion *)
  let rng = Random.State.make [| 17 |] in
  for _ = 1 to 30 do
    let seq =
      List.init 40 (fun _ ->
          Sim.Vectors.random_vector rng m.Fsm.Machine.num_inputs)
    in
    Alcotest.(check bool) "same outputs" true
      (Fsm.Machine.run m seq = Fsm.Machine.run mm seq)
  done

let test_minimize_merges_duplicates () =
  (* machine with states 1 and 2 exactly equivalent *)
  let t in_care in_value src dst out_value =
    { Fsm.Machine.in_care; in_value; src; dst; out_care = 1; out_value }
  in
  let m =
    {
      Fsm.Machine.name = "dup";
      num_inputs = 1;
      num_outputs = 1;
      state_names = [| "a"; "b"; "c" |];
      reset = 0;
      transitions =
        [|
          t 1 0 0 1 0; t 1 1 0 2 1;
          t 1 0 1 0 1; t 1 1 1 1 0;
          t 1 0 2 0 1; t 1 1 2 1 0;
        |];
    }
  in
  let mm = Synth.Minimize_states.minimize m in
  Alcotest.(check int) "b and c merge" 2 (Fsm.Machine.num_states mm)

let test_assign_properties () =
  let m = Helpers.small_fsm ~states:7 () in
  List.iter
    (fun alg ->
      let codes, bits = Synth.Assign.assign alg m in
      Alcotest.(check int) "bits" 3 bits;
      Alcotest.(check int) "reset at 0" 0 codes.(m.Fsm.Machine.reset);
      let sorted = List.sort_uniq compare (Array.to_list codes) in
      Alcotest.(check int) "codes distinct" (Array.length codes)
        (List.length sorted);
      Array.iter
        (fun c ->
          Alcotest.(check bool) "in range" true (c >= 0 && c < 8))
        codes)
    [ Synth.Assign.Input_dominant; Synth.Assign.Output_dominant;
      Synth.Assign.Combined ]

let test_encode_correct () =
  let m = Helpers.small_fsm () in
  let assignment = Synth.Assign.assign Synth.Assign.Combined m in
  let e = Synth.Encode.encode m assignment in
  let codes, _ = assignment in
  let bad = ref 0 in
  for s = 0 to Fsm.Machine.num_states m - 1 do
    for code = 0 to (1 lsl m.Fsm.Machine.num_inputs) - 1 do
      let dst, outs = Fsm.Machine.step_observed m ~state:s ~input_code:code in
      let next, eouts = Synth.Encode.eval e ~state_code:codes.(s) ~input_code:code in
      if next <> codes.(dst) then incr bad;
      Array.iteri
        (fun k ov ->
          match ov with
          | Sim.Value3.X -> ()
          | v -> if Sim.Value3.of_bool eouts.(k) <> v then incr bad)
        outs
    done
  done;
  Alcotest.(check int) "encode matches machine" 0 !bad

let test_full_flow_all_options () =
  List.iter
    (fun (alg, script) ->
      List.iter
        (fun reset_line ->
          let r =
            Helpers.synthesize_small ~alg ~script ~reset_line ~seed:21 ()
          in
          Netlist.Check.assert_ok r.Synth.Flow.circuit;
          Alcotest.(check int)
            (Printf.sprintf "functional (%s reset=%b)" r.Synth.Flow.name
               reset_line)
            0
            (circuit_matches_machine r))
        [ false; true ])
    [
      (Synth.Assign.Input_dominant, Synth.Flow.Rugged);
      (Synth.Assign.Input_dominant, Synth.Flow.Delay);
      (Synth.Assign.Output_dominant, Synth.Flow.Rugged);
      (Synth.Assign.Combined, Synth.Flow.Delay);
    ]

let test_reset_line_forces_state () =
  let r =
    Helpers.synthesize_small ~reset_line:true ~seed:9 ~states:6 ()
  in
  let c = r.Synth.Flow.circuit in
  let sim = Sim.Scalar.create c in
  let npi = Netlist.Node.num_pis c in
  (* from an arbitrary state, asserting reset must drive the state to the
     all-zero (reset) code *)
  let code = (1 lsl r.Synth.Flow.bits) - 1 in
  let state =
    Helpers.state_vector c ~bits:r.Synth.Flow.bits code
    |> Array.mapi (fun j v -> if j < r.Synth.Flow.bits then Sim.Value3.One else v)
  in
  ignore code;
  let inputs =
    Array.init npi (fun i -> if i = npi - 1 then Sim.Value3.One else Sim.Value3.Zero)
  in
  let _, next = Sim.Scalar.transition sim ~state ~inputs in
  Array.iteri
    (fun j v ->
      if j < r.Synth.Flow.bits then
        Alcotest.check Helpers.v3
          (Printf.sprintf "bit %d zero" j)
          Sim.Value3.Zero v)
    next

let test_mapped_gates_in_library () =
  let r = Helpers.synthesize_small ~seed:33 () in
  Array.iter
    (fun (nd : Netlist.Node.node) ->
      match nd.Netlist.Node.kind with
      | Netlist.Node.Gate fn ->
        let arity = Array.length nd.Netlist.Node.fanins in
        let in_lib =
          List.exists
            (fun (cell : Synth.Library.cell) ->
              cell.Synth.Library.fn = fn && cell.Synth.Library.arity = arity)
            Synth.Library.cells
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s arity %d in library" (Netlist.Node.gate_fn_name fn) arity)
          true in_lib
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ())
    r.Synth.Flow.circuit.Netlist.Node.nodes

let test_delay_objective_not_slower () =
  (* the delay-mapped circuit should not be slower than the area-mapped one
     for the same network (usually strictly faster or equal) *)
  let m = Helpers.small_fsm ~seed:40 ~states:8 () in
  let codes = Synth.Assign.assign Synth.Assign.Combined m in
  let e = Synth.Encode.encode m codes in
  let net = Synth.Network.of_encoded e in
  Synth.Scripts.script_rugged net;
  let spec =
    {
      Synth.Emit.circuit_name = "toy";
      ni = m.Fsm.Machine.num_inputs;
      no = m.Fsm.Machine.num_outputs;
      bits = snd codes;
      reset_line = false;
    }
  in
  let generic = Synth.Emit.to_netlist spec net in
  let area_mapped = Synth.Techmap.map ~objective:`Area generic in
  let delay_mapped = Synth.Techmap.map ~objective:`Delay generic in
  Alcotest.(check bool) "delay map not slower" true
    (Netlist.Node.critical_path delay_mapped
     <= Netlist.Node.critical_path area_mapped +. 1e-9);
  Alcotest.(check bool) "area map not bigger" true
    (Netlist.Node.area area_mapped <= Netlist.Node.area delay_mapped +. 1e-9)

let qcheck_flow_random_fsms =
  Helpers.qcheck_case ~count:12 "random FSMs synthesize correctly"
    QCheck2.Gen.(int_range 50 70)
    (fun seed ->
      let r = Helpers.synthesize_small ~seed ~states:5 () in
      Netlist.Check.is_well_formed r.Synth.Flow.circuit
      && circuit_matches_machine r = 0)

let suite =
  [
    Alcotest.test_case "state minimization behaviour" `Quick
      test_minimize_states_behaviour;
    Alcotest.test_case "state minimization merges duplicates" `Quick
      test_minimize_merges_duplicates;
    Alcotest.test_case "assignment properties" `Quick test_assign_properties;
    Alcotest.test_case "encoding correct" `Quick test_encode_correct;
    Alcotest.test_case "full flow, all options" `Slow
      test_full_flow_all_options;
    Alcotest.test_case "reset line forces state 0" `Quick
      test_reset_line_forces_state;
    Alcotest.test_case "mapped gates are library cells" `Quick
      test_mapped_gates_in_library;
    Alcotest.test_case "mapping objectives" `Quick
      test_delay_objective_not_slower;
    qcheck_flow_random_fsms;
  ]
