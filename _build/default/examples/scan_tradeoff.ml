(* Partial-scan trade-off: how much of the paper's retiming-induced ATPG
   pain does each increment of scanned registers buy back?

   Sweeps scan fractions over a retimed (sparsely encoded) circuit:
   no scan, cycle-breaking partial scan, full scan — reporting area
   overhead, coverage and work for each point.

     dune exec examples/scan_tradeoff.exe -- [fsm]
*)

let () =
  let fsm = if Array.length Sys.argv > 1 then Sys.argv.(1) else "dk16" in
  let p = Core.Flow.pair fsm Synth.Assign.Input_dominant Synth.Flow.Rugged in
  let re = p.Core.Flow.retimed in
  Fmt.pr "circuit: %s.re  (%a)@." p.Core.Flow.name Netlist.Node.pp_summary re;
  let cfg =
    {
      (Atpg.Types.scaled_config ()) with
      Atpg.Types.total_work_limit = 80_000_000;
    }
  in
  let base_area = Netlist.Node.area re in
  let report tag circuit (r : Atpg.Types.result) =
    Fmt.pr "  %-22s dff=%2d area=%6.0f (+%4.1f%%)  FC=%5.1f%%  work=%9d@." tag
      (Netlist.Node.num_dffs circuit)
      (Netlist.Node.area circuit)
      (100.0 *. (Netlist.Node.area circuit -. base_area) /. base_area)
      r.Atpg.Types.fault_coverage
      (Atpg.Types.work_units r.Atpg.Types.stats)
  in
  (* sequential ATPG on the unscanned circuit *)
  report "no scan (seq ATPG)" re (Atpg.Run.generate ~config:cfg re);
  (* scan-mode ATPG (shift-in justification) on partial and full scan *)
  let breaking = Dft.Scan.select_cycle_breaking re in
  let partial = Dft.Scan.insert ~positions:breaking re in
  report
    (Printf.sprintf "partial scan (%d regs)" (Array.length breaking))
    partial.Dft.Scan.circuit
    (Dft.Scan_atpg.generate ~config:cfg partial);
  let full = Dft.Scan.insert re in
  report
    (Printf.sprintf "full scan (%d regs)" full.Dft.Scan.length)
    full.Dft.Scan.circuit
    (Dft.Scan_atpg.generate ~config:cfg full);
  Fmt.pr "@.Scan converts the retimed circuit's unjustifiable states into@.";
  Fmt.pr "shiftable ones: coverage recovers and deterministic work falls,@.";
  Fmt.pr "at the area cost of the scan muxes — the DFT trade the paper's@.";
  Fmt.pr "conclusion asks designers to weigh.@."
