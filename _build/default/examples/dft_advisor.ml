(* DFT advisor — the paper's concluding point put to work: use the density
   of encoding (rather than sequential depth or cycle counts) to predict
   whether a design will need design-for-testability help.

   Scores every benchmark/synthesis-option combination, before and after
   retiming, and prints a difficulty classification with the structural
   attributes the classical view would have used (and which do not move).

     dune exec examples/dft_advisor.exe -- [fsm ...]
*)

let classify density =
  if density >= 0.5 then "easy      (dense encoding)"
  else if density >= 1e-2 then "moderate  (some invalid states)"
  else if density >= 1e-4 then "hard      (sparse encoding)"
  else "very hard (DFT recommended)"

let advise name circuit =
  let reach = Core.Cache.reach ~name circuit in
  let s = Core.Cache.structural ~name circuit in
  let d = Analysis.Reach.density reach in
  Fmt.pr "%-16s dff=%2d depth=%d maxcyc=%d density=%9.2e  %s@." name
    (Netlist.Node.num_dffs circuit)
    s.Analysis.Structural.seq_depth s.Analysis.Structural.max_cycle_length d
    (classify d)

let () =
  let fsms =
    if Array.length Sys.argv > 1 then
      Array.to_list (Array.sub Sys.argv 1 (Array.length Sys.argv - 1))
    else [ "dk16"; "s820" ]
  in
  Fmt.pr "DFT advisor: density of encoding as the testability indicator@.@.";
  List.iter
    (fun fsm ->
      List.iter
        (fun (alg, script) ->
          let p = Core.Flow.pair fsm alg script in
          advise p.Core.Flow.name p.Core.Flow.original;
          advise (p.Core.Flow.name ^ ".re") p.Core.Flow.retimed)
        [
          (Synth.Assign.Input_dominant, Synth.Flow.Rugged);
          (Synth.Assign.Output_dominant, Synth.Flow.Delay);
        ])
    fsms;
  Fmt.pr "@.Note how the classical indicators (sequential depth, cycle@.";
  Fmt.pr "length) are identical within each original/retimed pair, while@.";
  Fmt.pr "the density of encoding — and with it the real ATPG cost — is not.@.";

  (* the fix: scan insertion removes the state-justification problem *)
  Fmt.pr "@.Applying the advice — full scan on the worst circuit:@.";
  let p =
    Core.Flow.pair (List.hd fsms) Synth.Assign.Input_dominant
      Synth.Flow.Rugged
  in
  let re = p.Core.Flow.retimed in
  let chain = Dft.Scan.insert re in
  let cfg =
    {
      (Atpg.Types.scaled_config ()) with
      Atpg.Types.total_work_limit = 60_000_000;
    }
  in
  let before = Atpg.Run.generate ~config:cfg re in
  let after = Dft.Scan_atpg.generate ~config:cfg chain in
  let w r = Atpg.Types.work_units r.Atpg.Types.stats in
  Fmt.pr "  %-22s FC %5.1f%%  work %d@." (p.Core.Flow.name ^ ".re")
    before.Atpg.Types.fault_coverage (w before);
  Fmt.pr "  %-22s FC %5.1f%%  work %d@."
    (p.Core.Flow.name ^ ".re+scan")
    after.Atpg.Types.fault_coverage (w after)
