examples/retiming_cost.mli:
