examples/quickstart.ml: Analysis Array Atpg Fmt Fsm Netlist Sim Synth
