examples/quickstart.mli:
