examples/scan_tradeoff.ml: Array Atpg Core Dft Fmt Netlist Printf Synth Sys
