examples/scan_tradeoff.mli:
