examples/density_sweep.ml: Analysis Atpg Core Fmt List Netlist
