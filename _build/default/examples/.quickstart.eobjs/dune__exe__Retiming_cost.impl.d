examples/retiming_cost.ml: Analysis Array Atpg Core Fmt Netlist Random Sim Synth Sys
