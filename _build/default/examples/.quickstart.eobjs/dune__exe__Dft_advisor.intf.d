examples/dft_advisor.mli:
