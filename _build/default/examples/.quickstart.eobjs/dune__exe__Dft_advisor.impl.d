examples/dft_advisor.ml: Analysis Array Atpg Core Dft Fmt List Netlist Synth Sys
