(* Quickstart: describe an FSM in KISS2, synthesize it to a gate-level
   netlist, simulate a few cycles, and generate tests for it.

     dune exec examples/quickstart.exe
*)

let traffic_light_kiss =
  {|
.i 2
.o 3
.s 3
.r GREEN
# car_waiting timer_done | red yellow green
0- GREEN  GREEN  001
1- GREEN  YELLOW 001
-0 YELLOW YELLOW 010
-1 YELLOW RED    010
-0 RED    RED    100
-1 RED    GREEN  100
.e
|}

let () =
  (* 1. parse the machine *)
  let machine = Fsm.Kiss.parse_string ~name:"traffic" traffic_light_kiss in
  Fmt.pr "machine: %a@." Fsm.Machine.pp_summary machine;

  (* 2. synthesize: state minimization, jedi-style assignment, multilevel
     optimization, technology mapping *)
  let result =
    Synth.Flow.synthesize ~reset_line:true
      ~algorithm:Synth.Assign.Combined ~script:Synth.Flow.Rugged machine
  in
  let circuit = result.Synth.Flow.circuit in
  Fmt.pr "circuit: %a@." Netlist.Node.pp_summary circuit;

  (* 3. simulate a few cycles: a car arrives, then timers expire *)
  let sim = Sim.Scalar.create circuit in
  Sim.Scalar.reset sim;
  let step label v =
    let out = Sim.Scalar.step sim (Sim.Vectors.to_v3 v) in
    Fmt.pr "  %-22s -> red=%a yellow=%a green=%a@." label Sim.Value3.pp
      out.(0) Sim.Value3.pp out.(1) Sim.Value3.pp out.(2)
  in
  (* inputs: car_waiting, timer_done, reset *)
  step "idle" [| false; false; false |];
  step "car arrives" [| true; false; false |];
  step "timer done (yellow)" [| false; true; false |];
  step "timer done (red)" [| false; true; false |];
  step "timer done (green)" [| false; true; false |];

  (* 4. run the HITEC-style ATPG *)
  let atpg = Atpg.Hitec.generate circuit in
  Fmt.pr "ATPG: %d faults, %.1f%% coverage, %.1f%% efficiency, %d work units@."
    (Array.length atpg.Atpg.Types.faults)
    atpg.Atpg.Types.fault_coverage atpg.Atpg.Types.fault_efficiency
    (Atpg.Types.work_units atpg.Atpg.Types.stats);

  (* 5. density of encoding — the paper's testability indicator *)
  let reach = Analysis.Reach.explore circuit in
  Fmt.pr "state space: %d valid of %.0f total (density %.2f)@."
    reach.Analysis.Reach.valid_states
    (Analysis.Reach.total_states reach)
    (Analysis.Reach.density reach)
