(* The paper's headline experiment on a single benchmark: synthesize an FSM,
   retime it, and watch structural test generation get harder even though
   the circuit computes exactly the same function.

     dune exec examples/retiming_cost.exe -- [fsm]
*)

let () =
  let fsm = if Array.length Sys.argv > 1 then Sys.argv.(1) else "dk16" in
  let p = Core.Flow.pair fsm Synth.Assign.Input_dominant Synth.Flow.Delay in

  Fmt.pr "=== %s: original vs retimed ===@." p.Core.Flow.name;
  Fmt.pr "original: %a@." Netlist.Node.pp_summary p.Core.Flow.original;
  Fmt.pr "retimed : %a@." Netlist.Node.pp_summary p.Core.Flow.retimed;

  (* the two circuits are behaviourally identical (modulo the equivalence
     prefix): demonstrate on a random run *)
  let c = p.Core.Flow.original and re = p.Core.Flow.retimed in
  let npi = Netlist.Node.num_pis c in
  let rng = Random.State.make [| 11 |] in
  let s1 = Sim.Scalar.create c and s2 = Sim.Scalar.create re in
  Sim.Scalar.reset s1;
  Sim.Scalar.reset s2;
  let prefix =
    match Core.Flow.reset_prefix_input p.Core.Flow.synth with
    | Some v -> Sim.Vectors.to_v3 v
    | None -> Array.make npi Sim.Value3.Zero
  in
  for _ = 1 to p.Core.Flow.prefix_length do
    ignore (Sim.Scalar.step s1 prefix)
  done;
  let agree = ref 0 and total = ref 0 in
  for _ = 1 to 200 do
    let v = Sim.Vectors.to_v3 (Sim.Vectors.random_vector rng npi) in
    incr total;
    if Sim.Scalar.step s1 v = Sim.Scalar.step s2 v then incr agree
  done;
  Fmt.pr "behavioural agreement: %d/%d cycles@." !agree !total;

  (* structural attributes: what the paper shows does NOT change *)
  let so = Core.Cache.structural ~name:p.Core.Flow.name c in
  let sr = Core.Cache.structural ~name:(p.Core.Flow.name ^ ".re") re in
  Fmt.pr "sequential depth : %d -> %d (invariant)@."
    so.Analysis.Structural.seq_depth sr.Analysis.Structural.seq_depth;
  Fmt.pr "max cycle length : %d -> %d (invariant)@."
    so.Analysis.Structural.max_cycle_length
    sr.Analysis.Structural.max_cycle_length;
  Fmt.pr "counted cycles   : %d -> %d (counting artifact)@."
    so.Analysis.Structural.num_cycles sr.Analysis.Structural.num_cycles;

  (* what DOES change: the density of encoding *)
  let ro = Core.Cache.reach ~name:p.Core.Flow.name c in
  let rr = Core.Cache.reach ~name:(p.Core.Flow.name ^ ".re") re in
  Fmt.pr "density of encoding: %.2e -> %.2e@."
    (Analysis.Reach.density ro) (Analysis.Reach.density rr);

  (* and the ATPG cost *)
  let ao = Core.Cache.atpg Core.Cache.Hitec ~name:p.Core.Flow.name c in
  let ar = Core.Cache.atpg Core.Cache.Hitec ~name:(p.Core.Flow.name ^ ".re") re in
  let w r = Atpg.Types.work_units r.Atpg.Types.stats in
  Fmt.pr "ATPG original: FC %.1f%%, FE %.1f%%, %d work units@."
    ao.Atpg.Types.fault_coverage ao.Atpg.Types.fault_efficiency (w ao);
  Fmt.pr "ATPG retimed : FC %.1f%%, FE %.1f%%, %d work units@."
    ar.Atpg.Types.fault_coverage ar.Atpg.Types.fault_efficiency (w ar);
  Fmt.pr "CPU ratio (retimed / original): %.1f@."
    (float_of_int (w ar) /. float_of_int (max 1 (w ao)))
