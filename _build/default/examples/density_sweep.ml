(* Density-of-encoding sensitivity (the paper's Table 7 / Figure 3 study):
   one circuit, several progressively deeper retimings, each with the same
   function, depth and cycle structure — but ever sparser state encodings.

     dune exec examples/density_sweep.exe
*)

let () =
  Fmt.pr "Building s510.jo.sr and four retimed versions...@.";
  let versions = Core.Flow.sensitivity_versions () in
  Fmt.pr "%-18s %6s %5s %8s %10s %12s %8s %6s@." "circuit" "delay" "dff"
    "#valid" "density" "ATPG-work" "FC%" "FE%";
  List.iter
    (fun (name, c, period) ->
      let reach = Core.Cache.reach ~name c in
      let atpg = Core.Cache.atpg Core.Cache.Hitec ~name c in
      Fmt.pr "%-18s %6.2f %5d %8d %10.2e %12d %8.1f %6.1f@." name period
        (Netlist.Node.num_dffs c)
        reach.Analysis.Reach.valid_states
        (Analysis.Reach.density reach)
        (Atpg.Types.work_units atpg.Atpg.Types.stats)
        atpg.Atpg.Types.fault_coverage atpg.Atpg.Types.fault_efficiency)
    versions;
  Fmt.pr "@.The lower the density of encoding, the more work any given@.";
  Fmt.pr "fault-efficiency level costs (the paper's Figure 3):@.";
  Core.Figure3.pp Fmt.stdout (Core.Figure3.compute ())
