lib/atpg/types.mli: Fsim Hashtbl Sim
