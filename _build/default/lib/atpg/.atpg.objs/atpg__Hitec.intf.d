lib/atpg/hitec.mli: Netlist Types
