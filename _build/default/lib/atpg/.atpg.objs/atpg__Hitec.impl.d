lib/atpg/hitec.ml: Run Types
