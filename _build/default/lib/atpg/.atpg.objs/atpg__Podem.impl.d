lib/atpg/podem.ml: Array Frames Fsim Hashtbl Netlist Sim String Types
