lib/atpg/attest.mli: Netlist Types
