lib/atpg/sest.ml: Run Types
