lib/atpg/run.mli: Fsim Netlist Podem Sim Types
