lib/atpg/run.ml: Array Frames Fsim Hashtbl List Netlist Podem Random Sim String Types
