lib/atpg/types.ml: Array Fsim Hashtbl Sim Sys
