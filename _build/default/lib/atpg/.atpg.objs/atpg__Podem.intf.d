lib/atpg/podem.mli: Frames Fsim Hashtbl Netlist Sim Types
