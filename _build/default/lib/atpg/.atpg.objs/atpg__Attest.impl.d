lib/atpg/attest.ml: Array Fsim Hashtbl List Netlist Queue Random Run Sim Types
