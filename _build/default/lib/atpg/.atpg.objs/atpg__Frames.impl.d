lib/atpg/frames.ml: Array Fsim List Netlist Sim String Types
