lib/atpg/sest.mli: Netlist Types
