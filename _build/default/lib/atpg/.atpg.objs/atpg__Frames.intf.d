lib/atpg/frames.mli: Fsim Netlist Sim Types
