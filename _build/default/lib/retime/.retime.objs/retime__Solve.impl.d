lib/retime/solve.ml: Array Graph List Logs Netlist Queue
