lib/retime/apply.ml: Array Graph Hashtbl List Netlist Printf Queue Sim Solve
