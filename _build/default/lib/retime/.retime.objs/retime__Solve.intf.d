lib/retime/solve.mli: Graph
