lib/retime/graph.mli: Netlist
