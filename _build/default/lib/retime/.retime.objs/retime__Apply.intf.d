lib/retime/apply.mli: Graph Netlist
