lib/retime/graph.ml: Array Hashtbl List Netlist
