(* Materialize a retimed circuit from a retiming graph and a lag function.
   Register chains are shared per physical source: a source whose out-edges
   need depths w1 <= ... <= wk drives a single chain of wk DFFs with taps at
   the required depths (this is how retiming both moves and duplicates
   registers across fanout, the mechanism behind the paper's DFF growth).

   Register initial values are computed so that the retimed circuit from
   power-up behaves exactly like the original does after consuming
   [prefix_length] copies of [prefix_input] (all-zero by default; synthesis
   passes the reset vector for circuits with an explicit reset line, pinning
   the retimed power-up state to the original reset state).  This realizes
   the P ∪ T prefix of the paper's Theorem 1 footnote constructively. *)

let prefix_length g r =
  let depth = ref 0 in
  Array.iter
    (fun (e : Graph.edge) ->
      let w = Graph.retimed_weight g r e in
      if w > !depth then depth := w)
    g.Graph.edges;
  !depth + 1

let materialize ?prefix_input g r =
  if not (Graph.legal g r) then invalid_arg "Apply.materialize: illegal lags";
  let c = g.Graph.circuit in
  let is_const = Graph.const_dffs c in
  (* max retimed weight per physical source *)
  let maxw = Hashtbl.create 97 in
  Array.iter
    (fun (e : Graph.edge) ->
      let w = Graph.retimed_weight g r e in
      let cur = try Hashtbl.find maxw e.Graph.src_node with Not_found -> 0 in
      if w > cur then Hashtbl.replace maxw e.Graph.src_node w)
    g.Graph.edges;
  (* Consistent initial values: simulate the original circuit from power-up
     under T all-zero input vectors and record the history of every signal;
     a chain register holding source s delayed by d cycles powers up with
     the value s had at time T - d.  The retimed circuit then behaves, from
     power-up, exactly like the original does from cycle T onward. *)
  let prefix = prefix_length g r in
  let history = Array.make prefix [||] in
  let sim = Sim.Scalar.create c in
  let in_vector =
    match prefix_input with
    | Some v ->
      if Array.length v <> Netlist.Node.num_pis c then
        invalid_arg "Apply.materialize: prefix_input width";
      Array.map Sim.Value3.of_bool v
    | None -> Array.make (Netlist.Node.num_pis c) Sim.Value3.Zero
  in
  Sim.Scalar.reset sim;
  for t = 0 to prefix - 1 do
    Sim.Scalar.set_inputs sim in_vector;
    Sim.Scalar.eval_comb sim;
    history.(t) <-
      Array.init (Netlist.Node.num_nodes c) (fun id -> Sim.Scalar.value sim id);
    Sim.Scalar.tick sim
  done;
  (* value of source [s] delayed by [d] cycles at retimed power-up *)
  let init_of s d =
    match history.(prefix - d).(s) with
    | Sim.Value3.One -> true
    | Sim.Value3.Zero -> false
    | Sim.Value3.X -> false
  in
  let b = Netlist.Build.create () in
  let new_id = Array.make (Netlist.Node.num_nodes c) (-1) in
  (* primary inputs, in order *)
  Array.iter
    (fun id ->
      new_id.(id) <-
        Netlist.Build.add_pi b (Netlist.Node.node c id).Netlist.Node.name)
    c.Netlist.Node.pis;
  (* constant generators survive unchanged *)
  Array.iter
    (fun id ->
      if is_const.(id) then begin
        let nd = Netlist.Node.node c id in
        let d =
          Netlist.Build.add_dff b
            ~init:(Netlist.Node.dff_init c id)
            nd.Netlist.Node.name
        in
        Netlist.Build.connect_dff b d d;
        new_id.(id) <- d
      end)
    c.Netlist.Node.dffs;
  (* register chains (data connected after gates exist) *)
  let chains = Hashtbl.create 97 in
  Hashtbl.iter
    (fun src w ->
      if w > 0 then begin
        let name = (Netlist.Node.node c src).Netlist.Node.name in
        let chain =
          Array.init w (fun k ->
              Netlist.Build.add_dff b
                ~init:(init_of src (k + 1))
                (Printf.sprintf "rt_%s_%d" name (k + 1)))
        in
        Hashtbl.replace chains src chain
      end)
    maxw;
  (* gates in topological order of the zero-weight (combinational) subgraph *)
  let n = Graph.num_gates g in
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  let gate_edges = Array.make n [] in
  Array.iter
    (fun (e : Graph.edge) ->
      if e.Graph.dst_node >= 0 then begin
        let dv = g.Graph.vertex_of_gate.(e.Graph.dst_node) in
        gate_edges.(dv) <- e :: gate_edges.(dv);
        if Graph.retimed_weight g r e = 0 then
          match (Netlist.Node.node c e.Graph.src_node).Netlist.Node.kind with
          | Netlist.Node.Gate _ ->
            let sv = g.Graph.vertex_of_gate.(e.Graph.src_node) in
            indeg.(dv) <- indeg.(dv) + 1;
            succs.(sv) <- dv :: succs.(sv)
          | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ()
      end)
    g.Graph.edges;
  let tap src w =
    if w = 0 then new_id.(src)
    else (Hashtbl.find chains src).(w - 1)
  in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr processed;
    let gid = g.Graph.gates.(v) in
    let nd = Netlist.Node.node c gid in
    let fn =
      match nd.Netlist.Node.kind with
      | Netlist.Node.Gate fn -> fn
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> assert false
    in
    let fanins = Array.make (Array.length nd.Netlist.Node.fanins) (-1) in
    List.iter
      (fun (e : Graph.edge) ->
        fanins.(e.Graph.dst_pin) <-
          tap e.Graph.src_node (Graph.retimed_weight g r e))
      gate_edges.(v);
    new_id.(gid) <-
      Netlist.Build.add_gate b fn nd.Netlist.Node.name fanins;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      succs.(v)
  done;
  if !processed < n then
    failwith "Apply.materialize: retimed combinational subgraph is cyclic";
  (* connect the register chains *)
  Hashtbl.iter
    (fun src chain ->
      Array.iteri
        (fun k d ->
          let data = if k = 0 then new_id.(src) else chain.(k - 1) in
          Netlist.Build.connect_dff b d data)
        chain)
    chains;
  (* primary outputs *)
  Array.iter
    (fun (e : Graph.edge) ->
      if e.Graph.dst_node < 0 then begin
        let name, _ = c.Netlist.Node.pos.(e.Graph.po_index) in
        Netlist.Build.add_po b name
          (tap e.Graph.src_node (Graph.retimed_weight g r e))
      end)
    g.Graph.edges;
  let out = Netlist.Build.finalize b in
  Netlist.Check.assert_ok out;
  out

(* Full flows. *)
let retime_min_period ?prefix_input c =
  let g = Graph.of_netlist c in
  let r, period = Solve.min_period g in
  (materialize ?prefix_input g r, period)

let retime_to_period ?prefix_input c ~period =
  let g = Graph.of_netlist c in
  match Solve.retime_to_period g ~period with
  | None -> None
  | Some (r, p) -> Some (materialize ?prefix_input g r, p)

let retime_aggressive ?prefix_input ?max_lag ?max_regs_factor ?period_slack c
    =
  let g = Graph.of_netlist c in
  let r, period =
    Solve.aggressive g ?max_lag ?max_regs_factor ?period_slack ()
  in
  (materialize ?prefix_input g r, period, prefix_length g r)
