(** Retiming solvers: Leiserson–Saxe FEAS, minimum-period search, and the
    register-deepening pass that reproduces the paper's retimed circuit
    class. *)

(** Combinational arrival times under lag function [r] (edges of retimed
    weight <= 0 propagate); [None] if that subgraph is cyclic. *)
val arrivals : Graph.t -> int array -> float array option

(** Clock period achieved by a retiming (infinite when broken). *)
val period_of : Graph.t -> int array -> float

(** FEAS: a legal retiming meeting [period], or [None]. *)
val feas : Graph.t -> period:float -> int array option

(** Binary search for the minimum feasible period; returns the best legal
    retiming found and its period. *)
val min_period : ?iterations:int -> Graph.t -> int array * float

val retime_to_period : Graph.t -> period:float -> (int array * float) option

(** Greedy backward atomic moves (the paper's Figure 1) on top of a legal
    retiming: increment lags while legality, the [period] bound, the
    per-gate [max_lag] and the shared-register bound [max_regs] all hold.
    Mutates [r] in place. *)
val deepen :
  Graph.t -> int array -> period:float -> max_lag:int -> max_regs:int -> unit

(** Min-period retiming followed by deepening against the original period
    (times [1 + period_slack]); returns the lags and achieved period. *)
val aggressive :
  Graph.t ->
  ?max_lag:int ->
  ?max_regs_factor:int ->
  ?period_slack:float ->
  unit ->
  int array * float
