(** Retiming graph (Leiserson–Saxe): vertices are the combinational gates
    plus a host vertex standing for the environment (all PIs and POs);
    each edge carries the number of registers on that connection.

    Edges remember their physical source node so the retimed circuit can
    be materialized with per-source register-chain sharing.  Constant
    generators (self-looped DFFs modelling constants) are pinned to lag 0
    like the host. *)

type edge = {
  src_node : int;   (** netlist id: gate output, PI, or constant DFF *)
  weight : int;     (** registers along the connection *)
  dst_node : int;   (** reading gate id, or -1 for a primary output *)
  dst_pin : int;
  po_index : int;   (** PO index when [dst_node = -1], else -1 *)
}

type t = {
  circuit : Netlist.Node.t;
  gates : int array;            (** gate node ids, dense vertex order *)
  vertex_of_gate : int array;   (** node id -> dense vertex index, or -1 *)
  edges : edge array;
  delays : float array;         (** per dense vertex *)
}

val num_gates : t -> int

(** Flags the self-looped constant-generator DFFs of a circuit. *)
val const_dffs : Netlist.Node.t -> bool array

(** Walk a fanin back through its DFF chain: (source node, registers). *)
val trace_back : Netlist.Node.t -> bool array -> int -> int * int

val of_netlist : Netlist.Node.t -> t

(** Lag of a physical node under lag function [r] (host/constants: 0). *)
val lag : t -> int array -> int -> int

(** w_r(e) = w(e) + r(dst) - r(src). *)
val retimed_weight : t -> int array -> edge -> int

(** All retimed weights non-negative. *)
val legal : t -> int array -> bool

(** Register count after materialization with per-source chain sharing. *)
val total_registers_shared : t -> int array -> int
