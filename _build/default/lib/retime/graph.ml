(* Retiming graph (Leiserson–Saxe): vertices are the combinational gates
   plus a host vertex representing the environment (all PIs and POs); each
   edge carries the number of registers (DFFs) between its endpoints.

   Edges remember the physical source node (gate, PI or constant generator)
   so the retimed circuit can be materialized with per-source register-chain
   sharing.  Constant generators (self-looped DFFs used to model constants)
   are pinned to lag 0 like the host: their value never changes. *)

type edge = {
  src_node : int;               (* netlist id: gate output, PI, or const DFF *)
  weight : int;                 (* registers along the connection *)
  (* destination: either pin [dst_pin] of gate [dst_node], or primary output
     [po_index] when dst_node < 0 *)
  dst_node : int;
  dst_pin : int;
  po_index : int;
}

type t = {
  circuit : Netlist.Node.t;
  gates : int array;            (* netlist ids of gates, dense vertex order *)
  vertex_of_gate : int array;   (* netlist id -> dense vertex index, or -1 *)
  edges : edge array;
  delays : float array;         (* per dense vertex index *)
}

let num_gates g = Array.length g.gates

(* Detect constant DFFs: registers whose data-input chain loops back to
   themselves without passing through a gate. *)
let const_dffs c =
  let is_const = Array.make (Netlist.Node.num_nodes c) false in
  Array.iter
    (fun d ->
      let rec walk id steps seen =
        if steps > Netlist.Node.num_dffs c + 1 then false
        else
          match (Netlist.Node.node c id).Netlist.Node.kind with
          | Netlist.Node.Dff _ ->
            if List.mem id seen then true
            else
              walk
                (Netlist.Node.node c id).Netlist.Node.fanins.(0)
                (steps + 1) (id :: seen)
          | Netlist.Node.Pi _ | Netlist.Node.Gate _ -> false
      in
      if walk d 0 [] then is_const.(d) <- true)
    c.Netlist.Node.dffs;
  is_const

(* Walk backwards from a fanin through the DFF chain; returns (source node,
   register count).  Source is a gate, a PI, or a constant DFF. *)
let trace_back c is_const f =
  let rec walk id w =
    match (Netlist.Node.node c id).Netlist.Node.kind with
    | Netlist.Node.Dff _ when not is_const.(id) ->
      walk (Netlist.Node.node c id).Netlist.Node.fanins.(0) (w + 1)
    | Netlist.Node.Dff _ | Netlist.Node.Pi _ | Netlist.Node.Gate _ -> (id, w)
  in
  walk f 0

let of_netlist c =
  let is_const = const_dffs c in
  let gates = ref [] in
  Array.iter
    (fun (nd : Netlist.Node.node) ->
      match nd.Netlist.Node.kind with
      | Netlist.Node.Gate _ -> gates := nd.Netlist.Node.id :: !gates
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ())
    c.Netlist.Node.nodes;
  let gates = Array.of_list (List.rev !gates) in
  let vertex_of_gate = Array.make (Netlist.Node.num_nodes c) (-1) in
  Array.iteri (fun i id -> vertex_of_gate.(id) <- i) gates;
  let edges = ref [] in
  Array.iter
    (fun gid ->
      let nd = Netlist.Node.node c gid in
      Array.iteri
        (fun pin f ->
          let src_node, w = trace_back c is_const f in
          edges :=
            { src_node; weight = w; dst_node = gid; dst_pin = pin;
              po_index = -1 }
            :: !edges)
        nd.Netlist.Node.fanins)
    gates;
  Array.iteri
    (fun k (_, id) ->
      let src_node, w = trace_back c is_const id in
      edges :=
        { src_node; weight = w; dst_node = -1; dst_pin = 0; po_index = k }
        :: !edges)
    c.Netlist.Node.pos;
  let delays =
    Array.map
      (fun gid ->
        let nd = Netlist.Node.node c gid in
        match nd.Netlist.Node.kind with
        | Netlist.Node.Gate fn ->
          Netlist.Node.gate_delay fn (Array.length nd.Netlist.Node.fanins)
        | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> 0.0)
      gates
  in
  {
    circuit = c;
    gates;
    vertex_of_gate;
    edges = Array.of_list (List.rev !edges);
    delays;
  }

(* Lag of a physical node: gates carry the retiming value, PIs/POs (host)
   and constant generators are pinned to 0. *)
let lag g r node =
  if node < 0 then 0
  else
    match (Netlist.Node.node g.circuit node).Netlist.Node.kind with
    | Netlist.Node.Gate _ -> r.(g.vertex_of_gate.(node))
    | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> 0

let retimed_weight g r e = e.weight + lag g r e.dst_node - lag g r e.src_node

let legal g r = Array.for_all (fun e -> retimed_weight g r e >= 0) g.edges

(* Register count of the materialized circuit with per-source register-chain
   sharing: each physical source drives one chain as deep as its deepest
   out-edge. *)
let total_registers_shared g r =
  let best = Hashtbl.create 97 in
  Array.iter
    (fun e ->
      let w = retimed_weight g r e in
      let cur = try Hashtbl.find best e.src_node with Not_found -> 0 in
      if w > cur then Hashtbl.replace best e.src_node w)
    g.edges;
  Hashtbl.fold (fun _ w acc -> acc + w) best 0
