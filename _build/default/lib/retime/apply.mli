(** Materialization of retimed circuits, and the user-facing retiming
    flows.

    Register chains are shared per physical source: a source whose
    out-edges need register depths [w1 <= ... <= wk] drives a single chain
    of [wk] DFFs tapped at the required depths — the mechanism by which
    retiming both moves and multiplies registers across fanout (the DFF
    growth at the heart of the reproduced paper).

    Initial values of the new registers are computed by simulating the
    original circuit from power-up over a canonical input prefix, so the
    retimed circuit behaves from power-up exactly as the original does
    after consuming that prefix: the constructive form of the paper's
    [P ∪ T] footnote to Theorem 1, and a property the tests check cycle
    by cycle. *)

(** Length of the equivalence prefix for a given retiming: one more than
    the deepest retimed edge weight. *)
val prefix_length : Graph.t -> int array -> int

(** [materialize ?prefix_input g r] builds the circuit retimed by the lag
    function [r] (host pinned at 0).  [prefix_input] is the input vector
    held during the initial-value computation (all-zero by default; pass
    the reset vector for circuits with an explicit reset line so the
    retimed power-up state corresponds to the original reset state).
    @raise Invalid_argument if [r] is not a legal retiming. *)
val materialize :
  ?prefix_input:bool array -> Graph.t -> int array -> Netlist.Node.t

(** Minimum-period retiming (Leiserson–Saxe, FEAS + binary search);
    returns the retimed circuit and its achieved period. *)
val retime_min_period :
  ?prefix_input:bool array -> Netlist.Node.t -> Netlist.Node.t * float

(** Retiming to an explicit target period; [None] if infeasible. *)
val retime_to_period :
  ?prefix_input:bool array ->
  Netlist.Node.t ->
  period:float ->
  (Netlist.Node.t * float) option

(** The paper-flow "retime" step: minimum-period retiming followed by
    register-deepening within [period_slack] of the original period, lag
    per gate bounded by [max_lag] and total shared registers bounded by
    [max_regs_factor] times the original count.  Returns (retimed circuit,
    achieved period, equivalence-prefix length). *)
val retime_aggressive :
  ?prefix_input:bool array ->
  ?max_lag:int ->
  ?max_regs_factor:int ->
  ?period_slack:float ->
  Netlist.Node.t ->
  Netlist.Node.t * float * int
