lib/dft/scan_atpg.mli: Atpg Scan Sim
