lib/dft/scan_atpg.ml: Array Atpg Fsim List Netlist Scan Sim
