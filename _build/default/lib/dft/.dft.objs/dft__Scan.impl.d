lib/dft/scan.ml: Analysis Array List Netlist Printf Retime
