lib/dft/scan.mli: Netlist Sim
