(** PROOFS-style parallel-fault sequential simulator.

    Faults are packed into the bit lanes of machine words (one faulty
    machine per lane); all lanes consume the same input sequence from the
    power-up state, with each lane's DFF state diverging independently.
    The good machine is simulated once; a fault counts as detected the
    first cycle a primary output differs from the good value. *)

type run = {
  detected : bool array;   (** per fault index of the supplied array *)
  detect_time : int array; (** first differing cycle, [-1] if undetected *)
  good_states : int list;  (** distinct good-machine states, in visit order;
                               state = DFF vector packed little-endian *)
  cycles : int;            (** number of vectors applied *)
}

(** [simulate ?indices ?skip c faults vectors] fault-simulates [vectors]
    (applied from power-up) against [faults].  [indices] restricts which
    entries are simulated; [skip.(i) = true] excludes fault [i] (used for
    fault dropping).  Detection flags are indexed like [faults]. *)
val simulate :
  ?indices:int list ->
  ?skip:bool array ->
  Netlist.Node.t ->
  Fault.t array ->
  Sim.Vectors.sequence ->
  run

(** Does the sequence detect the single fault? *)
val detects : Netlist.Node.t -> Fault.t -> Sim.Vectors.sequence -> bool

(** Percentage helper: [coverage ~detected ~total]. *)
val coverage : detected:int -> total:int -> float
