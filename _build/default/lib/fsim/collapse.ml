(* Fault-list construction with structural equivalence collapsing:

   - stem faults (sa0, sa1) on every node with at least one reader
     (gate output, PI, DFF output);
   - branch (pin) faults only where the driving net has fanout > 1;
   - gate-rule equivalences then remove pin faults equivalent to the gate's
     output stem fault: sa(controlling value) on AND/NAND/OR/NOR inputs and
     both faults on BUF/NOT/DFF inputs.

   The result is a sound equivalence-collapsed list (dominance collapsing is
   deliberately not applied; the ATPGs treat each class representative). *)

let fanout_count c id = Array.length c.Netlist.Node.fanouts.(id)

let po_drivers c =
  let t = Hashtbl.create 17 in
  Array.iter (fun (_, id) -> Hashtbl.replace t id ()) c.Netlist.Node.pos;
  t

(* Is the pin fault (gate, pin, stuck) equivalent to a fault on the gate's
   own output stem? *)
let pin_fault_collapses fn stuck =
  match fn, stuck with
  | (Netlist.Node.And | Netlist.Node.Nand), false -> true
  | (Netlist.Node.Or | Netlist.Node.Nor), true -> true
  | (Netlist.Node.Not | Netlist.Node.Buf), _ -> true
  | (Netlist.Node.And | Netlist.Node.Nand), true -> false
  | (Netlist.Node.Or | Netlist.Node.Nor), false -> false
  | (Netlist.Node.Xor | Netlist.Node.Xnor), _ -> false

let list c =
  let pos = po_drivers c in
  let faults = ref [] in
  let add site stuck = faults := { Fault.site; stuck } :: !faults in
  Array.iter
    (fun (nd : Netlist.Node.node) ->
      let id = nd.Netlist.Node.id in
      let observable = fanout_count c id > 0 || Hashtbl.mem pos id in
      (* stems *)
      (match nd.Netlist.Node.kind with
       | Netlist.Node.Gate _ | Netlist.Node.Pi _ | Netlist.Node.Dff _ ->
         if observable then begin
           add (Fault.Stem id) false;
           add (Fault.Stem id) true
         end);
      (* branch pins *)
      match nd.Netlist.Node.kind with
      | Netlist.Node.Gate fn ->
        Array.iteri
          (fun pin src ->
            if fanout_count c src > 1 then begin
              if not (pin_fault_collapses fn false) then
                add (Fault.Pin { gate = id; pin }) false;
              if not (pin_fault_collapses fn true) then
                add (Fault.Pin { gate = id; pin }) true
            end)
          nd.Netlist.Node.fanins
      | Netlist.Node.Dff _ ->
        (* DFF data pin faults are equivalent to the DFF output stem *)
        ()
      | Netlist.Node.Pi _ -> ())
    c.Netlist.Node.nodes;
  Array.of_list (List.rev !faults)
