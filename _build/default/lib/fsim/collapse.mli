(** Fault-list construction with structural equivalence collapsing.

    The universe is: stem faults (sa0, sa1) on every driving node, plus
    branch (pin) faults only where the driving net has fanout > 1.
    Gate-rule equivalences then drop pin faults equivalent to the gate's
    output stem: sa(controlling value) on AND/NAND/OR/NOR inputs and both
    polarities on BUF/NOT/DFF data inputs.  Dominance collapsing is
    deliberately not applied. *)

(** The collapsed fault list, in deterministic node order. *)
val list : Netlist.Node.t -> Fault.t array

(** True when a pin fault on an [fn]-gate collapses into the gate's own
    output stem fault (exposed for tests). *)
val pin_fault_collapses : Netlist.Node.gate_fn -> bool -> bool
