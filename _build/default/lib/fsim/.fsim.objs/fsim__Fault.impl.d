lib/fsim/fault.ml: Array Netlist Printf Sim
