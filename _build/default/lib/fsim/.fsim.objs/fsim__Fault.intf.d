lib/fsim/fault.mli: Netlist Sim
