lib/fsim/engine.ml: Array Fault Hashtbl List Netlist Sim
