lib/fsim/engine.mli: Fault Netlist Sim
