lib/fsim/collapse.ml: Array Fault Hashtbl List Netlist
