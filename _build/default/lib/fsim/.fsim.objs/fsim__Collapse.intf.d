lib/fsim/collapse.mli: Fault Netlist
