(** Maximum sequential depth on the register graph (paper §4.2): the most
    DFFs on a source→sink path visiting each register at most once.

    Exhaustive DFS with a reachability upper bound and an expansion
    budget (the problem is NP-hard; [exact = false] reports a budget
    hit).  This is the relaxed register-level measurement; Table 5 uses
    the pair-exact gate-level {!Structural} variant instead. *)

type result = { depth : int; exact : bool }

val max_sequential_depth : ?budget:int -> Dffgraph.t -> result
