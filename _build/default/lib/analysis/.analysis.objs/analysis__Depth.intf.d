lib/analysis/depth.mli: Dffgraph
