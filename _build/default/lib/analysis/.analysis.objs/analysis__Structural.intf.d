lib/analysis/structural.mli: Netlist
