lib/analysis/reach.ml: Array Hashtbl List Netlist Queue Sim
