lib/analysis/dffgraph.ml: Array Hashtbl Netlist
