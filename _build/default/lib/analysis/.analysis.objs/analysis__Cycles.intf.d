lib/analysis/cycles.mli: Dffgraph
