lib/analysis/structural.ml: Array Hashtbl List Netlist Retime
