lib/analysis/cycles.ml: Array Dffgraph Hashtbl
