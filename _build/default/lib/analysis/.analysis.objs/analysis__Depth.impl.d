lib/analysis/depth.ml: Array Dffgraph
