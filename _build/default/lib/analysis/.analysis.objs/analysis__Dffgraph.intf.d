lib/analysis/dffgraph.mli: Netlist
