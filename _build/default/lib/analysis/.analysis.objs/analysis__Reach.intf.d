lib/analysis/reach.mli: Hashtbl Netlist
