(* Maximum sequential depth (paper §4.2): the greatest number of DFFs on a
   source -> sink path of the register graph that visits each register at
   most once.  Exhaustive DFS with a reachability-based upper-bound prune
   and an expansion budget (the problem is NP-hard; the budget is far above
   what the paper-scale circuits need, and hitting it is reported). *)

type result = { depth : int; exact : bool }

let max_sequential_depth ?(budget = 2_000_000) g =
  let n = Dffgraph.num_dffs g in
  let best = ref 0 in
  let expansions = ref 0 in
  let exact = ref true in
  (* upper bound: number of vertices reachable from v avoiding visited *)
  let reach_bound v visited =
    let seen = Array.copy visited in
    let count = ref 0 in
    let rec go u =
      if not seen.(u) then begin
        seen.(u) <- true;
        incr count;
        for w = 0 to n - 1 do
          if g.Dffgraph.adj.(u).(w) then go w
        done
      end
    in
    go v;
    !count
  in
  let visited = Array.make n false in
  let rec dfs v length =
    incr expansions;
    if !expansions > budget then exact := false
    else begin
      (* can we terminate at the sink here? *)
      if g.Dffgraph.to_sink.(v) && length > !best then best := length;
      for w = 0 to n - 1 do
        if g.Dffgraph.adj.(v).(w) && not visited.(w) then begin
          if length + reach_bound w visited > !best then begin
            visited.(w) <- true;
            dfs w (length + 1);
            visited.(w) <- false
          end
        end
      done
    end
  in
  (* a pure combinational PI -> PO path has depth 0 *)
  if g.Dffgraph.source_to_sink then best := 0;
  for v = 0 to n - 1 do
    if g.Dffgraph.from_source.(v) then begin
      visited.(v) <- true;
      dfs v 1;
      visited.(v) <- false
    end
  done;
  { depth = !best; exact = !exact }
