(* The register-level connectivity graph used by the structural-attribute
   measurements of the paper's Table 5: one vertex per DFF, plus a source
   (all primary inputs) and a sink (all primary outputs).  An edge u -> v
   means a purely combinational path exists from u's output to v's data
   input (or to a PO for the sink). *)

type t = {
  circuit : Netlist.Node.t;
  dffs : int array;              (* netlist ids, vertex order *)
  adj : bool array array;        (* dff x dff adjacency *)
  from_source : bool array;      (* PI -> dff combinational *)
  to_sink : bool array;          (* dff -> PO combinational *)
  source_to_sink : bool;         (* a pure PI -> PO path exists *)
}

let num_dffs g = Array.length g.dffs

(* Which DFF data inputs and POs are combinationally reachable from [start]
   (a PI or DFF output)?  Returns (dff hit flags, po hit). *)
let forward_cone c start ~dff_index =
  let hit = Array.make (Array.length c.Netlist.Node.dffs) false in
  let po = ref false in
  let po_ids = Hashtbl.create 17 in
  Array.iter (fun (_, id) -> Hashtbl.replace po_ids id ()) c.Netlist.Node.pos;
  let seen = Hashtbl.create 97 in
  (* traverse forward through gates only; note a node's value reaching a DFF
     means it feeds the DFF's data pin *)
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      if Hashtbl.mem po_ids id then po := true;
      Array.iter
        (fun s ->
          match (Netlist.Node.node c s).Netlist.Node.kind with
          | Netlist.Node.Gate _ -> go s
          | Netlist.Node.Dff _ -> hit.(dff_index.(s)) <- true
          | Netlist.Node.Pi _ -> ())
        c.Netlist.Node.fanouts.(id)
    end
  in
  (* the start node itself may directly drive a PO *)
  if Hashtbl.mem po_ids start then po := true;
  Array.iter
    (fun s ->
      match (Netlist.Node.node c s).Netlist.Node.kind with
      | Netlist.Node.Gate _ -> go s
      | Netlist.Node.Dff _ -> hit.(dff_index.(s)) <- true
      | Netlist.Node.Pi _ -> ())
    c.Netlist.Node.fanouts.(start);
  (hit, !po)

let of_netlist c =
  let dffs = c.Netlist.Node.dffs in
  let n = Array.length dffs in
  let dff_index = Array.make (Netlist.Node.num_nodes c) (-1) in
  Array.iteri (fun i id -> dff_index.(id) <- i) dffs;
  let adj = Array.make_matrix n n false in
  let to_sink = Array.make n false in
  Array.iteri
    (fun i id ->
      let hit, po = forward_cone c id ~dff_index in
      Array.blit hit 0 adj.(i) 0 n;
      to_sink.(i) <- po)
    dffs;
  let from_source = Array.make n false in
  let source_to_sink = ref false in
  Array.iter
    (fun pid ->
      let hit, po = forward_cone c pid ~dff_index in
      if po then source_to_sink := true;
      Array.iteri (fun j b -> if b then from_source.(j) <- true) hit)
    c.Netlist.Node.pis;
  { circuit = c; dffs; adj; from_source; to_sink; source_to_sink = !source_to_sink }

(* A PO may also be driven directly by a DFF or PI: covered above because
   fanouts include PO references only via the pos array, so check those
   explicitly. *)
let refine_direct g =
  let c = g.circuit in
  let dff_index = Array.make (Netlist.Node.num_nodes c) (-1) in
  Array.iteri (fun i id -> dff_index.(id) <- i) g.dffs;
  let src_sink = ref g.source_to_sink in
  let to_sink = Array.copy g.to_sink in
  Array.iter
    (fun (_, id) ->
      match (Netlist.Node.node c id).Netlist.Node.kind with
      | Netlist.Node.Dff _ -> to_sink.(dff_index.(id)) <- true
      | Netlist.Node.Pi _ -> src_sink := true
      | Netlist.Node.Gate _ -> ())
    c.Netlist.Node.pos;
  { g with to_sink; source_to_sink = !src_sink }

let build c = refine_direct (of_netlist c)
