(** The register-level connectivity graph behind the classical structural
    testability metrics: one vertex per DFF, plus a source (all primary
    inputs) and a sink (all primary outputs); an edge means a purely
    combinational path connects the two registers.

    Used by {!Depth} and {!Cycles} (the relaxed, register-level
    measurements) and by partial-scan selection; Table 5 itself uses the
    gate-level {!Structural} measurements instead, which are exact across
    original/retimed pairs. *)

type t = {
  circuit : Netlist.Node.t;
  dffs : int array;              (** netlist ids, vertex order *)
  adj : bool array array;        (** dff x dff combinational adjacency *)
  from_source : bool array;      (** some PI reaches the dff's data pin *)
  to_sink : bool array;          (** the dff reaches some PO *)
  source_to_sink : bool;         (** a pure PI -> PO path exists *)
}

val num_dffs : t -> int

(** Build the graph (includes direct DFF/PI-to-PO connections). *)
val build : Netlist.Node.t -> t
