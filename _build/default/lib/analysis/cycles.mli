(** Register-level cycle statistics in the style of Lioy et al. [17]:
    simple cycles of the register graph, counted at most once per DFF
    set — the algorithm whose counting behaviour the paper dissects
    around its Figure 2.

    Root-restricted DFS with set-deduplication and an expansion budget.
    Table 5 uses the pair-exact gate-level {!Structural} variant; this
    register-level one serves the comparison tests. *)

type result = {
  num_cycles : int;   (** distinct DFF sets forming a simple cycle *)
  max_length : int;   (** most DFFs in any counted cycle *)
  exact : bool;
}

val count : ?budget:int -> Dffgraph.t -> result
