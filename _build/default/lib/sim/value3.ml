(* Three-valued logic (0, 1, X) used by the scalar simulator, reachability
   and as the ground domain under the ATPG's five-valued algebra. *)

type t = Zero | One | X

let to_char = function Zero -> '0' | One -> '1' | X -> 'x'

let of_bool b = if b then One else Zero

let to_bool_opt = function Zero -> Some false | One -> Some true | X -> None

let equal (a : t) (b : t) = a = b

let v_not = function Zero -> One | One -> Zero | X -> X

let v_and a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | _ -> X

let v_or a b =
  match a, b with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | _ -> X

let v_xor a b =
  match a, b with
  | X, _ | _, X -> X
  | One, One | Zero, Zero -> Zero
  | One, Zero | Zero, One -> One

(* [refines a b]: does the (possibly X) value [a] refine to [b] once Xs are
   filled in — i.e. is [b] a possible concretization of [a]?  Used by the
   X-monotonicity property tests. *)
let compatible a b =
  match a, b with
  | X, _ | _, X -> true
  | One, One | Zero, Zero -> true
  | One, Zero | Zero, One -> false

let eval_gate fn (inputs : t array) =
  let fold op unit_ =
    let acc = ref unit_ in
    Array.iter (fun v -> acc := op !acc v) inputs;
    !acc
  in
  match fn with
  | Netlist.Node.Buf -> inputs.(0)
  | Netlist.Node.Not -> v_not inputs.(0)
  | Netlist.Node.And -> fold v_and One
  | Netlist.Node.Nand -> v_not (fold v_and One)
  | Netlist.Node.Or -> fold v_or Zero
  | Netlist.Node.Nor -> v_not (fold v_or Zero)
  | Netlist.Node.Xor -> v_xor inputs.(0) (inputs.(1))
  | Netlist.Node.Xnor -> v_not (v_xor inputs.(0) (inputs.(1)))

let pp ppf v = Fmt.char ppf (to_char v)
