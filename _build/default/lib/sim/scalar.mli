(** Scalar three-valued sequential simulator: one {!Value3.t} per node,
    full levelized sweep per cycle.  The reference semantics every other
    engine is tested against. *)

type t

val create : Netlist.Node.t -> t
val circuit : t -> Netlist.Node.t

(** Load the power-up state (every DFF takes its declared init). *)
val reset : t -> unit

(** Load an arbitrary state (one value per DFF, state-vector order). *)
val set_state : t -> Value3.t array -> unit

val get_state : t -> Value3.t array
val set_inputs : t -> Value3.t array -> unit

(** Evaluate combinational logic and capture DFF data inputs (no clock). *)
val eval_comb : t -> unit

(** Advance the clock: DFF outputs take the captured data values. *)
val tick : t -> unit

(** Primary-output values of the current cycle (after {!eval_comb}). *)
val outputs : t -> Value3.t array

(** Current value of any node. *)
val value : t -> int -> Value3.t

(** [step t v]: set inputs, evaluate, read outputs, clock. *)
val step : t -> Value3.t array -> Value3.t array

(** Run a whole sequence from power-up; per-cycle outputs. *)
val run : t -> Value3.t array list -> Value3.t array list

(** One transition from an explicit state: returns (outputs, next state).
    Leaves the simulator in the post-evaluation (pre-tick) state. *)
val transition :
  t -> state:Value3.t array -> inputs:Value3.t array ->
  Value3.t array * Value3.t array
