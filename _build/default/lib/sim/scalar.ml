(* Scalar three-valued sequential simulator.  One value per node; evaluation
   is a full levelized sweep per cycle (circuits here are small, so the
   simplicity beats event-driven bookkeeping). *)

type t = {
  circuit : Netlist.Node.t;
  values : Value3.t array;      (* current cycle value of every node *)
  next_state : Value3.t array;  (* latched DFF data, indexed by DFF position *)
}

let create circuit =
  {
    circuit;
    values = Array.make (Netlist.Node.num_nodes circuit) Value3.X;
    next_state = Array.make (Netlist.Node.num_dffs circuit) Value3.X;
  }

let circuit t = t.circuit

(* Load the power-up state: every DFF takes its declared init value. *)
let reset t =
  Array.iteri
    (fun _ id ->
      t.values.(id) <- Value3.of_bool (Netlist.Node.dff_init t.circuit id))
    t.circuit.Netlist.Node.dffs;
  Array.iter (fun id -> t.values.(id) <- Value3.X) t.circuit.Netlist.Node.pis

(* Load an arbitrary state vector (Value3 per DFF, in dff order). *)
let set_state t state =
  Array.iteri (fun i id -> t.values.(id) <- state.(i)) t.circuit.Netlist.Node.dffs

let get_state t =
  Array.map (fun id -> t.values.(id)) t.circuit.Netlist.Node.dffs

let set_inputs t inputs =
  Array.iteri (fun i id -> t.values.(id) <- inputs.(i)) t.circuit.Netlist.Node.pis

(* Evaluate all combinational logic for the current cycle and capture DFF
   data inputs, without advancing the clock. *)
let eval_comb t =
  let c = t.circuit in
  Array.iter
    (fun id ->
      let nd = Netlist.Node.node c id in
      match nd.Netlist.Node.kind with
      | Netlist.Node.Gate fn ->
        let ins =
          Array.map (fun f -> t.values.(f)) nd.Netlist.Node.fanins
        in
        t.values.(id) <- Value3.eval_gate fn ins
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ())
    c.Netlist.Node.order;
  Array.iteri
    (fun i id ->
      let nd = Netlist.Node.node c id in
      t.next_state.(i) <- t.values.(nd.Netlist.Node.fanins.(0)))
    c.Netlist.Node.dffs

(* Advance the clock: DFF outputs take the captured data values. *)
let tick t =
  Array.iteri
    (fun i id -> t.values.(id) <- t.next_state.(i))
    t.circuit.Netlist.Node.dffs

let outputs t =
  Array.map (fun (_, id) -> t.values.(id)) t.circuit.Netlist.Node.pos

let value t id = t.values.(id)

(* Apply one input vector: evaluate, read outputs, clock. *)
let step t inputs =
  set_inputs t inputs;
  eval_comb t;
  let out = outputs t in
  tick t;
  out

(* Run a sequence of input vectors from the power-up state; returns the
   per-cycle output vectors. *)
let run t vectors =
  reset t;
  List.map (fun v -> step t v) vectors

(* Next-state function evaluation without touching the simulator state
   beyond scratch: from [state] under [inputs], return (outputs, next). *)
let transition t ~state ~inputs =
  set_state t state;
  set_inputs t inputs;
  eval_comb t;
  let out = outputs t in
  (out, Array.copy t.next_state)
