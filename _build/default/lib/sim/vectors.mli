(** Input-vector helpers shared by fault simulation, ATPG and tests. *)

type vector = bool array

(** A test sequence, applied from the power-up state, one vector/cycle. *)
type sequence = vector list

val vector_to_string : vector -> string

(** @raise Invalid_argument on characters other than '0'/'1'. *)
val vector_of_string : string -> vector

val to_v3 : vector -> Value3.t array

(** Concretize a 3-valued vector; X positions take [default]. *)
val of_v3 : ?default:bool -> Value3.t array -> vector

val random_vector : Random.State.t -> int -> vector
val random_sequence : Random.State.t -> width:int -> length:int -> sequence

(** All [2^n] vectors (small [n] only). *)
val enumerate : int -> vector list

(** All [2^n] vectors packed into parallel-simulation words: list of
    (lane count, per-input word); lane [l] of chunk [k] encodes the vector
    with code [k * Parallel.word_bits + l]. *)
val enumerate_words : int -> (int * int array) list
