(* Input-vector helpers shared by fault simulation, ATPG and tests. *)

type vector = bool array
type sequence = vector list

let vector_to_string v =
  String.init (Array.length v) (fun i -> if v.(i) then '1' else '0')

let vector_of_string s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | '1' -> true
      | '0' -> false
      | c -> invalid_arg (Printf.sprintf "Vectors.vector_of_string: %c" c))

let to_v3 v = Array.map Value3.of_bool v

(* Concretize a 3-valued vector: X positions take [default]. *)
let of_v3 ?(default = false) v =
  Array.map
    (fun x ->
      match Value3.to_bool_opt x with Some b -> b | None -> default)
    v

let random_vector rng n = Array.init n (fun _ -> Random.State.bool rng)

let random_sequence rng ~width ~length =
  List.init length (fun _ -> random_vector rng width)

(* Enumerate all 2^n input vectors for small n (reachability uses this). *)
let enumerate n =
  if n > 20 then invalid_arg "Vectors.enumerate: too many inputs";
  List.init (1 lsl n) (fun code ->
      Array.init n (fun i -> (code lsr i) land 1 = 1))

(* All 2^n vectors packed into words of [Parallel.word_bits] lanes: returns a
   list of (lane_count, per-input word array).  Lane l of chunk k encodes the
   vector with code k*word_bits + l. *)
let enumerate_words n =
  if n > 20 then invalid_arg "Vectors.enumerate_words: too many inputs";
  let total = 1 lsl n in
  let chunk_size = Parallel.word_bits in
  let rec chunks start acc =
    if start >= total then List.rev acc
    else
      let lanes = min chunk_size (total - start) in
      let words =
        Array.init n (fun i ->
            let w = ref 0 in
            for l = 0 to lanes - 1 do
              let code = start + l in
              if (code lsr i) land 1 = 1 then w := !w lor (1 lsl l)
            done;
            !w)
      in
      chunks (start + lanes) ((lanes, words) :: acc)
  in
  chunks 0 []
