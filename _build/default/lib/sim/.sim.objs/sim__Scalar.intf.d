lib/sim/scalar.mli: Netlist Value3
