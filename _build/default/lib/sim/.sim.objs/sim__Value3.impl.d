lib/sim/value3.ml: Array Fmt Netlist
