lib/sim/parallel.mli: Netlist
