lib/sim/value3.mli: Format Netlist
