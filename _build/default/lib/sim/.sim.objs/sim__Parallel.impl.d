lib/sim/parallel.ml: Array Hashtbl Netlist
