lib/sim/vectors.mli: Random Value3
