lib/sim/scalar.ml: Array List Netlist Value3
