lib/sim/vectors.ml: Array List Parallel Printf Random String Value3
