(** Three-valued logic (0, 1, X) — the ground domain of the scalar
    simulator, reachability analysis, and (paired good/faulty) the ATPG's
    five-valued algebra.  X is "unknown": all operators are monotone with
    respect to refinement of X into 0/1 (property-tested). *)

type t = Zero | One | X

val to_char : t -> char
val of_bool : bool -> t

(** [Some b] for definite values, [None] for X. *)
val to_bool_opt : t -> bool option

val equal : t -> t -> bool

val v_not : t -> t
val v_and : t -> t -> t
val v_or : t -> t -> t
val v_xor : t -> t -> t

(** [compatible a b]: can [a] (possibly X) refine to [b]?  X is compatible
    with everything; definite values only with themselves. *)
val compatible : t -> t -> bool

(** Evaluate a gate function over three-valued inputs. *)
val eval_gate : Netlist.Node.gate_fn -> t array -> t

val pp : Format.formatter -> t -> unit
