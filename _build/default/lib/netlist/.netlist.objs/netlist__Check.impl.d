lib/netlist/check.ml: Array Hashtbl List Node Printf
