lib/netlist/build.mli: Node
