lib/netlist/verilog.mli: Node
