lib/netlist/blif.mli: Node
