lib/netlist/node.ml: Array Fmt String
