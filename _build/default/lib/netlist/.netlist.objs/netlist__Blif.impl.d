lib/netlist/blif.ml: Array Buffer Build Hashtbl List Node Option Printf String
