lib/netlist/build.ml: Array List Node Printf
