lib/netlist/verilog.ml: Array Buffer List Node Printf String
