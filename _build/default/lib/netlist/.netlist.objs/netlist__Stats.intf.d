lib/netlist/stats.mli: Format Node
