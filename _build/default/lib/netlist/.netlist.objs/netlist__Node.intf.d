lib/netlist/node.mli: Format
