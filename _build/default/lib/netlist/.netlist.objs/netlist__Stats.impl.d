lib/netlist/stats.ml: Array Fmt Hashtbl Node
