lib/netlist/check.mli: Node
