(** Mutable netlist builder.  Create nodes first (DFF data inputs may be
    connected later, so state feedback loops can be closed), then
    {!finalize} freezes the circuit, computes fanouts and a combinational
    topological order, and rejects combinational cycles. *)

exception Combinational_cycle of string
(** Carries the name of a node on the cycle. *)

type t

val create : unit -> t

(** Returns the new node's id (dense, creation order). *)
val add_pi : t -> string -> int

val add_dff : t -> ?init:bool -> string -> int

(** Connect a DFF's data input (any time before {!finalize}). *)
val connect_dff : t -> int -> int -> unit

(** @raise Invalid_argument on an arity the function does not admit. *)
val add_gate : t -> Node.gate_fn -> string -> int array -> int

val add_po : t -> string -> int -> unit

(** Constant generator: a self-looped DFF holding [value] forever. *)
val add_const : t -> string -> bool -> int

(** @raise Combinational_cycle / [Invalid_argument] on malformed input. *)
val finalize : t -> Node.t
