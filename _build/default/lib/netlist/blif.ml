(* BLIF interchange (the SIS-era netlist format).

   Writer: gates become single-output .names truth tables; DFFs become
   .latch lines with explicit init values.

   Reader: each .names cover is rebuilt as OR-of-ANDs over (possibly
   inverted) fanins; .latch creates a DFF.  Only the subset SIS itself
   emits for mapped circuits is supported: single-output covers whose
   lines are input cubes with output value 1 (or a constant table). *)

exception Parse_error of int * string

(* ---------------------------------------------------------------- writer - *)

let gate_table fn arity =
  (* lines of the .names truth table for the gate function *)
  let dashes_with i ch =
    String.init arity (fun k -> if k = i then ch else '-')
  in
  match fn with
  | Node.Buf -> [ "1 1" ]
  | Node.Not -> [ "0 1" ]
  | Node.And -> [ String.make arity '1' ^ " 1" ]
  | Node.Nand -> List.init arity (fun i -> dashes_with i '0' ^ " 1")
  | Node.Or -> List.init arity (fun i -> dashes_with i '1' ^ " 1")
  | Node.Nor -> [ String.make arity '0' ^ " 1" ]
  | Node.Xor -> [ "10 1"; "01 1" ]
  | Node.Xnor -> [ "11 1"; "00 1" ]

let to_string ?(model = "satpg") c =
  let buf = Buffer.create 4096 in
  let name id = (Node.node c id).Node.name in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" model);
  Buffer.add_string buf ".inputs";
  Array.iter (fun id -> Buffer.add_string buf (" " ^ name id)) c.Node.pis;
  Buffer.add_string buf "\n.outputs";
  Array.iter (fun (po, _) -> Buffer.add_string buf (" " ^ po)) c.Node.pos;
  Buffer.add_string buf "\n";
  Array.iter
    (fun id ->
      let nd = Node.node c id in
      Buffer.add_string buf
        (Printf.sprintf ".latch %s %s 3 clk %d\n"
           (name nd.Node.fanins.(0)) (name id)
           (if Node.dff_init c id then 1 else 0)))
    c.Node.dffs;
  Array.iter
    (fun id ->
      let nd = Node.node c id in
      match nd.Node.kind with
      | Node.Gate fn ->
        Buffer.add_string buf ".names";
        Array.iter (fun f -> Buffer.add_string buf (" " ^ name f)) nd.Node.fanins;
        Buffer.add_string buf (" " ^ nd.Node.name ^ "\n");
        List.iter
          (fun line -> Buffer.add_string buf (line ^ "\n"))
          (gate_table fn (Array.length nd.Node.fanins))
      | Node.Pi _ | Node.Dff _ -> ())
    c.Node.order;
  (* alias POs driven by non-gate nodes or with names differing from their
     driver *)
  Array.iter
    (fun (po, id) ->
      if not (String.equal po (name id)) then
        Buffer.add_string buf
          (Printf.sprintf ".names %s %s\n1 1\n" (name id) po))
    c.Node.pos;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

(* ---------------------------------------------------------------- reader - *)

type raw_names = { inputs : string list; output : string; lines : string list }

let tokenize line =
  String.split_on_char ' ' line |> List.filter (fun s -> String.length s > 0)

let parse_string text =
  (* first pass: gather sections, honoring '\' continuations *)
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '#')
  in
  let rec join = function
    | [] -> []
    | l :: rest when String.length l > 0 && l.[String.length l - 1] = '\\' ->
      (match join rest with
       | next :: more -> (String.sub l 0 (String.length l - 1) ^ " " ^ next) :: more
       | [] -> [ String.sub l 0 (String.length l - 1) ])
    | l :: rest -> l :: join rest
  in
  let lines = join lines in
  let inputs = ref [] and outputs = ref [] in
  let latches = ref [] in
  let names : raw_names list ref = ref [] in
  let current = ref None in
  let flush_current () =
    match !current with
    | Some n -> names := { n with lines = List.rev n.lines } :: !names
    | None -> ()
  in
  List.iteri
    (fun lineno line ->
      let lineno = lineno + 1 in
      match tokenize line with
      | ".model" :: _ | ".end" :: _ -> flush_current (); current := None
      | ".inputs" :: rest ->
        flush_current (); current := None;
        inputs := !inputs @ rest
      | ".outputs" :: rest ->
        flush_current (); current := None;
        outputs := !outputs @ rest
      | ".latch" :: data :: out :: rest ->
        flush_current (); current := None;
        let init =
          match List.rev rest with
          | "1" :: _ -> true
          | _ -> false
        in
        latches := (data, out, init) :: !latches
      | ".names" :: signals ->
        flush_current ();
        (match List.rev signals with
         | output :: rev_inputs ->
           current := Some { inputs = List.rev rev_inputs; output; lines = [] }
         | [] -> raise (Parse_error (lineno, "empty .names")))
      | tok :: _ when tok.[0] = '.' ->
        raise (Parse_error (lineno, "unsupported directive " ^ tok))
      | toks ->
        (match !current with
         | Some n -> current := Some { n with lines = String.concat " " toks :: n.lines }
         | None -> raise (Parse_error (lineno, "table line outside .names"))))
    lines;
  flush_current ();
  let names = List.rev !names in
  let latches = List.rev !latches in
  (* build netlist *)
  let b = Build.create () in
  let env = Hashtbl.create 97 in
  let fresh =
    let k = ref 0 in
    fun base -> incr k; Printf.sprintf "%s_blif%d" base !k
  in
  List.iter (fun n -> Hashtbl.replace env n (Build.add_pi b n)) !inputs;
  List.iter
    (fun (_, out, init) -> Hashtbl.replace env out (Build.add_dff b ~init out))
    latches;
  (* .names in dependency order: iterate until all resolve *)
  let pending = ref names in
  let progress = ref true in
  let resolve s = Hashtbl.find_opt env s in
  let build_names (n : raw_names) ids =
    let arity = List.length n.inputs in
    let ids = Array.of_list ids in
    (* constant table *)
    if arity = 0 then begin
      let v = List.exists (fun l -> String.trim l = "1") n.lines in
      Build.add_const b n.output v
    end
    else begin
      let inv = Hashtbl.create 7 in
      let invert id =
        match Hashtbl.find_opt inv id with
        | Some v -> v
        | None ->
          let v = Build.add_gate b Node.Not (fresh n.output) [| id |] in
          Hashtbl.add inv id v;
          v
      in
      let term line =
        match tokenize line with
        | [ cube; "1" ] when String.length cube = arity ->
          let lits = ref [] in
          String.iteri
            (fun i ch ->
              match ch with
              | '1' -> lits := ids.(i) :: !lits
              | '0' -> lits := invert ids.(i) :: !lits
              | '-' -> ()
              | _ -> raise (Parse_error (0, "bad cube char")))
            cube;
          (match !lits with
           | [] -> Build.add_const b (fresh n.output) true
           | [ one ] -> one
           | many ->
             Build.add_gate b Node.And (fresh n.output)
               (Array.of_list (List.rev many)))
        | _ -> raise (Parse_error (0, "unsupported table line: " ^ line))
      in
      match List.map term n.lines with
      | [] -> Build.add_const b n.output false
      | [ one ] -> one
      | many -> Build.add_gate b Node.Or (fresh (n.output ^ "_or"))
                  (Array.of_list many)
    end
  in
  while !progress && !pending <> [] do
    progress := false;
    pending :=
      List.filter
        (fun (n : raw_names) ->
          match List.map resolve n.inputs with
          | ids when List.for_all (fun o -> o <> None) ids ->
            let ids = List.map Option.get ids in
            Hashtbl.replace env n.output (build_names n ids);
            progress := true;
            false
          | _ -> true)
        !pending
  done;
  if !pending <> [] then
    raise (Parse_error (0, "unresolvable .names (combinational loop?)"));
  List.iter
    (fun (data, out, _) ->
      match resolve data with
      | Some id -> Build.connect_dff b (Hashtbl.find env out) id
      | None -> raise (Parse_error (0, "latch data " ^ data ^ " undefined")))
    latches;
  List.iter
    (fun po ->
      match resolve po with
      | Some id -> Build.add_po b po id
      | None -> raise (Parse_error (0, "output " ^ po ^ " undefined")))
    !outputs;
  Build.finalize b
