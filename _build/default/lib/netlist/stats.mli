(** Structural statistics and cone-traversal helpers. *)

type t = {
  pis : int;
  pos : int;
  dffs : int;
  gates : int;
  by_fn : (Node.gate_fn * int) list;  (** gate histogram *)
  max_fanin : int;
  max_fanout : int;
  levels : int;                        (** combinational depth in gates *)
  area : float;
  delay : float;
}

val of_circuit : Node.t -> t
val pp : Format.formatter -> t -> unit

(** Transitive fanin cone of a node, stopping at PIs and DFF outputs. *)
val comb_fanin_cone : Node.t -> int -> int list

(** Nodes combinationally reachable from a node (through gates, stopping
    at DFF data inputs); reached DFFs are included. *)
val comb_fanout_cone : Node.t -> int -> int list
