(** Structural Verilog writer (synthesizable subset): gate assigns plus
    one clocked always-block for the DFFs, with power-up values as reg
    initializers.  Write-only; the stack's netlist reader is {!Blif}. *)

val to_string : ?module_name:string -> Node.t -> string
