(** BLIF interchange — the SIS-era netlist format.

    Writer: every gate becomes a single-output [.names] truth table and
    every DFF a [.latch] with an explicit init value.  Reader: the subset
    SIS emits for mapped circuits — single-output on-set covers
    (output value 1 per line), [.latch], ['\\'] continuations, comments.
    A write/parse round-trip is behaviour-preserving (tested). *)

exception Parse_error of int * string

(** Truth-table lines for a gate (exposed for tests). *)
val gate_table : Node.gate_fn -> int -> string list

val to_string : ?model:string -> Node.t -> string

(** @raise Parse_error on malformed or unsupported input. *)
val parse_string : string -> Node.t
