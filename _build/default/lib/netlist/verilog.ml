(* Structural Verilog writer (synthesizable subset): one module with gate
   primitives and always-block DFFs, for handing circuits to external
   tools or waveform viewers.  Write-only: the stack's interchange reader
   is BLIF (Blif.parse_string). *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let gate_expr fn operands =
  let join op = String.concat (" " ^ op ^ " ") operands in
  match (fn : Node.gate_fn) with
  | Node.Buf -> List.nth operands 0
  | Node.Not -> "~" ^ List.nth operands 0
  | Node.And -> join "&"
  | Node.Nand -> "~(" ^ join "&" ^ ")"
  | Node.Or -> join "|"
  | Node.Nor -> "~(" ^ join "|" ^ ")"
  | Node.Xor -> join "^"
  | Node.Xnor -> "~(" ^ join "^" ^ ")"

let to_string ?(module_name = "satpg") c =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let wire id = sanitize (Node.node c id).Node.name in
  let po_names = Array.map (fun (po, _) -> sanitize po) c.Node.pos in
  add "module %s(clk" (sanitize module_name);
  Array.iter (fun id -> add ", %s" (wire id)) c.Node.pis;
  Array.iter (fun po -> add ", %s" po) po_names;
  add ");\n  input clk;\n";
  Array.iter (fun id -> add "  input %s;\n" (wire id)) c.Node.pis;
  Array.iter (fun po -> add "  output %s;\n" po) po_names;
  Array.iter
    (fun id ->
      add "  reg %s = 1'b%d;\n" (wire id) (if Node.dff_init c id then 1 else 0))
    c.Node.dffs;
  Array.iter
    (fun (nd : Node.node) ->
      match nd.Node.kind with
      | Node.Gate _ -> add "  wire %s;\n" (sanitize nd.Node.name)
      | Node.Pi _ | Node.Dff _ -> ())
    c.Node.nodes;
  Array.iter
    (fun id ->
      let nd = Node.node c id in
      match nd.Node.kind with
      | Node.Gate fn ->
        let ops = Array.to_list (Array.map wire nd.Node.fanins) in
        add "  assign %s = %s;\n" (wire id) (gate_expr fn ops)
      | Node.Pi _ | Node.Dff _ -> ())
    c.Node.order;
  add "  always @(posedge clk) begin\n";
  Array.iter
    (fun id ->
      let nd = Node.node c id in
      add "    %s <= %s;\n" (wire id) (wire nd.Node.fanins.(0)))
    c.Node.dffs;
  add "  end\n";
  Array.iteri
    (fun k (_, id) -> add "  assign %s = %s;\n" po_names.(k) (wire id))
    c.Node.pos;
  add "endmodule\n";
  Buffer.contents buf
