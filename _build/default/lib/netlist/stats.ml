(* Structural statistics and traversal helpers. *)

type t = {
  pis : int;
  pos : int;
  dffs : int;
  gates : int;
  by_fn : (Node.gate_fn * int) list;
  max_fanin : int;
  max_fanout : int;
  levels : int;
  area : float;
  delay : float;
}

let of_circuit c =
  let counts = Hashtbl.create 17 in
  let max_fanin = ref 0 in
  Array.iter
    (fun nd ->
      match nd.Node.kind with
      | Node.Gate fn ->
        let cur = try Hashtbl.find counts fn with Not_found -> 0 in
        Hashtbl.replace counts fn (cur + 1);
        let a = Array.length nd.Node.fanins in
        if a > !max_fanin then max_fanin := a
      | Node.Pi _ | Node.Dff _ -> ())
    c.Node.nodes;
  let max_fanout =
    Array.fold_left (fun acc fo -> max acc (Array.length fo)) 0 c.Node.fanouts
  in
  let levels = Array.fold_left max 0 c.Node.level in
  {
    pis = Node.num_pis c;
    pos = Node.num_pos c;
    dffs = Node.num_dffs c;
    gates = Node.num_gates c;
    by_fn = Hashtbl.fold (fun fn n acc -> (fn, n) :: acc) counts [];
    max_fanin = !max_fanin;
    max_fanout;
    levels;
    area = Node.area c;
    delay = Node.critical_path c;
  }

let pp ppf s =
  Fmt.pf ppf "PI=%d PO=%d DFF=%d gates=%d levels=%d area=%.1f delay=%.2f"
    s.pis s.pos s.dffs s.gates s.levels s.area s.delay

(* Transitive fanin cone of a node, stopping at PIs and DFF outputs. *)
let comb_fanin_cone c id =
  let seen = Hashtbl.create 97 in
  let acc = ref [] in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      acc := id :: !acc;
      match (Node.node c id).Node.kind with
      | Node.Gate _ -> Array.iter go (Node.node c id).Node.fanins
      | Node.Pi _ | Node.Dff _ -> ()
    end
  in
  go id;
  !acc

(* Nodes combinationally reachable from [id] (through gates, stopping at DFF
   data inputs and POs). *)
let comb_fanout_cone c id =
  let seen = Hashtbl.create 97 in
  let acc = ref [] in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      acc := id :: !acc;
      Array.iter
        (fun s ->
          match (Node.node c s).Node.kind with
          | Node.Gate _ -> go s
          | Node.Dff _ ->
            if not (Hashtbl.mem seen s) then begin
              Hashtbl.add seen s ();
              acc := s :: !acc
            end
          | Node.Pi _ -> ())
        c.Node.fanouts.(id)
    end
  in
  go id;
  !acc
