(** Espresso-lite: the EXPAND / IRREDUNDANT / REDUCE iteration on
    single-output covers.

    Guarantees (property-tested against truth tables): the result covers
    the ON-set and stays inside ON ∪ DC; the cube count never exceeds the
    containment-pruned input. *)

type cost = { cubes : int; lits : int }

val cost : Cover.t -> cost
val better : cost -> cost -> bool

(** Raise literals of each cube to don't-care as long as the cube stays
    disjoint from the OFF-set; swallowed cubes are dropped. *)
val expand : Cover.t -> off:Cover.t -> Cover.t

(** Greedily delete cubes covered by the rest of the cover plus [dc]. *)
val irredundant : Cover.t -> dc:Cover.t -> Cover.t

(** Shrink each cube to the smallest cube still covering what it alone
    covers (classic REDUCE), enabling the next EXPAND to escape local
    minima. *)
val reduce : Cover.t -> dc:Cover.t -> Cover.t

(** The main loop; iterates REDUCE/EXPAND/IRREDUNDANT from an initial
    EXPAND until the cost stops improving (or [max_iters]). *)
val espresso : ?max_iters:int -> on:Cover.t -> dc:Cover.t -> unit -> Cover.t

(** Truth-table equivalence on the care set; testing helper (<= 16 vars). *)
val equivalent_on_care : on:Cover.t -> dc:Cover.t -> Cover.t -> bool
