(** A cover is a set of cubes over [n] variables, read as their union
    (sum of products).  Tautology and complement use the classic unate
    recursive paradigm (most-binate branching variable, single-cube
    DeMorgan base case). *)

type t = { n : int; cubes : Cube.t list }

(** Build a cover, dropping empty cubes. *)
val make : int -> Cube.t list -> t

val empty : int -> t
val full : int -> t
val is_empty : t -> bool
val size : t -> int

(** Total specified literals. *)
val literals : t -> int

(** @raise Invalid_argument on width mismatch. *)
val union : t -> t -> t

(** Evaluate at a minterm (bit mask). *)
val eval : t -> int -> bool

val has_full : t -> bool

(** Cofactor of every cube with respect to a cube. *)
val cofactor : t -> Cube.t -> t

(** (positive, negative) literal occurrence counts per variable. *)
val literal_counts : t -> int array * int array

(** Most binate variable, or [None] when no cube has a literal. *)
val branch_var : t -> int option

val pos_cube : int -> int -> Cube.t
val neg_cube : int -> int -> Cube.t

(** Is the cover the constant-1 function? *)
val tautology : t -> bool

(** Disjoint-sharp complement of one cube. *)
val complement_cube : int -> Cube.t -> Cube.t list

val complement : t -> t

(** Does the cover contain the cube (cofactor tautology)? *)
val covers_cube : t -> Cube.t -> bool

(** Drop cubes single-cube-contained in another. *)
val drop_contained : t -> t

val pp : Format.formatter -> t -> unit
