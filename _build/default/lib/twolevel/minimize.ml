(* Espresso-lite: EXPAND / IRREDUNDANT / REDUCE iteration on single-output
   covers.  Guarantees: the result covers the ON-set and stays inside
   ON ∪ DC (verified by property tests against truth tables). *)

type cost = { cubes : int; lits : int }

let cost f = { cubes = Cover.size f; lits = Cover.literals f }

let better a b = a.cubes < b.cubes || (a.cubes = b.cubes && a.lits < b.lits)

(* EXPAND each cube against the OFF-set: raise literals to don't care as long
   as the cube stays disjoint from every OFF cube; afterwards drop cubes
   contained in the expanded one.  Cubes are processed largest-first so big
   primes swallow small cubes early. *)
let expand f ~off =
  let n = f.Cover.n in
  let ordered =
    List.sort
      (fun a b -> compare (Cube.num_literals n a) (Cube.num_literals n b))
      f.Cover.cubes
  in
  let expand_cube c =
    let cur = ref c in
    for i = 0 to n - 1 do
      let l = Cube.get_lit !cur i in
      if l = Cube.lit_pos || l = Cube.lit_neg then begin
        let cand = Cube.set_lit !cur i Cube.lit_dc in
        let hits_off =
          List.exists (fun o -> Cube.intersects n cand o) off.Cover.cubes
        in
        if not hits_off then cur := cand
      end
    done;
    !cur
  in
  let rec loop acc = function
    | [] -> List.rev acc
    | c :: rest ->
      if List.exists (fun d -> Cube.contains d c) acc then loop acc rest
      else begin
        let e = expand_cube c in
        let rest = List.filter (fun d -> not (Cube.contains e d)) rest in
        let acc = List.filter (fun d -> not (Cube.contains e d)) acc in
        loop (e :: acc) rest
      end
  in
  { f with Cover.cubes = loop [] ordered }

(* IRREDUNDANT: greedily delete cubes covered by the rest of the cover plus
   the don't-care set. *)
let irredundant f ~dc =
  let rec loop kept = function
    | [] -> List.rev kept
    | c :: rest ->
      let others = { f with Cover.cubes = List.rev_append kept rest } in
      let ctx = Cover.union others dc in
      if Cover.covers_cube ctx c then loop kept rest
      else loop (c :: kept) rest
  in
  { f with Cover.cubes = loop [] f.Cover.cubes }

(* REDUCE: shrink each cube to the smallest cube still covering the part of
   the ON-set it alone covers:  c' = c ∩ supercube(complement(cofactor
   ((F \ c) ∪ D, c))). *)
let reduce f ~dc =
  let rec loop done_ = function
    | [] -> List.rev done_
    | c :: rest ->
      let others = { f with Cover.cubes = List.rev_append done_ rest } in
      let ctx = Cover.cofactor (Cover.union others dc) c in
      let comp = Cover.complement ctx in
      if Cover.is_empty comp then
        (* c is fully covered by the others; drop it *)
        loop done_ rest
      else begin
        let sc =
          List.fold_left
            (fun acc k -> Cube.supercube acc k)
            (List.hd comp.Cover.cubes)
            (List.tl comp.Cover.cubes)
        in
        loop (Cube.intersect c sc :: done_) rest
      end
  in
  { f with Cover.cubes = loop [] f.Cover.cubes }

(* Main loop.  [on] and [dc] are the ON- and DC-set covers. *)
let espresso ?(max_iters = 12) ~on ~dc () =
  let off = Cover.complement (Cover.union on dc) in
  let f = expand (Cover.drop_contained on) ~off in
  let f = irredundant f ~dc in
  let rec loop f best iters =
    if iters >= max_iters then best
    else begin
      let f = reduce f ~dc in
      let f = expand f ~off in
      let f = irredundant f ~dc in
      if better (cost f) (cost best) then loop f f (iters + 1) else best
    end
  in
  loop f f 0

(* Truth-table check used by tests: result equals ON on the care set. *)
let equivalent_on_care ~on ~dc result =
  let n = on.Cover.n in
  if n > 16 then invalid_arg "Minimize.equivalent_on_care: too wide";
  let ok = ref true in
  for point = 0 to (1 lsl n) - 1 do
    let dc_here = Cover.eval dc point in
    if not dc_here then begin
      let want = Cover.eval on point in
      let got = Cover.eval result point in
      if want <> got then ok := false
    end
  done;
  !ok
