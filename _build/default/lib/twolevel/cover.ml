(* A cover is a set of cubes over n variables, interpreted as their union
   (sum of products).  Tautology and complement use the classic unate
   recursive paradigm. *)

type t = { n : int; cubes : Cube.t list }

let make n cubes = { n; cubes = List.filter (fun c -> not (Cube.is_empty n c)) cubes }

let empty n = { n; cubes = [] }

let full n = { n; cubes = [ Cube.full n ] }

let is_empty f = f.cubes = []

let size f = List.length f.cubes

let literals f =
  List.fold_left (fun acc c -> acc + Cube.num_literals f.n c) 0 f.cubes

let union a b =
  if a.n <> b.n then invalid_arg "Cover.union: width mismatch";
  { a with cubes = a.cubes @ b.cubes }

let eval f point = List.exists (fun c -> Cube.member f.n c point) f.cubes

let has_full f = List.exists (fun c -> c = Cube.full f.n) f.cubes

(* Cofactor of the cover with respect to cube p. *)
let cofactor f p =
  let cubes =
    List.filter_map (fun c -> Cube.cofactor f.n c p) f.cubes
  in
  { f with cubes }

(* Count positive/negative literal occurrences of each variable. *)
let literal_counts f =
  let pos = Array.make f.n 0 and neg = Array.make f.n 0 in
  List.iter
    (fun c ->
      for i = 0 to f.n - 1 do
        match Cube.get_lit c i with
        | 2 -> pos.(i) <- pos.(i) + 1
        | 1 -> neg.(i) <- neg.(i) + 1
        | _ -> ()
      done)
    f.cubes;
  (pos, neg)

(* Most binate variable: maximize min(pos,neg), tie-break on total; if the
   cover is unate, the variable with the most occurrences.  None if no cube
   has any literal (cover is empty or a single full cube). *)
let branch_var f =
  let pos, neg = literal_counts f in
  let best = ref (-1) and best_key = ref (-1, -1) in
  for i = 0 to f.n - 1 do
    let p = pos.(i) and q = neg.(i) in
    if p + q > 0 then begin
      let key = (min p q, p + q) in
      if key > !best_key then begin
        best_key := key;
        best := i
      end
    end
  done;
  if !best < 0 then None else Some !best

let pos_cube n v = Cube.set_lit (Cube.full n) v Cube.lit_pos
let neg_cube n v = Cube.set_lit (Cube.full n) v Cube.lit_neg

let rec tautology f =
  if has_full f then true
  else if is_empty f then false
  else
    match branch_var f with
    | None -> false
    | Some v ->
      tautology (cofactor f (pos_cube f.n v))
      && tautology (cofactor f (neg_cube f.n v))

(* Complement of a single cube: disjoint sharp expansion. *)
let complement_cube n c =
  let acc = ref [] in
  let prefix = ref (Cube.full n) in
  for i = 0 to n - 1 do
    let l = Cube.get_lit c i in
    if l = Cube.lit_pos || l = Cube.lit_neg then begin
      let flipped = if l = Cube.lit_pos then Cube.lit_neg else Cube.lit_pos in
      acc := Cube.set_lit !prefix i flipped :: !acc;
      prefix := Cube.set_lit !prefix i l
    end
  done;
  !acc

let rec complement f =
  if is_empty f then full f.n
  else if has_full f then empty f.n
  else
    match f.cubes with
    | [ c ] -> { f with cubes = complement_cube f.n c }
    | _ ->
      (match branch_var f with
       | None -> empty f.n
       | Some v ->
         let p = pos_cube f.n v and q = neg_cube f.n v in
         let cp = complement (cofactor f p) in
         let cq = complement (cofactor f q) in
         let cubes =
           List.map (fun c -> Cube.intersect c p) cp.cubes
           @ List.map (fun c -> Cube.intersect c q) cq.cubes
         in
         make f.n cubes)

(* Does the cover (plus optional dc cover) contain cube [c]?  Classic check:
   the cofactor of the cover with respect to c must be a tautology. *)
let covers_cube f c = tautology (cofactor f c)

(* Remove cubes single-cube-contained in another cube of the cover. *)
let drop_contained f =
  let rec loop kept = function
    | [] -> List.rev kept
    | c :: rest ->
      let covered_by_other d = d <> c && Cube.contains d c in
      if List.exists covered_by_other rest
         || List.exists (fun d -> Cube.contains d c) kept
      then loop kept rest
      else loop (c :: kept) rest
  in
  { f with cubes = loop [] f.cubes }

let pp ppf f =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Fmt.string)
    (List.map (Cube.to_string f.n) f.cubes)
