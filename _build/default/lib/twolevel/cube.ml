(* Positional-cube representation: each of the [n] binary variables owns two
   bits in a machine word — bit 2i   set: the cube admits variable i = 0,
   bit 2i+1 set: the cube admits variable i = 1.
   11 = don't care, 01 = positive literal, 10 = negative literal, 00 = empty.
   With n <= 30 this fits a native int. *)

type t = int

let max_vars = 30

let check_width n =
  if n < 0 || n > max_vars then invalid_arg "Cube: variable count out of range"

let full n =
  check_width n;
  if n = 0 then 0 else (1 lsl (2 * n)) - 1

let var_mask i = 3 lsl (2 * i)

(* literal values *)
let lit_dc = 3
let lit_pos = 2 (* admits 1 only: bit 2i+1 *)
let lit_neg = 1 (* admits 0 only: bit 2i *)

let get_lit c i = (c lsr (2 * i)) land 3

let set_lit c i lit = (c land lnot (var_mask i)) lor (lit lsl (2 * i))

(* Build from a (care, value) bit-mask pair over n variables. *)
let of_masks n ~care ~value =
  let c = ref (full n) in
  for i = 0 to n - 1 do
    if care land (1 lsl i) <> 0 then
      c := set_lit !c i (if value land (1 lsl i) <> 0 then lit_pos else lit_neg)
  done;
  !c

let intersect a b = a land b

(* A cube is empty iff some variable field is 00. *)
let is_empty n c =
  let rec loop i =
    if i >= n then false
    else if get_lit c i = 0 then true
    else loop (i + 1)
  in
  loop 0

let intersects n a b = not (is_empty n (a land b))

(* [contains a b] : cube a covers cube b (b implies a). *)
let contains a b = b land a = b

let supercube a b = a lor b

(* Number of specified literals (smaller cube = more literals). *)
let num_literals n c =
  let k = ref 0 in
  for i = 0 to n - 1 do
    let l = get_lit c i in
    if l = lit_pos || l = lit_neg then incr k
  done;
  !k

(* Does the minterm given by bit-mask [point] lie inside the cube? *)
let member n c point =
  let rec loop i =
    if i >= n then true
    else
      let bit = if point land (1 lsl i) <> 0 then lit_pos else lit_neg in
      if get_lit c i land bit = 0 then false else loop (i + 1)
  in
  loop 0

(* Cofactor of cube c with respect to cube p (Shannon cofactor for p a
   literal; general cube cofactor otherwise).  None if disjoint. *)
let cofactor n c p =
  if is_empty n (c land p) then None
  else begin
    let r = ref c in
    for i = 0 to n - 1 do
      if get_lit p i <> lit_dc then r := set_lit !r i lit_dc
    done;
    Some !r
  end

let to_string n c =
  String.init n (fun i ->
      match get_lit c i with
      | 3 -> '-'
      | 2 -> '1'
      | 1 -> '0'
      | _ -> '!')

let of_string s =
  let n = String.length s in
  check_width n;
  let c = ref (full n) in
  String.iteri
    (fun i ch ->
      match ch with
      | '-' -> ()
      | '1' -> c := set_lit !c i lit_pos
      | '0' -> c := set_lit !c i lit_neg
      | _ -> invalid_arg "Cube.of_string")
    s;
  !c

let pp n ppf c = Fmt.string ppf (to_string n c)
