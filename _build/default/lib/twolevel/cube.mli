(** Positional-cube representation over up to {!max_vars} binary
    variables: each variable owns two bits of a machine word — bit [2i]
    set admits variable [i] = 0, bit [2i+1] set admits 1.  So 11 = don't
    care, 01 = negative literal, 10 = positive literal, 00 = empty. *)

type t = int

val max_vars : int

(** The universal cube (all don't cares) over [n] variables.
    @raise Invalid_argument when [n] is out of range. *)
val full : int -> t

val lit_dc : int
val lit_pos : int
val lit_neg : int

(** Two-bit literal field of variable [i] (one of the [lit_*] values). *)
val get_lit : t -> int -> int

val set_lit : t -> int -> int -> t

(** Cube from (care, value) bit masks. *)
val of_masks : int -> care:int -> value:int -> t

val intersect : t -> t -> t
val is_empty : int -> t -> bool
val intersects : int -> t -> t -> bool

(** [contains a b]: cube [a] covers cube [b]. *)
val contains : t -> t -> bool

(** Smallest cube covering both. *)
val supercube : t -> t -> t

val num_literals : int -> t -> int

(** Does the minterm (bit mask) lie inside the cube? *)
val member : int -> t -> int -> bool

(** Cube cofactor; [None] when disjoint. *)
val cofactor : int -> t -> t -> t option

(** e.g. ["01-1"]; ['!'] marks an empty field. *)
val to_string : int -> t -> string

val of_string : string -> t
val pp : int -> Format.formatter -> t -> unit
