lib/twolevel/cover.ml: Array Cube Fmt List
