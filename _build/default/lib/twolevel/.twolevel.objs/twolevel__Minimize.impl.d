lib/twolevel/minimize.ml: Cover Cube List
