lib/twolevel/minimize.mli: Cover
