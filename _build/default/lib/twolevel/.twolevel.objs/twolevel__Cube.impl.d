lib/twolevel/cube.ml: Fmt String
