(* The six FSM workloads of the paper's Table 1, reproduced as deterministic
   synthetic machines with the same state counts.  Primary input and output
   counts above 8 are capped at 8 so that exact reachability analysis (input
   enumeration) of the synthesized circuits stays tractable; the paper's
   argument depends on state-space density, not on the exact widths (see
   DESIGN.md, substitution 1). *)

type entry = {
  name : string;
  paper_pi : int;
  paper_po : int;
  paper_states : int;
  spec : Generate.spec;
  has_reset_line : bool;  (* Table 1 note: dk16, pma, scf, s510 use one *)
}

let cap n = min n 8

let make name ~pi ~po ~states ~cubes ~seed ~reset =
  {
    name;
    paper_pi = pi;
    paper_po = po;
    paper_states = states;
    spec =
      {
        Generate.name;
        num_inputs = cap pi;
        num_outputs = cap po;
        num_states = states;
        cubes_per_state = cubes;
        dc_output_prob = 0.08;
        drop_prob = 0.05;
        seed;
      };
    has_reset_line = reset;
  }

let all =
  [
    make "dk16" ~pi:3 ~po:3 ~states:27 ~cubes:6 ~seed:16 ~reset:true;
    make "pma" ~pi:7 ~po:8 ~states:24 ~cubes:4 ~seed:31 ~reset:true;
    make "s510" ~pi:20 ~po:7 ~states:47 ~cubes:4 ~seed:510 ~reset:true;
    make "s820" ~pi:18 ~po:19 ~states:25 ~cubes:5 ~seed:820 ~reset:false;
    make "s832" ~pi:18 ~po:19 ~states:25 ~cubes:5 ~seed:832 ~reset:false;
    make "scf" ~pi:27 ~po:54 ~states:121 ~cubes:3 ~seed:97 ~reset:true;
  ]

let find name =
  match List.find_opt (fun e -> String.equal e.name name) all with
  | Some e -> e
  | None -> invalid_arg ("Benchmarks.find: unknown FSM " ^ name)

let machine entry = Generate.generate entry.spec

let machine_of_name name = machine (find name)
