(** Seeded random FSM generator standing in for the MCNC control-logic
    benchmarks.  Guarantees by construction: each state's input cubes
    partition the input space (determinism); every state is reachable
    from the reset state (an embedded random arborescence, repaired if
    needed); outputs are sparse Mealy functions with configurable don't
    cares, exercising the synthesis flow's don't-care paths. *)

type spec = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  num_states : int;
  cubes_per_state : int;   (** target input cubes per state *)
  dc_output_prob : float;  (** probability an output bit is a don't care *)
  drop_prob : float;       (** probability a non-tree cube stays unspecified *)
  seed : int;
}

val default_spec : spec

(** Disjoint cubes partitioning (a subset of) the input space (exposed
    for tests). *)
val partition_cubes : Random.State.t -> int -> int -> (int * int) list

(** Deterministic in [spec] (same spec, same machine). *)
val generate : spec -> Machine.t
