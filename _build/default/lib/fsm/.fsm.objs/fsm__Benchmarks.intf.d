lib/fsm/benchmarks.mli: Generate Machine
