lib/fsm/generate.mli: Machine Random
