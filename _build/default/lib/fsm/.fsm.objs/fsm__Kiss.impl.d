lib/fsm/kiss.ml: Array Buffer Hashtbl List Machine Printf String
