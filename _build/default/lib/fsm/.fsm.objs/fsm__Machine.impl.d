lib/fsm/machine.ml: Array Fmt List Queue Sim
