lib/fsm/generate.ml: Array List Machine Printf Random
