lib/fsm/machine.mli: Format Sim
