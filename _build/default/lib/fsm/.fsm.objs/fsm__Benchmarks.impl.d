lib/fsm/benchmarks.ml: Generate List String
