(** The six FSM workloads of the paper's Table 1, reproduced as
    deterministic synthetic machines with the same state counts (27, 24,
    47, 25, 25, 121).  Primary input and output counts above 8 are capped
    at 8 so exact reachability analysis of the synthesized circuits stays
    tractable (DESIGN.md, substitution 1). *)

type entry = {
  name : string;
  paper_pi : int;       (** primary inputs reported in the paper *)
  paper_po : int;
  paper_states : int;
  spec : Generate.spec; (** the generator spec actually used *)
  has_reset_line : bool;
  (** Table 1 note: dk16, pma, scf and s510 carry an explicit reset *)
}

(** All six entries, in the paper's order. *)
val all : entry list

(** @raise Invalid_argument for unknown names. *)
val find : string -> entry

(** Generate the (deterministic) machine for an entry. *)
val machine : entry -> Machine.t

val machine_of_name : string -> Machine.t
