(** KISS2 reader/writer — the MCNC FSM benchmark interchange format.

    Supported directives: [.i .o .s .p .r .e], comment lines starting
    with [#], and transition lines [<incube> <src> <dst> <outcube>]. *)

exception Parse_error of int * string
(** (1-based line, message). *)

(** Parse a KISS2 document.  State names are interned in order of first
    appearance; [.r] defaults to the first state. *)
val parse_string : ?name:string -> string -> Machine.t

(** Render a machine as KISS2 (parse/print round-trips, tested). *)
val to_string : Machine.t -> string

(** (care, value) masks from a cube string such as ["01-1"].
    Exposed for tests. *)
val cube_of_string : int -> string -> int * int

val string_of_cube : int -> care:int -> value:int -> string
