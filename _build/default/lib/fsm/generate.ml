(* Seeded random FSM generator used to stand in for the MCNC control-logic
   benchmarks.  Construction guarantees:
   - the input cubes of each state partition the input space (determinism
     and complete specification by construction, modulo optional pruning);
   - every state is reachable from the reset state (a random spanning
     arborescence is embedded first);
   - outputs depend on both state and input (Mealy), with a configurable
     fraction of don't-care output bits, exercising the don't-care paths of
     the synthesis flow. *)

type spec = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  num_states : int;
  cubes_per_state : int;   (* target number of input cubes per state *)
  dc_output_prob : float;  (* probability an output bit is a don't care *)
  drop_prob : float;       (* probability a non-tree cube is left unspecified *)
  seed : int;
}

let default_spec =
  {
    name = "fsm";
    num_inputs = 4;
    num_outputs = 4;
    num_states = 8;
    cubes_per_state = 4;
    dc_output_prob = 0.1;
    drop_prob = 0.0;
    seed = 1;
  }

(* Split the full input cube into [k] disjoint cubes by recursive splitting
   on randomly chosen free variables. *)
let partition_cubes rng num_inputs k =
  let k = max 1 (min k (1 lsl num_inputs)) in
  let rec split care value k =
    if k <= 1 then [ (care, value) ]
    else begin
      (* pick a variable not yet constrained in this cube *)
      let free = ref [] in
      for i = 0 to num_inputs - 1 do
        if care land (1 lsl i) = 0 then free := i :: !free
      done;
      match !free with
      | [] -> [ (care, value) ]
      | free_vars ->
        let v = List.nth free_vars (Random.State.int rng (List.length free_vars)) in
        let bit = 1 lsl v in
        let k0 = (k + 1) / 2 and k1 = k / 2 in
        split (care lor bit) value k0 @ split (care lor bit) (value lor bit) k1
    end
  in
  split 0 0 k

let generate spec =
  let rng = Random.State.make [| spec.seed; 0x5a7b9 |] in
  let n = spec.num_states in
  let state_names = Array.init n (fun i -> Printf.sprintf "st%d" i) in
  (* Random arborescence rooted at state 0 (the reset state): visiting order
     is a random permutation with 0 first; parent of the i-th visited state
     is a uniformly random earlier state. *)
  let order = Array.init n (fun i -> i) in
  for i = n - 1 downto 2 do
    let j = 1 + Random.State.int rng i in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  let tree_child = Array.make n [] in
  (* Each parent may carry at most 2^inputs - 1 children, since it also
     needs at least one non-tree cube to stay interesting. *)
  let capacity = max 1 ((1 lsl spec.num_inputs) - 1) in
  for i = 1 to n - 1 do
    let rec pick tries =
      let p = order.(Random.State.int rng i) in
      if List.length tree_child.(p) < capacity || tries > 4 * n then p
      else pick (tries + 1)
    in
    let parent = pick 0 in
    tree_child.(parent) <- order.(i) :: tree_child.(parent)
  done;
  let transitions = ref [] in
  let random_output () =
    (* Control-logic outputs are sparse: most bits are specified 0, a few are
       asserted, some are left as don't cares.  Shallow output logic is what
       gives retiming room to move registers (as in the MCNC originals). *)
    let care = ref 0 and value = ref 0 in
    for i = 0 to spec.num_outputs - 1 do
      if Random.State.float rng 1.0 >= spec.dc_output_prob then begin
        care := !care lor (1 lsl i);
        if Random.State.float rng 1.0 < 0.25 then value := !value lor (1 lsl i)
      end
    done;
    (!care, !value)
  in
  for s = 0 to n - 1 do
    let children = tree_child.(s) in
    let k = max spec.cubes_per_state (List.length children) in
    let cubes = partition_cubes rng spec.num_inputs k in
    (* Assign tree children to the first cubes, random destinations to the
       rest (possibly dropped to create unspecified entries). *)
    let rec assign cubes children =
      match cubes, children with
      | [], _ -> ()
      | (care, value) :: rest, child :: more ->
        let out_care, out_value = random_output () in
        transitions :=
          { Machine.in_care = care; in_value = value; src = s; dst = child;
            out_care; out_value }
          :: !transitions;
        assign rest more
      | (care, value) :: rest, [] ->
        if Random.State.float rng 1.0 >= spec.drop_prob then begin
          let dst = Random.State.int rng n in
          let out_care, out_value = random_output () in
          transitions :=
            { Machine.in_care = care; in_value = value; src = s; dst;
              out_care; out_value }
            :: !transitions
        end;
        assign rest []
    in
    assign cubes children
  done;
  let machine =
    {
      Machine.name = spec.name;
      num_inputs = spec.num_inputs;
      num_outputs = spec.num_outputs;
      state_names;
      reset = 0;
      transitions = Array.of_list (List.rev !transitions);
    }
  in
  (* The arborescence makes every state reachable unless a parent ran out of
     cube capacity; repair by redirecting random transitions until the
     machine is strongly rooted at the reset state. *)
  let rec repair m rounds =
    let reach = Machine.reachable_states m in
    if List.length reach = n then m
    else if rounds > 10 * n then
      failwith "Generate.generate: could not connect all states"
    else begin
      let reach_set = Array.make n false in
      List.iter (fun s -> reach_set.(s) <- true) reach;
      let unreached = ref (-1) in
      for s = n - 1 downto 0 do
        if not reach_set.(s) then unreached := s
      done;
      let ts = Array.copy m.Machine.transitions in
      let candidates = ref [] in
      Array.iteri
        (fun i (t : Machine.transition) ->
          if reach_set.(t.src) then candidates := i :: !candidates)
        ts;
      match !candidates with
      | [] -> failwith "Generate.generate: reset state has no transitions"
      | cands ->
        let i = List.nth cands (Random.State.int rng (List.length cands)) in
        ts.(i) <- { (ts.(i)) with dst = !unreached };
        repair { m with transitions = ts } (rounds + 1)
    end
  in
  repair machine 0
