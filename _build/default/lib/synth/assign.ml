(* State assignment in the spirit of jedi: build an affinity graph over
   states, then embed the states into a minimum-width hypercube so that
   strongly related states receive codes at small Hamming distance.  Three
   affinity models mirror jedi's algorithms:
   - [Input_dominant]: states that are successors of a common state (fan-in
     related) attract each other;
   - [Output_dominant]: states with common successors or similar output
     behaviour (fan-out related) attract each other;
   - [Combined]: the sum of both. *)

type algorithm = Input_dominant | Output_dominant | Combined

let algorithm_tag = function
  | Input_dominant -> "ji"
  | Output_dominant -> "jo"
  | Combined -> "jc"

let bits_needed n =
  let rec loop b = if 1 lsl b >= n then b else loop (b + 1) in
  max 1 (loop 0)

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x lsr 1) (acc + (x land 1)) in
  loop x 0

(* Affinity matrix. *)
let weights algorithm m =
  let n = Fsm.Machine.num_states m in
  let w = Array.make_matrix n n 0 in
  let bump a b k =
    if a <> b then begin
      w.(a).(b) <- w.(a).(b) + k;
      w.(b).(a) <- w.(b).(a) + k
    end
  in
  let ts = m.Fsm.Machine.transitions in
  let nt = Array.length ts in
  for i = 0 to nt - 1 do
    for j = i + 1 to nt - 1 do
      let a = ts.(i) and b = ts.(j) in
      (match algorithm with
       | Input_dominant | Combined ->
         (* common predecessor: both are successors of the same state *)
         if a.Fsm.Machine.src = b.Fsm.Machine.src then
           bump a.Fsm.Machine.dst b.Fsm.Machine.dst 1
       | Output_dominant -> ());
      (match algorithm with
       | Output_dominant | Combined ->
         (* common successor *)
         if a.Fsm.Machine.dst = b.Fsm.Machine.dst then
           bump a.Fsm.Machine.src b.Fsm.Machine.src 1;
         (* similar asserted outputs *)
         if a.Fsm.Machine.src <> b.Fsm.Machine.src then begin
           let common = a.Fsm.Machine.out_care land b.Fsm.Machine.out_care in
           let agree =
             common
             land lnot (a.Fsm.Machine.out_value lxor b.Fsm.Machine.out_value)
           in
           if popcount agree >= 2 then
             bump a.Fsm.Machine.src b.Fsm.Machine.src 1
         end
       | Input_dominant -> ())
    done
  done;
  w

(* Embedding cost: sum over state pairs of w * hamming distance. *)
let cost w codes =
  let n = Array.length codes in
  let total = ref 0 in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if w.(a).(b) > 0 then
        total := !total + (w.(a).(b) * popcount (codes.(a) lxor codes.(b)))
    done
  done;
  !total

(* Greedy seeding followed by pairwise-swap local search (deterministic,
   seeded).  The reset state always receives code 0, which also serves as the
   circuits' power-up state. *)
let assign ?(seed = 7) algorithm m =
  let n = Fsm.Machine.num_states m in
  let b = bits_needed n in
  let w = weights algorithm m in
  let rng = Random.State.make [| seed; n; Hashtbl.hash (algorithm_tag algorithm) |] in
  (* order states by total affinity, reset first *)
  let total = Array.init n (fun s -> Array.fold_left ( + ) 0 w.(s)) in
  let order =
    List.init n (fun s -> s)
    |> List.filter (fun s -> s <> m.Fsm.Machine.reset)
    |> List.sort (fun a b -> compare total.(b) total.(a))
  in
  let codes = Array.make n (-1) in
  let used = Hashtbl.create 31 in
  let place s code =
    codes.(s) <- code;
    Hashtbl.add used code ()
  in
  place m.Fsm.Machine.reset 0;
  (* greedy: each state takes the free code minimizing weighted distance to
     already-placed neighbours *)
  List.iter
    (fun s ->
      let best = ref (-1) and best_cost = ref max_int in
      for code = 0 to (1 lsl b) - 1 do
        if not (Hashtbl.mem used code) then begin
          let c = ref 0 in
          for t = 0 to n - 1 do
            if codes.(t) >= 0 && w.(s).(t) > 0 then
              c := !c + (w.(s).(t) * popcount (code lxor codes.(t)))
          done;
          if !c < !best_cost then begin
            best_cost := !c;
            best := code
          end
        end
      done;
      place s !best)
    order;
  (* Local search: swap pairs of states' codes (keeping reset at 0), using
     O(n) incremental cost deltas. *)
  let swap_delta a bst =
    let ca = codes.(a) and cb = codes.(bst) in
    let d = ref 0 in
    for t = 0 to n - 1 do
      if t <> a && t <> bst then begin
        let ct = codes.(t) in
        if w.(a).(t) > 0 then
          d := !d + (w.(a).(t) * (popcount (cb lxor ct) - popcount (ca lxor ct)));
        if w.(bst).(t) > 0 then
          d := !d + (w.(bst).(t) * (popcount (ca lxor ct) - popcount (cb lxor ct)))
      end
    done;
    !d
  in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < 12 do
    improved := false;
    incr rounds;
    let perm = Array.init n (fun i -> i) in
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t
    done;
    Array.iter
      (fun a ->
        if a <> m.Fsm.Machine.reset then
          for bst = 0 to n - 1 do
            if bst <> a && bst <> m.Fsm.Machine.reset && swap_delta a bst < 0
            then begin
              let t = codes.(a) in
              codes.(a) <- codes.(bst);
              codes.(bst) <- t;
              improved := true
            end
          done)
      perm
  done;
  ignore (cost w codes);
  (codes, b)
