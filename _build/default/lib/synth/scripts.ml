(* Multi-level optimization scripts over Network.t — the stand-ins for SIS's
   script.rugged (area-oriented: simplify, common-cube extraction,
   elimination) and script.delay (depth-oriented: flat covers, balanced
   decomposition). *)

let log = Logs.Src.create "synth.scripts" ~doc:"multilevel scripts"
module Log = (val Logs.src_log log : Logs.LOG)

(* --- cover re-basing helpers --------------------------------------------- *)

(* Remap [cover] expressed over [old_fanins] into the variable space given by
   [new_fanins] (which must contain every old fanin). *)
let remap_cover cover ~old_fanins ~new_fanins =
  let k = Array.length new_fanins in
  let pos_of = Hashtbl.create 17 in
  Array.iteri (fun j s -> Hashtbl.replace pos_of s j) new_fanins;
  let remap c =
    let r = ref (Twolevel.Cube.full k) in
    Array.iteri
      (fun j s ->
        let l = Twolevel.Cube.get_lit c j in
        if l <> Twolevel.Cube.lit_dc then
          r := Twolevel.Cube.set_lit !r (Hashtbl.find pos_of s) l)
      old_fanins;
    !r
  in
  Twolevel.Cover.make k (List.map remap cover.Twolevel.Cover.cubes)
  |> fun f ->
  if Twolevel.Cover.has_full cover then Twolevel.Cover.full k else f

let array_union a b =
  let seen = Hashtbl.create 17 in
  let acc = ref [] in
  Array.iter
    (fun s ->
      if not (Hashtbl.mem seen s) then begin
        Hashtbl.add seen s ();
        acc := s :: !acc
      end)
    a;
  Array.iter
    (fun s ->
      if not (Hashtbl.mem seen s) then begin
        Hashtbl.add seen s ();
        acc := s :: !acc
      end)
    b;
  Array.of_list (List.rev !acc)

let array_remove a x = Array.of_list (List.filter (fun s -> s <> x) (Array.to_list a))

(* --- simplify ------------------------------------------------------------- *)

let simplify_node n =
  let dc = Twolevel.Cover.empty n.Network.cover.Twolevel.Cover.n in
  n.Network.cover <- Twolevel.Minimize.espresso ~on:n.Network.cover ~dc ()

let simplify net = Network.iter_live net (fun _ n ->
    if Twolevel.Cover.size n.Network.cover <= 64 then simplify_node n)

(* --- substitution / elimination ------------------------------------------- *)

(* Substitute the logic of node [gi] into node [u]; returns false (and leaves
   [u] untouched) if the result would exceed [max_cubes]. *)
let substitute net gi u ~max_cubes =
  let sg = Network.signal_of_node net gi in
  let g = Network.get net gi in
  let present = Array.exists (fun s -> s = sg) u.Network.fanins in
  if not present then true
  else begin
    let base = array_remove u.Network.fanins sg in
    let merged = array_union base g.Network.fanins in
    let k = Array.length merged in
    if k > Twolevel.Cube.max_vars then false
    else begin
      let g_on =
        remap_cover g.Network.cover ~old_fanins:g.Network.fanins
          ~new_fanins:merged
      in
      let g_off = Twolevel.Cover.complement g_on in
      (* position of sg in u's fanins *)
      let sg_pos = ref (-1) in
      Array.iteri (fun j s -> if s = sg then sg_pos := j) u.Network.fanins;
      let cubes = ref [] in
      let overflow = ref false in
      List.iter
        (fun q ->
          let l = Twolevel.Cube.get_lit q !sg_pos in
          let q_clean = Twolevel.Cube.set_lit q !sg_pos Twolevel.Cube.lit_dc in
          let q' =
            remap_cover
              (Twolevel.Cover.make (Array.length u.Network.fanins) [ q_clean ])
              ~old_fanins:u.Network.fanins ~new_fanins:merged
          in
          let q'cube =
            match q'.Twolevel.Cover.cubes with
            | [ c ] -> c
            | [] -> Twolevel.Cube.full k (* q_clean was full *)
            | _ -> assert false
          in
          let expand_with cover =
            List.iter
              (fun d ->
                let c = Twolevel.Cube.intersect q'cube d in
                if not (Twolevel.Cube.is_empty k c) then cubes := c :: !cubes)
              cover.Twolevel.Cover.cubes
          in
          if l = Twolevel.Cube.lit_dc then cubes := q'cube :: !cubes
          else if l = Twolevel.Cube.lit_pos then expand_with g_on
          else expand_with g_off;
          if List.length !cubes > max_cubes then overflow := true)
        u.Network.cover.Twolevel.Cover.cubes;
      if !overflow then false
      else begin
        u.Network.fanins <- merged;
        u.Network.cover <-
          Twolevel.Cover.drop_contained (Twolevel.Cover.make k !cubes);
        true
      end
    end
  end

(* Eliminate nodes whose duplication cost is small: a node is collapsed into
   all its fanouts when (uses - 1) * (literals - 1) <= value. *)
let eliminate net ~value =
  let uses = Network.fanout_counts net in
  let changed = ref false in
  Network.iter_live net (fun gi g ->
      let sg = Network.signal_of_node net gi in
      let is_output = Array.exists (fun o -> o = sg) net.Network.outputs in
      let lits = Twolevel.Cover.literals g.Network.cover in
      let u = uses.(sg) in
      if (not is_output) && u > 0 && (u - 1) * (max 0 (lits - 1)) <= value then begin
        let ok = ref true in
        Network.iter_live net (fun ui u_node ->
            if ui <> gi && !ok then
              if not (substitute net gi u_node ~max_cubes:48) then ok := false);
        if !ok then changed := true
      end);
  Network.garbage_collect net;
  !changed

(* --- common-cube extraction ------------------------------------------------ *)

(* A divisor candidate is a conjunction of >= 2 literals, represented as a
   sorted list of (signal, polarity). *)
let cube_literals fanins c =
  let acc = ref [] in
  Array.iteri
    (fun j s ->
      match Twolevel.Cube.get_lit c j with
      | 2 -> acc := (s, true) :: !acc
      | 1 -> acc := (s, false) :: !acc
      | _ -> ())
    fanins;
  List.sort compare !acc

let rec common_prefix a b =
  match a, b with
  | [], _ | _, [] -> []
  | x :: xs, y :: ys ->
    if x = y then x :: common_prefix xs ys
    else if x < y then common_prefix xs (y :: ys)
    else common_prefix (x :: xs) ys

(* One extraction round: find the best common-cube divisor and introduce a
   node for it.  Returns true if something was extracted. *)
let extract_one net =
  let candidates = Hashtbl.create 257 in
  Network.iter_live net (fun _ n ->
      let lits =
        List.map (cube_literals n.Network.fanins) n.Network.cover.Twolevel.Cover.cubes
      in
      let arr = Array.of_list lits in
      let m = Array.length arr in
      if m <= 24 then
        for i = 0 to m - 1 do
          for j = i + 1 to m - 1 do
            let cc = common_prefix arr.(i) arr.(j) in
            if List.length cc >= 2 then
              Hashtbl.replace candidates cc ()
          done
        done);
  (* count how many cubes each candidate divides, across the network *)
  let divides cand lits =
    List.for_all (fun l -> List.mem l lits) cand
  in
  let best = ref None in
  Hashtbl.iter
    (fun cand () ->
      let occ = ref 0 in
      Network.iter_live net (fun _ n ->
          List.iter
            (fun c ->
              if divides cand (cube_literals n.Network.fanins c) then incr occ)
            n.Network.cover.Twolevel.Cover.cubes);
      let gain = (!occ - 1) * (List.length cand - 1) in
      match !best with
      | Some (_, g) when g >= gain -> ()
      | _ -> if gain > 0 then best := Some (cand, gain))
    candidates;
  match !best with
  | None -> false
  | Some (cand, _gain) ->
    (* build the divisor node: AND of its literals *)
    let fanins = Array.of_list (List.map fst cand) in
    let k = Array.length fanins in
    let cube = ref (Twolevel.Cube.full k) in
    List.iteri
      (fun j (_, pol) ->
        cube :=
          Twolevel.Cube.set_lit !cube j
            (if pol then Twolevel.Cube.lit_pos else Twolevel.Cube.lit_neg))
      cand;
    let sdiv =
      Network.add_node net fanins (Twolevel.Cover.make k [ !cube ])
    in
    (* rewrite every dividing cube *)
    Network.iter_live net (fun di n ->
        if Network.signal_of_node net di <> sdiv then begin
          let any =
            List.exists
              (fun c -> divides cand (cube_literals n.Network.fanins c))
              n.Network.cover.Twolevel.Cover.cubes
          in
          if any then begin
            let merged = array_union n.Network.fanins [| sdiv |] in
            let knew = Array.length merged in
            if knew <= Twolevel.Cube.max_vars then begin
              let pos_of = Hashtbl.create 17 in
              Array.iteri (fun j s -> Hashtbl.replace pos_of s j) merged;
              let div_pos = Hashtbl.find pos_of sdiv in
              let rewrite c =
                let lits = cube_literals n.Network.fanins c in
                let remapped = ref (Twolevel.Cube.full knew) in
                let put (s, pol) =
                  remapped :=
                    Twolevel.Cube.set_lit !remapped (Hashtbl.find pos_of s)
                      (if pol then Twolevel.Cube.lit_pos
                       else Twolevel.Cube.lit_neg)
                in
                if divides cand lits then begin
                  List.iter
                    (fun l -> if not (List.mem l cand) then put l)
                    lits;
                  remapped :=
                    Twolevel.Cube.set_lit !remapped div_pos Twolevel.Cube.lit_pos;
                  !remapped
                end
                else begin
                  List.iter put lits;
                  !remapped
                end
              in
              n.Network.fanins <- merged;
              n.Network.cover <-
                Twolevel.Cover.make knew
                  (List.map rewrite n.Network.cover.Twolevel.Cover.cubes)
            end
          end
        end);
    true

let extract net ~rounds =
  let rec loop i = if i < rounds && extract_one net then loop (i + 1) in
  loop 0

(* --- decomposition --------------------------------------------------------- *)

(* Shrink a node's fanin array to its cover's support. *)
let compress_node n =
  let fanins = n.Network.fanins in
  let k = Array.length fanins in
  let used = Array.make k false in
  List.iter
    (fun c ->
      for j = 0 to k - 1 do
        let l = Twolevel.Cube.get_lit c j in
        if l = Twolevel.Cube.lit_pos || l = Twolevel.Cube.lit_neg then
          used.(j) <- true
      done)
    n.Network.cover.Twolevel.Cover.cubes;
  if Array.exists not used then begin
    let keep = ref [] in
    for j = k - 1 downto 0 do
      if used.(j) then keep := j :: !keep
    done;
    let keep = Array.of_list !keep in
    let kk = Array.length keep in
    let remap c =
      let r = ref (Twolevel.Cube.full kk) in
      Array.iteri
        (fun j0 j ->
          r := Twolevel.Cube.set_lit !r j0 (Twolevel.Cube.get_lit c j))
        keep;
      !r
    in
    let was_const1 = Twolevel.Cover.has_full n.Network.cover in
    n.Network.fanins <- Array.map (fun j -> fanins.(j)) keep;
    n.Network.cover <-
      (if was_const1 then Twolevel.Cover.full kk
       else
         Twolevel.Cover.make kk
           (List.map remap n.Network.cover.Twolevel.Cover.cubes))
  end

(* Bound both the number of cubes per node (OR width) and the number of
   literals per cube (AND width) by [max_arity], introducing balanced trees
   of intermediate nodes.  Wide-literal cubes are only peeled on single-cube
   nodes (multi-cube nodes are OR-split first), which keeps every node's
   support strictly below the cube-width limit. *)
let rec decompose_node net i ~max_arity =
  let n = Network.get net i in
  compress_node n;
  let fanins = n.Network.fanins in
  let cubes = n.Network.cover.Twolevel.Cover.cubes in
  let num_cubes = List.length cubes in
  let has_wide =
    List.exists
      (fun c -> List.length (cube_literals fanins c) > max_arity)
      cubes
  in
  if num_cubes > max_arity || (num_cubes > 1 && has_wide) then begin
    (* OR split: group the cubes into child nodes, parent becomes an OR *)
    let per =
      if has_wide then 1
      else begin
        let groups = (num_cubes + max_arity - 1) / max_arity in
        (num_cubes + groups - 1) / groups
      end
    in
    let arr = Array.of_list cubes in
    let m = Array.length arr in
    let children = ref [] in
    let idx = ref 0 in
    while !idx < m do
      let stop = min m (!idx + per) in
      let sub = Array.to_list (Array.sub arr !idx (stop - !idx)) in
      let s =
        Network.add_node net (Array.copy fanins)
          (Twolevel.Cover.make (Array.length fanins) sub)
      in
      children := s :: !children;
      idx := stop
    done;
    let children = Array.of_list (List.rev !children) in
    (* collapse the child list into a balanced OR tree of width <= max_arity;
       node [i] itself becomes the top OR *)
    let or_cover kc =
      Twolevel.Cover.make kc
        (List.init kc (fun j ->
             Twolevel.Cube.set_lit (Twolevel.Cube.full kc) j
               Twolevel.Cube.lit_pos))
    in
    let rec reduce sigs =
      let kc = Array.length sigs in
      if kc <= max_arity then sigs
      else begin
        let grouped = ref [] in
        let idx = ref 0 in
        while !idx < kc do
          let stop = min kc (!idx + max_arity) in
          let group = Array.sub sigs !idx (stop - !idx) in
          let g = Array.length group in
          if g = 1 then grouped := group.(0) :: !grouped
          else grouped := Network.add_node net group (or_cover g) :: !grouped;
          idx := stop
        done;
        reduce (Array.of_list (List.rev !grouped))
      end
    in
    let top = reduce children in
    n.Network.fanins <- top;
    n.Network.cover <- or_cover (Array.length top);
    Array.iter
      (fun s ->
        match Network.node_of_signal net s with
        | Some ci -> decompose_node net ci ~max_arity
        | None -> ())
      children
  end
  else if has_wide then begin
    (* single wide cube: peel the first max_arity literals into an AND node;
       the parent keeps (L - max_arity) literals plus the new signal, so its
       support strictly shrinks *)
    match cubes with
    | [ c ] ->
      let lits = cube_literals fanins c in
      let rec take k l =
        if k = 0 then ([], l)
        else
          match l with
          | [] -> ([], [])
          | x :: xs ->
            let a, b = take (k - 1) xs in
            (x :: a, b)
      in
      let head, tail = take max_arity lits in
      let fan = Array.of_list (List.map fst head) in
      let hk = Array.length fan in
      let hc = ref (Twolevel.Cube.full hk) in
      List.iteri
        (fun j (_, pol) ->
          hc :=
            Twolevel.Cube.set_lit !hc j
              (if pol then Twolevel.Cube.lit_pos else Twolevel.Cube.lit_neg))
        head;
      let s = Network.add_node net fan (Twolevel.Cover.make hk [ !hc ]) in
      let merged = Array.of_list (List.map fst tail @ [ s ]) in
      let km = Array.length merged in
      let r = ref (Twolevel.Cube.full km) in
      List.iteri
        (fun j (_, pol) ->
          r :=
            Twolevel.Cube.set_lit !r j
              (if pol then Twolevel.Cube.lit_pos else Twolevel.Cube.lit_neg))
        tail;
      r := Twolevel.Cube.set_lit !r (km - 1) Twolevel.Cube.lit_pos;
      n.Network.fanins <- merged;
      n.Network.cover <- Twolevel.Cover.make km [ !r ];
      decompose_node net i ~max_arity
    | [] | _ :: _ :: _ -> assert false
  end

let decompose net ~max_arity =
  (* note: new nodes appended during the loop are decomposed on creation *)
  let upto = net.Network.count in
  for i = 0 to upto - 1 do
    if (Network.get net i).Network.alive then decompose_node net i ~max_arity
  done

(* --- the two scripts -------------------------------------------------------- *)

let script_rugged net =
  simplify net;
  ignore (eliminate net ~value:2);
  extract net ~rounds:200;
  simplify net;
  Network.garbage_collect net;
  decompose net ~max_arity:4;
  Network.garbage_collect net;
  Log.debug (fun m ->
      m "rugged: %d nodes, %d literals" (Network.num_live net)
        (Network.total_literals net))

let script_delay net =
  simplify net;
  ignore (eliminate net ~value:1);
  (* no extraction: shallower network, larger area *)
  decompose net ~max_arity:4;
  Network.garbage_collect net;
  Log.debug (fun m ->
      m "delay: %d nodes, %d literals" (Network.num_live net)
        (Network.total_literals net))
