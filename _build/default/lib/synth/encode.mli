(** Encoding an FSM under a state assignment into two-level covers for
    the next-state and output functions, with the unused state codes as
    external don't cares (the SIS [extract_seq_dc] step), each function
    minimized by espresso-lite.

    Variable order of every cover: primary inputs [0 .. ni-1], then
    present-state bits [ni .. ni+bits-1]. *)

type t = {
  machine : Fsm.Machine.t;
  codes : int array;        (** per state *)
  bits : int;               (** state register width *)
  num_vars : int;           (** ni + bits *)
  next_state : Twolevel.Cover.t array;  (** one cover per state bit *)
  outputs : Twolevel.Cover.t array;     (** one cover per primary output *)
}

(** Fully-specified present-state literals of a code, as a cube. *)
val state_cube : ni:int -> bits:int -> num_vars:int -> int -> Twolevel.Cube.t

val input_cube : ni:int -> num_vars:int -> care:int -> value:int -> Twolevel.Cube.t

(** [encode ?use_seq_dc ?minimize m (codes, bits)].  [use_seq_dc] adds
    the unused codes as don't cares; [minimize] runs espresso (default
    both true).  Unspecified (state, input) pairs become explicit
    self-loop cubes — the completed semantics. *)
val encode :
  ?use_seq_dc:bool -> ?minimize:bool ->
  Fsm.Machine.t -> int array * int -> t

(** Evaluate the covers directly: (next state code, output bits). *)
val eval : t -> state_code:int -> input_code:int -> int * bool array
