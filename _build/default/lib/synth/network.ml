(* Multi-level boolean network: a DAG of logic nodes, each carrying a
   sum-of-products cover over its own fanin list.  This is the object the
   optimization scripts rewrite before technology mapping.

   Signals: 0 .. num_inputs-1 are network inputs (circuit PIs followed by
   present-state bits); num_inputs + i refers to logic node i. *)

type signal = int

type bnode = {
  mutable fanins : signal array;
  mutable cover : Twolevel.Cover.t;  (* over the fanins, same order *)
  mutable alive : bool;
}

type t = {
  num_inputs : int;
  mutable nodes : bnode array;
  mutable count : int;
  mutable outputs : signal array;    (* PO functions then NS functions *)
}

let create ~num_inputs = { num_inputs; nodes = [||]; count = 0; outputs = [||] }

let node_of_signal net s =
  if s < net.num_inputs then None else Some (s - net.num_inputs)

let signal_of_node net i = net.num_inputs + i

let get net i = net.nodes.(i)

let add_node net fanins cover =
  if net.count = Array.length net.nodes then begin
    let bigger =
      Array.make
        (max 16 (2 * Array.length net.nodes))
        { fanins = [||]; cover = Twolevel.Cover.empty 0; alive = false }
    in
    Array.blit net.nodes 0 bigger 0 net.count;
    net.nodes <- bigger
  end;
  let i = net.count in
  net.nodes.(i) <- { fanins; cover; alive = true };
  net.count <- i + 1;
  signal_of_node net i

let iter_live net f =
  for i = 0 to net.count - 1 do
    if net.nodes.(i).alive then f i net.nodes.(i)
  done

let num_live net =
  let k = ref 0 in
  iter_live net (fun _ _ -> incr k);
  !k

let total_literals net =
  let k = ref 0 in
  iter_live net (fun _ n -> k := !k + Twolevel.Cover.literals n.cover);
  !k

let total_cubes net =
  let k = ref 0 in
  iter_live net (fun _ n -> k := !k + Twolevel.Cover.size n.cover);
  !k

(* Evaluate all outputs for one input assignment (for equivalence tests). *)
let eval net inputs =
  let memo = Hashtbl.create 97 in
  let rec value s =
    if s < net.num_inputs then inputs.(s)
    else
      match Hashtbl.find_opt memo s with
      | Some v -> v
      | None ->
        let n = net.nodes.(s - net.num_inputs) in
        let point = ref 0 in
        Array.iteri
          (fun k f -> if value f then point := !point lor (1 lsl k))
          n.fanins;
        let v = Twolevel.Cover.eval n.cover !point in
        Hashtbl.add memo s v;
        v
  in
  Array.map value net.outputs

(* Fanout counts per signal (outputs count as uses). *)
let fanout_counts net =
  let uses = Array.make (net.num_inputs + net.count) 0 in
  iter_live net (fun _ n ->
      Array.iter (fun f -> uses.(f) <- uses.(f) + 1) n.fanins);
  Array.iter (fun o -> uses.(o) <- uses.(o) + 1) net.outputs;
  uses

(* Build the initial network from an encoded FSM: one node per function,
   fanins restricted to the function's support. *)
let of_encoded (e : Encode.t) =
  let net = create ~num_inputs:e.Encode.num_vars in
  let build cover =
    (* support = variables with a literal in some cube *)
    let support = ref [] in
    for v = e.Encode.num_vars - 1 downto 0 do
      let used =
        List.exists
          (fun c ->
            let l = Twolevel.Cube.get_lit c v in
            l = Twolevel.Cube.lit_pos || l = Twolevel.Cube.lit_neg)
          cover.Twolevel.Cover.cubes
      in
      if used then support := v :: !support
    done;
    let support = Array.of_list !support in
    let k = Array.length support in
    let remap c =
      let r = ref (Twolevel.Cube.full k) in
      Array.iteri
        (fun j v -> r := Twolevel.Cube.set_lit !r j (Twolevel.Cube.get_lit c v))
        support;
      !r
    in
    let cover' =
      Twolevel.Cover.make k (List.map remap cover.Twolevel.Cover.cubes)
    in
    (* preserve constant-1 covers: make drops nothing here since full cube
       over 0 vars is the 0 word; handle explicitly *)
    let cover' =
      if Twolevel.Cover.has_full cover then Twolevel.Cover.full k else cover'
    in
    add_node net support cover'
  in
  let po = Array.map build e.Encode.outputs in
  let ns = Array.map build e.Encode.next_state in
  net.outputs <- Array.append po ns;
  net

(* Dead-node elimination: mark reachable from outputs. *)
let garbage_collect net =
  let live = Array.make net.count false in
  let rec mark s =
    match node_of_signal net s with
    | None -> ()
    | Some i ->
      if not live.(i) then begin
        live.(i) <- true;
        Array.iter mark net.nodes.(i).fanins
      end
  in
  Array.iter mark net.outputs;
  for i = 0 to net.count - 1 do
    if not live.(i) then net.nodes.(i).alive <- false
  done
