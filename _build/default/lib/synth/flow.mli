(** End-to-end synthesis driver mirroring the paper's SIS command sequence:
    stamina (state minimization) → jedi (state assignment) →
    extract_seq_dc (unreachable-code don't cares) → script.rugged |
    script.delay (multilevel optimization) → technology mapping.

    Circuit names follow the paper's convention [<fsm>.<jX>.<sY>] with
    [jX] ∈ {ji, jo, jc} (jedi algorithm) and [sY] ∈ {sd, sr} (script). *)

type script =
  | Rugged  (** area-oriented, like SIS script.rugged; mapped for area *)
  | Delay   (** depth-oriented, like SIS script.delay; mapped for delay *)

val script_tag : script -> string

type result = {
  name : string;              (** e.g. ["s510.jo.sr"] *)
  machine : Fsm.Machine.t;    (** the minimized machine actually implemented *)
  codes : int array;          (** state assignment, per machine state *)
  bits : int;                 (** state register width *)
  circuit : Netlist.Node.t;   (** the mapped netlist *)
  reset_line : bool;          (** an explicit reset PI was appended last *)
}

(** Synthesize a machine.  [use_seq_dc] feeds unused state codes to the
    minimizer as external don't cares; [minimize_states] runs partition
    refinement first; [reset_line] appends an explicit reset input that
    forces the next state to the reset code (always 0). *)
val synthesize :
  ?use_seq_dc:bool ->
  ?minimize_states:bool ->
  ?reset_line:bool ->
  algorithm:Assign.algorithm ->
  script:script ->
  Fsm.Machine.t ->
  result

(** The encoded reset state — 0 by construction. *)
val reset_code : result -> int
