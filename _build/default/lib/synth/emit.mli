(** Network -> generic gate netlist (wide AND/OR/NOT), instantiating the
    sequential shell: DFFs for the state bits and the optional explicit
    reset line (reset forces the next state to code 0, the reset state). *)

type io_spec = {
  circuit_name : string;
  ni : int;            (** primary inputs of the FSM *)
  no : int;            (** primary outputs *)
  bits : int;          (** state register width *)
  reset_line : bool;   (** append a "reset" PI after the inputs *)
}

(** The network must have [ni + bits] inputs and [no + bits] outputs
    (PO functions then next-state functions). *)
val to_netlist : io_spec -> Network.t -> Netlist.Node.t
