(** State minimization by partition refinement (the stamina step of the
    SIS flow), on the completed machine semantics: the result is exactly
    behaviourally equivalent to the completion of the input machine. *)

(** (block id per state, number of blocks). *)
val equivalence_classes : Fsm.Machine.t -> int array * int

(** The minimized machine (the input itself when already minimal). *)
val minimize : Fsm.Machine.t -> Fsm.Machine.t
