(** Technology mapping by dynamic-programming tree covering
    (Keutzer-style): decompose the logic into a hash-consed NAND2/INV
    subject graph (double inverters collapse), partition it into trees at
    multi-fanout points, match the {!Library} cell patterns per node, and
    emit the minimum-cost cover.  PIs, DFFs (with init values) and PO
    names are preserved. *)

type objective =
  [ `Area   (** minimize total cell area (ties: delay) *)
  | `Delay  (** minimize worst arrival (ties: area) *) ]

(** Map a generic netlist onto the library.  The input may use any gate
    functions/arities; the output uses only library cells.
    @raise Failure if a subject node cannot be covered (the library's
    INV/NAND2 base makes this unreachable in practice). *)
val map : ?objective:objective -> Netlist.Node.t -> Netlist.Node.t
