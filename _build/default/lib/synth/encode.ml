(* Encode an FSM under a state assignment into two-level covers for the
   next-state and output functions, optionally using the unused state codes
   as external don't cares (the SIS extract_seq_dc step), then minimize each
   function with espresso-lite.

   Variable order of every cover: [0 .. ni-1] primary inputs,
   [ni .. ni+bits-1] present-state bits. *)

type t = {
  machine : Fsm.Machine.t;
  codes : int array;        (* per state *)
  bits : int;               (* state register width *)
  num_vars : int;           (* ni + bits *)
  next_state : Twolevel.Cover.t array;  (* per state bit *)
  outputs : Twolevel.Cover.t array;     (* per primary output *)
}

let state_cube ~ni ~bits ~num_vars code =
  let c = ref (Twolevel.Cube.full num_vars) in
  for j = 0 to bits - 1 do
    let lit =
      if code land (1 lsl j) <> 0 then Twolevel.Cube.lit_pos
      else Twolevel.Cube.lit_neg
    in
    c := Twolevel.Cube.set_lit !c (ni + j) lit
  done;
  !c

let input_cube ~ni ~num_vars ~care ~value =
  let c = ref (Twolevel.Cube.full num_vars) in
  for i = 0 to ni - 1 do
    if care land (1 lsl i) <> 0 then begin
      let lit =
        if value land (1 lsl i) <> 0 then Twolevel.Cube.lit_pos
        else Twolevel.Cube.lit_neg
      in
      c := Twolevel.Cube.set_lit !c i lit
    end
  done;
  !c

(* Cubes over the full variable space for the (state, input) pairs the
   machine leaves unspecified; the completed semantics makes these explicit
   self-loops with all-0 outputs. *)
let unspecified_cubes m ~ni ~bits ~num_vars codes =
  let by_state = Fsm.Machine.transitions_of m in
  List.concat
    (List.init (Fsm.Machine.num_states m) (fun s ->
         let covered =
           Twolevel.Cover.make ni
             (List.map
                (fun (t : Fsm.Machine.transition) ->
                  Twolevel.Cube.of_masks ni ~care:t.in_care ~value:t.in_value)
                by_state.(s))
         in
         let holes = Twolevel.Cover.complement covered in
         let sc = state_cube ~ni ~bits ~num_vars codes.(s) in
         List.map
           (fun h ->
             (* widen the ni-var cube h into the full space, then AND in the
                state literals *)
             let wide = h lor (Twolevel.Cube.full num_vars land
                               lnot (Twolevel.Cube.full ni)) in
             (s, Twolevel.Cube.intersect wide sc))
           holes.Twolevel.Cover.cubes))

let encode ?(use_seq_dc = true) ?(minimize = true) m (codes, bits) =
  let ni = m.Fsm.Machine.num_inputs in
  let num_vars = ni + bits in
  let no = m.Fsm.Machine.num_outputs in
  let ns_on = Array.make bits [] in
  let out_on = Array.make no [] in
  let out_dc = Array.make no [] in
  (* specified transitions *)
  Array.iter
    (fun (t : Fsm.Machine.transition) ->
      let cube =
        Twolevel.Cube.intersect
          (input_cube ~ni ~num_vars ~care:t.in_care ~value:t.in_value)
          (state_cube ~ni ~bits ~num_vars codes.(t.src))
      in
      let dst_code = codes.(t.dst) in
      for j = 0 to bits - 1 do
        if dst_code land (1 lsl j) <> 0 then ns_on.(j) <- cube :: ns_on.(j)
      done;
      for k = 0 to no - 1 do
        if t.out_care land (1 lsl k) = 0 then out_dc.(k) <- cube :: out_dc.(k)
        else if t.out_value land (1 lsl k) <> 0 then
          out_on.(k) <- cube :: out_on.(k)
      done)
    m.Fsm.Machine.transitions;
  (* completion: unspecified (state, input) pairs self-loop with 0 outputs *)
  List.iter
    (fun (s, cube) ->
      let code = codes.(s) in
      for j = 0 to bits - 1 do
        if code land (1 lsl j) <> 0 then ns_on.(j) <- cube :: ns_on.(j)
      done)
    (unspecified_cubes m ~ni ~bits ~num_vars codes);
  (* external don't cares: unused state codes *)
  let seq_dc =
    if not use_seq_dc then []
    else begin
      let used = Hashtbl.create 31 in
      Array.iter (fun c -> Hashtbl.replace used c ()) codes;
      let acc = ref [] in
      for code = 0 to (1 lsl bits) - 1 do
        if not (Hashtbl.mem used code) then
          acc := state_cube ~ni ~bits ~num_vars code :: !acc
      done;
      !acc
    end
  in
  let minimize_fn on dc_extra =
    let on = Twolevel.Cover.make num_vars on in
    let dc = Twolevel.Cover.make num_vars (dc_extra @ seq_dc) in
    if minimize then Twolevel.Minimize.espresso ~on ~dc ()
    else Twolevel.Cover.drop_contained on
  in
  {
    machine = m;
    codes;
    bits;
    num_vars;
    next_state = Array.init bits (fun j -> minimize_fn ns_on.(j) []);
    outputs = Array.init no (fun k -> minimize_fn out_on.(k) out_dc.(k));
  }

(* Reference evaluation used by tests: compute (next_code, outputs) for a
   given (state code, input code) pair directly from the covers. *)
let eval t ~state_code ~input_code =
  let ni = t.machine.Fsm.Machine.num_inputs in
  let point = input_code lor (state_code lsl ni) in
  let next = ref 0 in
  Array.iteri
    (fun j f -> if Twolevel.Cover.eval f point then next := !next lor (1 lsl j))
    t.next_state;
  let outs = Array.map (fun f -> Twolevel.Cover.eval f point) t.outputs in
  (!next, outs)
