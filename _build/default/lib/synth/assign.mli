(** State assignment in the spirit of jedi: build an affinity graph over
    states, then embed the states into a minimum-width hypercube so that
    strongly related states receive codes at small Hamming distance
    (greedy seeding + pairwise-swap local search, deterministic). *)

type algorithm =
  | Input_dominant   (** fan-in related states attract (jedi "ji") *)
  | Output_dominant  (** common successors / similar outputs ("jo") *)
  | Combined         (** sum of both ("jc") *)

(** The circuit-name field: "ji", "jo" or "jc". *)
val algorithm_tag : algorithm -> string

(** Minimum code width for [n] states (at least 1). *)
val bits_needed : int -> int

val popcount : int -> int

(** Pairwise affinity matrix of a machine under an algorithm. *)
val weights : algorithm -> Fsm.Machine.t -> int array array

(** Total weighted Hamming cost of an embedding. *)
val cost : int array array -> int array -> int

(** [(codes, bits)]: one distinct code per state; the reset state always
    receives code 0 (which doubles as the circuits' power-up state). *)
val assign : ?seed:int -> algorithm -> Fsm.Machine.t -> int array * int
