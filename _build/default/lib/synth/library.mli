(** Gate library in the spirit of mcnc.genlib, restricted (as in the
    paper) to the gate types the sequential ATPGs understand: INV,
    NAND2-4, NOR2-4, AND2-4, OR2-4, plus DFFs.  Each combinational cell
    carries its tree pattern over the NAND2/INV subject basis, matched by
    {!Techmap}. *)

type pat = X | Pinv of pat | Pnand of pat * pat

type cell = {
  cell_name : string;
  fn : Netlist.Node.gate_fn;
  arity : int;
  pattern : pat;
  area : float;
  delay : float;
}

(** All cells, smallest first within each function family. *)
val cells : cell list
