(* State minimization by partition refinement (the stamina step of the SIS
   flow).  Works on the completed machine semantics (Machine.step_total), so
   the result is exactly behaviourally equivalent to the completion of the
   input machine. *)

(* Signature of a state for the initial partition: its output vector for
   every input code. *)
let output_signature m s =
  let ni = m.Fsm.Machine.num_inputs in
  let buf = Bytes.create ((1 lsl ni) * m.Fsm.Machine.num_outputs) in
  let pos = ref 0 in
  for code = 0 to (1 lsl ni) - 1 do
    let _, outs = Fsm.Machine.step_total m ~state:s ~input_code:code in
    Array.iter
      (fun b ->
        Bytes.set buf !pos (if b then '1' else '0');
        incr pos)
      outs
  done;
  Bytes.to_string buf

let successor m s code =
  let dst, _ = Fsm.Machine.step_total m ~state:s ~input_code:code in
  dst

(* Returns (block id per state, number of blocks). *)
let equivalence_classes m =
  let n = Fsm.Machine.num_states m in
  let ni = m.Fsm.Machine.num_inputs in
  let block = Array.make n 0 in
  (* initial partition by output signature *)
  let sigs = Hashtbl.create 31 in
  let next_block = ref 0 in
  for s = 0 to n - 1 do
    let key = output_signature m s in
    match Hashtbl.find_opt sigs key with
    | Some b -> block.(s) <- b
    | None ->
      Hashtbl.add sigs key !next_block;
      block.(s) <- !next_block;
      incr next_block
  done;
  (* refine: split blocks by successor-block vectors *)
  let changed = ref true in
  while !changed do
    changed := false;
    let keys = Hashtbl.create 31 in
    let new_block = Array.make n 0 in
    let count = ref 0 in
    for s = 0 to n - 1 do
      let succ_sig =
        String.concat ","
          (List.init (1 lsl ni) (fun code ->
               string_of_int block.(successor m s code)))
      in
      let key = (block.(s), succ_sig) in
      (match Hashtbl.find_opt keys key with
       | Some b -> new_block.(s) <- b
       | None ->
         Hashtbl.add keys key !count;
         new_block.(s) <- !count;
         incr count)
    done;
    if !count > !next_block then begin
      changed := true;
      next_block := !count;
      Array.blit new_block 0 block 0 n
    end
  done;
  (block, !next_block)

(* Minimized machine: one representative state per class; transitions of the
   representative with destinations remapped.  State names record the class
   members for debuggability. *)
let minimize m =
  let block, k = equivalence_classes m in
  if k = Fsm.Machine.num_states m then m
  else begin
    let rep = Array.make k (-1) in
    Array.iteri (fun s b -> if rep.(b) < 0 then rep.(b) <- s) block;
    let transitions =
      Array.of_list
        (List.concat_map
           (fun b ->
             let s = rep.(b) in
             Array.to_list m.Fsm.Machine.transitions
             |> List.filter_map (fun (t : Fsm.Machine.transition) ->
                    if t.src = s then
                      Some { t with Fsm.Machine.src = b; dst = block.(t.dst) }
                    else None))
           (List.init k (fun b -> b)))
    in
    {
      Fsm.Machine.name = m.Fsm.Machine.name ^ ".min";
      num_inputs = m.Fsm.Machine.num_inputs;
      num_outputs = m.Fsm.Machine.num_outputs;
      state_names = Array.init k (fun b -> Printf.sprintf "c%d" b);
      reset = block.(m.Fsm.Machine.reset);
      transitions;
    }
  end
