(** Multi-level boolean network: a DAG of logic nodes, each carrying a
    sum-of-products cover over its own fanin list — the object the
    optimization {!Scripts} rewrite before technology mapping.

    Signals: [0 .. num_inputs-1] are the network inputs (circuit PIs then
    present-state bits); [num_inputs + i] refers to logic node [i]. *)

type signal = int

type bnode = {
  mutable fanins : signal array;
  mutable cover : Twolevel.Cover.t;  (** over the fanins, same order *)
  mutable alive : bool;
}

type t = {
  num_inputs : int;
  mutable nodes : bnode array;
  mutable count : int;
  mutable outputs : signal array;    (** PO functions then NS functions *)
}

val create : num_inputs:int -> t
val node_of_signal : t -> signal -> int option
val signal_of_node : t -> int -> signal
val get : t -> int -> bnode

(** Append a logic node; returns its signal. *)
val add_node : t -> signal array -> Twolevel.Cover.t -> signal

val iter_live : t -> (int -> bnode -> unit) -> unit
val num_live : t -> int
val total_literals : t -> int
val total_cubes : t -> int

(** Evaluate every output for one input assignment (equivalence tests). *)
val eval : t -> bool array -> bool array

(** Use counts per signal (outputs count as uses). *)
val fanout_counts : t -> int array

(** Initial network from an encoded FSM: one node per function, fanins
    restricted to the function's support. *)
val of_encoded : Encode.t -> t

(** Dead-node elimination from the outputs. *)
val garbage_collect : t -> unit
