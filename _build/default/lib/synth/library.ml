(* Gate library in the spirit of mcnc.genlib, restricted (as in the paper)
   to the gate types the downstream sequential ATPGs understand: INV, BUF,
   NAND2-4, NOR2-4, AND2-4, OR2-4 plus DFFs.

   Each combinational cell is described by its tree pattern over the NAND2 /
   INV subject-graph basis; the technology mapper matches these patterns. *)

type pat = X | Pinv of pat | Pnand of pat * pat

type cell = {
  cell_name : string;
  fn : Netlist.Node.gate_fn;
  arity : int;
  pattern : pat;
  area : float;
  delay : float;
}

let mk name fn arity pattern =
  {
    cell_name = name;
    fn;
    arity;
    pattern;
    area = Netlist.Node.gate_area fn arity;
    delay = Netlist.Node.gate_delay fn arity;
  }

(* Balanced AND-trees as produced by Techmap's subject construction:
   and2 = Inv(Nand(a,b)). *)
let nand2_pat = Pnand (X, X)
let and2_pat = Pinv nand2_pat
let nand3_pat = Pnand (and2_pat, X)
let and3_pat = Pinv nand3_pat
let nand4_pat = Pnand (and2_pat, and2_pat)
let and4_pat = Pinv nand4_pat
let or2_pat = Pnand (Pinv X, Pinv X)
let nor2_pat = Pinv or2_pat
let or3_pat = Pnand (nor2_pat, Pinv X)
let nor3_pat = Pinv or3_pat
let or4_pat = Pnand (nor2_pat, nor2_pat)
let nor4_pat = Pinv or4_pat

let cells =
  [
    mk "inv" Netlist.Node.Not 1 (Pinv X);
    mk "nand2" Netlist.Node.Nand 2 nand2_pat;
    mk "nand3" Netlist.Node.Nand 3 nand3_pat;
    mk "nand4" Netlist.Node.Nand 4 nand4_pat;
    mk "and2" Netlist.Node.And 2 and2_pat;
    mk "and3" Netlist.Node.And 3 and3_pat;
    mk "and4" Netlist.Node.And 4 and4_pat;
    mk "or2" Netlist.Node.Or 2 or2_pat;
    mk "or3" Netlist.Node.Or 3 or3_pat;
    mk "or4" Netlist.Node.Or 4 or4_pat;
    mk "nor2" Netlist.Node.Nor 2 nor2_pat;
    mk "nor3" Netlist.Node.Nor 3 nor3_pat;
    mk "nor4" Netlist.Node.Nor 4 nor4_pat;
  ]
