lib/synth/minimize_states.ml: Array Bytes Fsm Hashtbl List Printf String
