lib/synth/flow.mli: Assign Fsm Netlist
