lib/synth/scripts.mli: Network
