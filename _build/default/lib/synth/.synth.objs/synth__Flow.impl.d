lib/synth/flow.ml: Array Assign Emit Encode Fsm Minimize_states Netlist Network Printf Scripts Techmap
