lib/synth/network.mli: Encode Twolevel
