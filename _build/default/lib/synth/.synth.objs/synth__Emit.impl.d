lib/synth/emit.ml: Array Hashtbl List Netlist Network Printf Twolevel
