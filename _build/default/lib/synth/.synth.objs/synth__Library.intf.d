lib/synth/library.mli: Netlist
