lib/synth/network.ml: Array Encode Hashtbl List Twolevel
