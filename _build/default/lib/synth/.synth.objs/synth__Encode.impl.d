lib/synth/encode.ml: Array Fsm Hashtbl List Twolevel
