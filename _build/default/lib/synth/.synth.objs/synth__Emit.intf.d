lib/synth/emit.mli: Netlist Network
