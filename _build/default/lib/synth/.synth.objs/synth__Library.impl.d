lib/synth/library.ml: Netlist
