lib/synth/techmap.ml: Array Hashtbl Library List Netlist Printf
