lib/synth/scripts.ml: Array Hashtbl List Logs Network Twolevel
