lib/synth/techmap.mli: Netlist
