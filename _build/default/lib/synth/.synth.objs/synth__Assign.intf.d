lib/synth/assign.mli: Fsm
