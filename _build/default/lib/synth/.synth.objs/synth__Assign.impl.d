lib/synth/assign.ml: Array Fsm Hashtbl List Random
