lib/synth/minimize_states.mli: Fsm
