lib/synth/encode.mli: Fsm Twolevel
