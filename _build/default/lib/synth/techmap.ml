(* Technology mapping by DP tree covering (Keutzer-style):
   1. decompose the combinational logic into a hash-consed NAND2/INV subject
      graph (double inverters collapse, so patterns stay canonical);
   2. partition the subject DAG into trees at multi-fanout points;
   3. per subject node, dynamic programming over library pattern matches;
   4. emit the chosen cells into a fresh netlist, preserving PIs, DFFs
      (with their init values) and PO names.

   [objective] selects the DP cost: [`Area] sums cell areas, [`Delay]
   minimizes worst arrival (ties broken on area). *)

type objective = [ `Area | `Delay ]

type snode =
  | Leaf of int          (* source-netlist node id (PI or DFF output) *)
  | Const of bool        (* constant subject value *)
  | Inv of int
  | Nand of int * int

type subject = {
  mutable nodes : snode array;
  mutable count : int;
  cons : (snode, int) Hashtbl.t;
}

let subject_create () = { nodes = [||]; count = 0; cons = Hashtbl.create 257 }

let subject_get s i = s.nodes.(i)

let subject_add s n =
  match Hashtbl.find_opt s.cons n with
  | Some i -> i
  | None ->
    if s.count = Array.length s.nodes then begin
      let bigger = Array.make (max 64 (2 * s.count)) (Const false) in
      Array.blit s.nodes 0 bigger 0 s.count;
      s.nodes <- bigger
    end;
    let i = s.count in
    s.nodes.(i) <- n;
    s.count <- i + 1;
    Hashtbl.add s.cons n i;
    i

(* Inverter with double-negation collapse and constant folding. *)
let s_inv s a =
  match subject_get s a with
  | Inv x -> x
  | Const b -> subject_add s (Const (not b))
  | Leaf _ | Nand _ -> subject_add s (Inv a)

let s_nand s a b =
  let ka = subject_get s a and kb = subject_get s b in
  match ka, kb with
  | Const false, _ | _, Const false -> subject_add s (Const true)
  | Const true, _ -> s_inv s b
  | _, Const true -> s_inv s a
  | (Leaf _ | Inv _ | Nand _), (Leaf _ | Inv _ | Nand _) ->
    (* canonical argument order keeps hash-consing effective *)
    let a, b = if a <= b then (a, b) else (b, a) in
    subject_add s (Nand (a, b))

let s_and s a b = s_inv s (s_nand s a b)
let s_or s a b = s_nand s (s_inv s a) (s_inv s b)

(* Balanced reduction of a list with a binary operator. *)
let rec balanced op = function
  | [] -> invalid_arg "Techmap.balanced: empty"
  | [ x ] -> x
  | xs ->
    let rec pair = function
      | [] -> []
      | [ x ] -> [ x ]
      | x :: y :: rest -> op x y :: pair rest
    in
    balanced op (pair xs)

(* Build the subject graph of the whole combinational part of [c]; returns
   (subject, per-source-node subject id). *)
let build_subject c =
  let s = subject_create () in
  let sid = Array.make (Netlist.Node.num_nodes c) (-1) in
  Array.iter
    (fun (nd : Netlist.Node.node) ->
      match nd.Netlist.Node.kind with
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ ->
        sid.(nd.Netlist.Node.id) <- subject_add s (Leaf nd.Netlist.Node.id)
      | Netlist.Node.Gate _ -> ())
    c.Netlist.Node.nodes;
  Array.iter
    (fun id ->
      let nd = Netlist.Node.node c id in
      match nd.Netlist.Node.kind with
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ()
      | Netlist.Node.Gate fn ->
        let ins =
          Array.to_list (Array.map (fun f -> sid.(f)) nd.Netlist.Node.fanins)
        in
        let out =
          match fn, ins with
          | Netlist.Node.Buf, [ a ] -> a
          | Netlist.Node.Not, [ a ] -> s_inv s a
          | Netlist.Node.And, xs -> balanced (s_and s) xs
          | Netlist.Node.Nand, xs -> s_inv s (balanced (s_and s) xs)
          | Netlist.Node.Or, xs -> balanced (s_or s) xs
          | Netlist.Node.Nor, xs -> s_inv s (balanced (s_or s) xs)
          | Netlist.Node.Xor, [ a; b ] ->
            let n = s_nand s a b in
            s_nand s (s_nand s a n) (s_nand s b n)
          | Netlist.Node.Xnor, [ a; b ] ->
            let n = s_nand s a b in
            s_inv s (s_nand s (s_nand s a n) (s_nand s b n))
          | (Netlist.Node.Buf | Netlist.Node.Not | Netlist.Node.Xor
            | Netlist.Node.Xnor), _ ->
            invalid_arg "Techmap.build_subject: bad arity"
        in
        sid.(id) <- out)
    c.Netlist.Node.order;
  (s, sid)

(* Pattern match rooted at subject node [root]; internal pattern nodes must
   not be tree roots (multi-fanout or boundary).  Returns the bound leaves
   left-to-right, or None. *)
let match_pattern s is_root root pat =
  let rec go node pat ~at_root acc =
    match pat with
    | Library.X -> Some (node :: acc)
    | Library.Pinv p ->
      if (not at_root) && is_root.(node) then None
      else (match subject_get s node with
            | Inv t -> go t p ~at_root:false acc
            | Leaf _ | Const _ | Nand _ -> None)
    | Library.Pnand (p, q) ->
      if (not at_root) && is_root.(node) then None
      else
        (match subject_get s node with
         | Nand (u, v) ->
           (match go u p ~at_root:false acc with
            | Some acc1 ->
              (match go v q ~at_root:false acc1 with
               | Some acc2 -> Some acc2
               | None -> None)
            | None -> None)
           |> (function
               | Some r -> Some r
               | None ->
                 (* commuted *)
                 (match go v p ~at_root:false acc with
                  | Some acc1 -> go u q ~at_root:false acc1
                  | None -> None))
         | Leaf _ | Const _ | Inv _ -> None)
  in
  match go root pat ~at_root:true [] with
  | Some acc -> Some (List.rev acc)
  | None -> None

type choice = {
  cell : Library.cell option;  (* None for Leaf/Const *)
  leaves : int list;
  cost_area : float;
  cost_delay : float;
}

let map ?(objective = `Area) c =
  let s, sid = build_subject c in
  (* fanout / boundary marking *)
  let uses = Array.make s.count 0 in
  for i = 0 to s.count - 1 do
    match subject_get s i with
    | Inv a -> uses.(a) <- uses.(a) + 1
    | Nand (a, b) ->
      uses.(a) <- uses.(a) + 1;
      uses.(b) <- uses.(b) + 1
    | Leaf _ | Const _ -> ()
  done;
  let is_boundary = Array.make s.count false in
  Array.iter
    (fun (_, id) -> if sid.(id) >= 0 then is_boundary.(sid.(id)) <- true)
    c.Netlist.Node.pos;
  Array.iter
    (fun d ->
      let nd = Netlist.Node.node c d in
      let src = nd.Netlist.Node.fanins.(0) in
      if sid.(src) >= 0 then is_boundary.(sid.(src)) <- true)
    c.Netlist.Node.dffs;
  let is_root = Array.init s.count (fun i -> uses.(i) > 1 || is_boundary.(i)) in
  (* DP over all subject nodes (ids are topologically ordered by
     construction). *)
  let best = Array.make s.count None in
  let better (a : choice) (b : choice) =
    match objective with
    | `Area ->
      a.cost_area < b.cost_area
      || (a.cost_area = b.cost_area && a.cost_delay < b.cost_delay)
    | `Delay ->
      a.cost_delay < b.cost_delay
      || (a.cost_delay = b.cost_delay && a.cost_area < b.cost_area)
  in
  for i = 0 to s.count - 1 do
    match subject_get s i with
    | Leaf _ | Const _ ->
      best.(i) <- Some { cell = None; leaves = []; cost_area = 0.; cost_delay = 0. }
    | Inv _ | Nand _ ->
      List.iter
        (fun (cell : Library.cell) ->
          match match_pattern s is_root i cell.Library.pattern with
          | None -> ()
          | Some leaves ->
            let ok =
              List.for_all (fun l -> best.(l) <> None) leaves
            in
            if ok then begin
              let area = ref cell.Library.area in
              let arr = ref 0.0 in
              List.iter
                (fun l ->
                  match best.(l) with
                  | Some ch ->
                    area := !area +. ch.cost_area;
                    if ch.cost_delay > !arr then arr := ch.cost_delay
                  | None -> assert false)
                leaves;
              let cand =
                {
                  cell = Some cell;
                  leaves;
                  cost_area = !area;
                  cost_delay = !arr +. cell.Library.delay;
                }
              in
              match best.(i) with
              | None -> best.(i) <- Some cand
              | Some cur -> if better cand cur then best.(i) <- Some cand
            end)
        Library.cells
  done;
  (* Emit mapped netlist. *)
  let b = Netlist.Build.create () in
  let src_map = Array.make (Netlist.Node.num_nodes c) (-1) in
  Array.iter
    (fun id ->
      let nd = Netlist.Node.node c id in
      src_map.(id) <- Netlist.Build.add_pi b nd.Netlist.Node.name)
    c.Netlist.Node.pis;
  Array.iter
    (fun id ->
      let nd = Netlist.Node.node c id in
      src_map.(id) <-
        Netlist.Build.add_dff b
          ~init:(Netlist.Node.dff_init c id)
          nd.Netlist.Node.name)
    c.Netlist.Node.dffs;
  let fresh =
    let k = ref 0 in
    fun () ->
      incr k;
      Printf.sprintf "g%d" !k
  in
  let emitted = Hashtbl.create 257 in
  let rec emit i =
    match Hashtbl.find_opt emitted i with
    | Some id -> id
    | None ->
      let id =
        match subject_get s i with
        | Leaf src -> src_map.(src)
        | Const v -> Netlist.Build.add_const b (fresh ()) v
        | Inv _ | Nand _ ->
          (match best.(i) with
           | Some { cell = Some cell; leaves; _ } ->
             let fanins = Array.of_list (List.map emit leaves) in
             Netlist.Build.add_gate b cell.Library.fn (fresh ()) fanins
           | Some { cell = None; _ } | None ->
             failwith "Techmap.map: unmatched subject node")
      in
      Hashtbl.add emitted i id;
      id
  in
  Array.iter
    (fun (name, id) -> Netlist.Build.add_po b name (emit sid.(id)))
    c.Netlist.Node.pos;
  Array.iter
    (fun d ->
      let nd = Netlist.Node.node c d in
      let data = emit sid.(nd.Netlist.Node.fanins.(0)) in
      Netlist.Build.connect_dff b src_map.(d) data)
    c.Netlist.Node.dffs;
  let mapped = Netlist.Build.finalize b in
  Netlist.Check.assert_ok mapped;
  mapped
