(* Network -> generic gate netlist (wide AND/OR/NOT gates).  This is the
   unmapped netlist handed to the technology mapper; it also instantiates the
   sequential shell: DFFs for the state bits and the optional explicit reset
   line (reset forces the next state to the reset state, whose code is 0 by
   construction in Assign). *)

type io_spec = {
  circuit_name : string;
  ni : int;            (* primary inputs of the FSM *)
  no : int;            (* primary outputs *)
  bits : int;          (* state register width *)
  reset_line : bool;
}

let to_netlist spec net =
  assert (net.Network.num_inputs = spec.ni + spec.bits);
  assert (Array.length net.Network.outputs = spec.no + spec.bits);
  let b = Netlist.Build.create () in
  let pi_ids = Array.init spec.ni (fun i -> Netlist.Build.add_pi b (Printf.sprintf "in%d" i)) in
  let reset_id = if spec.reset_line then Some (Netlist.Build.add_pi b "reset") else None in
  let dff_ids =
    Array.init spec.bits (fun j ->
        Netlist.Build.add_dff b ~init:false (Printf.sprintf "q%d" j))
  in
  let fresh =
    let k = ref 0 in
    fun prefix ->
      incr k;
      Printf.sprintf "%s%d" prefix !k
  in
  (* memoized conversion of network signals *)
  let memo = Hashtbl.create 97 in
  let inverters = Hashtbl.create 97 in
  let invert id =
    match Hashtbl.find_opt inverters id with
    | Some v -> v
    | None ->
      let v = Netlist.Build.add_gate b Netlist.Node.Not (fresh "n") [| id |] in
      Hashtbl.add inverters id v;
      v
  in
  let const_cache = Hashtbl.create 3 in
  let constant v =
    match Hashtbl.find_opt const_cache v with
    | Some id -> id
    | None ->
      let id =
        Netlist.Build.add_const b (if v then "const1" else "const0") v
      in
      Hashtbl.add const_cache v id;
      id
  in
  let rec signal s =
    match Hashtbl.find_opt memo s with
    | Some id -> id
    | None ->
      let id =
        if s < spec.ni then pi_ids.(s)
        else if s < net.Network.num_inputs then dff_ids.(s - spec.ni)
        else begin
          let n = net.Network.nodes.(s - net.Network.num_inputs) in
          convert_node n
        end
      in
      Hashtbl.add memo s id;
      id
  and literal fanins c j =
    let src = signal fanins.(j) in
    match Twolevel.Cube.get_lit c j with
    | 2 -> Some src
    | 1 -> Some (invert src)
    | _ -> None
  and convert_cube fanins c =
    let lits =
      List.filter_map
        (fun j -> literal fanins c j)
        (List.init (Array.length fanins) (fun j -> j))
    in
    match lits with
    | [] -> constant true
    | [ one ] -> one
    | many ->
      Netlist.Build.add_gate b Netlist.Node.And (fresh "a") (Array.of_list many)
  and convert_node n =
    match n.Network.cover.Twolevel.Cover.cubes with
    | [] -> constant false
    | [ c ] -> convert_cube n.Network.fanins c
    | cubes ->
      let terms = List.map (convert_cube n.Network.fanins) cubes in
      Netlist.Build.add_gate b Netlist.Node.Or (fresh "o")
        (Array.of_list terms)
  in
  (* primary outputs *)
  Array.iteri
    (fun k o ->
      if k < spec.no then
        Netlist.Build.add_po b (Printf.sprintf "out%d" k) (signal o))
    net.Network.outputs;
  (* next-state logic, with reset overriding to state code 0 *)
  Array.iteri
    (fun k o ->
      if k >= spec.no then begin
        let j = k - spec.no in
        let ns = signal o in
        let ns =
          match reset_id with
          | None -> ns
          | Some r ->
            Netlist.Build.add_gate b Netlist.Node.And
              (Printf.sprintf "nsr%d" j)
              [| ns; invert r |]
        in
        Netlist.Build.connect_dff b dff_ids.(j) ns
      end)
    net.Network.outputs;
  let c = Netlist.Build.finalize b in
  Netlist.Check.assert_ok c;
  c
