(** Multi-level optimization scripts over {!Network.t} — stand-ins for
    SIS script.rugged (area: simplify, common-cube extraction,
    elimination) and script.delay (depth: flat covers, balanced
    decomposition).  All passes preserve the network's functions
    (integration-tested against machine semantics through the full
    flow). *)

(** Espresso each node's cover (no external don't cares). *)
val simplify : Network.t -> unit

(** Substitute node [gi]'s logic into node [u]; [false] (node untouched)
    when the rewritten cover would exceed [max_cubes] or the cube-width
    limit. *)
val substitute : Network.t -> int -> Network.bnode -> max_cubes:int -> bool

(** Collapse nodes with (uses-1)*(literals-1) <= [value] into their
    fanouts; returns whether anything changed. *)
val eliminate : Network.t -> value:int -> bool

(** Greedy common-cube (single-cube divisor) extraction, at most [rounds]
    divisors. *)
val extract : Network.t -> rounds:int -> unit

(** Bound both cubes-per-node (OR width) and literals-per-cube (AND
    width) by [max_arity], introducing balanced trees. *)
val decompose : Network.t -> max_arity:int -> unit

(** simplify; eliminate; extract; simplify; decompose — area-oriented. *)
val script_rugged : Network.t -> unit

(** simplify; light eliminate; balanced decompose — depth-oriented. *)
val script_delay : Network.t -> unit
