(* Per-process memoization of the expensive analyses, keyed by circuit name:
   several tables consume the same ATPG runs and reachability results. *)

type atpg_kind = Hitec | Attest | Sest

let atpg_kind_name = function
  | Hitec -> "hitec"
  | Attest -> "attest"
  | Sest -> "sest"

let atpg_results : (string, Atpg.Types.result) Hashtbl.t = Hashtbl.create 64
let reach_results : (string, Analysis.Reach.result) Hashtbl.t = Hashtbl.create 64
let structural_results : (string, Analysis.Structural.result) Hashtbl.t =
  Hashtbl.create 64

let atpg kind ~name c =
  let key = atpg_kind_name kind ^ ":" ^ name in
  match Hashtbl.find_opt atpg_results key with
  | Some r -> r
  | None ->
    let r =
      match kind with
      | Hitec -> Atpg.Run.generate ~config:(Atpg.Hitec.config ()) c
      | Sest -> Atpg.Run.generate ~config:(Atpg.Sest.config ()) c
      | Attest -> Atpg.Attest.generate c
    in
    Hashtbl.replace atpg_results key r;
    r

let reach ~name c =
  match Hashtbl.find_opt reach_results name with
  | Some r -> r
  | None ->
    let r = Analysis.Reach.explore c in
    Hashtbl.replace reach_results name r;
    r

let structural ~name c =
  match Hashtbl.find_opt structural_results name with
  | Some r -> r
  | None ->
    let r = Analysis.Structural.analyze c in
    Hashtbl.replace structural_results name r;
    r
