(** The study's circuit factory: synthesize each benchmark FSM under a
    jedi-algorithm / script combination, then retime it — producing the
    original/retimed pairs of the paper's Table 2.  Everything is
    memoized per process, since several tables consume the same pairs. *)

type pair = {
  name : string;                  (** e.g. ["s510.jo.sr"] *)
  fsm : Fsm.Benchmarks.entry;
  synth : Synth.Flow.result;
  original : Netlist.Node.t;
  retimed : Netlist.Node.t;
  original_period : float;
  retimed_period : float;
  prefix_length : int;            (** P of the P ∪ T equivalence prefix *)
}

(** Deepening period allowance used by the paper flow (see DESIGN.md §7). *)
val default_period_slack : float

(** The input vector holding reset asserted, for reset-line circuits. *)
val reset_prefix_input : Synth.Flow.result -> bool array option

(** Build a pair from scratch (uncached). *)
val build :
  ?period_slack:float ->
  string -> Synth.Assign.algorithm -> Synth.Flow.script -> pair

(** Memoized {!build}. *)
val pair :
  ?period_slack:float ->
  string -> Synth.Assign.algorithm -> Synth.Flow.script -> pair

(** The sixteen (fsm, algorithm, script) combinations of Table 2, in the
    paper's row order. *)
val table2_selection :
  (string * Synth.Assign.algorithm * Synth.Flow.script) list

val table2_pairs : ?period_slack:float -> unit -> pair list

(** The five pairs used for the Attest confirmation (paper Table 3). *)
val confirmation_selection :
  (string * Synth.Assign.algorithm * Synth.Flow.script) list

val confirmation_pairs : ?period_slack:float -> unit -> pair list

(** Table 7 / Figure 3: s510.jo.sr plus four progressively deeper
    retimings; (name, circuit, period) per version. *)
val sensitivity_versions : unit -> (string * Netlist.Node.t * float) list
