(* Published numbers from the paper, used by the reports to print
   paper-vs-measured comparisons.  Only the columns the reproduction tracks
   are transcribed. *)

(* Table 1 *)
type fsm_row = { fsm : string; pi : int; po : int; states : int }

let table1 =
  [
    { fsm = "dk16"; pi = 3; po = 3; states = 27 };
    { fsm = "pma"; pi = 7; po = 8; states = 24 };
    { fsm = "s510"; pi = 20; po = 7; states = 47 };
    { fsm = "s820"; pi = 18; po = 19; states = 25 };
    { fsm = "s832"; pi = 18; po = 19; states = 25 };
    { fsm = "scf"; pi = 27; po = 54; states = 121 };
  ]

(* Table 2: HITEC.  (circuit, dff_orig, fc_orig, fe_orig, dff_re, fc_re,
   fe_re, cpu_ratio) *)
type hitec_row = {
  circuit : string;
  dff_orig : int;
  fc_orig : float;
  fe_orig : float;
  dff_re : int;
  fc_re : float;
  fe_re : float;
  cpu_ratio : float;
}

let table2 =
  [
    { circuit = "dk16.ji.sd"; dff_orig = 5; fc_orig = 99.8; fe_orig = 100.0;
      dff_re = 19; fc_re = 99.7; fe_re = 100.0; cpu_ratio = 323.1 };
    { circuit = "pma.jo.sd"; dff_orig = 5; fc_orig = 99.4; fe_orig = 100.0;
      dff_re = 21; fc_re = 98.8; fe_re = 99.3; cpu_ratio = 231.5 };
    { circuit = "s510.jc.sd"; dff_orig = 6; fc_orig = 98.2; fe_orig = 100.0;
      dff_re = 20; fc_re = 95.3; fe_re = 96.0; cpu_ratio = 16.6 };
    { circuit = "s510.jc.sr"; dff_orig = 6; fc_orig = 94.3; fe_orig = 99.3;
      dff_re = 26; fc_re = 53.9; fe_re = 54.6; cpu_ratio = 9.6 };
    { circuit = "s510.ji.sd"; dff_orig = 6; fc_orig = 99.2; fe_orig = 100.0;
      dff_re = 11; fc_re = 98.8; fe_re = 99.6; cpu_ratio = 56.6 };
    { circuit = "s510.ji.sr"; dff_orig = 6; fc_orig = 98.9; fe_orig = 100.0;
      dff_re = 23; fc_re = 91.4; fe_re = 92.0; cpu_ratio = 27.6 };
    { circuit = "s510.jo.sr"; dff_orig = 6; fc_orig = 96.2; fe_orig = 100.0;
      dff_re = 28; fc_re = 56.5; fe_re = 57.0; cpu_ratio = 261.6 };
    { circuit = "s820.jc.sd"; dff_orig = 5; fc_orig = 99.4; fe_orig = 99.9;
      dff_re = 14; fc_re = 95.3; fe_re = 96.6; cpu_ratio = 174.2 };
    { circuit = "s820.jc.sr"; dff_orig = 5; fc_orig = 98.7; fe_orig = 100.0;
      dff_re = 9; fc_re = 98.5; fe_re = 99.8; cpu_ratio = 6.6 };
    { circuit = "s820.ji.sr"; dff_orig = 5; fc_orig = 98.2; fe_orig = 100.0;
      dff_re = 8; fc_re = 97.3; fe_re = 100.0; cpu_ratio = 35.4 };
    { circuit = "s820.jo.sd"; dff_orig = 5; fc_orig = 100.0; fe_orig = 100.0;
      dff_re = 22; fc_re = 92.5; fe_re = 93.6; cpu_ratio = 297.7 };
    { circuit = "s820.jo.sr"; dff_orig = 5; fc_orig = 98.6; fe_orig = 99.8;
      dff_re = 13; fc_re = 97.3; fe_re = 98.8; cpu_ratio = 80.4 };
    { circuit = "s832.jc.sr"; dff_orig = 5; fc_orig = 98.4; fe_orig = 100.0;
      dff_re = 27; fc_re = 53.7; fe_re = 56.0; cpu_ratio = 405.7 };
    { circuit = "s832.jo.sr"; dff_orig = 5; fc_orig = 98.1; fe_orig = 100.0;
      dff_re = 15; fc_re = 96.7; fe_re = 99.1; cpu_ratio = 452.6 };
    { circuit = "scf.ji.sd"; dff_orig = 7; fc_orig = 99.6; fe_orig = 100.0;
      dff_re = 20; fc_re = 63.1; fe_re = 63.7; cpu_ratio = 40.0 };
    { circuit = "scf.jo.sd"; dff_orig = 7; fc_orig = 99.6; fe_orig = 100.0;
      dff_re = 23; fc_re = 97.8; fe_re = 97.9; cpu_ratio = 41.8 };
  ]

(* Tables 3 and 4: confirmations. *)
type confirm_row = {
  ccircuit : string;
  cfc_orig : float;
  cfe_orig : float;
  cfc_re : float;
  cfe_re : float;
  ccpu_ratio : float;
}

let table3 =
  [
    { ccircuit = "dk16.ji.sd"; cfc_orig = 99.3; cfe_orig = 99.7;
      cfc_re = 95.1; cfe_re = 99.3; ccpu_ratio = 176.2 };
    { ccircuit = "pma.jo.sd"; cfc_orig = 99.2; cfe_orig = 99.4;
      cfc_re = 96.3; cfe_re = 98.3; ccpu_ratio = 18.8 };
    { ccircuit = "s510.jc.sd"; cfc_orig = 95.0; cfe_orig = 95.3;
      cfc_re = 51.9; cfe_re = 52.2; ccpu_ratio = 23.3 };
    { ccircuit = "s510.ji.sr"; cfc_orig = 95.6; cfe_orig = 95.6;
      cfc_re = 79.9; cfe_re = 79.9; ccpu_ratio = 8.0 };
    { ccircuit = "s510.jo.sr"; cfc_orig = 94.2; cfe_orig = 94.2;
      cfc_re = 71.5; cfe_re = 71.5; ccpu_ratio = 12.3 };
  ]

let table4 =
  [
    { ccircuit = "dk16.ji.sd"; cfc_orig = 98.0; cfe_orig = 99.8;
      cfc_re = 97.6; cfe_re = 99.3; ccpu_ratio = 3.5 };
    { ccircuit = "pma.jo.sd"; cfc_orig = 98.3; cfe_orig = 100.0;
      cfc_re = 96.4; cfe_re = 97.8; ccpu_ratio = 104.6 };
    { ccircuit = "s510.jc.sd"; cfc_orig = 95.4; cfe_orig = 98.2;
      cfc_re = 6.7; cfe_re = 10.4; ccpu_ratio = 2.1 };
    { ccircuit = "s510.ji.sd"; cfc_orig = 95.7; cfe_orig = 99.5;
      cfc_re = 95.2; cfe_re = 99.1; ccpu_ratio = 2.5 };
    { ccircuit = "s510.jo.sr"; cfc_orig = 92.2; cfe_orig = 94.6;
      cfc_re = 63.6; cfe_re = 65.4; ccpu_ratio = 2.7 };
  ]

(* Table 5: structural attributes (orig = retimed for depth and max cycle
   length; #cycles grows). *)
type structure_row = {
  scircuit : string;
  depth : int;             (* same for orig and retimed *)
  max_cycle : int;         (* same for orig and retimed *)
  cycles_orig : int;
  cycles_re : int;
}

let table5 =
  [
    { scircuit = "dk16.ji.sd"; depth = 4; max_cycle = 4; cycles_orig = 10; cycles_re = 19 };
    { scircuit = "pma.jo.sd"; depth = 5; max_cycle = 5; cycles_orig = 12; cycles_re = 18 };
    { scircuit = "s510.jc.sd"; depth = 6; max_cycle = 6; cycles_orig = 15; cycles_re = 26 };
    { scircuit = "s510.jc.sr"; depth = 6; max_cycle = 6; cycles_orig = 16; cycles_re = 32 };
    { scircuit = "s510.ji.sd"; depth = 6; max_cycle = 6; cycles_orig = 18; cycles_re = 21 };
    { scircuit = "s510.ji.sr"; depth = 6; max_cycle = 6; cycles_orig = 18; cycles_re = 33 };
    { scircuit = "s510.jo.sr"; depth = 6; max_cycle = 5; cycles_orig = 15; cycles_re = 28 };
    { scircuit = "s820.jc.sd"; depth = 5; max_cycle = 5; cycles_orig = 14; cycles_re = 19 };
    { scircuit = "s820.jc.sr"; depth = 5; max_cycle = 5; cycles_orig = 14; cycles_re = 18 };
    { scircuit = "s820.ji.sr"; depth = 5; max_cycle = 5; cycles_orig = 12; cycles_re = 14 };
    { scircuit = "s820.jo.sd"; depth = 5; max_cycle = 5; cycles_orig = 14; cycles_re = 24 };
    { scircuit = "s820.jo.sr"; depth = 5; max_cycle = 5; cycles_orig = 13; cycles_re = 19 };
    { scircuit = "s832.jc.sr"; depth = 5; max_cycle = 5; cycles_orig = 11; cycles_re = 25 };
    { scircuit = "s832.jo.sr"; depth = 5; max_cycle = 5; cycles_orig = 14; cycles_re = 22 };
    { scircuit = "scf.ji.sd"; depth = 7; max_cycle = 6; cycles_orig = 22; cycles_re = 32 };
    { scircuit = "scf.jo.sd"; depth = 7; max_cycle = 6; cycles_orig = 19; cycles_re = 27 };
  ]

(* Table 6: density of encoding (original, retimed) per pair. *)
type density_row = {
  dcircuit : string;
  density_orig : float;
  density_re : float;
  valid_orig : int;
  valid_re : int;
}

let table6 =
  [
    { dcircuit = "dk16.ji.sd"; density_orig = 0.84; density_re = 2.0e-4; valid_orig = 27; valid_re = 105 };
    { dcircuit = "pma.jo.sd"; density_orig = 0.84; density_re = 1.3e-5; valid_orig = 27; valid_re = 27 };
    { dcircuit = "s510.jc.sd"; density_orig = 0.73; density_re = 4.5e-5; valid_orig = 47; valid_re = 47 };
    { dcircuit = "s510.jc.sr"; density_orig = 0.73; density_re = 2.2e-6; valid_orig = 47; valid_re = 148 };
    { dcircuit = "s510.ji.sd"; density_orig = 0.73; density_re = 3.4e-2; valid_orig = 47; valid_re = 70 };
    { dcircuit = "s510.ji.sr"; density_orig = 0.73; density_re = 2.4e-5; valid_orig = 47; valid_re = 202 };
    { dcircuit = "s510.jo.sr"; density_orig = 0.73; density_re = 1.8e-6; valid_orig = 47; valid_re = 490 };
    { dcircuit = "s820.jc.sd"; density_orig = 0.75; density_re = 1.0e-3; valid_orig = 24; valid_re = 164 };
    { dcircuit = "s820.jc.sr"; density_orig = 0.75; density_re = 9.1e-2; valid_orig = 24; valid_re = 47 };
    { dcircuit = "s820.ji.sr"; density_orig = 0.75; density_re = 3.9e-3; valid_orig = 24; valid_re = 50 };
    { dcircuit = "s820.jo.sd"; density_orig = 0.75; density_re = 7.1e-5; valid_orig = 24; valid_re = 297 };
    { dcircuit = "s820.jo.sr"; density_orig = 0.75; density_re = 5.9e-3; valid_orig = 24; valid_re = 48 };
    { dcircuit = "s832.jc.sr"; density_orig = 0.75; density_re = 2.0e-6; valid_orig = 24; valid_re = 273 };
    { dcircuit = "s832.jo.sr"; density_orig = 0.75; density_re = 1.6e-3; valid_orig = 24; valid_re = 54 };
    { dcircuit = "scf.ji.sd"; density_orig = 0.73; density_re = 2.0e-4; valid_orig = 94; valid_re = 209 };
    { dcircuit = "scf.jo.sd"; density_orig = 0.73; density_re = 1.1e-5; valid_orig = 94; valid_re = 94 };
  ]

(* Table 7: sensitivity versions of s510.jo.sr. *)
type sensitivity_row = {
  vname : string;
  vdelay : float;
  vdff : int;
  vvalid : int;
  vdensity : float;
}

let table7 =
  [
    { vname = "s510.jo.sr"; vdelay = 43.87; vdff = 6; vvalid = 47; vdensity = 0.73 };
    { vname = "s510.jo.sr.re.v1"; vdelay = 42.51; vdff = 8; vvalid = 71; vdensity = 0.28 };
    { vname = "s510.jo.sr.re.v2"; vdelay = 42.04; vdff = 16; vvalid = 150; vdensity = 2.3e-3 };
    { vname = "s510.jo.sr.re.v3"; vdelay = 41.55; vdff = 22; vvalid = 233; vdensity = 5.6e-5 };
    { vname = "s510.jo.sr.re"; vdelay = 41.51; vdff = 28; vvalid = 490; vdensity = 1.8e-6 };
  ]

(* Table 8: the four worst retimed circuits. *)
type rescue_row = {
  rcircuit : string;
  rfc : float;
  rfe : float;
  rstates_trav : int;
  rvalid : int;
  rstates_orig_set : int;
  rfc_orig_set : float;
}

let table8 =
  [
    { rcircuit = "s510.jc.sr.re"; rfc = 53.9; rfe = 54.6; rstates_trav = 18;
      rvalid = 148; rstates_orig_set = 72; rfc_orig_set = 94.6 };
    { rcircuit = "s510.jo.sr.re"; rfc = 56.5; rfe = 57.0; rstates_trav = 22;
      rvalid = 490; rstates_orig_set = 102; rfc_orig_set = 96.2 };
    { rcircuit = "s832.jc.sr.re"; rfc = 53.7; rfe = 56.0; rstates_trav = 23;
      rvalid = 273; rstates_orig_set = 69; rfc_orig_set = 98.2 };
    { rcircuit = "scf.ji.sd.re"; rfc = 63.1; rfe = 63.7; rstates_trav = 41;
      rvalid = 209; rstates_orig_set = 147; rfc_orig_set = 99.5 };
  ]
