(* Whole-study driver: run every experiment, print every table, and render
   the paper-vs-measured summary used by EXPERIMENTS.md. *)

let run_all ppf () =
  let t1 = Tables.T1.compute () in
  Tables.T1.pp ppf t1;
  Fmt.pf ppf "@.";
  let t2 = Tables.T2.compute () in
  Tables.T2.pp ppf t2;
  Fmt.pf ppf "@.";
  let t3 = Tables.T3.compute () in
  Tables.T3.pp ppf t3;
  Fmt.pf ppf "@.";
  let t4 = Tables.T4.compute () in
  Tables.T4.pp ppf t4;
  Fmt.pf ppf "@.";
  let t5 = Tables.T5.compute () in
  Tables.T5.pp ppf t5;
  Fmt.pf ppf "@.";
  let t6 = Tables.T6.compute () in
  Tables.T6.pp ppf t6;
  Fmt.pf ppf "@.";
  let t7 = Tables.T7.compute () in
  Tables.T7.pp ppf t7;
  Fmt.pf ppf "@.";
  let t8 = Tables.T8.compute () in
  Tables.T8.pp ppf t8;
  Fmt.pf ppf "@.";
  let f3 = Figure3.compute () in
  Figure3.pp ppf f3;
  Fmt.pf ppf "@."

(* Shape checks: the qualitative claims the reproduction must reproduce.
   Returns (claim, holds) pairs; used by tests and by the summary. *)
let shape_checks () =
  let t2 = Tables.T2.compute () in
  let t5 = Tables.T5.compute () in
  let t6 = Tables.T6.compute () in
  let t7 = Tables.T7.compute () in
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l)) in
  let geo l =
    exp (mean (List.map (fun x -> log (max 1e-9 x)) l))
  in
  let ratios = List.map (fun (r : Tables.Atpg_pair.row) -> r.Tables.Atpg_pair.cpu_ratio) t2 in
  let claims =
    [
      ( "retiming adds DFFs in every pair",
        List.for_all
          (fun (r : Tables.Atpg_pair.row) ->
            r.Tables.Atpg_pair.dff_re > r.Tables.Atpg_pair.dff_orig)
          t2 );
      ( "HITEC CPU ratio retimed/original > 1 (geometric mean)",
        geo ratios > 1.0 );
      ( "fault coverage never higher on retimed (mean)",
        mean (List.map (fun (r : Tables.Atpg_pair.row) -> r.Tables.Atpg_pair.fc_re) t2)
        <= mean (List.map (fun (r : Tables.Atpg_pair.row) -> r.Tables.Atpg_pair.fc_orig) t2) );
      ( "sequential depth invariant under retiming (Theorem 2)",
        List.for_all
          (fun (r : Tables.T5.row) -> r.Tables.T5.depth_orig = r.Tables.T5.depth_re)
          t5 );
      ( "max cycle length invariant under retiming (Theorem 4)",
        List.for_all
          (fun (r : Tables.T5.row) ->
            r.Tables.T5.max_cycle_orig = r.Tables.T5.max_cycle_re)
          t5 );
      ( "counted cycles do not decrease under retiming",
        List.for_all
          (fun (r : Tables.T5.row) ->
            r.Tables.T5.cycles_re >= r.Tables.T5.cycles_orig)
          t5 );
      ( "density of encoding drops for every retimed circuit",
        let rec pairs = function
          | o :: r :: rest -> (o, r) :: pairs rest
          | _ -> []
        in
        List.for_all
          (fun ((o : Tables.T6.row), (r : Tables.T6.row)) ->
            r.Tables.T6.density < o.Tables.T6.density)
          (pairs t6) );
      ( "Table 7 density decreases monotonically with DFF count",
        let rec mono = function
          | (a : Tables.T7.row) :: b :: rest ->
            a.Tables.T7.density >= b.Tables.T7.density && mono (b :: rest)
          | _ -> true
        in
        mono t7 );
    ]
  in
  claims

let pp_shape_checks ppf () =
  Fmt.pf ppf "Shape checks (paper's qualitative claims):@.";
  List.iter
    (fun (claim, ok) ->
      Fmt.pf ppf "  [%s] %s@." (if ok then "ok" else "FAIL") claim)
    (shape_checks ())
