lib/core/tables.ml: Analysis Array Atpg Cache Flow Fmt Fsim Fsm Hashtbl List Netlist String Synth
