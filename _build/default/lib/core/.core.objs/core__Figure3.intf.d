lib/core/figure3.mli: Format
