lib/core/report.ml: Figure3 Fmt List Tables
