lib/core/paper.ml:
