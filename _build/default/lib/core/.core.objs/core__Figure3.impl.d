lib/core/figure3.ml: Analysis Atpg Cache Flow Fmt List
