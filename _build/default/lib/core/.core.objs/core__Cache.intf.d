lib/core/cache.mli: Analysis Atpg Netlist
