lib/core/paper.mli:
