lib/core/flow.mli: Fsm Netlist Synth
