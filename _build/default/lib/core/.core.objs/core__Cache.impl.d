lib/core/cache.ml: Analysis Atpg Hashtbl
