lib/core/tables.mli: Cache Flow Format Netlist Synth
