lib/core/flow.ml: Array Fsm Hashtbl List Netlist Printf Retime Synth
