(** Published numbers transcribed from the paper's tables, used by the
    reports and tests for paper-vs-measured comparisons.  Only the columns
    the reproduction tracks are included. *)

type fsm_row = { fsm : string; pi : int; po : int; states : int }

val table1 : fsm_row list

type hitec_row = {
  circuit : string;
  dff_orig : int;
  fc_orig : float;
  fe_orig : float;
  dff_re : int;
  fc_re : float;
  fe_re : float;
  cpu_ratio : float;
}

val table2 : hitec_row list

type confirm_row = {
  ccircuit : string;
  cfc_orig : float;
  cfe_orig : float;
  cfc_re : float;
  cfe_re : float;
  ccpu_ratio : float;
}

val table3 : confirm_row list
val table4 : confirm_row list

type structure_row = {
  scircuit : string;
  depth : int;        (** identical for original and retimed *)
  max_cycle : int;    (** identical for original and retimed *)
  cycles_orig : int;
  cycles_re : int;
}

val table5 : structure_row list

type density_row = {
  dcircuit : string;
  density_orig : float;
  density_re : float;
  valid_orig : int;
  valid_re : int;
}

val table6 : density_row list

type sensitivity_row = {
  vname : string;
  vdelay : float;
  vdff : int;
  vvalid : int;
  vdensity : float;
}

val table7 : sensitivity_row list

type rescue_row = {
  rcircuit : string;
  rfc : float;
  rfe : float;
  rstates_trav : int;
  rvalid : int;
  rstates_orig_set : int;
  rfc_orig_set : float;
}

val table8 : rescue_row list
