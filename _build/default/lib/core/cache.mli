(** Per-process memoization of the expensive analyses, keyed by circuit
    name: several tables consume the same ATPG runs, reachability results
    and structural measurements. *)

type atpg_kind =
  | Hitec   (** PODEM + justification, no learning *)
  | Attest  (** simulation-based directed search *)
  | Sest    (** PODEM + dynamic state learning *)

val atpg_kind_name : atpg_kind -> string

(** Run (or recall) an engine on a named circuit. *)
val atpg : atpg_kind -> name:string -> Netlist.Node.t -> Atpg.Types.result

val reach : name:string -> Netlist.Node.t -> Analysis.Reach.result

val structural :
  name:string -> Netlist.Node.t -> Analysis.Structural.result
