(** Whole-study driver: run every experiment, print every table and the
    figure, and evaluate the paper's qualitative claims. *)

(** Print Tables 1-8 and Figure 3 (computing everything, memoized). *)
val run_all : Format.formatter -> unit -> unit

(** The shape criteria the reproduction must satisfy, as
    (claim, holds) pairs — also asserted by the test suite. *)
val shape_checks : unit -> (string * bool) list

val pp_shape_checks : Format.formatter -> unit -> unit
