(* Benchmark harness: regenerates every table and figure of the paper
   (printed to stdout) and wraps the computational kernel behind each table
   in a Bechamel micro-benchmark.

     dune exec bench/main.exe                 everything
     dune exec bench/main.exe -- tables       only the table regeneration
     dune exec bench/main.exe -- micro        only the micro-benchmarks
     dune exec bench/main.exe -- atpg         engine grid -> BENCH_atpg.json
     dune exec bench/main.exe -- reach        explicit vs symbolic -> BENCH_reach.json
     dune exec bench/main.exe -- fsim         tape vs nodes backend -> BENCH_fsim.json
     dune exec bench/main.exe -- serve        satpg serve workload -> BENCH_serve.json
     SATPG_BUDGET=4 dune exec bench/main.exe  higher-fidelity ATPG runs

   `serve` needs a dedicated cold SATPG_STORE (its cold phase asserts
   cache misses) and is not part of the default `all` sweep.

   Ablations (design choices from DESIGN.md §6) run with the tables:
     mapping objective (area vs delay), random-phase fault dropping,
     SEST state learning. *)

let say fmt = Fmt.pr fmt

(* Internal consistency checks (table shape checks, backend bit-identity,
   serve-phase assertions) record here as well as printing, so every mode
   exits non-zero when one trips — the CI gates rely on the exit code,
   not on scraping stdout for FAIL lines. *)
let failures : string list ref = ref []

let check_failed fmt =
  Printf.ksprintf
    (fun m ->
      say "FAIL: %s@." m;
      failures := m :: !failures)
    fmt

let check name ok = if not ok then check_failed "%s" name

(* ------------------------------------------------------- table regeneration *)

let ablation_mapping () =
  say "Ablation: technology-mapping objective (area vs delay)@.";
  say "%-12s %10s %10s %10s %10s@." "fsm" "area(A)" "delay(A)" "area(D)"
    "delay(D)";
  List.iter
    (fun fsm ->
      let e = Fsm.Benchmarks.find fsm in
      let m = Fsm.Benchmarks.machine e in
      let mm = Synth.Minimize_states.minimize m in
      let codes = Synth.Assign.assign Synth.Assign.Combined mm in
      let enc = Synth.Encode.encode mm codes in
      let net = Synth.Network.of_encoded enc in
      Synth.Scripts.script_rugged net;
      let spec =
        {
          Synth.Emit.circuit_name = fsm;
          ni = mm.Fsm.Machine.num_inputs;
          no = mm.Fsm.Machine.num_outputs;
          bits = snd codes;
          reset_line = false;
        }
      in
      let generic = Synth.Emit.to_netlist spec net in
      let a = Synth.Techmap.map ~objective:`Area generic in
      let d = Synth.Techmap.map ~objective:`Delay generic in
      say "%-12s %10.1f %10.2f %10.1f %10.2f@." fsm (Netlist.Node.area a)
        (Netlist.Node.critical_path a) (Netlist.Node.area d)
        (Netlist.Node.critical_path d))
    [ "dk16"; "pma"; "s820" ]

let ablation_dropping () =
  say "Ablation: random-phase fault dropping (dk16.ji.sd original)@.";
  let p = Core.Flow.pair "dk16" Synth.Assign.Input_dominant Synth.Flow.Delay in
  let c = p.Core.Flow.original in
  let with_rand = Atpg.Run.generate ~random_sequences_count:2 c in
  let without = Atpg.Run.generate ~random_sequences_count:0 c in
  let w r = Atpg.Types.work_units r.Atpg.Types.stats in
  say "  with random phase   : FC %.1f%%  work %d@."
    with_rand.Atpg.Types.fault_coverage (w with_rand);
  say "  without random phase: FC %.1f%%  work %d@."
    without.Atpg.Types.fault_coverage (w without)

let ablation_learning () =
  (* dk16's retimed circuit finishes inside the global budget, so the
     learning saving is visible (the s510 worst case saturates the cap with
     or without learning). *)
  say "Ablation: SEST state learning (dk16.ji.sd retimed)@.";
  let p = Core.Flow.pair "dk16" Synth.Assign.Input_dominant Synth.Flow.Delay in
  let re = p.Core.Flow.retimed in
  let off = Atpg.Run.generate ~config:(Atpg.Hitec.config ()) re in
  let on = Atpg.Run.generate ~config:(Atpg.Sest.config ()) re in
  let w r = Atpg.Types.work_units r.Atpg.Types.stats in
  say "  learning off: FC %.1f%%  work %d@." off.Atpg.Types.fault_coverage
    (w off);
  say "  learning on : FC %.1f%%  work %d@." on.Atpg.Types.fault_coverage
    (w on)

let run_tables () =
  let t0 = Unix.gettimeofday () in
  Core.Report.run_all Fmt.stdout ();
  Core.Report.pp_shape_checks Fmt.stdout ();
  List.iter
    (fun (name, ok) ->
      if not ok then check_failed "table shape check: %s" name)
    (Core.Report.shape_checks ());
  say "@.";
  ablation_mapping ();
  say "@.";
  ablation_dropping ();
  say "@.";
  ablation_learning ();
  say "@.(table regeneration took %.1fs; scale with SATPG_BUDGET, persist \
       with SATPG_STORE)@."
    (Unix.gettimeofday () -. t0);
  say "%a@." Core.Cache.pp_summary ()

(* ------------------------------------------------- provenance + history *)

let budget_string () = Option.value ~default:"" (Sys.getenv_opt "SATPG_BUDGET")
let history_file = "results/BENCH_history.jsonl"

(* Build and persist the benchmark mode's provenance manifest; the
   BENCH_*.json records and the history lines point at it by id. *)
let bench_manifest ~command ~circuit ~circuit_hash ~work_units =
  let m =
    Obs.Ledger.make ~tool:"bench" ~command ~circuit ~circuit_hash
      ~jobs:(Exec.Pool.jobs ()) ~budget:(budget_string ()) ~work_units
      ~metrics:(Obs.Metrics.snapshot ()) ~spans:[] ~event_lines:[] ()
  in
  if Store.Disk.enabled () then
    ignore
      (Store.Disk.save Store.Disk.Manifest ~key:(Obs.Ledger.id m)
         ~name:("bench " ^ command)
         (Store.Codec.manifest_to_json m)
        : bool);
  m

let with_fields extra = function
  | Obs.Json.Obj fields -> Obs.Json.Obj (fields @ extra)
  | j -> j

let record_int name r =
  Option.value ~default:0
    (Option.bind (Obs.Json.member name r) Obs.Json.to_int_opt)

(* Append this run's records to the append-only history — one JSONL line
   per record (suite tag + record fields + epoch seconds), so
   `satpg diff --history` can chart per-cell work-unit trajectories
   across commits.  The records already carry the manifest id. *)
let append_history ~suite records =
  let ts = int_of_float (Unix.time ()) in
  List.iter
    (fun r ->
      Obs.Fileio.append_line history_file
        (Obs.Json.to_string
           (with_fields [ ("ts", Obs.Json.Int ts) ]
              (match r with
               | Obs.Json.Obj fields ->
                 Obs.Json.Obj (("suite", Obs.Json.String suite) :: fields)
               | j -> j))))
    records;
  say "appended %d records to %s@." (List.length records) history_file

(* --------------------------------------------------- engine benchmark JSON *)

(* The six study pairs of the paper (Table 2 rows the whole bench suite
   standardizes on; same selection as the fsim bench below). *)
let study_pairs () =
  let ji = Synth.Assign.Input_dominant
  and jo = Synth.Assign.Output_dominant
  and jc = Synth.Assign.Combined in
  let sd = Synth.Flow.Delay and sr = Synth.Flow.Rugged in
  [ ("dk16", ji, sd); ("pma", jo, sd); ("s510", jc, sd);
    ("s820", jc, sr); ("s832", jo, sr); ("scf", ji, sd) ]

(* Conflict-driven structural learning races at a fixed budget, 0.2x the
   defaults and independent of SATPG_BUDGET: at the CI table budget
   (0.05) aborted faults saturate the per-fault work cap after a handful
   of decisions and there is nothing to learn from, while at 0.2x the
   searches are conflict-rich and learning has material to prune with.
   The fixed budget keeps the learn-on/learn-off comparison meaningful
   at every SATPG_BUDGET setting. *)
let race_config ~struct_learn =
  {
    Atpg.Types.default_config with
    Atpg.Types.backtrack_limit = 160;
    work_limit = 240_000;
    total_work_limit = 50_000_000;
    learn = false;
    struct_learn;
  }

(* Engine x benchmark grid on the dk16.ji.sd pair, written to
   BENCH_atpg.json (schema documented in results/README.md): one record per
   run with deterministic work units, wall seconds, fault coverage and
   efficiency, the proved-untestable count and the cache outcome.  Every
   run proves untestability first ([prove_untestable], full cascade) and
   prunes, so aborted-but-redundant faults surface as efficiency, not
   lost coverage.  Each record also carries the circuit's
   proved-untestable count on the retiming-invariant (gate/PI-site)
   universe — the Theorem-1 gate in CI checks that count is identical
   for the original and retimed circuit.  Runs go through Core.Cache, so
   with SATPG_STORE set a warm rerun serves every record from disk and
   its wall_s measures the store, not the engine. *)
let run_atpg_json ?(file = "BENCH_atpg.json") () =
  let p = Core.Flow.pair "dk16" Synth.Assign.Input_dominant Synth.Flow.Delay in
  let engines =
    [ ("hitec", Core.Cache.Hitec); ("attest", Core.Cache.Attest);
      ("sest", Core.Cache.Sest) ]
  in
  let circuits =
    [ (p.Core.Flow.name, p.Core.Flow.original);
      (p.Core.Flow.name ^ ".re", p.Core.Flow.retimed) ]
  in
  let invariant_proved =
    List.map
      (fun (bench, circuit) ->
        let t =
          Core.Cache.classify ~universe:Core.Cache.Invariant ~name:bench
            circuit
        in
        (bench, t.Analysis.Untest.summary.Analysis.Untest.proved))
      circuits
  in
  let cells =
    List.concat_map
      (fun (engine, kind) ->
        List.map (fun (bench, circuit) -> (engine, kind, bench, circuit))
          circuits)
      engines
  in
  (* same config recipe as Core.Cache.atpg: the per-record fingerprint
     matches the one in the record's cache key *)
  let config_fps =
    List.map
      (fun (engine, kind) ->
        let config =
          match kind with
          | Core.Cache.Hitec -> Atpg.Hitec.config ()
          | Core.Cache.Sest -> Atpg.Sest.config ()
          | Core.Cache.Attest -> Atpg.Types.scaled_config ()
        in
        (engine, Store.Key.config_fingerprint config))
      engines
  in
  (* The grid cells shard across domains (Exec.Pool merges results in
     grid order, so the printed lines and the JSON records keep the
     sequential layout); [last_outcome] is domain-local and read inside
     the cell, right after its lookup. *)
  let records =
    Exec.Pool.map_list
      (fun (engine, kind, bench, circuit) ->
        let t0 = Unix.gettimeofday () in
        let r = Core.Cache.atpg ~prove_untestable:true kind ~name:bench circuit in
        let wall = Unix.gettimeofday () -. t0 in
        let cache = Core.Cache.outcome_string (Core.Cache.last_outcome ()) in
        (engine, bench, r, wall, cache))
      cells
    |> List.map (fun (engine, bench, r, wall, cache) ->
           let proved =
             Array.fold_left
               (fun a s ->
                 if s = Fsim.Fault.Proved_untestable then a + 1 else a)
               0 r.Atpg.Types.status
           in
           say "  %-7s %-12s FC %5.1f%%  FE %5.1f%%  proved %3d  work %9d  \
                wall %6.2fs  cache %s@."
             engine bench r.Atpg.Types.fault_coverage
             r.Atpg.Types.fault_efficiency proved
             (Atpg.Types.work_units r.Atpg.Types.stats)
             wall cache;
           Obs.Json.Obj
             [
               ("engine", Obs.Json.String engine);
               ("benchmark", Obs.Json.String bench);
               ( "work_units",
                 Obs.Json.Int (Atpg.Types.work_units r.Atpg.Types.stats) );
               ("wall_s", Obs.Json.Float wall);
               ("coverage", Obs.Json.Float r.Atpg.Types.fault_coverage);
               ("efficiency", Obs.Json.Float r.Atpg.Types.fault_efficiency);
               ("proved_untestable", Obs.Json.Int proved);
               ( "invariant_proved",
                 Obs.Json.Int (List.assoc bench invariant_proved) );
               ("cache", Obs.Json.String cache);
               ( "config_fp",
                 Obs.Json.String (List.assoc engine config_fps) );
             ])
  in
  (* Structural-learning race (DESIGN §12): learn-on vs learn-off
     time-frame PODEM on all six study pairs, original and retimed, at
     the fixed race budget.  Runs bypass the result cache — the race
     measures the engine, not the store — and learn-on forces the
     deterministic sequential driver, so work_units is exactly
     reproducible; the CI learning gate compares the two modes inside
     this one file (originals must not regress, at least one retimed
     pair must improve materially, coverage must never drop). *)
  let race_cells =
    List.concat_map
      (fun (name, a, s) ->
        let p = Core.Flow.pair name a s in
        [ (p.Core.Flow.name, p.Core.Flow.original);
          (p.Core.Flow.name ^ ".re", p.Core.Flow.retimed) ])
      (study_pairs ())
  in
  (* sequential on purpose: honest per-cell walls, and the learn-on
     store is built per run on one domain *)
  let race_records =
    List.concat_map
      (fun (bench, circuit) ->
        List.map
          (fun struct_learn ->
            let mode = if struct_learn then "learn-on" else "learn-off" in
            let config = race_config ~struct_learn in
            Core.Cache.note_bypass ();
            let t0 = Unix.gettimeofday () in
            let r = Atpg.Run.generate ~config ~engine:mode circuit in
            let wall = Unix.gettimeofday () -. t0 in
            let st = r.Atpg.Types.stats in
            say
              "  %-9s %-12s FC %5.1f%%  FE %5.1f%%  work %9d  clauses %4d  \
               hits %4d+%-4d  wall %6.2fs@."
              mode bench r.Atpg.Types.fault_coverage
              r.Atpg.Types.fault_efficiency
              (Atpg.Types.work_units st)
              st.Atpg.Types.learn_clauses st.Atpg.Types.learn_hits
              st.Atpg.Types.learn_cube_hits wall;
            Obs.Json.Obj
              [
                ("engine", Obs.Json.String mode);
                ("benchmark", Obs.Json.String bench);
                ("work_units", Obs.Json.Int (Atpg.Types.work_units st));
                ("wall_s", Obs.Json.Float wall);
                ("coverage", Obs.Json.Float r.Atpg.Types.fault_coverage);
                ( "efficiency",
                  Obs.Json.Float r.Atpg.Types.fault_efficiency );
                ("proved_untestable", Obs.Json.Int 0);
                (* the Theorem-1 invariant gate reads only the engine
                   grid above; race records carry no claim *)
                ("invariant_proved", Obs.Json.Null);
                ("cache", Obs.Json.String "bypassed");
                ( "config_fp",
                  Obs.Json.String (Store.Key.config_fingerprint config) );
                ( "learn_conflicts",
                  Obs.Json.Int st.Atpg.Types.learn_conflicts );
                ("learn_clauses", Obs.Json.Int st.Atpg.Types.learn_clauses);
                ( "learn_literals",
                  Obs.Json.Int st.Atpg.Types.learn_literals );
                ("learn_hits", Obs.Json.Int st.Atpg.Types.learn_hits);
                ( "learn_cube_hits",
                  Obs.Json.Int st.Atpg.Types.learn_cube_hits );
              ])
          [ false; true ])
      race_cells
  in
  let records = records @ race_records in
  let m =
    bench_manifest ~command:"atpg"
      ~circuit:(String.concat "+" (List.map fst circuits))
      ~circuit_hash:
        (String.concat "+"
           (List.map
              (fun (_, c) -> Netlist.Structhash.circuit c)
              circuits))
      ~work_units:
        (List.fold_left (fun a r -> a + record_int "work_units" r) 0 records)
  in
  let records =
    List.map
      (fun r ->
        with_fields [ ("manifest", Obs.Json.String (Obs.Ledger.id m)) ] r)
      records
  in
  Obs.Fileio.write_string_atomic file
    (Obs.Json.to_string (Obs.Json.List records) ^ "\n");
  say "wrote %s (%d records, manifest %s)@." file (List.length records)
    (Obs.Ledger.id m);
  append_history ~suite:"atpg" records

let run_atpg () =
  say "ATPG engine benchmark (dk16.ji.sd pair, 3 engines; + learn race, \
       6 pairs x original/retimed):@.";
  run_atpg_json ()

(* ---------------------------------------------- reachability benchmark JSON *)

(* A chain of [n] DFFs fed by one PI: every state is reachable, so the
   symbolic engine must count exactly 2^n valid states — for n = 65 that
   is beyond the explicit packed-int cap and past integer range. *)
let shift_register n =
  let b = Netlist.Build.create () in
  let si = Netlist.Build.add_pi b "si" in
  let qs =
    Array.init n (fun i ->
        Netlist.Build.add_dff b ~init:false (Printf.sprintf "q%d" i))
  in
  Array.iteri
    (fun i q ->
      Netlist.Build.connect_dff b q (if i = 0 then si else qs.(i - 1)))
    qs;
  Netlist.Build.add_po b "so" qs.(n - 1);
  Netlist.Build.finalize b

(* Explicit vs symbolic reachability on the dk16.ji.sd pair, plus the
   65-bit shift register only the symbolic engine can count, written to
   BENCH_reach.json (schema in results/README.md).  Runs go through
   Core.Cache like the ATPG grid, so warm store reruns measure the
   store. *)
let run_reach_json ?(file = "BENCH_reach.json") () =
  let p = Core.Flow.pair "dk16" Synth.Assign.Input_dominant Synth.Flow.Delay in
  let cells =
    [ (p.Core.Flow.name, `Explicit, p.Core.Flow.original);
      (p.Core.Flow.name, `Symbolic, p.Core.Flow.original);
      (p.Core.Flow.name ^ ".re", `Explicit, p.Core.Flow.retimed);
      (p.Core.Flow.name ^ ".re", `Symbolic, p.Core.Flow.retimed);
      ("shift65", `Symbolic, shift_register 65) ]
  in
  let records =
    Exec.Pool.map_list
      (fun (bench, mode, circuit) ->
        let t0 = Unix.gettimeofday () in
        let row =
          match mode with
          | `Explicit ->
            let r = Core.Cache.reach ~name:bench circuit in
            ( float_of_int r.Analysis.Reach.valid_states,
              Analysis.Reach.density r, None, None )
          | `Symbolic ->
            let s = Core.Cache.symreach ~name:bench circuit in
            ( s.Analysis.Symreach.valid_states,
              Analysis.Symreach.density s,
              Some s.Analysis.Symreach.depth,
              Some s.Analysis.Symreach.bdd_nodes )
        in
        let wall = Unix.gettimeofday () -. t0 in
        let cache = Core.Cache.outcome_string (Core.Cache.last_outcome ()) in
        (bench, mode, Netlist.Node.num_dffs circuit, row, wall, cache))
      cells
    |> List.map
         (fun (bench, mode, dffs, (valid, density, depth, nodes), wall, cache)
         ->
           let mode_s =
             match mode with `Explicit -> "explicit" | `Symbolic -> "symbolic"
           in
           let opt = function None -> Obs.Json.Null | Some i -> Obs.Json.Int i in
           say
             "  %-10s %-8s dffs %3d  valid %22.0f  density %.3e  wall %6.2fs  \
              cache %s@."
             bench mode_s dffs valid density wall cache;
           Obs.Json.Obj
             [
               ("benchmark", Obs.Json.String bench);
               ("mode", Obs.Json.String mode_s);
               ("dffs", Obs.Json.Int dffs);
               ("valid_states", Obs.Json.Float valid);
               ("density", Obs.Json.Float density);
               ("depth", opt depth);
               ("bdd_nodes", opt nodes);
               ("wall_s", Obs.Json.Float wall);
               ("cache", Obs.Json.String cache);
               ( "config_fp",
                 Obs.Json.String
                   (match mode with
                    | `Explicit ->
                      Store.Key.reach_fingerprint
                        ~max_states:Analysis.Reach.default_max_states
                    | `Symbolic ->
                      Store.Key.symreach_fingerprint
                        ~max_nodes:Analysis.Symreach.default_max_nodes) );
             ])
  in
  let m =
    bench_manifest ~command:"reach"
      ~circuit:
        (String.concat "+"
           (List.sort_uniq compare (List.map (fun (b, _, _) -> b) cells)))
      ~circuit_hash:
        (String.concat "+"
           (List.sort_uniq compare
              (List.map
                 (fun (_, _, c) -> Netlist.Structhash.circuit c)
                 cells)))
      ~work_units:0
  in
  let records =
    List.map
      (fun r ->
        with_fields [ ("manifest", Obs.Json.String (Obs.Ledger.id m)) ] r)
      records
  in
  Obs.Fileio.write_string_atomic file
    (Obs.Json.to_string (Obs.Json.List records) ^ "\n");
  say "wrote %s (%d records, manifest %s)@." file (List.length records)
    (Obs.Ledger.id m);
  append_history ~suite:"reach" records

let run_reach () =
  say "Reachability benchmark (explicit vs symbolic, dk16.ji.sd pair + \
       shift65):@.";
  run_reach_json ()

(* --------------------------------------------- fault-sim benchmark JSON *)

(* Fault-simulation throughput of the two combinational-sweep backends
   (`Nodes, the original node-record walk, vs `Tape, the flat levelized
   instruction tape) on the six study pairs, written to BENCH_fsim.json
   (schema in results/README.md).  Both backends consume identical
   deterministic vectors and must produce identical detections, states
   and cycle counts — the bench asserts this before recording anything.
   work_units counts gate evaluations actually performed
   ((good cycles + faulty batch cycles) x gates), so the
   `satpg diff --max-regress` gate against BENCH_fsim_baseline.json
   catches an engine that starts simulating more than it should;
   wall_s / gate_evals_per_s / speedup are host-dependent orientation. *)
let fsim_vectors_length = 192

let run_fsim_json ?(file = "BENCH_fsim.json") () =
  let selection = study_pairs () in
  let cells =
    List.concat_map
      (fun (name, a, s) ->
        let p = Core.Flow.pair name a s in
        [ (p.Core.Flow.name, p.Core.Flow.original);
          (p.Core.Flow.name ^ ".re", p.Core.Flow.retimed) ])
      selection
  in
  (* cells run sequentially: each simulate call parallelizes internally,
     and concurrent cells would contaminate each other's wall clock *)
  let records =
    List.concat_map
      (fun (bench, circuit) ->
        let faults = Fsim.Collapse.list circuit in
        let rng = Random.State.make [| 0xf51; 7 |] in
        let vectors =
          Sim.Vectors.random_sequence rng
            ~width:(Netlist.Node.num_pis circuit)
            ~length:fsim_vectors_length
        in
        let gates = Netlist.Node.num_gates circuit in
        let measure backend =
          (* warm-up on a short prefix: tape compilation and allocation
             happen off the clock for both backends alike *)
          ignore
            (Fsim.Engine.simulate ~backend circuit faults
               [ List.hd vectors ]);
          let t0 = Unix.gettimeofday () in
          let r = Fsim.Engine.simulate ~backend circuit faults vectors in
          (r, Unix.gettimeofday () -. t0)
        in
        let rn, wall_n = measure `Nodes in
        let rt, wall_t = measure `Tape in
        if
          rn.Fsim.Engine.detected <> rt.Fsim.Engine.detected
          || rn.Fsim.Engine.detect_time <> rt.Fsim.Engine.detect_time
          || rn.Fsim.Engine.good_states <> rt.Fsim.Engine.good_states
          || rn.Fsim.Engine.sim_cycles <> rt.Fsim.Engine.sim_cycles
        then check_failed "bench fsim: backends disagree on %s" bench;
        let speedup = wall_n /. wall_t in
        List.map
          (fun (engine, (r : Fsim.Engine.run), wall, speedup) ->
            let work =
              (r.Fsim.Engine.cycles + r.Fsim.Engine.sim_cycles) * gates
            in
            let detected =
              Array.fold_left
                (fun a d -> if d then a + 1 else a)
                0 r.Fsim.Engine.detected
            in
            say
              "  %-5s %-12s faults %4d  det %4d  gate-evals %9d  wall \
               %6.3fs  %10.0f evals/s%s@."
              engine bench (Array.length faults) detected work wall
              (float_of_int work /. wall)
              (match speedup with
               | Some s -> Printf.sprintf "  speedup %.2fx" s
               | None -> "");
            Obs.Json.Obj
              [
                ("engine", Obs.Json.String engine);
                ("benchmark", Obs.Json.String bench);
                ("work_units", Obs.Json.Int work);
                ("faults", Obs.Json.Int (Array.length faults));
                ("detected", Obs.Json.Int detected);
                ("cycles", Obs.Json.Int r.Fsim.Engine.cycles);
                ("sim_cycles", Obs.Json.Int r.Fsim.Engine.sim_cycles);
                ("wall_s", Obs.Json.Float wall);
                ( "gate_evals_per_s",
                  Obs.Json.Float (float_of_int work /. wall) );
                ( "faults_per_s",
                  Obs.Json.Float
                    (float_of_int (Array.length faults) /. wall) );
                ( "speedup_vs_nodes",
                  match speedup with
                  | Some s -> Obs.Json.Float s
                  | None -> Obs.Json.Null );
              ])
          [ ("nodes", rn, wall_n, None); ("tape", rt, wall_t, Some speedup) ])
      cells
  in
  let m =
    bench_manifest ~command:"fsim"
      ~circuit:(String.concat "+" (List.map fst cells))
      ~circuit_hash:
        (String.concat "+"
           (List.map (fun (_, c) -> Netlist.Structhash.circuit c) cells))
      ~work_units:
        (List.fold_left (fun a r -> a + record_int "work_units" r) 0 records)
  in
  let records =
    List.map
      (fun r ->
        with_fields [ ("manifest", Obs.Json.String (Obs.Ledger.id m)) ] r)
      records
  in
  Obs.Fileio.write_string_atomic file
    (Obs.Json.to_string (Obs.Json.List records) ^ "\n");
  say "wrote %s (%d records, manifest %s)@." file (List.length records)
    (Obs.Ledger.id m);
  append_history ~suite:"fsim" records

let run_fsim () =
  say "Fault-simulation backend benchmark (nodes vs tape, 6 pairs x \
       original/retimed):@.";
  run_fsim_json ()

(* ---------------------------------------------------------- micro benchmarks *)

let micro_tests () =
  let open Bechamel in
  let dk16 =
    lazy (Core.Flow.pair "dk16" Synth.Assign.Input_dominant Synth.Flow.Delay)
  in
  let machine = lazy (Fsm.Benchmarks.machine_of_name "dk16") in
  let circuit = lazy (Lazy.force dk16).Core.Flow.original in
  let faults = lazy (Fsim.Collapse.list (Lazy.force circuit)) in
  let vectors =
    lazy
      (let rng = Random.State.make [| 1 |] in
       List.init 100 (fun _ ->
           Sim.Vectors.random_vector rng
             (Netlist.Node.num_pis (Lazy.force circuit))))
  in
  [
    Test.make ~name:"table1/fsm-generate"
      (Staged.stage (fun () -> ignore (Fsm.Benchmarks.machine_of_name "dk16")));
    Test.make ~name:"table2/fault-sim-100-vectors"
      (Staged.stage (fun () ->
           ignore
             (Fsim.Engine.simulate (Lazy.force circuit) (Lazy.force faults)
                (Lazy.force vectors))));
    Test.make ~name:"table2/podem-one-fault"
      (Staged.stage (fun () ->
           let c = Lazy.force circuit in
           let f = (Lazy.force faults).(7) in
           let stats = Atpg.Types.new_stats () in
           let cfg = Atpg.Types.default_config in
           let fr = Atpg.Frames.create ~fault:f c ~frames:6 ~stats in
           ignore
             (try
                match Atpg.Podem.phase_a fr f cfg stats with
                | Atpg.Podem.Detected -> true
                | Atpg.Podem.Exhausted _ -> false
              with Atpg.Podem.Out_of_budget -> false)));
    Test.make ~name:"table3/attest-score-step"
      (Staged.stage (fun () ->
           let c = Lazy.force circuit in
           ignore (Atpg.Attest.dff_distance_to_po c)));
    Test.make ~name:"table5/structural-analysis"
      (Staged.stage (fun () ->
           ignore (Analysis.Structural.analyze (Lazy.force circuit))));
    Test.make ~name:"table6/reachability"
      (Staged.stage (fun () ->
           ignore (Analysis.Reach.explore (Lazy.force circuit))));
    Test.make ~name:"table7/min-period-retime"
      (Staged.stage (fun () ->
           ignore (Retime.Apply.retime_min_period (Lazy.force circuit))));
    Test.make ~name:"figure3/trajectory-checkpointing"
      (Staged.stage (fun () ->
           let c = Lazy.force circuit in
           ignore
             (Atpg.Run.generate ~random_sequences_count:1
                ~random_sequence_length:30
                ~config:
                  {
                    Atpg.Types.default_config with
                    Atpg.Types.total_work_limit = 1_000_000;
                  }
                c)));
    Test.make ~name:"synthesis/full-flow"
      (Staged.stage (fun () ->
           ignore
             (Synth.Flow.synthesize ~algorithm:Synth.Assign.Combined
                ~script:Synth.Flow.Rugged (Lazy.force machine))));
    Test.make ~name:"twolevel/espresso"
      (Staged.stage (fun () ->
           let rng = Random.State.make [| 3 |] in
           let cube () =
             let c = ref (Twolevel.Cube.full 10) in
             for i = 0 to 9 do
               match Random.State.int rng 3 with
               | 0 -> c := Twolevel.Cube.set_lit !c i Twolevel.Cube.lit_pos
               | 1 -> c := Twolevel.Cube.set_lit !c i Twolevel.Cube.lit_neg
               | _ -> ()
             done;
             !c
           in
           let on = Twolevel.Cover.make 10 (List.init 24 (fun _ -> cube ())) in
           ignore
             (Twolevel.Minimize.espresso ~on ~dc:(Twolevel.Cover.empty 10) ())));
  ]

let run_micro () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~kde:(Some 50) ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"satpg" (micro_tests ()))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  say "Micro-benchmarks (one kernel per table/figure):@.";
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      match Analyze.OLS.estimates (Hashtbl.find results name) with
      | Some (est :: _) -> say "  %-42s %14.0f ns/run@." name est
      | Some [] | None -> say "  %-42s %14s@." name "-")
    (List.sort compare names);
  say "@."

(* --------------------------------------------------- serve benchmark JSON *)

(* Drives an in-process `satpg serve` daemon over a Unix socket through a
   mixed workload and writes BENCH_serve.json (schema in
   results/README.md): a cold phase (dk16 pair as inline BLIF, every
   request must miss — run this mode against a dedicated, cold
   SATPG_STORE), a warm phase repeating the same requests (every request
   must hit, and throughput must clear 10x cold), a repeat/unique ratio
   sweep with client-side latency percentiles, a coalescing phase (one
   slow request jams the dispatcher while identical requests pile up —
   they must compute exactly once, sharing one manifest id), and a
   deterministic overload phase against a depth-1 admission queue.  Every
   assertion lands in [failures], so `bench serve` exits non-zero when
   the service misbehaves. *)

let serve_req ?id verb fields config =
  Obs.Json.to_string
    (Obs.Json.Obj
       ((match id with
         | Some i -> [ ("id", Obs.Json.String i) ]
         | None -> [])
       @ [ ("verb", Obs.Json.String verb) ]
       @ fields
       @ (match config with
          | [] -> []
          | c -> [ ("config", Obs.Json.Obj c) ])))

let blif_source text =
  [ ("circuit", Obs.Json.Obj [ ("blif", Obs.Json.String text) ]) ]

let serve_connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let serve_send (_, oc) line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let serve_recv (ic, _) = Obs.Json.parse (input_line ic)

let serve_rpc conn line =
  serve_send conn line;
  serve_recv conn

let resp_ok r =
  match Obs.Json.member "ok" r with Some (Obs.Json.Bool b) -> b | _ -> false

let resp_str name r = Option.bind (Obs.Json.member name r) Obs.Json.to_string_opt

let resp_hit r =
  match resp_str "cache" r with
  | Some ("hit" | "disk-hit") -> true
  | _ -> false

let stats_int path r =
  let rec walk j = function
    | [] -> Obs.Json.to_int_opt j
    | k :: rest -> Option.bind (Obs.Json.member k j) (fun j -> walk j rest)
  in
  Option.value ~default:0 (walk r path)

let serve_stats conn = serve_rpc conn (serve_req "stats" [] [])

(* Block until the dispatcher is inside a batch — the jam request has
   been popped and is running, so everything sent now queues behind it. *)
let wait_in_flight conn =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go () =
    if stats_int [ "in_flight" ] (serve_stats conn) >= 1 then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Small unique circuits for the miss side of the ratio sweep: generated
   machines, synthesized like the benchmarks, serialized as BLIF. *)
let unique_blif seed =
  let machine =
    Fsm.Generate.generate
      {
        Fsm.Generate.default_spec with
        Fsm.Generate.name = Printf.sprintf "rnd%d" seed;
        num_inputs = 2;
        num_outputs = 2;
        num_states = 4;
        cubes_per_state = 2;
        seed;
      }
  in
  let s =
    Synth.Flow.synthesize ~algorithm:Synth.Assign.Input_dominant
      ~script:Synth.Flow.Rugged machine
  in
  Netlist.Blif.to_string ~model:s.Synth.Flow.name s.Synth.Flow.circuit

let percentile_ms sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))
    *. 1000.0

(* Send a request batch one at a time, timing each round trip. *)
let timed_phase conn lines =
  let walls, hits, oks =
    List.fold_left
      (fun (walls, hits, oks) line ->
        let t0 = Unix.gettimeofday () in
        let r = serve_rpc conn line in
        let wall = Unix.gettimeofday () -. t0 in
        ( wall :: walls,
          (if resp_hit r then hits + 1 else hits),
          oks && resp_ok r ))
      ([], 0, true) lines
  in
  let walls = Array.of_list (List.rev walls) in
  let total = Array.fold_left ( +. ) 0.0 walls in
  let sorted = Array.copy walls in
  Array.sort compare sorted;
  let n = Array.length walls in
  ( Obs.Json.Obj
      [
        ("requests", Obs.Json.Int n);
        ("rps", Obs.Json.Float (float_of_int n /. total));
        ("p50_ms", Obs.Json.Float (percentile_ms sorted 0.50));
        ("p95_ms", Obs.Json.Float (percentile_ms sorted 0.95));
        ("p99_ms", Obs.Json.Float (percentile_ms sorted 0.99));
        ("hit_rate", Obs.Json.Float (float_of_int hits /. float_of_int n));
      ],
    float_of_int n /. total,
    oks )

let phase_fields extra = function
  | Obs.Json.Obj fields -> Obs.Json.Obj (extra @ fields)
  | j -> j

(* The jam request: a long fault simulation of the dk16 pair circuit via
   the bench source (the synthesized netlist keeps a tail of
   hard-to-detect faults alive, so fault dropping cannot cut the run
   short the way it does on the BLIF round-tripped tree).  Pure compute,
   and its cache entry is a bypass — it perturbs neither the miss counts
   nor the hit rates the phases assert on. *)
let jam_line ?id () =
  serve_req ?id "fsim"
    [ ("circuit", Obs.Json.Obj [ ("bench", Obs.Json.String "dk16") ]) ]
    [ ("vectors", Obs.Json.Int 20_000); ("seed", Obs.Json.Int 7) ]

let run_serve_json ?(file = "BENCH_serve.json") () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "satpg-serve-bench.%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let p = Core.Flow.pair "dk16" Synth.Assign.Input_dominant Synth.Flow.Delay in
  let dk16 = Netlist.Blif.to_string ~model:p.Core.Flow.name p.Core.Flow.original in
  let dk16_re =
    Netlist.Blif.to_string ~model:(p.Core.Flow.name ^ ".re") p.Core.Flow.retimed
  in
  let s27 =
    if Sys.file_exists "examples/s27.blif" then read_file "examples/s27.blif"
    else begin
      check_failed "bench serve: examples/s27.blif not found (run from the \
                    repository root)";
      dk16
    end
  in
  let atpg_line blif = serve_req "atpg" (blif_source blif) [] in

  (* --- main server ------------------------------------------------- *)
  let sock = Filename.concat dir "serve.sock" in
  let t =
    Serve.Server.start
      { Serve.Server.default_config with Serve.Server.unix_path = Some sock }
  in
  let conn = serve_connect sock in

  (* cold: the dk16 pair as inline BLIF, first sight of either circuit *)
  let cold_lines = [ atpg_line dk16; atpg_line dk16_re ] in
  let misses0 = stats_int [ "cache"; "misses" ] (serve_stats conn) in
  let cold_rec, cold_rps, cold_ok = timed_phase conn cold_lines in
  let cold_misses =
    stats_int [ "cache"; "misses" ] (serve_stats conn) - misses0
  in
  check "bench serve: cold phase had failing requests" cold_ok;
  if cold_misses < List.length cold_lines then
    check_failed
      "bench serve: cold phase expected %d cache misses, saw %d — run \
       this mode against a dedicated cold SATPG_STORE"
      (List.length cold_lines) cold_misses;

  (* warm: the same two requests, repeated — memory hits only *)
  let warm_lines = List.concat (List.init 10 (fun _ -> cold_lines)) in
  let warm_rec, warm_rps, warm_ok = timed_phase conn warm_lines in
  check "bench serve: warm phase had failing requests" warm_ok;
  let speedup = warm_rps /. cold_rps in
  say "  cold %6.2f req/s   warm %8.1f req/s   speedup %.0fx@." cold_rps
    warm_rps speedup;
  check "bench serve: warm-cache throughput below 10x cold" (speedup >= 10.0);

  (* sweep: repeat (s27) vs unique (generated) mixes *)
  let sweep_recs =
    List.mapi
      (fun ri ratio ->
        let n = 20 in
        let lines =
          List.init n (fun i ->
              if float_of_int (i mod 10) < ratio *. 10.0 then atpg_line s27
              else atpg_line (unique_blif ((1000 * (ri + 1)) + i)))
        in
        let r, rps, ok = timed_phase conn lines in
        if not ok then
          check_failed "bench serve: sweep ratio %.1f had failing requests"
            ratio;
        say "  sweep repeat-ratio %.1f: %6.1f req/s@." ratio rps;
        phase_fields
          [
            ("phase", Obs.Json.String "sweep");
            ("repeat_ratio", Obs.Json.Float ratio);
          ]
          r)
      [ 0.0; 0.5; 0.9 ]
  in

  (* coalesce: jam the dispatcher, pile up identical requests behind the
     jam, and require exactly one computation for all of them *)
  let fresh = unique_blif 424242 in
  let misses0 = stats_int [ "cache"; "misses" ] (serve_stats conn) in
  let coalesced0 = stats_int [ "serve"; "coalesced" ] (serve_stats conn) in
  serve_send conn (jam_line ~id:"jam" ());
  let jammed = wait_in_flight conn in
  check "bench serve: dispatcher never picked up the jam request" jammed;
  let dup = 8 in
  for i = 0 to dup - 1 do
    serve_send conn
      (serve_req ~id:(Printf.sprintf "c%d" i) "atpg" (blif_source fresh) [])
  done;
  (* the jam response plus [dup] coalesced responses, in whatever order
     the dispatcher finishes them; [wait_in_flight] replies were read
     inside the helper, so exactly dup+1 lines remain *)
  let replies = List.init (dup + 1) (fun _ -> serve_recv conn) in
  let coalesce_manifests =
    List.filter_map
      (fun r ->
        match resp_str "id" r with
        | Some id when String.length id > 0 && id.[0] = 'c' ->
          Some (Option.value ~default:"?" (resp_str "manifest" r))
        | _ -> None)
      replies
  in
  let misses1 = stats_int [ "cache"; "misses" ] (serve_stats conn) in
  let coalesced1 = stats_int [ "serve"; "coalesced" ] (serve_stats conn) in
  let manifests_equal =
    match coalesce_manifests with
    | m :: rest -> List.for_all (String.equal m) rest
    | [] -> false
  in
  let coalesce_once = misses1 - misses0 = 1 in
  say "  coalesce: %d identical requests, %d miss(es), %d saved, one \
       manifest %b@."
    dup (misses1 - misses0) (coalesced1 - coalesced0) manifests_equal;
  check "bench serve: coalesced group computed more than once" coalesce_once;
  check "bench serve: coalesced responses disagree on manifest id"
    (manifests_equal && List.length coalesce_manifests = dup);
  check "bench serve: no coalescing observed" (coalesced1 - coalesced0 >= 1);
  check "bench serve: all coalesced requests answered ok"
    (List.for_all resp_ok replies);

  (* shutdown: the verb must answer, then the whole server must join *)
  let sdr = serve_rpc conn (serve_req "shutdown" [] []) in
  Serve.Server.wait t;
  let shutdown_clean = resp_ok sdr && not (Sys.file_exists sock) in
  check "bench serve: shutdown verb did not terminate the server cleanly"
    shutdown_clean;

  (* --- overload server: depth-1 queue, deterministic rejection ------ *)
  let sock2 = Filename.concat dir "serve-overload.sock" in
  let t2 =
    Serve.Server.start
      {
        Serve.Server.port = None;
        unix_path = Some sock2;
        queue_depth = 1;
        batch_max = 1;
      }
  in
  let conn2 = serve_connect sock2 in
  let overloaded0 = stats_int [ "serve"; "overloaded" ] (serve_stats conn2) in
  serve_send conn2 (jam_line ~id:"jam2" ());
  let jammed2 = wait_in_flight conn2 in
  check "bench serve: overload jam never started" jammed2;
  (* dispatcher is busy, so A occupies the single queue slot and B must
     be rejected — the reader pushes them in order on this connection *)
  serve_send conn2 (serve_req ~id:"A" "atpg" (blif_source s27) []);
  serve_send conn2 (serve_req ~id:"B" "atpg" (blif_source s27) []);
  let replies2 = List.init 3 (fun _ -> serve_recv conn2) in
  let by_id id =
    List.find_opt (fun r -> resp_str "id" r = Some id) replies2
  in
  let overload_structured =
    match by_id "B" with
    | Some r ->
      (not (resp_ok r))
      && Option.bind (Obs.Json.member "error" r) (resp_str "code")
         = Some "overloaded"
    | None -> false
  in
  check "bench serve: depth-1 queue did not reject with a structured \
         overloaded error"
    overload_structured;
  check "bench serve: admitted request was not answered"
    (match by_id "A" with Some r -> resp_ok r | None -> false);
  let overloaded_delta =
    stats_int [ "serve"; "overloaded" ] (serve_stats conn2) - overloaded0
  in
  check "bench serve: overloaded counter did not advance"
    (overloaded_delta >= 1);
  Serve.Server.stop t2;
  Serve.Server.wait t2;

  (* --- records ------------------------------------------------------ *)
  let records =
    [
      phase_fields [ ("phase", Obs.Json.String "cold") ] cold_rec;
      phase_fields [ ("phase", Obs.Json.String "warm") ] warm_rec;
    ]
    @ sweep_recs
    @ [
        Obs.Json.Obj
          [
            ("phase", Obs.Json.String "asserts");
            ("warm_cold_speedup", Obs.Json.Float speedup);
            ("warm_cold_ok", Obs.Json.Bool (speedup >= 10.0));
            ("coalesce_requests", Obs.Json.Int dup);
            ("coalesce_misses", Obs.Json.Int (misses1 - misses0));
            ("coalesce_once", Obs.Json.Bool coalesce_once);
            ("coalesce_saved", Obs.Json.Int (coalesced1 - coalesced0));
            ("coalesce_manifests_equal", Obs.Json.Bool manifests_equal);
            ("overload_structured", Obs.Json.Bool overload_structured);
            ("shutdown_clean", Obs.Json.Bool shutdown_clean);
          ];
      ]
  in
  let m =
    bench_manifest ~command:"serve" ~circuit:"dk16+dk16.re+s27+generated"
      ~circuit_hash:
        (String.concat "+"
           [
             Netlist.Structhash.circuit p.Core.Flow.original;
             Netlist.Structhash.circuit p.Core.Flow.retimed;
           ])
      ~work_units:
        (List.fold_left (fun a r -> a + record_int "requests" r) 0 records)
  in
  let records =
    List.map
      (fun r ->
        with_fields [ ("manifest", Obs.Json.String (Obs.Ledger.id m)) ] r)
      records
  in
  Obs.Fileio.write_string_atomic file
    (Obs.Json.to_string (Obs.Json.List records) ^ "\n");
  say "wrote %s (%d records, manifest %s)@." file (List.length records)
    (Obs.Ledger.id m);
  append_history ~suite:"serve" records

let run_serve () =
  say "Serve benchmark (in-process daemon over a Unix socket; cold/warm, \
       ratio sweep, coalescing, depth-1 overload):@.";
  run_serve_json ()

(* ------------------------------------------------------- differential fuzz *)

exception Fuzz_failure of string

(* Default budgets on the tiny generated circuits: large enough that
   both modes resolve almost every fault, small enough to stay fast.
   SATPG_BUDGET scales them for deeper reproductions of a failing
   seed. *)
let fuzz_config ~struct_learn =
  let base =
    Atpg.Types.scaled_config
      ~base:{ Atpg.Types.default_config with learn = false }
      ()
  in
  { base with Atpg.Types.struct_learn }

let fuzz_check_circuit ~seed ~label c =
  (* 1. fault-sim backends: tape vs nodes bit-identity *)
  let faults = Fsim.Collapse.list c in
  let rng = Random.State.make [| seed; 0xf5 |] in
  let vectors =
    Sim.Vectors.random_sequence rng ~width:(Netlist.Node.num_pis c)
      ~length:48
  in
  let rn = Fsim.Engine.simulate ~backend:`Nodes c faults vectors in
  let rt = Fsim.Engine.simulate ~backend:`Tape c faults vectors in
  if
    rn.Fsim.Engine.detected <> rt.Fsim.Engine.detected
    || rn.Fsim.Engine.detect_time <> rt.Fsim.Engine.detect_time
    || rn.Fsim.Engine.good_states <> rt.Fsim.Engine.good_states
    || rn.Fsim.Engine.sim_cycles <> rt.Fsim.Engine.sim_cycles
  then
    raise
      (Fuzz_failure
         (Printf.sprintf "fsim tape/nodes mismatch on %s (seed %d)" label
            seed));
  (* 2. ATPG: learn-on vs learn-off verdict and detection identity *)
  let off =
    Atpg.Run.generate ~config:(fuzz_config ~struct_learn:false) ~seed c
  in
  let on =
    Atpg.Run.generate ~config:(fuzz_config ~struct_learn:true) ~seed c
  in
  (* ground-truth oracle first: a fault the random simulation detects
     can never be redundant, whatever the engines' budgets did *)
  Array.iteri
    (fun i d ->
      if
        d
        && (off.Atpg.Types.status.(i) = Fsim.Fault.Redundant
            || on.Atpg.Types.status.(i) = Fsim.Fault.Redundant)
      then
        raise
          (Fuzz_failure
             (Printf.sprintf
                "fault %d simulation-detected yet declared redundant on %s \
                 (seed %d)"
                i label seed)))
    rn.Fsim.Engine.detected;
  (* Verdict identity, modulo budget flips: learned clauses only prune
     refutable subtrees, so the two modes may differ on a fault only by
     one side running out of budget where the other resolved — learning
     can finish an exhaustion learn-off cannot afford (that saving is
     its whole point), and its consultation work can tip a marginal
     search over the limit in the other direction.  Two *resolved*
     verdicts that disagree (tested vs redundant) are a soundness bug,
     never a budget artifact. *)
  Array.iteri
    (fun i s ->
      let s' = on.Atpg.Types.status.(i) in
      if s <> s' && s <> Fsim.Fault.Aborted && s' <> Fsim.Fault.Aborted then
        raise
          (Fuzz_failure
             (Printf.sprintf
                "contradictory resolved verdicts on %s fault %d (seed %d): \
                 off=%s on=%s"
                label i seed
                (Fsim.Fault.status_to_string s)
                (Fsim.Fault.status_to_string s'))))
    off.Atpg.Types.status

let fuzz_one_seed seed =
  let states = 4 + (seed mod 5) in
  let r =
    Synth.Flow.synthesize ~reset_line:false
      ~algorithm:
        (match seed mod 3 with
         | 0 -> Synth.Assign.Input_dominant
         | 1 -> Synth.Assign.Output_dominant
         | _ -> Synth.Assign.Combined)
      ~script:(if seed mod 2 = 0 then Synth.Flow.Rugged else Synth.Flow.Delay)
      (Fsm.Generate.generate
         {
           Fsm.Generate.default_spec with
           Fsm.Generate.name = Printf.sprintf "fuzz%d" seed;
           num_inputs = 2 + (seed mod 2);
           num_outputs = 1 + (seed mod 3);
           num_states = states;
           cubes_per_state = 3;
           seed;
         })
  in
  let c = r.Synth.Flow.circuit in
  let re, _period = Retime.Apply.retime_min_period c in
  fuzz_check_circuit ~seed ~label:"original" c;
  fuzz_check_circuit ~seed ~label:"retimed" re

(* Seeded, bounded-time differential smoke: random circuit/retiming
   pairs through learn-on vs learn-off PODEM and tape-vs-nodes fault
   sim.  Any mismatch prints the failing seed (rerun with
   `bench fuzz <seed>`) and exits non-zero. *)
let run_fuzz ?seed () =
  let limit_s =
    match Sys.getenv_opt "SATPG_FUZZ_SECONDS" with
    | Some s -> ( try float_of_string s with _ -> 45.0)
    | None -> 45.0
  in
  let base = Option.value ~default:20260808 seed in
  say "Differential fuzz (base seed %d, %.0fs budget): learn-on vs \
       learn-off PODEM, tape vs nodes fsim@."
    base limit_s;
  let t0 = Unix.gettimeofday () in
  let i = ref 0 in
  (try
     (* with an explicit seed run exactly that one reproduction *)
     if Option.is_some seed then begin
       fuzz_one_seed base;
       incr i
     end
     else
       while Unix.gettimeofday () -. t0 < limit_s do
         fuzz_one_seed (base + !i);
         incr i
       done
   with Fuzz_failure msg ->
     say "FUZZ FAILURE: %s@." msg;
     Fmt.flush Fmt.stdout ();
     exit 1);
  say "fuzz ok: %d circuit pairs, %.1fs@." !i (Unix.gettimeofday () -. t0)

let () =
  (* `bench/main.exe [mode] [-j N]` — -j mirrors satpg's flag. *)
  let argv = Array.to_list Sys.argv in
  let rec scan = function
    | "-j" :: n :: rest ->
      (match int_of_string_opt n with
       | Some j -> Exec.Pool.set_jobs j
       | None -> invalid_arg ("bench: -j expects an integer, got " ^ n));
      scan rest
    | _ :: rest -> scan rest
    | [] -> ()
  in
  scan argv;
  let positional =
    let rec strip = function
      | "-j" :: _ :: rest -> strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    match strip argv with _exe :: rest -> rest | [] -> []
  in
  let mode = match positional with m :: _ -> m | [] -> "all" in
  (match mode with
   | "tables" -> run_tables ()
   | "micro" -> run_micro ()
   | "atpg" -> run_atpg ()
   | "reach" -> run_reach ()
   | "fsim" -> run_fsim ()
   | "serve" -> run_serve ()
   | "fuzz" ->
     (* `bench fuzz [seed]` — with a seed, one exact reproduction *)
     let seed =
       match positional with
       | _ :: s :: _ -> int_of_string_opt s
       | _ -> None
     in
     run_fuzz ?seed ()
   | _ ->
     run_micro ();
     run_tables ();
     run_atpg ();
     run_reach ();
     run_fsim ());
  Fmt.flush Fmt.stdout ();
  match List.rev !failures with
  | [] -> ()
  | fs ->
    say "bench: %d internal check(s) failed:@." (List.length fs);
    List.iter (fun m -> say "  - %s@." m) fs;
    Fmt.flush Fmt.stdout ();
    exit 1
