(** Finite state machines in the style of the MCNC/KISS2 benchmarks:
    symbolic states, transitions guarded by input cubes, Mealy outputs
    with don't cares.

    Cubes are (care, value) bit masks: bit [i] set in [in_care] means
    input [i] is specified and must equal bit [i] of [in_value]; outputs
    use [out_care]/[out_value] the same way (unset care = don't care). *)

type transition = {
  in_care : int;
  in_value : int;
  src : int;        (** state index *)
  dst : int;
  out_care : int;
  out_value : int;
}

type t = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  state_names : string array;
  reset : int;                    (** reset-state index *)
  transitions : transition array;
}

val num_states : t -> int

(** Pack an input vector into an input code (bit i = input i).
    @raise Invalid_argument beyond 62 inputs, where the int packing would
    silently alias. *)
val input_code : bool array -> int

val cube_matches : care:int -> value:int -> int -> bool

(** First matching transition, or [None] when the (state, input) pair is
    unspecified. *)
val step_opt : t -> state:int -> input_code:int -> transition option

(** Outputs of a transition as three-valued values (X = don't care). *)
val transition_outputs : t -> transition -> Sim.Value3.t array

(** The {e completed} semantics every tool in the stack implements:
    unspecified (state, input) pairs self-loop with all-0 outputs, and
    unspecified output bits read as 0. *)
val step_total : t -> state:int -> input_code:int -> int * bool array

(** Like {!step_total} but output don't cares stay X — synthesis may
    choose those bits freely, so equivalence checks compare only the
    specified positions. *)
val step_observed :
  t -> state:int -> input_code:int -> int * Sim.Value3.t array

(** Run from reset under the completed semantics; per-cycle outputs. *)
val run : t -> bool array list -> bool array list

(** States reachable from reset under the completed semantics. *)
val reachable_states : t -> int list

(** Pairs of transition indices that overlap with conflicting behaviour. *)
val nondeterminism : t -> (int * int) list

val is_deterministic : t -> bool

(** Transitions grouped by source state, original order preserved. *)
val transitions_of : t -> transition list array

val pp_summary : Format.formatter -> t -> unit
