(* KISS2 reader/writer — the MCNC FSM benchmark interchange format.

   Example:
     .i 3
     .o 2
     .s 4
     .p 8
     .r st0
     0-- st0 st1 10
     ...
     .e
*)

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

(* .i/.o/.p/.s operands: a raw int_of_string here would surface a malformed
   file as a bare Failure — parse defensively and point at the line. *)
let count_field line what s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> v
  | Some v -> fail line (Printf.sprintf "%s: negative count %d" what v)
  | None -> fail line (Printf.sprintf "%s: bad integer %S" what s)

let cube_of_string line s =
  let care = ref 0 and value = ref 0 in
  String.iteri
    (fun i c ->
      match c with
      | '1' ->
        care := !care lor (1 lsl i);
        value := !value lor (1 lsl i)
      | '0' -> care := !care lor (1 lsl i)
      | '-' -> ()
      | c -> fail line (Printf.sprintf "bad cube character %c" c))
    s;
  (!care, !value)

let string_of_cube width ~care ~value =
  String.init width (fun i ->
      if care land (1 lsl i) = 0 then '-'
      else if value land (1 lsl i) <> 0 then '1'
      else '0')

let parse_string ?(name = "kiss") text =
  let lines = String.split_on_char '\n' text in
  let ni = ref (-1) and no = ref (-1) and ns = ref (-1) in
  let reset_name = ref None in
  let states = Hashtbl.create 31 in
  let state_order = ref [] in
  let intern st =
    match Hashtbl.find_opt states st with
    | Some i -> i
    | None ->
      let i = Hashtbl.length states in
      Hashtbl.add states st i;
      state_order := st :: !state_order;
      i
  in
  let transitions = ref [] in
  List.iteri
    (fun lineno raw ->
      let lineno = lineno + 1 in
      let line = String.trim raw in
      if String.length line = 0 || line.[0] = '#' then ()
      else
        let fields =
          String.split_on_char ' ' line
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun s -> String.length s > 0)
        in
        match fields with
        | [] -> ()
        | [ ".i"; n ] -> ni := count_field lineno ".i" n
        | [ ".o"; n ] -> no := count_field lineno ".o" n
        | [ ".s"; n ] -> ns := count_field lineno ".s" n
        | [ ".p"; n ] -> ignore (count_field lineno ".p" n)
        | [ ".r"; s ] -> reset_name := Some s
        | [ ".e" ] -> ()
        | [ incube; src; dst; outcube ] ->
          if !ni < 0 then fail lineno "transition before .i";
          if String.length incube <> !ni then fail lineno "input cube width";
          if !no >= 0 && String.length outcube <> !no then
            fail lineno "output cube width";
          let in_care, in_value = cube_of_string lineno incube in
          let out_care, out_value = cube_of_string lineno outcube in
          let src = intern src and dst = intern dst in
          transitions :=
            { Machine.in_care; in_value; src; dst; out_care; out_value }
            :: !transitions
        | _ -> fail lineno ("unrecognized line: " ^ line))
    lines;
  if !ni < 0 then fail 0 "missing .i";
  if !no < 0 then fail 0 "missing .o";
  let state_names = Array.of_list (List.rev !state_order) in
  if !ns >= 0 && !ns <> Array.length state_names then
    fail 0
      (Printf.sprintf ".s says %d states but %d named" !ns
         (Array.length state_names));
  let reset =
    match !reset_name with
    | None -> 0
    | Some s ->
      (match Hashtbl.find_opt states s with
       | Some i -> i
       | None -> fail 0 ("unknown reset state " ^ s))
  in
  {
    Machine.name;
    num_inputs = !ni;
    num_outputs = !no;
    state_names;
    reset;
    transitions = Array.of_list (List.rev !transitions);
  }

let to_string (m : Machine.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf ".i %d\n" m.num_inputs);
  Buffer.add_string buf (Printf.sprintf ".o %d\n" m.num_outputs);
  Buffer.add_string buf (Printf.sprintf ".p %d\n" (Array.length m.transitions));
  Buffer.add_string buf (Printf.sprintf ".s %d\n" (Machine.num_states m));
  Buffer.add_string buf (Printf.sprintf ".r %s\n" m.state_names.(m.reset));
  Array.iter
    (fun (t : Machine.transition) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s %s\n"
           (string_of_cube m.num_inputs ~care:t.in_care ~value:t.in_value)
           m.state_names.(t.src) m.state_names.(t.dst)
           (string_of_cube m.num_outputs ~care:t.out_care ~value:t.out_value)))
    m.transitions;
  Buffer.add_string buf ".e\n";
  Buffer.contents buf
