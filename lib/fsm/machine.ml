(* Finite state machine in the style of the MCNC/KISS2 benchmarks: symbolic
   states, transitions guarded by input cubes, Mealy outputs with don't
   cares.  Input cubes are (care, value) bit masks over the primary inputs
   (bit i set in [care] means input i is specified and must equal bit i of
   [value]); outputs likewise. *)

type transition = {
  in_care : int;
  in_value : int;
  src : int;
  dst : int;
  out_care : int;
  out_value : int;
}

type t = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  state_names : string array;
  reset : int;
  transitions : transition array;
}

let num_states m = Array.length m.state_names

let input_code bits =
  let n = Array.length bits in
  if n > 62 then
    invalid_arg
      (Printf.sprintf
         "Machine.input_code: %d inputs exceed the 62-bit packed cube code \
          (1 lsl would alias)"
         n);
  let code = ref 0 in
  Array.iteri (fun i b -> if b then code := !code lor (1 lsl i)) bits;
  !code

let cube_matches ~care ~value code = code land care = value land care

(* Deterministic step: first matching transition wins; [None] if the
   (state, input) pair is unspecified. *)
let step_opt m ~state ~input_code:code =
  let n = Array.length m.transitions in
  let rec loop i =
    if i >= n then None
    else
      let t = m.transitions.(i) in
      if t.src = state && cube_matches ~care:t.in_care ~value:t.in_value code
      then Some t
      else loop (i + 1)
  in
  loop 0

(* Output bits as three-valued values ('X' where the transition leaves the
   output unspecified). *)
let transition_outputs m t =
  Array.init m.num_outputs (fun i ->
      if t.out_care land (1 lsl i) = 0 then Sim.Value3.X
      else if t.out_value land (1 lsl i) <> 0 then Sim.Value3.One
      else Sim.Value3.Zero)

(* Completion: unspecified (state, input) pairs self-loop with all-0 outputs;
   unspecified output bits become 0.  This fixes the don't-care semantics
   once and for all so that simulation-based equivalence checks are exact. *)
let step_total m ~state ~input_code:code =
  match step_opt m ~state ~input_code:code with
  | Some t ->
    let outs =
      Array.init m.num_outputs (fun i ->
          t.out_care land (1 lsl i) <> 0 && t.out_value land (1 lsl i) <> 0)
    in
    (t.dst, outs)
  | None -> (state, Array.make m.num_outputs false)

(* Like [step_total], but keeps output don't cares visible as X: synthesis
   is free to choose those bits, so equivalence checks must only compare the
   specified positions.  Unspecified (state, input) pairs are hard 0s. *)
let step_observed m ~state ~input_code:code =
  match step_opt m ~state ~input_code:code with
  | Some t -> (t.dst, transition_outputs m t)
  | None -> (state, Array.make m.num_outputs Sim.Value3.Zero)

let run m inputs =
  let rec loop state acc = function
    | [] -> List.rev acc
    | v :: rest ->
      let dst, outs = step_total m ~state ~input_code:(input_code v) in
      loop dst (outs :: acc) rest
  in
  loop m.reset [] inputs

(* States reachable from reset under the completed semantics. *)
let reachable_states m =
  let n = num_states m in
  let seen = Array.make n false in
  seen.(m.reset) <- true;
  let queue = Queue.create () in
  Queue.add m.reset queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    (* Distinct successors are determined by the transitions from s plus the
       implicit self-loop; enumerating transitions suffices. *)
    Array.iter
      (fun t ->
        if t.src = s && not seen.(t.dst) then begin
          seen.(t.dst) <- true;
          Queue.add t.dst queue
        end)
      m.transitions
  done;
  let acc = ref [] in
  for s = n - 1 downto 0 do
    if seen.(s) then acc := s :: !acc
  done;
  !acc

(* Determinism check: no two transitions of the same state have intersecting
   input cubes (unless they agree on destination and outputs). *)
let nondeterminism m =
  let conflicts = ref [] in
  let nt = Array.length m.transitions in
  for i = 0 to nt - 1 do
    for j = i + 1 to nt - 1 do
      let a = m.transitions.(i) and b = m.transitions.(j) in
      if a.src = b.src then begin
        let common = a.in_care land b.in_care in
        let intersect = a.in_value land common = b.in_value land common in
        let agree =
          a.dst = b.dst && a.out_care = b.out_care
          && a.out_value land a.out_care = b.out_value land b.out_care
        in
        if intersect && not agree then conflicts := (i, j) :: !conflicts
      end
    done
  done;
  List.rev !conflicts

let is_deterministic m = nondeterminism m = []

(* Per-state transition index, used by minimization and assignment. *)
let transitions_of m =
  let by_state = Array.make (num_states m) [] in
  Array.iter (fun t -> by_state.(t.src) <- t :: by_state.(t.src)) m.transitions;
  Array.map List.rev by_state

let pp_summary ppf m =
  Fmt.pf ppf "fsm %s: %d in, %d out, %d states, %d transitions" m.name
    m.num_inputs m.num_outputs (num_states m)
    (Array.length m.transitions)
