(** Structural well-formedness checks, asserted after every
    transformation (synthesis, mapping, retiming, scan insertion). *)

type problem =
  | Dangling_fanin of string
  | Bad_arity of string
  | Dff_unconnected of string
  | Po_dangling of string
  | Duplicate_name of string
  | Duplicate_po of string

val problem_to_string : problem -> string

(** All problems found, in node order. *)
val problems : Node.t -> problem list

val is_well_formed : Node.t -> bool

(** @raise Failure with the first problem's description. *)
val assert_ok : Node.t -> unit
