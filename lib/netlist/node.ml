(* Gate-level sequential netlist shared by every tool in the stack.

   A circuit is an array of nodes.  Sources of combinational evaluation are
   primary inputs and DFF outputs; sinks are DFF data inputs and primary
   outputs.  DFFs are nodes whose single fanin is their data input and whose
   "value" during a cycle is the latched state bit. *)

type gate_fn = And | Or | Nand | Nor | Not | Buf | Xor | Xnor

type kind =
  | Pi of int             (* primary input, with its input-vector index *)
  | Dff of { init : bool } (* edge-triggered D flip-flop, power-up value *)
  | Gate of gate_fn

type node = {
  id : int;
  name : string;
  kind : kind;
  fanins : int array;
}

type t = {
  nodes : node array;
  pis : int array;                (* node ids, in input-vector order *)
  pos : (string * int) array;     (* output name, driving node id *)
  dffs : int array;               (* node ids of DFFs, state-vector order *)
  fanouts : int array array;      (* per node: ids of reading nodes *)
  order : int array;              (* gate ids in combinational topo order *)
  level : int array;              (* per node: combinational level, sources 0 *)
  name_index : (string, int) Hashtbl.t Lazy.t;
  (* name -> id, built on first lookup; first node wins on duplicates *)
}

let make ~nodes ~pis ~pos ~dffs ~fanouts ~order ~level =
  let name_index =
    lazy
      (let t = Hashtbl.create (2 * Array.length nodes) in
       Array.iter
         (fun nd -> if not (Hashtbl.mem t nd.name) then Hashtbl.add t nd.name nd.id)
         nodes;
       t)
  in
  { nodes; pis; pos; dffs; fanouts; order; level; name_index }

let gate_fn_name = function
  | And -> "AND" | Or -> "OR" | Nand -> "NAND" | Nor -> "NOR"
  | Not -> "NOT" | Buf -> "BUF" | Xor -> "XOR" | Xnor -> "XNOR"

let pp_gate_fn ppf g = Fmt.string ppf (gate_fn_name g)

let equal_gate_fn (a : gate_fn) (b : gate_fn) = a = b

(* Arity admitted for each gate function. *)
let arity_ok fn n =
  match fn with
  | Not | Buf -> n = 1
  | Xor | Xnor -> n = 2
  | And | Or | Nand | Nor -> n >= 1

let num_nodes c = Array.length c.nodes
let num_pis c = Array.length c.pis
let num_pos c = Array.length c.pos
let num_dffs c = Array.length c.dffs

let num_gates c =
  Array.fold_left
    (fun acc n -> match n.kind with Gate _ -> acc + 1 | Pi _ | Dff _ -> acc)
    0 c.nodes

let node c id = c.nodes.(id)

let is_dff c id =
  match c.nodes.(id).kind with Dff _ -> true | Pi _ | Gate _ -> false

let is_pi c id =
  match c.nodes.(id).kind with Pi _ -> true | Dff _ | Gate _ -> false

let dff_init c id =
  match c.nodes.(id).kind with
  | Dff { init } -> init
  | Pi _ | Gate _ -> invalid_arg "Node.dff_init: not a DFF"

let find_by_name c name = Hashtbl.find (Lazy.force c.name_index) name

(* Default per-gate delay model (arbitrary "nsec"-like units), loosely shaped
   after mcnc.genlib: inverters fast, wide gates slower. *)
let gate_delay fn arity =
  let base =
    match fn with
    | Not -> 1.0
    | Buf -> 1.0
    | Nand | Nor -> 1.2
    | And | Or -> 1.6
    | Xor | Xnor -> 2.2
  in
  base +. (0.35 *. float_of_int (max 0 (arity - 2)))

let gate_area fn arity =
  let base =
    match fn with
    | Not -> 1.0
    | Buf -> 1.5
    | Nand | Nor -> 2.0
    | And | Or -> 3.0
    | Xor | Xnor -> 5.0
  in
  base +. (1.0 *. float_of_int (max 0 (arity - 2)))

let dff_area = 6.0

(* Arrival-time longest combinational path using the delay model; DFF outputs
   and PIs arrive at t=0, path ends at PO or DFF input. *)
let critical_path c =
  let arrival = Array.make (num_nodes c) 0.0 in
  Array.iter
    (fun id ->
      let n = c.nodes.(id) in
      match n.kind with
      | Gate fn ->
        let worst = ref 0.0 in
        Array.iter
          (fun f -> if arrival.(f) > !worst then worst := arrival.(f))
          n.fanins;
        arrival.(id) <- !worst +. gate_delay fn (Array.length n.fanins)
      | Pi _ | Dff _ -> ())
    c.order;
  let best = ref 0.0 in
  let consider id = if arrival.(id) > !best then best := arrival.(id) in
  Array.iter (fun (_, id) -> consider id) c.pos;
  Array.iter
    (fun d ->
      let n = c.nodes.(d) in
      if Array.length n.fanins > 0 then consider n.fanins.(0))
    c.dffs;
  !best

let area c =
  let total = ref 0.0 in
  Array.iter
    (fun n ->
      match n.kind with
      | Gate fn -> total := !total +. gate_area fn (Array.length n.fanins)
      | Dff _ -> total := !total +. dff_area
      | Pi _ -> ())
    c.nodes;
  !total

let pp_summary ppf c =
  Fmt.pf ppf "netlist: %d PI, %d PO, %d DFF, %d gates, area %.1f, delay %.2f"
    (num_pis c) (num_pos c) (num_dffs c) (num_gates c) (area c)
    (critical_path c)
