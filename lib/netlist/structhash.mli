(** Canonical structural hashing of netlists.

    {!circuit} digests the observable structure of a circuit — PI/PO/DFF
    interface orders, DFF power-up values, gate functions and fanin
    wiring — and is invariant under node renaming and node-array
    permutation.  It is the content half of the result-store cache key
    (see [Store.Key]): a name-keyed memo aliases structurally different
    circuits submitted under one name; a content key cannot. *)

(** A 64-bit FNV-1a accumulator.  The feeders are exposed so other
    fingerprints (e.g. ATPG configurations) hash with the same stable
    function — OCaml's polymorphic [Hashtbl.hash] is not guaranteed
    stable across versions and truncates deep values. *)
type t

val empty : t
val int : t -> int -> t
val int64 : t -> int64 -> t
val bool : t -> bool -> t
val string : t -> string -> t

(** 16 lowercase hex digits. *)
val to_hex : t -> string

(** Canonical structural hash of a circuit, as {!to_hex}. *)
val circuit : Node.t -> string
