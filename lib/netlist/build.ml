(* Mutable netlist builder.  Nodes are created first (DFF data inputs may be
   connected later, so state feedback loops can be closed), then [finalize]
   freezes the circuit, computes fanouts and a combinational topological
   order, and rejects combinational cycles. *)

exception Combinational_cycle of string

type t = {
  mutable names : string list;       (* reversed *)
  mutable kinds : Node.kind list;    (* reversed *)
  mutable fanins : int array list;   (* reversed *)
  mutable count : int;
  mutable pis : int list;            (* reversed *)
  mutable dffs : int list;           (* reversed *)
  mutable pos : (string * int) list; (* reversed *)
}

let create () =
  { names = []; kinds = []; fanins = []; count = 0; pis = []; dffs = []; pos = [] }

let add_node b name kind fanins =
  let id = b.count in
  b.names <- name :: b.names;
  b.kinds <- kind :: b.kinds;
  b.fanins <- fanins :: b.fanins;
  b.count <- id + 1;
  id

let add_pi b name =
  let index = List.length b.pis in
  let id = add_node b name (Node.Pi index) [||] in
  b.pis <- id :: b.pis;
  id

let add_dff b ?(init = false) name =
  let id = add_node b name (Node.Dff { init }) [| -1 |] in
  b.dffs <- id :: b.dffs;
  id

let connect_dff b dff data =
  let rec set i l =
    match l with
    | [] -> invalid_arg "Build.connect_dff: no such node"
    | fanins :: rest ->
      if i = 0 then fanins.(0) <- data else set (i - 1) rest
  in
  (* fanins list is reversed: element for node [id] sits at position
     count - 1 - id *)
  set (b.count - 1 - dff) b.fanins

let add_gate b fn name fanins =
  if not (Node.arity_ok fn (Array.length fanins)) then
    invalid_arg
      (Printf.sprintf "Build.add_gate: bad arity %d for %s" (Array.length fanins)
         (Node.gate_fn_name fn));
  add_node b name (Node.Gate fn) fanins

let add_po b name driver = b.pos <- (name, driver) :: b.pos

(* Constants are modelled as a DFF with no external fanin whose data input is
   its own output: it holds its init value forever. *)
let add_const b name value =
  let id = add_dff b ~init:value name in
  connect_dff b id id;
  id

let finalize b =
  let n = b.count in
  let names = Array.of_list (List.rev b.names) in
  let kinds = Array.of_list (List.rev b.kinds) in
  let fanins = Array.of_list (List.rev b.fanins) in
  let nodes =
    Array.init n (fun id ->
        { Node.id; name = names.(id); kind = kinds.(id); fanins = fanins.(id) })
  in
  Array.iter
    (fun nd ->
      Array.iter
        (fun f ->
          if f < 0 || f >= n then
            invalid_arg
              (Printf.sprintf "Build.finalize: node %s has dangling fanin"
                 nd.Node.name))
        nd.Node.fanins)
    nodes;
  let fanout_lists = Array.make n [] in
  Array.iter
    (fun nd ->
      Array.iter
        (fun f -> fanout_lists.(f) <- nd.Node.id :: fanout_lists.(f))
        nd.Node.fanins)
    nodes;
  let fanouts = Array.map (fun l -> Array.of_list (List.rev l)) fanout_lists in
  (* Topological sort of gates.  PIs and DFF outputs are sources; a DFF's
     data input does not propagate combinationally, so DFF nodes never
     appear in the order. *)
  let level = Array.make n 0 in
  let state = Array.make n 0 (* 0 unvisited, 1 on stack, 2 done *) in
  let order = ref [] in
  let rec visit id =
    match state.(id) with
    | 2 -> ()
    | 1 -> raise (Combinational_cycle names.(id))
    | _ ->
      (match kinds.(id) with
       | Node.Pi _ | Node.Dff _ -> state.(id) <- 2
       | Node.Gate _ ->
         state.(id) <- 1;
         let lvl = ref 0 in
         Array.iter
           (fun f ->
             visit f;
             if level.(f) + 1 > !lvl then lvl := level.(f) + 1)
           fanins.(id);
         level.(id) <- !lvl;
         state.(id) <- 2;
         order := id :: !order)
  in
  for id = 0 to n - 1 do
    visit id
  done;
  Node.make ~nodes
    ~pis:(Array.of_list (List.rev b.pis))
    ~pos:(Array.of_list (List.rev b.pos))
    ~dffs:(Array.of_list (List.rev b.dffs))
    ~fanouts
    ~order:(Array.of_list (List.rev !order))
    ~level
