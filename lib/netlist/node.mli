(** Gate-level sequential netlist — the circuit representation shared by
    synthesis, retiming, simulation, fault simulation, ATPG and analysis.

    A circuit is a dense array of nodes.  Combinational evaluation flows
    from the sources (primary inputs and DFF outputs) to the sinks (DFF
    data inputs and primary outputs); [order] lists the gates in a valid
    topological order.  Circuits are immutable once finalized by
    {!Build.finalize}. *)

(** Gate functions.  [And]/[Or]/[Nand]/[Nor] accept any arity >= 1,
    [Not]/[Buf] exactly 1, [Xor]/[Xnor] exactly 2. *)
type gate_fn = And | Or | Nand | Nor | Not | Buf | Xor | Xnor

type kind =
  | Pi of int              (** primary input, with its input-vector index *)
  | Dff of { init : bool } (** edge-triggered D flip-flop; power-up value *)
  | Gate of gate_fn

type node = {
  id : int;
  name : string;            (** unique within the circuit *)
  kind : kind;
  fanins : int array;       (** node ids; a DFF's single fanin is its data *)
}

type t = {
  nodes : node array;
  pis : int array;              (** node ids, in input-vector order *)
  pos : (string * int) array;   (** (output name, driving node id) *)
  dffs : int array;             (** node ids of DFFs, state-vector order *)
  fanouts : int array array;    (** per node: ids of reading nodes *)
  order : int array;            (** gate ids in combinational topo order *)
  level : int array;            (** per node: combinational level; sources 0 *)
  name_index : (string, int) Hashtbl.t Lazy.t;
  (** name -> id, built lazily on first {!find_by_name} *)
}

(** Assemble a circuit record (the only way to obtain a consistent
    [name_index]); {!Build.finalize} and hand-built test fixtures both go
    through here. *)
val make :
  nodes:node array -> pis:int array -> pos:(string * int) array ->
  dffs:int array -> fanouts:int array array -> order:int array ->
  level:int array -> t

(** Printable name of a gate function (e.g. ["NAND"]). *)
val gate_fn_name : gate_fn -> string

val pp_gate_fn : Format.formatter -> gate_fn -> unit
val equal_gate_fn : gate_fn -> gate_fn -> bool

(** [arity_ok fn n] is [true] when an [fn]-gate may have [n] inputs. *)
val arity_ok : gate_fn -> int -> bool

val num_nodes : t -> int
val num_pis : t -> int
val num_pos : t -> int
val num_dffs : t -> int
val num_gates : t -> int

(** [node c id] is the node record for [id]. *)
val node : t -> int -> node

val is_dff : t -> int -> bool
val is_pi : t -> int -> bool

(** Power-up value of a DFF node.
    @raise Invalid_argument if the node is not a DFF. *)
val dff_init : t -> int -> bool

(** Name lookup through a lazily-built hash index (amortized O(1)).
    @raise Not_found when absent. *)
val find_by_name : t -> string -> int

(** Default per-cell delay model (loosely shaped after mcnc.genlib):
    [gate_delay fn arity] in arbitrary time units. *)
val gate_delay : gate_fn -> int -> float

(** Default per-cell area model. *)
val gate_area : gate_fn -> int -> float

val dff_area : float

(** Longest combinational path under the default delay model, from any
    PI/DFF output to any PO/DFF input — the circuit's clock period. *)
val critical_path : t -> float

(** Total cell area (gates + DFFs) under the default area model. *)
val area : t -> float

(** One-line summary: IO/DFF/gate counts, area, delay. *)
val pp_summary : Format.formatter -> t -> unit
