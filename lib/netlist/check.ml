(* Structural well-formedness checks for finalized netlists.  Used by tests
   and asserted after every transformation (synthesis, mapping, retiming). *)

type problem =
  | Dangling_fanin of string
  | Bad_arity of string
  | Dff_unconnected of string
  | Po_dangling of string
  | Duplicate_name of string
  | Duplicate_po of string

let problem_to_string = function
  | Dangling_fanin s -> Printf.sprintf "dangling fanin at %s" s
  | Bad_arity s -> Printf.sprintf "bad arity at %s" s
  | Dff_unconnected s -> Printf.sprintf "DFF %s has no data input" s
  | Po_dangling s -> Printf.sprintf "PO %s driven by missing node" s
  | Duplicate_name s -> Printf.sprintf "duplicate node name %s" s
  | Duplicate_po s -> Printf.sprintf "duplicate primary-output name %s" s

let problems c =
  let n = Node.num_nodes c in
  let out = ref [] in
  let add p = out := p :: !out in
  Array.iter
    (fun nd ->
      let arity = Array.length nd.Node.fanins in
      (* A DFF's out-of-range data input is reported as [Dff_unconnected]
         only; the generic fanin sweep below covers the other kinds. *)
      (match nd.Node.kind with
       | Node.Pi _ -> if arity <> 0 then add (Bad_arity nd.Node.name)
       | Node.Dff _ ->
         if arity <> 1 then add (Dff_unconnected nd.Node.name)
         else if nd.Node.fanins.(0) < 0 || nd.Node.fanins.(0) >= n then
           add (Dff_unconnected nd.Node.name)
       | Node.Gate fn ->
         if not (Node.arity_ok fn arity) then add (Bad_arity nd.Node.name));
      (match nd.Node.kind with
       | Node.Dff _ -> ()
       | Node.Pi _ | Node.Gate _ ->
         Array.iter
           (fun f -> if f < 0 || f >= n then add (Dangling_fanin nd.Node.name))
           nd.Node.fanins))
    c.Node.nodes;
  Array.iter
    (fun (name, id) -> if id < 0 || id >= n then add (Po_dangling name))
    c.Node.pos;
  let seen = Hashtbl.create 97 in
  Array.iter
    (fun nd ->
      if Hashtbl.mem seen nd.Node.name then add (Duplicate_name nd.Node.name)
      else Hashtbl.add seen nd.Node.name ())
    c.Node.nodes;
  let po_seen = Hashtbl.create 17 in
  Array.iter
    (fun (name, _) ->
      if Hashtbl.mem po_seen name then add (Duplicate_po name)
      else Hashtbl.add po_seen name ())
    c.Node.pos;
  List.rev !out

let is_well_formed c = problems c = []

let assert_ok c =
  match problems c with
  | [] -> ()
  | p :: _ -> failwith ("Check.assert_ok: " ^ problem_to_string p)
