(* Canonical structural hashing of netlists.

   The digest covers exactly what the analyses and ATPG engines can
   observe: the PI/PO/DFF interface orders, DFF power-up values, gate
   functions and the fanin wiring (pin order included).  Node *names* and
   node *ids* contribute nothing — the same circuit rebuilt with every
   node renamed or the node array permuted hashes identically — so the
   hash is a sound content key for result caching, where a name-keyed
   memo would alias structurally different circuits.

   Mechanically: every node gets a 64-bit FNV-1a digest derived from its
   semantic identity — PIs from their input-vector index, DFF outputs
   from their state-vector index plus init value, gates from their
   function and the digests of their fanins in pin order (computed in
   topological order, so DFF outputs break the sequential cycles).  The
   circuit digest then folds the interface: each PO's driver digest in
   output order and each DFF's data-input digest in state order. *)

type t = int64

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let empty : t = fnv_offset

let byte (h : t) b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let int h v =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h ((v lsr (8 * i)) land 0xff)
  done;
  !h

let int64 h (v : int64) =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done;
  !h

let bool h b = int h (if b then 1 else 0)
let string h s = String.fold_left (fun h c -> byte h (Char.code c)) h s
let to_hex (h : t) = Printf.sprintf "%016Lx" h

(* Domain tags keep differently-shaped feeds from colliding byte-wise. *)
let tag_pi = 1
let tag_dff_out = 2
let tag_gate = 3
let tag_po = 4
let tag_dff_in = 5

let gate_fn_code = function
  | Node.And -> 0 | Node.Or -> 1 | Node.Nand -> 2 | Node.Nor -> 3
  | Node.Not -> 4 | Node.Buf -> 5 | Node.Xor -> 6 | Node.Xnor -> 7

let circuit_digest c =
  let digest = Array.make (Node.num_nodes c) empty in
  (* sources of combinational evaluation: identified by interface position,
     never by name or node id *)
  Array.iter
    (fun id ->
      match (Node.node c id).Node.kind with
      | Node.Pi idx -> digest.(id) <- int (int empty tag_pi) idx
      | Node.Dff _ | Node.Gate _ -> ())
    c.Node.pis;
  Array.iteri
    (fun state_idx id ->
      digest.(id) <-
        bool (int (int empty tag_dff_out) state_idx) (Node.dff_init c id))
    c.Node.dffs;
  (* gates in combinational topological order: fanin digests are ready *)
  Array.iter
    (fun id ->
      let n = Node.node c id in
      match n.Node.kind with
      | Node.Gate fn ->
        let h = int (int empty tag_gate) (gate_fn_code fn) in
        let h = int h (Array.length n.Node.fanins) in
        digest.(id) <-
          Array.fold_left (fun h f -> int64 h digest.(f)) h n.Node.fanins
      | Node.Pi _ | Node.Dff _ -> ())
    c.Node.order;
  let h = empty in
  let h = int h (Node.num_pis c) in
  let h = int h (Node.num_pos c) in
  let h = int h (Node.num_dffs c) in
  let h =
    Array.fold_left
      (fun h (_po_name, drv) -> int64 (int h tag_po) digest.(drv))
      h c.Node.pos
  in
  Array.fold_left
    (fun h id ->
      let n = Node.node c id in
      let h = bool (int h tag_dff_in) (Node.dff_init c id) in
      if Array.length n.Node.fanins > 0 then int64 h digest.(n.Node.fanins.(0))
      else int h (-1))
    h c.Node.dffs

let circuit c = to_hex (circuit_digest c)
