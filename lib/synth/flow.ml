(* End-to-end synthesis driver mirroring the paper's SIS command sequence:
   stamina (state minimization) -> jedi (state assignment) -> extract_seq_dc
   (unreachable-code don't cares) -> script.rugged | script.delay ->
   technology mapping.  Circuit names follow the paper's convention:
   <fsm>.<jX>.<sY> with jX in {ji, jo, jc} and sY in {sd, sr}. *)

type script = Rugged | Delay

let script_tag = function Rugged -> "sr" | Delay -> "sd"

type result = {
  name : string;
  machine : Fsm.Machine.t;     (* minimized machine actually implemented *)
  codes : int array;
  bits : int;
  circuit : Netlist.Node.t;    (* mapped netlist *)
  reset_line : bool;
}

let synthesize ?(use_seq_dc = true) ?(minimize_states = true)
    ?(reset_line = false) ~algorithm ~script machine =
  let phase name f = Obs.Trace.span ("synth." ^ name) f in
  let m =
    phase "minimize_states" (fun () ->
        if minimize_states then Minimize_states.minimize machine else machine)
  in
  let codes, bits = phase "assign" (fun () -> Assign.assign algorithm m) in
  let encoded =
    phase "encode" (fun () -> Encode.encode ~use_seq_dc m (codes, bits))
  in
  let net = Network.of_encoded encoded in
  phase "script" (fun () ->
      match script with
      | Rugged -> Scripts.script_rugged net
      | Delay -> Scripts.script_delay net);
  let spec =
    {
      Emit.circuit_name = machine.Fsm.Machine.name;
      ni = m.Fsm.Machine.num_inputs;
      no = m.Fsm.Machine.num_outputs;
      bits;
      reset_line;
    }
  in
  let generic = Emit.to_netlist spec net in
  let objective = match script with Rugged -> `Area | Delay -> `Delay in
  let circuit = phase "techmap" (fun () -> Techmap.map ~objective generic) in
  let name =
    Printf.sprintf "%s.%s.%s" machine.Fsm.Machine.name
      (Assign.algorithm_tag algorithm)
      (script_tag script)
  in
  (* error-level lint gate: a mapped netlist with a combinational cycle or
     structural defect must never leave the synthesis flow *)
  phase "lint_gate" (fun () ->
      Lint.Report.assert_clean ~what:("synthesis of " ^ name) circuit);
  { name; machine = m; codes; bits; circuit; reset_line }

(* State code of the machine's reset state — always 0 by construction. *)
let reset_code r = r.codes.(r.machine.Fsm.Machine.reset)
