(** Static untestability prover: classify stuck-at faults before ATPG.

    A soundness-ordered cascade of increasingly sharp (and increasingly
    expensive) proofs — structural observability, ternary
    constant-propagation excitation/effect-cone checks, and symbolic
    activation/confinement checks against the BDD reachable set.  Every
    [Untestable] verdict is a proof that no input sequence from power-up
    can ever detect the fault; anything the cascade cannot prove is
    [Unknown] and left for the engines.  The symbolic stage is
    node-budgeted and degrades to [Unknown] on {!Bdd.Node_limit}, never
    to a wrong verdict.

    Requires a cycle-free circuit (trusts [order], like
    {!Lint.Constants}). *)

type cause =
  | Unobservable            (** no structural path from the site to a PO *)
  | Unexcitable             (** source line proved constant at the stuck value *)
  | Effect_confined         (** effect cone reaches no primary output *)
  | Unreachable_activation  (** no reachable state produces the activation value *)
  | Machine_equivalent
      (** exact product-machine reachability: no reachable (good, faulty)
          state pair differs on any PO under any input *)

type evidence = Structural | Ternary | Symbolic

type proof = { cause : cause; evidence : evidence }
type verdict = Unknown | Untestable of proof

type summary = {
  total : int;            (** faults classified *)
  proved : int;           (** faults proved untestable *)
  structural : int;       (** proved by the structural stage *)
  ternary : int;          (** proved by the ternary stages *)
  symbolic : int;         (** proved by the symbolic stages *)
  symbolic_ran : bool;    (** false when disabled or Node_limit hit *)
  bdd_nodes : int;        (** reached-set BDD size (0 without symbolic) *)
  work : int;             (** deterministic work units (gate transfers) *)
}

type t = {
  faults : Fsim.Fault.t array;
  verdicts : verdict array;  (** aligned with [faults] *)
  summary : summary;
}

val cause_to_string : cause -> string
val cause_of_string : string -> cause option
val evidence_to_string : evidence -> string
val evidence_of_string : string -> evidence option

(** Reassemble a result (store codec constructor). *)
val v :
  faults:Fsim.Fault.t array -> verdicts:verdict array -> summary:summary -> t

(** Classify [faults] (default: the engines' collapsed list,
    {!Fsim.Collapse.list}).  [symbolic:false] skips the BDD stages;
    [max_nodes] is the BDD budget (default
    {!Symreach.default_max_nodes}).  [product:true] (requires the
    symbolic stage) additionally runs the exact product-machine check on
    every fault the cheaper stages leave unknown — complete for
    single-stuck-at sequential redundancy but the most expensive stage
    by far; each fault gets a fresh manager with a tenth of [max_nodes]
    as its budget (blow-up wall time is proportional to the budget and
    paid per fault), so a blow-up costs only that fault its verdict. *)
val classify :
  ?symbolic:bool ->
  ?max_nodes:int ->
  ?product:bool ->
  ?faults:Fsim.Fault.t array ->
  Netlist.Node.t ->
  t

(** The Theorem-1 comparison universe: every stuck-at fault on gate and
    PI sites (stems and gate input pins), uncollapsed, DFF sites
    excluded.  Gates and PIs survive retiming verbatim, so a correct
    retiming must leave this set's proved-untestable subset invariant. *)
val invariant_faults : Netlist.Node.t -> Fsim.Fault.t array

(** [lookup t] is an O(1) verdict oracle (faults outside [t.faults] are
    [Unknown]).  Build once, query many. *)
val lookup : t -> Fsim.Fault.t -> verdict

(** [prune t] is [fun f -> lookup t f <> Unknown] — the predicate
    {!Atpg.Run.generate} consumes to skip proved-untestable faults. *)
val prune : t -> Fsim.Fault.t -> bool

(** Sorted display names of the proved-untestable faults — the
    retiming-comparable fingerprint used by [satpg classify --check]
    (gate/PI names are stable across retiming; node ids are not). *)
val proved_names : Netlist.Node.t -> t -> string list

(** Exposed for tests: the per-line constants implied by the reachable
    set, or [None] when the BDD budget was exceeded. *)
val reachable_constants :
  max_nodes:int -> Netlist.Node.t -> (bool option array * int) option

(** Exposed for tests: structural backward connectivity from the POs. *)
val structurally_observable : Netlist.Node.t -> bool array

(** Exposed for tests: the fault's source line (its stem, or the line
    driving the faulty pin). *)
val fault_source : Netlist.Node.t -> Fsim.Fault.t -> int
