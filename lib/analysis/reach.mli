(** Exact reachable-state ("valid state") analysis and the paper's density
    of encoding.

    Breadth-first search from the circuit's power-up state, enumerating
    the full primary-input space per state in bit-parallel chunks — the
    stand-in for SIS [extract_seq_dc] on both synthesized and retimed
    netlists.  Exactness is why the benchmark FSMs cap primary inputs at 8
    (DESIGN.md, substitution 1). *)

type result = {
  valid_states : int;              (** size of the reachable set *)
  total_bits : int;                (** number of DFFs *)
  states : (int, unit) Hashtbl.t;  (** reachable DFF vectors, packed
                                       little-endian into ints *)
  initial : int;                   (** the power-up state *)
}

(** Maximum number of DFFs supported by the packed-int representation. *)
val max_state_bits : int

(** Maximum primary inputs the exhaustive per-state input enumeration
    accepts (2^[max_pis] vectors per state) — the seed-benchmark envelope
    of 8 capped FSM inputs (DESIGN.md substitution 1) plus a reset
    line. *)
val max_pis : int

(** Is the circuit within both explicit-enumeration caps?  When [false],
    {!explore} would raise — use {!Symreach} instead. *)
val feasible : Netlist.Node.t -> bool

(** Default [max_states] safety valve of {!explore} (part of the result
    store's configuration fingerprint). *)
val default_max_states : int

(** Pack a DFF vector into a state code.
    @raise Invalid_argument beyond {!max_state_bits} bits, where the int
    packing would silently alias. *)
val pack_bools : bool array -> int

(** The circuit's power-up state code. *)
val initial_state : Netlist.Node.t -> int

(** Run the exploration.  [max_states] bounds the frontier as a safety
    valve; paper-scale circuits stay far below it.  [name] labels the
    circuit in error messages.
    @raise Invalid_argument when the circuit has more than
    {!max_state_bits} DFFs or more than {!max_pis} primary inputs; the
    message names the circuit, the actual counts and the symbolic
    alternative ([satpg reach --symbolic], {!Symreach}). *)
val explore : ?max_states:int -> ?name:string -> Netlist.Node.t -> result

(** [2. ** #DFF] as a float (state spaces exceed integer range). *)
val total_states : result -> float

(** The paper's density of encoding: valid / total. *)
val density : result -> float

val is_valid : result -> int -> bool
