(* Structural attributes of Table 5, computed on the gate-level retiming
   graph (gates as vertices, register counts as edge weights).

   Key property exploited: materialized retimed circuits preserve gate names
   and connectivity, so an original/retimed pair has the *same* gate graph
   up to edge weights, and the weight of any fixed host-to-host path or
   cycle is invariant under retiming (the telescoping sum behind the paper's
   Theorems 2-4).  All traversals below are ordered canonically by gate
   *name* — never by weight — so the explored path/cycle set is identical
   for both members of a pair even when the expansion budget binds: the
   measured sequential depth and maximum cycle length are then exactly equal
   by construction, while the Lioy-style cycle count differs only through
   DFF-identity splitting (the Figure-2 artifact the paper discusses).

   Physical register identity is (driving signal, chain depth): registers
   delayed from the same source share a chain, exactly as materialized. *)

type result = {
  seq_depth : int;
  max_cycle_length : int;
  num_cycles : int;        (* distinct DFF sets among explored simple cycles *)
  exact : bool;            (* false if an expansion budget was hit *)
}

type gate_edge = {
  dst : int;               (* dense gate index, or -1 for the host (PO) *)
  weight : int;
  src_name : int;          (* rank of the driving gate/PI (register chain id) *)
  pin : int;
  po : int;                (* po index for host edges, -1 otherwise *)
}

type graph = {
  num_gates : int;
  succ : gate_edge array array; (* per gate, out-edges in canonical order *)
  host_succ : gate_edge array;
  rank : int array;             (* canonical rank of each gate (by name) *)
  by_rank : int array;          (* gate indices in rank order *)
}

let build c =
  let g = Retime.Graph.of_netlist c in
  let names =
    Array.map
      (fun id -> (Netlist.Node.node c id).Netlist.Node.name)
      g.Retime.Graph.gates
  in
  let n = Array.length names in
  let by_rank = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare names.(a) names.(b)) by_rank;
  let rank = Array.make n 0 in
  Array.iteri (fun r i -> rank.(i) <- r) by_rank;
  (* canonical id for any source node (gate, PI or const), by name *)
  let src_names = Hashtbl.create 256 in
  Array.iter
    (fun (e : Retime.Graph.edge) ->
      let nm = (Netlist.Node.node c e.Retime.Graph.src_node).Netlist.Node.name in
      Hashtbl.replace src_names nm ())
    g.Retime.Graph.edges;
  let sorted_srcs =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) src_names [])
  in
  let src_rank = Hashtbl.create 256 in
  List.iteri (fun i nm -> Hashtbl.replace src_rank nm i) sorted_srcs;
  let gate_succ = Array.make n [] in
  let host_succ = ref [] in
  Array.iter
    (fun (e : Retime.Graph.edge) ->
      let dst =
        if e.Retime.Graph.dst_node < 0 then -1
        else g.Retime.Graph.vertex_of_gate.(e.Retime.Graph.dst_node)
      in
      let nm = (Netlist.Node.node c e.Retime.Graph.src_node).Netlist.Node.name in
      let ge =
        {
          dst;
          weight = e.Retime.Graph.weight;
          src_name = Hashtbl.find src_rank nm;
          pin = e.Retime.Graph.dst_pin;
          po = e.Retime.Graph.po_index;
        }
      in
      match (Netlist.Node.node c e.Retime.Graph.src_node).Netlist.Node.kind with
      | Netlist.Node.Gate _ ->
        let sv = g.Retime.Graph.vertex_of_gate.(e.Retime.Graph.src_node) in
        gate_succ.(sv) <- ge :: gate_succ.(sv)
      | Netlist.Node.Pi _ -> host_succ := ge :: !host_succ
      | Netlist.Node.Dff _ -> () (* constant generators: not machine paths *))
    g.Retime.Graph.edges;
  (* canonical, weight-independent edge order *)
  let canon l =
    let a = Array.of_list l in
    let sort_key e =
      let d = if e.dst < 0 then max_int else rank.(e.dst) in
      (d, e.po, e.pin, e.src_name)
    in
    Array.sort (fun x y -> compare (sort_key x) (sort_key y)) a;
    a
  in
  {
    num_gates = n;
    succ = Array.map canon gate_succ;
    host_succ = canon !host_succ;
    rank;
    by_rank;
  }

let default_depth_budget = 1_500_000
let default_cycle_budget = 3_000_000

(* Maximum sequential depth: deepest host-to-host simple path (gates visited
   at most once), weight = registers crossed. *)
let seq_depth ?(budget = default_depth_budget) gr =
  let visited = Array.make gr.num_gates false in
  let best = ref 0 in
  let expansions = ref 0 in
  let exact = ref true in
  let rec dfs v acc =
    incr expansions;
    if !expansions > budget then exact := false
    else
      Array.iter
        (fun e ->
          if e.dst < 0 then begin
            if acc + e.weight > !best then best := acc + e.weight
          end
          else if not visited.(e.dst) then begin
            visited.(e.dst) <- true;
            dfs e.dst (acc + e.weight);
            visited.(e.dst) <- false
          end)
        gr.succ.(v)
  in
  Array.iter
    (fun e ->
      if e.dst < 0 then begin
        if e.weight > !best then best := e.weight
      end
      else begin
        visited.(e.dst) <- true;
        dfs e.dst e.weight;
        visited.(e.dst) <- false
      end)
    gr.host_succ;
  (!best, !exact)

(* Johnson simple-cycle enumeration: per root (in canonical order), search
   only vertices of rank > root that lie on a root-to-root lasso (forward
   and backward reachable, a topology-only restriction identical across an
   original/retimed pair), with Johnson's blocking lists to avoid
   re-exploring dead ends.  Cycles are identified by their physical register
   set {(chain id, depth)}; at most one cycle is counted per register set,
   the behaviour of the Lioy et al. algorithm the paper discusses. *)
let cycles ?(budget = default_cycle_budget) gr =
  let n = gr.num_gates in
  let sets = Hashtbl.create 1024 in
  let max_len = ref 0 in
  let expansions = ref 0 in
  let exact = ref true in
  let record regs weight =
    if weight > 0 then begin
      let key = List.sort compare regs in
      if not (Hashtbl.mem sets key) then begin
        Hashtbl.add sets key ();
        if weight > !max_len then max_len := weight
      end
    end
  in
  let preds = Array.make n [] in
  Array.iteri
    (fun v es ->
      Array.iter
        (fun e -> if e.dst >= 0 then preds.(e.dst) <- v :: preds.(e.dst))
        es)
    gr.succ;
  let in_f = Array.make n false in
  let in_b = Array.make n false in
  let region_of root =
    Array.fill in_f 0 n false;
    Array.fill in_b 0 n false;
    let rec fwd v =
      Array.iter
        (fun e ->
          if e.dst >= 0 && (not in_f.(e.dst))
             && (e.dst = root || gr.rank.(e.dst) > gr.rank.(root))
          then begin
            in_f.(e.dst) <- true;
            if e.dst <> root then fwd e.dst
          end)
        gr.succ.(v)
    in
    let rec bwd v =
      List.iter
        (fun p ->
          if (not in_b.(p)) && (p = root || gr.rank.(p) > gr.rank.(root))
          then begin
            in_b.(p) <- true;
            if p <> root then bwd p
          end)
        preds.(v)
    in
    fwd root;
    bwd root
  in
  let blocked = Array.make n false in
  let blists = Array.make n [] in
  let rec unblock v =
    if blocked.(v) then begin
      blocked.(v) <- false;
      let bs = blists.(v) in
      blists.(v) <- [];
      List.iter unblock bs
    end
  in
  let in_region v = in_f.(v) && in_b.(v) in
  let rec circuit root v acc regs =
    incr expansions;
    blocked.(v) <- true;
    let found = ref false in
    if !expansions > budget then exact := false
    else
      Array.iter
        (fun e ->
          if e.dst >= 0 && in_region e.dst then begin
            let regs' () =
              if e.weight = 0 then regs
              else
                List.rev_append
                  (List.init e.weight (fun d -> (e.src_name, d)))
                  regs
            in
            if e.dst = root then begin
              record (regs' ()) (acc + e.weight);
              found := true
            end
            else if not blocked.(e.dst) then
              if circuit root e.dst (acc + e.weight) (regs' ()) then
                found := true
          end)
        gr.succ.(v);
    if !found then unblock v
    else
      Array.iter
        (fun e ->
          if e.dst >= 0 && in_region e.dst && e.dst <> root then
            if not (List.mem v blists.(e.dst)) then
              blists.(e.dst) <- v :: blists.(e.dst))
        gr.succ.(v);
    !found
  in
  Array.iter
    (fun root ->
      if !expansions <= budget then begin
        region_of root;
        if in_f.(root) && in_b.(root) then begin
          Array.fill blocked 0 n false;
          Array.iteri (fun i _ -> blists.(i) <- []) blists;
          ignore (circuit root root 0 [])
        end
      end)
    gr.by_rank;
  (Hashtbl.length sets, !max_len, !exact)

let analyze ?depth_budget ?cycle_budget c =
  let gr = build c in
  let d, e1 = seq_depth ?budget:depth_budget gr in
  let nc, ml, e2 = cycles ?budget:cycle_budget gr in
  { seq_depth = d; max_cycle_length = ml; num_cycles = nc; exact = e1 && e2 }
