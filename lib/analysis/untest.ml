(* Static untestability prover.

   Classifies stuck-at faults before any ATPG engine spends budget,
   through a soundness-ordered cascade — each stage is strictly more
   expensive and strictly sharper than the last, and the first proof
   wins so the recorded evidence names the cheapest sufficient stage:

     A. structural   the fault site has no connectivity path to any PO
                     (pure graph reachability; retiming-invariant)
     B1. ternary     the fault's source line is proved constant at the
                     stuck value in every cycle from power-up
                     ({!Fixpoint.constants}), so it can never be excited
     B2. ternary     the fault *effect cone* — the least set of lines
                     the good/faulty machines can ever disagree on —
                     contains no PO driver, with propagation blocked by
                     proved-constant side inputs
     C1. symbolic    no reachable state under any input drives the
                     source line to the activation value (BDD reachable
                     set, {!Symreach})
     C2. symbolic    the effect cone recomputed with reachable-state
                     constants as blockers is confined; valid only when
                     the cone also contains no register, which pins the
                     faulty machine inside the good reachable set
     C3. symbolic    single-frame product check: the fault is injected
                     into the BDD node functions and the good and faulty
                     machines proved to agree on every PO and every
                     next-state function over reached x inputs — the
                     faulty machine then tracks the good machine's state
                     exactly, cycle by cycle, so no sequence ever
                     distinguishes them.  This is the stage that sees
                     cross-line correlations (e.g. retimed register
                     copies that are equal in every reachable state)
                     which per-line constants cannot express.
     C4. symbolic    exact product-machine reachability (opt-in,
                     [product:true]): breadth-first image computation
                     over (good state, faulty state) pairs from the
                     shared power-up state, in a fresh per-fault
                     manager.  The fault is undetectable iff no
                     reachable pair shows a PO difference under any
                     input — this is the *exact* sequential redundancy
                     criterion, catching faults whose state divergence
                     exists but never propagates to an output (e.g. a
                     register feeding only masked logic).

   Soundness of the cone (stages B2/C2): E is computed as a least
   fixpoint where a gate joins the effect through fanin i unless some
   *other* fanin j with E(j) = false is proved constant at the gate's
   controlling value.  The ¬E(j) guard is essential: a sibling whose own
   value the fault can corrupt is no blocker (reconvergence through the
   fault line).  By lexicographic induction on (cycle, topological
   level), any line where good and faulty machines disagree is in E: an
   uncorrupted side input (¬E(j), by induction equal in both machines)
   at the controlling value forces the gate output in both machines, and
   a register differs at t+1 only if its data line differed at t.  For
   B2 the blockers are power-up-sound ternary constants, valid in the
   faulty machine on every uncorrupted line, so E ∩ PO-drivers = ∅ means
   no output ever differs — undetectable.  For C2 the blockers only hold
   in *reachable good* states, so the proof additionally requires
   E ∩ DFFs = ∅: then the faulty machine's state equals the good
   machine's state at every cycle and never leaves the reachable set.

   The symbolic stage is budgeted: {!Bdd.Node_limit} (at exploration or
   during any later oracle query) degrades the whole stage to "unknown",
   never to a wrong verdict.

   Like every [order]-trusting analysis, requires a cycle-free circuit. *)

type cause =
  | Unobservable
  | Unexcitable
  | Effect_confined
  | Unreachable_activation
  | Machine_equivalent

type evidence = Structural | Ternary | Symbolic
type proof = { cause : cause; evidence : evidence }
type verdict = Unknown | Untestable of proof

type summary = {
  total : int;
  proved : int;
  structural : int;
  ternary : int;
  symbolic : int;
  symbolic_ran : bool;
  bdd_nodes : int;
  work : int;
}

type t = {
  faults : Fsim.Fault.t array;
  verdicts : verdict array;
  summary : summary;
}

let cause_to_string = function
  | Unobservable -> "unobservable"
  | Unexcitable -> "unexcitable"
  | Effect_confined -> "effect_confined"
  | Unreachable_activation -> "unreachable_activation"
  | Machine_equivalent -> "machine_equivalent"

let cause_of_string = function
  | "unobservable" -> Some Unobservable
  | "unexcitable" -> Some Unexcitable
  | "effect_confined" -> Some Effect_confined
  | "unreachable_activation" -> Some Unreachable_activation
  | "machine_equivalent" -> Some Machine_equivalent
  | _ -> None

let evidence_to_string = function
  | Structural -> "structural"
  | Ternary -> "ternary"
  | Symbolic -> "symbolic"

let evidence_of_string = function
  | "structural" -> Some Structural
  | "ternary" -> Some Ternary
  | "symbolic" -> Some Symbolic
  | _ -> None

let v ~faults ~verdicts ~summary = { faults; verdicts; summary }

(* ------------------------------------------------------------- metrics - *)

let m_classified = Obs.Metrics.counter "untest.faults_classified"
let m_proved = Obs.Metrics.counter "untest.proved"
let m_structural = Obs.Metrics.counter "untest.proved_structural"
let m_ternary = Obs.Metrics.counter "untest.proved_ternary"
let m_symbolic = Obs.Metrics.counter "untest.proved_symbolic"
let m_work = Obs.Metrics.counter "untest.work"

(* ------------------------------------------------------- fault universe - *)

(* The Theorem-1 comparison universe: the full (uncollapsed) stuck-at
   fault set of the gate and PI sites.  Gates and PIs — names included —
   are preserved verbatim by retiming, which only moves registers along
   wires, so a correct retiming must leave this set's untestability
   pointwise invariant; DFF-site faults are excluded because the
   register count itself legitimately changes.  Mirrors the exclusions
   of [Lint.Netlist_rules.invariant_untestable_count]. *)
let invariant_faults c =
  let out = ref [] in
  let add site = out := { Fsim.Fault.site; stuck = true } :: { Fsim.Fault.site; stuck = false } :: !out
  in
  Array.iter
    (fun (nd : Netlist.Node.node) ->
      let id = nd.Netlist.Node.id in
      match nd.Netlist.Node.kind with
      | Netlist.Node.Dff _ -> ()
      | Netlist.Node.Pi _ -> add (Fsim.Fault.Stem id)
      | Netlist.Node.Gate _ ->
        add (Fsim.Fault.Stem id);
        Array.iteri
          (fun pin _ -> add (Fsim.Fault.Pin { gate = id; pin }))
          nd.Netlist.Node.fanins)
    c.Netlist.Node.nodes;
  Array.of_list (List.rev !out)

(* ----------------------------------------------------------- effect cone - *)

let controlling = function
  | Netlist.Node.And | Netlist.Node.Nand -> Some false
  | Netlist.Node.Or | Netlist.Node.Nor -> Some true
  | Netlist.Node.Not | Netlist.Node.Buf | Netlist.Node.Xor | Netlist.Node.Xnor
    ->
    None

let fault_source c (f : Fsim.Fault.t) =
  match f.Fsim.Fault.site with
  | Fsim.Fault.Stem id -> id
  | Fsim.Fault.Pin { gate; pin } ->
    (Netlist.Node.node c gate).Netlist.Node.fanins.(pin)

(* E(n): can the fault effect ever appear on line n?  [const id] supplies
   the blocking side-input constants (ternary or reachable-symbolic). *)
let effect_cone c ~const ~work (f : Fsim.Fault.t) =
  let site_gate, site_pin =
    match f.Fsim.Fault.site with
    | Fsim.Fault.Stem id -> (id, -1)
    | Fsim.Fault.Pin { gate; pin } -> (gate, pin)
  in
  (* A stem fault corrupts its node's output directly; a fault on a DFF
     data pin corrupts the register itself. *)
  let forced =
    match f.Fsim.Fault.site with
    | Fsim.Fault.Stem id -> id
    | Fsim.Fault.Pin { gate; _ } ->
      (match (Netlist.Node.node c gate).Netlist.Node.kind with
      | Netlist.Node.Dff _ -> gate
      | Netlist.Node.Pi _ | Netlist.Node.Gate _ -> -1)
  in
  let force id = if id = forced then Some true else None in
  let gate (nd : Netlist.Node.node) ins =
    incr work;
    let id = nd.Netlist.Node.id in
    let fn =
      match nd.Netlist.Node.kind with
      | Netlist.Node.Gate fn -> fn
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> assert false
    in
    let nfan = Array.length nd.Netlist.Node.fanins in
    let corrupted i = ins.(i) || (id = site_gate && i = site_pin) in
    let propagates i =
      match controlling fn with
      | None -> true
      | Some cv ->
        let blocked = ref false in
        for j = 0 to nfan - 1 do
          if
            j <> i
            && (not (corrupted j))
            && const nd.Netlist.Node.fanins.(j) = Some cv
          then blocked := true
        done;
        not !blocked
    in
    let e = ref false in
    for i = 0 to nfan - 1 do
      if corrupted i && propagates i then e := true
    done;
    !e
  in
  Fixpoint.run ~equal:Bool.equal ~join:( || ) ~default:false
    ~pi:(fun _ -> false)
    ~dff_seed:(fun _ -> false)
    ~gate ~force c

let po_hit c e = Array.exists (fun (_, id) -> e.(id)) c.Netlist.Node.pos
let dff_hit c e = Array.exists (fun id -> e.(id)) c.Netlist.Node.dffs

(* ------------------------------------------------- structural stage (A) - *)

(* Backward connectivity from the POs, registers transparent — the same
   invariant-under-retiming reachability Lint's NET004 uses (lint sits
   above this library, so the ~40-line BFS lives here too). *)
let structurally_observable c =
  let n = Netlist.Node.num_nodes c in
  let obs = Array.make n false in
  let queue = Queue.create () in
  let mark id =
    if not obs.(id) then begin
      obs.(id) <- true;
      Queue.add id queue
    end
  in
  Array.iter (fun (_, id) -> mark id) c.Netlist.Node.pos;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    Array.iter mark (Netlist.Node.node c id).Netlist.Node.fanins
  done;
  obs

(* -------------------------------------------------------- symbolic stage - *)

(* Per-line reachable-state constants: [Some v] when the line holds [v]
   in every reachable state under every input.  One upfront pass keeps
   the exploration and every constant query inside a single Node_limit
   guard; per-fault C1/C2 classification is then pure array lookups. *)
let symbolic_env ~max_nodes c =
  match Symreach.explore ~max_nodes c with
  | r ->
    let n = Netlist.Node.num_nodes c in
    let rc = Array.make n None in
    for id = 0 to n - 1 do
      if not (Symreach.can_take r id true) then rc.(id) <- Some false
      else if not (Symreach.can_take r id false) then rc.(id) <- Some true
    done;
    Some (r, rc)
  | exception (Bdd.Node_limit | Invalid_argument _) -> None

let reachable_constants ~max_nodes c =
  Option.map
    (fun (r, rc) -> (rc, r.Symreach.summary.Symreach.bdd_nodes))
    (symbolic_env ~max_nodes c)

let gate_func man fn (ins : Bdd.t array) =
  let fold op =
    let acc = ref ins.(0) in
    for k = 1 to Array.length ins - 1 do
      acc := op man !acc ins.(k)
    done;
    !acc
  in
  match fn with
  | Netlist.Node.And -> fold Bdd.and_
  | Netlist.Node.Or -> fold Bdd.or_
  | Netlist.Node.Nand -> Bdd.not_ (fold Bdd.and_)
  | Netlist.Node.Nor -> Bdd.not_ (fold Bdd.or_)
  | Netlist.Node.Not -> Bdd.not_ ins.(0)
  | Netlist.Node.Buf -> ins.(0)
  | Netlist.Node.Xor -> Bdd.xor_ man ins.(0) ins.(1)
  | Netlist.Node.Xnor -> Bdd.xnor_ man ins.(0) ins.(1)

(* C3.  Inject the fault into the per-node BDD functions (recomputing
   only the combinational fanout cone of the site) and test whether some
   reachable state under some input produces a difference at a PO or at
   a register's data input.  [true] means no frame starting from a good
   reachable state can ever excite an observable difference; since the
   next-state functions agree the faulty machine's state equals the good
   machine's at every cycle (induction from the shared power-up state,
   never leaving the reachable set), so agreement holds at all cycles
   and the fault is undetectable.  May raise {!Bdd.Node_limit}. *)
let single_frame_confined (r : Symreach.result) ~work (f : Fsim.Fault.t) =
  let c = r.Symreach.circuit in
  let man = r.Symreach.man in
  let good = r.Symreach.node_funcs in
  let stuck = if f.Fsim.Fault.stuck then Bdd.one else Bdd.zero in
  let faulty = Array.copy good in
  let n = Netlist.Node.num_nodes c in
  let recompute = Array.make n false in
  (* [root]: first corrupted node.  A stem fault overwrites the root's
     own function; a gate-pin fault recomputes the root with one input
     replaced; a DFF data-pin fault corrupts no in-frame function, only
     the register's next-state comparison below. *)
  let mark_cone root =
    List.iter
      (fun id ->
        match (Netlist.Node.node c id).Netlist.Node.kind with
        | Netlist.Node.Gate _ -> recompute.(id) <- true
        | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ())
      (Netlist.Stats.comb_fanout_cone c root)
  in
  (match f.Fsim.Fault.site with
  | Fsim.Fault.Stem id ->
    faulty.(id) <- stuck;
    mark_cone id;
    recompute.(id) <- false
  | Fsim.Fault.Pin { gate; _ } -> (
    match (Netlist.Node.node c gate).Netlist.Node.kind with
    | Netlist.Node.Dff _ -> ()
    | Netlist.Node.Pi _ | Netlist.Node.Gate _ -> mark_cone gate));
  Array.iter
    (fun id ->
      if recompute.(id) then begin
        incr work;
        let nd = Netlist.Node.node c id in
        let fn =
          match nd.Netlist.Node.kind with
          | Netlist.Node.Gate fn -> fn
          | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> assert false
        in
        let ins =
          Array.mapi
            (fun i fid ->
              match f.Fsim.Fault.site with
              | Fsim.Fault.Pin { gate; pin } when gate = id && pin = i ->
                stuck
              | _ -> faulty.(fid))
            nd.Netlist.Node.fanins
        in
        faulty.(id) <- gate_func man fn ins
      end)
    c.Netlist.Node.order;
  let diff = ref Bdd.zero in
  let note g f = if not (Bdd.equal g f) then diff := Bdd.or_ man !diff (Bdd.xor_ man g f)
  in
  Array.iter (fun (_, id) -> note good.(id) faulty.(id)) c.Netlist.Node.pos;
  Array.iter
    (fun id ->
      let data = (Netlist.Node.node c id).Netlist.Node.fanins.(0) in
      let faulty_next =
        match f.Fsim.Fault.site with
        | Fsim.Fault.Pin { gate; pin = 0 } when gate = id -> stuck
        | _ -> faulty.(data)
      in
      note good.(data) faulty_next)
    c.Netlist.Node.dffs;
  Bdd.is_false (Bdd.and_ man r.Symreach.reached !diff)

(* C4.  Exact product-machine reachability: explore the pair space
   (good state, faulty state) from the shared power-up state and test
   every reached pair, under every input, for a PO difference.  This is
   the textbook sequential-redundancy criterion — detectable iff some
   input sequence distinguishes the two machines — so a completed
   fixpoint with an empty detect intersection is an unconditional
   undetectability proof.

   Variable layout (one interleaved rail of four per register, PIs at
   the bottom): good-current [4i], good-next [4i+1], faulty-current
   [4i+2], faulty-next [4i+3], PI [idx] at [4*nff + idx].  Keeping a
   register's four rails adjacent keeps the transition relation's
   next-state constraints local, and the [v -> v-1] rename that maps a
   next-state image back onto current-state variables is
   order-preserving as {!Bdd.rename} requires.

   A fresh manager per fault: the faulty copy's functions differ per
   fault, and an analysis-lifetime shared manager (no GC) would
   accumulate dead nodes across thousands of faults straight into
   {!Bdd.Node_limit}.  The budget is therefore per-fault, and a blow-up
   costs only that fault its verdict. *)
let product_undetectable ~max_nodes ~work c (f : Fsim.Fault.t) =
  let exception Detectable in
  try
    let nff = Netlist.Node.num_dffs c in
    let man = Bdd.create ~max_nodes () in
    let stuck = if f.Fsim.Fault.stuck then Bdd.one else Bdd.zero in
    (* per-node functions of one machine copy over its own current-state
       rail; [inject] turns on fault injection for the faulty copy *)
    let copy_funcs ~cur ~inject =
      let funcs = Array.make (Netlist.Node.num_nodes c) Bdd.zero in
      Array.iteri (fun i id -> funcs.(id) <- cur i) c.Netlist.Node.dffs;
      Array.iteri
        (fun idx id -> funcs.(id) <- Bdd.var man ((4 * nff) + idx))
        c.Netlist.Node.pis;
      let stem_override id =
        inject
        &&
        match f.Fsim.Fault.site with
        | Fsim.Fault.Stem sid -> sid = id
        | Fsim.Fault.Pin _ -> false
      in
      Array.iter
        (fun id -> if stem_override id then funcs.(id) <- stuck)
        c.Netlist.Node.pis;
      Array.iter
        (fun id -> if stem_override id then funcs.(id) <- stuck)
        c.Netlist.Node.dffs;
      Array.iter
        (fun id ->
          let nd = Netlist.Node.node c id in
          match nd.Netlist.Node.kind with
          | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ()
          | Netlist.Node.Gate fn ->
            incr work;
            let ins =
              Array.mapi
                (fun i fid ->
                  match f.Fsim.Fault.site with
                  | Fsim.Fault.Pin { gate; pin }
                    when inject && gate = id && pin = i ->
                    stuck
                  | _ -> funcs.(fid))
                nd.Netlist.Node.fanins
            in
            funcs.(id) <- gate_func man fn ins;
            if stem_override id then funcs.(id) <- stuck)
        c.Netlist.Node.order;
      funcs
    in
    let good = copy_funcs ~cur:(fun i -> Bdd.var man (4 * i)) ~inject:false in
    let faulty =
      copy_funcs ~cur:(fun i -> Bdd.var man ((4 * i) + 2)) ~inject:true
    in
    (* a fault on a DFF's data pin bypasses the data line of that
       register only, in the faulty copy only *)
    let next_of funcs ~inject id =
      let data = (Netlist.Node.node c id).Netlist.Node.fanins.(0) in
      match f.Fsim.Fault.site with
      | Fsim.Fault.Pin { gate; pin = 0 } when inject && gate = id -> stuck
      | _ -> funcs.(data)
    in
    let trans = ref Bdd.one in
    Array.iteri
      (fun i id ->
        let ng = Bdd.xnor_ man (Bdd.var man ((4 * i) + 1)) (next_of good ~inject:false id)
        and nf = Bdd.xnor_ man (Bdd.var man ((4 * i) + 3)) (next_of faulty ~inject:true id)
        in
        trans := Bdd.and_ man !trans (Bdd.and_ man ng nf))
      c.Netlist.Node.dffs;
    let trans = !trans in
    let detect = ref Bdd.zero in
    Array.iter
      (fun (_, id) ->
        if not (Bdd.equal good.(id) faulty.(id)) then
          detect := Bdd.or_ man !detect (Bdd.xor_ man good.(id) faulty.(id)))
      c.Netlist.Node.pos;
    let detect = !detect in
    if Bdd.is_false detect && nff = 0 then true
    else begin
      let quantified v = v >= 4 * nff || v land 1 = 0 in
      let image s =
        Bdd.rename man (fun v -> v - 1) (Bdd.and_exists man quantified trans s)
      in
      let init = ref Bdd.one in
      Array.iteri
        (fun i id ->
          let v = Netlist.Node.dff_init c id in
          let lg = Bdd.var man (4 * i) and lf = Bdd.var man ((4 * i) + 2) in
          init := Bdd.and_ man !init (if v then lg else Bdd.not_ lg);
          init := Bdd.and_ man !init (if v then lf else Bdd.not_ lf))
        c.Netlist.Node.dffs;
      let reached = ref !init in
      let frontier = ref !init in
      while not (Bdd.is_false !frontier) do
        incr work;
        if not (Bdd.is_false (Bdd.and_ man !frontier detect)) then
          raise Detectable;
        let next = image !frontier in
        frontier := Bdd.and_ man next (Bdd.not_ !reached);
        reached := Bdd.or_ man !reached next
      done;
      true
    end
  with
  | Detectable -> false
  | Bdd.Node_limit | Invalid_argument _ -> false

(* Prefilter for C4: word-parallel random fault simulation (fixed seed,
   so classification stays deterministic).  Any fault some random
   sequence detects is testable — its exact check could only come back
   "detectable" — so the expensive product-machine stage is spent on the
   hard residue only: random-resistant faults, which is exactly where
   the undetectable ones live.  Unsound in neither direction: detection
   here yields [Unknown] (correct for a testable fault), and undetected
   faults still get the full exact check. *)
let presimulate ~work c faults =
  let rng = Random.State.make [| 0x9e37; Netlist.Node.num_nodes c |] in
  let detected = Array.make (Array.length faults) false in
  for _round = 1 to 4 do
    let vectors =
      Sim.Vectors.random_sequence rng ~width:(Netlist.Node.num_pis c)
        ~length:128
    in
    (* fault dropping: lanes already detected in earlier rounds are free *)
    let run = Fsim.Engine.simulate ~skip:(Array.copy detected) c faults vectors in
    work := !work + run.Fsim.Engine.cycles;
    Array.iteri
      (fun i d -> if d then detected.(i) <- true)
      run.Fsim.Engine.detected
  done;
  detected

(* --------------------------------------------------------------- cascade - *)

type env = {
  c : Netlist.Node.t;
  sobs : bool array;
  values : Sim.Value3.t array;
  has_consts : bool;
  reach : (Symreach.result * bool option array) option;
  sharper : bool;
  single_frame_live : bool ref;
      (* cleared on the first Node_limit inside C3: the shared manager
         is full, so later single-frame checks would only fail again *)
  product_nodes : int;  (* per-fault C4 budget; 0 disables the stage *)
  presim_detected : bool array;
      (* C4 prefilter: faults random simulation already detects *)
  work : int ref;
}

let static_const env id = Sim.Value3.to_bool_opt env.values.(id)

let classify_fault env i (f : Fsim.Fault.t) =
  let site = Fsim.Fault.site_node f.Fsim.Fault.site in
  let src = fault_source env.c f in
  if not env.sobs.(site) then
    Untestable { cause = Unobservable; evidence = Structural }
  else if static_const env src = Some f.Fsim.Fault.stuck then
    Untestable { cause = Unexcitable; evidence = Ternary }
  else if
    (* without any proved constant the cone degenerates to forward
       connectivity, which stage A already decided *)
    env.has_consts
    && not (po_hit env.c (effect_cone env.c ~const:(static_const env) ~work:env.work f))
  then Untestable { cause = Effect_confined; evidence = Ternary }
  else
    let sym =
      match env.reach with
      | None -> Unknown
      | Some (r, rc) ->
        if rc.(src) = Some f.Fsim.Fault.stuck then
          Untestable { cause = Unreachable_activation; evidence = Symbolic }
        else if
          env.sharper
          &&
          let e =
            effect_cone env.c ~const:(fun id -> rc.(id)) ~work:env.work f
          in
          (not (po_hit env.c e)) && not (dff_hit env.c e)
        then Untestable { cause = Effect_confined; evidence = Symbolic }
        else if !(env.single_frame_live) then begin
          match single_frame_confined r ~work:env.work f with
          | true -> Untestable { cause = Effect_confined; evidence = Symbolic }
          | false -> Unknown
          | exception (Bdd.Node_limit | Invalid_argument _) ->
            env.single_frame_live := false;
            Unknown
        end
        else Unknown
    in
    match sym with
    | Untestable _ -> sym
    | Unknown ->
      if
        env.product_nodes > 0
        && (not env.presim_detected.(i))
        && product_undetectable ~max_nodes:env.product_nodes ~work:env.work
             env.c f
      then Untestable { cause = Machine_equivalent; evidence = Symbolic }
      else Unknown

let classify ?(symbolic = true) ?(max_nodes = Symreach.default_max_nodes)
    ?(product = false) ?faults c =
  Obs.Trace.span "untest.classify" @@ fun () ->
  let faults =
    match faults with Some fs -> fs | None -> Fsim.Collapse.list c
  in
  let work = ref 0 in
  let sobs =
    Obs.Trace.span "untest.structural" (fun () -> structurally_observable c)
  in
  let values =
    Obs.Trace.span "untest.ternary" (fun () ->
        work := !work + Netlist.Node.num_nodes c;
        Fixpoint.constants c)
  in
  let has_consts =
    Array.exists (fun v -> Sim.Value3.to_bool_opt v <> None) values
  in
  let reach =
    if not symbolic then None
    else
      Obs.Trace.span "untest.symbolic" (fun () -> symbolic_env ~max_nodes c)
  in
  (* reachable constants only sharpen the cone when they prove a line
     the power-up ternary pass could not *)
  let sharper =
    match reach with
    | None -> false
    | Some (_, rc) ->
      let s = ref false in
      Array.iteri
        (fun id v ->
          if v <> None && Sim.Value3.to_bool_opt values.(id) = None then
            s := true)
        rc;
      !s
  in
  let env =
    { c; sobs; values; has_consts; reach; sharper;
      single_frame_live = ref true;
      (* C4 rides on the symbolic opt-in: static-only classification
         must stay BDD-free.  A tenth of the reachable-set budget per
         fault: the pair space squares the state space, so a fault that
         needs more nodes than that is almost always a blow-up, and
         blow-ups cost wall time proportional to the budget — per-fault,
         across potentially thousands of faults. *)
      product_nodes = (if symbolic && product then max 1 (max_nodes / 10) else 0);
      presim_detected =
        (if symbolic && product then
           Obs.Trace.span "untest.presim" (fun () -> presimulate ~work c faults)
         else Array.make (Array.length faults) false);
      work }
  in
  let verdicts = Array.mapi (classify_fault env) faults in
  let count p = Array.fold_left (fun a v -> if p v then a + 1 else a) 0 verdicts in
  let by_evidence ev =
    count (function Untestable p -> p.evidence = ev | Unknown -> false)
  in
  let summary =
    {
      total = Array.length faults;
      proved = count (function Untestable _ -> true | Unknown -> false);
      structural = by_evidence Structural;
      ternary = by_evidence Ternary;
      symbolic = by_evidence Symbolic;
      symbolic_ran = reach <> None;
      bdd_nodes =
        (match reach with
        | Some (r, _) -> r.Symreach.summary.Symreach.bdd_nodes
        | None -> 0);
      work = !work;
    }
  in
  Obs.Metrics.add m_classified summary.total;
  Obs.Metrics.add m_proved summary.proved;
  Obs.Metrics.add m_structural summary.structural;
  Obs.Metrics.add m_ternary summary.ternary;
  Obs.Metrics.add m_symbolic summary.symbolic;
  Obs.Metrics.add m_work summary.work;
  { faults; verdicts; summary }

(* --------------------------------------------------------------- lookups - *)

let lookup t =
  let h = Hashtbl.create (max 16 (Array.length t.faults)) in
  Array.iteri (fun i f -> Hashtbl.replace h f t.verdicts.(i)) t.faults;
  fun f ->
    match Hashtbl.find_opt h f with Some v -> v | None -> Unknown

let prune t =
  let look = lookup t in
  fun f -> look f <> Unknown

let proved_names c t =
  let out = ref [] in
  Array.iteri
    (fun i f ->
      match t.verdicts.(i) with
      | Untestable _ -> out := Fsim.Fault.to_string c f :: !out
      | Unknown -> ())
    t.faults;
  List.sort compare !out
