(* Symbolic (BDD-based) reachable-state analysis.

   Variable order, fixed per circuit: current-state bit i of DFF
   [c.dffs.(i)] is variable [2i], its next-state copy is [2i+1], and
   primary input j is [2*nff + j].  Interleaving current/next keeps each
   conjunct xnor(next_i, f_i) of the transition relation close to the
   current-state bits it reads — with separated blocks the relation of a
   65-bit shift register alone needs ~2^65 nodes, interleaved it is
   linear.  The next->current rename [2i+1 -> 2i] and the counting
   squash [2i -> i] are both monotone on their supports, as Bdd.rename
   requires. *)

type summary = {
  total_bits : int;
  valid_states : float;
  valid_states_int : int option;
  depth : int;
  bdd_nodes : int;
  man_nodes : int;
}

type result = {
  summary : summary;
  man : Bdd.man;
  reached : Bdd.t;
  node_funcs : Bdd.t array;
  circuit : Netlist.Node.t;
}

let default_max_nodes = 1_000_000

let m_nodes = Obs.Metrics.gauge "bdd.nodes"
let m_load = Obs.Metrics.gauge "bdd.unique_load"
let m_lookups = Obs.Metrics.counter "bdd.cache_lookups"
let m_hits = Obs.Metrics.counter "bdd.cache_hits"
let m_iters = Obs.Metrics.counter "symreach.iterations"

(* Per-node functions over current-state and PI variables, in topo order. *)
let node_functions man (c : Netlist.Node.t) =
  let nff = Netlist.Node.num_dffs c in
  let funcs = Array.make (Netlist.Node.num_nodes c) Bdd.zero in
  (* sources first: DFF outputs and PIs are not gates and may be absent
     from [order], but every gate's fanin function must exist before the
     topological sweep reads it *)
  Array.iteri (fun i id -> funcs.(id) <- Bdd.var man (2 * i)) c.Netlist.Node.dffs;
  Array.iteri
    (fun idx id -> funcs.(id) <- Bdd.var man ((2 * nff) + idx))
    c.Netlist.Node.pis;
  Array.iter
    (fun id ->
      let nd = Netlist.Node.node c id in
      match nd.Netlist.Node.kind with
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ()
      | Netlist.Node.Gate fn ->
        let ins = Array.map (fun f -> funcs.(f)) nd.Netlist.Node.fanins in
        let fold op =
          let acc = ref ins.(0) in
          for k = 1 to Array.length ins - 1 do
            acc := op man !acc ins.(k)
          done;
          !acc
        in
        funcs.(id) <-
          (match fn with
          | Netlist.Node.And -> fold Bdd.and_
          | Netlist.Node.Or -> fold Bdd.or_
          | Netlist.Node.Nand -> Bdd.not_ (fold Bdd.and_)
          | Netlist.Node.Nor -> Bdd.not_ (fold Bdd.or_)
          | Netlist.Node.Not -> Bdd.not_ ins.(0)
          | Netlist.Node.Buf -> ins.(0)
          | Netlist.Node.Xor -> Bdd.xor_ man ins.(0) ins.(1)
          | Netlist.Node.Xnor -> Bdd.xnor_ man ins.(0) ins.(1)))
    c.Netlist.Node.order;
  funcs

let explore ?(max_nodes = default_max_nodes) (c : Netlist.Node.t) =
  let nff = Netlist.Node.num_dffs c in
  let man = Bdd.create ~max_nodes () in
  let funcs = node_functions man c in
  (* Monolithic transition relation over (current, next, pi). *)
  let trans = ref Bdd.one in
  Array.iteri
    (fun i id ->
      let nd = Netlist.Node.node c id in
      let data = funcs.(nd.Netlist.Node.fanins.(0)) in
      trans :=
        Bdd.and_ man !trans (Bdd.xnor_ man (Bdd.var man ((2 * i) + 1)) data))
    c.Netlist.Node.dffs;
  let trans = !trans in
  (* image: quantify current-state (even) and PI variables out of T /\ S,
     leaving the next-state (odd) variables, then rename them current *)
  let quantified v = v >= 2 * nff || v land 1 = 0 in
  let image s =
    Bdd.rename man (fun v -> v - 1) (Bdd.and_exists man quantified trans s)
  in
  let init = ref Bdd.one in
  Array.iteri
    (fun i id ->
      let lit = Bdd.var man (2 * i) in
      let lit = if Netlist.Node.dff_init c id then lit else Bdd.not_ lit in
      init := Bdd.and_ man !init lit)
    c.Netlist.Node.dffs;
  let reached = ref !init in
  let frontier = ref !init in
  let depth = ref 0 in
  while not (Bdd.is_false !frontier) do
    let iter = !depth in
    let next =
      if Obs.Trace.enabled () then begin
        Obs.Trace.tick ();
        Obs.Trace.span
          ~args:
            [
              ("iter", Obs.Json.Int iter);
              ("frontier_nodes", Obs.Json.Int (Bdd.size man !frontier));
              ("reached_nodes", Obs.Json.Int (Bdd.size man !reached));
            ]
          "symreach.image"
          (fun () -> image !frontier)
      end
      else image !frontier
    in
    let fresh = Bdd.and_ man next (Bdd.not_ !reached) in
    if Bdd.is_false fresh then frontier := Bdd.zero
    else begin
      reached := Bdd.or_ man !reached fresh;
      frontier := fresh;
      incr depth;
      Obs.Metrics.incr m_iters
    end
  done;
  let reached = !reached in
  let st = Bdd.stats man in
  Obs.Metrics.set m_nodes (float_of_int st.Bdd.nodes);
  Obs.Metrics.set m_load st.Bdd.unique_load;
  Obs.Metrics.add m_lookups st.Bdd.cache_lookups;
  Obs.Metrics.add m_hits st.Bdd.cache_hits;
  (* squash the even current-state variables to the contiguous range
     0..nff-1 so counting ranges over exactly the state bits *)
  let squashed = Bdd.rename man (fun v -> v / 2) reached in
  let valid_states_int = Bdd.sat_count_int man ~nvars:nff squashed in
  (* the exact integer count, when representable, is authoritative; the
     float counter is only the fallback past the 63-bit range *)
  let valid_states =
    match valid_states_int with
    | Some i -> float_of_int i
    | None -> Bdd.sat_count man ~nvars:nff squashed
  in
  let summary =
    {
      total_bits = nff;
      valid_states;
      valid_states_int;
      depth = !depth;
      bdd_nodes = Bdd.size man reached;
      man_nodes = Bdd.num_nodes man;
    }
  in
  { summary; man; reached; node_funcs = funcs; circuit = c }

let total_states s = 2.0 ** float_of_int s.total_bits

let density s = s.valid_states /. total_states s

let is_valid r bits =
  if Array.length bits <> r.summary.total_bits then
    invalid_arg "Symreach.is_valid: wrong state-vector length";
  Bdd.eval r.man r.reached (fun v -> bits.(v / 2))

let can_take r node value =
  let f = r.node_funcs.(node) in
  let target = if value then f else Bdd.not_ f in
  not (Bdd.is_false (Bdd.and_ r.man r.reached target))
