(* Generic register-widening dataflow over a cycle-free netlist.

   One engine for every "abstract value per line, joined across cycles"
   analysis: the caller supplies a join-semilattice ([equal]/[join]) with
   a [default] bottom-of-sweep element, initial abstractions for primary
   inputs and register power-up ([pi]/[dff_seed]), and a monotone gate
   transfer function.  Each sweep evaluates every node through [order],
   then joins every register's next-state value into its running
   abstraction; the loop stops at the least fixpoint of that widening.

   Convergence: each register's abstraction can climb at most
   [max_climbs] strict steps (the lattice height above the seed — 1 for
   ternary constants, where the only climb is bool -> X, and 1 for a
   boolean reached/not-reached cone), so at most
   [num_dffs * max_climbs + 2] sweeps run: one to discover each climb,
   one to prove stability.  A final sweep re-evaluates the combinational
   logic from the fixed register abstractions.

   [force] overrides a node's value right after it is assigned in every
   sweep — the hook by which Untest injects a fault effect at a PI, DFF
   or gate output stem without the lattice knowing about faults.

   The sweep structure (and therefore the exact iteration count and
   result) is identical to the original Lint.Constants loop; [constants]
   below is that analysis, re-expressed as an instance. *)

let run ?(max_climbs = 1) ?force ~equal ~join ~default ~pi ~dff_seed ~gate c =
  let n = Netlist.Node.num_nodes c in
  let value = Array.make n default in
  let state = Array.map dff_seed c.Netlist.Node.dffs in
  let assign id v =
    value.(id) <-
      (match force with
      | None -> v
      | Some f -> (match f id with Some w -> w | None -> v))
  in
  let eval () =
    Array.iter (fun id -> assign id (pi id)) c.Netlist.Node.pis;
    Array.iteri (fun j id -> assign id state.(j)) c.Netlist.Node.dffs;
    Array.iter
      (fun id ->
        let nd = Netlist.Node.node c id in
        match nd.Netlist.Node.kind with
        | Netlist.Node.Gate _ ->
          let ins = Array.map (fun f -> value.(f)) nd.Netlist.Node.fanins in
          assign id (gate nd ins)
        | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ())
      c.Netlist.Node.order
  in
  let changed = ref true in
  let max_sweeps = (Netlist.Node.num_dffs c * max_climbs) + 2 in
  let sweeps = ref 0 in
  while !changed && !sweeps < max_sweeps do
    changed := false;
    incr sweeps;
    eval ();
    Array.iteri
      (fun j id ->
        let data = (Netlist.Node.node c id).Netlist.Node.fanins.(0) in
        let next = join state.(j) value.(data) in
        if not (equal next state.(j)) then begin
          state.(j) <- next;
          changed := true
        end)
      c.Netlist.Node.dffs
  done;
  eval ();
  value

(* ----------------------------------------- ternary constants instance - *)

let join3 a b = if Sim.Value3.equal a b then a else Sim.Value3.X

let constants c =
  run ~equal:Sim.Value3.equal ~join:join3 ~default:Sim.Value3.X
    ~pi:(fun _ -> Sim.Value3.X)
    ~dff_seed:(fun id -> Sim.Value3.of_bool (Netlist.Node.dff_init c id))
    ~gate:(fun nd ins ->
      match nd.Netlist.Node.kind with
      | Netlist.Node.Gate fn -> Sim.Value3.eval_gate fn ins
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> Sim.Value3.X)
    c
