(** Symbolic reachability: exact valid-state counts and density of
    encoding beyond the explicit-enumeration cap of {!Reach}.

    The transition relation of a {!Netlist.Node.t} is built as an ROBDD
    ({!Bdd}) and forward reachability runs to the least fixpoint from the
    power-up state; the reachable set is model-counted (float-safe past
    the 62-bit packed-int range), which is how Tables 6–8 and Figure 3
    obtain density for circuits explicit BFS rejects, and how
    SIS-[extract_seq_dc]-style unreachable-state don't-cares are proved
    for the lint layer.

    Variable order (see DESIGN.md §10): current- and next-state bits
    interleaved in netlist DFF order (DFF i at variables [2i]/[2i+1]),
    then primary inputs from [2n].  Interleaving keeps each transition
    conjunct next to the state bits it reads — a 65-bit shift register's
    relation is linear-size interleaved and ~2^65 nodes with separated
    blocks.  The order is a heuristic: BDD sizes, not results, are
    sensitive to it. *)

type summary = {
  total_bits : int;              (** number of DFFs *)
  valid_states : float;          (** exact count (rounded past 2^53) *)
  valid_states_int : int option; (** exact integer count when it fits *)
  depth : int;
  (** least-fixpoint iterations = max BFS distance from the power-up
      state (the symbolic sequential depth) *)
  bdd_nodes : int;               (** nodes of the reached-set BDD *)
  man_nodes : int;               (** nodes allocated by the manager *)
}

(** The full in-memory result; only {!summary} is persistable. *)
type result = {
  summary : summary;
  man : Bdd.man;
  reached : Bdd.t;        (** over current-state variables *)
  node_funcs : Bdd.t array;
  (** per netlist node: its function over current-state and PI
      variables *)
  circuit : Netlist.Node.t;
}

(** Default manager node budget (part of the result-store configuration
    fingerprint). *)
val default_max_nodes : int

(** Run the analysis.
    @raise Bdd.Node_limit when the BDDs outgrow [max_nodes]. *)
val explore : ?max_nodes:int -> Netlist.Node.t -> result

(** [2. ** #DFF] as a float. *)
val total_states : summary -> float

(** The paper's density of encoding: valid / total. *)
val density : summary -> float

(** Is this DFF-value vector (netlist DFF order) reachable? *)
val is_valid : result -> bool array -> bool

(** [can_take r node value]: can [node]'s output line take [value] in
    some reachable state under some input?  [false] means any fault
    needing that value for activation is sequentially redundant. *)
val can_take : result -> int -> bool -> bool
