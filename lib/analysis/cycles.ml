(* Cycle statistics in the style of the algorithm the paper adopted from
   Lioy et al. [17]: simple cycles of the register graph, where at most one
   cycle is counted for any set of DFFs regardless of how many combinational
   paths connect them (the behaviour the paper dissects around Figure 2).

   Enumeration is Johnson-style DFS restricted to cycles whose minimum
   vertex is the DFS root (each simple cycle found once per rotation class),
   followed by deduplication on the vertex set.  A budget caps pathological
   blow-ups. *)

type result = {
  num_cycles : int;       (* distinct DFF sets forming a simple cycle *)
  max_length : int;       (* most DFFs in any simple cycle *)
  exact : bool;
}

let count ?(budget = 4_000_000) g =
  let n = Dffgraph.num_dffs g in
  let sets = Hashtbl.create 1024 in
  let max_len = ref 0 in
  let expansions = ref 0 in
  let exact = ref true in
  let visited = Array.make n false in
  (* at record time [visited] holds exactly root + current path, i.e. the
     cycle's vertex set; keying on its packed form stays exact at any DFF
     count (an int bitmask would alias vertices >= 62) *)
  let record len =
    let key = Sim.Statekey.of_bools visited in
    if not (Hashtbl.mem sets key) then begin
      Hashtbl.add sets key ();
      if len > !max_len then max_len := len
    end
  in
  let rec dfs root v len =
    incr expansions;
    if !expansions > budget then exact := false
    else
      for w = 0 to n - 1 do
        if g.Dffgraph.adj.(v).(w) then begin
          if w = root then record len
          else if w > root && not visited.(w) then begin
            visited.(w) <- true;
            dfs root w (len + 1);
            visited.(w) <- false
          end
        end
      done
  in
  for root = 0 to n - 1 do
    visited.(root) <- true;
    dfs root root 1;
    visited.(root) <- false
  done;
  { num_cycles = Hashtbl.length sets; max_length = !max_len; exact = !exact }
