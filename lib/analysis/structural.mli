(** Structural attributes of the paper's Table 5, computed on the
    gate-level retiming graph (gates as vertices, register counts as edge
    weights).

    Materialized retimed circuits preserve gate names and connectivity, so
    an original/retimed pair shares the same gate graph up to edge
    weights, and the weight of any fixed host-to-host path or cycle is
    invariant under retiming (the telescoping sum behind Theorems 2–4).
    All traversals are ordered canonically by gate name — never by weight
    — so the explored path/cycle set is identical across a pair even when
    the expansion budget binds: measured sequential depth and maximum
    cycle length are then exactly equal by construction, while the
    Lioy-style cycle count can grow only through register-identity
    splitting (the paper's Figure-2 artifact). *)

type result = {
  seq_depth : int;
  (** most registers on any PI-to-PO path visiting each gate once *)
  max_cycle_length : int;
  (** most registers in any explored simple cycle *)
  num_cycles : int;
  (** distinct register sets among explored simple cycles — the Lioy
      counting behaviour: one count per DFF set *)
  exact : bool;
  (** false when an expansion budget was hit (values are then lower
      bounds, but still pair-consistent) *)
}

(** Default expansion budgets of {!seq_depth} and {!cycles} (part of the
    result store's configuration fingerprint). *)
val default_depth_budget : int

val default_cycle_budget : int

type graph

(** Build the canonical gate graph of a circuit. *)
val build : Netlist.Node.t -> graph

(** Deepest host-to-host simple path; returns (depth, exact). *)
val seq_depth : ?budget:int -> graph -> int * bool

(** Johnson-style simple-cycle enumeration with register-set dedup;
    returns (#distinct sets, max length, exact). *)
val cycles : ?budget:int -> graph -> int * int * bool

(** One-call wrapper around {!build}, {!seq_depth} and {!cycles}. *)
val analyze : ?depth_budget:int -> ?cycle_budget:int -> Netlist.Node.t -> result
