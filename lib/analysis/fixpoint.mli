(** Generic register-widening dataflow engine over cycle-free netlists.

    One shared implementation of the "evaluate combinationally, join each
    register's next-state value into its running abstraction, repeat to
    fixpoint" loop used by ternary constant propagation
    ({!Lint.Constants} delegates here) and by {!Untest}'s fault
    effect-cone analysis.

    Requires a cycle-free circuit ([order] is trusted); callers run it
    only after the structural lint rules pass. *)

(** [run ~equal ~join ~default ~pi ~dff_seed ~gate c] computes, per node,
    the least fixpoint abstraction of every value the node can take in
    any reachable cycle.

    - [equal]/[join]: the join-semilattice.  [gate] must be monotone
      w.r.t. the order induced by [join].
    - [default]: bottom-of-sweep scratch value (any element; every node
      is assigned before it is read because [order] is topological).
    - [pi id]: abstraction of primary input [id] (typically top).
    - [dff_seed id]: power-up abstraction of DFF node [id].
    - [gate nd ins]: transfer function; [ins] are the fanin values in
      pin order.  Called only for [Gate] nodes.
    - [force id]: when [Some v], overrides node [id]'s value right after
      assignment in every sweep (fault injection hook).
    - [max_climbs]: height of the lattice above the seeds — the maximum
      number of strict climbs any register abstraction can make
      (default 1: ternary constants and boolean cones).  The sweep bound
      is [num_dffs * max_climbs + 2]. *)
val run :
  ?max_climbs:int ->
  ?force:(int -> 'a option) ->
  equal:('a -> 'a -> bool) ->
  join:('a -> 'a -> 'a) ->
  default:'a ->
  pi:(int -> 'a) ->
  dff_seed:(int -> 'a) ->
  gate:(Netlist.Node.node -> 'a array -> 'a) ->
  Netlist.Node.t ->
  'a array

(** Ternary join: [a ⊔ b] is [a] when equal, else [X]. *)
val join3 : Sim.Value3.t -> Sim.Value3.t -> Sim.Value3.t

(** Ternary constant propagation — per node, an over-approximation of
    every value it can take in any reachable cycle: PIs are [X],
    registers widen from their power-up values.  A [Zero]/[One] result
    is a proof of constancy.  Bit-identical to the historical
    [Lint.Constants.values] loop, which now delegates here. *)
val constants : Netlist.Node.t -> Sim.Value3.t array
