(* Exact reachable-state ("valid state") analysis by breadth-first search
   from the circuit's power-up state, enumerating the full primary-input
   space in bit-parallel chunks — the stand-in for SIS extract_seq_dc on the
   synthesized and retimed netlists.  Feasible because the benchmark FSMs
   cap primary inputs at 8 (see DESIGN.md substitution 1). *)

type result = {
  valid_states : int;
  total_bits : int;               (* number of DFFs *)
  states : (int, unit) Hashtbl.t; (* state codes (DFF vector packed as int) *)
  initial : int;
}

let max_state_bits = 60

(* The seed-benchmark envelope: FSM inputs are capped at 8 (DESIGN.md
   substitution 1) and a reset line may add one more.  Beyond this the
   2^PI-per-state enumeration is rejected in favour of Symreach. *)
let max_pis = 9

let default_max_states = 2_000_000

let feasible c =
  Netlist.Node.num_dffs c <= max_state_bits
  && Netlist.Node.num_pis c <= max_pis

(* Every packed-int producer checks the width itself: [1 lsl i] silently
   aliases once i reaches the OCaml int width, so an unguarded call from a
   new site would corrupt state codes instead of failing. *)
let check_width ctx n =
  if n > max_state_bits then
    invalid_arg
      (Printf.sprintf
         "Reach.%s: %d DFF bits exceed the %d-bit packed-int state-code cap \
          (1 lsl would alias); use Sim.Statekey or Analysis.Symreach"
         ctx n max_state_bits)

let state_code_of_words words lane =
  check_width "state_code_of_words" (Array.length words);
  let code = ref 0 in
  Array.iteri
    (fun i w -> if (w lsr lane) land 1 = 1 then code := !code lor (1 lsl i))
    words;
  !code

let pack_bools bits =
  check_width "pack_bools" (Array.length bits);
  let code = ref 0 in
  Array.iteri (fun i b -> if b then code := !code lor (1 lsl i)) bits;
  !code

let state_words_of_code nbits code =
  Array.init nbits (fun i -> if (code lsr i) land 1 = 1 then -1 else 0)

let initial_state c =
  pack_bools
    (Array.map (fun id -> Netlist.Node.dff_init c id) c.Netlist.Node.dffs)

let explore ?(max_states = default_max_states) ?(name = "circuit") c =
  let nbits = Netlist.Node.num_dffs c in
  if nbits > max_state_bits then
    invalid_arg
      (Printf.sprintf
         "Reach.explore: %s has %d DFFs, beyond the %d-bit packed-state cap \
          of explicit enumeration; use `satpg reach --symbolic` \
          (Analysis.Symreach) instead"
         name nbits max_state_bits);
  let npi = Netlist.Node.num_pis c in
  if npi > max_pis then
    invalid_arg
      (Printf.sprintf
         "Reach.explore: %s has %d primary inputs, beyond the %d-PI \
          exhaustive-enumeration cap (2^%d vectors per state); use `satpg \
          reach --symbolic` (Analysis.Symreach) instead"
         name npi max_pis npi);
  let sim = Sim.Parallel.create c in
  let input_chunks = Sim.Vectors.enumerate_words npi in
  let seen = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let push code =
    if not (Hashtbl.mem seen code) then begin
      Hashtbl.add seen code ();
      Queue.add code queue
    end
  in
  let init = initial_state c in
  push init;
  while (not (Queue.is_empty queue)) && Hashtbl.length seen <= max_states do
    let code = Queue.pop queue in
    List.iter
      (fun (lanes, words) ->
        Sim.Parallel.set_state_words sim (state_words_of_code nbits code);
        Sim.Parallel.set_input_words sim words;
        Sim.Parallel.eval_comb sim;
        Sim.Parallel.tick sim;
        let next = Sim.Parallel.get_state_words sim in
        for lane = 0 to lanes - 1 do
          push (state_code_of_words next lane)
        done)
      input_chunks
  done;
  { valid_states = Hashtbl.length seen; total_bits = nbits; states = seen;
    initial = init }

let total_states r = 2.0 ** float_of_int r.total_bits

let density r = float_of_int r.valid_states /. total_states r

let is_valid r code = Hashtbl.mem r.states code
