(* Reproduction of every table in the paper's evaluation.  Each [compute]
   runs (memoized) synthesis / retiming / ATPG / analysis and returns typed
   rows; each [pp] prints the table in the paper's layout.

   The per-cell work (one benchmark under one engine/analysis) shards
   across domains via [Exec.Pool]: circuit pairs are prebuilt sequentially
   (so synthesis traces, lint gates and the Flow memo behave exactly as
   before), then the independent cells fan out.  The pool's deterministic
   merge returns rows in selection order with metrics/events applied in
   the same order, so every table is byte-identical at any job count. *)

let ratio a b = float_of_int a /. float_of_int (max 1 b)

(* ------------------------------------------------------------------ T1 - *)

module T1 = struct
  type row = {
    fsm : string;
    paper_pi : int;
    paper_po : int;
    built_pi : int;
    built_po : int;
    states : int;
  }

  let compute () =
    List.map
      (fun (e : Fsm.Benchmarks.entry) ->
        let m = Fsm.Benchmarks.machine e in
        {
          fsm = e.Fsm.Benchmarks.name;
          paper_pi = e.Fsm.Benchmarks.paper_pi;
          paper_po = e.Fsm.Benchmarks.paper_po;
          built_pi = m.Fsm.Machine.num_inputs;
          built_po = m.Fsm.Machine.num_outputs;
          states = Fsm.Machine.num_states m;
        })
      Fsm.Benchmarks.all

  let pp ppf rows =
    Fmt.pf ppf "Table 1: finite state machines (paper PI/PO -> built PI/PO)@.";
    Fmt.pf ppf "%-6s %6s %6s %9s %9s %7s@." "FSM" "PI" "PO" "built-PI"
      "built-PO" "states";
    List.iter
      (fun r ->
        Fmt.pf ppf "%-6s %6d %6d %9d %9d %7d@." r.fsm r.paper_pi r.paper_po
          r.built_pi r.built_po r.states)
      rows
end

(* ------------------------------------------------------------- T2/T3/T4 - *)

module Atpg_pair = struct
  type row = {
    circuit : string;
    dff_orig : int;
    dff_re : int;
    fc_orig : float;
    fe_orig : float;
    fc_re : float;
    fe_re : float;
    pu_orig : int;  (* statically proved untestable (0 unless pruning ran) *)
    pu_re : int;
    work_orig : int;
    work_re : int;
    cpu_ratio : float;
  }

  let proved_count (r : Atpg.Types.result) =
    Array.fold_left
      (fun a s -> if s = Fsim.Fault.Proved_untestable then a + 1 else a)
      0 r.Atpg.Types.status

  let compute ?prove_untestable kind (p : Flow.pair) =
    let o = Cache.atpg ?prove_untestable kind ~name:p.Flow.name p.Flow.original in
    let r =
      Cache.atpg ?prove_untestable kind ~name:(p.Flow.name ^ ".re")
        p.Flow.retimed
    in
    let wo = Atpg.Types.work_units o.Atpg.Types.stats in
    let wr = Atpg.Types.work_units r.Atpg.Types.stats in
    {
      circuit = p.Flow.name;
      dff_orig = Netlist.Node.num_dffs p.Flow.original;
      dff_re = Netlist.Node.num_dffs p.Flow.retimed;
      fc_orig = o.Atpg.Types.fault_coverage;
      fe_orig = o.Atpg.Types.fault_efficiency;
      fc_re = r.Atpg.Types.fault_coverage;
      fe_re = r.Atpg.Types.fault_efficiency;
      pu_orig = proved_count o;
      pu_re = proved_count r;
      work_orig = wo;
      work_re = wr;
      cpu_ratio = ratio wr wo;
    }

  let pp title ppf rows =
    Fmt.pf ppf "%s@." title;
    Fmt.pf ppf "%-12s %4s %6s %6s %4s %11s | %4s %6s %6s %4s %11s | %9s@."
      "circuit" "dff" "%FC" "%FE" "PU" "work" "dff" "%FC" "%FE" "PU" "work"
      "CPU-ratio";
    List.iter
      (fun r ->
        Fmt.pf ppf
          "%-12s %4d %6.1f %6.1f %4d %11d | %4d %6.1f %6.1f %4d %11d | %9.1f@."
          r.circuit r.dff_orig r.fc_orig r.fe_orig r.pu_orig r.work_orig
          r.dff_re r.fc_re r.fe_re r.pu_re r.work_re r.cpu_ratio)
      rows
end

module T2 = struct
  let compute () =
    Exec.Pool.map_list (Atpg_pair.compute Cache.Hitec) (Flow.table2_pairs ())

  let pp = Atpg_pair.pp "Table 2: HITEC-style ATPG, original vs retimed"
end

module T3 = struct
  let compute () =
    Exec.Pool.map_list
      (Atpg_pair.compute Cache.Attest)
      (Flow.confirmation_pairs ())

  let pp = Atpg_pair.pp "Table 3: Attest-style (simulation-based) ATPG"
end

module T4 = struct
  let selection =
    let ji = Synth.Assign.Input_dominant
    and jo = Synth.Assign.Output_dominant
    and jc = Synth.Assign.Combined in
    let sd = Synth.Flow.Delay and sr = Synth.Flow.Rugged in
    [
      ("dk16", ji, sd);
      ("pma", jo, sd);
      ("s510", jc, sd);
      ("s510", ji, sd);
      ("s510", jo, sr);
    ]

  let compute () =
    let pairs = List.map (fun (f, a, s) -> Flow.pair f a s) selection in
    Exec.Pool.map_list (Atpg_pair.compute Cache.Sest) pairs

  let pp = Atpg_pair.pp "Table 4: SEST-style (state-learning) ATPG"
end

(* ------------------------------------------------------------------ T5 - *)

module T5 = struct
  type row = {
    circuit : string;
    depth_orig : int;
    max_cycle_orig : int;
    cycles_orig : int;
    depth_re : int;
    max_cycle_re : int;
    cycles_re : int;
  }

  let compute () =
    Exec.Pool.map_list
      (fun (p : Flow.pair) ->
        let o = Cache.structural ~name:p.Flow.name p.Flow.original in
        let r =
          Cache.structural ~name:(p.Flow.name ^ ".re") p.Flow.retimed
        in
        {
          circuit = p.Flow.name;
          depth_orig = o.Analysis.Structural.seq_depth;
          max_cycle_orig = o.Analysis.Structural.max_cycle_length;
          cycles_orig = o.Analysis.Structural.num_cycles;
          depth_re = r.Analysis.Structural.seq_depth;
          max_cycle_re = r.Analysis.Structural.max_cycle_length;
          cycles_re = r.Analysis.Structural.num_cycles;
        })
      (Flow.table2_pairs ())

  let pp ppf rows =
    Fmt.pf ppf "Table 5: structural attributes (orig | retimed)@.";
    Fmt.pf ppf "%-12s %6s %7s %7s | %6s %7s %7s@." "circuit" "depth" "maxcyc"
      "#cyc" "depth" "maxcyc" "#cyc";
    List.iter
      (fun r ->
        Fmt.pf ppf "%-12s %6d %7d %7d | %6d %7d %7d@." r.circuit r.depth_orig
          r.max_cycle_orig r.cycles_orig r.depth_re r.max_cycle_re r.cycles_re)
      rows
end

(* ------------------------------------------------------------------ T6 - *)

module T6 = struct
  type row = {
    circuit : string;
    states_trav : int;
    valid_states : float;
    pct_valid_trav : float;
    total_states : float;
    density : float;
    source : string;  (* "explicit" | "symbolic" *)
  }

  let one name circuit =
    let atpg = Cache.atpg Cache.Hitec ~name circuit in
    let d = Cache.density ~name circuit in
    (* count only traversed states that are valid (the ATPG's fault-sim path
       never leaves the valid set; justification cubes may) *)
    let trav = Hashtbl.length atpg.Atpg.Types.stats.Atpg.Types.states in
    {
      circuit = name;
      states_trav = trav;
      valid_states = d.Cache.valid;
      pct_valid_trav = 100.0 *. float_of_int trav /. max 1.0 d.Cache.valid;
      total_states = d.Cache.total;
      density = d.Cache.density;
      source = Cache.density_source_name d.Cache.source;
    }

  let compute () =
    let cells =
      List.concat_map
        (fun (p : Flow.pair) ->
          [
            (p.Flow.name, p.Flow.original);
            (p.Flow.name ^ ".re", p.Flow.retimed);
          ])
        (Flow.table2_pairs ())
    in
    Exec.Pool.map_list (fun (name, c) -> one name c) cells

  let pp ppf rows =
    Fmt.pf ppf "Table 6: HITEC state-traversal and density of encoding@.";
    Fmt.pf ppf "%-16s %7s %7s %8s %10s %10s %9s@." "circuit" "#trav" "#valid"
      "%trav" "total" "density" "source";
    List.iter
      (fun r ->
        Fmt.pf ppf "%-16s %7d %7.0f %8.0f %10.3g %10.2e %9s@." r.circuit
          r.states_trav r.valid_states r.pct_valid_trav r.total_states
          r.density r.source)
      rows
end

(* ------------------------------------------------------------------ T7 - *)

module T7 = struct
  type row = {
    circuit : string;
    delay : float;
    dff : int;
    valid_states : float;
    total_states : float;
    density : float;
    source : string;
  }

  let compute () =
    Exec.Pool.map_list
      (fun (name, c, period) ->
        let d = Cache.density ~name c in
        {
          circuit = name;
          delay = period;
          dff = Netlist.Node.num_dffs c;
          valid_states = d.Cache.valid;
          total_states = d.Cache.total;
          density = d.Cache.density;
          source = Cache.density_source_name d.Cache.source;
        })
      (Flow.sensitivity_versions ())

  let pp ppf rows =
    Fmt.pf ppf "Table 7: density-of-encoding sensitivity (s510.jo.sr)@.";
    Fmt.pf ppf "%-18s %8s %5s %7s %10s %10s %9s@." "circuit" "delay" "dff"
      "#valid" "total" "density" "source";
    List.iter
      (fun r ->
        Fmt.pf ppf "%-18s %8.2f %5d %7.0f %10.3g %10.2e %9s@." r.circuit
          r.delay r.dff r.valid_states r.total_states r.density r.source)
      rows
end

(* ------------------------------------------------------------------ T8 - *)

module T8 = struct
  type row = {
    circuit : string;
    fc : float;
    fe : float;
    states_trav : int;
    valid_states : float;
    valid_source : string;
    states_orig_set : int;
    fc_orig_set : float;
  }

  (* The retimed circuits for which the HITEC-style run attained the lowest
     coverage. *)
  let worst_retimed ?(count = 4) () =
    let rows = T2.compute () in
    List.sort
      (fun (a : Atpg_pair.row) b -> compare a.Atpg_pair.fc_re b.Atpg_pair.fc_re)
      rows
    |> List.filteri (fun i _ -> i < count)
    |> List.map (fun (r : Atpg_pair.row) -> r.Atpg_pair.circuit)

  let compute ?count () =
    let names = worst_retimed ?count () in
    Exec.Pool.map_list
      (fun name ->
        let f, a, s =
          List.find
            (fun (f, a, s) ->
              let p = Flow.pair f a s in
              String.equal p.Flow.name name)
            Flow.table2_selection
        in
        let p = Flow.pair f a s in
        let re_name = p.Flow.name ^ ".re" in
        let atpg_re = Cache.atpg Cache.Hitec ~name:re_name p.Flow.retimed in
        let atpg_orig = Cache.atpg Cache.Hitec ~name:p.Flow.name p.Flow.original in
        let d_re = Cache.density ~name:re_name p.Flow.retimed in
        (* fault simulate the original circuit's test set on the retimed
           circuit (the paper's PROOFS experiment) *)
        let orig_vectors = List.concat atpg_orig.Atpg.Types.test_sets in
        let faults_re = Fsim.Collapse.list p.Flow.retimed in
        let run = Fsim.Engine.simulate p.Flow.retimed faults_re orig_vectors in
        let det =
          Array.fold_left (fun a b -> if b then a + 1 else a) 0
            run.Fsim.Engine.detected
        in
        {
          circuit = re_name;
          fc = atpg_re.Atpg.Types.fault_coverage;
          fe = atpg_re.Atpg.Types.fault_efficiency;
          states_trav =
            Hashtbl.length atpg_re.Atpg.Types.stats.Atpg.Types.states;
          valid_states = d_re.Cache.valid;
          valid_source = Cache.density_source_name d_re.Cache.source;
          states_orig_set = List.length run.Fsim.Engine.good_states;
          fc_orig_set =
            Fsim.Engine.coverage ~detected:det
              ~total:(Array.length faults_re);
        })
      names

  let pp ppf rows =
    Fmt.pf ppf
      "Table 8: states needed for high coverage (orig test set on retimed)@.";
    Fmt.pf ppf "%-18s %6s %6s %7s %7s %10s %10s %9s@." "circuit" "%FC" "%FE"
      "#trav" "#valid" "#trav-orig" "%FC-orig" "source";
    List.iter
      (fun r ->
        Fmt.pf ppf "%-18s %6.1f %6.1f %7d %7.0f %10d %10.1f %9s@." r.circuit
          r.fc r.fe r.states_trav r.valid_states r.states_orig_set
          r.fc_orig_set r.valid_source)
      rows
end
