(* The study's circuit factory: synthesize each benchmark FSM under a jedi
   algorithm / SIS-script combination, then retime it — producing the
   original/retimed pairs of the paper's Table 2.  Every artifact is
   memoized per process, since several tables consume the same pairs. *)

type pair = {
  name : string;                  (* e.g. "s510.jo.sr" *)
  fsm : Fsm.Benchmarks.entry;
  synth : Synth.Flow.result;
  original : Netlist.Node.t;
  retimed : Netlist.Node.t;
  original_period : float;
  retimed_period : float;
  prefix_length : int;            (* P of the P ∪ T equivalence prefix *)
}

(* Deepening slack used for the paper flow (see DESIGN.md): our mapped
   netlists are delay-balanced, so the register wall needs a little timing
   slack to move; the paper's SIS circuits had it for free. *)
let default_period_slack = 0.12

let reset_prefix_input (r : Synth.Flow.result) =
  if r.Synth.Flow.reset_line then begin
    let npi =
      r.Synth.Flow.machine.Fsm.Machine.num_inputs + 1
    in
    let v = Array.make npi false in
    v.(npi - 1) <- true;
    Some v
  end
  else None

let build ?(period_slack = default_period_slack) fsm_name algorithm script =
  let entry = Fsm.Benchmarks.find fsm_name in
  let machine = Fsm.Benchmarks.machine entry in
  let synth =
    Obs.Trace.span ~args:[ ("fsm", Obs.Json.String fsm_name) ] "flow.synth"
      (fun () ->
        Synth.Flow.synthesize ~reset_line:entry.Fsm.Benchmarks.has_reset_line
          ~algorithm ~script machine)
  in
  let original = synth.Synth.Flow.circuit in
  let prefix_input = reset_prefix_input synth in
  let retimed, retimed_period, prefix_length =
    Obs.Trace.span
      ~args:[ ("circuit", Obs.Json.String synth.Synth.Flow.name) ]
      "flow.retime"
      (fun () ->
        Retime.Apply.retime_aggressive ?prefix_input ~period_slack original)
  in
  (* error-level lint gate on the retimed circuit (the original was gated
     by the synthesis flow) *)
  Obs.Trace.span "flow.lint_retimed" (fun () ->
      Lint.Report.assert_clean
        ~what:("retiming of " ^ synth.Synth.Flow.name)
        retimed);
  {
    name = synth.Synth.Flow.name;
    fsm = entry;
    synth;
    original;
    retimed;
    original_period = Netlist.Node.critical_path original;
    retimed_period;
    prefix_length;
  }

let cache : (string, pair) Hashtbl.t = Hashtbl.create 31

(* Guards [cache]; not held across [build] (parallel table cells that
   race to the same missing pair both build it — deterministic, so the
   duplicate replace is idempotent).  The table drivers prebuild their
   selections sequentially before fanning out, so in practice parallel
   callers only ever hit. *)
let mu = Mutex.create ()

let pair ?period_slack fsm_name algorithm script =
  let key =
    Printf.sprintf "%s.%s.%s" fsm_name
      (Synth.Assign.algorithm_tag algorithm)
      (Synth.Flow.script_tag script)
  in
  match Mutex.protect mu (fun () -> Hashtbl.find_opt cache key) with
  | Some p -> p
  | None ->
    let p = build ?period_slack fsm_name algorithm script in
    Mutex.protect mu (fun () -> Hashtbl.replace cache key p);
    p

(* The sixteen circuit pairs of Table 2, in the paper's row order. *)
let table2_selection =
  let ji = Synth.Assign.Input_dominant
  and jo = Synth.Assign.Output_dominant
  and jc = Synth.Assign.Combined in
  let sd = Synth.Flow.Delay and sr = Synth.Flow.Rugged in
  [
    ("dk16", ji, sd);
    ("pma", jo, sd);
    ("s510", jc, sd);
    ("s510", jc, sr);
    ("s510", ji, sd);
    ("s510", ji, sr);
    ("s510", jo, sr);
    ("s820", jc, sd);
    ("s820", jc, sr);
    ("s820", ji, sr);
    ("s820", jo, sd);
    ("s820", jo, sr);
    ("s832", jc, sr);
    ("s832", jo, sr);
    ("scf", ji, sd);
    ("scf", jo, sd);
  ]

let table2_pairs ?period_slack () =
  List.map (fun (f, a, s) -> pair ?period_slack f a s) table2_selection

(* The five worst pairs used for the Attest and SEST confirmations
   (Tables 3 and 4). *)
let confirmation_selection =
  let ji = Synth.Assign.Input_dominant
  and jo = Synth.Assign.Output_dominant
  and jc = Synth.Assign.Combined in
  let sd = Synth.Flow.Delay and sr = Synth.Flow.Rugged in
  [
    ("dk16", ji, sd);
    ("pma", jo, sd);
    ("s510", jc, sd);
    ("s510", ji, sr);
    ("s510", jo, sr);
  ]

let confirmation_pairs ?period_slack () =
  List.map (fun (f, a, s) -> pair ?period_slack f a s) confirmation_selection

(* Table 7 / Figure 3: partially retimed versions of s510.jo.sr with
   increasing register budgets (and hence decreasing density of encoding). *)
let sensitivity_versions () =
  let p = pair "s510" Synth.Assign.Output_dominant Synth.Flow.Rugged in
  let prefix_input = reset_prefix_input p.synth in
  let variant tag ~max_lag ~max_regs_factor ~period_slack =
    let c, period, _ =
      Retime.Apply.retime_aggressive ?prefix_input ~max_lag ~max_regs_factor
        ~period_slack p.original
    in
    (p.name ^ tag, c, period)
  in
  [
    (p.name, p.original, p.original_period);
    variant ".re.v1" ~max_lag:1 ~max_regs_factor:2 ~period_slack:0.04;
    variant ".re.v2" ~max_lag:2 ~max_regs_factor:3 ~period_slack:0.08;
    variant ".re.v3" ~max_lag:4 ~max_regs_factor:4 ~period_slack:0.10;
    (p.name ^ ".re", p.retimed, p.retimed_period);
  ]
