(** Figure 3: ATPG effort (work units) needed to reach each
    fault-efficiency level for the five density-sensitivity versions of
    s510.jo.sr.  The curves order by density of encoding. *)

type series = {
  circuit : string;
  density : float;
  density_source : string;      (** ["explicit"] or ["symbolic"] *)
  points : (int * float) list;  (** (work units, fault efficiency %) *)
}

val compute : unit -> series list

(** First work value reaching [fe] percent, or [None]. *)
val work_to_reach : series -> float -> int option

(** The efficiency levels the table prints. *)
val levels : float list

val pp : Format.formatter -> series list -> unit
