(** Memoization of the expensive analyses, keyed by {e content}: the
    canonical structural hash of the circuit ({!Netlist.Structhash})
    joined with a fingerprint of the configuration the computation reads
    ({!Store.Key}).  The [~name] argument is display-only metadata — it
    never enters a key, so structurally different circuits submitted
    under one name cannot alias.

    With [SATPG_STORE=dir] set ({!Store.Disk}), results also persist
    across processes: a warm rerun serves every lookup from disk. *)

type atpg_kind =
  | Hitec   (** PODEM + justification, no learning *)
  | Attest  (** simulation-based directed search *)
  | Sest    (** PODEM + dynamic state learning *)

val atpg_kind_name : atpg_kind -> string

(** {1 Cache observability}

    Every lookup increments [core.cache.hits]/[core.cache.misses] in
    {!Obs.Metrics.global}; the disk layer adds
    [core.cache.disk_hits]/[disk_misses]/[disk_writes]/[disk_errors]
    (the last counts corrupt or stale records that were recomputed
    over).  Paths that knowingly sidestep the cache record a bypass.
    {!last_outcome} reports the most recent outcome for one-line CLI
    reporting. *)

type outcome = Hit | Disk_hit | Miss | Bypassed

val outcome_string : outcome -> string

(** Record that a caller deliberately computed outside the cache. *)
val note_bypass : unit -> unit

val last_outcome : unit -> outcome

(** One-line counter summary, e.g. for end-of-run reporting:
    ["cache: 12 memory hits, 3 disk hits, ..."]. *)
val pp_summary : Format.formatter -> unit -> unit

(** Drop the per-process memory layer (disk records stay). *)
val reset_memory : unit -> unit

(** {1 Fault classification} *)

(** Which fault set {!classify} runs on. *)
type classify_universe =
  | Collapsed  (** the engines' collapsed list ({!Fsim.Collapse.list}) *)
  | Invariant
      (** the gate/PI-site Theorem-1 universe
          ({!Analysis.Untest.invariant_faults}) *)

val universe_name : classify_universe -> string

(** Run (or recall) the static untestability classifier
    ({!Analysis.Untest.classify}, default BDD budget).  [product]
    additionally runs the exact product-machine stage.  The cache key
    carries [symbolic], [product], the budget, the universe and the
    classifier version. *)
val classify :
  ?symbolic:bool ->
  ?product:bool ->
  ?universe:classify_universe ->
  name:string ->
  Netlist.Node.t ->
  Analysis.Untest.t

(** Run (or recall) an engine on a circuit; [name] labels the persisted
    record but plays no part in the cache key.  [prove_untestable]
    classifies first (through {!classify}, full cascade including the
    exact product stage) and prunes proved faults — the pruned run is
    cached under a distinct key that folds in the classification
    fingerprint.  [struct_learn] forces conflict-driven structural
    learning on or off (default: the [SATPG_LEARN] environment switch);
    the flag is part of the cache key, so the two modes never alias.

    [config] replaces the engine's environment-derived configuration
    ([Atpg.Hitec.config] / [Atpg.Sest.config] / [scaled_config]) with an
    explicit one — `satpg serve` builds it from per-request budgets.  The
    explicit config flows into {!Store.Key.config_fingerprint} exactly
    like the environment one, so a served run and a CLI run with equal
    budgets share one store record.  The [struct_learn] override and the
    attest learn-flag normalization still apply on top. *)
val atpg :
  ?prove_untestable:bool ->
  ?struct_learn:bool ->
  ?config:Atpg.Types.config ->
  atpg_kind ->
  name:string ->
  Netlist.Node.t ->
  Atpg.Types.result

val reach : name:string -> Netlist.Node.t -> Analysis.Reach.result

(** Symbolic reachability (summary only — BDDs are not persistable). *)
val symreach : name:string -> Netlist.Node.t -> Analysis.Symreach.summary

(** {1 Density of encoding}

    The single data path Tables 6–8 and Figure 3 use: explicit {!reach}
    whenever {!Analysis.Reach.feasible} holds, {!symreach} beyond the
    explicit caps.  Both compute density with the same float expression,
    so where both are applicable they agree bit-for-bit. *)

type density = {
  valid : float;            (** reachable-state count *)
  valid_int : int option;   (** as an exact integer when it fits *)
  total : float;            (** [2. ** #DFF] *)
  density : float;          (** valid / total *)
  source : [ `Explicit | `Symbolic ];
}

val density_source_name : [ `Explicit | `Symbolic ] -> string

val density : name:string -> Netlist.Node.t -> density

val structural :
  name:string -> Netlist.Node.t -> Analysis.Structural.result
