(** Per-process memoization of the expensive analyses, keyed by circuit
    name: several tables consume the same ATPG runs, reachability results
    and structural measurements. *)

type atpg_kind =
  | Hitec   (** PODEM + justification, no learning *)
  | Attest  (** simulation-based directed search *)
  | Sest    (** PODEM + dynamic state learning *)

val atpg_kind_name : atpg_kind -> string

(** {1 Cache observability}

    Every lookup increments [core.cache.hits]/[core.cache.misses] in
    {!Obs.Metrics.global}; paths that knowingly sidestep the cache record
    a bypass.  {!last_outcome} reports the most recent of the three, for
    one-line CLI reporting. *)

type outcome = Hit | Miss | Bypassed

val outcome_string : outcome -> string

(** Record that a caller deliberately computed outside the cache. *)
val note_bypass : unit -> unit

val last_outcome : unit -> outcome

(** Run (or recall) an engine on a named circuit. *)
val atpg : atpg_kind -> name:string -> Netlist.Node.t -> Atpg.Types.result

val reach : name:string -> Netlist.Node.t -> Analysis.Reach.result

val structural :
  name:string -> Netlist.Node.t -> Analysis.Structural.result
