(* Figure 3: ATPG effort (work units, the CPU-time stand-in) needed to reach
   each fault-efficiency level, for the five sensitivity versions of
   s510.jo.sr.  The curves order by density of encoding: the sparser the
   encoding, the more work any given efficiency level costs. *)

type series = {
  circuit : string;
  density : float;
  density_source : string;      (* "explicit" | "symbolic" *)
  points : (int * float) list;  (* (work units, fault efficiency %) *)
}

let compute () =
  List.map
    (fun (name, c, _period) ->
      let atpg = Cache.atpg Cache.Hitec ~name c in
      let d = Cache.density ~name c in
      {
        circuit = name;
        density = d.Cache.density;
        density_source = Cache.density_source_name d.Cache.source;
        points = atpg.Atpg.Types.trajectory;
      })
    (Flow.sensitivity_versions ())

(* Work needed to first reach a given efficiency, or None. *)
let work_to_reach s fe =
  let rec loop = function
    | [] -> None
    | (w, e) :: rest -> if e >= fe then Some w else loop rest
  in
  loop s.points

let levels = [ 30.0; 50.0; 70.0; 80.0; 90.0; 95.0; 98.0 ]

let pp ppf series =
  Fmt.pf ppf
    "Figure 3: work units to reach a fault-efficiency level (per circuit)@.";
  Fmt.pf ppf "%-18s %10s" "circuit" "density";
  List.iter (fun l -> Fmt.pf ppf " %9.0f%%" l) levels;
  Fmt.pf ppf "@.";
  List.iter
    (fun s ->
      Fmt.pf ppf "%-18s %10.2e" s.circuit s.density;
      List.iter
        (fun l ->
          match work_to_reach s l with
          | Some w -> Fmt.pf ppf " %10d" w
          | None -> Fmt.pf ppf " %10s" "-")
        levels;
      Fmt.pf ppf "@.")
    series
