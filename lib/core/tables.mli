(** Reproduction of every table in the paper's evaluation.  Each module's
    [compute] runs (memoized) synthesis / retiming / ATPG / analysis and
    returns typed rows; each [pp] prints the table in the paper's
    layout. *)

val ratio : int -> int -> float

module T1 : sig
  type row = {
    fsm : string;
    paper_pi : int;
    paper_po : int;
    built_pi : int;
    built_po : int;
    states : int;
  }

  val compute : unit -> row list
  val pp : Format.formatter -> row list -> unit
end

(** Shared row shape of the three ATPG tables (2, 3, 4). *)
module Atpg_pair : sig
  type row = {
    circuit : string;
    dff_orig : int;
    dff_re : int;
    fc_orig : float;
    fe_orig : float;
    fc_re : float;
    fe_re : float;
    pu_orig : int;  (** statically proved untestable (0 unless pruning ran) *)
    pu_re : int;
    work_orig : int;
    work_re : int;
    cpu_ratio : float;
  }

  val compute : ?prove_untestable:bool -> Cache.atpg_kind -> Flow.pair -> row
  val pp : string -> Format.formatter -> row list -> unit
end

module T2 : sig
  val compute : unit -> Atpg_pair.row list
  val pp : Format.formatter -> Atpg_pair.row list -> unit
end

module T3 : sig
  val compute : unit -> Atpg_pair.row list
  val pp : Format.formatter -> Atpg_pair.row list -> unit
end

module T4 : sig
  val selection : (string * Synth.Assign.algorithm * Synth.Flow.script) list
  val compute : unit -> Atpg_pair.row list
  val pp : Format.formatter -> Atpg_pair.row list -> unit
end

module T5 : sig
  type row = {
    circuit : string;
    depth_orig : int;
    max_cycle_orig : int;
    cycles_orig : int;
    depth_re : int;
    max_cycle_re : int;
    cycles_re : int;
  }

  val compute : unit -> row list
  val pp : Format.formatter -> row list -> unit
end

module T6 : sig
  type row = {
    circuit : string;
    states_trav : int;
    valid_states : float;
    pct_valid_trav : float;
    total_states : float;
    density : float;
    source : string;  (** density source: ["explicit"] or ["symbolic"] *)
  }

  val one : string -> Netlist.Node.t -> row
  val compute : unit -> row list
  val pp : Format.formatter -> row list -> unit
end

module T7 : sig
  type row = {
    circuit : string;
    delay : float;
    dff : int;
    valid_states : float;
    total_states : float;
    density : float;
    source : string;
  }

  val compute : unit -> row list
  val pp : Format.formatter -> row list -> unit
end

module T8 : sig
  type row = {
    circuit : string;
    fc : float;
    fe : float;
    states_trav : int;
    valid_states : float;
    valid_source : string;
    states_orig_set : int;
    fc_orig_set : float;
  }

  (** Names of the [count] lowest-coverage retimed circuits of Table 2. *)
  val worst_retimed : ?count:int -> unit -> string list

  val compute : ?count:int -> unit -> row list
  val pp : Format.formatter -> row list -> unit
end
