(* Memoization of the expensive analyses, keyed by *content*: the
   canonical structural hash of the circuit (Netlist.Structhash) joined
   with a fingerprint of the configuration the computation reads
   (Store.Key).  The circuit name is display-only metadata — it labels
   records for humans but never enters a key, so two structurally
   different circuits submitted under the same name get distinct results
   by construction (the aliasing bug the name-keyed memo had), and the
   same circuit under two names shares one computation.

   Two layers.  The per-process memory table serves repeat lookups within
   a run; with SATPG_STORE=dir set, Store.Disk adds a persistent layer
   underneath, so a warm rerun recomputes nothing.  Every lookup feeds
   the core.cache.* counters — memory hits, disk hits/misses/writes,
   corrupt-record errors — and the `satpg atpg`/`tables` commands report
   them; code paths that knowingly sidestep the cache (e.g. --scoap
   guided runs) record a bypass. *)

type atpg_kind = Hitec | Attest | Sest

let atpg_kind_name = function
  | Hitec -> "hitec"
  | Attest -> "attest"
  | Sest -> "sest"

let hits = Obs.Metrics.counter "core.cache.hits"
let misses = Obs.Metrics.counter "core.cache.misses"
let bypasses = Obs.Metrics.counter "core.cache.bypasses"
let disk_hits = Obs.Metrics.counter "core.cache.disk_hits"
let disk_misses = Obs.Metrics.counter "core.cache.disk_misses"
let disk_writes = Obs.Metrics.counter "core.cache.disk_writes"
let disk_errors = Obs.Metrics.counter "core.cache.disk_errors"

(* The cache outcome of the most recent [atpg]/[reach]/[structural] call
   (or explicit bypass note), for one-line CLI reporting.  Domain-local:
   parallel table cells each track their own outcome instead of racing on
   one cell (the CLI reads it from the main domain's sequential flow). *)
type outcome = Hit | Disk_hit | Miss | Bypassed

let last : outcome Domain.DLS.key = Domain.DLS.new_key (fun () -> Miss)
let set_last o = Domain.DLS.set last o

let note_bypass () =
  Obs.Metrics.incr bypasses;
  set_last Bypassed

let outcome_string = function
  | Hit -> "hit"
  | Disk_hit -> "disk-hit"
  | Miss -> "miss"
  | Bypassed -> "bypassed"

let last_outcome () = Domain.DLS.get last

(* Guards the memory tables.  Held only around find/replace, never across
   a [compute] — two domains missing the same key concurrently may both
   compute it, but the computations are deterministic functions of the
   key, so the duplicate replace is idempotent; serializing hours of ATPG
   under a table lock would be far worse. *)
let mu = Mutex.create ()

(* Memory first, then (when SATPG_STORE is set) the disk record, then a
   fresh computation whose result back-fills both layers.  A corrupt disk
   record is counted and recomputed over, never propagated. *)
let lookup tbl ~skind ~key ~name ~encode ~decode compute =
  match Mutex.protect mu (fun () -> Hashtbl.find_opt tbl key) with
  | Some r ->
    Obs.Metrics.incr hits;
    set_last Hit;
    r
  | None ->
    let from_disk =
      if not (Store.Disk.enabled ()) then None
      else
        match Store.Disk.load skind ~key with
        | Store.Disk.Found payload ->
          (match decode payload with
           | Some r ->
             Obs.Metrics.incr disk_hits;
             Some r
           | None ->
             Obs.Metrics.incr disk_errors;
             None)
        | Store.Disk.Absent ->
          Obs.Metrics.incr disk_misses;
          None
        | Store.Disk.Corrupt _ ->
          Obs.Metrics.incr disk_errors;
          None
    in
    (match from_disk with
     | Some r ->
       set_last Disk_hit;
       Mutex.protect mu (fun () -> Hashtbl.replace tbl key r);
       r
     | None ->
       Obs.Metrics.incr misses;
       set_last Miss;
       let r = compute () in
       Mutex.protect mu (fun () -> Hashtbl.replace tbl key r);
       if Store.Disk.save skind ~key ~name (encode r) then
         Obs.Metrics.incr disk_writes;
       r)

let atpg_results : (string, Atpg.Types.result) Hashtbl.t = Hashtbl.create 64
let classify_results : (string, Analysis.Untest.t) Hashtbl.t = Hashtbl.create 64
let reach_results : (string, Analysis.Reach.result) Hashtbl.t = Hashtbl.create 64
let symreach_results : (string, Analysis.Symreach.summary) Hashtbl.t =
  Hashtbl.create 64
let structural_results : (string, Analysis.Structural.result) Hashtbl.t =
  Hashtbl.create 64

(* Drop the per-process memory layer (disk records stay).  For tests and
   long-lived callers that re-synthesize under changed budgets. *)
let reset_memory () =
  Mutex.protect mu (fun () ->
      Hashtbl.reset atpg_results;
      Hashtbl.reset classify_results;
      Hashtbl.reset reach_results;
      Hashtbl.reset symreach_results;
      Hashtbl.reset structural_results)

type classify_universe = Collapsed | Invariant

let universe_name = function
  | Collapsed -> "collapsed"
  | Invariant -> "invariant"

(* Fault classification (Analysis.Untest), cached like every other
   analysis.  [universe] picks the fault set: [Collapsed] is the
   engines' list (what [atpg ~prove_untestable] prunes against),
   [Invariant] the gate/PI-site Theorem-1 comparison universe of
   [satpg classify --check]. *)
let classify ?(symbolic = true) ?(product = false) ?(universe = Collapsed)
    ~name c =
  let max_nodes = Analysis.Symreach.default_max_nodes in
  let key =
    Store.Key.classify ~symbolic ~max_nodes ~product
      ~universe:(universe_name universe)
      ~circuit_hash:(Netlist.Structhash.circuit c)
  in
  lookup classify_results ~skind:Store.Disk.Classify ~key ~name
    ~encode:Store.Codec.untest_to_json ~decode:Store.Codec.untest_of_json
    (fun () ->
      let faults =
        match universe with
        | Collapsed -> None
        | Invariant -> Some (Analysis.Untest.invariant_faults c)
      in
      Analysis.Untest.classify ~symbolic ~max_nodes ~product ?faults c)

let atpg ?(prove_untestable = false) ?struct_learn ?config kind ~name c =
  let config =
    (* an explicit config (serve's per-request budgets) replaces the
       environment-derived recipe; both shapes reach Store.Key through
       the same fingerprint, so equal budgets mean equal records *)
    match config with
    | Some cfg -> cfg
    | None ->
      (match kind with
       | Hitec -> Atpg.Hitec.config ()
       | Sest -> Atpg.Sest.config ()
       | Attest -> Atpg.Types.scaled_config ())
  in
  (* [struct_learn] overrides the SATPG_LEARN default baked in by
     [scaled_config]; the flag is part of the config fingerprint, so
     learn-on and learn-off runs never share a cache record *)
  let config =
    match struct_learn with
    | None -> config
    | Some b -> { config with Atpg.Types.struct_learn = b }
  in
  (* the simulation-based attest engine has no branch structure to learn
     from: normalize the flag off so a --learn attest run shares the
     cache line of the plain one instead of recomputing it verbatim *)
  let config =
    match kind with
    | Attest -> { config with Atpg.Types.struct_learn = false }
    | Hitec | Sest -> config
  in
  (* classify first (its own cache line) so the prune predicate and the
     classify fingerprint in the ATPG key agree by construction *)
  let prune, classify_fp =
    if not prove_untestable then (None, None)
    else
      (* the full cascade including the exact product stage: the engines
         are about to spend real budget, so buy every sound proof first *)
      let cls = classify ~product:true ~name c in
      ( Some (Analysis.Untest.prune cls),
        Some
          (Store.Key.classify_fingerprint ~symbolic:true
             ~max_nodes:Analysis.Symreach.default_max_nodes ~product:true
             ~universe:(universe_name Collapsed)) )
  in
  let key =
    Store.Key.atpg ~engine:(atpg_kind_name kind) ~config ?classify:classify_fp
      ~circuit_hash:(Netlist.Structhash.circuit c) ()
  in
  lookup atpg_results ~skind:Store.Disk.Atpg ~key ~name
    ~encode:Store.Codec.atpg_result_to_json
    ~decode:Store.Codec.atpg_result_of_json
    (fun () ->
      match kind with
      | Hitec -> Atpg.Run.generate ~config ~engine:"hitec" ?prune c
      | Sest -> Atpg.Run.generate ~config ~engine:"sest" ?prune c
      | Attest -> Atpg.Attest.generate ~config ?prune c)

let reach ~name c =
  let max_states = Analysis.Reach.default_max_states in
  let key =
    Store.Key.reach ~max_states ~circuit_hash:(Netlist.Structhash.circuit c)
  in
  lookup reach_results ~skind:Store.Disk.Reach ~key ~name
    ~encode:Store.Codec.reach_result_to_json
    ~decode:Store.Codec.reach_result_of_json
    (fun () -> Analysis.Reach.explore ~max_states ~name c)

let symreach ~name c =
  let max_nodes = Analysis.Symreach.default_max_nodes in
  let key =
    Store.Key.symreach ~max_nodes ~circuit_hash:(Netlist.Structhash.circuit c)
  in
  lookup symreach_results ~skind:Store.Disk.Symreach ~key ~name
    ~encode:Store.Codec.symreach_summary_to_json
    ~decode:Store.Codec.symreach_summary_of_json
    (fun () -> (Analysis.Symreach.explore ~max_nodes c).Analysis.Symreach.summary)

(* The density-of-encoding data path of Tables 6-8 and Figure 3: explicit
   BFS wherever it is feasible (seed benchmarks — keeps the table numbers
   grounded in enumeration), symbolic BDD reachability beyond the caps.
   Both paths share one float expression for density, so on any circuit
   where both run the results are bit-identical (tested, and enforced by
   `satpg reach --check`). *)
type density = {
  valid : float;
  valid_int : int option;
  total : float;
  density : float;
  source : [ `Explicit | `Symbolic ];
}

let density_source_name = function
  | `Explicit -> "explicit"
  | `Symbolic -> "symbolic"

let density ~name c =
  if Analysis.Reach.feasible c then begin
    let r = reach ~name c in
    let valid = float_of_int r.Analysis.Reach.valid_states in
    let total = Analysis.Reach.total_states r in
    {
      valid;
      valid_int = Some r.Analysis.Reach.valid_states;
      total;
      density = Analysis.Reach.density r;
      source = `Explicit;
    }
  end
  else begin
    let s = symreach ~name c in
    {
      valid = s.Analysis.Symreach.valid_states;
      valid_int = s.Analysis.Symreach.valid_states_int;
      total = Analysis.Symreach.total_states s;
      density = Analysis.Symreach.density s;
      source = `Symbolic;
    }
  end

let structural ~name c =
  let depth_budget = Analysis.Structural.default_depth_budget in
  let cycle_budget = Analysis.Structural.default_cycle_budget in
  let key =
    Store.Key.structural ~depth_budget ~cycle_budget
      ~circuit_hash:(Netlist.Structhash.circuit c)
  in
  lookup structural_results ~skind:Store.Disk.Structural ~key ~name
    ~encode:Store.Codec.structural_result_to_json
    ~decode:Store.Codec.structural_result_of_json
    (fun () -> Analysis.Structural.analyze ~depth_budget ~cycle_budget c)

(* One-line summary of the cache counters, for end-of-run reporting. *)
let pp_summary ppf () =
  Fmt.pf ppf
    "cache: %d memory hits, %d disk hits, %d misses, %d bypassed%s"
    (Obs.Metrics.count hits)
    (Obs.Metrics.count disk_hits)
    (Obs.Metrics.count misses)
    (Obs.Metrics.count bypasses)
    (match Store.Disk.dir () with
     | Some d ->
       Printf.sprintf " (store %s: %d writes, %d stale/corrupt)" d
         (Obs.Metrics.count disk_writes)
         (Obs.Metrics.count disk_errors)
     | None -> "")
