(* Per-process memoization of the expensive analyses, keyed by circuit name:
   several tables consume the same ATPG runs and reachability results.

   Every lookup feeds the core.cache.* counters so a run can tell whether
   its numbers came from a fresh computation or a memo (the `satpg atpg`
   command prints a `cache:` line from them); code paths that knowingly
   sidestep the cache (e.g. --scoap guided runs) record a bypass. *)

type atpg_kind = Hitec | Attest | Sest

let atpg_kind_name = function
  | Hitec -> "hitec"
  | Attest -> "attest"
  | Sest -> "sest"

let hits = Obs.Metrics.counter "core.cache.hits"
let misses = Obs.Metrics.counter "core.cache.misses"
let bypasses = Obs.Metrics.counter "core.cache.bypasses"

(* The cache outcome of the most recent [atpg]/[reach]/[structural] call
   (or explicit bypass note), for one-line CLI reporting. *)
type outcome = Hit | Miss | Bypassed

let last = ref Miss

let note_bypass () =
  Obs.Metrics.incr bypasses;
  last := Bypassed

let outcome_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Bypassed -> "bypassed"

let last_outcome () = !last

let lookup tbl key compute =
  match Hashtbl.find_opt tbl key with
  | Some r ->
    Obs.Metrics.incr hits;
    last := Hit;
    r
  | None ->
    Obs.Metrics.incr misses;
    last := Miss;
    let r = compute () in
    Hashtbl.replace tbl key r;
    r

let atpg_results : (string, Atpg.Types.result) Hashtbl.t = Hashtbl.create 64
let reach_results : (string, Analysis.Reach.result) Hashtbl.t = Hashtbl.create 64
let structural_results : (string, Analysis.Structural.result) Hashtbl.t =
  Hashtbl.create 64

let atpg kind ~name c =
  let key = atpg_kind_name kind ^ ":" ^ name in
  lookup atpg_results key (fun () ->
      match kind with
      | Hitec -> Atpg.Run.generate ~config:(Atpg.Hitec.config ()) ~engine:"hitec" c
      | Sest -> Atpg.Run.generate ~config:(Atpg.Sest.config ()) ~engine:"sest" c
      | Attest -> Atpg.Attest.generate c)

let reach ~name c =
  lookup reach_results name (fun () -> Analysis.Reach.explore c)

let structural ~name c =
  lookup structural_results name (fun () -> Analysis.Structural.analyze c)
