(* Bit-parallel two-valued simulator: each node holds a machine word whose
   bits are independent simulation lanes (up to [word_bits]).  Lanes share
   the input vector but may carry different injected stuck-at faults and
   therefore different DFF state — this is the PROOFS-style parallel-fault
   engine's core.  Lane 63/62... beyond [width] are unused.

   The combinational sweep runs on the flat levelized instruction tape
   ([Tape]); the original node-record walk survives as the [`Nodes]
   backend, kept as the bit-identity reference for the differential tests
   and the pre-tape baseline of `bench fsim`. *)

let word_bits = 62

let mask_of_width w =
  if w >= word_bits then (1 lsl word_bits) - 1 else (1 lsl w) - 1

type backend = [ `Tape | `Nodes ]

type t = {
  circuit : Netlist.Node.t;
  tape : Tape.t;
  backend : backend;
  values : int array;                    (* word per node *)
  next_state : int array;                (* captured DFF data, dff order *)
  stem_f0 : int array;                   (* per node: lanes forced to 0 *)
  stem_f1 : int array;                   (* per node: lanes forced to 1 *)
  pin_over : (int * int, int * int) Hashtbl.t; (* (gate,pin) -> (f0,f1) *)
  mutable has_pin_over : bool;
  over_slot : bool array;                (* per tape slot: pin fault here *)
}

let create_on ?(backend = `Tape) tape =
  let circuit = tape.Tape.circuit in
  let n = Netlist.Node.num_nodes circuit in
  {
    circuit;
    tape;
    backend;
    values = Array.make n 0;
    next_state = Array.make (Netlist.Node.num_dffs circuit) 0;
    stem_f0 = Array.make n 0;
    stem_f1 = Array.make n 0;
    pin_over = Hashtbl.create 31;
    has_pin_over = false;
    over_slot = Array.make (max 1 tape.Tape.num_gates) false;
  }

let create ?backend circuit = create_on ?backend (Tape.compile circuit)
let circuit t = t.circuit
let tape t = t.tape

let clear_faults t =
  Array.fill t.stem_f0 0 (Array.length t.stem_f0) 0;
  Array.fill t.stem_f1 0 (Array.length t.stem_f1) 0;
  Hashtbl.reset t.pin_over;
  t.has_pin_over <- false;
  Array.fill t.over_slot 0 (Array.length t.over_slot) false

let check_lane name lane =
  if lane < 0 || lane >= word_bits then
    invalid_arg
      (Printf.sprintf
         "Sim.Parallel.%s: lane %d outside 0..%d — lanes beyond word_bits \
          would overflow the 63-bit word and silently alias other lanes"
         name lane (word_bits - 1))

let inject_stem t ~node ~lane ~value =
  check_lane "inject_stem" lane;
  if value then t.stem_f1.(node) <- t.stem_f1.(node) lor (1 lsl lane)
  else t.stem_f0.(node) <- t.stem_f0.(node) lor (1 lsl lane)

let inject_pin t ~gate ~pin ~lane ~value =
  check_lane "inject_pin" lane;
  let f0, f1 =
    try Hashtbl.find t.pin_over (gate, pin) with Not_found -> (0, 0)
  in
  let f0, f1 =
    if value then (f0, f1 lor (1 lsl lane)) else (f0 lor (1 lsl lane), f1)
  in
  Hashtbl.replace t.pin_over (gate, pin) (f0, f1);
  t.has_pin_over <- true;
  (* DFF data pins have no slot; their overrides apply at state capture. *)
  let s = t.tape.Tape.slot_of_node.(gate) in
  if s >= 0 then t.over_slot.(s) <- true

let apply_stem t id w = (w land lnot t.stem_f0.(id)) lor t.stem_f1.(id)

let read_pin t gate pin source =
  let w = t.values.(source) in
  if t.has_pin_over then
    match Hashtbl.find_opt t.pin_over (gate, pin) with
    | None -> w
    | Some (f0, f1) -> (w land lnot f0) lor f1
  else w

let reset t =
  let c = t.circuit in
  Array.iter
    (fun id ->
      let v = if Netlist.Node.dff_init c id then -1 else 0 in
      t.values.(id) <- apply_stem t id v)
    c.Netlist.Node.dffs

let set_state_words t words =
  Array.iteri
    (fun i id -> t.values.(id) <- apply_stem t id words.(i))
    t.circuit.Netlist.Node.dffs

let get_state_words t =
  Array.map (fun id -> t.values.(id)) t.circuit.Netlist.Node.dffs

(* Broadcast one boolean input vector to all lanes. *)
let set_input_broadcast t bits =
  Array.iteri
    (fun i id ->
      let v = if bits.(i) then -1 else 0 in
      t.values.(id) <- apply_stem t id v)
    t.circuit.Netlist.Node.pis

(* Per-lane input words (bit l of [words.(i)] = value of PI i in lane l). *)
let set_input_words t words =
  Array.iteri
    (fun i id -> t.values.(id) <- apply_stem t id words.(i))
    t.circuit.Netlist.Node.pis

let eval_gate_word t gate_id fn fanins =
  let arity = Array.length fanins in
  match fn, arity with
  | Netlist.Node.Not, _ -> lnot (read_pin t gate_id 0 fanins.(0))
  | Netlist.Node.Buf, _ -> read_pin t gate_id 0 fanins.(0)
  | Netlist.Node.Xor, _ ->
    read_pin t gate_id 0 fanins.(0) lxor read_pin t gate_id 1 fanins.(1)
  | Netlist.Node.Xnor, _ ->
    lnot (read_pin t gate_id 0 fanins.(0) lxor read_pin t gate_id 1 fanins.(1))
  | Netlist.Node.And, _ ->
    let acc = ref (-1) in
    for p = 0 to arity - 1 do acc := !acc land read_pin t gate_id p fanins.(p) done;
    !acc
  | Netlist.Node.Nand, _ ->
    let acc = ref (-1) in
    for p = 0 to arity - 1 do acc := !acc land read_pin t gate_id p fanins.(p) done;
    lnot !acc
  | Netlist.Node.Or, _ ->
    let acc = ref 0 in
    for p = 0 to arity - 1 do acc := !acc lor read_pin t gate_id p fanins.(p) done;
    !acc
  | Netlist.Node.Nor, _ ->
    let acc = ref 0 in
    for p = 0 to arity - 1 do acc := !acc lor read_pin t gate_id p fanins.(p) done;
    lnot !acc

(* Pre-tape sweep over the node records — the [`Nodes] reference. *)
let eval_gates_nodes t =
  let c = t.circuit in
  Array.iter
    (fun id ->
      let nd = Netlist.Node.node c id in
      match nd.Netlist.Node.kind with
      | Netlist.Node.Gate fn ->
        t.values.(id) <-
          apply_stem t id (eval_gate_word t id fn nd.Netlist.Node.fanins)
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ())
    c.Netlist.Node.order

(* Tape sweep in the presence of pin overrides: identical to
   [Tape.eval_words] except that the few slots carrying an injected pin
   fault ([over_slot]) re-read each fanin through the override table.
   Pin faults touch at most one gate per injected fault, so the fast
   no-Hashtbl path still covers virtually every slot. *)
let eval_gates_tape_over t =
  let tp = t.tape in
  let values = t.values in
  let op = tp.Tape.op
  and gid = tp.Tape.node_of_slot
  and base = tp.Tape.fanin_base
  and fan = tp.Tape.fanin in
  for s = 0 to tp.Tape.num_gates - 1 do
    let b = base.(s) in
    let e = base.(s + 1) in
    let id = gid.(s) in
    let w =
      if t.over_slot.(s) then begin
        let pin p = read_pin t id (p - b) fan.(p) in
        match op.(s) with
        | 0 -> pin b
        | 1 -> lnot (pin b)
        | 2 | 3 ->
          let acc = ref (pin b) in
          for p = b + 1 to e - 1 do acc := !acc land pin p done;
          if op.(s) = 2 then !acc else lnot !acc
        | 4 | 5 ->
          let acc = ref (pin b) in
          for p = b + 1 to e - 1 do acc := !acc lor pin p done;
          if op.(s) = 4 then !acc else lnot !acc
        | 6 -> pin b lxor pin (b + 1)
        | _ -> lnot (pin b lxor pin (b + 1))
      end
      else
        match op.(s) with
        | 0 -> values.(fan.(b))
        | 1 -> lnot values.(fan.(b))
        | 2 | 3 ->
          let acc = ref values.(fan.(b)) in
          for p = b + 1 to e - 1 do acc := !acc land values.(fan.(p)) done;
          if op.(s) = 2 then !acc else lnot !acc
        | 4 | 5 ->
          let acc = ref values.(fan.(b)) in
          for p = b + 1 to e - 1 do acc := !acc lor values.(fan.(p)) done;
          if op.(s) = 4 then !acc else lnot !acc
        | 6 -> values.(fan.(b)) lxor values.(fan.(b + 1))
        | _ -> lnot (values.(fan.(b)) lxor values.(fan.(b + 1)))
    in
    values.(id) <- (w land lnot t.stem_f0.(id)) lor t.stem_f1.(id)
  done

(* DFF data capture; pin 0 of the DFF node is its data pin for injection. *)
let capture_next_state t =
  let tp = t.tape in
  let dffs = tp.Tape.dffs and data = tp.Tape.dff_data in
  if t.has_pin_over then
    for i = 0 to Array.length dffs - 1 do
      t.next_state.(i) <- read_pin t dffs.(i) 0 data.(i)
    done
  else
    for i = 0 to Array.length dffs - 1 do
      t.next_state.(i) <- t.values.(data.(i))
    done

let eval_comb t =
  (match t.backend with
  | `Nodes -> eval_gates_nodes t
  | `Tape ->
    if t.has_pin_over then eval_gates_tape_over t
    else
      Tape.eval_words t.tape ~values:t.values ~f0:t.stem_f0 ~f1:t.stem_f1);
  capture_next_state t

let tick t =
  Array.iteri
    (fun i id -> t.values.(id) <- apply_stem t id t.next_state.(i))
    t.circuit.Netlist.Node.dffs

let output_words t =
  Array.map (fun (_, id) -> t.values.(id)) t.circuit.Netlist.Node.pos

let node_word t id = t.values.(id)

(* One full cycle with broadcast inputs; returns PO words before the tick. *)
let step_broadcast t bits =
  set_input_broadcast t bits;
  eval_comb t;
  let out = output_words t in
  tick t;
  out
