(* Packed bit-vector keys that stay exact beyond 62 bits.  8 bits per
   byte, little-endian within the byte: bit i lives in byte (i lsr 3) at
   position (i land 7).  Trailing unused bits of the last byte are zero,
   so equal vectors always produce equal strings. *)

type t = string

let pack n get =
  let len = (n + 7) lsr 3 in
  let b = Bytes.make len '\000' in
  for i = 0 to n - 1 do
    if get i then
      Bytes.unsafe_set b (i lsr 3)
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))
  done;
  Bytes.unsafe_to_string b

let of_bools bits = pack (Array.length bits) (Array.unsafe_get bits)

let of_lane_words words ~lane =
  pack (Array.length words) (fun i -> (words.(i) lsr lane) land 1 = 1)

let capacity k = 8 * String.length k

let bit k i =
  if i lsr 3 >= String.length k then false
  else Char.code (String.unsafe_get k (i lsr 3)) land (1 lsl (i land 7)) <> 0

let to_bits ~n k =
  "0b" ^ String.init n (fun j -> if bit k (n - 1 - j) then '1' else '0')

let to_hex k =
  String.concat ""
    (List.init (String.length k) (fun i ->
         Printf.sprintf "%02x" (Char.code k.[i])))

let of_hex s =
  let n = String.length s in
  if n land 1 <> 0 then invalid_arg "Statekey.of_hex: odd length";
  String.init (n / 2) (fun i ->
      let digit c =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | _ -> invalid_arg "Statekey.of_hex: non-hex digit"
      in
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))
