(* One-time compiler from the pointer-rich netlist to a flat levelized
   instruction tape, plus the word-parallel evaluator that every hot
   simulation loop runs on.  See tape.mli for the layout and the
   levelization invariant. *)

type t = {
  circuit : Netlist.Node.t;
  num_nodes : int;
  num_gates : int;
  op : int array;
  node_of_slot : int array;
  slot_of_node : int array;
  fanin_base : int array;
  fanin : int array;
  level_off : int array;
  topo_slot : int array;
  pis : int array;
  pos : int array;
  dffs : int array;
  dff_data : int array;
  dff_init : bool array;
}

let op_buf = 0
let op_not = 1
let op_and = 2
let op_nand = 3
let op_or = 4
let op_nor = 5
let op_xor = 6
let op_xnor = 7

let op_of_fn = function
  | Netlist.Node.Buf -> op_buf
  | Netlist.Node.Not -> op_not
  | Netlist.Node.And -> op_and
  | Netlist.Node.Nand -> op_nand
  | Netlist.Node.Or -> op_or
  | Netlist.Node.Nor -> op_nor
  | Netlist.Node.Xor -> op_xor
  | Netlist.Node.Xnor -> op_xnor

let fn_of_op o =
  if o = op_buf then Netlist.Node.Buf
  else if o = op_not then Netlist.Node.Not
  else if o = op_and then Netlist.Node.And
  else if o = op_nand then Netlist.Node.Nand
  else if o = op_or then Netlist.Node.Or
  else if o = op_nor then Netlist.Node.Nor
  else if o = op_xor then Netlist.Node.Xor
  else if o = op_xnor then Netlist.Node.Xnor
  else invalid_arg (Printf.sprintf "Tape.fn_of_op: %d" o)

let num_levels tp = Array.length tp.level_off - 2

let compile (c : Netlist.Node.t) =
  let n = Netlist.Node.num_nodes c in
  let order = c.Netlist.Node.order in
  let num_gates = Array.length order in
  (* Level-major slot assignment by stable counting sort of the topo
     order on [level]: linear, and within a level the original order is
     preserved (so [order]-faithful walks stay cheap via [topo_slot]). *)
  let max_level =
    Array.fold_left (fun m id -> max m c.Netlist.Node.level.(id)) 0 order
  in
  let per_level = Array.make (max_level + 1) 0 in
  Array.iter
    (fun id ->
      let l = c.Netlist.Node.level.(id) in
      per_level.(l) <- per_level.(l) + 1)
    order;
  let level_off = Array.make (max_level + 2) 0 in
  for l = 0 to max_level do
    level_off.(l + 1) <- level_off.(l) + per_level.(l)
  done;
  let next = Array.copy level_off in
  let node_of_slot = Array.make num_gates (-1) in
  let topo_slot = Array.make num_gates (-1) in
  let slot_of_node = Array.make n (-1) in
  Array.iteri
    (fun topo_idx id ->
      let l = c.Netlist.Node.level.(id) in
      let s = next.(l) in
      next.(l) <- s + 1;
      node_of_slot.(s) <- id;
      slot_of_node.(id) <- s;
      topo_slot.(topo_idx) <- s)
    order;
  let op = Array.make num_gates 0 in
  let total_fanin = ref 0 in
  Array.iter
    (fun id ->
      total_fanin :=
        !total_fanin + Array.length (Netlist.Node.node c id).Netlist.Node.fanins)
    order;
  let fanin_base = Array.make (num_gates + 1) 0 in
  let fanin = Array.make (max 1 !total_fanin) 0 in
  let fp = ref 0 in
  for s = 0 to num_gates - 1 do
    let id = node_of_slot.(s) in
    let nd = Netlist.Node.node c id in
    (match nd.Netlist.Node.kind with
    | Netlist.Node.Gate fn ->
      let arity = Array.length nd.Netlist.Node.fanins in
      if not (Netlist.Node.arity_ok fn arity) then
        invalid_arg
          (Printf.sprintf "Tape.compile: gate %s has illegal arity %d"
             nd.Netlist.Node.name arity);
      op.(s) <- op_of_fn fn
    | Netlist.Node.Pi _ | Netlist.Node.Dff _ ->
      invalid_arg "Tape.compile: non-gate node in topological order");
    fanin_base.(s) <- !fp;
    Array.iter
      (fun src ->
        if src < 0 || src >= n then
          invalid_arg "Tape.compile: fanin id out of range";
        fanin.(!fp) <- src;
        incr fp)
      nd.Netlist.Node.fanins
  done;
  fanin_base.(num_gates) <- !fp;
  (* Verify the levelization invariant once here so [eval_words] can run
     unchecked: every fanin is a source or a strictly earlier slot. *)
  for s = 0 to num_gates - 1 do
    for p = fanin_base.(s) to fanin_base.(s + 1) - 1 do
      let src = fanin.(p) in
      let src_slot = slot_of_node.(src) in
      if src_slot >= s then
        invalid_arg "Tape.compile: levelization invariant violated"
    done
  done;
  let dffs = c.Netlist.Node.dffs in
  {
    circuit = c;
    num_nodes = n;
    num_gates;
    op;
    node_of_slot;
    slot_of_node;
    fanin_base;
    fanin;
    level_off;
    topo_slot;
    pis = Array.copy c.Netlist.Node.pis;
    pos = Array.map snd c.Netlist.Node.pos;
    dffs = Array.copy dffs;
    dff_data =
      Array.map
        (fun id -> (Netlist.Node.node c id).Netlist.Node.fanins.(0))
        dffs;
    dff_init = Array.map (fun id -> Netlist.Node.dff_init c id) dffs;
  }

(* The hot loop.  Unsafe accesses are justified by the checks in
   [compile] (every slot/fanin index is validated there, once) plus the
   length check on entry; the dispatch is an int match over contiguous
   opcodes, which compiles to a jump table. *)
let eval_words tp ~values ~f0 ~f1 =
  if
    Array.length values < tp.num_nodes
    || Array.length f0 < tp.num_nodes
    || Array.length f1 < tp.num_nodes
  then invalid_arg "Tape.eval_words: array shorter than num_nodes";
  let op = tp.op
  and gid = tp.node_of_slot
  and base = tp.fanin_base
  and fan = tp.fanin in
  for s = 0 to tp.num_gates - 1 do
    let b = Array.unsafe_get base s in
    let w =
      match Array.unsafe_get op s with
      | 0 -> Array.unsafe_get values (Array.unsafe_get fan b)
      | 1 -> lnot (Array.unsafe_get values (Array.unsafe_get fan b))
      | 2 ->
        let e = Array.unsafe_get base (s + 1) in
        let acc = ref (Array.unsafe_get values (Array.unsafe_get fan b)) in
        for p = b + 1 to e - 1 do
          acc := !acc land Array.unsafe_get values (Array.unsafe_get fan p)
        done;
        !acc
      | 3 ->
        let e = Array.unsafe_get base (s + 1) in
        let acc = ref (Array.unsafe_get values (Array.unsafe_get fan b)) in
        for p = b + 1 to e - 1 do
          acc := !acc land Array.unsafe_get values (Array.unsafe_get fan p)
        done;
        lnot !acc
      | 4 ->
        let e = Array.unsafe_get base (s + 1) in
        let acc = ref (Array.unsafe_get values (Array.unsafe_get fan b)) in
        for p = b + 1 to e - 1 do
          acc := !acc lor Array.unsafe_get values (Array.unsafe_get fan p)
        done;
        !acc
      | 5 ->
        let e = Array.unsafe_get base (s + 1) in
        let acc = ref (Array.unsafe_get values (Array.unsafe_get fan b)) in
        for p = b + 1 to e - 1 do
          acc := !acc lor Array.unsafe_get values (Array.unsafe_get fan p)
        done;
        lnot !acc
      | 6 ->
        Array.unsafe_get values (Array.unsafe_get fan b)
        lxor Array.unsafe_get values (Array.unsafe_get fan (b + 1))
      | _ ->
        lnot
          (Array.unsafe_get values (Array.unsafe_get fan b)
          lxor Array.unsafe_get values (Array.unsafe_get fan (b + 1)))
    in
    let id = Array.unsafe_get gid s in
    Array.unsafe_set values id
      ((w land lnot (Array.unsafe_get f0 id)) lor Array.unsafe_get f1 id)
  done
