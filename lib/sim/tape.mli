(** Flat levelized instruction tape compiled once from a netlist.

    The tape is the engine-grade representation of a circuit's
    combinational logic: one instruction per gate, in level-major order
    (all level-1 gates, then level-2, ...), held in dense int arrays —
    no node records, no variant dispatch, no fanin-array allocation on
    the evaluation path.  Every simulator sweep becomes a single linear
    walk over [op]/[fanin], which is what makes word-parallel fault
    simulation throughput-bound rather than pointer-chasing-bound.

    {b Levelization invariant}: for every slot [s], each fanin of
    [node_of_slot.(s)] is a PI, a DFF output, or a gate placed at a slot
    [< s] (its level is strictly smaller).  Within a level, slots keep
    the circuit's topological-order ([Netlist.Node.order]) sequence, and
    [topo_slot] lists the slots in exactly that original order for walks
    whose {e output ordering} (not values) must match a node-order
    traversal — e.g. D-frontier collection in the ATPG frames.

    The arrays are exposed read-only ([private]): treat them as
    immutable; the compiler is the only constructor. *)

type t = private {
  circuit : Netlist.Node.t;  (** the source netlist *)
  num_nodes : int;
  num_gates : int;           (** = number of slots *)
  op : int array;            (** slot -> opcode ({!op_buf} ... {!op_xnor}) *)
  node_of_slot : int array;  (** slot -> netlist node id *)
  slot_of_node : int array;  (** node id -> slot, [-1] for PI/DFF nodes *)
  fanin_base : int array;    (** slot -> first index into [fanin];
                                 length [num_gates + 1], so slot [s]'s
                                 fanins are [fanin.(fanin_base.(s)) ..
                                 fanin.(fanin_base.(s+1) - 1)] *)
  fanin : int array;         (** flattened fanin node ids *)
  level_off : int array;     (** level [l]'s slots are
                                 [level_off.(l) .. level_off.(l+1) - 1];
                                 length [num_levels + 1].  Level 0 (the
                                 PI/DFF sources) holds no slots. *)
  topo_slot : int array;     (** slots in [Netlist.Node.order] sequence *)
  pis : int array;           (** PI index -> node id *)
  pos : int array;           (** PO index -> driving node id *)
  dffs : int array;          (** DFF index -> node id *)
  dff_data : int array;      (** DFF index -> data-source node id *)
  dff_init : bool array;     (** DFF index -> power-up value *)
}

(** Opcodes, contiguous so the evaluator's dispatch is a jump table. *)

val op_buf : int
val op_not : int
val op_and : int
val op_nand : int
val op_or : int
val op_nor : int
val op_xor : int
val op_xnor : int

val op_of_fn : Netlist.Node.gate_fn -> int
val fn_of_op : int -> Netlist.Node.gate_fn

(** Compile the tape.  O(nodes + edges); the result is immutable and can
    back any number of simulator instances over the same circuit. *)
val compile : Netlist.Node.t -> t

(** Number of combinational levels (max gate level; 0 for gateless
    circuits). *)
val num_levels : t -> int

(** [eval_words tp ~values ~f0 ~f1] sweeps the tape once over the
    word-per-node state [values] (each bit an independent simulation
    lane): for every slot, in levelized order, the gate's word is
    computed from its fanins' words and stored as
    [(w land lnot f0.(id)) lor f1.(id)] — [f0]/[f1] are the per-node
    stuck-at-0/1 lane masks ({!Parallel}'s stem faults; all-zero arrays
    for fault-free evaluation).  The three arrays must have length
    [>= num_nodes].  PI and DFF words are inputs and are not touched. *)
val eval_words :
  t -> values:int array -> f0:int array -> f1:int array -> unit
