(** Overflow-safe packed state keys.

    A state key identifies a DFF state vector (or any bit vector) as a
    plain [string], 8 bits per byte, little-endian within each byte, so
    it stays exact for any number of state bits — unlike the historical
    [int] codes, whose [1 lsl i] packing silently aliased distinct
    states once a circuit had more than 62 DFFs (OCaml ints are 63-bit;
    shifts beyond that are unspecified).  Keys from vectors of the same
    length compare with the structural [compare]/[(=)] and hash with
    [Hashtbl.hash], so they drop into the int codes' old roles (hash
    keys, visit sets, directories) unchanged. *)

type t = string

(** Pack a bit vector; bit [i] of the vector is bit [i land 7] of byte
    [i lsr 3]. *)
val of_bools : bool array -> t

(** Pack bit [lane] of each word: [of_lane_words words ~lane] is
    [of_bools] of the boolean vector [(words.(i) lsr lane) land 1].
    Used on {!Parallel.get_state_words} to key the lane-0 (or any
    lane's) DFF state. *)
val of_lane_words : int array -> lane:int -> t

(** Bit [i] of the key; [false] beyond the packed length. *)
val bit : t -> int -> bool

(** Number of bits the key can hold (8 × byte length). *)
val capacity : t -> int

(** Debug rendering, e.g. ["0b0101"] (bit 0 rightmost, [n] bits). *)
val to_bits : n:int -> t -> string

(** Printable round-trip codec (lowercase hex, two digits per byte) for
    embedding keys in JSON records. *)
val to_hex : t -> string

(** @raise Invalid_argument on a string [to_hex] cannot have produced. *)
val of_hex : string -> t
