(** Bit-parallel two-valued simulator: every node holds a machine word
    whose bits are independent simulation lanes.  Lanes share the input
    vector but may carry different injected stuck-at faults — and hence
    different DFF state — which makes this the PROOFS-style parallel-fault
    engine's core.  Also used (with per-lane inputs) to enumerate input
    spaces during reachability analysis. *)

type t

(** Usable lanes per word. *)
val word_bits : int

(** Bit mask covering [w] lanes. *)
val mask_of_width : int -> int

(** Combinational-sweep implementation.  [`Tape] (the default) runs on
    the flat levelized instruction tape ({!Tape}); [`Nodes] is the
    original node-record walk, kept bit-identical as the reference for
    differential tests and as the pre-tape baseline of [bench fsim]. *)
type backend = [ `Tape | `Nodes ]

val create : ?backend:backend -> Netlist.Node.t -> t

(** Build a simulator over an already-compiled tape — lets callers that
    create many simulator instances for one circuit (e.g. the fault
    simulator's per-batch sims) compile the tape once and share it. *)
val create_on : ?backend:backend -> Tape.t -> t

val circuit : t -> Netlist.Node.t
val tape : t -> Tape.t

(** Remove all injected faults. *)
val clear_faults : t -> unit

(** Force the output of [node] to [value] in [lane], every cycle.
    @raise Invalid_argument if [lane] is outside [0 .. word_bits - 1]
    (a wider shift would silently alias another lane). *)
val inject_stem : t -> node:int -> lane:int -> value:bool -> unit

(** Force input [pin] of [gate] to [value] in [lane].
    @raise Invalid_argument if [lane] is outside [0 .. word_bits - 1]. *)
val inject_pin : t -> gate:int -> pin:int -> lane:int -> value:bool -> unit

(** Load the power-up state into every lane. *)
val reset : t -> unit

(** Load per-lane DFF state words (one word per DFF, state order). *)
val set_state_words : t -> int array -> unit

val get_state_words : t -> int array

(** Broadcast one input vector to all lanes. *)
val set_input_broadcast : t -> bool array -> unit

(** Per-lane inputs: bit [l] of [words.(i)] is PI [i] in lane [l]. *)
val set_input_words : t -> int array -> unit

(** Evaluate combinational logic and capture DFF data. *)
val eval_comb : t -> unit

(** Clock edge. *)
val tick : t -> unit

val output_words : t -> int array
val node_word : t -> int -> int

(** One full cycle with broadcast inputs; PO words before the tick. *)
val step_broadcast : t -> bool array -> int array
