(* Lint driver: stages the rules, assembles the summary, renders text and
   JSON, and provides the error-level gate the synthesis/retiming flows
   assert after every transformation. *)

type netlist_summary = {
  diags : Diag.t list;
  total_faults : int;
  untestable : int;
  invariant_untestable : int;
  seq_redundant : int option;
  scoap : Scoap.t option;
}

(* Staged: the value analyses trust [order], so they only run when the
   error-level rules (cycles, structure) pass.  [oracle] is the
   optional symbolic-reachability oracle enabling NET008. *)
let lint_netlist ?(ffr_top = 3) ?oracle c =
  let errors = Netlist_rules.combinational_cycles c @ Netlist_rules.structure c in
  if Diag.has_errors errors then
    {
      diags = Diag.sort errors;
      total_faults = 0;
      untestable = 0;
      invariant_untestable = 0;
      seq_redundant = None;
      scoap = None;
    }
  else begin
    let values = Constants.values c in
    let structural_obs = Netlist_rules.structurally_observable c in
    let obs = Netlist_rules.fault_observable c values in
    let scoap = Scoap.compute c in
    let total_faults, proved = Netlist_rules.untestable_faults c values obs in
    let seq =
      Option.map
        (fun (o : Netlist_rules.oracle) ->
          Netlist_rules.seq_redundant_faults c ~can_take:o.Netlist_rules.can_take
            proved)
        oracle
    in
    let diags =
      errors
      @ Netlist_rules.dead_logic c
      @ Netlist_rules.unobservable c ~structural_obs
      @ Netlist_rules.constants c values
      @ Netlist_rules.untestable_diags c proved
      @ (match seq, oracle with
        | Some r, Some o -> Netlist_rules.seq_redundant_diags c ~oracle:o r
        | _ -> [])
      @ Netlist_rules.hard_ffrs ~top:ffr_top c scoap
    in
    {
      diags = Diag.sort diags;
      total_faults;
      untestable = List.length proved;
      invariant_untestable =
        Netlist_rules.invariant_untestable_count c values obs;
      seq_redundant = Option.map (fun (cand, _) -> List.length cand) seq;
      scoap = Some scoap;
    }
  end

let lint_fsm m = Diag.sort (Fsm_rules.lint m)

(* The post-transform gate: error-level rules only (cheap), raising with
   every firing rule so the failure names the defect precisely. *)
let assert_clean ~what c =
  let errors =
    List.filter
      (fun d -> d.Diag.severity = Diag.Error)
      (Netlist_rules.combinational_cycles c @ Netlist_rules.structure c)
  in
  match errors with
  | [] -> ()
  | ds ->
    let msgs = List.map (fun d -> Fmt.str "%a" Diag.pp d) ds in
    failwith
      (Printf.sprintf "lint gate failed after %s: %s" what
         (String.concat "; " msgs))

(* --- text ------------------------------------------------------------------- *)

let pp_counts ppf diags =
  Fmt.pf ppf "%d error(s), %d warning(s), %d info"
    (Diag.count_severity Diag.Error diags)
    (Diag.count_severity Diag.Warning diags)
    (Diag.count_severity Diag.Info diags)

let pp_netlist ppf (name, s) =
  Fmt.pf ppf "lint %s: %a@." name pp_counts s.diags;
  List.iter (fun d -> Fmt.pf ppf "  %a@." Diag.pp d) s.diags;
  Fmt.pf ppf
    "  faults: %d collapsed, %d statically untestable%s; invariant \
     (gate/PI-site) untestable count %d@."
    s.total_faults s.untestable
    (match s.seq_redundant with
    | Some n -> Printf.sprintf ", %d proved sequentially redundant" n
    | None -> "")
    s.invariant_untestable

let pp_fsm ppf (name, diags) =
  Fmt.pf ppf "lint fsm %s: %a@." name pp_counts diags;
  List.iter (fun d -> Fmt.pf ppf "  %a@." Diag.pp d) diags

(* --- JSON ------------------------------------------------------------------- *)

let summary_json diags rest =
  Json.Obj
    ([
       ("errors", Json.Int (Diag.count_severity Diag.Error diags));
       ("warnings", Json.Int (Diag.count_severity Diag.Warning diags));
       ("infos", Json.Int (Diag.count_severity Diag.Info diags));
     ]
    @ rest)

let scoap_json c (s : Scoap.t) =
  Json.List
    (Array.to_list
       (Array.map
          (fun (nd : Netlist.Node.node) ->
            let id = nd.Netlist.Node.id in
            Json.Obj
              [
                ("node", Json.String nd.Netlist.Node.name);
                ("cc0", Json.Int s.Scoap.cc0.(id));
                ("cc1", Json.Int s.Scoap.cc1.(id));
                ("sc0", Json.Int s.Scoap.sc0.(id));
                ("sc1", Json.Int s.Scoap.sc1.(id));
                ("co", Json.Int s.Scoap.co.(id));
                ("so", Json.Int s.Scoap.so.(id));
              ])
          c.Netlist.Node.nodes))

let netlist_to_json ?(include_scoap = false) ~name c s =
  Json.Obj
    ([
       ("name", Json.String name);
       ("kind", Json.String "netlist");
       ("diagnostics", Json.List (List.map Diag.to_json s.diags));
       ( "summary",
         summary_json s.diags
           ([
              ("total_faults", Json.Int s.total_faults);
              ("untestable", Json.Int s.untestable);
              ("invariant_untestable", Json.Int s.invariant_untestable);
            ]
           @
           match s.seq_redundant with
           | Some n -> [ ("seq_redundant", Json.Int n) ]
           | None -> []) );
     ]
    @
    match s.scoap with
    | Some sc when include_scoap -> [ ("scoap", scoap_json c sc) ]
    | _ -> [])

let fsm_to_json ~name diags =
  Json.Obj
    [
      ("name", Json.String name);
      ("kind", Json.String "fsm");
      ("diagnostics", Json.List (List.map Diag.to_json diags));
      ("summary", summary_json diags []);
    ]

(* --- catalogue --------------------------------------------------------------- *)

let catalogue =
  [
    (Netlist_rules.rule_cycle, Diag.Error, "combinational cycle");
    (Netlist_rules.rule_structure, Diag.Error,
     "structural defect (dangling fanin, bad arity, unconnected DFF, \
      duplicate node/PO name)");
    (Netlist_rules.rule_dead, Diag.Warning, "dead (fanout-free, non-PO) logic");
    (Netlist_rules.rule_unobservable, Diag.Warning,
     "unobservable logic: no structural path to any PO");
    (Netlist_rules.rule_constant, Diag.Warning,
     "constant-provable node (ternary propagation)");
    (Netlist_rules.rule_untestable, Diag.Info,
     "statically untestable fault (unexcitable or unpropagatable)");
    (Netlist_rules.rule_hard_ffr, Diag.Info,
     "hard-to-test fanout-free region (SCOAP-scored)");
    (Netlist_rules.rule_seq_redundant, Diag.Warning,
     "proved sequentially redundant fault (activation needs an \
      unreachable state, proved by symbolic reachability)");
    (Fsm_rules.rule_unreachable, Diag.Warning, "state unreachable from reset");
    (Fsm_rules.rule_dead_state, Diag.Warning, "dead (trap) state");
    (Fsm_rules.rule_nondet, Diag.Error, "nondeterministic transitions");
    (Fsm_rules.rule_incomplete, Diag.Info,
     "incompletely specified (state, input) pairs");
  ]
