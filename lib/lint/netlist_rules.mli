(** Netlist lint rules.  Rule catalogue:

    - [NET001] (Error): combinational cycle, proved by DFS — [order] is
      not trusted.
    - [NET002] (Error): structural defect ({!Netlist.Check} wrapped).
    - [NET003] (Warning): dead logic — fanout-free node driving no PO.
    - [NET004] (Warning): unobservable logic — no structural path to a PO.
    - [NET005] (Warning): constant-provable node (ternary propagation).
    - [NET006] (Info): statically untestable fault, with its proof cause
      (machine-readable [proof] payload: cause + ["static"] source).
    - [NET007] (Info): hard-to-test fanout-free region (SCOAP-scored).
    - [NET008] (Warning): {e proved} sequentially redundant fault —
      activation needs a line value no reachable state can produce, per a
      caller-supplied symbolic-reachability oracle; the [proof] payload
      carries the cause, ["symbolic"] source and the BDD budget (Error on
      oracle / static-implication disagreement, which should never
      fire).

    NET003..NET008 trust [order] and must only run after NET001/NET002
    pass ({!Report} stages this). *)

val rule_cycle : string
val rule_structure : string
val rule_dead : string
val rule_unobservable : string
val rule_constant : string
val rule_untestable : string
val rule_hard_ffr : string
val rule_seq_redundant : string

val combinational_cycles : Netlist.Node.t -> Diag.t list
val structure : Netlist.Node.t -> Diag.t list
val dead_logic : Netlist.Node.t -> Diag.t list

(** Per-node: can the output reach some PO structurally (registers
    transparent)?  Invariant under retiming. *)
val structurally_observable : Netlist.Node.t -> bool array

(** Like {!structurally_observable} but propagation through a gate is
    blocked when a sibling input is proved constant at the controlling
    value ([values] from {!Constants.values}). *)
val fault_observable : Netlist.Node.t -> Sim.Value3.t array -> bool array

val unobservable : Netlist.Node.t -> structural_obs:bool array -> Diag.t list
val constants : Netlist.Node.t -> Sim.Value3.t array -> Diag.t list

type cause = Unexcitable | Unpropagatable

val cause_to_string : cause -> string

(** Machine-readable cause tag: ["unexcitable"]/["unpropagatable"]. *)
val cause_slug : cause -> string

(** Static untestability proof for one fault, or [None]. [obs] must come
    from {!fault_observable}. *)
val fault_cause :
  Netlist.Node.t -> Sim.Value3.t array -> bool array -> Fsim.Fault.t ->
  cause option

(** [(total collapsed faults, proved untestable ones with causes)]. *)
val untestable_faults :
  Netlist.Node.t -> Sim.Value3.t array -> bool array ->
  int * (Fsim.Fault.t * cause) list

val untestable_diags :
  Netlist.Node.t -> (Fsim.Fault.t * cause) list -> Diag.t list

(** Statically-untestable count over the full fault universe restricted
    to gate/PI sites — the retiming-invariant metric asserted by the
    Theorem-1 property test (register sites are excluded because the
    register count legitimately changes under retiming). *)
val invariant_untestable_count :
  Netlist.Node.t -> Sim.Value3.t array -> bool array -> int

val hard_ffrs : ?top:int -> Netlist.Node.t -> Scoap.t -> Diag.t list

(** The node whose output line a fault sits on (the stem, or the pin's
    driving fanin). *)
val fault_source : Netlist.Node.t -> Fsim.Fault.t -> int

(** The symbolic-reachability oracle behind NET008, with the exploration
    metadata quoted in each diagnostic's proof payload. *)
type oracle = {
  can_take : int -> bool -> bool;
    (** can this line take this value in some reachable state? *)
  max_nodes : int;  (** BDD node budget of the exploration *)
  bdd_nodes : int;  (** size of the reached-set BDD *)
}

(** [seq_redundant_faults c ~can_take proved] classifies the collapsed
    fault list against a reachability oracle: [can_take src v] answers
    whether line [src] can take value [v] in some reachable state under
    some input (e.g. [Analysis.Symreach.can_take]).  Returns
    [(candidates, inconsistencies)] — faults the oracle proves
    sequentially redundant (minus those [proved] already covers
    statically), and statically-Unexcitable faults the oracle wrongly
    claims activatable (the Theorem-1 cross-check; must be empty). *)
val seq_redundant_faults :
  Netlist.Node.t -> can_take:(int -> bool -> bool) ->
  (Fsim.Fault.t * cause) list -> Fsim.Fault.t list * Fsim.Fault.t list

val seq_redundant_diags :
  Netlist.Node.t -> oracle:oracle ->
  Fsim.Fault.t list * Fsim.Fault.t list -> Diag.t list
