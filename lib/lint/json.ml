(* The JSON tree moved to lib/obs (the observability layer needs it below
   lint in the dependency order); this alias keeps the lint reporters and
   their callers source-compatible. *)

include Obs.Json
