(** Minimal JSON tree used by the lint reporters.  Numbers are integers
    (every lint metric is integral), which keeps the print/parse cycle
    exact for the round-trip tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering with full string escaping. *)
val to_string : t -> string

exception Parse_error of string

(** Inverse of {!to_string} on the subset this module emits.
    @raise Parse_error on malformed input. *)
val parse : string -> t

(** Object field lookup; [None] on missing key or non-object. *)
val member : string -> t -> t option

(** Structural equality (object field order is significant). *)
val equal : t -> t -> bool
