(** Constant-provable nodes via ternary reachability: primary inputs X,
    registers seeded with their power-up values and widened (0 ⊔ 1 = X)
    to a fixpoint.  A binary result proves the node holds that value at
    {e every} cycle under {e every} input sequence.

    Requires a cycle-free circuit ([order] is trusted); run the cycle
    rule first. *)

(** Per-node abstract value at the fixpoint ([Zero]/[One] = proved
    constant, [X] = not provably constant). *)
val values : Netlist.Node.t -> Sim.Value3.t array

(** [Some b] when node [id] is proved constant at [b]. *)
val constant_value : Sim.Value3.t array -> int -> bool option
