(** Lint driver: stages the rules (value analyses only run when the
    error-level rules pass), assembles summaries, renders text/JSON, and
    provides the post-transform gate used by the synthesis and retiming
    flows. *)

type netlist_summary = {
  diags : Diag.t list;          (** sorted, most severe first *)
  total_faults : int;           (** size of the collapsed fault list *)
  untestable : int;             (** statically proved untestable of those *)
  invariant_untestable : int;
  (** untestable count over the gate/PI-site full fault universe — the
      retiming-invariant Theorem-1 metric *)
  seq_redundant : int option;
  (** NET008 proved count; [None] when no reachability oracle was
      supplied *)
  scoap : Scoap.t option;       (** [None] when error-level rules fired *)
}

(** Run all netlist rules.  [ffr_top] bounds the NET007 diagnostics.
    [oracle] is the symbolic-reachability oracle (e.g. built on
    {!Analysis.Symreach.can_take}, with the exploration's budget and
    BDD size for the proof payloads) enabling the NET008 sequential-
    redundancy rule; omit it and NET008 is skipped. *)
val lint_netlist :
  ?ffr_top:int -> ?oracle:Netlist_rules.oracle -> Netlist.Node.t ->
  netlist_summary

(** Run all FSM rules, sorted. *)
val lint_fsm : Fsm.Machine.t -> Diag.t list

(** Error-level rules only (cycles + structure); raises [Failure] naming
    [what] and every firing rule.  The post-transform flow gate. *)
val assert_clean : what:string -> Netlist.Node.t -> unit

val pp_counts : Format.formatter -> Diag.t list -> unit
val pp_netlist : Format.formatter -> string * netlist_summary -> unit
val pp_fsm : Format.formatter -> string * Diag.t list -> unit

(** JSON document for one netlist; [include_scoap] embeds per-node SCOAP
    scores. *)
val netlist_to_json :
  ?include_scoap:bool -> name:string -> Netlist.Node.t -> netlist_summary ->
  Json.t

val fsm_to_json : name:string -> Diag.t list -> Json.t

(** (rule id, severity, one-line description) for every rule. *)
val catalogue : (string * Diag.severity * string) list
