(* FSM lint rules over Fsm.Machine:

   FSM001  Warning  unreachable state (from reset, completed semantics)
   FSM002  Warning  dead state: reachable but no specified transition
                    leaves it (a trap under the completed semantics)
   FSM003  Error    nondeterministic transitions: overlapping input cubes
                    of one state with conflicting behaviour
   FSM004  Info     incompletely specified machine: (state, input) pairs
                    with no matching transition (one aggregated diag) *)

let rule_unreachable = "FSM001"
let rule_dead_state = "FSM002"
let rule_nondet = "FSM003"
let rule_incomplete = "FSM004"

let state_loc (m : Fsm.Machine.t) i =
  Diag.State { index = i; name = m.Fsm.Machine.state_names.(i) }

let unreachable_states (m : Fsm.Machine.t) =
  let n = Fsm.Machine.num_states m in
  let reach = Array.make n false in
  List.iter (fun s -> reach.(s) <- true) (Fsm.Machine.reachable_states m);
  let out = ref [] in
  for s = n - 1 downto 0 do
    if not reach.(s) then
      out :=
        Diag.make ~rule:rule_unreachable ~severity:Diag.Warning
          ~loc:(state_loc m s) "unreachable from the reset state"
        :: !out
  done;
  !out

let dead_states (m : Fsm.Machine.t) =
  let n = Fsm.Machine.num_states m in
  let reach = Array.make n false in
  List.iter (fun s -> reach.(s) <- true) (Fsm.Machine.reachable_states m);
  let leaves = Array.make n false in
  Array.iter
    (fun (t : Fsm.Machine.transition) ->
      if t.Fsm.Machine.dst <> t.Fsm.Machine.src then
        leaves.(t.Fsm.Machine.src) <- true)
    m.Fsm.Machine.transitions;
  let out = ref [] in
  for s = n - 1 downto 0 do
    if reach.(s) && not leaves.(s) then
      out :=
        Diag.make ~rule:rule_dead_state ~severity:Diag.Warning
          ~loc:(state_loc m s)
          "dead state: no transition leaves it (trap under the completed \
           semantics)"
        :: !out
  done;
  !out

let nondeterministic (m : Fsm.Machine.t) =
  List.map
    (fun (i, j) ->
      let src = m.Fsm.Machine.transitions.(i).Fsm.Machine.src in
      Diag.make ~rule:rule_nondet ~severity:Diag.Error ~loc:(Diag.Transition i)
        (Printf.sprintf
           "nondeterministic: transitions %d and %d of state %s overlap \
            with conflicting behaviour"
           i j m.Fsm.Machine.state_names.(src)))
    (Fsm.Machine.nondeterminism m)

(* Count the (state, input) pairs no transition matches; the completed
   semantics turns them into all-0 self-loops, which synthesis exploits
   as don't cares — an Info, not a defect. *)
let incompletely_specified (m : Fsm.Machine.t) =
  let codes = 1 lsl m.Fsm.Machine.num_inputs in
  let n = Fsm.Machine.num_states m in
  let missing = ref 0 in
  let states_hit = ref 0 in
  for s = 0 to n - 1 do
    let holes = ref 0 in
    for code = 0 to codes - 1 do
      match Fsm.Machine.step_opt m ~state:s ~input_code:code with
      | Some _ -> ()
      | None -> incr holes
    done;
    if !holes > 0 then begin
      incr states_hit;
      missing := !missing + !holes
    end
  done;
  if !missing = 0 then []
  else
    [
      Diag.make ~rule:rule_incomplete ~severity:Diag.Info ~loc:Diag.Circuit
        (Printf.sprintf
           "incompletely specified: %d (state, input) pair(s) across %d \
            state(s) have no transition (completed as all-0 self-loops)"
           !missing !states_hit);
    ]

let lint m =
  unreachable_states m @ dead_states m @ nondeterministic m
  @ incompletely_specified m
