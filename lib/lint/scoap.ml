(* SCOAP testability metrics (Goldstein 1979) over the gate-level netlist.

   Combinational controllability CC0/CC1 counts the minimum number of
   signal assignments needed to force a node to 0/1; sequential
   controllability SC0/SC1 counts the register crossings (time frames) of
   the cheapest such plan.  Observability CO/SO is the dual: assignments /
   time frames needed to propagate a change at the node to some primary
   output.  Unattainable goals saturate at {!unreachable}.

   The recurrences are evaluated to a fixpoint: controllability sweeps
   forward (gates in topological order, then the register transfer),
   observability sweeps backward.  All updates are monotone decreasing
   from the saturation value, and one sweep propagates information across
   one register boundary, so the iteration settles within about the
   sequential depth of the circuit; a generous sweep cap guards degenerate
   cases.

   DFF handling: the netlist's registers are edge-triggered with a known
   power-up value, so controlling a register to its init value is free of
   input assignments (cost 1, depth 0); otherwise CCv(Q) = CCv(D) + 1 and
   SCv(Q) = SCv(D) + 1.  Observing a register's data input costs one more
   frame: CO(D) = CO(Q) + 1, SO(D) = SO(Q) + 1. *)

(* Saturation value for unattainable goals; far below max_int so sums
   cannot overflow, far above any reachable score. *)
let unreachable = 100_000_000

let ( ++ ) a b =
  let s = a + b in
  if s >= unreachable then unreachable else s

type t = {
  cc0 : int array;
  cc1 : int array;
  sc0 : int array;
  sc1 : int array;
  co : int array;
  so : int array;
}

(* (combinational, sequential) cost pair arithmetic *)
let sum_pairs pairs =
  Array.fold_left (fun (c, s) (c', s') -> (c ++ c', s ++ s')) (0, 0) pairs

let min_pair (c, s) (c', s') = if c < c' || (c = c' && s <= s') then (c, s) else (c', s')

let min_pairs pairs =
  Array.fold_left min_pair (unreachable, unreachable) pairs

let gate_controllability fn ~zero ~one =
  (* [zero].(i) = (cc0, sc0) of input i, [one].(i) = (cc1, sc1). *)
  let plus1 (c, s) = (c ++ 1, s) in
  match fn with
  | Netlist.Node.Buf -> (plus1 zero.(0), plus1 one.(0))
  | Netlist.Node.Not -> (plus1 one.(0), plus1 zero.(0))
  | Netlist.Node.And -> (plus1 (min_pairs zero), plus1 (sum_pairs one))
  | Netlist.Node.Nand -> (plus1 (sum_pairs one), plus1 (min_pairs zero))
  | Netlist.Node.Or -> (plus1 (sum_pairs zero), plus1 (min_pairs one))
  | Netlist.Node.Nor -> (plus1 (min_pairs one), plus1 (sum_pairs zero))
  | Netlist.Node.Xor ->
    let equal_ = min_pair (sum_pairs zero) (sum_pairs one) in
    let differ =
      min_pair
        (sum_pairs [| zero.(0); one.(1) |])
        (sum_pairs [| one.(0); zero.(1) |])
    in
    (plus1 equal_, plus1 differ)
  | Netlist.Node.Xnor ->
    let equal_ = min_pair (sum_pairs zero) (sum_pairs one) in
    let differ =
      min_pair
        (sum_pairs [| zero.(0); one.(1) |])
        (sum_pairs [| one.(0); zero.(1) |])
    in
    (plus1 differ, plus1 equal_)

let compute c =
  let n = Netlist.Node.num_nodes c in
  let cc0 = Array.make n unreachable
  and cc1 = Array.make n unreachable
  and sc0 = Array.make n unreachable
  and sc1 = Array.make n unreachable in
  Array.iter
    (fun id ->
      cc0.(id) <- 1;
      cc1.(id) <- 1;
      sc0.(id) <- 0;
      sc1.(id) <- 0)
    c.Netlist.Node.pis;
  let changed = ref true in
  let set a id v =
    if v < a.(id) then begin
      a.(id) <- v;
      changed := true
    end
  in
  (* sweeps ~ sequential depth; cap generously *)
  let max_sweeps = (2 * Netlist.Node.num_dffs c) + 16 in
  let sweeps = ref 0 in
  while !changed && !sweeps < max_sweeps do
    changed := false;
    incr sweeps;
    Array.iter
      (fun id ->
        let nd = Netlist.Node.node c id in
        match nd.Netlist.Node.kind with
        | Netlist.Node.Gate fn ->
          let zero =
            Array.map (fun f -> (cc0.(f), sc0.(f))) nd.Netlist.Node.fanins
          and one =
            Array.map (fun f -> (cc1.(f), sc1.(f))) nd.Netlist.Node.fanins
          in
          let (c0, s0), (c1, s1) = gate_controllability fn ~zero ~one in
          set cc0 id c0;
          set sc0 id s0;
          set cc1 id c1;
          set sc1 id s1
        | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ())
      c.Netlist.Node.order;
    (* register transfer: Q from D (one more frame), or power-up for free *)
    Array.iter
      (fun id ->
        let data = (Netlist.Node.node c id).Netlist.Node.fanins.(0) in
        let init = Netlist.Node.dff_init c id in
        set cc0 id (cc0.(data) ++ 1);
        set sc0 id (sc0.(data) ++ 1);
        set cc1 id (cc1.(data) ++ 1);
        set sc1 id (sc1.(data) ++ 1);
        if init then begin
          set cc1 id 1;
          set sc1 id 0
        end
        else begin
          set cc0 id 1;
          set sc0 id 0
        end)
      c.Netlist.Node.dffs;
  done;
  (* --- observability, backward ------------------------------------------- *)
  let co = Array.make n unreachable and so = Array.make n unreachable in
  Array.iter
    (fun (_, id) ->
      co.(id) <- 0;
      so.(id) <- 0)
    c.Netlist.Node.pos;
  let set_o a id v =
    if v < a.(id) then begin
      a.(id) <- v;
      changed := true
    end
  in
  let side_cost fn (nd : Netlist.Node.node) pin =
    (* cost of holding the sibling inputs at non-controlling values *)
    let fanins = nd.Netlist.Node.fanins in
    let acc = ref (0, 0) in
    Array.iteri
      (fun j f ->
        if j <> pin then
          let cost =
            match fn with
            | Netlist.Node.And | Netlist.Node.Nand -> (cc1.(f), sc1.(f))
            | Netlist.Node.Or | Netlist.Node.Nor -> (cc0.(f), sc0.(f))
            | Netlist.Node.Not | Netlist.Node.Buf -> (0, 0)
            | Netlist.Node.Xor | Netlist.Node.Xnor ->
              min_pair (cc0.(f), sc0.(f)) (cc1.(f), sc1.(f))
          in
          let c, s = !acc and c', s' = cost in
          acc := (c ++ c', s ++ s'))
      fanins;
    !acc
  in
  changed := true;
  sweeps := 0;
  while !changed && !sweeps < max_sweeps do
    changed := false;
    incr sweeps;
    (* gates, sinks first *)
    for i = Array.length c.Netlist.Node.order - 1 downto 0 do
      let id = c.Netlist.Node.order.(i) in
      let nd = Netlist.Node.node c id in
      match nd.Netlist.Node.kind with
      | Netlist.Node.Gate fn ->
        Array.iteri
          (fun pin f ->
            let sc, ss = side_cost fn nd pin in
            set_o co f (co.(id) ++ sc ++ 1);
            set_o so f (so.(id) ++ ss))
          nd.Netlist.Node.fanins
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ()
    done;
    (* registers: observing D means observing Q one frame later *)
    Array.iter
      (fun id ->
        let data = (Netlist.Node.node c id).Netlist.Node.fanins.(0) in
        set_o co data (co.(id) ++ 1);
        set_o so data (so.(id) ++ 1))
      c.Netlist.Node.dffs
  done;
  { cc0; cc1; sc0; sc1; co; so }

(* Detection cost of the harder stuck-at fault on the node's output:
   sa0 needs (set 1, observe), sa1 needs (set 0, observe). *)
let testability t id =
  max (t.cc1.(id) ++ t.co.(id)) (t.cc0.(id) ++ t.co.(id))

let controllability t = (t.cc0, t.cc1)

let pp_node ppf (t, id) =
  Fmt.pf ppf "cc0=%d cc1=%d sc0=%d sc1=%d co=%d so=%d" t.cc0.(id) t.cc1.(id)
    t.sc0.(id) t.sc1.(id) t.co.(id) t.so.(id)
