(** Structured lint diagnostics: a stable rule id, a severity, a location
    in the netlist or FSM, and a message.  Produced by the rule modules,
    rendered by {!Report}. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

(** Orders [Error < Warning < Info] (most severe first). *)
val compare_severity : severity -> severity -> int

type location =
  | Circuit                                  (** whole netlist / machine *)
  | Node of { id : int; name : string }      (** netlist node *)
  | Po of string                             (** primary output, by name *)
  | State of { index : int; name : string }  (** FSM state *)
  | Transition of int                        (** FSM transition index *)

type t = {
  rule : string;       (** stable id, e.g. ["NET001"] *)
  severity : severity;
  loc : location;
  message : string;
  proof : Json.t option;
      (** machine-readable proof evidence (NET006/NET008: cause, proof
          source, symbolic budget); carried verbatim through the JSON
          round trip *)
}

val make :
  ?proof:Json.t -> rule:string -> severity:severity -> loc:location ->
  string -> t

val location_to_string : location -> string

(** One-line rendering: [severity[RULE] location: message]. *)
val pp : Format.formatter -> t -> unit

val count_severity : severity -> t list -> int
val has_errors : t list -> bool

(** Stable sort, most severe first, then by rule id. *)
val sort : t list -> t list

val to_json : t -> Json.t

(** Inverse of {!to_json}; [None] on malformed input. *)
val of_json : Json.t -> t option
