(** FSM lint rules.  Rule catalogue:

    - [FSM001] (Warning): state unreachable from reset.
    - [FSM002] (Warning): dead (trap) state — no transition leaves it.
    - [FSM003] (Error): nondeterministic overlapping transitions.
    - [FSM004] (Info): incompletely specified (state, input) pairs,
      aggregated into one diagnostic. *)

val rule_unreachable : string
val rule_dead_state : string
val rule_nondet : string
val rule_incomplete : string

val unreachable_states : Fsm.Machine.t -> Diag.t list
val dead_states : Fsm.Machine.t -> Diag.t list
val nondeterministic : Fsm.Machine.t -> Diag.t list
val incompletely_specified : Fsm.Machine.t -> Diag.t list

(** All FSM rules. *)
val lint : Fsm.Machine.t -> Diag.t list
