(* Constant-provable nodes via ternary (Sim.Value3) propagation.

   Abstract reachability fixpoint: primary inputs are X, registers start
   at their power-up values, and each iteration joins every register's
   next-state value into its running abstraction (0 ⊔ 1 = X).  Gate
   evaluation is X-monotone, so the loop converges after at most one
   flip (bool -> X) per register, and the final combinational sweep is an
   over-approximation of every value the node can take in any reachable
   cycle under any input sequence.

   Soundness: a node whose final abstract value is 0 (resp. 1) provably
   holds that value at every cycle from power-up on — so its stuck-at-0
   (resp. stuck-at-1) fault can never be excited, and the node cannot
   propagate any fault effect arriving on its inputs.

   The sweep loop itself lives in Analysis.Fixpoint — one shared
   register-widening engine for this analysis and Analysis.Untest's
   effect cones — instantiated here at the ternary lattice.  The
   instance is bit-identical to the historical in-place loop (same
   sweep order, same [num_dffs + 2] bound; regression-tested).

   The analysis evaluates gates through [order] and therefore requires a
   cycle-free circuit; Report runs it only after the cycle rule passes. *)

let values = Analysis.Fixpoint.constants
let constant_value values id = Sim.Value3.to_bool_opt values.(id)
