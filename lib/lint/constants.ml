(* Constant-provable nodes via ternary (Sim.Value3) propagation.

   Abstract reachability fixpoint: primary inputs are X, registers start
   at their power-up values, and each iteration joins every register's
   next-state value into its running abstraction (0 ⊔ 1 = X).  Gate
   evaluation is X-monotone, so the loop converges after at most one
   flip (bool -> X) per register, and the final combinational sweep is an
   over-approximation of every value the node can take in any reachable
   cycle under any input sequence.

   Soundness: a node whose final abstract value is 0 (resp. 1) provably
   holds that value at every cycle from power-up on — so its stuck-at-0
   (resp. stuck-at-1) fault can never be excited, and the node cannot
   propagate any fault effect arriving on its inputs.

   The analysis evaluates gates through [order] and therefore requires a
   cycle-free circuit; Report runs it only after the cycle rule passes. *)

let join a b = if Sim.Value3.equal a b then a else Sim.Value3.X

let values c =
  let n = Netlist.Node.num_nodes c in
  let value = Array.make n Sim.Value3.X in
  let state =
    Array.map
      (fun id -> Sim.Value3.of_bool (Netlist.Node.dff_init c id))
      c.Netlist.Node.dffs
  in
  let eval () =
    Array.iter (fun id -> value.(id) <- Sim.Value3.X) c.Netlist.Node.pis;
    Array.iteri (fun j id -> value.(id) <- state.(j)) c.Netlist.Node.dffs;
    Array.iter
      (fun id ->
        let nd = Netlist.Node.node c id in
        match nd.Netlist.Node.kind with
        | Netlist.Node.Gate fn ->
          let ins = Array.map (fun f -> value.(f)) nd.Netlist.Node.fanins in
          value.(id) <- Sim.Value3.eval_gate fn ins
        | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ())
      c.Netlist.Node.order
  in
  let changed = ref true in
  (* each register value can only flip bool -> X once *)
  let max_sweeps = Netlist.Node.num_dffs c + 2 in
  let sweeps = ref 0 in
  while !changed && !sweeps < max_sweeps do
    changed := false;
    incr sweeps;
    eval ();
    Array.iteri
      (fun j id ->
        let data = (Netlist.Node.node c id).Netlist.Node.fanins.(0) in
        let next = join state.(j) value.(data) in
        if not (Sim.Value3.equal next state.(j)) then begin
          state.(j) <- next;
          changed := true
        end)
      c.Netlist.Node.dffs
  done;
  eval ();
  value

let constant_value values id = Sim.Value3.to_bool_opt values.(id)
