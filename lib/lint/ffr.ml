(* Fanout-free regions: the classic ATPG partition of the combinational
   logic.  A gate is the root of its region when its output is a stem
   (fanout <> 1), drives a primary output, or feeds a register; every
   other gate belongs to the region of its unique reader.  Faults inside
   an FFR all funnel through the root, so the hardest SCOAP score inside
   a region is a per-region hard-to-test figure the ATPG cost model and
   the NET007 rule both use. *)

type region = { root : int; members : int list }
(* members in ascending node id, root included *)

let extract c =
  let n = Netlist.Node.num_nodes c in
  let po_driver = Array.make n false in
  Array.iter (fun (_, id) -> po_driver.(id) <- true) c.Netlist.Node.pos;
  let root = Array.make n (-1) in
  let rec root_of id =
    if root.(id) >= 0 then root.(id)
    else begin
      let r =
        if po_driver.(id) then id
        else
          match c.Netlist.Node.fanouts.(id) with
          | [| reader |] ->
            (match (Netlist.Node.node c reader).Netlist.Node.kind with
             | Netlist.Node.Gate _ -> root_of reader
             | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> id)
          | _ -> id
      in
      root.(id) <- r;
      r
    end
  in
  let members = Hashtbl.create 97 in
  Array.iter
    (fun (nd : Netlist.Node.node) ->
      match nd.Netlist.Node.kind with
      | Netlist.Node.Gate _ ->
        let r = root_of nd.Netlist.Node.id in
        let cur = try Hashtbl.find members r with Not_found -> [] in
        Hashtbl.replace members r (nd.Netlist.Node.id :: cur)
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ())
    c.Netlist.Node.nodes;
  Hashtbl.fold (fun root ms acc -> { root; members = List.rev ms } :: acc)
    members []
  |> List.sort (fun a b -> compare a.root b.root)

(* Hardest (max) per-node SCOAP detection cost inside the region. *)
let score scoap region =
  List.fold_left
    (fun acc id -> max acc (Scoap.testability scoap id))
    0 region.members

(* Regions sorted hardest first (score, then root id for determinism). *)
let ranked c scoap =
  extract c
  |> List.map (fun r -> (score scoap r, r))
  |> List.sort (fun (sa, ra) (sb, rb) ->
         if sa <> sb then compare sb sa else compare ra.root rb.root)
