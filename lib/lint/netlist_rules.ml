(* Netlist lint rules.

   NET001  Error    combinational cycle (proved by DFS, [order] not trusted)
   NET002  Error    structural defect (wraps Netlist.Check: dangling fanins,
                    bad arities, unconnected DFFs, duplicate names/POs)
   NET003  Warning  dead logic: fanout-free node that drives no PO
   NET004  Warning  unobservable logic: no structural path to any PO
   NET005  Warning  constant-provable node (ternary propagation)
   NET006  Info     statically untestable fault (implication-proved: either
                    unexcitable because its source is constant at the stuck
                    value, or unpropagatable because every path to a PO is
                    blocked by a constant side input)
   NET007  Info     hard-to-test fanout-free region (SCOAP-scored)
   NET008  Info     sequentially redundant fault candidate: activation needs
                    a line value no reachable state can produce (proved by a
                    caller-supplied symbolic-reachability oracle)

   The value analyses (NET003..NET008) trust [order] and therefore only
   run once NET001/NET002 pass — Report enforces that staging. *)

let rule_cycle = "NET001"
let rule_structure = "NET002"
let rule_dead = "NET003"
let rule_unobservable = "NET004"
let rule_constant = "NET005"
let rule_untestable = "NET006"
let rule_hard_ffr = "NET007"
let rule_seq_redundant = "NET008"

let node_loc c id =
  Diag.Node { id; name = (Netlist.Node.node c id).Netlist.Node.name }

let is_gate c id =
  match (Netlist.Node.node c id).Netlist.Node.kind with
  | Netlist.Node.Gate _ -> true
  | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> false

let po_drivers c =
  let po = Array.make (Netlist.Node.num_nodes c) false in
  Array.iter (fun (_, id) -> po.(id) <- true) c.Netlist.Node.pos;
  po

(* --- NET001: combinational cycles ------------------------------------------ *)

(* DFS over gate-to-gate fanin edges (PIs and DFF outputs are sources and
   cut the traversal).  One diagnostic per back edge, carrying the cycle. *)
let combinational_cycles c =
  let n = Netlist.Node.num_nodes c in
  let color = Array.make n 0 in
  (* 0 white, 1 on stack, 2 done *)
  let diags = ref [] in
  let stack = ref [] in
  let report_cycle head =
    let rec take acc = function
      | [] -> acc
      | id :: rest -> if id = head then id :: acc else take (id :: acc) rest
    in
    let cycle = take [] !stack in
    let names =
      List.map (fun id -> (Netlist.Node.node c id).Netlist.Node.name) cycle
    in
    let msg =
      Printf.sprintf "combinational cycle: %s -> %s"
        (String.concat " -> " names) (List.hd names)
    in
    diags :=
      Diag.make ~rule:rule_cycle ~severity:Diag.Error ~loc:(node_loc c head) msg
      :: !diags
  in
  let rec visit id =
    if color.(id) = 0 then begin
      match (Netlist.Node.node c id).Netlist.Node.kind with
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> color.(id) <- 2
      | Netlist.Node.Gate _ ->
        color.(id) <- 1;
        stack := id :: !stack;
        Array.iter
          (fun f ->
            if f >= 0 && f < n && is_gate c f then
              if color.(f) = 1 then report_cycle f else visit f)
          (Netlist.Node.node c id).Netlist.Node.fanins;
        stack := List.tl !stack;
        color.(id) <- 2
    end
  in
  for id = 0 to n - 1 do
    visit id
  done;
  List.rev !diags

(* --- NET002: structural defects --------------------------------------------- *)

let structure c =
  List.map
    (fun p ->
      Diag.make ~rule:rule_structure ~severity:Diag.Error ~loc:Diag.Circuit
        (Netlist.Check.problem_to_string p))
    (Netlist.Check.problems c)

(* --- NET003: dead (fanout-free, non-PO) logic -------------------------------- *)

let dead_logic c =
  let po = po_drivers c in
  let out = ref [] in
  Array.iter
    (fun (nd : Netlist.Node.node) ->
      let id = nd.Netlist.Node.id in
      if Array.length c.Netlist.Node.fanouts.(id) = 0 && not po.(id) then begin
        let msg =
          match nd.Netlist.Node.kind with
          | Netlist.Node.Pi _ -> "unused primary input"
          | Netlist.Node.Dff _ -> "dead register: no reader and no PO"
          | Netlist.Node.Gate _ -> "dead gate: no reader and no PO"
        in
        out :=
          Diag.make ~rule:rule_dead ~severity:Diag.Warning ~loc:(node_loc c id)
            msg
          :: !out
      end)
    c.Netlist.Node.nodes;
  List.rev !out

(* --- observability ----------------------------------------------------------- *)

(* Structural: can the node's output reach some PO through any path
   (registers are transparent)?  Pure connectivity — invariant under
   retiming, which only moves registers along wires. *)
let structurally_observable c =
  let n = Netlist.Node.num_nodes c in
  let obs = Array.make n false in
  let queue = Queue.create () in
  Array.iter
    (fun (_, id) ->
      if not obs.(id) then begin
        obs.(id) <- true;
        Queue.add id queue
      end)
    c.Netlist.Node.pos;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    Array.iter
      (fun f ->
        if not obs.(f) then begin
          obs.(f) <- true;
          Queue.add f queue
        end)
      (Netlist.Node.node c id).Netlist.Node.fanins
  done;
  obs

(* Does a fault effect arriving on pin [pin] of gate [fn] propagate to the
   gate output, given the proved-constant side inputs?  Blocked exactly
   when some sibling is constant at the gate's controlling value. *)
let pin_propagates c values (nd : Netlist.Node.node) fn pin =
  let blocked_by v =
    match fn, v with
    | (Netlist.Node.And | Netlist.Node.Nand), Sim.Value3.Zero -> true
    | (Netlist.Node.Or | Netlist.Node.Nor), Sim.Value3.One -> true
    | _ -> false
  in
  ignore c;
  let ok = ref true in
  Array.iteri
    (fun j f -> if j <> pin && blocked_by values.(f) then ok := false)
    nd.Netlist.Node.fanins;
  !ok

(* Implication-refined observability: like [structurally_observable] but a
   gate passes an effect from one of its fanins only when no sibling input
   is proved constant at the controlling value. *)
let fault_observable c values =
  let n = Netlist.Node.num_nodes c in
  let obs = Array.make n false in
  let queue = Queue.create () in
  let mark id =
    if not obs.(id) then begin
      obs.(id) <- true;
      Queue.add id queue
    end
  in
  Array.iter (fun (_, id) -> mark id) c.Netlist.Node.pos;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let nd = Netlist.Node.node c id in
    match nd.Netlist.Node.kind with
    | Netlist.Node.Pi _ -> ()
    | Netlist.Node.Dff _ -> mark nd.Netlist.Node.fanins.(0)
    | Netlist.Node.Gate fn ->
      Array.iteri
        (fun pin f -> if pin_propagates c values nd fn pin then mark f)
        nd.Netlist.Node.fanins
  done;
  obs

let unobservable c ~structural_obs =
  let po = po_drivers c in
  let out = ref [] in
  Array.iter
    (fun (nd : Netlist.Node.node) ->
      let id = nd.Netlist.Node.id in
      (* fanout-free nodes are already NET003 *)
      if
        (not structural_obs.(id))
        && Array.length c.Netlist.Node.fanouts.(id) > 0
        && not po.(id)
      then
        out :=
          Diag.make ~rule:rule_unobservable ~severity:Diag.Warning
            ~loc:(node_loc c id)
            "unobservable logic: no structural path to any primary output"
          :: !out)
    c.Netlist.Node.nodes;
  List.rev !out

(* --- NET005: constant-provable nodes ----------------------------------------- *)

let constants c values =
  let out = ref [] in
  Array.iter
    (fun (nd : Netlist.Node.node) ->
      let id = nd.Netlist.Node.id in
      let self_loop_const =
        (* intentional constant generator: a self-looped DFF *)
        match nd.Netlist.Node.kind with
        | Netlist.Node.Dff _ -> nd.Netlist.Node.fanins.(0) = id
        | Netlist.Node.Pi _ | Netlist.Node.Gate _ -> false
      in
      match nd.Netlist.Node.kind, Constants.constant_value values id with
      | (Netlist.Node.Gate _ | Netlist.Node.Dff _), Some v
        when not self_loop_const ->
        out :=
          Diag.make ~rule:rule_constant ~severity:Diag.Warning
            ~loc:(node_loc c id)
            (Printf.sprintf
               "provably constant %d in every reachable cycle (stuck-at-%d \
                is unexcitable)"
               (Bool.to_int v) (Bool.to_int v))
          :: !out
      | _ -> ())
    c.Netlist.Node.nodes;
  List.rev !out

(* --- NET006: statically untestable faults ------------------------------------ *)

type cause = Unexcitable | Unpropagatable

let cause_to_string = function
  | Unexcitable -> "unexcitable (source proved constant at the stuck value)"
  | Unpropagatable -> "unpropagatable (every path to a PO is blocked)"

let cause_slug = function
  | Unexcitable -> "unexcitable"
  | Unpropagatable -> "unpropagatable"

(* Machine-readable proof payload attached to NET006/NET008 diagnostics
   (the --json consumers parse these instead of the prose message). *)
let static_proof cause =
  Json.Obj
    [
      ("cause", Json.String (cause_slug cause));
      ("source", Json.String "static");
    ]

(* Why fault [f] can be proved untestable from the constant values and the
   refined observability, or [None] when no static proof applies. *)
let fault_cause c values obs (f : Fsim.Fault.t) =
  let unexcitable src =
    match Constants.constant_value values src with
    | Some v -> v = f.Fsim.Fault.stuck
    | None -> false
  in
  match f.Fsim.Fault.site with
  | Fsim.Fault.Stem id ->
    if unexcitable id then Some Unexcitable
    else if not obs.(id) then Some Unpropagatable
    else None
  | Fsim.Fault.Pin { gate; pin } ->
    let nd = Netlist.Node.node c gate in
    let src = nd.Netlist.Node.fanins.(pin) in
    if unexcitable src then Some Unexcitable
    else
      let propagates =
        obs.(gate)
        &&
        match nd.Netlist.Node.kind with
        | Netlist.Node.Gate fn -> pin_propagates c values nd fn pin
        | Netlist.Node.Dff _ | Netlist.Node.Pi _ -> true
      in
      if not propagates then Some Unpropagatable else None

(* Untestable members of the engines' collapsed fault list. *)
let untestable_faults c values obs =
  let faults = Fsim.Collapse.list c in
  let proved = ref [] in
  Array.iter
    (fun f ->
      match fault_cause c values obs f with
      | Some cause -> proved := (f, cause) :: !proved
      | None -> ())
    faults;
  (Array.length faults, List.rev !proved)

let untestable_diags c proved =
  List.map
    (fun ((f : Fsim.Fault.t), cause) ->
      let site = Fsim.Fault.site_node f.Fsim.Fault.site in
      Diag.make ~proof:(static_proof cause) ~rule:rule_untestable
        ~severity:Diag.Info ~loc:(node_loc c site)
        (Printf.sprintf "statically untestable fault %s: %s"
           (Fsim.Fault.to_string c f) (cause_to_string cause)))
    proved

(* Theorem-1 invariant count: untestable faults over the full
   (uncollapsed) fault universe of the gate and PI sites only.  Gates and
   PIs are preserved verbatim by retiming (only registers move), and
   every ingredient of the proof — constant values seen through
   registers, structural connectivity, constant-blocked propagation — is
   invariant under a correct retiming, so this count must be identical
   across an original/retimed pair (Theorem 1 of the paper).  DFF-site
   faults are excluded because the register count itself legitimately
   changes. *)
let invariant_untestable_count c values obs =
  let count = ref 0 in
  let tally b = if b then incr count in
  Array.iter
    (fun (nd : Netlist.Node.node) ->
      let id = nd.Netlist.Node.id in
      let unexcitable src stuck =
        match Constants.constant_value values src with
        | Some v -> v = stuck
        | None -> false
      in
      match nd.Netlist.Node.kind with
      | Netlist.Node.Dff _ -> ()
      | Netlist.Node.Pi _ ->
        (* PI stems are never constant; untestable iff unobservable *)
        if not obs.(id) then count := !count + 2
      | Netlist.Node.Gate fn ->
        tally (unexcitable id false || not obs.(id));
        tally (unexcitable id true || not obs.(id));
        Array.iteri
          (fun pin src ->
            let blocked =
              not (obs.(id) && pin_propagates c values nd fn pin)
            in
            tally (unexcitable src false || blocked);
            tally (unexcitable src true || blocked))
          nd.Netlist.Node.fanins)
    c.Netlist.Node.nodes;
  !count

(* --- NET008: sequentially redundant fault candidates -------------------------- *)

(* A stuck-at fault activates by driving its source line to the opposite
   of the stuck value.  [oracle.can_take src v] is an exact oracle —
   typically Analysis.Symreach over the proved-unreachable state set —
   answering whether line [src] can take value [v] in any reachable
   state under any input; a [false] answer makes the fault sequentially
   redundant.  The oracle record also carries the BDD budget and
   reached-set size, so each diagnostic's proof payload names the exact
   symbolic computation that proved it.

   Returns the candidate faults (excluding those NET006 already proved
   statically, so the diagnostics do not duplicate) and the
   inconsistencies: a statically Unexcitable fault is constant at the
   stuck value in *every* cycle, reachable or not, so the oracle must
   agree it cannot activate — a disagreement would falsify the Theorem-1
   machinery and is reported at Error severity (it should never fire). *)
let fault_source c (f : Fsim.Fault.t) =
  match f.Fsim.Fault.site with
  | Fsim.Fault.Stem id -> id
  | Fsim.Fault.Pin { gate; pin } ->
    (Netlist.Node.node c gate).Netlist.Node.fanins.(pin)

let seq_redundant_faults c ~can_take proved =
  let faults = Fsim.Collapse.list c in
  let statically_proved f =
    List.exists (fun (g, _) -> g = f) proved
  in
  let candidates = ref [] and inconsistent = ref [] in
  Array.iter
    (fun (f : Fsim.Fault.t) ->
      let activatable = can_take (fault_source c f) (not f.Fsim.Fault.stuck) in
      let static_cause =
        List.find_opt (fun ((g : Fsim.Fault.t), _) -> g = f) proved
      in
      (match static_cause with
      | Some (_, Unexcitable) when activatable -> inconsistent := f :: !inconsistent
      | _ -> ());
      if (not activatable) && not (statically_proved f) then
        candidates := f :: !candidates)
    faults;
  (List.rev !candidates, List.rev !inconsistent)

type oracle = {
  can_take : int -> bool -> bool;
  max_nodes : int;  (* the BDD node budget the exploration ran under *)
  bdd_nodes : int;  (* nodes of the reached-set BDD *)
}

let symbolic_proof oracle =
  Json.Obj
    [
      ("cause", Json.String "unreachable_activation");
      ("source", Json.String "symbolic");
      ("max_nodes", Json.Int oracle.max_nodes);
      ("bdd_nodes", Json.Int oracle.bdd_nodes);
    ]

(* The symbolic check is a complete proof, not a heuristic: when the
   oracle ran, the fault *is* sequentially redundant — hence Warning
   severity and "proved" wording (the rule was Info "candidate" before
   the exploration budget and proof payloads were threaded through). *)
let seq_redundant_diags c ~oracle (candidates, inconsistent) =
  List.map
    (fun (f : Fsim.Fault.t) ->
      let site = Fsim.Fault.site_node f.Fsim.Fault.site in
      Diag.make
        ~proof:(symbolic_proof oracle)
        ~rule:rule_seq_redundant ~severity:Diag.Warning
        ~loc:(node_loc c site)
        (Printf.sprintf
           "sequentially redundant fault %s (proved): activation requires a \
            state symbolic reachability proved unreachable"
           (Fsim.Fault.to_string c f)))
    candidates
  @ List.map
      (fun (f : Fsim.Fault.t) ->
        let site = Fsim.Fault.site_node f.Fsim.Fault.site in
        Diag.make ~rule:rule_seq_redundant ~severity:Diag.Error
          ~loc:(node_loc c site)
          (Printf.sprintf
             "reachability oracle claims statically unexcitable fault %s can \
              activate — static implication and symbolic reachability \
              disagree"
             (Fsim.Fault.to_string c f)))
      inconsistent

(* --- NET007: hard-to-test fanout-free regions -------------------------------- *)

let hard_ffrs ?(top = 3) c scoap =
  let ranked = Ffr.ranked c scoap in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | (score, (r : Ffr.region)) :: rest ->
      if score <= 0 then []
      else
        Diag.make ~rule:rule_hard_ffr ~severity:Diag.Info
          ~loc:(node_loc c r.Ffr.root)
          (Printf.sprintf
             "hard-to-test fanout-free region: %d gate(s), hardest SCOAP \
              detection cost %d"
             (List.length r.Ffr.members) score)
        :: take (k - 1) rest
  in
  take top ranked
