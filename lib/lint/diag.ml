(* Structured lint diagnostics: a stable rule id, a severity, a location in
   the netlist or FSM, and a human-readable message.  Diagnostics are plain
   data; the text and JSON reporters live in Report. *)

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

(* Error is the most severe. *)
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare_severity a b = compare (severity_rank a) (severity_rank b)

type location =
  | Circuit                                 (* whole netlist / machine *)
  | Node of { id : int; name : string }     (* netlist node *)
  | Po of string                            (* primary output, by name *)
  | State of { index : int; name : string } (* FSM state *)
  | Transition of int                       (* FSM transition index *)

type t = {
  rule : string;          (* stable id, e.g. "NET001" *)
  severity : severity;
  loc : location;
  message : string;
  proof : Json.t option;  (* machine-readable proof evidence, if any *)
}

let make ?proof ~rule ~severity ~loc message =
  { rule; severity; loc; message; proof }

let location_to_string = function
  | Circuit -> "circuit"
  | Node { name; _ } -> Printf.sprintf "node %s" name
  | Po name -> Printf.sprintf "output %s" name
  | State { name; _ } -> Printf.sprintf "state %s" name
  | Transition i -> Printf.sprintf "transition %d" i

let pp ppf d =
  Fmt.pf ppf "%s[%s] %s: %s"
    (severity_to_string d.severity)
    d.rule
    (location_to_string d.loc)
    d.message

let count_severity sev diags =
  List.fold_left (fun a d -> if d.severity = sev then a + 1 else a) 0 diags

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let sort diags =
  List.stable_sort
    (fun a b ->
      let c = compare_severity a.severity b.severity in
      if c <> 0 then c else compare a.rule b.rule)
    diags

(* --- JSON ------------------------------------------------------------------ *)

let location_to_json = function
  | Circuit -> Json.Obj [ ("kind", Json.String "circuit") ]
  | Node { id; name } ->
    Json.Obj
      [ ("kind", Json.String "node"); ("id", Json.Int id);
        ("name", Json.String name) ]
  | Po name ->
    Json.Obj [ ("kind", Json.String "po"); ("name", Json.String name) ]
  | State { index; name } ->
    Json.Obj
      [ ("kind", Json.String "state"); ("index", Json.Int index);
        ("name", Json.String name) ]
  | Transition i ->
    Json.Obj [ ("kind", Json.String "transition"); ("index", Json.Int i) ]

let to_json d =
  Json.Obj
    ([
       ("rule", Json.String d.rule);
       ("severity", Json.String (severity_to_string d.severity));
       ("loc", location_to_json d.loc);
       ("message", Json.String d.message);
     ]
    @ match d.proof with Some p -> [ ("proof", p) ] | None -> [])

let location_of_json j =
  let str key = match Json.member key j with Some (Json.String s) -> Some s | _ -> None in
  let int key = match Json.member key j with Some (Json.Int i) -> Some i | _ -> None in
  match str "kind" with
  | Some "circuit" -> Some Circuit
  | Some "node" ->
    (match int "id", str "name" with
     | Some id, Some name -> Some (Node { id; name })
     | _ -> None)
  | Some "po" -> (match str "name" with Some n -> Some (Po n) | None -> None)
  | Some "state" ->
    (match int "index", str "name" with
     | Some index, Some name -> Some (State { index; name })
     | _ -> None)
  | Some "transition" ->
    (match int "index" with Some i -> Some (Transition i) | None -> None)
  | _ -> None

let of_json j =
  let str key = match Json.member key j with Some (Json.String s) -> Some s | _ -> None in
  match str "rule", str "severity", Json.member "loc" j, str "message" with
  | Some rule, Some sev, Some loc, Some message ->
    (match severity_of_string sev, location_of_json loc with
     | Some severity, Some loc ->
       Some { rule; severity; loc; message; proof = Json.member "proof" j }
     | _ -> None)
  | _ -> None
