(** Fanout-free regions of the combinational logic: every gate funnels
    into the unique stem/PO/register-input "root" it reaches through
    single-fanout wires.  Used for per-region hard-to-test scoring. *)

type region = {
  root : int;          (** region output: a stem, PO driver, or DFF feeder *)
  members : int list;  (** gate ids, ascending, root included *)
}

(** All regions, ordered by root id.  Only gates form regions; PIs and
    DFF outputs are region inputs. *)
val extract : Netlist.Node.t -> region list

(** Hardest {!Scoap.testability} score among the region's members. *)
val score : Scoap.t -> region -> int

(** Regions with their scores, hardest first (ties by root id). *)
val ranked : Netlist.Node.t -> Scoap.t -> (int * region) list
