(** SCOAP testability metrics (Goldstein 1979): combinational and
    sequential controllability/observability per netlist node, computed by
    fixpoint sweeps over the register boundary.

    The netlist's registers have known power-up values, so controlling a
    register to its init value is free of input assignments; this makes
    the scores finite everywhere the logic is actually exercisable and
    leaves unattainable goals saturated at {!unreachable}. *)

(** Saturation value for unattainable goals (safe to add without
    overflow). *)
val unreachable : int

type t = {
  cc0 : int array;  (** combinational 0-controllability, per node *)
  cc1 : int array;  (** combinational 1-controllability *)
  sc0 : int array;  (** sequential 0-controllability (time frames) *)
  sc1 : int array;  (** sequential 1-controllability *)
  co : int array;   (** combinational observability *)
  so : int array;   (** sequential observability *)
}

val compute : Netlist.Node.t -> t

(** Detection cost of the harder output stuck-at fault at a node:
    [max (cc1 + co) (cc0 + co)], saturating. *)
val testability : t -> int -> int

(** [(cc0, cc1)] — the per-node cost arrays the ATPG backtrace consumes
    as its input-selection heuristic. *)
val controllability : t -> int array * int array

(** One-line score dump for a node. *)
val pp_node : Format.formatter -> t * int -> unit
