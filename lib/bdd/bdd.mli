(** Reduced ordered binary decision diagrams (ROBDDs), from scratch on the
    stdlib only.

    Nodes live in a hash-consed unique table inside a manager; a BDD is an
    {e edge} — an integer packing a node index with a complement bit.
    Negation is represented by complement edges (the alternative, canonical
    negative cofactors, was rejected because complement edges make [not_]
    O(1) and halve the node count of self-dual functions).  Canonical form:
    the then-edge of every stored node is regular (never complemented), so
    two edges denote the same function iff they are equal integers.

    Variables are dense non-negative integers ordered by value: smaller
    indices sit closer to the root.  The manager never garbage-collects —
    allocation is monotone and [num_nodes] is also the high-water mark —
    which fits the one-manager-per-analysis usage of {!Analysis.Symreach}. *)

type man

(** A BDD edge.  Only meaningful together with the manager that created
    it; edges from one manager must never be mixed with another's. *)
type t = private int

(** Raised by node-creating operations when the manager's [max_nodes]
    budget is exhausted (the caller recovers by falling back to explicit
    enumeration or reporting the blow-up). *)
exception Node_limit

(** [create ?max_nodes ()] makes an empty manager.  [max_nodes] bounds
    unique-table growth (default [10_000_000]). *)
val create : ?max_nodes:int -> unit -> man

val one : t
val zero : t

(** Structural (= semantic, by canonicity) equality; plain [(=)]. *)
val equal : t -> t -> bool

val is_true : t -> bool
val is_false : t -> bool

(** The literal for variable [v] ([v >= 0]). *)
val var : man -> int -> t

(** O(1): flips the complement bit. *)
val not_ : t -> t

(** If-then-else, the universal connective; memoized. *)
val ite : man -> t -> t -> t -> t

val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor_ : man -> t -> t -> t
val xnor_ : man -> t -> t -> t

(** Root variable, or [None] for the terminals. *)
val top_var : man -> t -> int option

(** Cofactor: [restrict m f ~var ~value] is f with [var] fixed. *)
val restrict : man -> t -> var:int -> value:bool -> t

(** Functional composition [f[var := g]]. *)
val compose : man -> t -> var:int -> t -> t

(** [exists m pred f] existentially quantifies every variable [v] with
    [pred v] out of [f]. *)
val exists : man -> (int -> bool) -> t -> t

(** [and_exists m pred f g] is [exists m pred (and_ m f g)] computed in
    one memoized pass — the relational-product kernel of image
    computation. *)
val and_exists : man -> (int -> bool) -> t -> t -> t

(** [rename m map f] substitutes variable [map v] for every support
    variable [v].  [map] must preserve the variable order on the support
    (checked during the rebuild).
    @raise Invalid_argument when the order check fails. *)
val rename : man -> (int -> int) -> t -> t

(** Evaluate under an assignment (queried only on support variables). *)
val eval : man -> t -> (int -> bool) -> bool

(** Support variables, ascending. *)
val support : man -> t -> int list

(** Internal (non-terminal) nodes reachable from an edge; [size one = 0]. *)
val size : man -> t -> int

(** Internal nodes allocated by the manager so far (also the peak — there
    is no garbage collection). *)
val num_nodes : man -> int

(** Number of satisfying assignments over variables [0..nvars-1] as a
    float — exact up to [2^53], merely rounded (never overflowing) beyond,
    so counts past the 62-bit integer range stay usable.
    @raise Invalid_argument if the support reaches beyond [nvars]. *)
val sat_count : man -> nvars:int -> t -> float

(** Exact integer satisfying-assignment count, or [None] when [nvars] is
    large enough that the count could overflow a 63-bit integer.
    @raise Invalid_argument if the support reaches beyond [nvars]. *)
val sat_count_int : man -> nvars:int -> t -> int option

type stats = {
  nodes : int;           (** internal nodes allocated *)
  unique_load : float;   (** unique-table bindings per bucket *)
  cache_lookups : int;   (** ite-cache probes *)
  cache_hits : int;
}

val stats : man -> stats
