(* Hash-consed ROBDD engine with complement edges.

   An edge is an int: (node index lsl 1) lor complement bit.  Node 0 is
   the single terminal (logical true); [one] is its regular edge, [zero]
   its complement.  Canonical form demands a regular then-edge: [mk]
   pushes a complemented then-edge through the node (complementing both
   children and the result), so equal functions always hash-cons to equal
   edge integers.  Nodes are rows of three growable int arrays — no
   per-node allocation on the hot path beyond the unique-table entry. *)

type t = int

type man = {
  mutable var : int array;    (* per node: variable; terminal = max_int *)
  mutable low : int array;    (* else edge (may be complemented) *)
  mutable high : int array;   (* then edge (always regular) *)
  mutable n : int;            (* nodes allocated *)
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
  mutable lookups : int;
  mutable hits : int;
  max_nodes : int;
}

exception Node_limit

let terminal_var = max_int
let one = 0
let zero = 1
let not_ e = e lxor 1
let equal = Int.equal
let is_true e = e = one
let is_false e = e = zero
let is_compl e = e land 1 = 1
let node_of e = e lsr 1

let create ?(max_nodes = 10_000_000) () =
  let cap = 1024 in
  let m =
    {
      var = Array.make cap terminal_var;
      low = Array.make cap 0;
      high = Array.make cap 0;
      n = 1;
      unique = Hashtbl.create 1024;
      ite_cache = Hashtbl.create 1024;
      lookups = 0;
      hits = 0;
      max_nodes;
    }
  in
  m.var.(0) <- terminal_var;
  m

let grow m =
  let cap = Array.length m.var in
  if m.n >= cap then begin
    let ncap = 2 * cap in
    let cp a fill =
      let a' = Array.make ncap fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    m.var <- cp m.var terminal_var;
    m.low <- cp m.low 0;
    m.high <- cp m.high 0
  end

let var_of m e = m.var.(node_of e)

(* Cofactors of [e] with respect to its own top variable; the edge's
   complement bit distributes over both children. *)
let cof0 m e = m.low.(node_of e) lxor (e land 1)
let cof1 m e = m.high.(node_of e) lxor (e land 1)

let mk m v lo hi =
  if lo = hi then lo
  else begin
    (* canonical: then-edge regular; a complemented one flips the node *)
    let flip = hi land 1 in
    let lo = lo lxor flip and hi = hi lxor flip in
    match Hashtbl.find_opt m.unique (v, lo, hi) with
    | Some n -> (n lsl 1) lor flip
    | None ->
      if m.n >= m.max_nodes then raise Node_limit;
      grow m;
      let n = m.n in
      m.var.(n) <- v;
      m.low.(n) <- lo;
      m.high.(n) <- hi;
      m.n <- n + 1;
      Hashtbl.add m.unique (v, lo, hi) n;
      (n lsl 1) lor flip
  end

let var m v =
  if v < 0 || v >= terminal_var then invalid_arg "Bdd.var: bad variable";
  mk m v zero one

let top_var m e = if node_of e = 0 then None else Some (var_of m e)

let rec ite m f g h =
  if f = one then g
  else if f = zero then h
  else if g = h then g
  else if g = one && h = zero then f
  else if g = zero && h = one then not_ f
  else begin
    (* normalize: regular f (swap branches), then regular g (complement
       the result) — quadruples the ite-cache hit rate *)
    let f, g, h = if is_compl f then (not_ f, h, g) else (f, g, h) in
    let neg, g, h =
      if is_compl g then (true, not_ g, not_ h) else (false, g, h)
    in
    let r =
      if g = h then g
      else if g = one && h = zero then f
      else begin
        m.lookups <- m.lookups + 1;
        match Hashtbl.find_opt m.ite_cache (f, g, h) with
        | Some r ->
          m.hits <- m.hits + 1;
          r
        | None ->
          let v = min (var_of m f) (min (var_of m g) (var_of m h)) in
          let cof b e =
            if var_of m e = v then if b then cof1 m e else cof0 m e else e
          in
          let t = ite m (cof true f) (cof true g) (cof true h) in
          let e = ite m (cof false f) (cof false g) (cof false h) in
          let r = mk m v e t in
          Hashtbl.replace m.ite_cache (f, g, h) r;
          r
      end
    in
    if neg then not_ r else r
  end

let and_ m f g = ite m f g zero
let or_ m f g = ite m f one g
let xor_ m f g = ite m f (not_ g) g
let xnor_ m f g = not_ (xor_ m f g)

let restrict m f ~var:v ~value =
  let memo = Hashtbl.create 16 in
  let rec go f =
    if var_of m f > v then f (* ordered: v cannot appear below *)
    else if var_of m f = v then if value then cof1 m f else cof0 m f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let r = mk m (var_of m f) (go (cof0 m f)) (go (cof1 m f)) in
        Hashtbl.add memo f r;
        r
  in
  go f

let compose m f ~var:v g =
  ite m g (restrict m f ~var:v ~value:true) (restrict m f ~var:v ~value:false)

let exists m pred f =
  let memo = Hashtbl.create 64 in
  let rec go f =
    if node_of f = 0 then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let v = var_of m f in
        let l = go (cof0 m f) and h = go (cof1 m f) in
        let r = if pred v then or_ m l h else mk m v l h in
        Hashtbl.add memo f r;
        r
  in
  go f

(* Relational product: exists-and in one pass, with the early cut-offs
   that make image computation cheap (a satisfied quantified branch
   collapses to [one] without exploring its sibling). *)
let and_exists m pred f g =
  let memo = Hashtbl.create 64 in
  let rec go f g =
    if f = zero || g = zero then zero
    else if f = one && g = one then one
    else if f = one then exists m pred g
    else if g = one then exists m pred f
    else if f = g then exists m pred f
    else if f = not_ g then zero
    else begin
      let f, g = if f <= g then (f, g) else (g, f) in
      match Hashtbl.find_opt memo (f, g) with
      | Some r -> r
      | None ->
        let v = min (var_of m f) (var_of m g) in
        let cof b e =
          if var_of m e = v then if b then cof1 m e else cof0 m e else e
        in
        let l = go (cof false f) (cof false g) in
        let r =
          if pred v then
            if l = one then one else or_ m l (go (cof true f) (cof true g))
          else mk m v l (go (cof true f) (cof true g))
        in
        Hashtbl.add memo (f, g) r;
        r
    end
  in
  go f g

let rename m map f =
  let memo = Hashtbl.create 64 in
  let rec go f =
    if node_of f = 0 then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let v = map (var_of m f) in
        let l = go (cof0 m f) and h = go (cof1 m f) in
        if v < 0 || v >= var_of m l || v >= var_of m h then
          invalid_arg "Bdd.rename: map must preserve the variable order";
        let r = mk m v l h in
        Hashtbl.add memo f r;
        r
  in
  go f

let rec eval m f env =
  if f = one then true
  else if f = zero then false
  else eval m (if env (var_of m f) then cof1 m f else cof0 m f) env

let support m f =
  let seen = Hashtbl.create 16 in
  let vars = Hashtbl.create 16 in
  let rec go f =
    let n = node_of f in
    if n <> 0 && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      Hashtbl.replace vars m.var.(n) ();
      go m.low.(n);
      go m.high.(n)
    end
  in
  go f;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let size m f =
  let seen = Hashtbl.create 64 in
  let rec go f =
    let n = node_of f in
    if n <> 0 && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      go m.low.(n);
      go m.high.(n)
    end
  in
  go f;
  Hashtbl.length seen

let check_support name m ~nvars f =
  List.iter
    (fun v ->
      if v >= nvars then
        invalid_arg
          (Printf.sprintf "Bdd.%s: support variable %d >= nvars %d" name v
             nvars))
    (support m f)

(* Counting: [node_count n p] is the satisfying-assignment count of the
   edge [(n, p)] over variables [var n .. nvars-1]; an edge at [level]
   scales by the skipped free variables.  Memoizing on (node, polarity)
   and pushing the complement bit into the children makes every value a
   sum of non-negative subcounts — never [2^k -. x], whose cancellation
   would corrupt small counts once both operands exceed 2^53.  So counts
   are exact up to 2^53 for any [nvars], and merely rounded (relative
   error only, never overflowed) beyond. *)
let sat_count m ~nvars f =
  check_support "sat_count" m ~nvars f;
  let memo = Hashtbl.create 64 in
  let rec node_count n p =
    match Hashtbl.find_opt memo ((n lsl 1) lor p) with
    | Some c -> c
    | None ->
      let v = m.var.(n) in
      let c =
        edge_count (m.low.(n) lxor p) (v + 1)
        +. edge_count (m.high.(n) lxor p) (v + 1)
      in
      Hashtbl.add memo ((n lsl 1) lor p) c;
      c
  and edge_count e level =
    let n = node_of e in
    if n = 0 then if is_compl e then 0.0 else ldexp 1.0 (nvars - level)
    else ldexp (node_count n (e land 1)) (m.var.(n) - level)
  in
  edge_count f 0

(* Same recursion in 63-bit integers; [nvars <= 61] guarantees every
   intermediate count (at most [2^nvars]) is representable. *)
let sat_count_int m ~nvars f =
  check_support "sat_count_int" m ~nvars f;
  if nvars > 61 then None
  else begin
    let memo = Hashtbl.create 64 in
    let rec node_count n =
      match Hashtbl.find_opt memo n with
      | Some c -> c
      | None ->
        let v = m.var.(n) in
        let c = edge_count m.low.(n) (v + 1) + edge_count m.high.(n) (v + 1) in
        Hashtbl.add memo n c;
        c
    and edge_count e level =
      let n = node_of e in
      let reg =
        if n = 0 then 1 lsl (nvars - level)
        else node_count n lsl (m.var.(n) - level)
      in
      if is_compl e then (1 lsl (nvars - level)) - reg else reg
    in
    Some (edge_count f 0)
  end

type stats = {
  nodes : int;
  unique_load : float;
  cache_lookups : int;
  cache_hits : int;
}

let stats m =
  let s = Hashtbl.stats m.unique in
  {
    nodes = m.n - 1;
    unique_load =
      float_of_int s.Hashtbl.num_bindings
      /. float_of_int (max 1 s.Hashtbl.num_buckets);
    cache_lookups = m.lookups;
    cache_hits = m.hits;
  }

let num_nodes m = m.n - 1
