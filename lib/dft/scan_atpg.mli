(** Scan-mode ATPG — why scan pays off.

    Runs PODEM phase A with the state as a free pseudo-input (exactly the
    sequential engines' excitation/propagation), but replaces sequential
    state justification with a shift-in sequence: any required state is
    reachable in [chain.length] cycles by construction, so the density of
    encoding — the attribute that defeats sequential justification on the
    paper's retimed circuits — becomes irrelevant.  Every test is
    validated by fault simulation of the scanned netlist. *)

(** Packed state code from a phase-A requirement cube (X and 0 map to 0);
    exact at any register count. *)
val state_code_of_cube : Sim.Value3.t array -> Sim.Statekey.t

val generate :
  ?config:Atpg.Types.config -> ?seed:int -> Scan.chain -> Atpg.Types.result
