(* Scan-mode ATPG: what makes scan pay off.

   On a scanned circuit, a sequential engine still treats the chain as
   ordinary logic and pays the full justification price (plus the mux
   overhead).  A scan-aware flow instead:

     1. finds excitation + propagation with the state treated as a free
        pseudo-input (PODEM phase A, exactly as the sequential engines);
     2. replaces state justification with a shift-in sequence — any state
        is reachable in [chain.length] cycles by construction;
     3. applies the forward vectors in functional mode and lets the fault
        simulator (ground truth) confirm detection, dropping other faults.

   Density of encoding becomes irrelevant: step 2 never fails. *)

let state_code_of_cube cube =
  Sim.Statekey.of_bools (Array.map (fun v -> v = Sim.Value3.One) cube)

(* Test sequence for a phase-A solution: shift in the required state, then
   play the forward frames' vectors (scan_enable deasserted by X-default). *)
let assemble_test (chain : Scan.chain) fr =
  let code = state_code_of_cube fr.Atpg.Frames.ps0 in
  let forward =
    List.init fr.Atpg.Frames.k (fun t ->
        Array.map
          (fun v ->
            match Sim.Value3.to_bool_opt v with Some b -> b | None -> false)
          fr.Atpg.Frames.pi.(t))
  in
  Scan.load_sequence chain code @ forward

let generate ?(config = Atpg.Types.scaled_config ()) ?(seed = 1)
    (chain : Scan.chain) =
  let cfg = config in
  let c = chain.Scan.circuit in
  let faults = Fsim.Collapse.list c in
  let n = Array.length faults in
  let status = Array.make n Fsim.Fault.Untested in
  let detected = Array.make n false in
  let stats = Atpg.Types.new_stats () in
  let test_sets = ref [] in
  let apply_fault_sim seq =
    let run = Fsim.Engine.simulate ~skip:detected c faults seq in
    stats.Atpg.Types.work <-
      stats.Atpg.Types.work + (List.length seq * Netlist.Node.num_gates c);
    Atpg.Run.note_run_states stats run;
    let newly = ref 0 in
    Array.iteri
      (fun i d ->
        if d && not detected.(i) then begin
          detected.(i) <- true;
          status.(i) <- Fsim.Fault.Detected;
          incr newly
        end)
      run.Fsim.Engine.detected;
    !newly
  in
  (* random phase: functional vectors with occasional shift bursts *)
  List.iter
    (fun seq -> if apply_fault_sim seq > 0 then test_sets := seq :: !test_sets)
    (Atpg.Run.random_sequences c ~seed ~count:2 ~length:120);
  (try
     Array.iteri
       (fun i fault ->
         if status.(i) = Fsim.Fault.Untested then begin
           if Atpg.Types.work_units stats > cfg.Atpg.Types.total_work_limit
           then raise Exit;
           let fstats = Atpg.Types.new_stats () in
           let fr =
             Atpg.Frames.create ~fault c ~frames:cfg.Atpg.Types.max_frames_fwd
               ~stats:fstats
           in
           let outcome =
             try
               match Atpg.Podem.phase_a fr fault cfg fstats with
               | Atpg.Podem.Detected -> Some (assemble_test chain fr)
               | Atpg.Podem.Exhausted { escape_seen = false } ->
                 status.(i) <- Fsim.Fault.Redundant;
                 None
               | Atpg.Podem.Exhausted { escape_seen = true } ->
                 status.(i) <- Fsim.Fault.Aborted;
                 None
             with Atpg.Podem.Out_of_budget ->
               status.(i) <- Fsim.Fault.Aborted;
               None
           in
           Atpg.Run.merge_stats ~into:stats fstats;
           (match outcome with
            | Some seq ->
              if apply_fault_sim seq > 0 then test_sets := seq :: !test_sets;
              if not detected.(i) then status.(i) <- Fsim.Fault.Aborted
            | None -> ())
         end)
       faults
   with Exit -> ());
  Array.iteri
    (fun i s ->
      if s = Fsim.Fault.Untested then status.(i) <- Fsim.Fault.Aborted)
    status;
  Atpg.Types.summarize faults status (List.rev !test_sets) stats
