(* Scan-chain insertion — the DFT answer to the paper's finding.  A scanned
   register is a mux in front of the DFF:

       D' = scan_enable ? scan_in : D

   with the scanned DFFs chained scan_in <- previous DFF's output and the
   last element observable at a new primary output.  Full scan makes every
   state bit controllable/observable, which collapses sequential ATPG to
   combinational-style search: the density of encoding stops mattering
   because any state can be shifted in.

   [insert] returns the scanned circuit plus a description used by the
   scan-aware test-application helpers. *)

type chain = {
  circuit : Netlist.Node.t;      (* the scanned circuit *)
  scan_enable : int;             (* PI index *)
  scan_in : int;                 (* PI index *)
  scanned : int array;           (* positions (dff order) included, chain order *)
  length : int;
}

(* Insert a scan chain over the DFFs at positions [positions] (default: all
   non-constant DFFs).  PIs gain scan_enable and scan_in (appended after the
   existing inputs); POs gain scan_out. *)
let insert ?positions c =
  let is_const = Retime.Graph.const_dffs c in
  let default =
    Array.to_list c.Netlist.Node.dffs
    |> List.mapi (fun j id -> (j, id))
    |> List.filter (fun (_, id) -> not is_const.(id))
    |> List.map fst
  in
  let positions =
    match positions with Some p -> p | None -> Array.of_list default
  in
  let b = Netlist.Build.create () in
  let new_id = Array.make (Netlist.Node.num_nodes c) (-1) in
  Array.iter
    (fun id ->
      new_id.(id) <-
        Netlist.Build.add_pi b (Netlist.Node.node c id).Netlist.Node.name)
    c.Netlist.Node.pis;
  let scan_enable_pi = Netlist.Node.num_pis c in
  let scan_in_pi = scan_enable_pi + 1 in
  let se = Netlist.Build.add_pi b "scan_enable" in
  let si = Netlist.Build.add_pi b "scan_in" in
  (* DFFs keep their order and inits *)
  Array.iter
    (fun id ->
      new_id.(id) <-
        Netlist.Build.add_dff b
          ~init:(Netlist.Node.dff_init c id)
          (Netlist.Node.node c id).Netlist.Node.name)
    c.Netlist.Node.dffs;
  (* gates in topological order *)
  Array.iter
    (fun id ->
      let nd = Netlist.Node.node c id in
      match nd.Netlist.Node.kind with
      | Netlist.Node.Gate fn ->
        new_id.(id) <-
          Netlist.Build.add_gate b fn nd.Netlist.Node.name
            (Array.map (fun f -> new_id.(f)) nd.Netlist.Node.fanins)
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ())
    c.Netlist.Node.order;
  (* connect DFF data inputs, muxing the scanned ones:
     D' = (D AND NOT se) OR (chain_in AND se) *)
  let inv_se = Netlist.Build.add_gate b Netlist.Node.Not "scan_ninv" [| se |] in
  let in_scan = Array.make (Netlist.Node.num_dffs c) false in
  Array.iter (fun p -> in_scan.(p) <- true) positions;
  let prev = ref si in
  let chain_order = ref [] in
  Array.iteri
    (fun j id ->
      let nd = Netlist.Node.node c id in
      let data = new_id.(nd.Netlist.Node.fanins.(0)) in
      if in_scan.(j) && not is_const.(id) then begin
        let name k = Printf.sprintf "scan_%s_%s" k nd.Netlist.Node.name in
        let a =
          Netlist.Build.add_gate b Netlist.Node.And (name "d")
            [| data; inv_se |]
        in
        let s2 =
          Netlist.Build.add_gate b Netlist.Node.And (name "s") [| !prev; se |]
        in
        let mux =
          Netlist.Build.add_gate b Netlist.Node.Or (name "m") [| a; s2 |]
        in
        Netlist.Build.connect_dff b new_id.(id) mux;
        prev := new_id.(id);
        chain_order := j :: !chain_order
      end
      else Netlist.Build.connect_dff b new_id.(id) data)
    c.Netlist.Node.dffs;
  Array.iter
    (fun (name, id) -> Netlist.Build.add_po b name new_id.(id))
    c.Netlist.Node.pos;
  Netlist.Build.add_po b "scan_out" !prev;
  let scanned = Array.of_list (List.rev !chain_order) in
  let circuit = Netlist.Build.finalize b in
  Netlist.Check.assert_ok circuit;
  {
    circuit;
    scan_enable = scan_enable_pi;
    scan_in = scan_in_pi;
    scanned;
    length = Array.length scanned;
  }

(* Input vector for the scanned circuit in functional mode. *)
let functional_vector chain v =
  let npi = Netlist.Node.num_pis chain.circuit in
  let out = Array.make npi false in
  Array.blit v 0 out 0 (Array.length v);
  out.(chain.scan_enable) <- false;
  out

(* Shift sequence loading [state_code] into the scanned bits (the last
   chain element is loaded first, so bits enter in reverse chain order). *)
let load_sequence chain state_code =
  List.init chain.length (fun t ->
      let npi = Netlist.Node.num_pis chain.circuit in
      let v = Array.make npi false in
      v.(chain.scan_enable) <- true;
      (* after L shifts, chain element k holds the bit shifted in at time
         L-1-k' ... we feed bits so that chain element i ends with bit of
         scanned.(i) *)
      let pos = chain.scanned.(chain.length - 1 - t) in
      v.(chain.scan_in) <- Sim.Statekey.bit state_code pos;
      v)

(* Full-scan test application for a combinationally-found test: shift in
   the required state, then apply one functional vector. *)
let apply_test chain ~state_code ~vector =
  load_sequence chain state_code @ [ functional_vector chain vector ]

(* Partial-scan selection: break register cycles with as few scanned DFFs
   as possible (greedy: repeatedly scan the DFF on the most cycles of the
   register graph, until the remaining graph is acyclic).  This is the
   classic cycle-breaking heuristic the paper's conclusions point toward. *)
let select_cycle_breaking c =
  let g = Analysis.Dffgraph.build c in
  let n = Analysis.Dffgraph.num_dffs g in
  let removed = Array.make n false in
  let has_cycle () =
    (* DFS for a cycle among non-removed vertices *)
    let color = Array.make n 0 in
    let rec visit v =
      if removed.(v) then false
      else if color.(v) = 1 then true
      else if color.(v) = 2 then false
      else begin
        color.(v) <- 1;
        let found = ref false in
        for w = 0 to n - 1 do
          if (not !found) && g.Analysis.Dffgraph.adj.(v).(w)
             && not removed.(w)
          then if visit w then found := true
        done;
        color.(v) <- 2;
        !found
      end
    in
    let any = ref false in
    for v = 0 to n - 1 do
      if (not !any) && not removed.(v) then if visit v then any := true
    done;
    !any
  in
  let degree v =
    let d = ref 0 in
    for w = 0 to n - 1 do
      if g.Analysis.Dffgraph.adj.(v).(w) && not removed.(w) then incr d;
      if g.Analysis.Dffgraph.adj.(w).(v) && not removed.(w) then incr d
    done;
    !d
  in
  let selected = ref [] in
  while has_cycle () do
    (* pick the non-removed vertex with the highest degree *)
    let best = ref (-1) and best_d = ref (-1) in
    for v = 0 to n - 1 do
      if not removed.(v) then begin
        let d = degree v in
        if d > !best_d then begin
          best_d := d;
          best := v
        end
      end
    done;
    removed.(!best) <- true;
    selected := !best :: !selected
  done;
  Array.of_list (List.rev !selected)
