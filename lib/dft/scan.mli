(** Scan-chain insertion — the DFT answer to the paper's finding that a
    sparse density of encoding cripples sequential ATPG.

    A scanned register gets a mux in front of its data pin
    ([D' = scan_enable ? scan_in : D]); the scanned registers are chained
    from a new [scan_in] input to a new [scan_out] output.  With (full)
    scan, any state can be shifted in and out: state justification — the
    phase that the diluted encoding defeats — disappears. *)

type chain = {
  circuit : Netlist.Node.t;  (** the scanned circuit *)
  scan_enable : int;         (** PI index of the scan-enable input *)
  scan_in : int;             (** PI index of the scan-data input *)
  scanned : int array;       (** DFF positions included, in chain order *)
  length : int;
}

(** Insert a scan chain.  [positions] selects DFF positions (state-vector
    order); the default scans every non-constant register (full scan).
    The functional PIs/POs keep their order; [scan_enable] and [scan_in]
    are appended, and [scan_out] becomes the last PO. *)
val insert : ?positions:int array -> Netlist.Node.t -> chain

(** Widen a functional input vector for the scanned circuit
    (scan_enable = 0). *)
val functional_vector : chain -> bool array -> bool array

(** Shift sequence loading [state_code] (packed DFF bit vector, exact at
    any width) into the scanned registers: exactly [chain.length] vectors
    with scan_enable held high. *)
val load_sequence : chain -> Sim.Statekey.t -> Sim.Vectors.sequence

(** Scan-mode test application: shift the excitation state in, then apply
    one functional vector. *)
val apply_test :
  chain -> state_code:Sim.Statekey.t -> vector:bool array ->
  Sim.Vectors.sequence

(** Partial-scan selection: greedily pick registers breaking all register
    cycles (highest-degree-first on the register graph).  Returns DFF
    positions for [insert ~positions]. *)
val select_cycle_breaking : Netlist.Node.t -> int array
