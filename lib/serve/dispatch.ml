(* Verb execution.  [plan] mirrors the CLI's validation so a request's
   config object admits exactly what the flags admit: engines hitec/
   attest/sest, jedi algorithms ji/jo/jc, scripts sr/sd, a positive
   finite budget scale (the per-request SATPG_BUDGET), the --learn and
   --prove-untestable switches, and so on — anything else is a
   bad_request naming the offending field.  Work is executed through
   Core.Cache with an explicit config built by the same recipe the CLI
   uses, so the fingerprint (Store.Key.config_fingerprint) and therefore
   the store record of a served run and a CLI run with equal budgets are
   identical. *)

type plan = {
  key : string option;
  run : unit -> ((string * Obs.Json.t) list, Protocol.error) result;
}

exception Bad of Protocol.error

let bad fmt =
  Printf.ksprintf
    (fun m -> raise (Bad (Protocol.error Protocol.Bad_request m)))
    fmt

(* ------------------------------------------------------- config parsing - *)

let check_keys ~verb allowed config =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then
        bad "config field %S is not valid for verb %s" k verb)
    config

let get name config = List.assoc_opt name config

let get_string name config =
  match get name config with
  | None -> None
  | Some (Obs.Json.String s) -> Some s
  | Some j ->
    bad "config.%s must be a string, got %s" name (Obs.Json.to_string j)

let get_bool ~default name config =
  match get name config with
  | None -> default
  | Some (Obs.Json.Bool b) -> b
  | Some j ->
    bad "config.%s must be a boolean, got %s" name (Obs.Json.to_string j)

let get_int name config =
  match get name config with
  | None -> None
  | Some (Obs.Json.Int i) -> Some i
  | Some j ->
    bad "config.%s must be an integer, got %s" name (Obs.Json.to_string j)

let get_float name config =
  match get name config with
  | None -> None
  | Some (Obs.Json.Float f) -> Some f
  | Some (Obs.Json.Int i) -> Some (float_of_int i)
  | Some j ->
    bad "config.%s must be a number, got %s" name (Obs.Json.to_string j)

let get_enum name pairs ~default config =
  match get_string name config with
  | None -> default
  | Some s ->
    (match List.assoc_opt s pairs with
     | Some v -> v
     | None ->
       bad "config.%s must be one of %s, got %S" name
         (String.concat "/" (List.map fst pairs))
         s)

let engine_of config =
  get_enum "engine"
    [
      ("hitec", Core.Cache.Hitec);
      ("attest", Core.Cache.Attest);
      ("sest", Core.Cache.Sest);
    ]
    ~default:Core.Cache.Hitec config

let algorithm_of_name name = function
  | "ji" -> Synth.Assign.Input_dominant
  | "jo" -> Synth.Assign.Output_dominant
  | "jc" -> Synth.Assign.Combined
  | s -> bad "%s must be one of ji/jo/jc, got %S" name s

let script_of_name name = function
  | "sr" -> Synth.Flow.Rugged
  | "sd" -> Synth.Flow.Delay
  | s -> bad "%s must be one of sr/sd, got %S" name s

(* The jobs field is validated like -J (a positive width) but execution
   always uses the server's own pool: PR 4's submission-order merge makes
   results bit-identical at any width, so the field cannot change an
   answer — rejecting nonsense anyway keeps client configs honest. *)
let check_jobs config =
  match get_int "jobs" config with
  | None -> ()
  | Some j when j >= 1 -> ()
  | Some j -> bad "config.jobs must be >= 1, got %d" j

(* --------------------------------------------------- circuit resolution - *)

let resolve_source ~verb ~config (req : Protocol.request) =
  let display default =
    match get_string "name" config with Some n -> n | None -> default
  in
  match req.Protocol.source with
  | None -> bad "verb %s needs a circuit" verb
  | Some (Protocol.Blif text) ->
    (match Netlist.Blif.parse_string text with
     | c ->
       let hash = Circuits.register ?name:(get_string "name" config) c in
       (display (String.sub hash 0 12), c, hash)
     | exception Netlist.Blif.Parse_error (line, msg) ->
       bad "BLIF parse error at line %d: %s" line msg
     | exception Netlist.Build.Combinational_cycle node ->
       bad "BLIF netlist has a combinational cycle through %s" node
     | exception Invalid_argument msg -> bad "BLIF netlist rejected: %s" msg)
  | Some (Protocol.Kiss text) ->
    let machine =
      match Fsm.Kiss.parse_string text with
      | m -> m
      | exception Failure msg -> bad "KISS2 parse error: %s" msg
      | exception Invalid_argument msg -> bad "KISS2 parse error: %s" msg
    in
    let algorithm =
      algorithm_of_name "config.algorithm"
        (Option.value ~default:"ji" (get_string "algorithm" config))
    in
    let script =
      script_of_name "config.script"
        (Option.value ~default:"sr" (get_string "script" config))
    in
    (match Synth.Flow.synthesize ~algorithm ~script machine with
     | r ->
       let hash =
         Circuits.register
           ?name:(get_string "name" config)
           r.Synth.Flow.circuit
       in
       (display r.Synth.Flow.name, r.Synth.Flow.circuit, hash)
     | exception Failure msg -> bad "synthesis failed: %s" msg
     | exception Invalid_argument msg -> bad "synthesis failed: %s" msg)
  | Some (Protocol.Hash h) ->
    (match Circuits.find h with
     | Some c -> (display (String.sub h 0 (min 12 (String.length h))), c, h)
     | None ->
       raise
         (Bad
            (Protocol.error Protocol.Not_found
               (Printf.sprintf
                  "no circuit registered under structural hash %S" h))))
  | Some (Protocol.Bench { fsm; algorithm; script; retimed }) ->
    let algorithm = algorithm_of_name "circuit.algorithm" algorithm in
    let script = script_of_name "circuit.script" script in
    (match Core.Flow.pair fsm algorithm script with
     | p ->
       let name =
         p.Core.Flow.name ^ if retimed then ".re" else ""
       in
       let c =
         if retimed then p.Core.Flow.retimed else p.Core.Flow.original
       in
       let hash = Circuits.register ~name c in
       (display name, c, hash)
     | exception (Not_found | Failure _) ->
       bad "unknown benchmark FSM %S (see `satpg synth --help`)" fsm
     | exception Invalid_argument msg -> bad "benchmark rejected: %s" msg)

(* ------------------------------------------------------------ manifests - *)

(* Per-request provenance: content-addressed over the work's identity
   (command, circuit hash, config fingerprint, work units), never over
   wall clock or cache temperature — so the N responses of a coalesced
   group and a later cache hit of the same request all carry the same
   manifest id.  That equality is what `bench serve` asserts to prove
   computations are not duplicated. *)
let manifest ~command ?circuit ?circuit_hash ?config_fp ?engine ~budget
    ~work_units () =
  let budget =
    match budget with
    | Some f -> Printf.sprintf "%g" f
    | None -> (match Sys.getenv_opt "SATPG_BUDGET" with Some s -> s | None -> "")
  in
  let m =
    Obs.Ledger.make ~tool:"satpg-serve" ~command ?circuit ?circuit_hash
      ?config_fp ?engine ~jobs:(Exec.Pool.jobs ()) ~budget ~work_units
      ~metrics:(Obs.Json.Obj []) ~spans:[] ~event_lines:[] ()
  in
  if Store.Disk.enabled () then
    ignore
      (Store.Disk.save Store.Disk.Manifest ~key:(Obs.Ledger.id m)
         ~name:("serve-" ^ command)
         (Store.Codec.manifest_to_json m));
  m

let provenance m =
  [
    ("manifest", Obs.Json.String (Obs.Ledger.id m));
    ("config_fp", Obs.Json.String (Obs.Ledger.config_fp m));
  ]

let cache_field () =
  ( "cache",
    Obs.Json.String (Core.Cache.outcome_string (Core.Cache.last_outcome ())) )

(* ----------------------------------------------------------------- atpg - *)

let atpg_env_config = function
  | Core.Cache.Hitec -> Atpg.Hitec.config ()
  | Core.Cache.Sest -> Atpg.Sest.config ()
  | Core.Cache.Attest -> Atpg.Types.scaled_config ()

(* The request-budget path reproduces the engine recipes
   (Atpg.Hitec.config etc.) with the scale taken from the request instead
   of SATPG_BUDGET; with no budget field the env path is used verbatim. *)
let atpg_request_config ~engine ~budget =
  match budget with
  | None -> atpg_env_config engine
  | Some f ->
    let base =
      match engine with
      | Core.Cache.Hitec ->
        { Atpg.Types.default_config with Atpg.Types.learn = false }
      | Core.Cache.Sest ->
        { Atpg.Types.default_config with Atpg.Types.learn = true }
      | Core.Cache.Attest -> Atpg.Types.default_config
    in
    let base =
      if Atpg.Types.env_struct_learn () then
        { base with Atpg.Types.struct_learn = true }
      else base
    in
    Atpg.Types.scale_budgets base f

(* Mirror of the overrides Core.Cache.atpg applies on top of the config,
   so the key/fingerprint computed here for coalescing equals the one the
   cache computes internally. *)
let atpg_effective_config ~engine ~learn config =
  let config =
    match learn with
    | None -> config
    | Some b -> { config with Atpg.Types.struct_learn = b }
  in
  match engine with
  | Core.Cache.Attest -> { config with Atpg.Types.struct_learn = false }
  | Core.Cache.Hitec | Core.Cache.Sest -> config

let plan_atpg ~config ~name ~circuit ~hash =
  let engine = engine_of config in
  let budget = get_float "budget" config in
  let learn =
    match get "learn" config with
    | None -> None
    | Some (Obs.Json.Bool b) -> Some b
    | Some j ->
      bad "config.learn must be a boolean, got %s" (Obs.Json.to_string j)
  in
  let prove = get_bool ~default:false "prove_untestable" config in
  let request_config = atpg_request_config ~engine ~budget in
  let effective = atpg_effective_config ~engine ~learn request_config in
  let classify_fp =
    if not prove then None
    else
      Some
        (Store.Key.classify_fingerprint ~symbolic:true
           ~max_nodes:Analysis.Symreach.default_max_nodes ~product:true
           ~universe:"collapsed")
  in
  let key =
    Store.Key.atpg
      ~engine:(Core.Cache.atpg_kind_name engine)
      ~config:effective ?classify:classify_fp ~circuit_hash:hash ()
  in
  let run () =
    let r =
      match budget with
      | None ->
        Core.Cache.atpg ~prove_untestable:prove ?struct_learn:learn engine
          ~name circuit
      | Some _ ->
        Core.Cache.atpg ~prove_untestable:prove ?struct_learn:learn
          ~config:request_config engine ~name circuit
    in
    let cache = cache_field () in
    let m =
      manifest ~command:"atpg" ~circuit:name ~circuit_hash:hash
        ~config_fp:(Store.Key.config_fingerprint effective)
        ~engine:(Core.Cache.atpg_kind_name engine)
        ~budget
        ~work_units:(Atpg.Types.work_units r.Atpg.Types.stats)
        ()
    in
    Ok
      ([
         ("verb", Obs.Json.String "atpg");
         ("circuit", Obs.Json.String name);
         ("circuit_hash", Obs.Json.String hash);
         ("engine", Obs.Json.String (Core.Cache.atpg_kind_name engine));
         cache;
       ]
      @ provenance m
      @ [ ("result", Atpg.Types.result_to_json r) ])
  in
  { key = Some ("atpg:" ^ key); run }

(* ---------------------------------------------------------------- reach - *)

let plan_reach ~config ~name ~circuit ~hash =
  let mode =
    get_enum "mode"
      [ ("auto", `Auto); ("explicit", `Explicit); ("symbolic", `Symbolic) ]
      ~default:`Auto config
  in
  let mode =
    match mode with
    | `Auto -> if Analysis.Reach.feasible circuit then `Explicit else `Symbolic
    | (`Explicit | `Symbolic) as m -> m
  in
  let common r_fields fp work_units =
    let cache = cache_field () in
    let m =
      manifest ~command:"reach" ~circuit:name ~circuit_hash:hash ~config_fp:fp
        ~budget:None ~work_units ()
    in
    Ok
      ([
         ("verb", Obs.Json.String "reach");
         ("circuit", Obs.Json.String name);
         ("circuit_hash", Obs.Json.String hash);
         cache;
       ]
      @ provenance m @ r_fields)
  in
  match mode with
  | `Explicit ->
    let max_states = Analysis.Reach.default_max_states in
    let key = "reach:" ^ Store.Key.reach ~max_states ~circuit_hash:hash in
    let run () =
      match Core.Cache.reach ~name circuit with
      | r ->
        common
          [
            ("mode", Obs.Json.String "explicit");
            ("dffs", Obs.Json.Int r.Analysis.Reach.total_bits);
            ("valid_states", Obs.Json.Int r.Analysis.Reach.valid_states);
            ( "total_states",
              Obs.Json.Float (Analysis.Reach.total_states r) );
            ("density", Obs.Json.Float (Analysis.Reach.density r));
          ]
          (Store.Key.reach_fingerprint ~max_states)
          0
      | exception Invalid_argument msg ->
        Error (Protocol.error Protocol.Bad_request msg)
    in
    { key = Some key; run }
  | `Symbolic ->
    let max_nodes = Analysis.Symreach.default_max_nodes in
    let key = "symreach:" ^ Store.Key.symreach ~max_nodes ~circuit_hash:hash in
    let run () =
      match Core.Cache.symreach ~name circuit with
      | s ->
        common
          [
            ("mode", Obs.Json.String "symbolic");
            ("dffs", Obs.Json.Int s.Analysis.Symreach.total_bits);
            ( "valid_states",
              Obs.Json.Float s.Analysis.Symreach.valid_states );
            ( "total_states",
              Obs.Json.Float (Analysis.Symreach.total_states s) );
            ("density", Obs.Json.Float (Analysis.Symreach.density s));
            ("depth", Obs.Json.Int s.Analysis.Symreach.depth);
            ("bdd_nodes", Obs.Json.Int s.Analysis.Symreach.bdd_nodes);
          ]
          (Store.Key.symreach_fingerprint ~max_nodes)
          0
      | exception Bdd.Node_limit ->
        Error
          (Protocol.error Protocol.Bad_request
             (Printf.sprintf
                "BDD node budget (%d) exhausted during symbolic reachability"
                max_nodes))
    in
    { key = Some key; run }

(* ------------------------------------------------------------- classify - *)

let plan_classify ~config ~name ~circuit ~hash =
  let symbolic = get_bool ~default:true "symbolic" config in
  let product = get_bool ~default:false "product" config in
  let universe =
    get_enum "universe"
      [
        ("collapsed", Core.Cache.Collapsed); ("invariant", Core.Cache.Invariant);
      ]
      ~default:Core.Cache.Collapsed config
  in
  let max_nodes = Analysis.Symreach.default_max_nodes in
  let key =
    "classify:"
    ^ Store.Key.classify ~symbolic ~max_nodes ~product
        ~universe:(Core.Cache.universe_name universe)
        ~circuit_hash:hash
  in
  let run () =
    let t = Core.Cache.classify ~symbolic ~product ~universe ~name circuit in
    let s = t.Analysis.Untest.summary in
    let cache = cache_field () in
    let m =
      manifest ~command:"classify" ~circuit:name ~circuit_hash:hash
        ~config_fp:
          (Store.Key.classify_fingerprint ~symbolic ~max_nodes ~product
             ~universe:(Core.Cache.universe_name universe))
        ~budget:None ~work_units:s.Analysis.Untest.work ()
    in
    Ok
      ([
         ("verb", Obs.Json.String "classify");
         ("circuit", Obs.Json.String name);
         ("circuit_hash", Obs.Json.String hash);
         ("universe", Obs.Json.String (Core.Cache.universe_name universe));
         cache;
       ]
      @ provenance m
      @ [
          ("faults", Obs.Json.Int s.Analysis.Untest.total);
          ("proved_untestable", Obs.Json.Int s.Analysis.Untest.proved);
          ("structural", Obs.Json.Int s.Analysis.Untest.structural);
          ("ternary", Obs.Json.Int s.Analysis.Untest.ternary);
          ("symbolic", Obs.Json.Int s.Analysis.Untest.symbolic);
          ("symbolic_ran", Obs.Json.Bool s.Analysis.Untest.symbolic_ran);
          ("bdd_nodes", Obs.Json.Int s.Analysis.Untest.bdd_nodes);
          ("work_units", Obs.Json.Int s.Analysis.Untest.work);
        ])
  in
  { key = Some key; run }

(* ----------------------------------------------------------------- lint - *)

let plan_lint ~config ~name ~circuit ~hash =
  let symbolic = get_bool ~default:true "symbolic" config in
  let key = Printf.sprintf "lint:%s:%b" hash symbolic in
  let run () =
    let oracle =
      if not symbolic then None
      else
        match Analysis.Symreach.explore circuit with
        | r ->
          Some
            {
              Lint.Netlist_rules.can_take =
                (fun node value -> Analysis.Symreach.can_take r node value);
              max_nodes = Analysis.Symreach.default_max_nodes;
              bdd_nodes =
                r.Analysis.Symreach.summary.Analysis.Symreach.bdd_nodes;
            }
        | exception (Bdd.Node_limit | Invalid_argument _) -> None
    in
    Core.Cache.note_bypass ();
    let s = Lint.Report.lint_netlist ?oracle circuit in
    let cache = cache_field () in
    let m =
      manifest ~command:"lint" ~circuit:name ~circuit_hash:hash ~budget:None
        ~work_units:0 ()
    in
    Ok
      ([
         ("verb", Obs.Json.String "lint");
         ("circuit", Obs.Json.String name);
         ("circuit_hash", Obs.Json.String hash);
         cache;
       ]
      @ provenance m
      @ [
          ("errors", Obs.Json.Bool (Lint.Diag.has_errors s.Lint.Report.diags));
          ("report", Lint.Report.netlist_to_json ~name circuit s);
        ])
  in
  { key = Some key; run }

(* --------------------------------------------------------------- tables - *)

let plan_tables ~config =
  let which =
    match get_string "table" config with
    | None -> "shape"
    | Some s
      when List.mem s
             [ "1"; "2"; "3"; "4"; "5"; "6"; "7"; "8"; "fig3"; "shape"; "all" ]
      -> s
    | Some s -> bad "config.table must be 1-8, fig3, shape or all, got %S" s
  in
  let env_budget =
    match Sys.getenv_opt "SATPG_BUDGET" with Some s -> s | None -> ""
  in
  let key = Printf.sprintf "tables:%s:%s" which env_budget in
  let run () =
    let text =
      Format.asprintf "%t" (fun ppf ->
          match which with
          | "1" -> Core.Tables.T1.pp ppf (Core.Tables.T1.compute ())
          | "2" -> Core.Tables.T2.pp ppf (Core.Tables.T2.compute ())
          | "3" -> Core.Tables.T3.pp ppf (Core.Tables.T3.compute ())
          | "4" -> Core.Tables.T4.pp ppf (Core.Tables.T4.compute ())
          | "5" -> Core.Tables.T5.pp ppf (Core.Tables.T5.compute ())
          | "6" -> Core.Tables.T6.pp ppf (Core.Tables.T6.compute ())
          | "7" -> Core.Tables.T7.pp ppf (Core.Tables.T7.compute ())
          | "8" -> Core.Tables.T8.pp ppf (Core.Tables.T8.compute ())
          | "fig3" -> Core.Figure3.pp ppf (Core.Figure3.compute ())
          | "shape" -> Core.Report.pp_shape_checks ppf ()
          | "all" ->
            Core.Report.run_all ppf ();
            Core.Report.pp_shape_checks ppf ()
          | _ -> assert false)
    in
    let checks_ok =
      match which with
      | "shape" | "all" ->
        [
          ( "checks_ok",
            Obs.Json.Bool
              (List.for_all snd (Core.Report.shape_checks ())) );
        ]
      | _ -> []
    in
    let m = manifest ~command:"tables" ~circuit:which ~budget:None
        ~work_units:0 () in
    Ok
      ([
         ("verb", Obs.Json.String "tables");
         ("table", Obs.Json.String which);
         cache_field ();
       ]
      @ provenance m @ checks_ok
      @ [ ("text", Obs.Json.String text) ])
  in
  { key = Some key; run }

(* ----------------------------------------------------------------- fsim - *)

let plan_fsim ~config ~name ~circuit ~hash =
  let vectors =
    match get_int "vectors" config with
    | None -> 1024
    | Some v when v >= 1 && v <= 5_000_000 -> v
    | Some v -> bad "config.vectors must be in [1, 5000000], got %d" v
  in
  let seed =
    match get_int "seed" config with
    | None -> 1
    | Some s when s >= 0 -> s
    | Some s -> bad "config.seed must be >= 0, got %d" s
  in
  let key = Printf.sprintf "fsim:%s:%d:%d" hash vectors seed in
  let run () =
    let faults = Fsim.Collapse.list circuit in
    let rng = Random.State.make [| seed; 0x5a7f |] in
    let seq =
      Sim.Vectors.random_sequence rng
        ~width:(Netlist.Node.num_pis circuit)
        ~length:vectors
    in
    Core.Cache.note_bypass ();
    let r = Fsim.Engine.simulate circuit faults seq in
    let detected =
      Array.fold_left (fun a d -> if d then a + 1 else a) 0 r.Fsim.Engine.detected
    in
    let cache = cache_field () in
    let m =
      manifest ~command:"fsim" ~circuit:name ~circuit_hash:hash ~budget:None
        ~work_units:r.Fsim.Engine.sim_cycles ()
    in
    Ok
      ([
         ("verb", Obs.Json.String "fsim");
         ("circuit", Obs.Json.String name);
         ("circuit_hash", Obs.Json.String hash);
         cache;
       ]
      @ provenance m
      @ [
          ("faults", Obs.Json.Int (Array.length faults));
          ("detected", Obs.Json.Int detected);
          ( "coverage_percent",
            Obs.Json.Float
              (Fsim.Engine.coverage ~detected ~total:(Array.length faults)) );
          ("vectors", Obs.Json.Int vectors);
          ("seed", Obs.Json.Int seed);
          ("cycles", Obs.Json.Int r.Fsim.Engine.cycles);
          ("sim_cycles", Obs.Json.Int r.Fsim.Engine.sim_cycles);
        ])
  in
  { key = Some key; run }

(* ---------------------------------------------------------------- stats - *)

let count name = Obs.Metrics.count (Obs.Metrics.counter name)

let stats_fields () =
  let cache_counters =
    List.map
      (fun short -> (short, Obs.Json.Int (count ("core.cache." ^ short))))
      [
        "hits"; "misses"; "bypasses"; "disk_hits"; "disk_misses";
        "disk_writes"; "disk_errors";
      ]
  in
  let serve_counters =
    List.map
      (fun short -> (short, Obs.Json.Int (count ("serve." ^ short))))
      [
        "requests"; "responses"; "errors"; "overloaded"; "coalesced";
        "batches"; "http_requests";
      ]
  in
  let store =
    if not (Store.Disk.enabled ()) then Obs.Json.Null
    else
      Obs.Json.Obj
        (List.map
           (fun (kind, n, bytes) ->
             ( Store.Disk.kind_name kind,
               Obs.Json.Obj
                 [ ("records", Obs.Json.Int n); ("bytes", Obs.Json.Int bytes) ]
             ))
           (Store.Disk.stats ()))
  in
  [
    ("verb", Obs.Json.String "stats");
    ("serve", Obs.Json.Obj serve_counters);
    ( "in_flight",
      Obs.Json.Int
        (int_of_float (Obs.Metrics.value (Obs.Metrics.gauge "serve.in_flight")))
    );
    ("cache", Obs.Json.Obj cache_counters);
    ("circuits", Obs.Json.Int (Circuits.count ()));
    ("jobs", Obs.Json.Int (Exec.Pool.jobs ()));
    ("store", store);
  ]

(* ----------------------------------------------------------------- plan - *)

let plan (req : Protocol.request) =
  let verb = Protocol.verb_name req.Protocol.verb in
  let config = req.Protocol.config in
  try
    let with_circuit allowed k =
      check_keys ~verb
        ([ "name" ] @ allowed @ [ "algorithm"; "script" ])
        config;
      check_jobs config;
      let name, circuit, hash = resolve_source ~verb ~config req in
      k ~name ~circuit ~hash
    in
    match req.Protocol.verb with
    | Protocol.Atpg ->
      Ok
        (with_circuit
           [ "engine"; "budget"; "learn"; "prove_untestable"; "jobs" ]
           (plan_atpg ~config))
    | Protocol.Reach ->
      Ok (with_circuit [ "mode"; "jobs" ] (plan_reach ~config))
    | Protocol.Classify ->
      Ok
        (with_circuit
           [ "symbolic"; "product"; "universe"; "jobs" ]
           (plan_classify ~config))
    | Protocol.Lint -> Ok (with_circuit [ "symbolic" ] (plan_lint ~config))
    | Protocol.Fsim ->
      Ok (with_circuit [ "vectors"; "seed"; "jobs" ] (plan_fsim ~config))
    | Protocol.Tables ->
      check_keys ~verb [ "table"; "jobs" ] config;
      check_jobs config;
      if req.Protocol.source <> None then
        bad "verb tables takes no circuit (it runs the study pairs)";
      Ok (plan_tables ~config)
    | Protocol.Stats ->
      check_keys ~verb [] config;
      Ok { key = None; run = (fun () -> Ok (stats_fields ())) }
    | Protocol.Shutdown ->
      Error
        (Protocol.error Protocol.Internal_error
           "shutdown must be handled by the connection layer")
  with
  | Bad e -> Error e
  | Invalid_argument msg -> Error (Protocol.error Protocol.Bad_request msg)
  | e ->
    Error
      (Protocol.error Protocol.Internal_error
         ("planning failed: " ^ Printexc.to_string e))
