(** Batch coalescing: group items by compute key.

    The dispatcher drains a batch from the admission queue and groups
    the requests by their cache key before touching the domain pool, so
    N concurrent identical requests cost one computation and produce N
    responses.  Pure and order-preserving — the groups appear in
    first-arrival order, and the items inside a group keep their arrival
    order — so responses stay deterministic. *)

type 'a group = {
  key : string option;  (** [None] groups are always singletons *)
  items : 'a list;      (** in arrival order, never empty *)
}

(** [group_by key items] partitions [items]; items whose [key] is [None]
    never merge with anything. *)
val group_by : ('a -> string option) -> 'a list -> 'a group list

(** Requests saved by coalescing: keyed items minus keyed groups. *)
val saved : 'a group list -> int
