(** The long-lived `satpg serve` daemon.

    Listens on a loopback TCP port and/or a Unix-domain socket.  Each
    connection speaks the line-delimited JSON protocol ({!Protocol});
    a connection whose first line starts with [GET ] is answered as
    HTTP/1.1 instead ([/metrics] Prometheus text, [/healthz]), then
    closed.

    Architecture: one reader thread per connection decodes lines and
    pushes compute requests into a bounded admission queue
    ({!Exec.Bqueue}) — a full queue answers a structured [overloaded]
    error immediately, so overload degrades to fast failures instead of
    unbounded latency.  A single dispatcher thread drains the queue in
    batches, coalesces identical cache keys ({!Coalesce}), and executes
    the unique computations on the {!Exec.Pool} domain pool; every
    member of a coalesced group gets its own response (same manifest
    id).  [stats] and [shutdown] bypass the queue.  The {!Core.Cache}
    memory layer stays hot across requests — the server is a global
    memo table over structural hashes. *)

type config = {
  port : int option;       (** TCP listener on 127.0.0.1 *)
  unix_path : string option;  (** Unix-domain socket path *)
  queue_depth : int;       (** admission queue bound (default 64) *)
  batch_max : int;         (** max requests coalesced per batch (default 32) *)
}

(** No listeners configured — callers must pick at least one. *)
val default_config : config

type t

(** Bind listeners and spawn the accept/dispatch threads; returns
    immediately.  Ignores [SIGPIPE] process-wide (socket writes must
    fail with [EPIPE], not kill the server).
    @raise Invalid_argument on a config without listeners or with
    non-positive depths; [Unix.Unix_error] when binding fails. *)
val start : config -> t

(** Request shutdown: stop accepting, drain the queue, answer what was
    admitted, then close every connection.  Idempotent; non-blocking.
    (The [shutdown] verb calls this.) *)
val stop : t -> unit

(** Block until the server has fully shut down and every thread is
    joined. *)
val wait : t -> unit

(** [start] then [wait]. *)
val run : config -> unit
