(* Request/response codec.  The decoder is deliberately paranoid: every
   failure mode of a hostile or buggy client — binary garbage, a
   megabyte of 'a's, an empty line, a JSON array, an unknown verb, two
   circuit sources at once — maps to a structured error result.  Nothing
   in here raises (tested with random byte strings), because the
   connection loop treats a decode error as a one-line answer, not a
   reason to drop the connection. *)

type verb = Atpg | Reach | Classify | Lint | Tables | Fsim | Stats | Shutdown

let verb_name = function
  | Atpg -> "atpg"
  | Reach -> "reach"
  | Classify -> "classify"
  | Lint -> "lint"
  | Tables -> "tables"
  | Fsim -> "fsim"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let verb_of_name = function
  | "atpg" -> Some Atpg
  | "reach" -> Some Reach
  | "classify" -> Some Classify
  | "lint" -> Some Lint
  | "tables" -> Some Tables
  | "fsim" -> Some Fsim
  | "stats" -> Some Stats
  | "shutdown" -> Some Shutdown
  | _ -> None

type source =
  | Blif of string
  | Kiss of string
  | Hash of string
  | Bench of {
      fsm : string;
      algorithm : string;
      script : string;
      retimed : bool;
    }

type request = {
  id : string option;
  verb : verb;
  source : source option;
  config : (string * Obs.Json.t) list;
}

type error_code =
  | Parse_error
  | Empty
  | Oversized
  | Bad_request
  | Not_found
  | Overloaded
  | Shutting_down
  | Internal_error

let error_code_name = function
  | Parse_error -> "parse_error"
  | Empty -> "empty"
  | Oversized -> "oversized"
  | Bad_request -> "bad_request"
  | Not_found -> "not_found"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"
  | Internal_error -> "internal_error"

type error = { code : error_code; message : string }

let error code message = { code; message }

let max_line_bytes = 8 * 1024 * 1024

(* local shorthand for "reject with bad_request" during decoding *)
exception Reject of error

let reject code fmt = Printf.ksprintf (fun m -> raise (Reject (error code m))) fmt

let as_string what = function
  | Obs.Json.String s -> s
  | j ->
    reject Bad_request "%s must be a JSON string, got %s" what
      (Obs.Json.to_string j)

let as_bool what = function
  | Obs.Json.Bool b -> b
  | j ->
    reject Bad_request "%s must be a JSON boolean, got %s" what
      (Obs.Json.to_string j)

let decode_source j =
  match j with
  | Obs.Json.Obj fields ->
    let pick name = List.assoc_opt name fields in
    let known =
      [ "blif"; "kiss2"; "hash"; "bench"; "algorithm"; "script"; "retimed" ]
    in
    List.iter
      (fun (k, _) ->
        if not (List.mem k known) then
          reject Bad_request "unknown circuit field %S" k)
      fields;
    let sources =
      List.filter_map
        (fun name -> Option.map (fun v -> (name, v)) (pick name))
        [ "blif"; "kiss2"; "hash"; "bench" ]
    in
    (match sources with
     | [] ->
       reject Bad_request
         "circuit object needs exactly one of blif/kiss2/hash/bench"
     | _ :: _ :: _ ->
       reject Bad_request "circuit object has more than one source"
     | [ ("blif", v) ] -> Blif (as_string "circuit.blif" v)
     | [ ("kiss2", v) ] -> Kiss (as_string "circuit.kiss2" v)
     | [ ("hash", v) ] -> Hash (as_string "circuit.hash" v)
     | [ ("bench", v) ] ->
       let fsm = as_string "circuit.bench" v in
       let str_or name default =
         match pick name with
         | None -> default
         | Some v -> as_string ("circuit." ^ name) v
       in
       let retimed =
         match pick "retimed" with
         | None -> false
         | Some v -> as_bool "circuit.retimed" v
       in
       Bench
         {
           fsm;
           algorithm = str_or "algorithm" "ji";
           script = str_or "script" "sr";
           retimed;
         }
     | [ _ ] -> assert false)
  | j ->
    reject Bad_request "circuit must be a JSON object, got %s"
      (Obs.Json.to_string j)

let is_blank line = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') line

let decode_request line =
  if String.length line > max_line_bytes then
    Error
      (error Oversized
         (Printf.sprintf "request line of %d bytes exceeds the %d-byte cap"
            (String.length line) max_line_bytes))
  else if is_blank line then Error (error Empty "empty request line")
  else
    match Obs.Json.parse line with
    | exception Obs.Json.Parse_error msg ->
      Error (error Parse_error ("request is not valid JSON: " ^ msg))
    | exception _ -> Error (error Parse_error "request is not valid JSON")
    | json ->
      (try
         let fields =
           match json with
           | Obs.Json.Obj fields -> fields
           | _ -> reject Bad_request "request must be a JSON object"
         in
         let pick name = List.assoc_opt name fields in
         List.iter
           (fun (k, _) ->
             if not (List.mem k [ "id"; "verb"; "circuit"; "config" ]) then
               reject Bad_request "unknown request field %S" k)
           fields;
         let id =
           match pick "id" with
           | None -> None
           | Some (Obs.Json.String s) -> Some s
           | Some (Obs.Json.Int i) -> Some (string_of_int i)
           | Some j ->
             reject Bad_request "id must be a string or integer, got %s"
               (Obs.Json.to_string j)
         in
         let verb =
           match pick "verb" with
           | None -> reject Bad_request "request is missing the verb field"
           | Some (Obs.Json.String s) ->
             (match verb_of_name s with
              | Some v -> v
              | None -> reject Bad_request "unknown verb %S" s)
           | Some j ->
             reject Bad_request "verb must be a string, got %s"
               (Obs.Json.to_string j)
         in
         let source = Option.map decode_source (pick "circuit") in
         let config =
           match pick "config" with
           | None -> []
           | Some (Obs.Json.Obj fields) -> fields
           | Some j ->
             reject Bad_request "config must be a JSON object, got %s"
               (Obs.Json.to_string j)
         in
         Ok { id; verb; source; config }
       with
       | Reject e -> Error e
       | e ->
         Error
           (error Internal_error
              ("unexpected decoder failure: " ^ Printexc.to_string e)))

let id_field = function
  | None -> []
  | Some id -> [ ("id", Obs.Json.String id) ]

let encode_response ~id fields =
  Obs.Json.to_string
    (Obs.Json.Obj (id_field id @ (("ok", Obs.Json.Bool true) :: fields)))

let encode_error ~id e =
  Obs.Json.to_string
    (Obs.Json.Obj
       (id_field id
       @ [
           ("ok", Obs.Json.Bool false);
           ( "error",
             Obs.Json.Obj
               [
                 ("code", Obs.Json.String (error_code_name e.code));
                 ("message", Obs.Json.String e.message);
               ] );
         ]))
