(* Connection loop, admission control and the batching dispatcher.

   Threading model: systhreads for I/O (one reader per connection, one
   acceptor per listener, one dispatcher), OCaml domains (Exec.Pool) for
   compute.  The dispatcher is deliberately single: batches execute
   sequentially, so two lookups of one cache key can never race — a
   batch coalesces identical keys into one computation, and a later
   batch finds the first batch's result already cached.  Combined these
   give the "compute exactly once" property `bench serve` asserts.

   Connection lifetime: a reader that reaches EOF must not close its fd
   while the dispatcher still owes responses to queued requests (an fd
   closed early could be reused by the kernel and the response would go
   to a stranger).  Each connection counts its in-queue requests
   ([pending]); whoever brings the count to zero after EOF closes. *)

let requests = Obs.Metrics.counter "serve.requests"
let responses = Obs.Metrics.counter "serve.responses"
let errors = Obs.Metrics.counter "serve.errors"
let overloaded = Obs.Metrics.counter "serve.overloaded"
let coalesced = Obs.Metrics.counter "serve.coalesced"
let batches = Obs.Metrics.counter "serve.batches"
let http_requests = Obs.Metrics.counter "serve.http_requests"
let batch_size = Obs.Metrics.histogram "serve.batch_size"
let queue_len = Obs.Metrics.gauge "serve.queue_len"
let in_flight = Obs.Metrics.gauge "serve.in_flight"

type config = {
  port : int option;
  unix_path : string option;
  queue_depth : int;
  batch_max : int;
}

let default_config =
  { port = None; unix_path = None; queue_depth = 64; batch_max = 32 }

type conn = {
  fd : Unix.file_descr;
  out_mu : Mutex.t;
  mu : Mutex.t;
  mutable pending : int;  (* queued requests awaiting a response *)
  mutable eof : bool;     (* reader thread is done with this fd *)
  mutable closed : bool;
}

type t = {
  cfg : config;
  queue : (Protocol.request * conn) Exec.Bqueue.t;
  stopping : bool Atomic.t;
  listeners : (Unix.file_descr * string option) list;
      (* fd, unix path to unlink on shutdown *)
  conns_mu : Mutex.t;
  mutable conns : (conn * Thread.t) list;
  mutable acceptors : Thread.t list;
  mutable dispatcher : unit Domain.t option;
}

(* ------------------------------------------------------------- plumbing - *)

let close_fd conn =
  (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* Reader is done: close now unless responses are still owed. *)
let conn_eof conn =
  Mutex.protect conn.mu (fun () ->
      conn.eof <- true;
      if conn.pending = 0 && not conn.closed then begin
        conn.closed <- true;
        close_fd conn
      end)

let conn_acquire conn =
  Mutex.protect conn.mu (fun () -> conn.pending <- conn.pending + 1)

let conn_release conn =
  Mutex.protect conn.mu (fun () ->
      conn.pending <- conn.pending - 1;
      if conn.eof && conn.pending = 0 && not conn.closed then begin
        conn.closed <- true;
        close_fd conn
      end)

(* Shutdown path: wake a reader blocked in [read] and close. *)
let conn_force_close conn =
  Mutex.protect conn.mu (fun () ->
      if not conn.closed then begin
        conn.closed <- true;
        close_fd conn
      end)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* One response line.  A dead peer (EPIPE/EBADF/...) is not an error the
   server can do anything about — the write is simply dropped. *)
let send conn line =
  Mutex.protect conn.out_mu (fun () ->
      try write_all conn.fd (line ^ "\n") with Unix.Unix_error _ -> ())

let send_raw conn s =
  Mutex.protect conn.out_mu (fun () ->
      try write_all conn.fd s with Unix.Unix_error _ -> ())

(* ------------------------------------------------------ bounded reader - *)

(* Newline-framed reads with the protocol's line cap enforced while the
   bytes arrive: a client streaming an unbounded line is answered
   [oversized] (and disconnected — framing is lost) after at most
   [max_line_bytes] buffered bytes, it cannot balloon server memory. *)
type reader = {
  rfd : Unix.file_descr;
  mutable ready : string list;   (* complete lines awaiting delivery *)
  mutable partial : string list; (* reversed fragments of the open line *)
  mutable partial_len : int;
}

let make_reader fd = { rfd = fd; ready = []; partial = []; partial_len = 0 }

let rec next_line r =
  match r.ready with
  | line :: rest ->
    r.ready <- rest;
    `Line line
  | [] ->
    if r.partial_len > Protocol.max_line_bytes then `Oversized
    else begin
      let chunk = Bytes.create 65536 in
      match Unix.read r.rfd chunk 0 (Bytes.length chunk) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line r
      | exception Unix.Unix_error _ -> `Eof
      | 0 ->
        if r.partial = [] then `Eof
        else begin
          let line = String.concat "" (List.rev r.partial) in
          r.partial <- [];
          r.partial_len <- 0;
          `Line line
        end
      | n ->
        (match String.split_on_char '\n' (Bytes.sub_string chunk 0 n) with
         | [ frag ] ->
           r.partial <- frag :: r.partial;
           r.partial_len <- r.partial_len + String.length frag;
           next_line r
         | first :: more ->
           let line = String.concat "" (List.rev (first :: r.partial)) in
           r.partial <- [];
           r.partial_len <- 0;
           let rec split_last acc = function
             | [ last ] -> (List.rev acc, last)
             | x :: tl -> split_last (x :: acc) tl
             | [] -> assert false
           in
           let full, last = split_last [] more in
           r.ready <- full;
           if last <> "" then begin
             r.partial <- [ last ];
             r.partial_len <- String.length last
           end;
           `Line line
         | [] -> assert false)
    end

(* ----------------------------------------------------------------- http - *)

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let http_respond conn status content_type body =
  send_raw conn
    (Printf.sprintf
       "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
        close\r\n\r\n%s"
       status content_type (String.length body) body)

let handle_http conn r first_line =
  Obs.Metrics.incr http_requests;
  (* drain request headers; this endpoint ignores them *)
  let rec drain () =
    match next_line r with
    | `Line l when strip_cr l <> "" -> drain ()
    | `Line _ | `Eof | `Oversized -> ()
  in
  drain ();
  match String.split_on_char ' ' (strip_cr first_line) with
  | "GET" :: path :: _ ->
    (match path with
     | "/metrics" ->
       http_respond conn "200 OK" "text/plain; version=0.0.4"
         (Obs.Prom.render ())
     | "/healthz" -> http_respond conn "200 OK" "text/plain" "ok\n"
     | _ -> http_respond conn "404 Not Found" "text/plain" "not found\n")
  | _ -> http_respond conn "405 Method Not Allowed" "text/plain" "GET only\n"

(* ----------------------------------------------------------- lifecycle - *)

(* Non-blocking and idempotent: flip the flag and close the queue.  The
   dispatcher drains what was already admitted, then [wait] tears the
   connections down. *)
let stop t =
  if not (Atomic.exchange t.stopping true) then
    Exec.Bqueue.close t.queue

(* ------------------------------------------------------------ raw lines - *)

let send_error conn ~id e =
  Obs.Metrics.incr errors;
  send conn (Protocol.encode_error ~id e)

let handle_line t conn line =
  Obs.Metrics.incr requests;
  match Protocol.decode_request line with
  | Error e -> send_error conn ~id:None e
  | Ok req ->
    let id = req.Protocol.id in
    (match req.Protocol.verb with
     | Protocol.Shutdown ->
       Obs.Metrics.incr responses;
       send conn
         (Protocol.encode_response ~id
            [ ("verb", Obs.Json.String "shutdown") ]);
       stop t
     | Protocol.Stats ->
       Obs.Metrics.incr responses;
       send conn (Protocol.encode_response ~id (Dispatch.stats_fields ()))
     | _ ->
       if Atomic.get t.stopping then
         send_error conn ~id
           { Protocol.code = Protocol.Shutting_down;
             message = "server is shutting down" }
       else begin
         conn_acquire conn;
         match Exec.Bqueue.try_push t.queue (req, conn) with
         | `Ok ->
           Obs.Metrics.set queue_len
             (float_of_int (Exec.Bqueue.length t.queue))
         | `Full ->
           conn_release conn;
           Obs.Metrics.incr overloaded;
           send_error conn ~id
             { Protocol.code = Protocol.Overloaded;
               message =
                 Printf.sprintf
                   "admission queue full (depth %d); retry later"
                   (Exec.Bqueue.depth t.queue) }
         | `Closed ->
           conn_release conn;
           send_error conn ~id
             { Protocol.code = Protocol.Shutting_down;
               message = "server is shutting down" }
       end)

let connection_loop t conn =
  let r = make_reader conn.fd in
  let rec loop first =
    match next_line r with
    | `Eof -> ()
    | `Oversized ->
      (* framing is lost beyond the cap; answer once and hang up *)
      send_error conn ~id:None
        { Protocol.code = Protocol.Oversized;
          message =
            Printf.sprintf "request line exceeds %d bytes"
              Protocol.max_line_bytes }
    | `Line line ->
      if first && String.length line >= 4 && String.sub line 0 4 = "GET "
      then handle_http conn r line
      else begin
        handle_line t conn line;
        loop false
      end
  in
  (try loop true with _ -> ());
  conn_eof conn

(* ----------------------------------------------------------- dispatcher - *)

(* A queue item after planning: either ready to run (grouped by cache
   key) or already answered (plan-time validation error). *)
let answer_group group result =
  List.iter
    (fun (req, conn) ->
      let id = req.Protocol.id in
      (match result with
       | Ok fields ->
         Obs.Metrics.incr responses;
         send conn (Protocol.encode_response ~id fields)
       | Error e -> send_error conn ~id e);
      conn_release conn)
    group.Coalesce.items

let run_batch batch =
  Obs.Metrics.incr batches;
  Obs.Metrics.observe batch_size (List.length batch);
  (* plan each request; validation failures answer immediately *)
  let planned =
    List.filter_map
      (fun (req, conn) ->
        match Dispatch.plan req with
        | Ok p -> Some (p, (req, conn))
        | Error e ->
          send_error conn ~id:req.Protocol.id e;
          conn_release conn;
          None)
      batch
  in
  let groups = Coalesce.group_by (fun (p, _) -> p.Dispatch.key) planned in
  Obs.Metrics.add coalesced (Coalesce.saved groups);
  (* run one plan per group on the domain pool; send every member the
     group's result *)
  let results =
    Exec.Pool.map_list
      (fun g ->
        match g.Coalesce.items with
        | (p, _) :: _ ->
          (try p.Dispatch.run ()
           with e ->
             Error
               { Protocol.code = Protocol.Internal_error;
                 message = Printexc.to_string e })
        | [] -> Ok [])
      groups
  in
  List.iter2
    (fun g result ->
      answer_group
        { Coalesce.key = g.Coalesce.key;
          items = List.map snd g.Coalesce.items }
        result)
    groups results

let dispatcher_loop t =
  let rec loop () =
    match Exec.Bqueue.pop t.queue with
    | None -> () (* closed and drained *)
    | Some first ->
      Obs.Metrics.set in_flight 1.0;
      let rec drain acc n =
        if n >= t.cfg.batch_max then List.rev acc
        else
          match Exec.Bqueue.try_pop t.queue with
          | Some item -> drain (item :: acc) (n + 1)
          | None -> List.rev acc
      in
      let batch = drain [ first ] 1 in
      Obs.Metrics.set queue_len (float_of_int (Exec.Bqueue.length t.queue));
      (try run_batch batch
       with e ->
         (* belt and braces: a dispatcher crash would strand clients *)
         List.iter
           (fun (req, conn) ->
             send_error conn ~id:req.Protocol.id
               { Protocol.code = Protocol.Internal_error;
                 message = Printexc.to_string e };
             conn_release conn)
           batch);
      Obs.Metrics.set in_flight 0.0;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------ accepting - *)

let accept_loop t lfd =
  while not (Atomic.get t.stopping) do
    (* select with a timeout so the stopping flag is polled: closing a
       listening fd does not reliably wake a thread blocked in accept *)
    match Unix.select [ lfd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ ->
      (match Unix.accept ~cloexec:true lfd with
       | exception
           Unix.Unix_error
             ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED | Unix.EINTR), _, _)
         -> ()
       | fd, _ ->
         let conn =
           { fd;
             out_mu = Mutex.create ();
             mu = Mutex.create ();
             pending = 0;
             eof = false;
             closed = false }
         in
         let th = Thread.create (fun () -> connection_loop t conn) () in
         Mutex.protect t.conns_mu (fun () ->
             t.conns <- (conn, th) :: t.conns))
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINTR), _, _) -> ()
  done

(* -------------------------------------------------------------- startup - *)

let listen_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let listen_unix path =
  (match Unix.lstat path with
   | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path (* stale socket *)
   | _ -> ()
   | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let start cfg =
  if cfg.port = None && cfg.unix_path = None then
    invalid_arg "serve: configure a TCP port and/or a unix socket path";
  (match cfg.port with
   | Some p when p < 1 || p > 65535 ->
     invalid_arg (Printf.sprintf "serve: port %d out of range" p)
   | _ -> ());
  if cfg.queue_depth < 1 then invalid_arg "serve: queue depth must be >= 1";
  if cfg.batch_max < 1 then invalid_arg "serve: batch max must be >= 1";
  (* a client hanging up mid-response must surface as EPIPE, not kill
     the process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listeners =
    (match cfg.port with Some p -> [ (listen_tcp p, None) ] | None -> [])
    @ (match cfg.unix_path with
       | Some path -> [ (listen_unix path, Some path) ]
       | None -> [])
  in
  let t =
    { cfg;
      queue = Exec.Bqueue.create ~depth:cfg.queue_depth;
      stopping = Atomic.make false;
      listeners;
      conns_mu = Mutex.create ();
      conns = [];
      acceptors = [];
      dispatcher = None }
  in
  (* The dispatcher gets its own domain, not a systhread: the Exec pool
     has calling threads participate in their batch's compute, and a
     compute-bound systhread on the I/O domain starves every reader and
     acceptor between its (rare) yield points.  On a separate domain the
     batch crunches at full speed while domain 0 stays pure I/O — stats
     and /metrics answer instantly even mid-batch. *)
  t.dispatcher <- Some (Domain.spawn (fun () -> dispatcher_loop t));
  t.acceptors <-
    List.map
      (fun (lfd, _) -> Thread.create (fun () -> accept_loop t lfd) ())
      t.listeners;
  t

let wait t =
  List.iter Thread.join t.acceptors;
  t.acceptors <- [];
  List.iter
    (fun (lfd, path) ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      match path with
      | Some p -> (try Unix.unlink p with Unix.Unix_error _ -> ())
      | None -> ())
    t.listeners;
  (* the dispatcher drains the (closed) queue and exits *)
  (match t.dispatcher with
   | Some d ->
     Domain.join d;
     t.dispatcher <- None
   | None -> ());
  (* every admitted request is answered by now; tear down connections,
     waking readers blocked on idle sockets *)
  let conns = Mutex.protect t.conns_mu (fun () -> t.conns) in
  List.iter (fun (conn, _) -> conn_force_close conn) conns;
  List.iter (fun (_, th) -> Thread.join th) conns;
  Mutex.protect t.conns_mu (fun () -> t.conns <- [])

let run cfg =
  let t = start cfg in
  wait t
