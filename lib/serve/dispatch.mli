(** Verb execution: validate a request's config exactly like the CLI
    flags, resolve its circuit, and produce a plan the server can
    coalesce and run on the domain pool.

    [plan] does the cheap, total part (validation, circuit parsing and
    registration, cache-key derivation); the returned {!plan.run} thunk
    does the expensive part through {!Core.Cache}, so identical keys hit
    the same store records a CLI run would.  Every successful response
    carries a content-addressed provenance manifest id ({!Obs.Ledger})
    plus the config fingerprint, making served runs attributable and
    diffable with [satpg diff]. *)

type plan = {
  key : string option;
      (** coalescing key — equal keys mean observably identical work;
          [None] never coalesces *)
  run : unit -> ((string * Obs.Json.t) list, Protocol.error) result;
      (** total: internal failures come back as structured errors *)
}

(** [Error] on validation failure; the [Shutdown] verb is connection
    control and yields [Error] too (the server intercepts it earlier). *)
val plan : Protocol.request -> (plan, Protocol.error) result

(** The [stats] verb body: serve counters, cache counters, registered
    circuits, pool width, store stats. *)
val stats_fields : unit -> (string * Obs.Json.t) list
