(** Wire protocol of `satpg serve`: line-delimited JSON requests.

    One request per line, one response per line, over a TCP or Unix
    socket.  A request is a JSON object:

    {v
    {"id": "r1",                      // optional echo token
     "verb": "atpg",                  // see {!verb}
     "circuit": {"blif": "..."}       // inline BLIF text
             | {"kiss2": "..."}       // inline KISS2 FSM (synthesized)
             | {"hash": "ab12..."}    // structural-hash reference
             | {"bench": "dk16", "algorithm": "ji",
                "script": "sd", "retimed": false},
     "config": {"budget": 0.05, ...}} // verb-specific, validated like
                                      // the CLI flags ({!Dispatch})
    v}

    Responses echo [id] and carry ["ok": true] plus verb fields, or
    ["ok": false] plus a structured [error] object.  The decoder is
    {e total}: malformed, empty and oversized lines all map to [Error]
    values (never exceptions), so one bad client line can never take a
    connection down with it. *)

type verb = Atpg | Reach | Classify | Lint | Tables | Fsim | Stats | Shutdown

val verb_name : verb -> string

type source =
  | Blif of string  (** inline BLIF netlist text *)
  | Kiss of string  (** inline KISS2 FSM text (server synthesizes) *)
  | Hash of string  (** structural hash of a registered circuit *)
  | Bench of {
      fsm : string;
      algorithm : string;
      script : string;
      retimed : bool;
    }  (** a named benchmark pair circuit, exactly as the CLI builds it *)

type request = {
  id : string option;
  verb : verb;
  source : source option;
  config : (string * Obs.Json.t) list;
      (** raw config fields; semantic validation happens per verb in
          {!Dispatch} *)
}

type error_code =
  | Parse_error    (** line is not valid JSON *)
  | Empty          (** blank line *)
  | Oversized      (** line exceeds {!max_line_bytes} *)
  | Bad_request    (** shape/validation failure, message says what *)
  | Not_found      (** unknown structural-hash reference *)
  | Overloaded     (** admission queue full — retry later *)
  | Shutting_down  (** server is draining *)
  | Internal_error (** unexpected exception (reported, never fatal) *)

val error_code_name : error_code -> string

type error = { code : error_code; message : string }

val error : error_code -> string -> error

(** Hard cap on one request line (8 MiB) — past it the decoder answers
    [Oversized] without parsing. *)
val max_line_bytes : int

(** Total decode: never raises. *)
val decode_request : string -> (request, error) result

(** One response line (no trailing newline): [{"id"?, "ok": true, ...fields}]. *)
val encode_response : id:string option -> (string * Obs.Json.t) list -> string

(** [{"id"?, "ok": false, "error": {"code", "message"}}]. *)
val encode_error : id:string option -> error -> string
