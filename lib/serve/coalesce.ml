type 'a group = { key : string option; items : 'a list }

let group_by key items =
  (* two passes keep it simple and stable: collect group order first,
     then the members of each keyed group *)
  let tbl : (string, 'a list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun item ->
      match key item with
      | None -> order := `Single item :: !order
      | Some k ->
        (match Hashtbl.find_opt tbl k with
         | Some members -> members := item :: !members
         | None ->
           let members = ref [ item ] in
           Hashtbl.add tbl k members;
           order := `Keyed (k, members) :: !order))
    items;
  List.rev_map
    (function
      | `Single item -> { key = None; items = [ item ] }
      | `Keyed (k, members) -> { key = Some k; items = List.rev !members })
    !order

let saved groups =
  List.fold_left
    (fun acc g ->
      match g.key with
      | None -> acc
      | Some _ -> acc + List.length g.items - 1)
    0 groups
