(** Registry of circuits the server has seen, keyed by structural hash.

    Every inline BLIF/KISS2/bench circuit a request carries is
    registered here; later requests may refer to it by hash alone (the
    ["hash"] source), which is how a client amortizes shipping a large
    netlist across many queries.  The memory table lives for the server
    process; with [SATPG_STORE] set, circuits also persist as
    {!Store.Disk.Circuit} records (exact structural codec, so the
    reloaded circuit rehashes to its key) and survive restarts. *)

(** Register (idempotent) and return the structural hash. *)
val register : ?name:string -> Netlist.Node.t -> string

(** Resolve a hash: memory first, then the persistent store.  A record
    that decodes but does not rehash to its key is rejected (corrupt). *)
val find : string -> Netlist.Node.t option

(** Registered circuits in memory. *)
val count : unit -> int

(** Drop the memory table (persisted records stay). *)
val reset : unit -> unit
