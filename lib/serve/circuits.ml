(* Hash-keyed circuit registry: a mutex-protected memory table over the
   optional Store.Disk Circuit kind.  The disk layer uses the exact
   structural codec (Store.Codec.circuit_to_json/of_json), so a reloaded circuit
   rehashes to its key — checked anyway on load, because a store
   directory is user-writable input. *)

let registered = Obs.Metrics.counter "serve.circuits.registered"
let mu = Mutex.create ()
let table : (string, Netlist.Node.t) Hashtbl.t = Hashtbl.create 64

let register ?name c =
  let hash = Netlist.Structhash.circuit c in
  let fresh =
    Mutex.protect mu (fun () ->
        if Hashtbl.mem table hash then false
        else begin
          Hashtbl.replace table hash c;
          true
        end)
  in
  if fresh then begin
    Obs.Metrics.incr registered;
    let name = match name with Some n -> n | None -> hash in
    ignore
      (Store.Disk.save Store.Disk.Circuit ~key:hash ~name
         (Store.Codec.circuit_to_json c))
  end;
  hash

let find hash =
  match Mutex.protect mu (fun () -> Hashtbl.find_opt table hash) with
  | Some c -> Some c
  | None ->
    (match Store.Disk.load Store.Disk.Circuit ~key:hash with
     | Store.Disk.Found payload ->
       (match Store.Codec.circuit_of_json payload with
        | Some c when Netlist.Structhash.circuit c = hash ->
          Mutex.protect mu (fun () -> Hashtbl.replace table hash c);
          Some c
        | Some _ | None -> None)
     | Store.Disk.Absent | Store.Disk.Corrupt _ -> None)

let count () = Mutex.protect mu (fun () -> Hashtbl.length table)
let reset () = Mutex.protect mu (fun () -> Hashtbl.reset table)
