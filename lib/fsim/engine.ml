(* PROOFS-style parallel-fault sequential simulator: faults are packed into
   machine-word lanes; every lane sees the same input sequence but carries
   its own faulty circuit (and hence its own diverging DFF state).  The good
   circuit is simulated once; a fault is detected the first cycle a primary
   output differs from the good value.

   The instruction tape is compiled once per [simulate] call and shared by
   the good-pass sim and every batch sim, so the per-batch setup cost is
   array allocation, not netlist traversal. *)

type run = {
  detected : bool array;       (* per fault index *)
  detect_time : int array;     (* first differing cycle, -1 if undetected *)
  good_states : Sim.Statekey.t list; (* distinct good states, visit order *)
  cycles : int;                (* good-machine vectors applied *)
  sim_cycles : int;            (* faulty-machine cycles actually simulated,
                                  summed over batches (early exits stop
                                  counting), deterministic at any job count *)
}

(* global counters for `satpg --metrics`.  [fsim.vectors] counts
   faulty-machine cycles actually simulated — bumped per batch inside the
   pool task, so early exits are reflected exactly and the captured deltas
   merge deterministically.  [fsim.good_cycles] counts good-pass vector
   applications (skipped entirely on an empty worklist). *)
let m_faults = Obs.Metrics.counter "fsim.faults_simulated"
let m_dropped = Obs.Metrics.counter "fsim.faults_detected"
let m_vectors = Obs.Metrics.counter "fsim.vectors"
let m_good = Obs.Metrics.counter "fsim.good_cycles"
let m_batches = Obs.Metrics.counter "fsim.batches"

(* Lane-0 DFF state as an overflow-safe key: the historical int packing
   ([1 lsl i] over the DFF index) silently aliased distinct states on
   circuits with more than 62 DFFs. *)
let state_key_lane0 sim =
  Sim.Statekey.of_lane_words (Sim.Parallel.get_state_words sim) ~lane:0

(* One clean pass: good PO values per cycle and the good state trajectory. *)
let good_pass ?backend tape vectors =
  let sim = Sim.Parallel.create_on ?backend tape in
  Sim.Parallel.reset sim;
  let good_states = ref [] in
  let seen = Hashtbl.create 97 in
  let note key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      good_states := key :: !good_states
    end
  in
  note (state_key_lane0 sim);
  let po_bits =
    List.map
      (fun v ->
        let words = Sim.Parallel.step_broadcast sim v in
        note (state_key_lane0 sim);
        Array.map (fun w -> w land 1) words)
      vectors
  in
  Obs.Metrics.add m_good (List.length vectors);
  (po_bits, List.rev !good_states)

(* Simulate [faults] (restricted to [indices] when given) over [vectors].
   Already-detected faults (per [skip]) are excluded from the packing. *)
let simulate ?indices ?skip ?backend c (faults : Fault.t array) vectors =
  let all =
    match indices with
    | Some l -> l
    | None -> List.init (Array.length faults) (fun i -> i)
  in
  let todo =
    match skip with
    | None -> all
    | Some s -> List.filter (fun i -> not s.(i)) all
  in
  let detected = Array.make (Array.length faults) false in
  let detect_time = Array.make (Array.length faults) (-1) in
  if todo = [] then
    (* nothing to simulate: skip the good pass too, and report zero work *)
    { detected; detect_time; good_states = []; cycles = 0; sim_cycles = 0 }
  else begin
    let tape = Sim.Tape.compile c in
    let good_po, good_states = good_pass ?backend tape vectors in
    let width = Sim.Parallel.word_bits in
    let n_po = Netlist.Node.num_pos c in
    (* Split the worklist into word-wide batches up front; each batch is an
       independent task (its own faulty-circuit sim, fault indices disjoint
       from every other batch's), so batches shard across domains via
       [Exec.Pool].  Writes to [detected]/[detect_time] hit disjoint slots
       and the per-batch counter bumps are captured and merged in
       submission order, so the result — and the metrics — are identical to
       the sequential walk at any job count. *)
    let rec split acc = function
      | [] -> Array.of_list (List.rev acc)
      | rest ->
        let rec take k lacc l =
          if k = 0 then (List.rev lacc, l)
          else
            match l with
            | [] -> (List.rev lacc, [])
            | x :: xs -> take (k - 1) (x :: lacc) xs
        in
        let batch, rest = take width [] rest in
        split (batch :: acc) rest
    in
    let batches = split [] todo in
    (* Each batch returns the cycles it actually simulated (early exit
       stops the count), so the metrics charge work done, not work
       scheduled. *)
    let run_batch batch =
      Obs.Metrics.incr m_batches;
      let faulty = Sim.Parallel.create_on ?backend tape in
      List.iteri (fun lane i -> Fault.inject faulty faults.(i) ~lane) batch;
      Sim.Parallel.reset faulty;
      let batch_arr = Array.of_list batch in
      let nlanes = Array.length batch_arr in
      let lane_done = Array.make nlanes false in
      let lanes_done = ref 0 in
      let t = ref 0 in
      (* walk the vectors until every lane has detected — once the batch
         is fully resolved the remaining cycles cannot change anything,
         so stop instead of scanning the rest of the list *)
      let rec cycle vs gs =
        match vs, gs with
        | [], _ | _, [] -> ()
        | _ when !lanes_done >= nlanes -> ()
        | v :: vs, gpo :: gs ->
          Sim.Parallel.set_input_broadcast faulty v;
          Sim.Parallel.eval_comb faulty;
          for k = 0 to n_po - 1 do
            let _, po_id = c.Netlist.Node.pos.(k) in
            let fw = Sim.Parallel.node_word faulty po_id in
            let diff = fw lxor (if gpo.(k) = 1 then -1 else 0) in
            if diff <> 0 then
              Array.iteri
                (fun lane fi ->
                  if (not lane_done.(lane)) && (diff lsr lane) land 1 = 1
                  then begin
                    detected.(fi) <- true;
                    detect_time.(fi) <- !t;
                    lane_done.(lane) <- true;
                    incr lanes_done
                  end)
                batch_arr
          done;
          Sim.Parallel.tick faulty;
          incr t;
          cycle vs gs
      in
      cycle vectors good_po;
      Obs.Metrics.add m_vectors !t;
      !t
    in
    let batch_cycles = Exec.Pool.map_array run_batch batches in
    let sim_cycles = Array.fold_left ( + ) 0 batch_cycles in
    Obs.Metrics.add m_faults (List.length todo);
    Obs.Metrics.add m_dropped
      (Array.fold_left (fun a d -> if d then a + 1 else a) 0 detected);
    {
      detected;
      detect_time;
      good_states;
      cycles = List.length vectors;
      sim_cycles;
    }
  end

(* Convenience: does [vectors] detect the single fault [f]? *)
let detects c f vectors =
  let faults = [| f |] in
  let r = simulate c faults vectors in
  r.detected.(0)

(* Fault coverage bookkeeping. *)
let coverage ~detected ~total =
  100.0 *. float_of_int detected /. float_of_int (max 1 total)
