(** PROOFS-style parallel-fault sequential simulator.

    Faults are packed into the bit lanes of machine words (one faulty
    machine per lane); all lanes consume the same input sequence from the
    power-up state, with each lane's DFF state diverging independently.
    The good machine is simulated once; a fault counts as detected the
    first cycle a primary output differs from the good value.

    Every machine runs on the flat levelized instruction tape
    ({!Sim.Tape}), compiled once per [simulate] call and shared by the
    good pass and all fault batches. *)

type run = {
  detected : bool array;   (** per fault index of the supplied array *)
  detect_time : int array; (** first differing cycle, [-1] if undetected *)
  good_states : Sim.Statekey.t list;
      (** distinct good-machine states, in visit order; keys are
          overflow-safe for any DFF count (the historical [int] packing
          aliased states beyond 62 DFFs).  Empty when the worklist was
          empty — the good pass is skipped entirely then. *)
  cycles : int;            (** good-machine vectors applied (0 when the
                               worklist was empty) *)
  sim_cycles : int;
      (** faulty-machine cycles actually simulated, summed over batches;
          early exits stop the count, so this is the work done, not the
          work scheduled.  Deterministic at any job count. *)
}

(** [simulate ?indices ?skip c faults vectors] fault-simulates [vectors]
    (applied from power-up) against [faults].  [indices] restricts which
    entries are simulated; [skip.(i) = true] excludes fault [i] (used for
    fault dropping).  Detection flags are indexed like [faults].
    [backend] selects the combinational-sweep implementation
    ({!Sim.Parallel.backend}; default [`Tape]) — results are bit-identical
    across backends, [`Nodes] exists for differential tests and the
    pre-tape bench baseline.

    If the effective worklist is empty, no simulation runs at all: the
    good pass is skipped, [good_states] is empty and every metric stays
    untouched, so `satpg diff` attribution reflects work actually done. *)
val simulate :
  ?indices:int list ->
  ?skip:bool array ->
  ?backend:Sim.Parallel.backend ->
  Netlist.Node.t ->
  Fault.t array ->
  Sim.Vectors.sequence ->
  run

(** Does the sequence detect the single fault? *)
val detects : Netlist.Node.t -> Fault.t -> Sim.Vectors.sequence -> bool

(** Percentage helper: [coverage ~detected ~total]. *)
val coverage : detected:int -> total:int -> float
