(* Single stuck-at fault model.  A fault sits either on a node's output stem
   or on one input pin of a gate (branch fault after fanout); DFF data pins
   are pin 0 of the DFF node. *)

type site =
  | Stem of int                       (* netlist node id *)
  | Pin of { gate : int; pin : int }  (* gate (or DFF) input pin *)

type t = { site : site; stuck : bool }

type status =
  | Untested
  | Detected
  | Redundant
  | Aborted
  | Proved_untestable  (* proved by static analysis, before any engine ran *)

let status_to_string = function
  | Untested -> "untested"
  | Detected -> "detected"
  | Redundant -> "redundant"
  | Aborted -> "aborted"
  | Proved_untestable -> "proved_untestable"

let site_node = function Stem id -> id | Pin { gate; _ } -> gate

let to_string c f =
  let v = if f.stuck then "1" else "0" in
  match f.site with
  | Stem id ->
    Printf.sprintf "%s/sa%s" (Netlist.Node.node c id).Netlist.Node.name v
  | Pin { gate; pin } ->
    Printf.sprintf "%s.in%d/sa%s"
      (Netlist.Node.node c gate).Netlist.Node.name pin v

(* The site feeding a pin. *)
let pin_source c gate pin = (Netlist.Node.node c gate).Netlist.Node.fanins.(pin)

(* Inject into a parallel simulator lane. *)
let inject sim f ~lane =
  match f.site with
  | Stem node -> Sim.Parallel.inject_stem sim ~node ~lane ~value:f.stuck
  | Pin { gate; pin } ->
    Sim.Parallel.inject_pin sim ~gate ~pin ~lane ~value:f.stuck
