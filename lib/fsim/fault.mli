(** Single stuck-at fault model.

    A fault sits either on a node's output stem (affecting every reader)
    or on one input pin of a gate (a branch fault after fanout).  DFF data
    pins are pin 0 of the DFF node. *)

type site =
  | Stem of int                       (** netlist node id *)
  | Pin of { gate : int; pin : int }  (** gate (or DFF) input pin *)

type t = { site : site; stuck : bool }

(** [Proved_untestable] is assigned by the static classifier
    ({!Analysis.Untest} via the ATPG prune hook), never by an engine:
    the fault is proved undetectable by any input sequence, which is
    strictly stronger than an engine giving up ([Aborted]). *)
type status =
  | Untested
  | Detected
  | Redundant
  | Aborted
  | Proved_untestable

val status_to_string : status -> string

(** The node the fault is attached to (the gate for pin faults). *)
val site_node : site -> int

(** Human-readable label, e.g. ["g17.in2/sa1"]. *)
val to_string : Netlist.Node.t -> t -> string

(** The node feeding a gate pin. *)
val pin_source : Netlist.Node.t -> int -> int -> int

(** Inject the fault into one lane of a parallel simulator. *)
val inject : Sim.Parallel.t -> t -> lane:int -> unit
