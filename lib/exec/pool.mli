(** Work-stealing domain pool with deterministic result merge.

    [run n f] evaluates [f 0 .. f (n-1)] across OCaml 5 domains and
    returns the results in index order.  Each task runs under an
    [Obs.Capture] scope; the captured metrics/event deltas are applied in
    submission order, so counters, histograms and event files — and
    everything computed from the results — are bit-identical to a
    sequential run regardless of the domain count.  Exceptions are
    re-raised in submission order: side effects of tasks after the first
    failing index are dropped, as if the loop had run serially and
    stopped.

    With [jobs () = 1] (or fewer than two tasks) [run]/[map_*] take a
    pure inline path — no domains, no capture, no locks.

    Tasks must not assume exclusive access to shared mutable state other
    than their own slot; anything they touch concurrently must be
    domain-safe.  Nested submission is supported: a task may itself call
    [run]/[map_*], and the submitting domain helps execute queued work
    while waiting, so nesting cannot deadlock the pool. *)

(** {1 Job count} *)

(** Resolved parallelism: the [set_jobs] override if any, else a
    validated [SATPG_JOBS], else {!default_jobs}.
    @raise Invalid_argument if [SATPG_JOBS] is set but not a positive
    integer. *)
val jobs : unit -> int

(** [Domain.recommended_domain_count], at least 1. *)
val default_jobs : unit -> int

(** Process-wide override (the [-j] flag).
    @raise Invalid_argument on a non-positive count. *)
val set_jobs : int -> unit

(** Drop the override, returning to [SATPG_JOBS]/default resolution. *)
val reset_jobs : unit -> unit

(** {1 Running task sets} *)

(** [run n f] — results of [f i] in index order, deterministic merge as
    described above. *)
val run : int -> (int -> 'a) -> 'a array

val map_array : ('a -> 'b) -> 'a array -> 'b array
val map_list : ('a -> 'b) -> 'a list -> 'b list

(** {1 Deferred (speculative) execution}

    [run_deferred] evaluates the tasks but leaves every side effect
    buffered in the returned deferreds.  The caller decides, per task and
    in any order it likes, whether to {!commit} (apply the delta, return
    the value or re-raise the task's exception) or to drop the deferred —
    discarding a speculative task's side effects entirely.  The ATPG
    driver uses this to speculate ahead of fault-dropping decisions while
    staying bit-identical to its sequential loop. *)

type 'a deferred

val run_deferred : int -> (int -> 'a) -> 'a deferred array

(** The task's value without committing side effects; [None] if the task
    raised. *)
val peek : 'a deferred -> 'a option

val commit : 'a deferred -> 'a

(** {1 Introspection / test hooks} *)

(** Distinct domains that have executed at least one pool task since
    start (or the last {!shutdown_workers}); also exported as the
    [exec.domains_used] gauge. *)
val domains_used : unit -> int

(** Join all worker domains and reset the used-domain set.  Test hook —
    production code never retires workers. *)
val shutdown_workers : unit -> unit
