(* Work-stealing domain pool with deterministic result merge.

   The pool runs batches of independent tasks ("sets") across OCaml 5
   domains.  Determinism is structural, not best-effort:

   - every task carries its submission index; results land in a slot
     array, so the returned array/list order never depends on timing;
   - each task runs under an [Obs.Capture] scope, so metrics increments
     and event records accumulate in a private delta instead of touching
     shared sinks.  The submitting caller applies the deltas in
     submission order ([Commit.apply]), making merged counters, event
     files — and hence everything derived from them — bit-identical to a
     sequential run;
   - exceptions are re-raised in submission order: deltas of tasks before
     and including the first failing index are applied, later ones are
     dropped, exactly as if the sequence had run serially and stopped.

   With [jobs () = 1] (or a batch of < 2 tasks) [run]/[map_*] take a pure
   inline path — no domains, no capture, no locks — so the single-job
   build is byte-identical to the pre-parallel code.

   Scheduling: one shared FIFO of task sets guarded by a mutex.  Workers
   (and callers waiting on their own set) claim the lowest unclaimed index
   of the first set that still has unclaimed work.  A caller participates
   in its own set first, then helps any other set while its own has tasks
   still in flight on other domains — a nested caller (a task that itself
   calls [map_array]) therefore never blocks the pool: if every domain is
   waiting, every set is fully claimed, so each waiter's set finishes and
   the waits unwind from the innermost nesting level outwards.

   The worker pool is a high-water mark: workers are spawned on demand up
   to [jobs () - 1] and kept for the process lifetime.  Lowering the job
   count afterwards does not retire workers (results are identical either
   way); raising it spawns more. *)

(* ---------- job-count resolution ---------- *)

let override : int option ref = ref None

(* SATPG_JOBS is validated like SATPG_BUDGET (lib/atpg/types.ml): a bad
   value is rejected outright rather than silently falling back to the
   core count — a typo'd "SATPG_JOBS=onr" must not look like a default
   parallel run. *)
let env_jobs () =
  match Sys.getenv_opt "SATPG_JOBS" with
  | None | Some "" -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> Some n
     | Some _ | None ->
       invalid_arg
         (Printf.sprintf
            "SATPG_JOBS must be a positive integer (domain count), got %S" s))

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let jobs () =
  match !override with
  | Some n -> n
  | None -> (match env_jobs () with Some n -> n | None -> default_jobs ())

let set_jobs n =
  if n < 1 then
    invalid_arg (Printf.sprintf "job count must be positive, got %d" n);
  override := Some n

let reset_jobs () = override := None

(* ---------- metrics ---------- *)

let m_tasks = Obs.Metrics.counter "exec.tasks"
let m_sets = Obs.Metrics.counter "exec.task_sets"
let g_jobs = Obs.Metrics.gauge "exec.jobs"
let g_domains_used = Obs.Metrics.gauge "exec.domains_used"

(* Distinct domains that ever executed a pool task, including the
   submitting caller.  Guarded by its own mutex: it is written from worker
   domains (outside any capture redirection — it is bookkeeping, not an
   instrument). *)
let used_mu = Mutex.create ()
let used : (int, unit) Hashtbl.t = Hashtbl.create 8

let note_domain_used () =
  let id = (Domain.self () :> int) in
  Mutex.protect used_mu (fun () ->
      if not (Hashtbl.mem used id) then Hashtbl.replace used id ())

let domains_used () = Mutex.protect used_mu (fun () -> Hashtbl.length used)

(* ---------- task sets and the shared queue ---------- *)

type set = {
  total : int;
  mutable next : int;        (* lowest unclaimed index; = total when drained *)
  mutable unfinished : int;  (* claimed-or-not tasks not yet completed *)
  run_one : int -> unit;     (* executes task [i] and records its slot *)
}

let mu = Mutex.create ()
let cv = Condition.create ()
let queue : set list ref = ref []   (* sets with unclaimed work, FIFO *)
let workers : unit Domain.t list ref = ref []
let shutdown = ref false            (* test hook; never set in production *)

(* Under [mu]: claim one task, preferring [prefer] if it still has
   unclaimed work, else the head-most queued set.  Drained sets leave the
   queue here. *)
let claim ?prefer () =
  let take s =
    let i = s.next in
    s.next <- i + 1;
    if s.next >= s.total then
      queue := List.filter (fun s' -> s' != s) !queue;
    Some (s, i)
  in
  match prefer with
  | Some s when s.next < s.total -> take s
  | _ ->
    (match List.find_opt (fun s -> s.next < s.total) !queue with
     | Some s -> take s
     | None -> None)

let finish_one s =
  Mutex.protect mu (fun () ->
      s.unfinished <- s.unfinished - 1;
      Condition.broadcast cv)

let exec_claimed (s, i) =
  note_domain_used ();
  s.run_one i;
  finish_one s

let worker_loop () =
  let rec loop () =
    let claimed =
      Mutex.protect mu (fun () ->
          let rec wait () =
            if !shutdown then None
            else
              match claim () with
              | Some c -> Some c
              | None ->
                Condition.wait cv mu;
                wait ()
          in
          wait ())
    in
    match claimed with
    | None -> ()
    | Some c ->
      exec_claimed c;
      loop ()
  in
  loop ()

let ensure_workers wanted =
  Mutex.protect mu (fun () ->
      let missing = wanted - List.length !workers in
      for _ = 1 to missing do
        workers := Domain.spawn worker_loop :: !workers
      done)

(* Run a set to completion from the submitting domain: claim own tasks
   first, help other sets while own tasks are in flight elsewhere, sleep
   only when there is nothing claimable anywhere. *)
let drive s =
  Mutex.protect mu (fun () ->
      queue := !queue @ [ s ];
      Condition.broadcast cv);
  let rec loop () =
    let claimed =
      Mutex.protect mu (fun () ->
          let rec wait () =
            if s.unfinished = 0 then None
            else
              match claim ~prefer:s () with
              | Some c -> Some c
              | None ->
                Condition.wait cv mu;
                wait ()
          in
          wait ())
    in
    match claimed with
    | None -> ()
    | Some c ->
      exec_claimed c;
      loop ()
  in
  loop ()

(* ---------- deferred results ---------- *)

type 'a deferred = {
  value : ('a, exn * Printexc.raw_backtrace) result;
  delta : Obs.Capture.t;
}

let peek d = match d.value with Ok v -> Some v | Error _ -> None

let commit d =
  Obs.Commit.apply d.delta;
  match d.value with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

(* ---------- submission ---------- *)

let run_set n f =
  let slots = Array.make n None in
  let run_one i =
    let outcome =
      Obs.Capture.scope (fun () ->
          try Ok (f i)
          with e -> Error (e, Printexc.get_raw_backtrace ()))
    in
    let value, delta = outcome in
    (* Disjoint slots: each index is written exactly once, by the domain
       that claimed it, and read only after [unfinished] reaches 0. *)
    slots.(i) <- Some { value; delta }
  in
  let s = { total = n; next = 0; unfinished = n; run_one } in
  ensure_workers (jobs () - 1);
  note_domain_used ();
  drive s;
  Obs.Metrics.add m_tasks n;
  Obs.Metrics.incr m_sets;
  Obs.Metrics.set g_jobs (float_of_int (jobs ()));
  Obs.Metrics.set g_domains_used (float_of_int (domains_used ()));
  Array.map
    (function
      | Some d -> d
      | None -> assert false (* unfinished = 0 implies every slot filled *))
    slots

let parallel_enabled n = n > 1 && jobs () > 1

let run_deferred n f =
  if n = 0 then [||]
  else if not (parallel_enabled n) then
    (* Inline, but still captured: deferred semantics (commit-or-discard)
       must not depend on the job count. *)
    Array.init n (fun i ->
        let value, delta =
          Obs.Capture.scope (fun () ->
              try Ok (f i)
              with e -> Error (e, Printexc.get_raw_backtrace ()))
        in
        { value; delta })
  else run_set n f

let run n f =
  if n = 0 then [||]
  else if not (parallel_enabled n) then
    (* Pure inline path: no domains, no capture — byte-identical to the
       pre-parallel sequential loop, including side-effect timing. *)
    Array.init n f
  else begin
    let ds = run_set n f in
    (* Apply side effects in submission order; on failure, replay only the
       prefix a sequential run would have produced, then re-raise the
       first error. *)
    let first_err = ref None in
    (try
       Array.iter
         (fun d ->
           Obs.Commit.apply d.delta;
           match d.value with
           | Ok _ -> ()
           | Error (e, bt) ->
             first_err := Some (e, bt);
             raise Exit)
         ds
     with Exit -> ());
    match !first_err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map
        (fun d -> match d.value with Ok v -> v | Error _ -> assert false)
        ds
  end

let map_array f a = run (Array.length a) (fun i -> f a.(i))

let map_list f l =
  let a = Array.of_list l in
  Array.to_list (run (Array.length a) (fun i -> f a.(i)))

(* Test hook: retire all workers and forget the used-domain set, so a
   test can measure a fresh pool.  Not used in production. *)
let shutdown_workers () =
  let ws =
    Mutex.protect mu (fun () ->
        shutdown := true;
        Condition.broadcast cv;
        let ws = !workers in
        workers := [];
        ws)
  in
  List.iter Domain.join ws;
  Mutex.protect mu (fun () -> shutdown := false);
  Mutex.protect used_mu (fun () -> Hashtbl.reset used)
