(* Bounded blocking FIFO over a mutex and one condition variable.  The
   producers never wait (admission control wants an immediate full/ok
   verdict), so only consumers block and only [pop] needs the condition.
   Works across systhreads and domains alike — it only uses Mutex and
   Condition from the stdlib. *)

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  depth : int;
  mutable closed : bool;
}

let create ~depth =
  if depth < 1 then
    invalid_arg (Printf.sprintf "Bqueue.create: depth must be >= 1, got %d" depth);
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    depth;
    closed = false;
  }

let depth q = q.depth
let length q = Mutex.protect q.mu (fun () -> Queue.length q.items)
let closed q = Mutex.protect q.mu (fun () -> q.closed)

let try_push q x =
  Mutex.protect q.mu (fun () ->
      if q.closed then `Closed
      else if Queue.length q.items >= q.depth then `Full
      else begin
        Queue.add x q.items;
        Condition.signal q.nonempty;
        `Ok
      end)

let pop q =
  Mutex.protect q.mu (fun () ->
      let rec wait () =
        match Queue.take_opt q.items with
        | Some x -> Some x
        | None ->
          if q.closed then None
          else begin
            Condition.wait q.nonempty q.mu;
            wait ()
          end
      in
      wait ())

let try_pop q = Mutex.protect q.mu (fun () -> Queue.take_opt q.items)

let close q =
  Mutex.protect q.mu (fun () ->
      if not q.closed then begin
        q.closed <- true;
        Condition.broadcast q.nonempty
      end)
