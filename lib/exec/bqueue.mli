(** Bounded blocking FIFO — the admission queue of the serve subsystem.

    A producer that finds the queue full is told so immediately
    ([try_push] returns [`Full]); it is never blocked and nothing is
    ever dropped silently.  That is the admission-control contract: an
    overloaded server answers "overloaded" in O(1) instead of queueing
    unboundedly and converting overload into unbounded tail latency.

    One consumer (or several) blocks in [pop] until an item or [close]
    arrives.  After [close], [pop] drains the remaining items and then
    returns [None] forever; [try_push] returns [`Closed]. *)

type 'a t

(** @raise Invalid_argument when [depth < 1]. *)
val create : depth:int -> 'a t

val depth : 'a t -> int

(** Current number of queued items (racy by nature; for reporting). *)
val length : 'a t -> int

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]

(** Block until an item is available; [None] once closed and drained. *)
val pop : 'a t -> 'a option

(** Non-blocking variant: [None] when empty (closed or not). *)
val try_pop : 'a t -> 'a option

(** Idempotent.  Wakes every blocked [pop]. *)
val close : 'a t -> unit

val closed : 'a t -> bool
