(* Minimum-period retiming via the Leiserson–Saxe FEAS algorithm and binary
   search over the clock period.  FEAS(P): start from r = 0; up to |V| - 1
   times, compute combinational arrival times on the retimed graph and
   increment the lag of every vertex whose arrival exceeds P.  If the clock
   period of the final retiming meets P and all retimed weights are
   non-negative, P is feasible. *)

let log = Logs.Src.create "retime" ~doc:"retiming"
module Log = (val Logs.src_log log : Logs.LOG)

(* global counters for `satpg --metrics` *)
let m_feas_calls = Obs.Metrics.counter "retime.feas.calls"
let m_feas_relaxations = Obs.Metrics.counter "retime.feas.relaxations"
let m_search_probes = Obs.Metrics.counter "retime.search.probes"
let m_deepen_moves = Obs.Metrics.counter "retime.deepen.moves"

(* Combinational arrival times of the retimed graph: edges with retimed
   weight <= 0 propagate combinationally.  Returns None if that subgraph has
   a cycle (the retiming is broken). *)
let arrivals g r =
  let n = Graph.num_gates g in
  let delta = Array.make n 0.0 in
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  (* per-gate incoming zero-weight edges from gates *)
  Array.iter
    (fun (e : Graph.edge) ->
      if e.Graph.dst_node >= 0 then begin
        let w = Graph.retimed_weight g r e in
        if w <= 0 then begin
          let dst_v = g.Graph.vertex_of_gate.(e.Graph.dst_node) in
          match
            (Netlist.Node.node g.Graph.circuit e.Graph.src_node)
              .Netlist.Node.kind
          with
          | Netlist.Node.Gate _ ->
            let src_v = g.Graph.vertex_of_gate.(e.Graph.src_node) in
            indeg.(dst_v) <- indeg.(dst_v) + 1;
            succs.(src_v) <- dst_v :: succs.(src_v)
          | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ()
        end
      end)
    g.Graph.edges;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr processed;
    delta.(v) <- delta.(v) +. g.Graph.delays.(v);
    List.iter
      (fun s ->
        if delta.(v) > delta.(s) then delta.(s) <- delta.(v);
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      succs.(v)
  done;
  if !processed < n then None else Some delta

let period_of g r =
  match arrivals g r with
  | None -> infinity
  | Some delta -> Array.fold_left max 0.0 delta

(* FEAS: returns a legal retiming achieving period <= p, or None. *)
let feas g ~period:p =
  Obs.Metrics.incr m_feas_calls;
  let n = Graph.num_gates g in
  let r = Array.make n 0 in
  let rec loop i =
    match arrivals g r with
    | None -> None
    | Some delta ->
      let worst = Array.fold_left max 0.0 delta in
      if worst <= p +. 1e-9 then
        if Graph.legal g r then Some (Array.copy r) else None
      else if i >= n then None
      else begin
        Obs.Metrics.incr m_feas_relaxations;
        for v = 0 to n - 1 do
          if delta.(v) > p +. 1e-9 then r.(v) <- r.(v) + 1
        done;
        loop (i + 1)
      end
  in
  loop 0

(* Minimum feasible period by binary search between the largest single gate
   delay and the original circuit's period. *)
let min_period ?(iterations = 24) g =
  Obs.Trace.span "retime.min_period" (fun () ->
      let zero = Array.make (Graph.num_gates g) 0 in
      let upper0 = period_of g zero in
      let lower0 = Array.fold_left max 0.0 g.Graph.delays in
      let best = ref (zero, upper0) in
      let rec search lower upper i =
        if i >= iterations || upper -. lower < 0.005 then ()
        else begin
          Obs.Metrics.incr m_search_probes;
          let mid = (lower +. upper) /. 2.0 in
          match feas g ~period:mid with
          | Some r ->
            let p = period_of g r in
            if p < snd !best then best := (r, p);
            search lower (min mid p) (i + 1)
          | None -> search mid upper (i + 1)
        end
      in
      search lower0 upper0 0;
      !best)

(* Retiming for an explicit target period (used to build the partially
   retimed versions of Table 7).  Returns the achieved period. *)
let retime_to_period g ~period =
  match feas g ~period with
  | Some r -> Some (r, period_of g r)
  | None -> None

(* Deepening: starting from a legal retiming, greedily apply further backward
   atomic moves (increment the lag of a gate) while the retiming stays legal,
   the clock period does not regress beyond [period], lags stay within
   [max_lag], and the shared register count stays within [max_regs].  Each
   accepted move is exactly the paper's Figure-1 atomic transformation: a
   register at a gate's output is replaced by registers at its inputs, which
   multiplies registers across fanin and fanout — the mechanism that dilutes
   the density of encoding. *)
let deepen g r ~period ~max_lag ~max_regs =
  let n = Graph.num_gates g in
  let try_move v =
    if r.(v) >= max_lag then false
    else begin
      r.(v) <- r.(v) + 1;
      let ok =
        Graph.legal g r
        && period_of g r <= period +. 1e-9
        && Graph.total_registers_shared g r <= max_regs
      in
      if not ok then r.(v) <- r.(v) - 1 else Obs.Metrics.incr m_deepen_moves;
      ok
    end
  in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < max_lag do
    improved := false;
    incr rounds;
    for v = 0 to n - 1 do
      if try_move v then improved := true
    done
  done

(* The paper's "retime" step: minimum-period retiming followed by deepening.
   The deepening budget is the *original* period, matching the observation
   (paper Table 7) that SIS's retimed circuits trade a small delay gain for a
   large register-count increase; the achieved period of the result is
   reported (never worse than the original, usually better). *)
let aggressive g ?(max_lag = 8) ?(max_regs_factor = 6) ?(period_slack = 0.0)
    () =
  let zero = Array.make (Graph.num_gates g) 0 in
  let original_period = period_of g zero in
  let r, _min_p = min_period g in
  let base_regs = max 1 (Graph.total_registers_shared g zero) in
  let r = Array.copy r in
  deepen g r
    ~period:(original_period *. (1.0 +. period_slack))
    ~max_lag
    ~max_regs:(base_regs * max_regs_factor);
  (r, period_of g r)
