(* JSON codecs for the persisted result types.

   Encoders are total; decoders are *corruption-tolerant*: any shape
   mismatch, unknown enum string, bad vector character or internal
   inconsistency yields [None] (the caller recomputes), never an
   exception.  Everything a consumer reads off a result is preserved —
   statuses, test sequences, the exact work accounting, traversed-state
   and cube sets — so a decoded record is observationally identical to
   the freshly computed one (tested round-trip property). *)

open Obs.Json

exception Corrupt

let obj_field name j = match member name j with Some v -> v | None -> raise Corrupt
let as_int = function Int i -> i | _ -> raise Corrupt
let as_bool = function Bool b -> b | _ -> raise Corrupt
let as_string = function String s -> s | _ -> raise Corrupt
let as_list = function List l -> l | _ -> raise Corrupt

let as_float = function
  | Float f -> f
  | Int i -> float_of_int i (* 100.0 may have been printed as 100.0 — kept *)
  | _ -> raise Corrupt

let int_field name j = as_int (obj_field name j)

(* New fields decode to 0 on records written before they existed. *)
let int_field_or0 name j =
  match member name j with Some v -> as_int v | None -> 0
let guard decode j = match decode j with v -> Some v | exception Corrupt -> None

(* ---------------------------------------------------------------- faults - *)

let fault_to_json (f : Fsim.Fault.t) =
  match f.Fsim.Fault.site with
  | Fsim.Fault.Stem id ->
    List [ String "stem"; Int id; Bool f.Fsim.Fault.stuck ]
  | Fsim.Fault.Pin { gate; pin } ->
    List [ String "pin"; Int gate; Int pin; Bool f.Fsim.Fault.stuck ]

let fault_of_json = function
  | List [ String "stem"; Int id; Bool stuck ] ->
    { Fsim.Fault.site = Fsim.Fault.Stem id; stuck }
  | List [ String "pin"; Int gate; Int pin; Bool stuck ] ->
    { Fsim.Fault.site = Fsim.Fault.Pin { gate; pin }; stuck }
  | _ -> raise Corrupt

let status_of_string = function
  | "untested" -> Fsim.Fault.Untested
  | "detected" -> Fsim.Fault.Detected
  | "redundant" -> Fsim.Fault.Redundant
  | "aborted" -> Fsim.Fault.Aborted
  | "proved_untestable" -> Fsim.Fault.Proved_untestable
  | _ -> raise Corrupt

(* -------------------------------------------------------------- sequences - *)

let sequence_to_json (s : Sim.Vectors.sequence) =
  List (Stdlib.List.map (fun v -> String (Sim.Vectors.vector_to_string v)) s)

let sequence_of_json j =
  Stdlib.List.map
    (fun v ->
      match Sim.Vectors.vector_of_string (as_string v) with
      | vec -> vec
      | exception Invalid_argument _ -> raise Corrupt)
    (as_list j)

(* ------------------------------------------------------------ ATPG result - *)

let stats_to_json (s : Atpg.Types.stats) =
  let states =
    Stdlib.List.sort compare
      (Hashtbl.fold (fun k () acc -> k :: acc) s.Atpg.Types.states [])
  in
  let cubes =
    Stdlib.List.sort compare
      (Hashtbl.fold (fun k () acc -> k :: acc) s.Atpg.Types.state_cubes [])
  in
  Obj
    [
      ("work", Int s.Atpg.Types.work);
      ("backtracks", Int s.Atpg.Types.backtracks);
      ("decisions", Int s.Atpg.Types.decisions);
      ("frames", Int s.Atpg.Types.frames);
      ( "states",
        List (Stdlib.List.map (fun k -> String (Sim.Statekey.to_hex k)) states)
      );
      ("state_cubes", List (Stdlib.List.map (fun k -> String k) cubes));
      ("learn_conflicts", Int s.Atpg.Types.learn_conflicts);
      ("learn_clauses", Int s.Atpg.Types.learn_clauses);
      ("learn_literals", Int s.Atpg.Types.learn_literals);
      ("learn_hits", Int s.Atpg.Types.learn_hits);
      ("learn_cube_hits", Int s.Atpg.Types.learn_cube_hits);
    ]

let stats_of_json j =
  let s = Atpg.Types.new_stats () in
  s.Atpg.Types.work <- int_field "work" j;
  s.Atpg.Types.backtracks <- int_field "backtracks" j;
  s.Atpg.Types.decisions <- int_field "decisions" j;
  s.Atpg.Types.frames <- int_field "frames" j;
  Stdlib.List.iter
    (fun k ->
      let key =
        try Sim.Statekey.of_hex (as_string k)
        with Invalid_argument _ -> raise Corrupt
      in
      Hashtbl.replace s.Atpg.Types.states key ())
    (as_list (obj_field "states" j));
  Stdlib.List.iter
    (fun k -> Hashtbl.replace s.Atpg.Types.state_cubes (as_string k) ())
    (as_list (obj_field "state_cubes" j));
  s.Atpg.Types.learn_conflicts <- int_field_or0 "learn_conflicts" j;
  s.Atpg.Types.learn_clauses <- int_field_or0 "learn_clauses" j;
  s.Atpg.Types.learn_literals <- int_field_or0 "learn_literals" j;
  s.Atpg.Types.learn_hits <- int_field_or0 "learn_hits" j;
  s.Atpg.Types.learn_cube_hits <- int_field_or0 "learn_cube_hits" j;
  s

let atpg_result_to_json (r : Atpg.Types.result) =
  Obj
    [
      ( "faults",
        List (Array.to_list (Array.map fault_to_json r.Atpg.Types.faults)) );
      ( "status",
        List
          (Array.to_list
             (Array.map
                (fun s -> String (Fsim.Fault.status_to_string s))
                r.Atpg.Types.status)) );
      ( "test_sets",
        List (Stdlib.List.map sequence_to_json r.Atpg.Types.test_sets) );
      ("stats", stats_to_json r.Atpg.Types.stats);
      ("fault_coverage", Float r.Atpg.Types.fault_coverage);
      ("fault_efficiency", Float r.Atpg.Types.fault_efficiency);
      ( "trajectory",
        List
          (Stdlib.List.map
             (fun (w, e) -> List [ Int w; Float e ])
             r.Atpg.Types.trajectory) );
    ]

let atpg_result_of_json =
  guard (fun j ->
      let faults =
        Array.of_list
          (Stdlib.List.map fault_of_json (as_list (obj_field "faults" j)))
      in
      let status =
        Array.of_list
          (Stdlib.List.map
             (fun s -> status_of_string (as_string s))
             (as_list (obj_field "status" j)))
      in
      if Array.length faults <> Array.length status then raise Corrupt;
      let test_sets =
        Stdlib.List.map sequence_of_json (as_list (obj_field "test_sets" j))
      in
      let trajectory =
        Stdlib.List.map
          (function
            | List [ w; e ] -> (as_int w, as_float e)
            | _ -> raise Corrupt)
          (as_list (obj_field "trajectory" j))
      in
      {
        Atpg.Types.faults;
        status;
        test_sets;
        stats = stats_of_json (obj_field "stats" j);
        fault_coverage = as_float (obj_field "fault_coverage" j);
        fault_efficiency = as_float (obj_field "fault_efficiency" j);
        trajectory;
      })

(* --------------------------------------------------------- classification - *)

let verdict_to_json = function
  | Analysis.Untest.Unknown -> Null
  | Analysis.Untest.Untestable { cause; evidence } ->
    Obj
      [
        ("cause", String (Analysis.Untest.cause_to_string cause));
        ("evidence", String (Analysis.Untest.evidence_to_string evidence));
      ]

let verdict_of_json = function
  | Null -> Analysis.Untest.Unknown
  | Obj _ as j ->
    let cause =
      match Analysis.Untest.cause_of_string (as_string (obj_field "cause" j))
      with
      | Some c -> c
      | None -> raise Corrupt
    in
    let evidence =
      match
        Analysis.Untest.evidence_of_string
          (as_string (obj_field "evidence" j))
      with
      | Some e -> e
      | None -> raise Corrupt
    in
    Analysis.Untest.Untestable { cause; evidence }
  | _ -> raise Corrupt

let untest_to_json (t : Analysis.Untest.t) =
  let s = t.Analysis.Untest.summary in
  Obj
    [
      ( "faults",
        List (Array.to_list (Array.map fault_to_json t.Analysis.Untest.faults))
      );
      ( "verdicts",
        List
          (Array.to_list (Array.map verdict_to_json t.Analysis.Untest.verdicts))
      );
      ( "summary",
        Obj
          [
            ("total", Int s.Analysis.Untest.total);
            ("proved", Int s.Analysis.Untest.proved);
            ("structural", Int s.Analysis.Untest.structural);
            ("ternary", Int s.Analysis.Untest.ternary);
            ("symbolic", Int s.Analysis.Untest.symbolic);
            ("symbolic_ran", Bool s.Analysis.Untest.symbolic_ran);
            ("bdd_nodes", Int s.Analysis.Untest.bdd_nodes);
            ("work", Int s.Analysis.Untest.work);
          ] );
    ]

let untest_of_json =
  guard (fun j ->
      let faults =
        Array.of_list
          (Stdlib.List.map fault_of_json (as_list (obj_field "faults" j)))
      in
      let verdicts =
        Array.of_list
          (Stdlib.List.map verdict_of_json (as_list (obj_field "verdicts" j)))
      in
      if Array.length faults <> Array.length verdicts then raise Corrupt;
      let sj = obj_field "summary" j in
      let summary =
        {
          Analysis.Untest.total = int_field "total" sj;
          proved = int_field "proved" sj;
          structural = int_field "structural" sj;
          ternary = int_field "ternary" sj;
          symbolic = int_field "symbolic" sj;
          symbolic_ran = as_bool (obj_field "symbolic_ran" sj);
          bdd_nodes = int_field "bdd_nodes" sj;
          work = int_field "work" sj;
        }
      in
      if summary.Analysis.Untest.total <> Array.length faults then
        raise Corrupt;
      Analysis.Untest.v ~faults ~verdicts ~summary)

(* ------------------------------------------------------------------ reach - *)

let reach_result_to_json (r : Analysis.Reach.result) =
  let states =
    Stdlib.List.sort compare
      (Hashtbl.fold (fun k () acc -> k :: acc) r.Analysis.Reach.states [])
  in
  Obj
    [
      ("total_bits", Int r.Analysis.Reach.total_bits);
      ("initial", Int r.Analysis.Reach.initial);
      ("states", List (Stdlib.List.map (fun k -> Int k) states));
    ]

let reach_result_of_json =
  guard (fun j ->
      let codes =
        Stdlib.List.map as_int (as_list (obj_field "states" j))
      in
      let states = Hashtbl.create (max 16 (Stdlib.List.length codes)) in
      Stdlib.List.iter (fun k -> Hashtbl.replace states k ()) codes;
      let initial = int_field "initial" j in
      if not (Hashtbl.mem states initial) then raise Corrupt;
      {
        Analysis.Reach.valid_states = Hashtbl.length states;
        total_bits = int_field "total_bits" j;
        states;
        initial;
      })

(* --------------------------------------------------------------- symreach - *)

let symreach_summary_to_json (s : Analysis.Symreach.summary) =
  Obj
    [
      ("total_bits", Int s.Analysis.Symreach.total_bits);
      ("valid_states", Float s.Analysis.Symreach.valid_states);
      ( "valid_states_int",
        match s.Analysis.Symreach.valid_states_int with
        | Some i -> Int i
        | None -> Null );
      ("depth", Int s.Analysis.Symreach.depth);
      ("bdd_nodes", Int s.Analysis.Symreach.bdd_nodes);
      ("man_nodes", Int s.Analysis.Symreach.man_nodes);
    ]

let symreach_summary_of_json =
  guard (fun j ->
      let valid_states = as_float (obj_field "valid_states" j) in
      let valid_states_int =
        match obj_field "valid_states_int" j with
        | Null -> None
        | Int i -> Some i
        | _ -> raise Corrupt
      in
      (* The exact integer count is authoritative when present.  The
         stored float may carry per-addition rounding from an older
         encoder (counts past 2^53 round differently than a single
         [float_of_int]), so demand agreement only up to a small
         relative tolerance, then normalize to the int-derived value. *)
      let valid_states =
        match valid_states_int with
        | Some i ->
          let f = float_of_int i in
          if abs_float (valid_states -. f) > 1e-9 *. Float.max 1.0 (abs_float f)
          then raise Corrupt;
          f
        | None -> valid_states
      in
      {
        Analysis.Symreach.total_bits = int_field "total_bits" j;
        valid_states;
        valid_states_int;
        depth = int_field "depth" j;
        bdd_nodes = int_field "bdd_nodes" j;
        man_nodes = int_field "man_nodes" j;
      })

(* ------------------------------------------------------------- structural - *)

let structural_result_to_json (r : Analysis.Structural.result) =
  Obj
    [
      ("seq_depth", Int r.Analysis.Structural.seq_depth);
      ("max_cycle_length", Int r.Analysis.Structural.max_cycle_length);
      ("num_cycles", Int r.Analysis.Structural.num_cycles);
      ("exact", Bool r.Analysis.Structural.exact);
    ]

let structural_result_of_json =
  guard (fun j ->
      {
        Analysis.Structural.seq_depth = int_field "seq_depth" j;
        max_cycle_length = int_field "max_cycle_length" j;
        num_cycles = int_field "num_cycles" j;
        exact = as_bool (obj_field "exact" j);
      })

(* --------------------------------------------------------------- manifest - *)

(* Manifests already define a total, content-addressed JSON encoding in
   Obs.Ledger (the id doubles as the store key); the codec just
   delegates, so a store record, a --manifest file, and the in-memory
   value are all the same bytes. *)

let manifest_to_json = Obs.Ledger.to_json
let manifest_of_json = Obs.Ledger.of_json

(* ---------------------------------------------------------------- circuit - *)

(* Exact structural dump of a netlist, one entry per node in id order plus
   the primary-output list.  The decoder replays the entries through
   Netlist.Build in the same order, so the rebuilt circuit has identical
   node ids, interface orders and wiring — in particular an identical
   {!Netlist.Structhash.circuit} — which is what lets `satpg serve`
   resolve a structural-hash reference to a store record across restarts
   without any drift.  (A BLIF round trip would not do: the writer
   re-expresses NAND/NOR/XOR gates as on-set covers that read back as
   AND/OR/NOT trees, preserving behaviour but not the hash.) *)

let gate_fn_of_name s =
  match String.uppercase_ascii s with
  | "AND" -> Netlist.Node.And
  | "OR" -> Netlist.Node.Or
  | "NAND" -> Netlist.Node.Nand
  | "NOR" -> Netlist.Node.Nor
  | "NOT" -> Netlist.Node.Not
  | "BUF" -> Netlist.Node.Buf
  | "XOR" -> Netlist.Node.Xor
  | "XNOR" -> Netlist.Node.Xnor
  | _ -> raise Corrupt

let circuit_to_json (c : Netlist.Node.t) =
  let node_json (nd : Netlist.Node.node) =
    match nd.Netlist.Node.kind with
    | Netlist.Node.Pi _ -> List [ String "pi"; String nd.Netlist.Node.name ]
    | Netlist.Node.Dff { init } ->
      List
        [
          String "dff";
          String nd.Netlist.Node.name;
          Bool init;
          Int nd.Netlist.Node.fanins.(0);
        ]
    | Netlist.Node.Gate fn ->
      List
        [
          String "gate";
          String nd.Netlist.Node.name;
          String (Netlist.Node.gate_fn_name fn);
          List
            (Array.to_list
               (Array.map (fun f -> Int f) nd.Netlist.Node.fanins));
        ]
  in
  Obj
    [
      ("nodes", List (Array.to_list (Array.map node_json c.Netlist.Node.nodes)));
      ( "pos",
        List
          (Array.to_list
             (Array.map
                (fun (name, drv) -> List [ String name; Int drv ])
                c.Netlist.Node.pos)) );
    ]

let circuit_of_json =
  guard (fun j ->
      let b = Netlist.Build.create () in
      (* first pass: recreate every node in id order (dense ids match by
         construction); DFF data inputs may reference later ids, so they
         are connected afterwards *)
      let dff_data = ref [] in
      Stdlib.List.iter
        (fun nj ->
          match nj with
          | List [ String "pi"; String name ] ->
            ignore (Netlist.Build.add_pi b name)
          | List [ String "dff"; String name; Bool init; Int data ] ->
            let id = Netlist.Build.add_dff b ~init name in
            dff_data := (id, data) :: !dff_data
          | List [ String "gate"; String name; String fn; List fanins ] ->
            let fanins =
              Array.of_list (Stdlib.List.map (fun f -> as_int f) fanins)
            in
            (match Netlist.Build.add_gate b (gate_fn_of_name fn) name fanins with
             | (_ : int) -> ()
             | exception Invalid_argument _ -> raise Corrupt)
          | _ -> raise Corrupt)
        (as_list (obj_field "nodes" j));
      Stdlib.List.iter
        (fun (dff, data) ->
          if data < 0 then raise Corrupt;
          Netlist.Build.connect_dff b dff data)
        !dff_data;
      Stdlib.List.iter
        (fun pj ->
          match pj with
          | List [ String name; Int drv ] -> Netlist.Build.add_po b name drv
          | _ -> raise Corrupt)
        (as_list (obj_field "pos" j));
      match Netlist.Build.finalize b with
      | c -> c
      | exception (Invalid_argument _ | Netlist.Build.Combinational_cycle _) ->
        raise Corrupt)
