(** On-disk content-addressed result store.

    Enabled by [SATPG_STORE=dir] (unset or empty: disabled, every
    operation is a no-op).  One versioned JSON record per computation at
    [<dir>/<kind>/<key>.json]; keys come from {!Key}, the display name is
    metadata only.  Writes are atomic (temp file + rename); loads are
    corruption-tolerant — garbage degrades to a logged warning and a
    recompute, never a crash. *)

(** The environment variable, ["SATPG_STORE"]. *)
val env_var : string

(** The configured store directory, if enabled. *)
val dir : unit -> string option

val enabled : unit -> bool

type kind =
  | Atpg
  | Classify
  | Reach
  | Symreach
  | Structural
  | Manifest
  | Circuit  (** registered netlists, keyed by structural hash (serve) *)

val kind_name : kind -> string
val all_kinds : kind list

(** On-disk record format version; bumping it orphans every record. *)
val version : int

type load_result =
  | Found of Obs.Json.t  (** the record's payload *)
  | Absent               (** no record (or store disabled) *)
  | Corrupt of string    (** unreadable/garbage/mismatched record *)

val load : kind -> key:string -> load_result

(** Persist a payload; returns whether a record was written (false when
    the store is disabled or the write failed — saving is best-effort and
    never raises). *)
val save : kind -> key:string -> name:string -> Obs.Json.t -> bool

type entry = { kind : kind; key : string; path : string; bytes : int }

(** Every record currently in the store, in deterministic order. *)
val entries : unit -> entry list

(** Per kind: (kind, record count, total bytes). *)
val stats : unit -> (kind * int * int) list

(** Delete every record; returns how many were removed. *)
val clear : unit -> int

(** Deep check of every record: header fields and payload decodability. *)
val verify : unit -> (entry * (unit, string) result) list
