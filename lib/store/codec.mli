(** JSON codecs for the persisted result types.

    Encoders are total.  Decoders return [None] on any malformation —
    shape mismatch, unknown enum, bad vector character, internal
    inconsistency — never raise: a corrupt record degrades to a
    recompute.  A decoded record is observationally identical to the
    freshly computed one (statuses, sequences, work accounting and the
    traversed state/cube sets all survive the round trip). *)

val atpg_result_to_json : Atpg.Types.result -> Obs.Json.t
val atpg_result_of_json : Obs.Json.t -> Atpg.Types.result option

val untest_to_json : Analysis.Untest.t -> Obs.Json.t
val untest_of_json : Obs.Json.t -> Analysis.Untest.t option

val reach_result_to_json : Analysis.Reach.result -> Obs.Json.t
val reach_result_of_json : Obs.Json.t -> Analysis.Reach.result option

val symreach_summary_to_json : Analysis.Symreach.summary -> Obs.Json.t
val symreach_summary_of_json : Obs.Json.t -> Analysis.Symreach.summary option

val structural_result_to_json : Analysis.Structural.result -> Obs.Json.t
val structural_result_of_json : Obs.Json.t -> Analysis.Structural.result option

(** Provenance manifests delegate to {!Obs.Ledger}: the store record, a
    [--manifest] file and the in-memory value share one encoding, and the
    decoder re-verifies the content-addressed id. *)
val manifest_to_json : Obs.Ledger.t -> Obs.Json.t

val manifest_of_json : Obs.Json.t -> Obs.Ledger.t option

(** Exact structural circuit dump (node list in id order + PO list).
    Unlike a BLIF round trip, decoding reproduces the node ids, interface
    orders and gate functions exactly, so the rebuilt circuit has the
    same {!Netlist.Structhash.circuit} as the encoded one — the property
    `satpg serve` relies on to resolve structural-hash references across
    server restarts. *)
val circuit_to_json : Netlist.Node.t -> Obs.Json.t

val circuit_of_json : Obs.Json.t -> Netlist.Node.t option
