(** Content-addressed cache keys: canonical circuit hash joined with a
    fingerprint of every budget/flag the computation read.  Display names
    never enter a key — aliasing by name is impossible by construction —
    and any budget change (e.g. [SATPG_BUDGET]) derives a fresh key, so
    records are invalidated by orphaning, never by comparison. *)

(** Stable 16-hex-digit fingerprint of an ATPG configuration. *)
val config_fingerprint : Atpg.Types.config -> string

(** Stable fingerprint of a fault-classification configuration
    ([universe] tags the fault set, e.g. ["collapsed"]/["invariant"];
    the classifier cascade version is folded in). *)
val classify_fingerprint :
  symbolic:bool -> max_nodes:int -> product:bool -> universe:string -> string

(** [<circuit hash>-<classify fingerprint>]. *)
val classify :
  symbolic:bool -> max_nodes:int -> product:bool -> universe:string ->
  circuit_hash:string -> string

(** [<engine>-<circuit hash>-<config fingerprint>]; with [classify] (the
    classification fingerprint of a prune-enabled run),
    [...-pruned-<classify fingerprint>]. *)
val atpg :
  engine:string -> config:Atpg.Types.config -> ?classify:string ->
  circuit_hash:string -> unit -> string

(** Stable fingerprint of an explicit-reachability configuration (the
    [max_states] budget) — the suffix of {!reach} keys, exposed for run
    manifests. *)
val reach_fingerprint : max_states:int -> string

(** [<circuit hash>-<fingerprint of max_states>]. *)
val reach : max_states:int -> circuit_hash:string -> string

(** Stable fingerprint of a symbolic-reachability configuration (BDD
    node budget joined with the variable-ordering version). *)
val symreach_fingerprint : max_nodes:int -> string

(** [<circuit hash>-<fingerprint of the BDD node budget>]. *)
val symreach : max_nodes:int -> circuit_hash:string -> string

(** [<circuit hash>-<fingerprint of both expansion budgets>]. *)
val structural :
  depth_budget:int -> cycle_budget:int -> circuit_hash:string -> string
