(* On-disk content-addressed result store.

   Enabled by SATPG_STORE=dir (unset or empty = disabled; every operation
   is then a no-op).  Layout: one versioned JSON record per computation at

     <dir>/<kind>/<key>.json
     {"satpg_store": 1, "kind": "atpg", "key": "...", "name": "...",
      "payload": {...}}

   The key is content-addressed (Store.Key); the name is display-only
   metadata for humans browsing the directory.  Writes go through a
   process-unique temp file and rename, so a concurrent reader sees
   either the old record or the new one, never a torn write.  Loads are
   corruption-tolerant: unreadable files, JSON garbage, version or key
   mismatches all surface as [Corrupt] (the cache logs a warning and
   recomputes) — a bad record can cost a recompute, never a crash or a
   wrong result. *)

let src = Logs.Src.create "satpg.store" ~doc:"persistent result store"

module Log = (val Logs.src_log src : Logs.LOG)

let env_var = "SATPG_STORE"

let dir () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> None
  | Some d -> Some d

let enabled () = dir () <> None

type kind = Atpg | Classify | Reach | Symreach | Structural | Manifest | Circuit

let kind_name = function
  | Atpg -> "atpg"
  | Classify -> "classify"
  | Reach -> "reach"
  | Symreach -> "symreach"
  | Structural -> "structural"
  | Manifest -> "manifest"
  | Circuit -> "circuit"

let all_kinds = [ Atpg; Classify; Reach; Symreach; Structural; Manifest; Circuit ]

let version = 1

let path_of root kind key =
  Filename.concat (Filename.concat root (kind_name kind)) (key ^ ".json")

let mkdir_p d =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ load - *)

type load_result = Found of Obs.Json.t | Absent | Corrupt of string

let decode_record kind key text =
  match Obs.Json.parse text with
  | exception Obs.Json.Parse_error e -> Corrupt ("unparsable record: " ^ e)
  | j ->
    let field name = Obs.Json.member name j in
    (match field "satpg_store", field "kind", field "key", field "payload" with
     | Some (Obs.Json.Int v), _, _, _ when v <> version ->
       Corrupt (Printf.sprintf "record version %d, expected %d" v version)
     | Some (Obs.Json.Int _), Some (Obs.Json.String k), _, _
       when k <> kind_name kind ->
       Corrupt ("record kind " ^ k ^ ", expected " ^ kind_name kind)
     | Some (Obs.Json.Int _), Some (Obs.Json.String _),
       Some (Obs.Json.String k), _
       when k <> key ->
       Corrupt "record key does not match its file name"
     | Some (Obs.Json.Int _), Some (Obs.Json.String _),
       Some (Obs.Json.String _), Some payload ->
       Found payload
     | _ -> Corrupt "record missing header fields")

let load kind ~key =
  match dir () with
  | None -> Absent
  | Some root ->
    let path = path_of root kind key in
    if not (Sys.file_exists path) then Absent
    else
      (match read_file path with
       | exception Sys_error e -> Corrupt ("unreadable record: " ^ e)
       | text ->
         (match decode_record kind key text with
          | Corrupt why ->
            Log.warn (fun m ->
                m "ignoring corrupt store record %s: %s" path why);
            Corrupt why
          | r -> r))

(* ------------------------------------------------------------------ save - *)

let record kind ~key ~name payload =
  Obs.Json.Obj
    [
      ("satpg_store", Obs.Json.Int version);
      ("kind", Obs.Json.String (kind_name kind));
      ("key", Obs.Json.String key);
      ("name", Obs.Json.String name);
      ("payload", payload);
    ]

(* Best-effort: a full disk or unwritable directory degrades to "no
   store", it never aborts the computation whose result is being saved. *)
let save kind ~key ~name payload =
  match dir () with
  | None -> false
  | Some root ->
    let path = path_of root kind key in
    (try
       mkdir_p (Filename.dirname path);
       (* pid alone is not unique across domains of one process writing
          the same key; the domain id keeps concurrent writers on
          distinct temp files (the final rename stays atomic either
          way) *)
       let tmp =
         Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
           (Domain.self () :> int)
       in
       let oc = open_out_bin tmp in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () ->
           output_string oc
             (Obs.Json.to_string (record kind ~key ~name payload));
           output_char oc '\n');
       Sys.rename tmp path;
       true
     with
     | Sys_error e ->
       Log.warn (fun m -> m "could not persist store record %s: %s" path e);
       false
     | Unix.Unix_error (err, _, _) ->
       Log.warn (fun m ->
           m "could not persist store record %s: %s" path
             (Unix.error_message err));
       false)

(* ------------------------------------------- stats / clear / verification - *)

type entry = { kind : kind; key : string; path : string; bytes : int }

let entries () =
  match dir () with
  | None -> []
  | Some root ->
    List.concat_map
      (fun kind ->
        let d = Filename.concat root (kind_name kind) in
        match Sys.readdir d with
        | exception Sys_error _ -> []
        | files ->
          Array.sort compare files;
          Array.to_list files
          |> List.filter_map (fun f ->
                 if Filename.check_suffix f ".json" then
                   let path = Filename.concat d f in
                   let bytes =
                     try (Unix.stat path).Unix.st_size with
                     | Unix.Unix_error _ | Sys_error _ -> 0
                   in
                   Some
                     { kind; key = Filename.chop_suffix f ".json"; path; bytes }
                 else None))
      all_kinds

let stats () =
  List.map
    (fun kind ->
      let es = List.filter (fun e -> e.kind = kind) (entries ()) in
      (kind, List.length es, List.fold_left (fun a e -> a + e.bytes) 0 es))
    all_kinds

let clear () =
  List.fold_left
    (fun removed e ->
      match Sys.remove e.path with
      | () -> removed + 1
      | exception Sys_error _ -> removed)
    0 (entries ())

(* Full verification: the record header must check out *and* the payload
   must decode with the kind's codec. *)
let verify_entry e =
  match read_file e.path with
  | exception Sys_error err -> Error ("unreadable: " ^ err)
  | text ->
    (match decode_record e.kind e.key text with
     | Absent -> Error "impossible"
     | Corrupt why -> Error why
     | Found payload ->
       let ok =
         match e.kind with
         | Atpg -> Codec.atpg_result_of_json payload <> None
         | Classify -> Codec.untest_of_json payload <> None
         | Reach -> Codec.reach_result_of_json payload <> None
         | Symreach -> Codec.symreach_summary_of_json payload <> None
         | Structural -> Codec.structural_result_of_json payload <> None
         | Manifest -> Codec.manifest_of_json payload <> None
         | Circuit -> Codec.circuit_of_json payload <> None
       in
       if ok then Ok () else Error "payload does not decode")

let verify () = List.map (fun e -> (e, verify_entry e)) (entries ())
