(* Content-addressed cache keys.

   A key names a computation, not a circuit file: the canonical structural
   hash of the netlist (Netlist.Structhash — node names and ids excluded)
   joined with a fingerprint of every budget/flag the computation read.
   Display names never enter the key, so two structurally different
   circuits submitted under one name cannot alias, and the same circuit
   under two names shares one record.  Changing any budget (e.g. via
   SATPG_BUDGET) changes the fingerprint and therefore the key: stale
   records are never returned, only orphaned. *)

let config_fingerprint (cfg : Atpg.Types.config) =
  let open Netlist.Structhash in
  let h = empty in
  let h = int h cfg.Atpg.Types.max_frames_fwd in
  let h = int h cfg.Atpg.Types.max_frames_bwd in
  let h = int h cfg.Atpg.Types.backtrack_limit in
  let h = int h cfg.Atpg.Types.work_limit in
  let h = int h cfg.Atpg.Types.total_work_limit in
  let h = bool h cfg.Atpg.Types.validate in
  let h = bool h cfg.Atpg.Types.learn in
  let h = bool h cfg.Atpg.Types.struct_learn in
  to_hex h

(* Bump when the classifier's cascade changes in a way that can alter
   verdicts (new stage, sharper cone, ...): cached classifications and
   pruned ATPG runs both depend on it. *)
let classify_version = 1

let classify_fingerprint ~symbolic ~max_nodes ~product ~universe =
  Netlist.Structhash.(
    to_hex
      (string
         (int (bool (bool (int empty max_nodes) symbolic) product)
            classify_version)
         universe))

let classify ~symbolic ~max_nodes ~product ~universe ~circuit_hash =
  Printf.sprintf "%s-%s" circuit_hash
    (classify_fingerprint ~symbolic ~max_nodes ~product ~universe)

(* A pruned ATPG run's result depends on the classifier's verdicts, so
   the classify fingerprint joins the key; unpruned runs keep their
   historical keys. *)
let atpg ~engine ~config ?classify ~circuit_hash () =
  let base =
    Printf.sprintf "%s-%s-%s" engine circuit_hash (config_fingerprint config)
  in
  match classify with
  | None -> base
  | Some cfp -> Printf.sprintf "%s-pruned-%s" base cfp

let reach_fingerprint ~max_states =
  Netlist.Structhash.(to_hex (int empty max_states))

let reach ~max_states ~circuit_hash =
  Printf.sprintf "%s-%s" circuit_hash (reach_fingerprint ~max_states)

(* Bump when the BDD variable-ordering scheme changes: counts are
   order-independent but the persisted bdd_nodes field is not. *)
let symreach_ordering_version = 2

let symreach_fingerprint ~max_nodes =
  Netlist.Structhash.(
    to_hex (int (int empty max_nodes) symreach_ordering_version))

let symreach ~max_nodes ~circuit_hash =
  Printf.sprintf "%s-%s" circuit_hash (symreach_fingerprint ~max_nodes)

let structural ~depth_budget ~cycle_budget ~circuit_hash =
  let fp =
    Netlist.Structhash.(
      to_hex (int (int empty depth_budget) cycle_budget))
  in
  Printf.sprintf "%s-%s" circuit_hash fp
