(** Process-wide metrics registry: named counters, gauges and log2-bucketed
    histograms.

    Instrument handles are resolved once (get-or-create by name, usually at
    module initialisation) and updated with a single mutable-field write,
    so the hot path is O(1) and allocation-free whether or not anything
    ever snapshots the registry.  Snapshots render in name order: two
    identical runs produce byte-identical metrics files.

    Domain safety: while a {!Capture} scope is active on the current
    domain (the Exec scheduler installs one around every parallel task),
    writes to instruments of the {!global} registry are redirected into
    the capture's delta instead of mutating shared state; the scheduler
    applies the deltas in submission order, so N-domain totals equal the
    sequential totals exactly.  Custom registries are not redirected.
    Reads ([count]/[value]/...) always return the shared value, which
    excludes deltas not yet applied — read instruments only outside
    parallel sections. *)

type t

val create : unit -> t

(** The default registry used when [?registry] is omitted — all of the
    tree's built-in instrumentation lives here. *)
val global : t

(** {1 Counters} — monotonically increasing integers. *)

type counter

(** Get or create; the same name always yields the same handle. *)
val counter : ?registry:t -> string -> counter

val add : counter -> int -> unit
val incr : counter -> unit
val count : counter -> int
val counter_name : counter -> string

(** {1 Gauges} — last-write-wins floats. *)

type gauge

val gauge : ?registry:t -> string -> gauge
val set : gauge -> float -> unit
val value : gauge -> float

(** {1 Histograms} — non-negative integer observations in power-of-two
    buckets (bucket [i] holds values [v] with [2^i <= v+1 < 2^(i+1)]). *)

type histogram

val histogram : ?registry:t -> string -> histogram
val observe : histogram -> int -> unit
val observations : histogram -> int
val sum : histogram -> int

(** Bucket index a value lands in (exposed for tests). *)
val bucket_of : int -> int

(** {1 Snapshot} *)

(** Zero every instrument, keeping registrations (module-level handles
    stay valid). *)
val reset : ?registry:t -> unit -> unit

(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}], keys in
    name order. *)
val snapshot : ?registry:t -> unit -> Json.t

(** Write {!snapshot} to [file] as one JSON document. *)
val write : ?registry:t -> string -> unit

(** {1 Delta application} *)

(** Fold a task's captured delta into the global registry: counters and
    histograms add, gauges last-write-win.  Call only with no capture
    active on the current domain (use [Commit.apply], which handles
    nesting). *)
val apply_delta : Capture.t -> unit
