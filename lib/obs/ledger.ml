(* Run-provenance manifests: the ledger half of the run-comparison layer.

   A manifest is a small, deterministic description of one instrumented
   run — which computation (tool/command/circuit), under which
   configuration (structural circuit hash, config fingerprint, engine,
   job count, budget scale), and what it measured (total work units, the
   metrics snapshot, per-span work totals, and a digest of the per-fault
   event stream).  Its [id] is a 64-bit FNV-1a digest of the canonical
   JSON encoding of everything else, so the manifest is content-addressed
   by construction: two runs of the same computation under the same
   configuration produce byte-identical manifests with equal ids, and any
   difference in what was run or what it measured yields a fresh id.

   Nothing host- or time-dependent enters a manifest — no wall-clock
   fields, no hostnames, no paths — which is what makes `satpg diff` able
   to treat "identical manifests" as "identical runs".  Wall-clock data
   lives in the artifacts the manifest points at (trace files, bench
   records), never in the manifest itself. *)

type t = {
  tool : string;            (* "satpg" | "bench" *)
  command : string;         (* subcommand / bench mode *)
  circuit : string;         (* display name(s), "" when not circuit-scoped *)
  circuit_hash : string;    (* canonical structural hash(es), "" if none *)
  config_fp : string;       (* configuration fingerprint, "" if none *)
  engine : string;          (* ATPG engine, "" if not engine-scoped *)
  jobs : int;               (* resolved domain count *)
  budget : string;          (* raw SATPG_BUDGET value, "" if unset *)
  work_units : int;         (* run total, the headline comparison number *)
  metrics : Json.t;         (* Metrics.snapshot at manifest time *)
  spans : (string * int * int) list; (* span name, count, total work units *)
  num_events : int;
  events_digest : string;   (* FNV-1a hex over the event JSONL lines *)
  id : string;              (* FNV-1a hex over the canonical body JSON *)
}

let version = 1

(* Local FNV-1a 64 (this library depends on nothing, so it cannot borrow
   Netlist.Structhash; the constants are the standard ones). *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_string init s =
  String.fold_left
    (fun h c ->
      Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) fnv_prime)
    init s

let digest_string s = Printf.sprintf "%016Lx" (fnv_string fnv_offset s)

(* Each line contributes its bytes plus the newline, so the digest equals
   a digest of the JSONL file content and concatenation cannot alias
   (["ab"; "c"] vs ["a"; "bc"]). *)
let digest_lines lines =
  Printf.sprintf "%016Lx"
    (List.fold_left (fun h line -> fnv_string (fnv_string h line) "\n")
       fnv_offset lines)

let span_json (name, count, total) =
  Json.List [ Json.String name; Json.Int count; Json.Int total ]

(* Canonical body encoding, the id's preimage: fixed field order, and the
   deterministic sub-encodings the sinks already guarantee (metrics
   snapshots are name-sorted, span tables are total-sorted). *)
let body_json m =
  Json.Obj
    [
      ("satpg_manifest", Json.Int version);
      ("tool", Json.String m.tool);
      ("command", Json.String m.command);
      ("circuit", Json.String m.circuit);
      ("circuit_hash", Json.String m.circuit_hash);
      ("config_fp", Json.String m.config_fp);
      ("engine", Json.String m.engine);
      ("jobs", Json.Int m.jobs);
      ("budget", Json.String m.budget);
      ("work_units", Json.Int m.work_units);
      ("num_events", Json.Int m.num_events);
      ("events_digest", Json.String m.events_digest);
      ("spans", Json.List (List.map span_json m.spans));
      ("metrics", m.metrics);
    ]

let make ~tool ~command ?(circuit = "") ?(circuit_hash = "")
    ?(config_fp = "") ?(engine = "") ~jobs ~budget ~work_units ~metrics
    ~spans ~event_lines () =
  let m =
    {
      tool;
      command;
      circuit;
      circuit_hash;
      config_fp;
      engine;
      jobs;
      budget;
      work_units;
      metrics;
      spans;
      num_events = List.length event_lines;
      events_digest = digest_lines event_lines;
      id = "";
    }
  in
  { m with id = digest_string (Json.to_string (body_json m)) }

let id m = m.id
let work_units m = m.work_units
let config_fp m = m.config_fp
let circuit_hash m = m.circuit_hash
let spans m = m.spans

let to_json m =
  match body_json m with
  | Json.Obj fields -> Json.Obj (fields @ [ ("id", Json.String m.id) ])
  | _ -> assert false

exception Corrupt

let field name j = match Json.member name j with Some v -> v | None -> raise Corrupt
let as_int = function Json.Int i -> i | _ -> raise Corrupt
let as_string = function Json.String s -> s | _ -> raise Corrupt

let of_json j =
  match
    (match field "satpg_manifest" j with
     | Json.Int v when v = version -> ()
     | _ -> raise Corrupt);
    let spans =
      match field "spans" j with
      | Json.List l ->
        List.map
          (function
            | Json.List [ Json.String name; Json.Int count; Json.Int total ] ->
              (name, count, total)
            | _ -> raise Corrupt)
          l
      | _ -> raise Corrupt
    in
    let m =
      {
        tool = as_string (field "tool" j);
        command = as_string (field "command" j);
        circuit = as_string (field "circuit" j);
        circuit_hash = as_string (field "circuit_hash" j);
        config_fp = as_string (field "config_fp" j);
        engine = as_string (field "engine" j);
        jobs = as_int (field "jobs" j);
        budget = as_string (field "budget" j);
        work_units = as_int (field "work_units" j);
        metrics = field "metrics" j;
        spans;
        num_events = as_int (field "num_events" j);
        events_digest = as_string (field "events_digest" j);
        id = "";
      }
    in
    (* the id must recompute from the body: a record whose id does not
       match its content is corrupt, same as a store key mismatch *)
    let id = digest_string (Json.to_string (body_json m)) in
    if as_string (field "id" j) <> id then raise Corrupt;
    { m with id }
  with
  | m -> Some m
  | exception Corrupt -> None

let to_string m = Json.to_string (to_json m) ^ "\n"
let write m file = Fileio.write_string_atomic file (to_string m)
