(** Durable file output shared by every artifact writer.

    {!write_atomic} writes through a unique temp file in the target's
    directory and renames it into place — a crash mid-write can never
    leave a truncated artifact, and a concurrent reader sees either the
    old content or the new, never a torn write.  {!append_line} appends
    one full line in a single write on an [O_APPEND] descriptor, the
    discipline for append-only ledgers like the bench history. *)

(** Create [dir] and any missing parents; existing directories are fine. *)
val mkdir_p : string -> unit

(** [write_atomic file f] runs [f] on a temp [out_channel] in [file]'s
    directory (created if missing), then renames the temp file over
    [file].  On exception from [f] the temp file is removed and the
    exception re-raised; [file] is untouched. *)
val write_atomic : string -> (out_channel -> unit) -> unit

(** [write_atomic] with a ready-made string. *)
val write_string_atomic : string -> string -> unit

(** Append [line ^ "\n"] to [file] (created, with parents, if missing)
    in one write on an append-mode descriptor. *)
val append_line : string -> string -> unit
