(* Durable file output shared by every artifact writer in the tree.

   [write_atomic] is the Store.Disk discipline without the store: the
   content goes to a unique temp file in the destination directory and is
   renamed over the target, so a crash mid-write can leave a stray temp
   file but never a truncated JSON/JSONL artifact, and a concurrent
   reader sees either the old bytes or the new ones.  [append_line] is
   for append-only ledgers (the bench history): the line is built in full
   and handed to the OS in one write on an O_APPEND descriptor, so
   concurrent appenders interleave at line granularity, not byte
   granularity. *)

let mkdir_p d =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go d

let write_atomic file f =
  mkdir_p (Filename.dirname file);
  let tmp, oc =
    Filename.open_temp_file ~mode:[ Open_binary ] ~perms:0o644
      ~temp_dir:(Filename.dirname file)
      (Filename.basename file ^ ".") ".tmp"
  in
  (match f oc with
   | () -> ()
   | exception e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp file

let write_string_atomic file s =
  write_atomic file (fun oc -> output_string oc s)

let append_line file line =
  mkdir_p (Filename.dirname file);
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
      file
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (line ^ "\n"))
