(** Minimal JSON tree shared by every reporter: lint, metrics snapshots,
    the Chrome trace writer and the per-fault event sink.  Integers stay
    exact through a print/parse cycle; finite floats round-trip
    bit-exactly (NaN/infinity render as [null]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering with full string escaping. *)
val to_string : t -> string

exception Parse_error of string

(** Inverse of {!to_string} on the subset this module emits.
    @raise Parse_error on malformed input. *)
val parse : string -> t

(** Object field lookup; [None] on missing key or non-object. *)
val member : string -> t -> t option

val to_int_opt : t -> int option
val to_string_opt : t -> string option

(** Structural equality (object field order is significant). *)
val equal : t -> t -> bool
