(** Differential comparison of two instrumented runs.

    Inputs are classified by content — a provenance manifest
    ({!Ledger.t}), an event JSONL stream, a bench JSON array, or a Chrome
    trace — and compared at three granularities: run totals, per-span
    work aggregation, and per-row attribution (per-fault for event
    streams, per-record for bench arrays).

    The reconciliation invariant: event-stream records carry the run's
    complete work accounting, so on two event inputs the per-row deltas
    sum to the total delta {e exactly} ([reconciled = Some true]);
    [Some false] signals a truncated or edited stream, never rounding. *)

(** {1 Input classification} *)

type input =
  | Manifest of Ledger.t
  | Events of Json.t list  (** parsed JSONL records, file order *)
  | Bench of Json.t list  (** records of a bench JSON array *)
  | Chrome of Json.t  (** whole Chrome trace document *)

val input_kind_name : input -> string

(** Sniff a file's content: a JSON object with a ["satpg_manifest"]
    header is a manifest, with ["traceEvents"] a Chrome trace, a JSON
    array a bench file; anything else must parse as event JSONL. *)
val classify_input : string -> (input, string) result

(** {1 Comparison sides} *)

type row_data = { units : int; status : string option }

type side = {
  label : string;
  manifest_id : string option;
  total : int option;  (** total work units, when the input defines one *)
  exact : bool;  (** rows account for the total exactly *)
  spans : (string * int * int) list;
  rows : (string * row_data) list;  (** attribution rows, input order *)
}

val side_of_manifest : label:string -> Ledger.t -> side

(** Per-fault attribution: one row per ["fault"] record keyed by the
    fault name; ["fault_sim"] / ["state_directory"] records aggregate
    into parenthesized pseudo-rows, so the rows sum to the stream's final
    running total. *)
val side_of_events : label:string -> Json.t list -> side

val side_of_bench : label:string -> Json.t list -> side
val side_of_chrome : label:string -> Json.t -> side
val side_of_input : label:string -> input -> side

(** {!classify_input} composed with {!side_of_input}. *)
val side_of_string : label:string -> string -> (side, string) result

(** {1 The diff} *)

type row = {
  key : string;
  a_units : int option;  (** [None]: row absent on side A *)
  b_units : int option;
  delta : int;  (** absent sides weigh 0 *)
  status_a : string option;
  status_b : string option;
}

type t = {
  a : side;
  b : side;
  total_delta : int option;
  spans : row list;  (** per-span deltas, sorted by |delta| desc *)
  rows : row list;  (** attribution rows, sorted by |delta| desc *)
  new_keys : string list;  (** rows only on side B *)
  vanished_keys : string list;  (** rows only on side A *)
  status_changed : (string * string * string) list;  (** key, a, b *)
  attributed_delta : int option;  (** sum of row deltas *)
  reconciled : bool option;
      (** [Some (attributed_delta = total_delta)] when both sides are
          exact; [None] when attribution does not apply *)
}

val compute : side -> side -> t

(** No total delta, every span and row delta zero, no new / vanished /
    status-changed rows. *)
val is_empty : t -> bool

(** True when side B's total exceeds side A's by strictly more than
    [max_regress_pct] percent.  Improvements never breach; inputs
    without totals cannot breach. *)
val breach : max_regress_pct:float -> t -> bool

(** {1 Reports} *)

val to_json : t -> Json.t

(** Human-readable report; [top] bounds the span and row tables
    (default 20). *)
val pp_text : ?top:int -> Format.formatter -> t -> unit

(** {1 Bench history} *)

type history_point = { units : int; manifest : string; ts : int }

(** Group [BENCH_history.jsonl] lines into per-series points —
    one series per (suite, engine|mode, benchmark) cell, first-appearance
    order, points in file (= append) order.  Returns the series and the
    count of malformed lines skipped. *)
val history_of_lines :
  string list -> (string * history_point list) list * int

val history_json : (string * history_point list) list -> Json.t

val pp_history :
  Format.formatter -> (string * history_point list) list * int -> unit
