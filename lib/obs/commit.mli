(** Deterministic application of task deltas.

    [apply d] folds a task's captured observability delta into the
    current context: into the active capture when the caller is itself a
    captured (nested) task, otherwise into the global metrics registry
    and the installed event sink.  Callers apply deltas in submission
    order, which makes N-domain metrics totals and event files identical
    to a sequential run.  Dropping a delta instead of applying it
    discards the task's side effects entirely (used for stale speculative
    ATPG attempts). *)

val apply : Capture.t -> unit
