(* Hierarchical spans emitted as Chrome trace events (the JSON array format
   that chrome://tracing and Perfetto load directly).

   Timestamps are deterministic: the sink carries a work-unit clock that
   instrumented code advances with [set_time]/[tick] (ATPG drivers feed it
   their gate-evaluation work counter), so the same run always produces the
   same trace, byte for byte.  An optional wall clock — injected by the
   caller so this library stays dependency-free — adds a "wall_us" argument
   to every event for real-time profiling without perturbing determinism of
   the timeline itself.

   Off is free: every entry point checks the installed-sink word and spans
   call the wrapped thunk directly when no sink is installed. *)

type phase = B | E | I

type event = {
  e_name : string;
  ph : phase;
  ts : int;                       (* deterministic work-unit timestamp *)
  wall_us : int option;
  args : (string * Json.t) list;
}

type sink = {
  mutable events : event list;    (* most recent first *)
  mutable n_events : int;
  mutable clock : int;            (* work-unit clock, monotone *)
  mutable depth : int;            (* currently open spans *)
  wall : (unit -> float) option;  (* absolute seconds, e.g. Unix.gettimeofday *)
  wall0 : float;                  (* subtracted so traces start near 0 *)
}

let current : sink option ref = ref None

(* Domain safety: the sink (its event list and clock) is shared process
   state, so tracing is suppressed inside parallel Exec tasks — a capture
   scope active on the current domain makes every entry point a no-op
   (spans still run their thunk).  Parallel work therefore disappears from
   the trace rather than corrupting it; the ATPG drivers fall back to
   their sequential path when a trace sink is installed, keeping `satpg
   profile`'s per-fault spans intact. *)
let suppressed () =
  match Capture.current () with Some _ -> true | None -> false

let create ?wallclock () =
  {
    events = [];
    n_events = 0;
    clock = 0;
    depth = 0;
    wall = wallclock;
    wall0 = (match wallclock with Some f -> f () | None -> 0.0);
  }

let install s = current := Some s
let uninstall () = current := None
let active () = !current
let enabled () = !current <> None

let set_time t =
  match !current with
  | None -> ()
  | Some s -> if not (suppressed ()) && t > s.clock then s.clock <- t

let tick () =
  match !current with
  | None -> ()
  | Some s -> if not (suppressed ()) then s.clock <- s.clock + 1

let emit_event s name ph args =
  let wall_us =
    match s.wall with
    | None -> None
    | Some f -> Some (int_of_float ((f () -. s.wall0) *. 1e6))
  in
  s.events <- { e_name = name; ph; ts = s.clock; wall_us; args } :: s.events;
  s.n_events <- s.n_events + 1

let span ?(args = []) name f =
  match !current with
  | None -> f ()
  | Some _ when suppressed () -> f ()
  | Some s ->
    emit_event s name B args;
    s.depth <- s.depth + 1;
    Fun.protect
      ~finally:(fun () ->
        s.depth <- s.depth - 1;
        emit_event s name E [])
      f

let instant ?(args = []) name =
  match !current with
  | None -> ()
  | Some s -> if not (suppressed ()) then emit_event s name I args

let depth s = s.depth
let num_events s = s.n_events

(* Total work-unit duration per span name, from balanced B/E pairs, sorted
   by decreasing total: the profiler's "work by span" table.  Spans still
   open (unbalanced) are ignored. *)
let durations s =
  let totals : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  let stack = ref [] in
  List.iter
    (fun e ->
      match e.ph with
      | B -> stack := (e.e_name, e.ts) :: !stack
      | E ->
        (match !stack with
         | (name, ts0) :: rest when String.equal name e.e_name ->
           stack := rest;
           let c, t =
             Option.value ~default:(0, 0) (Hashtbl.find_opt totals name)
           in
           Hashtbl.replace totals name (c + 1, t + (e.ts - ts0))
         | _ -> ())
      | I -> ())
    (List.rev s.events);
  Hashtbl.fold (fun name (c, t) acc -> (name, c, t) :: acc) totals []
  |> List.sort (fun (na, _, ta) (nb, _, tb) ->
         if ta <> tb then compare tb ta else String.compare na nb)

let phase_string = function B -> "B" | E -> "E" | I -> "i"

let event_json e =
  let base =
    [
      ("name", Json.String e.e_name);
      ("cat", Json.String "satpg");
      ("ph", Json.String (phase_string e.ph));
      ("ts", Json.Int e.ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  let base = match e.ph with I -> base @ [ ("s", Json.String "t") ] | _ -> base in
  let args =
    match e.wall_us with
    | None -> e.args
    | Some w -> ("wall_us", Json.Int w) :: e.args
  in
  Json.Obj (if args = [] then base else base @ [ ("args", Json.Obj args) ])

let to_chrome s =
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev_map event_json s.events));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("clock", Json.String "work-units");
            ("tool", Json.String "satpg");
          ] );
    ]

let write s file =
  Fileio.write_string_atomic file (Json.to_string (to_chrome s) ^ "\n")
