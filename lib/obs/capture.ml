(* Task-scoped capture of observability side effects, the piece that makes
   the instrumentation domain-safe under the Exec scheduler.

   A capture is a domain-local delta: while one is active (Exec wraps every
   parallel task in [scope]), writes to the *global* metrics registry and
   the installed event sink are redirected into the delta instead of
   mutating shared state.  The scheduler returns each task's delta with its
   result and the submitting caller applies the deltas in submission order
   (Commit.apply), so

     - no shared instrument is ever touched from two domains at once, and
     - the merged totals and the event-record order are exactly what the
       sequential program would have produced — counters and histograms
       merge commutatively, gauges and events are applied in submission
       order.

   A delta whose task is discarded (the ATPG driver's stale speculative
   attempts) is simply dropped, so abandoned work never pollutes the
   registry.  Captures nest: applying a delta while another capture is
   active on the current domain folds it into the outer delta. *)

type hist_delta = {
  hd_buckets : int array;
  mutable hd_count : int;
  mutable hd_sum : int;
  mutable hd_max : int;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, hist_delta) Hashtbl.t;
  mutable events : Json.t list; (* newest first *)
  mutable n_events : int;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 4;
    histograms = Hashtbl.create 4;
    events = [];
    n_events = 0;
  }

let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get key

let scope f =
  let d = create () in
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some d);
  let r =
    Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
  in
  (r, d)

let add_counter d name n =
  match Hashtbl.find_opt d.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace d.counters name (ref n)

let set_gauge d name v =
  match Hashtbl.find_opt d.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace d.gauges name (ref v)

let num_buckets = 63

let hist_delta () =
  { hd_buckets = Array.make num_buckets 0; hd_count = 0; hd_sum = 0; hd_max = 0 }

let observe_histogram d name ~bucket v =
  let h =
    match Hashtbl.find_opt d.histograms name with
    | Some h -> h
    | None ->
      let h = hist_delta () in
      Hashtbl.replace d.histograms name h;
      h
  in
  let v = if v < 0 then 0 else v in
  h.hd_buckets.(bucket) <- h.hd_buckets.(bucket) + 1;
  h.hd_count <- h.hd_count + 1;
  h.hd_sum <- h.hd_sum + v;
  if v > h.hd_max then h.hd_max <- v

let add_event d j =
  d.events <- j :: d.events;
  d.n_events <- d.n_events + 1

(* Oldest first, i.e. emission order. *)
let events d = List.rev d.events
let num_events d = d.n_events
let iter_counters f d = Hashtbl.iter (fun name r -> f name !r) d.counters
let iter_gauges f d = Hashtbl.iter (fun name r -> f name !r) d.gauges
let iter_histograms f d = Hashtbl.iter f d.histograms

(* Fold [d] into [into] (used when a delta is applied while an outer
   capture is active).  Counters and histograms add; gauges last-write-win;
   events append in emission order. *)
let merge ~into d =
  Hashtbl.iter (fun name r -> add_counter into name !r) d.counters;
  Hashtbl.iter (fun name r -> set_gauge into name !r) d.gauges;
  Hashtbl.iter
    (fun name h ->
      let g =
        match Hashtbl.find_opt into.histograms name with
        | Some g -> g
        | None ->
          let g = hist_delta () in
          Hashtbl.replace into.histograms name g;
          g
      in
      Array.iteri
        (fun i n -> g.hd_buckets.(i) <- g.hd_buckets.(i) + n)
        h.hd_buckets;
      g.hd_count <- g.hd_count + h.hd_count;
      g.hd_sum <- g.hd_sum + h.hd_sum;
      if h.hd_max > g.hd_max then g.hd_max <- h.hd_max)
    d.histograms;
  List.iter (fun j -> add_event into j) (events d)
