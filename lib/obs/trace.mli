(** Hierarchical spans emitted as Chrome trace-event JSON (loadable in
    chrome://tracing and Perfetto).

    Timestamps are deterministic work units fed by the instrumented code
    via {!set_time}/{!tick}; an optional caller-supplied wall clock adds a
    ["wall_us"] argument per event without affecting the timeline.  With no
    sink installed every entry point is a single word test — spans run the
    wrapped thunk directly. *)

type sink

(** [wallclock] returns absolute seconds (e.g. [Unix.gettimeofday]); it is
    injected by the caller so this library has no dependencies.  Omit it
    for fully deterministic traces.

    Domain safety: the sink's event list and clock are shared process
    state, so every entry point is a no-op while a {!Capture} scope is
    active on the current domain (inside a parallel Exec task) — spans
    still run their thunk.  Parallel work is absent from the trace rather
    than racing on it. *)
val create : ?wallclock:(unit -> float) -> unit -> sink

val install : sink -> unit
val uninstall : unit -> unit
val active : unit -> sink option
val enabled : unit -> bool

(** Advance the installed sink's work-unit clock to [t] (monotone: earlier
    values are ignored).  No-op without a sink. *)
val set_time : int -> unit

(** Advance the clock by one unit (for flows with no work counter). *)
val tick : unit -> unit

(** [span name f] brackets [f ()] in begin/end events (balanced even when
    [f] raises); calls [f] directly when no sink is installed. *)
val span : ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** A zero-duration instant event. *)
val instant : ?args:(string * Json.t) list -> string -> unit

(** Currently open span count (0 once all spans closed). *)
val depth : sink -> int

val num_events : sink -> int

(** Total work-unit duration per span name from balanced begin/end pairs:
    [(name, count, total)] sorted by decreasing total. *)
val durations : sink -> (string * int * int) list

(** The full Chrome trace document:
    [{"traceEvents": [...], "displayTimeUnit": "ms", ...}]. *)
val to_chrome : sink -> Json.t

(** Write {!to_chrome} to [file]. *)
val write : sink -> string -> unit
