(** Prometheus text-format rendering of a {!Metrics} registry.

    [render ()] snapshots the registry and returns the classic
    line-oriented exposition format (version 0.0.4): one [# TYPE] header
    and one sample line per metric, every name prefixed with [satpg_]
    and sanitized to the Prometheus grammar ([core.cache.hits] becomes
    [satpg_core_cache_hits_total]).  Counters gain the conventional
    [_total] suffix; gauges are emitted as-is; log2 histograms are
    exported as cumulative [_bucket{le="..."}] series (upper bound
    [2^i]) plus [_sum] and [_count].

    The output is what `satpg serve` answers on [GET /metrics]. *)

(** Sanitize one metric name component: characters outside
    [[a-zA-Z0-9_]] become ['_']. *)
val sanitize : string -> string

val render : ?registry:Metrics.t -> unit -> string
