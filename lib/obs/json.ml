(* Minimal self-contained JSON tree shared by every reporter in the tree:
   the lint reporters, the metrics snapshots, the Chrome trace writer and
   the per-fault event sink.  No external dependency.  Integers stay exact
   through a print/parse cycle; floats are printed with enough digits to
   round-trip bit-exactly (finite values only — NaN/infinity render as
   null, which JSON requires). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Shortest decimal that reparses to the same float, always containing a
   '.' or an exponent so a reader cannot mistake it for an integer. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    let s = Printf.sprintf "%.15g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        emit b v)
      l;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b "\":";
        emit b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'; advance ()
             | '\\' -> Buffer.add_char b '\\'; advance ()
             | '/' -> Buffer.add_char b '/'; advance ()
             | 'n' -> Buffer.add_char b '\n'; advance ()
             | 'r' -> Buffer.add_char b '\r'; advance ()
             | 't' -> Buffer.add_char b '\t'; advance ()
             | 'b' -> Buffer.add_char b '\b'; advance ()
             | 'u' ->
               if !pos + 4 >= n then fail "short \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
                | Some code when code < 0x80 ->
                  Buffer.add_char b (Char.chr code)
                | Some _ -> fail "non-ASCII \\u escape unsupported"
                | None -> fail "bad \\u escape");
               pos := !pos + 5
             | _ -> fail "bad escape");
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    digits ();
    if !pos = start || (!pos = start + 1 && s.[start] = '-') then
      fail "expected number";
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2
         (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
         x y
  | _ -> false
