(* Process-wide metrics registry: named counters, gauges and log2-bucketed
   histograms.  The hot path is a single mutable-field update on an
   instrument handle resolved once (usually at module initialisation), so
   instrumented code pays O(1) per increment whether or not anything ever
   snapshots the registry.  Snapshots render to JSON in name order, so two
   identical runs produce byte-identical metrics files.

   Domain safety: instruments of the *global* registry are never mutated
   from a parallel task directly.  While a Capture scope is active on the
   current domain (the Exec scheduler installs one around every task),
   writes to global instruments are redirected into the capture's delta;
   the scheduler applies the deltas in submission order, so N-domain
   totals are exactly the sequential totals.  Custom registries (tests)
   are not redirected. *)

type counter = { c_name : string; c_global : bool; mutable c_value : int }
type gauge = { g_name : string; g_global : bool; mutable g_value : float }

(* Histogram of non-negative integer observations in power-of-two buckets:
   bucket [i] counts values [v] with [2^i <= v+1 < 2^(i+1)] (so bucket 0 is
   exactly v = 0).  63 buckets cover the whole positive [int] range. *)
type histogram = {
  h_name : string;
  h_global : bool;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let global = create ()

let counter ?(registry = global) name =
  match Hashtbl.find_opt registry.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_global = registry == global; c_value = 0 } in
    Hashtbl.replace registry.counters name c;
    c

let add c n =
  if c.c_global then
    match Capture.current () with
    | Some d -> Capture.add_counter d c.c_name n
    | None -> c.c_value <- c.c_value + n
  else c.c_value <- c.c_value + n

let incr c = add c 1
let count c = c.c_value
let counter_name c = c.c_name

let gauge ?(registry = global) name =
  match Hashtbl.find_opt registry.gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_global = registry == global; g_value = 0.0 } in
    Hashtbl.replace registry.gauges name g;
    g

let set g v =
  if g.g_global then
    match Capture.current () with
    | Some d -> Capture.set_gauge d g.g_name v
    | None -> g.g_value <- v
  else g.g_value <- v

let value g = g.g_value

let num_buckets = 63

let histogram ?(registry = global) name =
  match Hashtbl.find_opt registry.histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_global = registry == global;
        h_buckets = Array.make num_buckets 0;
        h_count = 0;
        h_sum = 0;
        h_max = 0;
      }
    in
    Hashtbl.replace registry.histograms name h;
    h

let bucket_of v =
  (* index of the highest set bit of v+1, clamped *)
  let v = if v < 0 then 0 else v in
  let rec go n i = if n <= 1 then i else go (n lsr 1) (i + 1) in
  min (num_buckets - 1) (go (v + 1) 0)

let observe_direct h v =
  let v = if v < 0 then 0 else v in
  h.h_buckets.(bucket_of v) <- h.h_buckets.(bucket_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v

let observe h v =
  if h.h_global then
    match Capture.current () with
    | Some d -> Capture.observe_histogram d h.h_name ~bucket:(bucket_of v) v
    | None -> observe_direct h v
  else observe_direct h v

let observations h = h.h_count
let sum h = h.h_sum

let reset ?(registry = global) () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) registry.counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) registry.gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_buckets 0 num_buckets 0;
      h.h_count <- 0;
      h.h_sum <- 0;
      h.h_max <- 0)
    registry.histograms

let sorted_values tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let snapshot ?(registry = global) () =
  let counters =
    sorted_values registry.counters
    |> List.sort (fun a b -> String.compare a.c_name b.c_name)
    |> List.map (fun c -> (c.c_name, Json.Int c.c_value))
  in
  let gauges =
    sorted_values registry.gauges
    |> List.sort (fun a b -> String.compare a.g_name b.g_name)
    |> List.map (fun g -> (g.g_name, Json.Float g.g_value))
  in
  let histograms =
    sorted_values registry.histograms
    |> List.sort (fun a b -> String.compare a.h_name b.h_name)
    |> List.map (fun h ->
           (* only the populated prefix of the bucket array *)
           let last = ref (-1) in
           Array.iteri (fun i n -> if n > 0 then last := i) h.h_buckets;
           let buckets =
             List.init (!last + 1) (fun i -> Json.Int h.h_buckets.(i))
           in
           ( h.h_name,
             Json.Obj
               [
                 ("count", Json.Int h.h_count);
                 ("sum", Json.Int h.h_sum);
                 ("max", Json.Int h.h_max);
                 ("log2_buckets", Json.List buckets);
               ] ))
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

(* Fold a task delta into the global registry.  Only called with no
   capture active on the current domain (Commit.apply redirects into the
   outer capture otherwise); each name appears once per delta, so Hashtbl
   iteration order cannot affect the result. *)
let apply_delta (d : Capture.t) =
  Capture.iter_counters
    (fun name n ->
      let c = counter name in
      c.c_value <- c.c_value + n)
    d;
  Capture.iter_gauges
    (fun name v ->
      let g = gauge name in
      g.g_value <- v)
    d;
  Capture.iter_histograms
    (fun name (hd : Capture.hist_delta) ->
      let h = histogram name in
      Array.iteri
        (fun i n -> h.h_buckets.(i) <- h.h_buckets.(i) + n)
        hd.Capture.hd_buckets;
      h.h_count <- h.h_count + hd.Capture.hd_count;
      h.h_sum <- h.h_sum + hd.Capture.hd_sum;
      if hd.Capture.hd_max > h.h_max then h.h_max <- hd.Capture.hd_max)
    d

let write ?registry file =
  Fileio.write_string_atomic file (Json.to_string (snapshot ?registry ()) ^ "\n")
