(** Task-scoped capture of observability side effects.

    While a capture is active on the current domain (the Exec scheduler
    wraps every parallel task in {!scope}), writes to the global metrics
    registry and the installed event sink are redirected into a private
    delta instead of mutating shared state.  The scheduler hands each
    task's delta back to the submitting caller, which applies them in
    submission order ({!Commit.apply}) — making parallel instrumentation
    race-free and its merged result bit-identical to a sequential run.
    Deltas of discarded (speculative) tasks are simply dropped. *)

type t

(** Per-histogram accumulation: bucket counts plus count/sum/max. *)
type hist_delta = {
  hd_buckets : int array;
  mutable hd_count : int;
  mutable hd_sum : int;
  mutable hd_max : int;
}

val create : unit -> t

(** The capture active on the current domain, if any. *)
val current : unit -> t option

(** Run [f] with a fresh capture installed on the current domain
    (restoring the previous one afterwards, so captures nest) and return
    its result together with the delta it accumulated. *)
val scope : (unit -> 'a) -> 'a * t

(** {1 Recording} — called by [Metrics] / [Events] when a capture is
    active. *)

val add_counter : t -> string -> int -> unit
val set_gauge : t -> string -> float -> unit

(** [observe_histogram d name ~bucket v]: [bucket] is the log2 bucket
    index [v] lands in (computed by [Metrics.bucket_of]). *)
val observe_histogram : t -> string -> bucket:int -> int -> unit

val add_event : t -> Json.t -> unit

(** {1 Reading / merging} *)

(** Buffered event records, oldest (first emitted) first. *)
val events : t -> Json.t list

val num_events : t -> int
val iter_counters : (string -> int -> unit) -> t -> unit
val iter_gauges : (string -> float -> unit) -> t -> unit
val iter_histograms : (string -> hist_delta -> unit) -> t -> unit

(** Fold [d] into [into]: counters/histograms add, gauges last-write-win,
    events append in emission order. *)
val merge : into:t -> t -> unit

(**/**)

val num_buckets : int
