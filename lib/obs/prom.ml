(* Prometheus text exposition of the metrics registry.  Works off the
   JSON snapshot rather than registry internals, so it stays in lockstep
   with the `satpg profile` / manifest metric payloads by construction. *)

let sanitize name =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ch
      | _ -> '_')
    name

let prom_name name = "satpg_" ^ sanitize name

(* Prometheus floats: integral values print without a fraction part,
   everything else with enough digits to round-trip. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let section j key =
  match j with
  | Json.Obj fields ->
    (match List.assoc_opt key fields with
     | Some (Json.Obj entries) -> entries
     | _ -> [])
  | _ -> []

let render ?registry () =
  let snap = Metrics.snapshot ?registry () in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (name, v) ->
      match v with
      | Json.Int n ->
        let p = prom_name name ^ "_total" in
        line "# TYPE %s counter\n%s %d\n" p p n
      | _ -> ())
    (section snap "counters");
  List.iter
    (fun (name, v) ->
      match v with
      | Json.Float x ->
        let p = prom_name name in
        line "# TYPE %s gauge\n%s %s\n" p p (float_str x)
      | _ -> ())
    (section snap "gauges");
  List.iter
    (fun (name, v) ->
      match v with
      | Json.Obj fields ->
        let int_field key =
          match List.assoc_opt key fields with
          | Some (Json.Int n) -> n
          | _ -> 0
        in
        let buckets =
          match List.assoc_opt "log2_buckets" fields with
          | Some (Json.List l) ->
            List.filter_map
              (function Json.Int n -> Some n | _ -> None)
              l
          | _ -> []
        in
        let p = prom_name name in
        line "# TYPE %s histogram\n" p;
        let cum = ref 0 in
        List.iteri
          (fun i n ->
            cum := !cum + n;
            (* bucket i of the log2 histogram holds values < 2^i *)
            line "%s_bucket{le=\"%.0f\"} %d\n" p (Float.pow 2.0 (float_of_int i))
              !cum)
          buckets;
        let count = int_field "count" in
        line "%s_bucket{le=\"+Inf\"} %d\n" p count;
        line "%s_sum %d\n" p (int_field "sum");
        line "%s_count %d\n" p count
      | _ -> ())
    (section snap "histograms");
  Buffer.contents buf
