(* Deterministic application of task deltas.

   The Exec scheduler captures each parallel task's observability side
   effects into a Capture delta and hands it back with the task's result;
   the submitting caller applies the deltas in submission order with
   [apply].  If the caller is itself a captured task (nested parallelism),
   the delta folds into the caller's own capture instead of the shared
   registry/sink — so a delta only ever reaches shared state through the
   top-level, single-domain caller, and no lock is needed. *)

let apply d =
  match Capture.current () with
  | Some outer -> Capture.merge ~into:outer d
  | None ->
    Metrics.apply_delta d;
    Events.apply_delta d
