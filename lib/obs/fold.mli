(** Folded-stack (flamegraph) export from Chrome trace events.

    Each balanced span contributes its self time — duration minus direct
    children — to the line named by its full stack path
    (["a;b;c self-weight"]), so weights sum to the root spans' total and
    flamegraph.pl / speedscope render the file directly.  Output is
    sorted by stack path: the export of a deterministic trace is
    byte-stable. *)

(** Fold a Chrome [traceEvents] list (the parsed JSON records). *)
val of_events : Json.t list -> (string * int) list

(** Fold a whole Chrome trace document ({!Trace.to_chrome} output or a
    parsed trace file).
    @raise Invalid_argument when the document has no [traceEvents]. *)
val of_chrome : Json.t -> (string * int) list

(** One ["stack;path self-weight"] line per entry, input order. *)
val to_lines : (string * int) list -> string list

(** Write {!to_lines} to [file] atomically. *)
val write : (string * int) list -> string -> unit
