(* Folded-stack export from Chrome trace events: the input format of
   flamegraph.pl / speedscope / inferno ("stack;frames self-weight", one
   line per unique stack).

   The walk replays the trace's B/E events in file order, maintaining the
   open-span stack.  Each balanced span contributes its *self* time — its
   work-unit duration minus the durations of its direct children — to the
   line named by the full stack path, so the folded file's weights sum to
   exactly the root spans' total duration and a flamegraph renders without
   double counting.  Instants and unbalanced spans are ignored, matching
   [Trace.durations].

   Output order is deterministic (sorted by stack path), so the export of
   a deterministic trace is byte-stable — the 1-vs-N bit-identity tests
   diff it directly. *)

type frame = { name : string; ts0 : int; mutable child : int }

let add tbl path self =
  match Hashtbl.find_opt tbl path with
  | Some r -> r := !r + self
  | None -> Hashtbl.replace tbl path (ref self)

(* One trace event, pre-picked from the Chrome JSON. *)
let pick j =
  match Json.member "ph" j, Json.member "name" j, Json.member "ts" j with
  | Some (Json.String ph), Some (Json.String name), Some (Json.Int ts) ->
    Some (ph, name, ts)
  | _ -> None

let of_events events =
  let tbl : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let stack : frame list ref = ref [] in
  List.iter
    (fun e ->
      match pick e with
      | Some ("B", name, ts) -> stack := { name; ts0 = ts; child = 0 } :: !stack
      | Some ("E", name, ts) ->
        (match !stack with
         | top :: rest when String.equal top.name name ->
           stack := rest;
           let total = ts - top.ts0 in
           let path =
             String.concat ";"
               (List.rev_map (fun f -> f.name) (top :: rest))
           in
           add tbl path (total - top.child);
           (match rest with
            | parent :: _ -> parent.child <- parent.child + total
            | [] -> ())
         | _ -> ())
      | _ -> ())
    events;
  Hashtbl.fold (fun path r acc -> (path, !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let of_chrome doc =
  match Json.member "traceEvents" doc with
  | Some (Json.List events) -> of_events events
  | _ -> invalid_arg "Fold.of_chrome: no traceEvents array"

let to_lines folded =
  List.map (fun (path, self) -> Printf.sprintf "%s %d" path self) folded

let write folded file =
  Fileio.write_atomic file (fun oc ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (to_lines folded))
